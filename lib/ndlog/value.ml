type t = Int of int | Str of string | Bool of bool | Addr of int

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Addr x, Addr y -> x = y
  | (Int _ | Str _ | Bool _ | Addr _), _ -> false

let compare = Stdlib.compare
let hash = Hashtbl.hash

(* [canonical_iter f v] feeds the canonical rendering of [v] to [f] in
   pieces, so hashing a value never copies its payload (a [Str] payload is
   passed through by reference). [canonical] must stay the concatenation
   of exactly these pieces. *)
let canonical_iter f = function
  | Int i ->
      f "i:";
      f (string_of_int i)
  | Str s ->
      f "s:";
      f (string_of_int (String.length s));
      f ":";
      f s
  | Bool b -> f (if b then "b:true" else "b:false")
  | Addr a ->
      f "@";
      f (string_of_int a)

let canonical = function
  | Int i -> "i:" ^ string_of_int i
  | Str s -> "s:" ^ string_of_int (String.length s) ^ ":" ^ s
  | Bool b -> if b then "b:true" else "b:false"
  | Addr a -> "@" ^ string_of_int a

(* Payload interning for the digest path. A [Str] payload longer than
   [payload_inline_max] contributes its own SHA-1 (20 bytes) to the tuple
   digest instead of its raw bytes, and that inner digest is cached per
   domain keyed by content — so a 500-byte payload forwarded over k hops
   is hashed once, not k times (each hop rebuilds the head tuple, which
   shares the payload string but not the tuple's digest memo). Injective
   vs plain rendering: the "h:" lead piece is disjoint from "i:"/"s:"/
   "b:"/"@", and the length-based threshold is deterministic, so equal
   values always render the same way and distinct values never collide
   (short of a SHA-1 collision). The cache is bounded and reset-on-cap;
   eviction only costs a re-hash. *)
let payload_inline_max = 64

let payload_cache_key : (string, Dpc_util.Sha1.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let payload_cache_cap = 4096

let payload_digest s =
  let cache = Domain.DLS.get payload_cache_key in
  match Hashtbl.find_opt cache s with
  | Some d -> d
  | None ->
      if Hashtbl.length cache >= payload_cache_cap then Hashtbl.reset cache;
      let d = Dpc_util.Sha1.digest_string s in
      Hashtbl.add cache s d;
      d

(* [Some (len, payload_digest)] when the value digests via interning,
   [None] when its canonical pieces are fed verbatim. Callers that stream
   into a shared SHA-1 context call this for every argument FIRST (it
   digests), then feed — a digest_iter feeder must never digest. *)
let interned_digest = function
  | Str s when String.length s > payload_inline_max ->
      Some (String.length s, payload_digest s)
  | Int _ | Str _ | Bool _ | Addr _ -> None

let interned_feed f ~len d =
  f "h:";
  f (string_of_int len);
  f ":";
  f (Dpc_util.Sha1.to_raw d)

let pp fmt = function
  | Int i -> Format.pp_print_int fmt i
  | Str s -> Format.fprintf fmt "%S" s
  | Bool b -> Format.pp_print_bool fmt b
  | Addr a -> Format.fprintf fmt "n%d" a

let to_string v = Format.asprintf "%a" pp v

let addr_exn = function
  | Addr a -> a
  | Int _ | Str _ | Bool _ -> invalid_arg "Value.addr_exn: not an address"

let int_exn = function
  | Int i -> i
  | Str _ | Bool _ | Addr _ -> invalid_arg "Value.int_exn: not an int"

let bool_exn = function
  | Bool b -> b
  | Int _ | Str _ | Addr _ -> invalid_arg "Value.bool_exn: not a bool"

let str_exn = function
  | Str s -> s
  | Int _ | Bool _ | Addr _ -> invalid_arg "Value.str_exn: not a string"

let wire_size = function
  | Int _ -> 8
  | Str s -> 4 + String.length s
  | Bool _ -> 1
  | Addr _ -> 4

(* Must agree byte-for-byte with [serialize]: a 1-byte tag varint followed
   by the payload encoding. *)
let serialized_size = function
  | Int _ -> 1 + 8
  | Str s ->
      let len = String.length s in
      1 + Dpc_util.Serialize.varint_size len + len
  | Bool _ -> 1 + 1
  | Addr a -> 1 + Dpc_util.Serialize.varint_size a

let serialize w v =
  let open Dpc_util.Serialize in
  match v with
  | Int i ->
      write_varint w 0;
      write_int w i
  | Str s ->
      write_varint w 1;
      write_string w s
  | Bool b ->
      write_varint w 2;
      write_bool w b
  | Addr a ->
      write_varint w 3;
      write_varint w a

let deserialize r =
  let open Dpc_util.Serialize in
  match read_varint r with
  | 0 -> Int (read_int r)
  | 1 -> Str (read_string r)
  | 2 -> Bool (read_bool r)
  | 3 -> Addr (read_varint r)
  | tag -> raise (Corrupt (Printf.sprintf "Value.deserialize: bad tag %d" tag))
