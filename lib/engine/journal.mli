(** The per-node write-ahead journal grain.

    Crash recovery follows the DTaP replay-from-durable-inputs strategy:
    instead of logging every derived row, a node logs only what it could
    not re-derive on its own — the inputs injected at it, the event
    tuples (with their full provenance meta) that arrived at it, the
    [sig] control messages it received, its slow-table mutations, and the
    advances of its {!Dpc_net.Reliable} sequence state. Everything else
    (rule firings, provenance rows, equivalence-table contents) is a
    deterministic function of that sequence and is rebuilt by
    {!Runtime.replay}.

    Entries are written to the log BEFORE their effects are applied; in
    the discrete-event world each delivery is atomic, so the pair is
    indivisible either way, but the ordering keeps the grain honest for a
    future real-I/O backend.

    Serialization rides on {!Dpc_util.Serialize}; entries are
    self-delimiting, so a log is just their concatenation. *)

type entry =
  | Input of Dpc_ndlog.Tuple.t  (** an input event injected at this node *)
  | Arrival of { event : Dpc_ndlog.Tuple.t; meta : Prov_hook.meta }
      (** a derived event delivered to this node, with the meta it carried *)
  | Sig of { op : Prov_hook.slow_op; tuple : Dpc_ndlog.Tuple.t }
      (** a §5.5 [sig] control message delivered to this node *)
  | Slow_insert of Dpc_ndlog.Tuple.t  (** runtime slow-table insert at this node *)
  | Slow_delete of Dpc_ndlog.Tuple.t  (** runtime slow-table delete at this node *)
  | Load of Dpc_ndlog.Tuple.t  (** a pre-run slow tuple loaded at this node *)
  | Next_seq of { peer : int; seq : int }
      (** this node's sender sequence on channel [(node, peer)] advanced *)
  | Expected of { peer : int; seq : int }
      (** this node's receive watermark on channel [(peer, node)] advanced *)

val is_boundary : entry -> bool
(** Whether a checkpoint may be cut right after this entry. Channel
    sequence advances are NOT boundaries: they fire from inside the
    reliable layer's accept path, in the middle of processing the
    delivery they belong to, and a checkpoint cut there would capture a
    watermark ahead of the store state. All other entries complete
    atomically before the next one starts. *)

val write : Dpc_util.Serialize.writer -> entry -> unit

val read : Dpc_util.Serialize.reader -> entry
(** @raise Dpc_util.Serialize.Corrupt on an unknown tag or truncation. *)
