#!/bin/sh
# Bench regression gate: run the fig8/fig9 forwarding benchmarks at the
# same scale and seed as the checked-in baseline (BENCH_PR8.json) and fail
# if events/s regressed by more than the tolerance on either figure.
#
# Wall-clock throughput is noisy, so the tolerance is deliberately wide
# (15%); the gate catches algorithmic regressions (an accidental O(n^2),
# a lost index), not scheduler jitter. Improvements never fail the gate.
#
# When the baseline carries a "queries" figure, the gate additionally
# runs the query-storm figure and compares each scheme's warm-cache p99
# series. Those latencies are modeled (deterministic), so a regression
# there means the cache or the re-execution walk got algorithmically
# worse, not that the builder was busy.
#
#   scripts/bench_gate.sh [baseline.json]
#
# Environment:
#   DPC_BENCH_GATE_SKIP=1   skip entirely (e.g. on known-noisy builders)
#   DPC_BENCH_GATE_TOL      regression tolerance, default 0.15
set -eu

cd "$(dirname "$0")/.."

baseline=${1:-BENCH_PR8.json}
tol=${DPC_BENCH_GATE_TOL:-0.15}

if [ "${DPC_BENCH_GATE_SKIP:-0}" = "1" ]; then
    echo "bench gate skipped (DPC_BENCH_GATE_SKIP=1)"
    exit 0
fi

if ! command -v python3 >/dev/null 2>&1; then
    # Loud, not silent: a builder without python3 runs NO throughput gate
    # at all. Interactive use degrades to a warning, but CI builders are
    # expected to carry python3 — there the gate silently not running is a
    # misconfiguration, so fail instead of letting a regression ship.
    if [ "${CI:-0}" = "1" ]; then
        echo "bench gate FAILED: python3 unavailable on a CI builder (set DPC_BENCH_GATE_SKIP=1 to waive)" >&2
        exit 1
    fi
    echo "::warning::bench gate SKIPPED: python3 unavailable, fig8/fig9 throughput unchecked" >&2
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "bench gate: baseline $baseline not found" >&2
    exit 1
fi

seed=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['seed'])" "$baseline")
figs="--fig 8 --fig 9"
if python3 -c "import json,sys; sys.exit(0 if 'queries' in json.load(open(sys.argv[1]))['figures'] else 1)" "$baseline"; then
    figs="$figs --fig queries"
fi

current=$(mktemp /tmp/dpc-bench-gate.XXXXXX.json)
trap 'rm -f "$current"' EXIT

echo "== bench gate: $figs, seed $seed, vs $baseline (tolerance ${tol}) =="
dune exec bench/main.exe -- $figs --seed "$seed" --json "$current" >/dev/null

python3 - "$baseline" "$current" "$tol" <<'PY'
import json, sys

baseline_path, current_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
baseline = json.load(open(baseline_path))
current = json.load(open(current_path))

assert current["schema"] == baseline["schema"] == "dpc-bench-v1"
if current["scale"] != baseline["scale"]:
    sys.exit("bench gate: scale mismatch (%s vs %s)" % (current["scale"], baseline["scale"]))

failed = False
for fig in ("fig8", "fig9"):
    base = baseline["figures"][fig]["events_per_s"]
    cur = current["figures"][fig]["events_per_s"]
    ratio = cur / base
    verdict = "ok" if ratio >= 1.0 - tol else "REGRESSED"
    print("%s: %.1f events/s vs baseline %.1f (%.2fx) %s" % (fig, cur, base, ratio, verdict))
    if verdict != "ok":
        failed = True

# Query-storm p99 gate: modeled latency, lower is better, so the check
# is inverted — the current warm-cache p99 may not exceed the baseline
# by more than the tolerance.
base_queries = baseline["figures"].get("queries")
if base_queries is not None:
    cur_queries = current["figures"]["queries"]
    for label, points in sorted(base_queries["series"].items()):
        if not label.endswith("p99 us (warm cache)"):
            continue
        base_p99 = points[-1][1]
        cur_points = cur_queries["series"].get(label)
        if not cur_points:
            print("queries %s: series missing from current run REGRESSED" % label)
            failed = True
            continue
        cur_p99 = cur_points[-1][1]
        ratio = cur_p99 / base_p99
        verdict = "ok" if ratio <= 1.0 + tol else "REGRESSED"
        print("queries %s: %d us vs baseline %d (%.2fx) %s" % (
            label, cur_p99, base_p99, ratio, verdict))
        if verdict != "ok":
            failed = True

if failed:
    sys.exit("bench gate FAILED: events/s regressed more than %.0f%%" % (tol * 100))
print("bench gate ok")
PY
