lib/engine/env.mli: Dpc_ndlog
