(** Measurement helpers for the evaluation harness. *)

val storage_snapshots :
  sim:Dpc_net.Sim.t -> every:float -> until:float -> (unit -> int) ->
  (float * int) list ref
(** Schedule [probe] at [every]-second marks from 0 to [until] (inclusive)
    and collect [(time, probe ())] as the simulation runs. *)

val per_node_rates :
  backend:Dpc_core.Backend.t -> nodes:int -> duration:float -> float list
(** Average provenance storage growth rate (bytes/second of prov+ruleExec)
    per node over a run of [duration] seconds, for CDF figures (8, 13). *)

val total_provenance_bytes : Dpc_core.Backend.t -> int

val bandwidth_series : Dpc_net.Sim.t -> (float * float) list
(** [(bucket_start_time, bytes_per_second)] from the simulator's byte
    buckets. *)

val runtime_metrics : Dpc_engine.Runtime.t -> Dpc_util.Metrics.snapshot
(** Cluster-wide merge of the runtime's per-node metric registries
    ([runtime.*] plus whatever [store.*] counters the backend recorded,
    when the runtime and the store share a cluster). *)

val metrics_rows : Dpc_engine.Runtime.t -> string list list
(** {!runtime_metrics} formatted as [[name; kind; value]] rows for
    {!Dpc_util.Table_fmt}. *)

val metrics_counter : Dpc_engine.Runtime.t -> string -> int
(** A single cluster-wide counter value (0 if never recorded). *)
