(* delprun: run a provenance-maintenance scenario and report storage,
   bandwidth, and query statistics for a chosen scheme.

     dune exec bin/delprun.exe -- forwarding --scheme advanced --pairs 20
     dune exec bin/delprun.exe -- dns --scheme exspan --requests 500 *)

open Cmdliner
open Dpc_core
open Dpc_workload

let scheme_conv =
  let parse = function
    | "exspan" -> Ok Backend.S_exspan
    | "basic" -> Ok Backend.S_basic
    | "advanced" -> Ok Backend.S_advanced
    | "advanced+interclass" | "interclass" -> Ok Backend.S_advanced_interclass
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print fmt s = Format.pp_print_string fmt (Backend.scheme_name s) in
  Arg.conv (parse, print)

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Backend.S_advanced
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:"Provenance scheme: exspan, basic, advanced, or advanced+interclass.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
let queries_arg =
  Arg.(value & opt int 10 & info [ "queries" ] ~docv:"N" ~doc:"Provenance queries to run.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log every rule firing to stderr.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write the first query's provenance trees as Graphviz DOT.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE" ~doc:"Serialize the provenance store to FILE at the end.")

let setup_logging verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let emit_artifacts ~backend ~dot ~checkpoint queries =
  (match dot with
  | None -> ()
  | Some path -> begin
      match queries with
      | (q : Query_result.t) :: _ when q.trees <> [] ->
          write_file path (Prov_dot.forest_to_dot q.trees);
          Printf.printf "wrote %s (%d trees)\n" path (List.length q.trees)
      | _ -> prerr_endline "delprun: no query result to render; --dot skipped"
    end);
  match checkpoint with
  | None -> ()
  | Some path ->
      let blob = Backend.checkpoint backend in
      write_file path blob;
      Printf.printf "wrote %s (%s)\n" path (Dpc_util.Table_fmt.human_bytes (String.length blob))

let report ~backend ~sim ~runtime ~queries =
  let stats = Dpc_engine.Runtime.stats runtime in
  Printf.printf "\nexecution: %d events injected, %d rule firings, %d outputs, %d dead ends\n"
    stats.injected stats.fired stats.outputs stats.dead_ends;
  Printf.printf "network: %d messages, %s on the wire\n"
    (Dpc_net.Sim.messages_sent sim)
    (Dpc_util.Table_fmt.human_bytes (Dpc_net.Sim.total_bytes sim));
  let s = Backend.total_storage backend in
  Printf.printf "storage: prov %s (%d rows), ruleExec %s (%d rows), equi %s, events %s\n"
    (Dpc_util.Table_fmt.human_bytes s.Rows.prov_bytes)
    s.Rows.prov_rows
    (Dpc_util.Table_fmt.human_bytes s.Rows.rule_exec_bytes)
    s.Rows.rule_exec_rows
    (Dpc_util.Table_fmt.human_bytes s.Rows.equi_bytes)
    (Dpc_util.Table_fmt.human_bytes s.Rows.event_bytes);
  match queries with
  | [] -> ()
  | _ :: _ ->
      let latencies = List.map (fun (r : Query_result.t) -> r.latency *. 1000.0) queries in
      let found = List.length (List.filter (fun (r : Query_result.t) -> r.trees <> []) queries) in
      Printf.printf "queries: %d/%d found provenance; latency mean %.1f ms, median %.1f ms\n"
        found (List.length queries) (Dpc_util.Stats.mean latencies)
        (Dpc_util.Stats.median latencies)

let forwarding scheme seed pairs rate duration payload queries verbose dot checkpoint =
  setup_logging verbose;
  let rng = Dpc_util.Rng.create ~seed in
  let ts = Dpc_net.Transit_stub.generate ~rng Dpc_net.Transit_stub.paper_params in
  let routing = Dpc_net.Routing.compute ts.topology in
  let pair_list = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:pairs in
  Printf.printf "packet forwarding: %s scheme, %d pairs, %.0f pkt/s each, %.0fs\n"
    (Backend.scheme_name scheme) pairs rate duration;
  let d = Forwarding_driver.setup ~scheme ~topology:ts.topology ~routing ~pairs:pair_list () in
  ignore (Forwarding_driver.inject_stream d ~rate_per_pair:rate ~duration ~payload_size:payload);
  Forwarding_driver.run d;
  let qs =
    if queries = 0 then []
    else Forwarding_driver.query_random_outputs d ~rng ~cost:Query_cost.emulation ~count:queries
  in
  report ~backend:d.backend ~sim:(Forwarding_driver.sim_exn d) ~runtime:d.runtime ~queries:qs;
  emit_artifacts ~backend:d.backend ~dot ~checkpoint qs

let dns scheme seed urls requests duration queries verbose dot checkpoint =
  setup_logging verbose;
  let rng = Dpc_util.Rng.create ~seed in
  let spec = Dns_workload.generate ~rng ~servers:100 ~backbone_depth:27 ~urls ~clients:10 in
  Printf.printf "dns resolution: %s scheme, %d URLs (Zipf), %d requests over %.0fs\n"
    (Backend.scheme_name scheme) urls requests duration;
  let t = Dns_workload.setup ~scheme spec () in
  ignore (Dns_workload.inject_n_requests t ~rng ~total:requests ~duration);
  Dns_workload.run t;
  let qs =
    if queries = 0 then []
    else begin
      let replies = Array.of_list (Dns_workload.replies t) in
      if Array.length replies = 0 then []
      else
        List.init queries (fun _ ->
          Backend.query t.backend ~cost:Query_cost.emulation ~routing:t.routing
            (Dpc_util.Rng.pick rng replies))
    end
  in
  report ~backend:t.backend ~sim:t.sim ~runtime:t.runtime ~queries:qs;
  emit_artifacts ~backend:t.backend ~dot ~checkpoint qs

let forwarding_cmd =
  let pairs = Arg.(value & opt int 20 & info [ "pairs" ] ~docv:"N" ~doc:"Communicating pairs.") in
  let rate =
    Arg.(value & opt float 10.0 & info [ "rate" ] ~docv:"R" ~doc:"Packets/second per pair.")
  in
  let duration = Arg.(value & opt float 5.0 & info [ "duration" ] ~docv:"S" ~doc:"Seconds.") in
  let payload = Arg.(value & opt int 500 & info [ "payload" ] ~docv:"B" ~doc:"Payload bytes.") in
  Cmd.v
    (Cmd.info "forwarding" ~doc:"Packet forwarding on the 100-node transit-stub topology.")
    Term.(
      const forwarding $ scheme_arg $ seed_arg $ pairs $ rate $ duration $ payload $ queries_arg
      $ verbose_arg $ dot_arg $ checkpoint_arg)

let dns_cmd =
  let urls = Arg.(value & opt int 38 & info [ "urls" ] ~docv:"N" ~doc:"Distinct URLs.") in
  let requests = Arg.(value & opt int 1000 & info [ "requests" ] ~docv:"N" ~doc:"Requests.") in
  let duration = Arg.(value & opt float 5.0 & info [ "duration" ] ~docv:"S" ~doc:"Seconds.") in
  Cmd.v
    (Cmd.info "dns" ~doc:"DNS resolution on a 100-server hierarchy.")
    Term.(
      const dns $ scheme_arg $ seed_arg $ urls $ requests $ duration $ queries_arg $ verbose_arg
      $ dot_arg $ checkpoint_arg)

let () =
  let info =
    Cmd.info "delprun" ~version:"1.0.0"
      ~doc:"Run distributed provenance maintenance scenarios."
  in
  exit (Cmd.eval (Cmd.group info [ forwarding_cmd; dns_cmd ]))
