bin/delpc.ml: Arg Cmd Cmdliner Dpc_analysis Dpc_apps Dpc_ndlog Filename Format List Printf String Term
