open Dpc_ndlog

(* The TTL bounds the flood (advertisements revisit nodes with growing
   cost); keep it small — the message count grows with node degree^ttl. *)
let ttl = 3
let max_cost = 3

let source =
  Printf.sprintf
    {|// TTL-bounded route advertisement (the "other application" of paper §3.2).
r1 adv(@N, D, C)       :- adv(@L, D, C0), linkCost(@L, N, C1), C0 < %d, C := C0 + C1.
r2 routeCand(@L, D, C) :- adv(@L, D, C), C <= %d.
|}
    ttl max_cost

let delp () =
  match Parser.parse_program ~name:"flood-routing" source with
  | Error e -> failwith ("Flood_routing.delp: parse error: " ^ e)
  | Ok p -> begin
      match Delp.validate p with
      | Ok d -> d
      | Error e -> failwith ("Flood_routing.delp: " ^ Delp.error_to_string e)
    end

let env = Dpc_engine.Env.empty

let adv ~at ~dst ~cost = Tuple.make "adv" [ Value.Addr at; Value.Addr dst; Value.Int cost ]

let link_cost ~at ~next ~cost =
  Tuple.make "linkCost" [ Value.Addr at; Value.Addr next; Value.Int cost ]

let route_cand ~at ~dst ~cost =
  Tuple.make "routeCand" [ Value.Addr at; Value.Addr dst; Value.Int cost ]

let link_costs_of_topology topo =
  List.concat_map
    (fun (a, b, _) -> [ link_cost ~at:a ~next:b ~cost:1; link_cost ~at:b ~next:a ~cost:1 ])
    (Dpc_net.Topology.links topo)
