lib/workload/dns_workload.mli: Dpc_core Dpc_engine Dpc_ndlog Dpc_net Dpc_util
