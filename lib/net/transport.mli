(** Pluggable message transport between nodes.

    The runtime ships tuples and control messages through this interface
    only; how they travel — through the discrete-event simulator, directly
    in process, across OCaml domains, or (later) over sockets — is the
    backend's business. Three backends are provided:

    - {!of_sim} wraps a {!Sim.t}: hop-by-hop latency and bandwidth,
      per-link byte accounting. Behavior-identical to calling the
      simulator directly.
    - {!direct} is a zero-latency in-process backend for fast tests and
      library embedding: messages are delivered at the current virtual
      time (FIFO among equal times), [schedule] still honors its delay,
      and total bytes/messages are counted.
    - {!Shard_sim} (its own module) partitions the node set into shards,
      one OCaml domain each, and exposes itself through this interface.

    All backends deliver callbacks through an event queue, never
    synchronously from [send] — senders can rely on run-to-completion of
    the current handler.

    {b Shard ownership.} A backend partitions nodes into [shards]
    execution contexts ([1] for the sequential backends). All callbacks
    concerning node [n] — deliveries addressed to [n], timers placed with
    [schedule_on ~node:n] — run on shard [shard_of n], so per-node state
    needs no locking as long as timers name their owning node. *)

module type S = sig
  val name : string

  val nodes : int
  (** Number of addressable nodes; valid ids are [0 .. nodes-1]. *)

  val shards : int
  (** Number of execution contexts (domains). Sequential backends are 1. *)

  val shard_of : int -> int
  (** The shard owning a node; constant for the transport's lifetime. *)

  val now : unit -> float

  val schedule : delay:float -> (unit -> unit) -> unit
  (** Run a callback [delay] seconds from now, on the calling shard (or
      shard 0 when called from outside [run]). Events at equal times fire
      in a deterministic order. Prefer {!schedule_on} whenever the
      callback touches a node's state.
      @raise Invalid_argument on a negative delay. *)

  val schedule_on : node:int -> delay:float -> (unit -> unit) -> unit
  (** Like [schedule], but the callback runs on [shard_of node] — the only
      safe way to arm a timer that touches node state on a sharded
      backend. Sequential backends treat it as [schedule]. *)

  val send : src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
  (** Deliver a message of [bytes] to [dst]; the callback fires at the
      arrival time, on [shard_of dst]. @raise Failure if [dst] is
      unreachable. *)

  val broadcast : src:int -> bytes:int -> (int -> unit) -> unit
  (** Send [bytes] from [src] to every node (the origin included); the
      callback receives the destination node on each delivery. *)

  val run : ?until:float -> unit -> unit
  (** Process queued events in timestamp order until quiescence, or stop
      at the [until] horizon. The horizon is half-open: an event at
      exactly [until] stays queued for the next run. On a sharded backend
      this drives all shard domains and returning is the merge barrier:
      every effect of every shard happens-before the return. *)

  val total_bytes : unit -> int
  val messages : unit -> int
end

type t = (module S)

val name : t -> string
val nodes : t -> int
val shards : t -> int
val shard_of : t -> int -> int
val now : t -> float
val schedule : t -> delay:float -> (unit -> unit) -> unit
val schedule_on : t -> node:int -> delay:float -> (unit -> unit) -> unit
val send : t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
val broadcast : t -> src:int -> bytes:int -> (int -> unit) -> unit
val run : ?until:float -> t -> unit
val total_bytes : t -> int
val messages : t -> int

val of_sim : Sim.t -> t
(** The simulator-backed transport. [nodes] is the topology size. *)

val direct : nodes:int -> unit -> t
(** A fresh zero-latency in-process transport.
    @raise Invalid_argument if [nodes] is not positive. *)

(** {2 Fault injection}

    [faulty] wraps any backend and corrupts delivery — messages are
    dropped, duplicated, or delayed — without touching the inner
    backend's clock or accounting. A dropped or duplicated transmission
    still crosses the wire (its bytes are charged; loss happens at the
    receiver), which is what makes the retransmit overhead measured by
    the bench honest. Use {!Reliable} on top to get delivery guarantees
    back. *)

type fault =
  | F_deliver
  | F_drop  (** transmitted but lost: bytes charged, callback never fires *)
  | F_duplicate  (** the callback fires twice, as two deliveries *)
  | F_delay of float  (** delivered, then held for the extra seconds *)

type fault_config = {
  drop : float;  (** probability a transmission is lost *)
  duplicate : float;  (** probability a transmission arrives twice *)
  delay : float;  (** probability a transmission is held back *)
  delay_max : float;  (** extra hold time, uniform in [0, delay_max) *)
}

val fault_config :
  ?drop:float -> ?duplicate:float -> ?delay:float -> ?delay_max:float -> unit -> fault_config
(** All rates default to 0.  @raise Invalid_argument if a rate is outside
    [0, 1], the rates sum past 1, or [delay_max] is negative. *)

(** Counts are [Atomic] because [decide] runs on the sending node's shard:
    under a sharded backend several domains bump them concurrently. *)
type fault_stats = {
  delivered : int Atomic.t;
  dropped : int Atomic.t;
  duplicated : int Atomic.t;
  delayed : int Atomic.t;
}

val faulty_with : decide:(src:int -> dst:int -> bytes:int -> fault) -> t -> t * fault_stats
(** A transport that consults [decide] on every transmission (broadcasts
    decide per destination). Deterministic fault schedules — "drop the
    first [sig] transmission on every channel" — are written as [decide]
    functions; {!faulty} is the seeded-random special case. *)

val faulty : config:fault_config -> rng:Dpc_util.Rng.t -> t -> t * fault_stats
(** Seeded random fault injection at the [config] rates. One fault at most
    per transmission; duplicates are not themselves re-faulted. The shared
    [rng] is consumed in global send order, so this decider is only
    deterministic on single-shard backends; sharded runs want
    {!hashed_decide}. *)

val hashed_decide :
  config:fault_config -> seed:int -> nodes:int -> src:int -> dst:int -> bytes:int -> fault
(** A [decide] function whose verdict for the [n]th transmission on
    channel [(src, dst)] is a pure hash of [(seed, src, dst, n)] — no
    shared random stream, so the fault schedule is identical however
    sends from different channels interleave. Each channel counter is
    only ever touched from the sending node's shard. This is the decider
    the parallel-vs-sequential digest oracle uses: both runs see the same
    per-channel fault history by construction.
    @raise Invalid_argument if [nodes] is not positive or a node id is
    out of range. *)

val channel_unit_hash : seed:int -> src:int -> dst:int -> n:int -> float
(** The SplitMix64 mix behind {!hashed_decide}, exposed raw: a pure hash
    of [(seed, src, dst, n)] as a uniform float in [0, 1). Deterministic
    building block for per-channel schedules — fault plans, backoff
    jitter ({!Reliable}), partition plans — that must not share a random
    stream across shards. *)

(** {2 Crash faults}

    [crashable] models whole-node crashes at the transport layer: while a
    node is down, every delivery addressed to it — data, acks, sig
    broadcasts — is silently suppressed (bytes still charged; the failure
    is at the receiver, like {!F_drop}). The wrapper only cuts the wire;
    wiping the node's volatile state and driving recovery is the
    engine's business (see [Runtime] and [Durable]). *)

type crash_stats = {
  crashes : int Atomic.t;  (** transitions from up to down *)
  suppressed : int Atomic.t;  (** deliveries dropped at a down node *)
}

type crash_control = {
  crash : int -> unit;  (** take a node down (idempotent) *)
  restart : int -> unit;  (** bring a node back up (idempotent) *)
  is_up : int -> bool;
  crash_stats : crash_stats;
}

val crashable : t -> t * crash_control
(** Wrap a backend with per-node up/down switches. All nodes start up.
    The up-check runs at arrival time, so messages in flight when the
    destination crashes are lost with it. On a sharded backend, call
    [crash]/[restart] either before [run] or from a timer placed with
    [schedule_on ~node] so the switch flips on the owning shard.
    @raise Invalid_argument from the control functions if the node id is
    out of range. *)

(** {2 Partition faults}

    [partitionable] models link outages: both endpoints stay up, but a
    directed link stops delivering. It is the third sibling of {!faulty}
    (message-level loss) and {!crashable} (whole-node loss): while a link
    is down, every delivery crossing it is suppressed at the receiver —
    bytes still charged, like {!F_drop} — and acks crossing the reverse
    link are subject to that link's own state, so asymmetric partitions
    (data flows, acks do not) fall out for free. Unlike a crash, no state
    is wiped: when the link heals, both ends still hold their channel
    state, and it is {!Reliable}'s suspension/resurrection machinery that
    gets the parked traffic across. *)

type partition_stats = {
  cuts : int Atomic.t;  (** transitions of a directed link from up to down *)
  heals : int Atomic.t;  (** transitions from down to up *)
  lost : int Atomic.t;  (** deliveries suppressed on a down link *)
}

type partition_control = {
  set_link : src:int -> dst:int -> up:bool -> unit;
      (** Flip one directed link (idempotent). On a sharded backend call
          it from a timer placed with [schedule_on ~node:dst] — the
          destination's shard owns the arrival-time check (use
          {!schedule_plan}, which does exactly that). *)
  link_up : src:int -> dst:int -> bool;
  partition_stats : partition_stats;
}

val partitionable :
  ?metrics:(int -> Dpc_util.Metrics.t) -> t -> t * partition_control
(** Wrap a backend with directed per-link up/down state. All links start
    up. The link check runs at ARRIVAL time: a message in flight when the
    link is cut is lost, one sent into a cut link that heals before
    arrival survives. When [metrics] maps a node id to its registry, the
    wrapper ticks [net.partition.cuts] / [net.partition.heals] /
    [net.partition.lost] on the destination node.
    @raise Invalid_argument from the control functions on an
    out-of-range node id. *)

(** {3 Partition plans}

    A plan is a list of absolute-time outage windows on directed links.
    Generators cover the canonical shapes — a symmetric two-island split,
    an asymmetric one-way outage, a flapping link with a min-heal dwell,
    and a seeded-random schedule — and {!schedule_plan} turns a plan into
    [set_link] timers on the owning shards. *)

type outage = {
  link_src : int;
  link_dst : int;
  from : float;  (** cut time (absolute) *)
  until : float;  (** heal time (absolute, exclusive) *)
}

type partition_plan = outage list

val outage : src:int -> dst:int -> from:float -> until:float -> outage
(** @raise Invalid_argument if [from] is negative or [until <= from]. *)

val oneway_plan : src:int -> dst:int -> at:float -> duration:float -> partition_plan
(** One asymmetric outage: [src -> dst] goes dark, the reverse link keeps
    delivering. *)

val link_plan : a:int -> b:int -> at:float -> duration:float -> partition_plan
(** Both directions of one link, cut and healed together. *)

val split_plan :
  nodes:int -> left:int list -> at:float -> duration:float -> partition_plan
(** Symmetric two-island split: every directed link between [left] and
    its complement goes down for the window.
    @raise Invalid_argument on an out-of-range node. *)

val flap_plan :
  a:int -> b:int -> at:float -> cycles:int -> down:float -> dwell:float -> partition_plan
(** A flapping link: [cycles] symmetric down-windows of [down] seconds,
    separated by [dwell] seconds of healed link (the min-heal dwell).
    @raise Invalid_argument if [cycles], [down] or [dwell] is not
    positive. *)

val random_plan :
  seed:int ->
  nodes:int ->
  count:int ->
  horizon:float ->
  min_down:float ->
  max_down:float ->
  ?dwell:float ->
  unit ->
  partition_plan
(** A seeded-random plan of up to [count] directed outages with down
    times in [min_down, max_down), start times in [0, horizon). Pure in
    its arguments ({!channel_unit_hash} underneath — no shared stream).
    Overlapping outages of the same link are pruned, keeping the earlier
    window and enforcing [dwell] seconds of heal between consecutive
    outages of one link, so the schedule never double-cuts.
    @raise Invalid_argument on fewer than 2 nodes, a negative count, or a
    bad down-time range. *)

val schedule_plan : t -> partition_control -> partition_plan -> unit
(** Arm every cut and heal in the plan as transport timers. Each flip is
    scheduled with [schedule_on ~node:dst], the shard that owns the link
    check. Plan times are absolute; windows already in the past fire
    immediately. Call on the [partitionable] wrapper (or anything above
    it) before [run]. *)

val plan_horizon : partition_plan -> float
(** The last heal time in the plan: after this instant every link is up
    again (0 for the empty plan). *)
