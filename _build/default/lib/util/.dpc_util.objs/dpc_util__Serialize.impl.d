lib/util/serialize.ml: Buffer Char Int64 List String
