(** The [dpcd] control protocol: what a launcher says to a daemon.

    Control messages ride as {!Dpc_net.Wire.Ctrl} frames on the same
    connections as the data plane (the client announces itself with a
    [Hello] carrying {!Dpc_net.Wire.control_id}); the payload is this
    module's serialized request or reply. Replies echo the request
    frame's sequence number, so one connection can pipeline requests.

    The protocol is deliberately a remote mirror of the simulator
    harness: [Load]/[Inject]/[Slow_insert]/[Slow_delete] correspond to
    the [Runtime] entry points of the same names, [Status] feeds the
    launcher's quiescence barrier, and [Digest] is the transparency
    oracle's probe — the store and database digests a daemon reports
    must equal what the simulator computes for the same node. *)

type status = {
  node : int;  (** the daemon's node id *)
  recovered : bool;  (** attach found on-disk state (this run is a recovery) *)
  unacked : int;  (** data frames sent but not yet acked, all channels *)
  data_sent : int;
  data_received : int;
  fired : int;  (** runtime rule firings *)
  outputs : int;  (** output tuples recorded at this node *)
  wal_entries : int;  (** journal entries since the last compaction *)
  outbox_bytes : int;  (** on-disk size of the durable send ledger *)
}

type request =
  | Load of Dpc_ndlog.Tuple.t list  (** [Runtime.load_slow] *)
  | Inject of Dpc_ndlog.Tuple.t  (** an input event; must be homed at the daemon's node *)
  | Slow_insert of Dpc_ndlog.Tuple.t  (** §5.5 update; must be homed here *)
  | Slow_delete of Dpc_ndlog.Tuple.t  (** §5.5 update; must be homed here *)
  | Checkpoint  (** force a compaction ([Durable.checkpoint_now]) *)
  | Status
  | Digest
  | Shutdown  (** stop the event loop; the process exits (no reply) *)
  | Compact  (** rewrite the durable outbox ledger ([Durable.Outbox.compact]) *)
  | Block of int  (** partition this daemon from one peer ([Socket.set_peer_blocked]) *)
  | Unblock of int  (** heal the link to that peer *)

type reply =
  | Ok
  | Deleted of bool  (** [Slow_delete]: whether the tuple was present *)
  | Status_r of status
  | Digest_r of { node : int; store : string; db : string }
      (** hex SHA-1 of the node's provenance tables
          ({!Dpc_core.Backend.digest_node}) and of its relational db
          ({!Dpc_engine.Db.canonical}) *)
  | Error of string

val encode_request : request -> string
val decode_request : string -> request
(** @raise Dpc_util.Serialize.Corrupt on a malformed payload. *)

val encode_reply : reply -> string
val decode_reply : string -> reply
(** @raise Dpc_util.Serialize.Corrupt on a malformed payload. *)
