lib/net/sim.mli: Routing Topology
