lib/analysis/depgraph.ml: Ast Delp Dpc_ndlog Format Hashtbl List Printf Stdlib String
