(* Provenance of routing state itself (paper §3.2).

   The forwarding program treats [route] tuples as slow-changing base
   state, so their provenance is not recorded there. §3.2's prescription:
   run the application that *derives* routes with provenance enabled, and
   query it separately. Here a TTL-bounded advertisement protocol floods
   route candidates with the Advanced scheme enabled; we then ask why node
   n3 believes it can reach n0 — and get one provenance tree per distinct
   path, plus a Graphviz rendering showing their shared structure.

     dune exec examples/route_provenance.exe *)

open Dpc_core

let () =
  (* A diamond: n0 - n1 - n3 and n0 - n2 - n3 (two equal-cost paths). *)
  let topo = Dpc_net.Topology.create ~n:4 in
  let link = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e7 } in
  List.iter
    (fun (a, b) -> Dpc_net.Topology.add_link topo a b link)
    [ (0, 1); (1, 3); (0, 2); (2, 3) ];
  let routing = Dpc_net.Routing.compute topo in
  let delp = Dpc_apps.Flood_routing.delp () in
  print_endline "The route-advertisement DELP:";
  print_endline (Dpc_ndlog.Pretty.program_to_string delp.program);
  let keys = Dpc_analysis.Equi_keys.compute delp in
  Format.printf "\nStatic analysis: %a@." Dpc_analysis.Equi_keys.pp keys;
  print_endline
    "(the destination is NOT a key: advertisements for different destinations\n\
    \ flood identically and share provenance chains)\n";

  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let backend =
    Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Flood_routing.env ~nodes:4
  in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
      ~env:Dpc_apps.Flood_routing.env ~hook:(Backend.hook backend)
      ~nodes:(Backend.nodes backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime (Dpc_apps.Flood_routing.link_costs_of_topology topo);

  (* n0 announces itself. *)
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Flood_routing.adv ~at:0 ~dst:0 ~cost:0);
  Dpc_engine.Runtime.run runtime;
  let stats = Dpc_engine.Runtime.stats runtime in
  Printf.printf "Flood finished: %d rule executions, %d route candidates recorded.\n\n"
    stats.fired stats.outputs;

  (* Why does n3 have a 2-hop route to n0? *)
  let cand = Dpc_apps.Flood_routing.route_cand ~at:3 ~dst:0 ~cost:2 in
  let result = Backend.query backend ~cost:Query_cost.emulation ~routing cand in
  Format.printf "Provenance of %a — %d derivation(s), one per path:@.@."
    Dpc_ndlog.Tuple.pp cand (List.length result.trees);
  List.iter (fun tree -> Format.printf "%a@.@." Prov_tree.pp tree) result.trees;

  print_endline "Graphviz rendering (shared tuples merged across the two paths):";
  print_endline (Prov_dot.forest_to_dot ~name:"route_to_n0" result.trees)
