(** Validation of distributed event-driven linear programs (Definition 1).

    A valid DELP satisfies:
    - every rule is event-driven (its first body element is a relational
      atom, enforced by the parser; here we additionally check that the
      event relation of each rule is an event relation of the program);
    - consecutive rules are dependent: the head relation of [r_i] equals the
      event relation of [r_{i+1}];
    - head relations appear in rule bodies only as events (never as
      slow-changing condition atoms) — and neither does the input event
      relation.

    Validation also checks arity consistency of every relation and safety
    (head variables bound by the body), which the paper assumes
    implicitly. *)

type t = private {
  program : Ast.program;
  input_event : string;  (** event relation of the first rule *)
  output_rel : string;  (** head relation of the last rule *)
  event_rels : string list;  (** input event plus all head relations *)
  slow_rels : string list;  (** relations of the slow-changing condition atoms *)
  arities : (string * int) list;  (** arity of every relation *)
}

type error =
  | Empty_program
  | Not_chained of { rule : string; head_of_previous : string; event : string }
  | Event_rel_in_conditions of { rule : string; rel : string }
  | Arity_mismatch of { rule : string; rel : string; expected : int; actual : int }
  | Unbound_head_var of { rule : string; var : string }
  | Duplicate_rule_name of string
  | Unbound_assign_var of { rule : string; var : string }

val validate : Ast.program -> (t, error) result

val error_to_string : error -> string

val arity : t -> string -> int
(** @raise Not_found for an unknown relation. *)

val is_slow : t -> string -> bool
val is_event : t -> string -> bool

val rules_for_event : t -> string -> Ast.rule list
(** Rules whose event relation is the given relation, in program order;
    this is what an arriving event tuple of that relation triggers. *)

val event_arity : t -> int
(** Arity of the input event relation. *)
