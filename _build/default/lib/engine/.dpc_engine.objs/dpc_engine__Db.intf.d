lib/engine/db.mli: Dpc_ndlog
