(** Result of a distributed provenance query. *)

type t = {
  trees : Prov_tree.t list;
      (** all reconstructed derivations of the queried tuple, deduplicated *)
  latency : float;  (** seconds, under the query's {!Query_cost} model *)
  entries : int;  (** provenance rows fetched *)
  bytes : int;  (** bytes processed or shipped *)
}

val empty : t

val dedup_trees : Prov_tree.t list -> Prov_tree.t list
