let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty sample")
  | _ :: _ -> ()

let mean xs =
  require_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

let percentile xs p =
  require_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
  let a = Array.of_list (sorted xs) in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = percentile xs 50.0

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let minimum xs =
  require_nonempty "Stats.minimum" xs;
  List.fold_left min infinity xs

let maximum xs =
  require_nonempty "Stats.maximum" xs;
  List.fold_left max neg_infinity xs

let cdf xs =
  let a = Array.of_list (sorted xs) in
  let n = Array.length a in
  Array.to_list (Array.mapi (fun i x -> (x, float_of_int (i + 1) /. float_of_int n)) a)

let cdf_at xs x =
  match xs with
  | [] -> 0.0
  | _ :: _ ->
      let below = List.length (List.filter (fun v -> v <= x) xs) in
      float_of_int below /. float_of_int (List.length xs)
