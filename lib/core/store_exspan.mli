(** ExSPAN-style uncompressed provenance maintenance (paper §2.2, Table 1):
    every rule execution stores a [ruleExec] row at the executing node, and
    every tuple — input event, intermediate events, slow-changing tuples,
    and the output — gets a [prov] row at its location (base tuples with a
    NULL rule reference). The comparison baseline for both optimizations. *)

type t

val create : delp:Dpc_ndlog.Delp.t -> env:Dpc_engine.Env.t -> nodes:int -> t
(** Builds a fresh [nodes]-node cluster; per-node tables hang off each
    {!Dpc_engine.Node.t} and row writes tick its [store.*] counters. *)

val set_degraded_sink : t -> (int -> unit) -> unit
(** Re-route the degraded-query tick: [f querier] runs instead of the
    default increment of [crash.queries_degraded] on the querier's
    volatile registry. Installed by the durable layer so the count
    survives a crash of the querier (see [Durable.attach]). *)

val nodes : t -> Dpc_engine.Node.t array
(** The cluster owning all per-node state; pass to
    [Runtime.create ~nodes] so the runtime shares it. *)

val set_query_cache : t -> Query_cache.t option -> unit
(** Attach (or detach, with [None]) the shared memoization cache — same
    contract as {!Store_basic.set_query_cache}. *)

val query_cache : t -> Query_cache.t option

val hook : t -> Dpc_engine.Prov_hook.t

val node_storage : t -> int -> Rows.storage
val total_storage : t -> Rows.storage

val query :
  t ->
  cost:Query_cost.t ->
  routing:Dpc_net.Routing.t ->
  ?evid:Dpc_util.Sha1.t ->
  ?up:(int -> bool) ->
  Dpc_ndlog.Tuple.t ->
  Query_result.t
(** Recursive distributed query (§2.2): follow [prov] and [ruleExec] rows
    from the queried tuple down to base tuples, reconstructing every
    derivation; [evid] restricts to derivations triggered by that input
    event. [up] (default: everyone) is the node-liveness predicate:
    touching a down node charges the bounded
    [(down_retries + 1) * down_timeout] budget, abandons that branch, and
    marks the result [complete = false] — never hangs, never raises. *)

val dump : t -> (string * string list * string list list) list
(** Human-readable table contents [(name, header, rows)], digests
    abbreviated, rows sorted — the shape of the paper's Table 1. *)

val checkpoint : t -> string
(** Serialize the full store (tables and materialized tuples) to bytes. *)

val restore : delp:Dpc_ndlog.Delp.t -> env:Dpc_engine.Env.t -> string -> t
(** Rebuild a store from {!checkpoint} output; queries against it behave
    identically. @raise Dpc_util.Serialize.Corrupt on malformed input. *)

val checkpoint_node : t -> int -> string
(** Serialize ONE node's tables (receiver-side writes make them fully
    node-owned) for inclusion in that node's durable checkpoint. *)

val digest_node : t -> int -> string
(** SHA-1 (hex) of the node's canonical {!checkpoint_node} blob WITHOUT
    sealing dirty tracking — a pure observation, safe between delta
    cuts. Equal digests mean byte-identical tables; the cross-process
    transparency oracle compares these between a daemon cluster and the
    simulator. *)

val restore_node : t -> int -> string -> unit
(** Reload one node's tables from {!checkpoint_node} output, after a
    {!Dpc_engine.Node.reset} — row writes re-tick the node's [store.*]
    counters. @raise Dpc_util.Serialize.Corrupt on malformed input. *)

val set_track_dirty : t -> bool -> unit
(** Turn dirty-set tracking on (the durable layer does at attach when
    delta checkpoints are enabled). While on, every first insertion of a
    row or side entry is remembered until the next checkpoint/delta cut
    of its node. Off by default — tracking costs a list cons per insert. *)

val checkpoint_delta : t -> int -> string
(** Serialize only the rows/side entries of ONE node inserted since its
    last {!checkpoint_node}/{!checkpoint_delta}/{!restore_node} cut —
    O(changes), not O(state) — and clear the node's dirty set. Requires
    {!set_track_dirty}[ t true] since the last cut to be meaningful. *)

val apply_delta : t -> int -> string -> unit
(** Replay one {!checkpoint_delta} blob on top of the node's current
    tables (base checkpoint plus any earlier deltas, oldest first).
    @raise Dpc_util.Serialize.Corrupt on malformed input. *)
