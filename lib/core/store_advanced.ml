open Dpc_ndlog
open Dpc_util
module Node = Dpc_engine.Node

(* State changes since the node's last checkpoint cut, for O(changes)
   delta checkpoints. Row tables and side stores never delete, so their
   dirty sets are plain "newly inserted" lists. The equivalence state
   does mutate: [htequi] can be wiped wholesale by a slow update
   ([htequi_cleared] records that; [d_htequi] then holds only post-wipe
   insertions), and an [hmap] entry's ref list can grow ([d_hmap] keys
   the touched classes; the delta ships their CURRENT full ref lists,
   which replay replace-wise like [restore_node]). *)
type dirty = {
  mutable d_prov : Rows.prov_row list;
  mutable d_exec : Rows.rule_exec_row list;
  mutable d_exec_nodes : Rows.rule_exec_row list;
  mutable d_exec_links : Rows.link_row list;
  mutable d_htequi : string list;
  mutable htequi_cleared : bool;
  d_hmap : (string, unit) Hashtbl.t;
  mutable d_slow : (Sha1.t * Tuple.t) list;
  mutable d_events : (Sha1.t * Tuple.t) list;
}

type node_state = {
  prov : Rows.prov_row Rows.Table.t;  (* keyed by vid hex *)
  rule_exec : Rows.rule_exec_row Rows.Table.t;  (* plain layout, keyed by rid hex *)
  exec_nodes : Rows.rule_exec_row Rows.Table.t;  (* §5.4 ruleExecNode *)
  exec_links : Rows.link_row Rows.Table.t;  (* §5.4 ruleExecLink, keyed by rid hex *)
  htequi : (string, unit) Hashtbl.t;  (* equivalence keys seen at this ingress *)
  hmap : (string, (int * Sha1.t) list ref) Hashtbl.t;  (* class -> chain roots *)
  mutable hmap_refs : int;  (* total chain roots across hmap, for O(1) equi_bytes *)
  slow_tuples : Side_store.t;
  events : Side_store.t;  (* evid -> input event at ingress *)
  dirty : dirty;
  (* Write generation for the query cache's staleness check: bumped on
     every accepted insert (see [Store_basic.node_state]). *)
  mutable gen : int;
}

type t = {
  delp : Delp.t;
  env : Dpc_engine.Env.t;
  keys : Dpc_analysis.Equi_keys.t;
  interclass : bool;
  nodes : Node.t array;
  key : node_state Node.key;
  orphans : int Atomic.t;
  mutable track_dirty : bool;
  mutable degraded_sink : (int -> unit) option;
  mutable cache : Query_cache.t option;
  mutable reset_hooked : bool;
}

let fresh_state () =
  {
    prov = Rows.Table.create ~row_bytes:(Rows.prov_row_bytes ~with_evid:true) ();
    rule_exec = Rows.Table.create ~row_bytes:(Rows.rule_exec_row_bytes ~with_next:true) ();
    exec_nodes = Rows.Table.create ~row_bytes:(Rows.rule_exec_row_bytes ~with_next:false) ();
    exec_links = Rows.Table.create ~row_bytes:Rows.link_row_bytes ();
    htequi = Hashtbl.create 32;
    hmap = Hashtbl.create 32;
    hmap_refs = 0;
    slow_tuples = Side_store.create ();
    events = Side_store.create ();
    dirty =
      {
        d_prov = [];
        d_exec = [];
        d_exec_nodes = [];
        d_exec_links = [];
        d_htequi = [];
        htequi_cleared = false;
        d_hmap = Hashtbl.create 8;
        d_slow = [];
        d_events = [];
      };
    gen = 0;
  }

let create ~delp ~env ~keys ?(interclass = false) ~nodes () =
  {
    delp;
    env;
    keys;
    interclass;
    nodes = Node.cluster nodes;
    key = Node.key ~name:"store.advanced" ();
    orphans = Atomic.make 0;
    track_dirty = false;
    degraded_sink = None;
    cache = None;
    reset_hooked = false;
  }

let set_track_dirty t on = t.track_dirty <- on

let nodes t = t.nodes
let state t node = Node.get_or_init t.nodes.(node) t.key ~init:fresh_state
let tick t node name = Metrics.incr (Node.metrics t.nodes.(node)) name

(* Degraded-query accounting. By default the tick lands in the querier's
   volatile registry and dies with it on a crash; a durable layer
   re-routes it through [set_degraded_sink] (see [Backend] / [Durable])
   so the count survives. *)
let set_degraded_sink t f = t.degraded_sink <- Some f

let degraded_for t querier () =
  match t.degraded_sink with
  | Some f -> f querier
  | None -> Dpc_util.Metrics.incr (Node.metrics t.nodes.(querier)) "crash.queries_degraded"

(* Query-cache plumbing — see [Store_basic] for the contract. *)
let invalidate_cache t node =
  match t.cache with None -> () | Some cache -> Query_cache.invalidate_node cache node

let set_query_cache t cache =
  t.cache <- cache;
  if cache <> None && not t.reset_hooked then begin
    t.reset_hooked <- true;
    Array.iteri
      (fun node n -> Node.on_reset n (fun () -> invalidate_cache t node))
      t.nodes
  end

let query_cache t = t.cache

let add_prov t ~node ~key row =
  let st = state t node in
  if Rows.Table.add st.prov ~key row then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_prov <- row :: st.dirty.d_prov;
    tick t node "store.prov_rows"
  end

let add_rule_exec t ~node ~key row =
  let st = state t node in
  if Rows.Table.add st.rule_exec ~key row then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_exec <- row :: st.dirty.d_exec;
    tick t node "store.rule_exec_rows"
  end

let add_exec_node t ~node ~key row =
  let st = state t node in
  if Rows.Table.add st.exec_nodes ~key row then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_exec_nodes <- row :: st.dirty.d_exec_nodes;
    tick t node "store.rule_exec_rows"
  end

let add_exec_link t ~node ~key row =
  let st = state t node in
  if Rows.Table.add st.exec_links ~key row then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_exec_links <- row :: st.dirty.d_exec_links;
    tick t node "store.rule_exec_rows"
  end

let slow_put t ~node ~key tuple =
  let st = state t node in
  if Side_store.put_new st.slow_tuples ~key tuple then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_slow <- (key, tuple) :: st.dirty.d_slow
  end

let event_put t ~node ~key tuple =
  let st = state t node in
  if Side_store.put_new st.events ~key tuple then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_events <- (key, tuple) :: st.dirty.d_events
  end

(* Plain layout: the rid must identify the whole chain suffix, so it hashes
   the back-pointer too (Table 3's sha1(rule, vids) is ambiguous as soon as
   two classes share a final rule execution node). *)
let chain_rid ~rule_name ~node ~slow_vids ~prev =
  Sha1.digest_iter (fun f ->
    f rule_name;
    f "+";
    f (string_of_int node);
    List.iter
      (fun vid ->
        f "+";
        f (Sha1.to_raw vid))
      slow_vids;
    match prev with
    | None -> f "+leaf"
    | Some (l, r) ->
        f "+";
        f (string_of_int l);
        f "+";
        f (Sha1.to_raw r))

(* §5.4 layout: the node rid is shared across classes. *)
let node_rid ~rule_name ~node ~slow_vids =
  Sha1.digest_iter (fun f ->
    f rule_name;
    f "+";
    f (string_of_int node);
    List.iter
      (fun vid ->
        f "+";
        f (Sha1.to_raw vid))
      slow_vids)

let on_input t ~node event =
  let meta = Dpc_engine.Prov_hook.initial_meta event in
  let k = Dpc_analysis.Equi_keys.key_hash t.keys event in
  let k_key = Rows.key k in
  let st = state t node in
  let exist_flag = Hashtbl.mem st.htequi k_key in
  tick t node (if exist_flag then "store.equi_hits" else "store.equi_misses");
  if not exist_flag then begin
    Hashtbl.add st.htequi k_key ();
    (* No dupes possible: once present, [mem] short-circuits until the
       next wipe, and the wipe empties this list too. *)
    if t.track_dirty then st.dirty.d_htequi <- k_key :: st.dirty.d_htequi
  end;
  event_put t ~node ~key:meta.evid event;
  { meta with exist_flag; eqkey = Some k }

let on_fire t ~node ~(rule : Ast.rule) ~event:_ ~slow ~head:_
    (meta : Dpc_engine.Prov_hook.meta) =
  if meta.exist_flag then meta
  else begin
    let slow_vids = List.map Rows.vid_of slow in
    List.iter2 (fun tuple vid -> slow_put t ~node ~key:vid tuple) slow slow_vids;
    if t.interclass then begin
      let rid = node_rid ~rule_name:rule.name ~node ~slow_vids in
      add_exec_node t ~node ~key:(Rows.key rid)
        { Rows.rloc = node; rid; rule = rule.name; vids = slow_vids; next = None };
      add_exec_link t ~node ~key:(Rows.key rid)
        { Rows.link_rloc = node; link_rid = rid; link_next = meta.prev };
      { meta with prev = Some (node, rid) }
    end
    else begin
      let rid = chain_rid ~rule_name:rule.name ~node ~slow_vids ~prev:meta.prev in
      add_rule_exec t ~node ~key:(Rows.key rid)
        { Rows.rloc = node; rid; rule = rule.name; vids = slow_vids; next = meta.prev };
      { meta with prev = Some (node, rid) }
    end
  end

let on_output t ~node output (meta : Dpc_engine.Prov_hook.meta) =
  let st = state t node in
  let k_key =
    match meta.eqkey with
    | Some k -> Rows.key k
    | None -> invalid_arg "Store_advanced.on_output: meta has no equivalence key"
  in
  (* hmap associations are per (equivalence class, output relation): with
     extra relations of interest one class has several recorded output
     relations, each with its own chain reference(s). *)
  let k_key = k_key ^ ":" ^ Tuple.rel output in
  let vid = Rows.vid_of output in
  let add_row rref =
    add_prov t ~node ~key:(Rows.key vid)
      { Rows.loc = node; vid; rid = Some rref; evid = Some meta.evid }
  in
  if not meta.exist_flag then begin
    match meta.prev with
    | None -> invalid_arg "Store_advanced.on_output: materializing execution has no chain"
    | Some rref ->
        let refs =
          match Hashtbl.find_opt st.hmap k_key with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.add st.hmap k_key r;
              r
        in
        if not (List.mem rref !refs) then begin
          refs := !refs @ [ rref ];
          st.hmap_refs <- st.hmap_refs + 1;
          if t.track_dirty then Hashtbl.replace st.dirty.d_hmap k_key ()
        end;
        add_row rref
  end
  else begin
    match Hashtbl.find_opt st.hmap k_key with
    | Some refs when !refs <> [] -> List.iter add_row !refs
    | Some _ | None -> Atomic.incr t.orphans
  end

(* §5.5: any slow-table update — insert or delete — invalidates the
   equivalence classes observed so far; incoming events re-materialize.
   The delta records the wipe so replay reproduces it, and post-wipe
   insertions start a fresh dirty list. *)
let on_slow_update t ~node ~op:_ _tuple =
  let st = state t node in
  Hashtbl.reset st.htequi;
  if t.track_dirty then begin
    st.dirty.htequi_cleared <- true;
    st.dirty.d_htequi <- []
  end;
  (* The flush means re-materialization is coming: trees served from this
     node's pre-flush state must not be replayed from the memo cache. *)
  invalidate_cache t node

let hook t =
  {
    Dpc_engine.Prov_hook.name = (if t.interclass then "advanced+interclass" else "advanced");
    on_input = (fun ~node event -> on_input t ~node event);
    on_fire = (fun ~node ~rule ~event ~slow ~head meta -> on_fire t ~node ~rule ~event ~slow ~head meta);
    on_output = (fun ~node output meta -> on_output t ~node output meta);
    on_slow_update = (fun ~node ~op tuple -> on_slow_update t ~node ~op tuple);
    (* existFlag + equivalence-key hash + event hash + back-pointer. *)
    meta_bytes = (fun _ -> 1 + 20 + 20 + Rows.ref_bytes);
  }

(* O(1): hash-table lengths plus the maintained chain-root count; no fold
   over hmap on the snapshot path. *)
let equi_bytes st =
  (Hashtbl.length st.htequi * 20)
  + (Hashtbl.length st.hmap * 20)
  + (st.hmap_refs * Rows.ref_bytes)

let node_storage t node =
  let st = state t node in
  {
    Rows.prov_bytes = Rows.Table.bytes st.prov;
    rule_exec_bytes =
      Rows.Table.bytes st.rule_exec + Rows.Table.bytes st.exec_nodes
      + Rows.Table.bytes st.exec_links;
    equi_bytes = equi_bytes st;
    event_bytes = Side_store.bytes st.slow_tuples + Side_store.bytes st.events;
    prov_rows = Rows.Table.rows st.prov;
    rule_exec_rows =
      Rows.Table.rows st.rule_exec + Rows.Table.rows st.exec_nodes
      + Rows.Table.rows st.exec_links;
  }

let total_storage t =
  Array.to_list (Array.mapi (fun i _ -> node_storage t i) t.nodes)
  |> List.fold_left Rows.add_storage Rows.empty_storage

let classes_seen t =
  Array.fold_left (fun acc node -> acc + Hashtbl.length (state t (Node.id node)).htequi) 0 t.nodes

let orphan_outputs t = Atomic.get t.orphans

exception Broken of string

type acct = {
  cost : Query_cost.t;
  routing : Dpc_net.Routing.t;
  up : int -> bool;
  querier : int;
  degraded : unit -> unit;
  mutable latency : float;
  mutable entries : int;
  mutable bytes : int;
  mutable rederives : int;
  mutable hop_s : float;
  mutable downs : int;
  mutable complete : bool;
  mutable touched : int list;  (* nodes read, for the cache dep snapshot *)
}

let fresh_acct ~cost ~routing ~up ~querier ~degraded =
  { cost; routing; up; querier; degraded; latency = 0.0; entries = 0; bytes = 0;
    rederives = 0; hop_s = 0.0; downs = 0; complete = true; touched = [] }

let charge_entries acct n =
  acct.entries <- acct.entries + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_entry)

let charge_bytes acct n =
  acct.bytes <- acct.bytes + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_byte)

let charge_rederive acct n =
  acct.rederives <- acct.rederives + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_rederive)

let charge_hop acct ~src ~dst =
  let h = Query_cost.hop acct.cost acct.routing ~src ~dst in
  acct.hop_s <- acct.hop_s +. h;
  acct.latency <- acct.latency +. h

let touch acct node =
  if not (List.mem node acct.touched) then acct.touched <- node :: acct.touched

(* Call before reading any state at [node]: a down node costs the bounded
   retry budget, marks the result partial, and abandons the branch. *)
let require_up acct node =
  touch acct node;
  if not (acct.up node) then begin
    acct.downs <- acct.downs + 1;
    acct.latency <-
      acct.latency
      +. (float_of_int (acct.cost.Query_cost.down_retries + 1)
          *. acct.cost.Query_cost.down_timeout);
    if acct.complete then begin
      acct.complete <- false;
      acct.degraded ()
    end;
    raise (Broken (Printf.sprintf "node %d is down" node))
  end

(* Memoize one root reference's reconstruction — see [Store_basic.with_cache].
   Advanced's context must also cover the event id: the same shared chain
   serves every event of the equivalence class, and each (rref, evid) pair
   re-derives a different tree. *)
let with_cache t acct ~rref:(rloc, rid) ~ctx compute =
  match t.cache with
  | None -> compute ()
  | Some cache -> (
      let key = Query_cache.key ~loc:rloc ~rid ~ctx in
      let gen node = (state t node).gen in
      match Query_cache.find cache ~querier:acct.querier ~up:acct.up ~gen key with
      | Some trees ->
          charge_entries acct 1;
          trees
      | None ->
          let outer = acct.touched and downs0 = acct.downs in
          acct.touched <- [];
          let trees = compute () in
          if acct.downs = downs0 then
            Query_cache.add cache ~querier:acct.querier
              ~deps:(List.map (fun n -> (n, gen n)) acct.touched)
              key trees;
          acct.touched <- List.rev_append outer acct.touched;
          trees)

let find_rule t name =
  match List.find_opt (fun (r : Ast.rule) -> String.equal r.name name) t.delp.program.rules with
  | Some r -> r
  | None -> raise (Broken (Printf.sprintf "unknown rule %s" name))

(* QR (Fig 18): collect the shared chain root-to-leaf. The plain layout has
   a unique successor per row; the §5.4 layout may branch on link rows, so
   this returns every acyclic chain. *)
let fetch_chains t acct ~start rref =
  let max_chains = 64 in
  let results = ref [] in
  let rec go at (rloc, rid) acc seen =
    if List.length !results >= max_chains then ()
    else begin
      charge_hop acct ~src:at ~dst:rloc;
      require_up acct rloc;
      let key = (rloc, Rows.key rid) in
      if List.mem key seen then () (* cycle through shared §5.4 rows *)
      else begin
        let seen = key :: seen in
        if t.interclass then begin
          match Rows.Table.find (state t rloc).exec_nodes (Rows.key rid) with
          | [] -> raise (Broken "missing ruleExecNode")
          | _ :: _ :: _ -> raise (Broken "duplicate ruleExecNode rid")
          | [ row ] ->
              charge_entries acct 1;
              charge_bytes acct (Rows.rule_exec_row_bytes ~with_next:false row);
              let links = Rows.Table.find (state t rloc).exec_links (Rows.key rid) in
              charge_entries acct (List.length links);
              List.iter (fun l -> charge_bytes acct (Rows.link_row_bytes l)) links;
              if links = [] then raise (Broken "ruleExecNode with no link row");
              List.iter
                (fun (l : Rows.link_row) ->
                  match l.link_next with
                  | None -> results := List.rev (row :: acc) :: !results
                  | Some next -> go rloc next (row :: acc) seen)
                links
        end
        else begin
          match Rows.Table.find (state t rloc).rule_exec (Rows.key rid) with
          | [] -> raise (Broken "missing ruleExec")
          | _ :: _ :: _ -> raise (Broken "duplicate ruleExec rid")
          | [ row ] -> begin
              charge_entries acct 1;
              charge_bytes acct (Rows.rule_exec_row_bytes ~with_next:true row);
              match row.next with
              | None -> results := List.rev (row :: acc) :: !results
              | Some next -> go rloc next (row :: acc) seen
            end
        end
      end
    end
  in
  go start rref [] [];
  !results

let resolve_slow t acct ~node vid =
  match Side_store.get (state t node).slow_tuples ~key:vid with
  | Some tuple ->
      charge_bytes acct (Tuple.wire_size tuple);
      tuple
  | None -> raise (Broken "slow tuple not materialized")

(* TRANSFORM_TO_D: re-derive the tree from a chain (root-to-leaf) and the
   event retrieved by evid at the leaf's node. *)
let rederive t acct ~evid chain =
  let rec build = function
    | [] -> raise (Broken "empty chain")
    | [ (leaf : Rows.rule_exec_row) ] ->
        let event =
          match Side_store.get (state t leaf.rloc).events ~key:evid with
          | Some ev ->
              charge_bytes acct (Tuple.wire_size ev);
              ev
          | None -> raise (Broken "event not materialized at the leaf's node")
        in
        if Tuple.loc event <> leaf.rloc then raise (Broken "event at wrong ingress");
        let slow = List.map (resolve_slow t acct ~node:leaf.rloc) leaf.vids in
        let rule = find_rule t leaf.rule in
        charge_rederive acct 1;
        begin
          match Dpc_engine.Eval.fire_with_slow ~env:t.env ~rule ~event ~slow with
          | Some head ->
              ({ Prov_tree.rule = leaf.rule; output = head; trigger = Event event; slow }, head)
          | None -> raise (Broken "re-derivation failed at leaf")
        end
    | (row : Rows.rule_exec_row) :: rest ->
        let sub, sub_head = build rest in
        if Tuple.loc sub_head <> row.rloc then raise (Broken "chain/location mismatch");
        let slow = List.map (resolve_slow t acct ~node:row.rloc) row.vids in
        let rule = find_rule t row.rule in
        charge_rederive acct 1;
        begin
          match Dpc_engine.Eval.fire_with_slow ~env:t.env ~rule ~event:sub_head ~slow with
          | Some head ->
              ({ Prov_tree.rule = row.rule; output = head; trigger = Derived sub; slow }, head)
          | None -> raise (Broken "re-derivation failed")
        end
  in
  build chain

let query t ~cost ~routing ?evid ?(up = fun _ -> true) output =
  let querier = Tuple.loc output in
  let acct = fresh_acct ~cost ~routing ~up ~querier ~degraded:(degraded_for t querier) in
  let trees =
    match require_up acct querier with
    | exception Broken _ -> []
    | () ->
        let htp = Rows.vid_of output in
        let rows = Rows.Table.find (state t querier).prov (Rows.key htp) in
        let rows =
          match evid with
          | None -> rows
          | Some e ->
              List.filter
                (fun (r : Rows.prov_row) ->
                  match r.evid with Some re -> Sha1.equal re e | None -> false)
                rows
        in
        charge_entries acct (max 1 (List.length rows));
        List.concat_map
          (fun (r : Rows.prov_row) ->
            let row_evid =
              match r.evid with
              | Some e -> e
              | None -> raise (Broken "advanced prov row without evid")
            in
            match r.rid with
            | None -> []
            | Some rref ->
                let ctx = Sha1.to_raw row_evid ^ Sha1.to_raw htp in
                with_cache t acct ~rref ~ctx (fun () ->
                    match fetch_chains t acct ~start:querier rref with
                    | chains ->
                        List.filter_map
                          (fun chain ->
                            match rederive t acct ~evid:row_evid chain with
                            | tree, head when Tuple.equal head output -> Some tree
                            | _ -> None
                            | exception Broken _ -> None)
                          chains
                    | exception Broken _ -> []))
          rows
  in
  (match trees with
  | [] -> ()
  | tr :: _ -> charge_hop acct ~src:(Tuple.loc (Prov_tree.event_of tr)) ~dst:querier);
  { Query_result.trees = Query_result.dedup_trees trees; latency = acct.latency;
    entries = acct.entries; bytes = acct.bytes; rederives = acct.rederives;
    hop_s = acct.hop_s; downs = acct.downs; complete = acct.complete }

let dump t =
  let n = Array.length t.nodes in
  let collect table_of node =
    let acc = ref [] in
    Rows.Table.iter (table_of (state t node)) (fun _ r -> acc := r :: !acc);
    !acc
  in
  let ph, pr = Rows.dump_prov ~with_evid:true (collect (fun st -> st.prov)) n in
  if t.interclass then begin
    let nh, nr =
      Rows.dump_rule_exec ~with_next:false (collect (fun st -> st.exec_nodes)) n
    in
    let link_rows =
      List.concat_map
        (fun node ->
          List.map
            (fun (l : Rows.link_row) ->
              [
                Printf.sprintf "n%d" l.link_rloc;
                Rows.show_digest l.link_rid;
                Rows.show_ref l.link_next;
              ])
            (collect (fun st -> st.exec_links) node))
        (List.init n (fun i -> i))
      |> List.sort compare
    in
    [
      ("prov", ph, pr);
      ("ruleExecNode", nh, nr);
      ("ruleExecLink", [ "RLoc"; "RID"; "(NLoc,NRID)" ], link_rows);
    ]
  end
  else begin
    let rh, rr = Rows.dump_rule_exec ~with_next:true (collect (fun st -> st.rule_exec)) n in
    [ ("prov", ph, pr); ("ruleExec", rh, rr) ]
  end

(* Canonical (sorted) order so checkpoints are byte-stable. *)
let table_rows table =
  let acc = ref [] in
  Rows.Table.iter table (fun _ r -> acc := r :: !acc);
  List.sort compare !acc

(* (node, key, tuple) entries across the cluster in canonical order; the
   same wire shape as the old cluster-wide side store. *)
let side_entries t select =
  let acc = ref [] in
  Array.iteri
    (fun node _ ->
      Side_store.iter (select (state t node)) (fun ~key tuple -> acc := (node, key, tuple) :: !acc))
    t.nodes;
  List.sort (fun (n1, k1, _) (n2, k2, _) -> compare (n1, Sha1.to_raw k1) (n2, Sha1.to_raw k2)) !acc

let write_side w entries =
  let open Dpc_util.Serialize in
  write_list w
    (fun (node, key, tuple) ->
      write_varint w node;
      write_string w (Sha1.to_raw key);
      Tuple.serialize w tuple)
    entries

let read_side r t select =
  let open Dpc_util.Serialize in
  ignore
    (read_list r (fun () ->
       let node = read_varint r in
       let key = Sha1.of_raw (read_string r) in
       Side_store.put (select (state t node)) ~key (Tuple.deserialize r)))

let checkpoint t =
  let open Dpc_util.Serialize in
  let w = writer () in
  write_string w "dpc-advanced-v1";
  write_bool w t.interclass;
  write_varint w (Array.length t.nodes);
  Array.iteri
    (fun node _ ->
      let st = state t node in
      write_list w (Rows.write_prov_row w) (table_rows st.prov);
      write_list w (Rows.write_rule_exec_row w) (table_rows st.rule_exec);
      write_list w (Rows.write_rule_exec_row w) (table_rows st.exec_nodes);
      write_list w (Rows.write_link_row w) (table_rows st.exec_links);
      write_list w (write_string w)
        (Hashtbl.fold (fun k () acc -> k :: acc) st.htequi [] |> List.sort compare);
      write_list w
        (fun (k, refs) ->
          write_string w k;
          write_list w
            (fun (node, d) ->
              write_varint w node;
              write_string w (Sha1.to_raw d))
            refs)
        (Hashtbl.fold (fun k refs acc -> (k, !refs) :: acc) st.hmap []
        |> List.sort compare))
    t.nodes;
  write_side w (side_entries t (fun st -> st.slow_tuples));
  write_side w (side_entries t (fun st -> st.events));
  write_varint w (Atomic.get t.orphans);
  contents w

let restore ~delp ~env ~keys blob =
  let open Dpc_util.Serialize in
  let r = reader blob in
  if not (String.equal (read_string r) "dpc-advanced-v1") then
    raise (Corrupt "not an Advanced checkpoint");
  let interclass = read_bool r in
  let nodes = read_varint r in
  let t = create ~delp ~env ~keys ~interclass ~nodes () in
  for node = 0 to nodes - 1 do
    let st = state t node in
    List.iter
      (fun (row : Rows.prov_row) -> add_prov t ~node:row.loc ~key:(Rows.key row.vid) row)
      (read_list r (fun () -> Rows.read_prov_row r));
    List.iter
      (fun (row : Rows.rule_exec_row) -> add_rule_exec t ~node:row.rloc ~key:(Rows.key row.rid) row)
      (read_list r (fun () -> Rows.read_rule_exec_row r));
    List.iter
      (fun (row : Rows.rule_exec_row) -> add_exec_node t ~node:row.rloc ~key:(Rows.key row.rid) row)
      (read_list r (fun () -> Rows.read_rule_exec_row r));
    List.iter
      (fun (row : Rows.link_row) ->
        add_exec_link t ~node:row.link_rloc ~key:(Rows.key row.link_rid) row)
      (read_list r (fun () -> Rows.read_link_row r));
    ignore (read_list r (fun () -> Hashtbl.replace st.htequi (read_string r) ()));
    ignore
      (read_list r (fun () ->
         let k = read_string r in
         let refs =
           read_list r (fun () ->
             let node = read_varint r in
             (node, Sha1.of_raw (read_string r)))
         in
         st.hmap_refs <- st.hmap_refs + List.length refs;
         Hashtbl.replace st.hmap k (ref refs)))
  done;
  read_side r t (fun st -> st.slow_tuples);
  read_side r t (fun st -> st.events);
  Atomic.set t.orphans (read_varint r);
  t

(* Per-node checkpoint: the node's row tables, its equivalence state
   (htequi + hmap — §5.5 makes both strictly ingress-local), and its side
   stores. The [orphans] counter is store-global bookkeeping, not node
   state, so it is not part of the blob. *)

let node_magic = "dpc-advanced-node-v1"
let delta_magic = "dpc-advanced-delta-v1"

let clear_dirty (st : node_state) =
  st.dirty.d_prov <- [];
  st.dirty.d_exec <- [];
  st.dirty.d_exec_nodes <- [];
  st.dirty.d_exec_links <- [];
  st.dirty.d_htequi <- [];
  st.dirty.htequi_cleared <- false;
  Hashtbl.reset st.dirty.d_hmap;
  st.dirty.d_slow <- [];
  st.dirty.d_events <- []

let write_side_list w entries =
  let open Dpc_util.Serialize in
  write_list w
    (fun (key, tuple) ->
      write_string w (Sha1.to_raw key);
      Tuple.serialize w tuple)
    (List.sort (fun (k1, _) (k2, _) -> compare (Sha1.to_raw k1) (Sha1.to_raw k2)) entries)

let write_node_side w store =
  let acc = ref [] in
  Side_store.iter store (fun ~key tuple -> acc := (key, tuple) :: !acc);
  write_side_list w !acc

let read_node_side r store =
  let open Dpc_util.Serialize in
  ignore
    (read_list r (fun () ->
       let key = Sha1.of_raw (read_string r) in
       Side_store.put store ~key (Tuple.deserialize r)))

let write_hmap_assocs w assocs =
  let open Dpc_util.Serialize in
  write_list w
    (fun (k, refs) ->
      write_string w k;
      write_list w
        (fun (n, d) ->
          write_varint w n;
          write_string w (Sha1.to_raw d))
        refs)
    (List.sort compare assocs)

(* Replace-wise hmap load shared by full restore and delta replay: the
   blob carries each touched class's FULL ref list, so installing it
   means subtracting whatever list was there before. *)
let read_hmap_assocs r (st : node_state) =
  let open Dpc_util.Serialize in
  ignore
    (read_list r (fun () ->
       let k = read_string r in
       let refs =
         read_list r (fun () ->
           let n = read_varint r in
           (n, Sha1.of_raw (read_string r)))
       in
       (match Hashtbl.find_opt st.hmap k with
       | Some existing -> st.hmap_refs <- st.hmap_refs - List.length !existing
       | None -> ());
       st.hmap_refs <- st.hmap_refs + List.length refs;
       Hashtbl.replace st.hmap k (ref refs)))

(* The canonical node blob: byte-stable for a given table state however
   it was reached. [checkpoint_node] seals dirty tracking around it;
   [digest_node] deliberately does not. *)
let node_blob t node =
  let open Dpc_util.Serialize in
  let st = state t node in
  with_scratch (fun w ->
      write_string w node_magic;
      write_bool w t.interclass;
      write_list w (Rows.write_prov_row w) (table_rows st.prov);
      write_list w (Rows.write_rule_exec_row w) (table_rows st.rule_exec);
      write_list w (Rows.write_rule_exec_row w) (table_rows st.exec_nodes);
      write_list w (Rows.write_link_row w) (table_rows st.exec_links);
      write_list w (write_string w)
        (Hashtbl.fold (fun k () acc -> k :: acc) st.htequi [] |> List.sort compare);
      write_hmap_assocs w (Hashtbl.fold (fun k refs acc -> (k, !refs) :: acc) st.hmap []);
      write_node_side w st.slow_tuples;
      write_node_side w st.events)

let checkpoint_node t node =
  let blob = node_blob t node in
  clear_dirty (state t node);
  blob

let digest_node t node = Sha1.to_hex (Sha1.digest_string (node_blob t node))

(* O(changes) delta: dirty rows and side entries plus the equivalence-
   state change record — whether htequi was wiped, the keys added since
   (the wipe, or the last cut), and the full current ref list of every
   hmap class that grew. Same encodings as [checkpoint_node], canonically
   sorted. *)
let checkpoint_delta t node =
  let open Dpc_util.Serialize in
  let st = state t node in
  let blob =
    with_scratch (fun w ->
        write_string w delta_magic;
        write_bool w t.interclass;
        write_list w (Rows.write_prov_row w) (List.sort compare st.dirty.d_prov);
        write_list w (Rows.write_rule_exec_row w) (List.sort compare st.dirty.d_exec);
        write_list w (Rows.write_rule_exec_row w) (List.sort compare st.dirty.d_exec_nodes);
        write_list w (Rows.write_link_row w) (List.sort compare st.dirty.d_exec_links);
        write_bool w st.dirty.htequi_cleared;
        write_list w (write_string w) (List.sort compare st.dirty.d_htequi);
        write_hmap_assocs w
          (Hashtbl.fold
             (fun k () acc ->
               match Hashtbl.find_opt st.hmap k with
               | Some refs -> (k, !refs) :: acc
               | None -> acc)
             st.dirty.d_hmap []);
        write_side_list w st.dirty.d_slow;
        write_side_list w st.dirty.d_events)
  in
  clear_dirty st;
  blob

let read_rows_into t node r =
  let open Dpc_util.Serialize in
  List.iter
    (fun (row : Rows.prov_row) -> add_prov t ~node ~key:(Rows.key row.vid) row)
    (read_list r (fun () -> Rows.read_prov_row r));
  List.iter
    (fun (row : Rows.rule_exec_row) -> add_rule_exec t ~node ~key:(Rows.key row.rid) row)
    (read_list r (fun () -> Rows.read_rule_exec_row r));
  List.iter
    (fun (row : Rows.rule_exec_row) -> add_exec_node t ~node ~key:(Rows.key row.rid) row)
    (read_list r (fun () -> Rows.read_rule_exec_row r));
  List.iter
    (fun (row : Rows.link_row) -> add_exec_link t ~node ~key:(Rows.key row.link_rid) row)
    (read_list r (fun () -> Rows.read_link_row r))

let apply_delta t node blob =
  let open Dpc_util.Serialize in
  let r = reader blob in
  if not (String.equal (read_string r) delta_magic) then
    raise (Corrupt "not an Advanced node delta");
  let interclass = read_bool r in
  if interclass <> t.interclass then raise (Corrupt "node delta layout mismatch");
  read_rows_into t node r;
  let st = state t node in
  if read_bool r then Hashtbl.reset st.htequi;
  ignore (read_list r (fun () -> Hashtbl.replace st.htequi (read_string r) ()));
  read_hmap_assocs r st;
  read_node_side r st.slow_tuples;
  read_node_side r st.events;
  if not (at_end r) then raise (Corrupt "trailing bytes in Advanced node delta");
  clear_dirty st

let restore_node t node blob =
  let open Dpc_util.Serialize in
  let r = reader blob in
  if not (String.equal (read_string r) node_magic) then
    raise (Corrupt "not an Advanced node checkpoint");
  let interclass = read_bool r in
  if interclass <> t.interclass then raise (Corrupt "node checkpoint layout mismatch");
  read_rows_into t node r;
  let st = state t node in
  ignore (read_list r (fun () -> Hashtbl.replace st.htequi (read_string r) ()));
  read_hmap_assocs r st;
  read_node_side r st.slow_tuples;
  read_node_side r st.events;
  clear_dirty st
