open Dpc_ndlog

type entry =
  | Input of Tuple.t
  | Arrival of { event : Tuple.t; meta : Prov_hook.meta }
  | Sig of { op : Prov_hook.slow_op; tuple : Tuple.t }
  | Slow_insert of Tuple.t
  | Slow_delete of Tuple.t
  | Load of Tuple.t
  | Next_seq of { peer : int; seq : int }
  | Expected of { peer : int; seq : int }

let is_boundary = function Next_seq _ | Expected _ -> false | _ -> true

module S = Dpc_util.Serialize

let write_digest w d = S.write_string w (Dpc_util.Sha1.to_raw d)
let read_digest r = Dpc_util.Sha1.of_raw (S.read_string r)

let write_meta w (m : Prov_hook.meta) =
  write_digest w m.evid;
  S.write_bool w m.exist_flag;
  (match m.eqkey with
  | None -> S.write_bool w false
  | Some k ->
      S.write_bool w true;
      write_digest w k);
  match m.prev with
  | None -> S.write_bool w false
  | Some (node, rid) ->
      S.write_bool w true;
      S.write_varint w node;
      write_digest w rid

let read_meta r : Prov_hook.meta =
  let evid = read_digest r in
  let exist_flag = S.read_bool r in
  let eqkey = if S.read_bool r then Some (read_digest r) else None in
  let prev =
    if S.read_bool r then begin
      let node = S.read_varint r in
      let rid = read_digest r in
      Some (node, rid)
    end
    else None
  in
  { evid; exist_flag; eqkey; prev }

let write w = function
  | Input tuple ->
      S.write_varint w 0;
      Tuple.serialize w tuple
  | Arrival { event; meta } ->
      S.write_varint w 1;
      Tuple.serialize w event;
      write_meta w meta
  | Sig { op; tuple } ->
      S.write_varint w 2;
      S.write_bool w (op = Prov_hook.Slow_insert);
      Tuple.serialize w tuple
  | Slow_insert tuple ->
      S.write_varint w 3;
      Tuple.serialize w tuple
  | Slow_delete tuple ->
      S.write_varint w 4;
      Tuple.serialize w tuple
  | Load tuple ->
      S.write_varint w 5;
      Tuple.serialize w tuple
  | Next_seq { peer; seq } ->
      S.write_varint w 6;
      S.write_varint w peer;
      S.write_varint w seq
  | Expected { peer; seq } ->
      S.write_varint w 7;
      S.write_varint w peer;
      S.write_varint w seq

let read r =
  match S.read_varint r with
  | 0 -> Input (Tuple.deserialize r)
  | 1 ->
      let event = Tuple.deserialize r in
      let meta = read_meta r in
      Arrival { event; meta }
  | 2 ->
      let op = if S.read_bool r then Prov_hook.Slow_insert else Prov_hook.Slow_delete in
      Sig { op; tuple = Tuple.deserialize r }
  | 3 -> Slow_insert (Tuple.deserialize r)
  | 4 -> Slow_delete (Tuple.deserialize r)
  | 5 -> Load (Tuple.deserialize r)
  | 6 ->
      let peer = S.read_varint r in
      Next_seq { peer; seq = S.read_varint r }
  | 7 ->
      let peer = S.read_varint r in
      Expected { peer; seq = S.read_varint r }
  | tag -> raise (S.Corrupt (Printf.sprintf "unknown journal entry tag %d" tag))
