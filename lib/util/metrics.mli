(** Named counters, gauges, and histograms for per-node instrumentation.

    Each {!Dpc_engine.Node} carries one registry; the runtime and the
    provenance stores record into it (events fired, bytes shipped, rows
    written, equivalence-class hits/misses, ...). Snapshots are immutable
    and mergeable, so a cluster-wide view is the merge of the per-node
    snapshots. *)

type histogram = { count : int; sum : float; min : float; max : float }

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
  histograms : (string * histogram) list;  (** sorted by name *)
}

type t
(** A mutable registry. Names are created on first use. Every operation is
    guarded by an internal mutex, so a registry may be read — or, when a
    workload shares one deliberately, written — from several domains; a
    {!snapshot} is always internally consistent. *)

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to a counter. *)

val counter_value : t -> string -> int
(** Current value of a counter (0 if never incremented). *)

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit
(** Record a sample into a histogram (count/sum/min/max are kept). *)

val clear : t -> unit

val snapshot : t -> snapshot

val empty : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise union: counters and histogram moments add; gauges sum (a
    gauge is a level, and the cluster-wide level of e.g. table sizes is
    the sum of the per-node levels). *)

val counter : snapshot -> string -> int
(** 0 if absent. *)

val gauge : snapshot -> string -> float option
val histogram : snapshot -> string -> histogram option
val mean : histogram -> float

val to_rows : snapshot -> string list list
(** [[name; kind; value]] rows for {!Table_fmt.print}. *)
