lib/analysis/equi_keys.ml: Delp Depgraph Dpc_ndlog Dpc_util Format List Printf String Tuple Value
