lib/core/backend.ml: Dpc_analysis Dpc_engine Store_advanced Store_basic Store_exspan
