lib/ndlog/lexer.ml: Buffer List Printf String
