lib/apps/dns.ml: Delp Dpc_engine Dpc_ndlog List Parser Printf String Tuple Value
