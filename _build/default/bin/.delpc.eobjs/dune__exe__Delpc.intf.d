bin/delpc.mli:
