(* Tests for dpc_net: topology invariants, the transit-stub and tree
   generators, routing, and the discrete-event simulator. *)

open Dpc_net

let check = Alcotest.check
let link = { Topology.latency = 0.01; bandwidth = 1e6 }
let fast_link = { Topology.latency = 0.001; bandwidth = 1e6 }

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_links () =
  let t = Topology.create ~n:3 in
  Topology.add_link t 0 1 link;
  check Alcotest.bool "connected" true (Topology.connected t 0 1);
  check Alcotest.bool "symmetric" true (Topology.connected t 1 0);
  check Alcotest.bool "absent" false (Topology.connected t 0 2);
  check Alcotest.int "degree" 1 (Topology.degree t 0);
  check Alcotest.int "one undirected link" 1 (List.length (Topology.links t))

let test_topology_rejects_bad_links () =
  let t = Topology.create ~n:2 in
  Alcotest.check_raises "self link" (Invalid_argument "Topology.add_link: self-link")
    (fun () -> Topology.add_link t 0 0 link);
  Alcotest.check_raises "out of range" (Invalid_argument "Topology: node 5 out of range")
    (fun () -> Topology.add_link t 0 5 link)

let test_topology_connectivity () =
  let t = Topology.create ~n:3 in
  Topology.add_link t 0 1 link;
  check Alcotest.bool "disconnected" false (Topology.is_connected t);
  Topology.add_link t 1 2 link;
  check Alcotest.bool "connected" true (Topology.is_connected t)

(* ------------------------------------------------------------------ *)
(* Transit-stub generator *)

let test_transit_stub_shape () =
  let rng = Dpc_util.Rng.create ~seed:7 in
  let ts = Transit_stub.generate ~rng Transit_stub.paper_params in
  check Alcotest.int "100 nodes" 100 (Topology.size ts.topology);
  check Alcotest.int "4 transit" 4 (List.length ts.transit_nodes);
  check Alcotest.int "96 stubs" 96 (List.length ts.stub_nodes);
  check Alcotest.bool "connected" true (Topology.is_connected ts.topology);
  (* Transit mesh. *)
  List.iter
    (fun a ->
      List.iter
        (fun b -> if a <> b then check Alcotest.bool "transit mesh" true (Topology.connected ts.topology a b))
        ts.transit_nodes)
    ts.transit_nodes

let test_transit_stub_link_classes () =
  let rng = Dpc_util.Rng.create ~seed:7 in
  let p = Transit_stub.paper_params in
  let ts = Transit_stub.generate ~rng p in
  (match Topology.link ts.topology 0 1 with
  | Some l -> check (Alcotest.float 1e-9) "transit latency" p.transit_link.latency l.latency
  | None -> Alcotest.fail "transit link missing");
  (* Every stub-stub link uses the stub class. *)
  List.iter
    (fun (a, b, (l : Topology.link)) ->
      let is_transit v = v < p.transit in
      if (not (is_transit a)) && not (is_transit b) then
        check (Alcotest.float 1e-9) "stub latency" p.stub_link.latency l.latency)
    (Topology.links ts.topology)

let test_transit_stub_path_stats_close_to_paper () =
  (* The paper reports diameter 12 and mean pair distance 5.3 for its
     GT-ITM topology; ours should be in the same regime. *)
  let rng = Dpc_util.Rng.create ~seed:11 in
  let ts = Transit_stub.generate ~rng Transit_stub.paper_params in
  let routing = Routing.compute ts.topology in
  let diameter = Routing.diameter routing in
  let mean = Routing.mean_pair_distance routing in
  if diameter < 6 || diameter > 16 then Alcotest.failf "diameter %d out of regime" diameter;
  if mean < 3.0 || mean > 8.0 then Alcotest.failf "mean distance %.2f out of regime" mean

let test_transit_stub_deterministic () =
  let gen seed =
    let rng = Dpc_util.Rng.create ~seed in
    Topology.links (Transit_stub.generate ~rng Transit_stub.paper_params).topology
    |> List.map (fun (a, b, _) -> (a, b))
  in
  check Alcotest.bool "same seed, same topology" true (gen 3 = gen 3);
  check Alcotest.bool "different seed, different topology" true (gen 3 <> gen 4)

(* ------------------------------------------------------------------ *)
(* Tree generator *)

let test_tree_shape () =
  let rng = Dpc_util.Rng.create ~seed:5 in
  let tr = Tree_topo.generate ~rng ~n:100 ~backbone_depth:27 ~link in
  check Alcotest.int "100 nodes" 100 (Topology.size tr.topology);
  check Alcotest.bool "connected" true (Topology.is_connected tr.topology);
  check Alcotest.int "root has no parent" (-1) tr.parent.(0);
  check Alcotest.int "max depth from backbone" 27 (Tree_topo.max_depth tr);
  (* A tree: n-1 links. *)
  check Alcotest.int "99 links" 99 (List.length (Topology.links tr.topology))

let test_tree_children_inverse_of_parent () =
  let rng = Dpc_util.Rng.create ~seed:5 in
  let tr = Tree_topo.generate ~rng ~n:30 ~backbone_depth:5 ~link in
  for v = 1 to 29 do
    if not (List.mem v (Tree_topo.children tr tr.parent.(v))) then
      Alcotest.failf "node %d missing from its parent's children" v
  done

(* ------------------------------------------------------------------ *)
(* Routing *)

let line_topology n =
  let t = Topology.create ~n in
  for v = 0 to n - 2 do
    Topology.add_link t v (v + 1) link
  done;
  t

let test_routing_line () =
  let t = line_topology 5 in
  let r = Routing.compute t in
  check (Alcotest.option Alcotest.int) "next hop" (Some 1) (Routing.next_hop r ~src:0 ~dst:4);
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "path" (Some [ 0; 1; 2; 3; 4 ]) (Routing.path r ~src:0 ~dst:4);
  check (Alcotest.option Alcotest.int) "hops" (Some 4) (Routing.hop_count r ~src:0 ~dst:4);
  check (Alcotest.option (Alcotest.float 1e-9)) "distance" (Some 0.04)
    (Routing.distance r ~src:0 ~dst:4);
  check (Alcotest.option (Alcotest.list Alcotest.int)) "self path" (Some [ 2 ])
    (Routing.path r ~src:2 ~dst:2)

let test_routing_prefers_low_latency () =
  (* 0-1-2 with fast links vs direct slow 0-2. *)
  let t = Topology.create ~n:3 in
  Topology.add_link t 0 1 fast_link;
  Topology.add_link t 1 2 fast_link;
  Topology.add_link t 0 2 { Topology.latency = 0.1; bandwidth = 1e6 };
  let r = Routing.compute t in
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "two fast hops beat one slow hop" (Some [ 0; 1; 2 ]) (Routing.path r ~src:0 ~dst:2)

let test_routing_unreachable () =
  let t = Topology.create ~n:3 in
  Topology.add_link t 0 1 link;
  let r = Routing.compute t in
  check (Alcotest.option Alcotest.int) "no hop" None (Routing.next_hop r ~src:0 ~dst:2);
  check (Alcotest.option (Alcotest.list Alcotest.int)) "no path" None (Routing.path r ~src:0 ~dst:2)

let test_routing_paths_follow_links () =
  let rng = Dpc_util.Rng.create ~seed:13 in
  let ts = Transit_stub.generate ~rng Transit_stub.paper_params in
  let r = Routing.compute ts.topology in
  let g = Dpc_util.Rng.create ~seed:1 in
  for _ = 1 to 50 do
    let src = Dpc_util.Rng.int g 100 and dst = Dpc_util.Rng.int g 100 in
    match Routing.path r ~src ~dst with
    | None -> Alcotest.fail "transit-stub should be connected"
    | Some p ->
        let rec ok = function
          | a :: (b :: _ as rest) -> Topology.connected ts.topology a b && ok rest
          | [ _ ] | [] -> true
        in
        if not (ok p) then Alcotest.fail "path uses a non-existent link";
        (* Loop-free. *)
        if List.length (List.sort_uniq compare p) <> List.length p then
          Alcotest.fail "path revisits a node"
  done

(* ------------------------------------------------------------------ *)
(* Simulator *)

let test_sim_event_ordering () =
  let t = line_topology 2 in
  let r = Routing.compute t in
  let sim = Sim.create ~topology:t ~routing:r () in
  let log = ref [] in
  Sim.schedule sim ~delay:0.3 (fun () -> log := 3 :: !log);
  Sim.schedule sim ~delay:0.1 (fun () -> log := 1 :: !log);
  Sim.schedule sim ~delay:0.2 (fun () -> log := 2 :: !log);
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "timestamp order" [ 1; 2; 3 ] (List.rev !log);
  check Alcotest.int "events processed" 3 (Sim.events_processed sim)

let test_sim_fifo_at_equal_time () =
  let t = line_topology 2 in
  let sim = Sim.create ~topology:t ~routing:(Routing.compute t) () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~delay:0.5 (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "FIFO" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_send_accounts_bytes_per_hop () =
  let t = line_topology 3 in
  let sim = Sim.create ~topology:t ~routing:(Routing.compute t) () in
  let arrived = ref false in
  Sim.send sim ~src:0 ~dst:2 ~bytes:1000 (fun () -> arrived := true);
  Sim.run sim;
  check Alcotest.bool "arrived" true !arrived;
  (* 1000 bytes over two hops. *)
  check Alcotest.int "total bytes" 2000 (Sim.total_bytes sim);
  check
    (Alcotest.list (Alcotest.pair (Alcotest.pair Alcotest.int Alcotest.int) Alcotest.int))
    "per link" [ ((0, 1), 1000); ((1, 2), 1000) ] (Sim.link_bytes sim);
  (* Arrival time = 2 * (latency + bytes / bandwidth). *)
  check (Alcotest.float 1e-9) "clock" (2.0 *. (0.01 +. 0.001)) (Sim.now sim)

let test_sim_self_send () =
  let t = line_topology 2 in
  let sim = Sim.create ~topology:t ~routing:(Routing.compute t) () in
  let arrived = ref false in
  Sim.send sim ~src:0 ~dst:0 ~bytes:100 (fun () -> arrived := true);
  Sim.run sim;
  check Alcotest.bool "delivered" true !arrived;
  check Alcotest.int "no bytes on the wire" 0 (Sim.total_bytes sim)

let test_sim_until_limit () =
  let t = line_topology 2 in
  let sim = Sim.create ~topology:t ~routing:(Routing.compute t) () in
  let fired = ref 0 in
  Sim.schedule sim ~delay:1.0 (fun () -> incr fired);
  Sim.schedule sim ~delay:3.0 (fun () -> incr fired);
  Sim.run ~until:2.0 sim;
  check Alcotest.int "only the first event" 1 !fired;
  Sim.run sim;
  check Alcotest.int "rest runs later" 2 !fired

let test_sim_bucket_accounting () =
  let t = line_topology 2 in
  let sim = Sim.create ~bucket_width:1.0 ~topology:t ~routing:(Routing.compute t) () in
  Sim.schedule sim ~delay:0.5 (fun () -> Sim.send sim ~src:0 ~dst:1 ~bytes:10 (fun () -> ()));
  Sim.schedule sim ~delay:2.5 (fun () -> Sim.send sim ~src:0 ~dst:1 ~bytes:20 (fun () -> ()));
  Sim.run sim;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "buckets" [ (0, 10); (2, 20) ] (Sim.bucket_bytes sim)

let test_sim_unreachable_send_fails () =
  let t = Topology.create ~n:2 in
  let sim = Sim.create ~topology:t ~routing:(Routing.compute t) () in
  Alcotest.check_raises "unreachable" (Failure "Sim.send: node 1 unreachable from 0")
    (fun () -> Sim.send sim ~src:0 ~dst:1 ~bytes:1 (fun () -> ()))

let prop_sim_heap_order =
  QCheck.Test.make ~name:"random delays fire in order" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 30) (float_bound_inclusive 10.0))
    (fun delays ->
      delays = [] ||
      begin
        let t = line_topology 2 in
        let sim = Sim.create ~topology:t ~routing:(Routing.compute t) () in
        let fired = ref [] in
        List.iter (fun d -> Sim.schedule sim ~delay:d (fun () -> fired := Sim.now sim :: !fired)) delays;
        Sim.run sim;
        let order = List.rev !fired in
        List.sort compare order = order
      end)

(* ------------------------------------------------------------------ *)
(* Transport — one conformance suite, run against both backends. *)

(* Each case takes a factory so every test gets a fresh transport. *)
let conformance mk =
  let test name f = Alcotest.test_case name `Quick (fun () -> f (mk ())) in
  [
    test "three nodes" (fun tr -> check Alcotest.int "nodes" 3 (Transport.nodes tr));
    test "schedule fires in timestamp order" (fun tr ->
        let log = ref [] in
        Transport.schedule tr ~delay:0.3 (fun () -> log := 3 :: !log);
        Transport.schedule tr ~delay:0.1 (fun () -> log := 1 :: !log);
        Transport.schedule tr ~delay:0.2 (fun () -> log := 2 :: !log);
        Transport.run tr;
        check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !log));
    test "FIFO at equal time" (fun tr ->
        let log = ref [] in
        for i = 1 to 5 do
          Transport.schedule tr ~delay:0.5 (fun () -> log := i :: !log)
        done;
        Transport.run tr;
        check (Alcotest.list Alcotest.int) "FIFO" [ 1; 2; 3; 4; 5 ] (List.rev !log));
    test "negative delay rejected" (fun tr ->
        match Transport.schedule tr ~delay:(-1.0) (fun () -> ()) with
        | () -> Alcotest.fail "negative delay accepted"
        | exception Invalid_argument _ -> ());
    test "send delivers through the queue, never synchronously" (fun tr ->
        let arrived = ref false in
        Transport.send tr ~src:0 ~dst:2 ~bytes:100 (fun () -> arrived := true);
        check Alcotest.bool "not yet" false !arrived;
        Transport.run tr;
        check Alcotest.bool "delivered" true !arrived);
    test "send counts messages and bytes" (fun tr ->
        Transport.send tr ~src:0 ~dst:2 ~bytes:100 (fun () -> ());
        Transport.send tr ~src:0 ~dst:1 ~bytes:50 (fun () -> ());
        Transport.run tr;
        check Alcotest.bool "messages" true (Transport.messages tr >= 2);
        check Alcotest.bool "bytes" true (Transport.total_bytes tr >= 150));
    test "broadcast reaches every node, origin included" (fun tr ->
        let seen = ref [] in
        Transport.broadcast tr ~src:1 ~bytes:10 (fun dst -> seen := dst :: !seen);
        Transport.run tr;
        check (Alcotest.list Alcotest.int) "all nodes" [ 0; 1; 2 ]
          (List.sort compare !seen));
    test "run ?until keeps future events queued" (fun tr ->
        let fired = ref 0 in
        Transport.schedule tr ~delay:1.0 (fun () -> incr fired);
        Transport.schedule tr ~delay:3.0 (fun () -> incr fired);
        Transport.run ~until:2.0 tr;
        check Alcotest.int "only the first" 1 !fired;
        check Alcotest.bool "clock within limit" true (Transport.now tr <= 2.0);
        Transport.run tr;
        check Alcotest.int "rest runs later" 2 !fired);
    test "clock is monotone across deliveries" (fun tr ->
        let times = ref [] in
        Transport.schedule tr ~delay:0.2 (fun () -> times := Transport.now tr :: !times);
        Transport.send tr ~src:0 ~dst:2 ~bytes:10 (fun () ->
            times := Transport.now tr :: !times);
        Transport.run tr;
        let order = List.rev !times in
        check Alcotest.bool "sorted" true (List.sort compare order = order));
  ]

let sim_transport () =
  let t = line_topology 3 in
  Transport.of_sim (Sim.create ~topology:t ~routing:(Routing.compute t) ())

let direct_transport () = Transport.direct ~nodes:3 ()

let test_of_sim_shares_sim_accounting () =
  let t = line_topology 3 in
  let sim = Sim.create ~topology:t ~routing:(Routing.compute t) () in
  let tr = Transport.of_sim sim in
  check Alcotest.string "name" "sim" (Transport.name tr);
  Transport.send tr ~src:0 ~dst:2 ~bytes:1000 (fun () -> ());
  Transport.run tr;
  (* Per-hop accounting is the simulator's: two hops on the line. *)
  check Alcotest.int "bytes via transport" (Sim.total_bytes sim) (Transport.total_bytes tr);
  check Alcotest.int "two hops charged" 2000 (Transport.total_bytes tr);
  check (Alcotest.float 1e-9) "same clock" (Sim.now sim) (Transport.now tr)

let test_direct_zero_latency () =
  let tr = direct_transport () in
  check Alcotest.string "name" "direct" (Transport.name tr);
  let at = ref (-1.0) in
  Transport.send tr ~src:0 ~dst:2 ~bytes:500 (fun () -> at := Transport.now tr);
  Transport.run tr;
  check (Alcotest.float 1e-9) "arrives now" 0.0 !at;
  (* Flat per-message accounting: no hops, each message charged once. *)
  check Alcotest.int "bytes once" 500 (Transport.total_bytes tr);
  check Alcotest.int "one message" 1 (Transport.messages tr)

let test_direct_rejects_bad_args () =
  (match Transport.direct ~nodes:0 () with
  | _ -> Alcotest.fail "nodes = 0 accepted"
  | exception Invalid_argument _ -> ());
  let tr = direct_transport () in
  Alcotest.check_raises "dst out of range"
    (Failure "Transport.direct: node 5 out of range") (fun () ->
      Transport.send tr ~src:0 ~dst:5 ~bytes:1 (fun () -> ()))

let prop_direct_random_schedule_order =
  QCheck.Test.make ~name:"direct: random delays fire in order" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 30) (float_bound_inclusive 10.0))
    (fun delays ->
      delays = []
      ||
      let tr = direct_transport () in
      let fired = ref [] in
      List.iter
        (fun d -> Transport.schedule tr ~delay:d (fun () -> fired := Transport.now tr :: !fired))
        delays;
      Transport.run tr;
      let order = List.rev !fired in
      List.sort compare order = order)

(* ------------------------------------------------------------------ *)
(* Crash faults: the crashable wrapper and the reliable layer's channel
   state as data. *)

let test_crashable_cuts_deliveries () =
  let tr, control = Transport.crashable (Transport.direct ~nodes:3 ()) in
  check Alcotest.string "name" "crashable+direct" (Transport.name tr);
  let delivered = ref 0 in
  control.Transport.crash 1;
  check Alcotest.bool "node 1 down" false (control.Transport.is_up 1);
  Transport.send tr ~src:0 ~dst:1 ~bytes:10 (fun () -> incr delivered);
  Transport.send tr ~src:0 ~dst:2 ~bytes:10 (fun () -> incr delivered);
  Transport.run tr;
  check Alcotest.int "only the up node heard" 1 !delivered;
  check Alcotest.int "suppression counted" 1 (Atomic.get control.Transport.crash_stats.suppressed);
  (* Bytes are still charged: the failure is at the receiver, not the wire. *)
  check Alcotest.int "bytes charged for both" 20 (Transport.total_bytes tr);
  control.Transport.restart 1;
  Transport.send tr ~src:0 ~dst:1 ~bytes:10 (fun () -> incr delivered);
  Transport.run tr;
  check Alcotest.int "delivers again after restart" 2 !delivered

let test_crashable_up_check_at_arrival () =
  (* A message in flight when its destination crashes dies with it: the
     up-check runs at arrival time, not send time. *)
  let t = line_topology 2 in
  let tr, control = Transport.crashable (Transport.of_sim (Sim.create ~topology:t ~routing:(Routing.compute t) ())) in
  let delivered = ref false in
  Transport.send tr ~src:0 ~dst:1 ~bytes:10 (fun () -> delivered := true);
  (* The link latency is 2 ms; crash node 1 at 1 ms, while the message is
     on the wire. *)
  Transport.schedule tr ~delay:0.001 (fun () -> control.Transport.crash 1);
  Transport.run tr;
  check Alcotest.bool "in-flight message lost" false !delivered;
  check Alcotest.int "counted" 1 (Atomic.get control.Transport.crash_stats.suppressed)

let test_crashable_idempotent_and_ranged () =
  let _, control = Transport.crashable (Transport.direct ~nodes:2 ()) in
  control.Transport.crash 0;
  control.Transport.crash 0;
  check Alcotest.int "double crash counts once" 1 (Atomic.get control.Transport.crash_stats.crashes);
  control.Transport.restart 0;
  control.Transport.restart 0;
  check Alcotest.bool "up again" true (control.Transport.is_up 0);
  (match control.Transport.crash 7 with
  | () -> Alcotest.fail "out-of-range crash accepted"
  | exception Invalid_argument _ -> ());
  match control.Transport.is_up (-1) with
  | _ -> Alcotest.fail "out-of-range is_up accepted"
  | exception Invalid_argument _ -> ()

let reliable_world () =
  let rel = Reliable.wrap (Transport.direct ~nodes:3 ()) in
  let tr = Reliable.transport rel in
  for _ = 1 to 4 do
    Transport.send tr ~src:0 ~dst:1 ~bytes:50 (fun () -> ())
  done;
  Transport.send tr ~src:2 ~dst:0 ~bytes:50 (fun () -> ());
  Transport.run tr;
  (rel, tr)

let test_reliable_snapshot_roundtrip () =
  let rel, _ = reliable_world () in
  let sender = Reliable.snapshot rel ~node:0 in
  let receiver = Reliable.snapshot rel ~node:1 in
  (* Forget wipes the state a crash would take; restore rebuilds it, and a
     re-snapshot is byte-identical. *)
  Reliable.forget rel ~node:0;
  check Alcotest.bool "forget changed the sender state" true
    (Reliable.snapshot rel ~node:0 <> sender);
  Reliable.restore rel ~node:0 sender;
  check Alcotest.string "sender state round-trips" sender (Reliable.snapshot rel ~node:0);
  Reliable.forget rel ~node:1;
  Reliable.restore rel ~node:1 receiver;
  check Alcotest.string "receiver state round-trips" receiver (Reliable.snapshot rel ~node:1)

let test_reliable_restore_is_monotonic () =
  let rel, tr = reliable_world () in
  let old = Reliable.snapshot rel ~node:0 in
  (* Advance the channel past the snapshot, then replay the stale blob:
     nothing may move backwards. *)
  Transport.send tr ~src:0 ~dst:1 ~bytes:50 (fun () -> ());
  Transport.run tr;
  let fresh = Reliable.snapshot rel ~node:0 in
  check Alcotest.bool "the channel advanced" true (fresh <> old);
  Reliable.restore rel ~node:0 old;
  check Alcotest.string "stale restore is a no-op" fresh (Reliable.snapshot rel ~node:0)

let test_reliable_persist_observes_advances () =
  let rel = Reliable.wrap (Transport.direct ~nodes:2 ()) in
  let tr = Reliable.transport rel in
  let events = ref [] in
  Reliable.set_persist rel (fun ev -> events := ev :: !events);
  Transport.send tr ~src:0 ~dst:1 ~bytes:10 (fun () -> ());
  Transport.run tr;
  let next_seqs =
    List.filter (function Reliable.Next_seq _ -> true | _ -> false) !events
  and expecteds =
    List.filter (function Reliable.Expected _ -> true | _ -> false) !events
  in
  check Alcotest.int "one sender advance" 1 (List.length next_seqs);
  check Alcotest.int "one watermark advance" 1 (List.length expecteds)

let test_reliable_restore_rejects_garbage () =
  let rel, _ = reliable_world () in
  match Reliable.restore rel ~node:0 "not a snapshot" with
  | () -> Alcotest.fail "garbage accepted"
  | exception Dpc_util.Serialize.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Partition faults: the partitionable wrapper, outage plans, backoff
   arithmetic, and the suspension/resurrection path. *)

let test_partitionable_directed_links () =
  let tr, control = Transport.partitionable (Transport.direct ~nodes:3 ()) in
  check Alcotest.string "name" "partitionable+direct" (Transport.name tr);
  let delivered = ref 0 in
  control.Transport.set_link ~src:0 ~dst:1 ~up:false;
  check Alcotest.bool "0->1 down" false (control.Transport.link_up ~src:0 ~dst:1);
  check Alcotest.bool "1->0 still up (directed)" true (control.Transport.link_up ~src:1 ~dst:0);
  Transport.send tr ~src:0 ~dst:1 ~bytes:10 (fun () -> incr delivered);
  Transport.send tr ~src:1 ~dst:0 ~bytes:10 (fun () -> incr delivered);
  Transport.send tr ~src:0 ~dst:2 ~bytes:10 (fun () -> incr delivered);
  Transport.run tr;
  check Alcotest.int "only the up links heard" 2 !delivered;
  let pstats = control.Transport.partition_stats in
  check Alcotest.int "loss counted" 1 (Atomic.get pstats.lost);
  (* Bytes are charged either way: the cut is at the receiver's side of
     the wire, not the sender's. *)
  check Alcotest.int "bytes charged for all three" 30 (Transport.total_bytes tr);
  (* Idempotence: re-cutting a down link is not a new cut. *)
  control.Transport.set_link ~src:0 ~dst:1 ~up:false;
  check Alcotest.int "double cut counts once" 1 (Atomic.get pstats.cuts);
  control.Transport.set_link ~src:0 ~dst:1 ~up:true;
  control.Transport.set_link ~src:0 ~dst:1 ~up:true;
  check Alcotest.int "double heal counts once" 1 (Atomic.get pstats.heals);
  Transport.send tr ~src:0 ~dst:1 ~bytes:10 (fun () -> incr delivered);
  Transport.run tr;
  check Alcotest.int "delivers again after heal" 3 !delivered;
  (match control.Transport.set_link ~src:0 ~dst:7 ~up:false with
  | () -> Alcotest.fail "out-of-range set_link accepted"
  | exception Invalid_argument _ -> ());
  match control.Transport.link_up ~src:(-1) ~dst:0 with
  | _ -> Alcotest.fail "out-of-range link_up accepted"
  | exception Invalid_argument _ -> ()

let test_partition_cut_at_arrival () =
  (* A message in flight when its link goes down dies with it: the link
     check runs at arrival time, like the crashable up-check. *)
  let t = line_topology 2 in
  let tr, control =
    Transport.partitionable
      (Transport.of_sim (Sim.create ~topology:t ~routing:(Routing.compute t) ()))
  in
  let delivered = ref false in
  Transport.send tr ~src:0 ~dst:1 ~bytes:10 (fun () -> delivered := true);
  Transport.schedule tr ~delay:0.001 (fun () -> control.Transport.set_link ~src:0 ~dst:1 ~up:false);
  Transport.run tr;
  check Alcotest.bool "in-flight message lost" false !delivered;
  check Alcotest.int "counted" 1 (Atomic.get control.Transport.partition_stats.lost)

let test_partition_plans () =
  (* Constructor validation. *)
  (match Transport.outage ~src:0 ~dst:1 ~from:2.0 ~until:1.0 with
  | _ -> Alcotest.fail "inverted outage accepted"
  | exception Invalid_argument _ -> ());
  (match Transport.outage ~src:0 ~dst:1 ~from:(-1.0) ~until:1.0 with
  | _ -> Alcotest.fail "negative outage accepted"
  | exception Invalid_argument _ -> ());
  (* A split cuts exactly the directed cross pairs, both ways. *)
  let split = Transport.split_plan ~nodes:4 ~left:[ 0; 1 ] ~at:1.0 ~duration:2.0 in
  check Alcotest.int "2x2 split cuts 8 directed links" 8 (List.length split);
  List.iter
    (fun (o : Transport.outage) ->
      let side n = List.mem n [ 0; 1 ] in
      check Alcotest.bool "cut crosses the split" true (side o.link_src <> side o.link_dst);
      check (Alcotest.float 1e-9) "cut at" 1.0 o.from;
      check (Alcotest.float 1e-9) "heal at" 3.0 o.until)
    split;
  check (Alcotest.float 1e-9) "split horizon" 3.0 (Transport.plan_horizon split);
  (* A flap is [cycles] windows per direction, dwell apart. *)
  let flap = Transport.flap_plan ~a:0 ~b:1 ~at:0.5 ~cycles:3 ~down:0.2 ~dwell:0.3 in
  check Alcotest.int "3 cycles x 2 directions" 6 (List.length flap);
  check (Alcotest.float 1e-9) "last flap heals at" (0.5 +. (2.0 *. 0.5) +. 0.2)
    (Transport.plan_horizon flap);
  (* Seeded-random plans are reproducible, in-horizon, and respect the
     duration bounds. *)
  let draw () =
    Transport.random_plan ~seed:42 ~nodes:4 ~count:5 ~horizon:10.0 ~min_down:0.5 ~max_down:2.0
      ~dwell:0.1 ()
  in
  let p1 = draw () and p2 = draw () in
  check Alcotest.bool "same seed, same plan" true (p1 = p2);
  check Alcotest.bool "a different seed diverges" true
    (p1
    <> Transport.random_plan ~seed:43 ~nodes:4 ~count:5 ~horizon:10.0 ~min_down:0.5
         ~max_down:2.0 ~dwell:0.1 ());
  check Alcotest.bool "plan non-empty" true (p1 <> []);
  List.iter
    (fun (o : Transport.outage) ->
      check Alcotest.bool "window inside horizon" true (o.from >= 0.0 && o.from <= 10.0);
      let d = o.until -. o.from in
      check Alcotest.bool "duration within bounds" true (d >= 0.5 && d <= 2.0);
      check Alcotest.bool "directed pair valid" true
        (o.link_src <> o.link_dst && o.link_src >= 0 && o.link_src < 4 && o.link_dst >= 0
       && o.link_dst < 4))
    p1

let test_schedule_plan_applies () =
  let tr, control = Transport.partitionable (Transport.direct ~nodes:2 ()) in
  Transport.schedule_plan tr control (Transport.link_plan ~a:0 ~b:1 ~at:1.0 ~duration:1.0);
  let during = ref 0 and after = ref 0 in
  Transport.schedule tr ~delay:1.5 (fun () ->
      Transport.send tr ~src:0 ~dst:1 ~bytes:5 (fun () -> incr during));
  Transport.schedule tr ~delay:2.5 (fun () ->
      Transport.send tr ~src:1 ~dst:0 ~bytes:5 (fun () -> incr after));
  Transport.run tr;
  check Alcotest.int "send during the outage lost" 0 !during;
  check Alcotest.int "send after the heal delivered" 1 !after;
  check Alcotest.int "both directions cut" 2 (Atomic.get control.Transport.partition_stats.cuts);
  check Alcotest.int "both directions healed" 2
    (Atomic.get control.Transport.partition_stats.heals)

let test_backoff_arithmetic () =
  (* No jitter: pure capped exponential. timeout 0.125 doubles to exactly
     the 1.0 cap on the 4th attempt; later attempts stay pinned there. *)
  let config =
    { Reliable.default_config with timeout = 0.125; backoff = 2.0; max_timeout = 1.0 }
  in
  let d attempt = Reliable.backoff_delay config ~src:0 ~dst:1 ~attempt in
  check (Alcotest.float 0.0) "attempt 1" 0.125 (d 1);
  check (Alcotest.float 0.0) "attempt 2" 0.25 (d 2);
  check (Alcotest.float 0.0) "attempt 3" 0.5 (d 3);
  check (Alcotest.float 0.0) "cap reached exactly" 1.0 (d 4);
  check (Alcotest.float 0.0) "cap holds" 1.0 (d 7);
  (* Jitter: deterministic per (src, dst, attempt), inside
     ((1-jitter) * capped, capped]. *)
  let jc = { config with jitter = 0.5 } in
  let jd ~src ~dst attempt = Reliable.backoff_delay jc ~src ~dst ~attempt in
  check (Alcotest.float 0.0) "jitter is deterministic" (jd ~src:0 ~dst:1 4) (jd ~src:0 ~dst:1 4);
  check Alcotest.bool "channels draw different jitter" true
    (jd ~src:0 ~dst:1 4 <> jd ~src:0 ~dst:2 4);
  check Alcotest.bool "attempts draw different jitter" true
    (jd ~src:0 ~dst:1 4 <> jd ~src:0 ~dst:1 5 || jd ~src:0 ~dst:1 5 = 1.0);
  for attempt = 1 to 8 do
    let v = jd ~src:0 ~dst:1 attempt in
    let capped = d attempt in
    check Alcotest.bool "jittered below the cap" true (v <= capped);
    check Alcotest.bool "jittered above the floor" true (v > 0.5 *. capped)
  done;
  (* wrap rejects jitter outside [0, 1). *)
  (match Reliable.wrap ~config:{ config with jitter = 1.0 } (Transport.direct ~nodes:2 ()) with
  | _ -> Alcotest.fail "jitter = 1 accepted"
  | exception Invalid_argument _ -> ());
  match Reliable.wrap ~config:{ config with jitter = -0.1 } (Transport.direct ~nodes:2 ()) with
  | _ -> Alcotest.fail "negative jitter accepted"
  | exception Invalid_argument _ -> ()

(* The wedge regression: before suspension/resurrection, a partition
   outlasting the retry budget abandoned the channel's tail permanently —
   delivery never happened even after the heal. Now the channel parks
   after exactly [max_retries] retransmissions, probes, and re-offers on
   heal. *)
let test_suspension_and_resurrection () =
  let config =
    { Reliable.timeout = 0.1; backoff = 2.0; max_timeout = 10.0; max_retries = 3; jitter = 0.0 }
  in
  let inner, control = Transport.partitionable (Transport.direct ~nodes:2 ()) in
  let rel = Reliable.wrap ~config inner in
  let tr = Reliable.transport rel in
  control.Transport.set_link ~src:0 ~dst:1 ~up:false;
  let delivered = ref 0 in
  Transport.send tr ~src:0 ~dst:1 ~bytes:20 (fun () -> incr delivered);
  (* Retransmits land at 0.1, 0.3, 0.7; the park decision fires at 1.5.
     Just before it, the budget is exhausted but the channel is live. *)
  Transport.run ~until:1.4 tr;
  let s = Reliable.stats rel in
  check Alcotest.int "exactly max_retries retransmissions" 3 s.retransmits;
  check Alcotest.int "not yet suspended" 0 s.suspensions;
  Transport.run ~until:2.0 tr;
  let s = Reliable.stats rel in
  check Alcotest.int "no retransmission past the budget" 3 s.retransmits;
  check Alcotest.int "channel suspended" 1 s.suspensions;
  check Alcotest.int "message parked" 1 s.abandoned;
  check Alcotest.int "park counted" 1 s.parked;
  check Alcotest.int "one channel suspended" 1 (Reliable.suspended_channels rel);
  check Alcotest.int "nothing delivered through the cut" 0 !delivered;
  (* Heal. The next probe crosses, the pong comes back, the channel
     resurrects and re-offers its tail. *)
  control.Transport.set_link ~src:0 ~dst:1 ~up:true;
  Transport.run tr;
  let s = Reliable.stats rel in
  check Alcotest.int "delivered exactly once after the heal" 1 !delivered;
  check Alcotest.int "resurrected" 1 s.resurrections;
  check Alcotest.int "nothing left parked" 0 s.abandoned;
  check Alcotest.int "no channel suspended" 0 (Reliable.suspended_channels rel);
  check Alcotest.bool "probes were sent" true (s.probes > 0)

let test_tree_invalid_args () =
  let rng = Dpc_util.Rng.create ~seed:1 in
  Alcotest.check_raises "n = 0" (Invalid_argument "Tree_topo.generate: n must be positive")
    (fun () -> ignore (Tree_topo.generate ~rng ~n:0 ~backbone_depth:0 ~link));
  Alcotest.check_raises "backbone too deep"
    (Invalid_argument "Tree_topo.generate: backbone_depth out of range") (fun () ->
      ignore (Tree_topo.generate ~rng ~n:5 ~backbone_depth:5 ~link))

let test_transit_stub_invalid_args () =
  let rng = Dpc_util.Rng.create ~seed:1 in
  Alcotest.check_raises "zero transit"
    (Invalid_argument "Transit_stub.generate: counts must be positive") (fun () ->
      ignore (Transit_stub.generate ~rng { Transit_stub.paper_params with transit = 0 }))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dpc_net"
    [
      ( "topology",
        [
          Alcotest.test_case "links" `Quick test_topology_links;
          Alcotest.test_case "rejects bad links" `Quick test_topology_rejects_bad_links;
          Alcotest.test_case "connectivity" `Quick test_topology_connectivity;
        ] );
      ( "transit_stub",
        [
          Alcotest.test_case "shape" `Quick test_transit_stub_shape;
          Alcotest.test_case "link classes" `Quick test_transit_stub_link_classes;
          Alcotest.test_case "path stats near paper" `Quick
            test_transit_stub_path_stats_close_to_paper;
          Alcotest.test_case "deterministic" `Quick test_transit_stub_deterministic;
          Alcotest.test_case "invalid args" `Quick test_transit_stub_invalid_args;
        ] );
      ( "tree",
        [
          Alcotest.test_case "shape" `Quick test_tree_shape;
          Alcotest.test_case "children inverse" `Quick test_tree_children_inverse_of_parent;
          Alcotest.test_case "invalid args" `Quick test_tree_invalid_args;
        ] );
      ( "routing",
        [
          Alcotest.test_case "line" `Quick test_routing_line;
          Alcotest.test_case "prefers low latency" `Quick test_routing_prefers_low_latency;
          Alcotest.test_case "unreachable" `Quick test_routing_unreachable;
          Alcotest.test_case "paths follow links" `Quick test_routing_paths_follow_links;
        ] );
      ( "sim",
        [
          Alcotest.test_case "event ordering" `Quick test_sim_event_ordering;
          Alcotest.test_case "FIFO at equal time" `Quick test_sim_fifo_at_equal_time;
          Alcotest.test_case "per-hop byte accounting" `Quick test_sim_send_accounts_bytes_per_hop;
          Alcotest.test_case "self send" `Quick test_sim_self_send;
          Alcotest.test_case "until limit" `Quick test_sim_until_limit;
          Alcotest.test_case "bucket accounting" `Quick test_sim_bucket_accounting;
          Alcotest.test_case "unreachable send" `Quick test_sim_unreachable_send_fails;
        ]
        @ qsuite [ prop_sim_heap_order ] );
      ("transport conformance (sim)", conformance sim_transport);
      ("transport conformance (direct)", conformance direct_transport);
      ( "transport backends",
        [
          Alcotest.test_case "of_sim shares accounting" `Quick test_of_sim_shares_sim_accounting;
          Alcotest.test_case "direct zero latency" `Quick test_direct_zero_latency;
          Alcotest.test_case "direct rejects bad args" `Quick test_direct_rejects_bad_args;
        ]
        @ qsuite [ prop_direct_random_schedule_order ] );
      ( "crash faults",
        [
          Alcotest.test_case "crashable cuts deliveries" `Quick test_crashable_cuts_deliveries;
          Alcotest.test_case "up-check at arrival" `Quick test_crashable_up_check_at_arrival;
          Alcotest.test_case "idempotent + range checks" `Quick
            test_crashable_idempotent_and_ranged;
          Alcotest.test_case "channel snapshot round-trips" `Quick
            test_reliable_snapshot_roundtrip;
          Alcotest.test_case "stale restore is a no-op" `Quick test_reliable_restore_is_monotonic;
          Alcotest.test_case "persist observes advances" `Quick
            test_reliable_persist_observes_advances;
          Alcotest.test_case "garbage snapshot rejected" `Quick
            test_reliable_restore_rejects_garbage;
        ] );
      ( "partition faults",
        [
          Alcotest.test_case "directed links + counters" `Quick test_partitionable_directed_links;
          Alcotest.test_case "cut at arrival" `Quick test_partition_cut_at_arrival;
          Alcotest.test_case "plan constructors" `Quick test_partition_plans;
          Alcotest.test_case "schedule_plan applies" `Quick test_schedule_plan_applies;
          Alcotest.test_case "backoff arithmetic" `Quick test_backoff_arithmetic;
          Alcotest.test_case "suspension + resurrection (wedge regression)" `Quick
            test_suspension_and_resurrection;
        ] );
    ]
