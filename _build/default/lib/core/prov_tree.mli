(** Provenance trees (paper §2.2 and Appendix A).

    [tr ::= <rID, P, ev, B1..Bn> | <rID, P, tr, B1..Bn>]: a rule execution
    node derives tuple [P] from a trigger (the input event tuple, or the
    subtree deriving an intermediate event) and the slow-changing tuples
    [B1..Bn] it joined. The root's [output] is the queried tuple. *)

type t = {
  rule : string;
  output : Dpc_ndlog.Tuple.t;
  trigger : trigger;
  slow : Dpc_ndlog.Tuple.t list;
}

and trigger = Event of Dpc_ndlog.Tuple.t | Derived of t

val event_of : t -> Dpc_ndlog.Tuple.t
(** The input event at the leaf (the paper's [EVENTOF]). *)

val depth : t -> int
(** Number of rule executions in the chain (>= 1). *)

val rules_root_to_leaf : t -> string list

val tuples : t -> Dpc_ndlog.Tuple.t list
(** Every tuple in the tree: outputs, slow tuples, and the event. *)

val equal : t -> t -> bool

val equivalent : t -> t -> bool
(** The paper's [~] relation (Appendix A): identical rule sequence and
    identical slow-changing tuples at every level; the derived tuples and
    the input event may differ. *)

val compare : t -> t -> int

val event_id : t -> Dpc_util.Sha1.t
(** [sha1 (EVENTOF tr)]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering, root first. *)

val to_string : t -> string
