(* Tests for dpc_analysis: the attribute-level dependency graph (§5.2,
   Appendix C) and equivalence-key identification (Fig 5). *)

open Dpc_analysis

let check = Alcotest.check

let validate src =
  match Dpc_ndlog.Parser.parse_program ~name:"test" src with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok p -> begin
      match Dpc_ndlog.Delp.validate p with
      | Ok d -> d
      | Error e -> Alcotest.failf "validation error: %s" (Dpc_ndlog.Delp.error_to_string e)
    end

let forwarding () = Dpc_apps.Forwarding.delp ()
let dns () = Dpc_apps.Dns.delp ()

let attr rel idx = { Depgraph.rel; idx }

(* ------------------------------------------------------------------ *)
(* Dependency graph on the paper's forwarding program (Appendix C). *)

let test_depgraph_forwarding_edges () =
  let g = Depgraph.build (forwarding ()) in
  (* Condition 1: packet:0 -- route:0 (variable L in r1),
     packet:2 -- route:1 (variable D). *)
  check Alcotest.bool "packet:0 -- route:0" true
    (List.mem (attr "route" 0) (Depgraph.neighbors g (attr "packet" 0)));
  check Alcotest.bool "packet:2 -- route:1" true
    (List.mem (attr "route" 1) (Depgraph.neighbors g (attr "packet" 2)));
  (* Condition 2: packet:1 -- recv:1 (variable S in r2). *)
  check Alcotest.bool "packet:1 -- recv:1" true
    (List.mem (attr "recv" 1) (Depgraph.neighbors g (attr "packet" 1)));
  (* Condition 3: packet:0 -- packet:2 via D == L. *)
  check Alcotest.bool "packet:0 -- packet:2" true
    (List.mem (attr "packet" 2) (Depgraph.neighbors g (attr "packet" 0)));
  (* The payload attribute never joins anything slow. *)
  check Alcotest.bool "packet:3 not anchored" false
    (Depgraph.is_anchor g (attr "packet" 3))

let test_depgraph_edges_symmetric () =
  List.iter
    (fun delp ->
      let g = Depgraph.build delp in
      List.iter
        (fun v ->
          List.iter
            (fun w ->
              if not (List.mem v (Depgraph.neighbors g w)) then
                Alcotest.failf "edge %s -- %s not symmetric" (Depgraph.attr_to_string v)
                  (Depgraph.attr_to_string w))
            (Depgraph.neighbors g v))
        (Depgraph.vertices g))
    [ forwarding (); dns () ]

let test_depgraph_slow_attrs_are_anchors () =
  let g = Depgraph.build (forwarding ()) in
  check Alcotest.bool "route:0 anchor" true (Depgraph.is_anchor g (attr "route" 0));
  check Alcotest.bool "route:1 anchor" true (Depgraph.is_anchor g (attr "route" 1))

let test_depgraph_reachability () =
  let g = Depgraph.build (forwarding ()) in
  check Alcotest.bool "reflexive" true (Depgraph.reachable g (attr "packet" 0) (attr "packet" 0));
  check Alcotest.bool "packet:0 reaches route:1 (via packet:2)" true
    (Depgraph.reachable g (attr "packet" 0) (attr "route" 1));
  check Alcotest.bool "payload reaches recv:3 only" true
    (Depgraph.reachable g (attr "packet" 3) (attr "recv" 3));
  check Alcotest.bool "payload does not reach route" false
    (Depgraph.reachable g (attr "packet" 3) (attr "route" 0))

let test_depgraph_assignment_edge () =
  let d =
    validate "r1 out(@L, Y) :- ev(@L, X), s(@L, X), Y := X + 1."
  in
  let g = Depgraph.build d in
  (* Condition 4: ev:1 (X, RHS) -- out:1 (Y, LHS target). *)
  check Alcotest.bool "ev:1 -- out:1" true
    (List.mem (attr "out" 1) (Depgraph.neighbors g (attr "ev" 1)))

(* ------------------------------------------------------------------ *)
(* Equivalence keys *)

let test_keys_forwarding () =
  let k = Equi_keys.compute (forwarding ()) in
  check (Alcotest.list Alcotest.int) "keys = {packet:0, packet:2}" [ 0; 2 ] (Equi_keys.keys k)

let test_keys_dns () =
  let k = Equi_keys.compute (dns ()) in
  (* Host location and URL; the request id flows only to the reply. *)
  check (Alcotest.list Alcotest.int) "keys = {url:0, url:1}" [ 0; 1 ] (Equi_keys.keys k)

let test_keys_dhcp () =
  let k = Equi_keys.compute (Dpc_apps.Dhcp.delp ()) in
  check (Alcotest.list Alcotest.int) "keys = {discover:0}" [ 0 ] (Equi_keys.keys k)

let test_keys_arp () =
  let k = Equi_keys.compute (Dpc_apps.Arp.delp ()) in
  check (Alcotest.list Alcotest.int) "keys = {arpQuery:0, arpQuery:1}" [ 0; 1 ]
    (Equi_keys.keys k)

let test_keys_always_include_location () =
  (* Even a program whose event never joins anything keeps attribute 0. *)
  let d = validate "r1 out(@L, X) :- ev(@L, X)." in
  let k = Equi_keys.compute d in
  check (Alcotest.list Alcotest.int) "location only" [ 0 ] (Equi_keys.keys k)

let test_key_values_and_hash () =
  let k = Equi_keys.compute (forwarding ()) in
  let p1 = Dpc_apps.Forwarding.packet ~src:1 ~dst:3 ~payload:"a" in
  let p2 = Dpc_apps.Forwarding.packet ~src:1 ~dst:3 ~payload:"b" in
  let p3 = Dpc_apps.Forwarding.packet ~src:2 ~dst:3 ~payload:"a" in
  check Alcotest.bool "same keys" true (Equi_keys.equivalent k p1 p2);
  check Alcotest.bool "different ingress" false (Equi_keys.equivalent k p1 p3);
  check Alcotest.bool "hash agrees" true
    (Dpc_util.Sha1.equal (Equi_keys.key_hash k p1) (Equi_keys.key_hash k p2));
  check Alcotest.bool "hash differs" false
    (Dpc_util.Sha1.equal (Equi_keys.key_hash k p1) (Equi_keys.key_hash k p3))

let test_key_values_wrong_relation () =
  let k = Equi_keys.compute (forwarding ()) in
  let r = Dpc_apps.Forwarding.route ~at:0 ~dst:1 ~next:1 in
  Alcotest.check_raises "rejects non-event tuples"
    (Invalid_argument "Equi_keys.key_values: expected a \"packet\" event tuple") (fun () ->
      ignore (Equi_keys.key_values k r))

(* A non-key attribute really does not influence the execution shape:
   payload is not a key, source IS in the tree only via recv. *)
let test_source_not_a_key_in_forwarding () =
  let k = Equi_keys.compute (forwarding ()) in
  check Alcotest.bool "src (packet:1) is not a key" false (List.mem 1 (Equi_keys.keys k))

(* Property: keys are within the event arity, sorted, start with 0. *)
let prop_keys_well_formed =
  let programs =
    [| forwarding (); dns (); Dpc_apps.Dhcp.delp (); Dpc_apps.Arp.delp () |]
  in
  QCheck.Test.make ~name:"keys well-formed" ~count:50 (QCheck.int_bound 3) (fun i ->
    let d = programs.(i) in
    let keys = Equi_keys.keys (Equi_keys.compute d) in
    let arity = Dpc_ndlog.Delp.event_arity d in
    keys <> []
    && List.hd keys = 0
    && List.for_all (fun k -> k >= 0 && k < arity) keys
    && List.sort_uniq compare keys = keys)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dpc_analysis"
    [
      ( "depgraph",
        [
          Alcotest.test_case "forwarding edges" `Quick test_depgraph_forwarding_edges;
          Alcotest.test_case "edges symmetric" `Quick test_depgraph_edges_symmetric;
          Alcotest.test_case "slow attrs are anchors" `Quick test_depgraph_slow_attrs_are_anchors;
          Alcotest.test_case "reachability" `Quick test_depgraph_reachability;
          Alcotest.test_case "assignment edge" `Quick test_depgraph_assignment_edge;
        ] );
      ( "equi_keys",
        [
          Alcotest.test_case "forwarding" `Quick test_keys_forwarding;
          Alcotest.test_case "dns" `Quick test_keys_dns;
          Alcotest.test_case "dhcp" `Quick test_keys_dhcp;
          Alcotest.test_case "arp" `Quick test_keys_arp;
          Alcotest.test_case "location always included" `Quick test_keys_always_include_location;
          Alcotest.test_case "values and hash" `Quick test_key_values_and_hash;
          Alcotest.test_case "wrong relation" `Quick test_key_values_wrong_relation;
          Alcotest.test_case "source not a key" `Quick test_source_not_a_key_in_forwarding;
        ]
        @ qsuite [ prop_keys_well_formed ] );
    ]
