(** Uniform interface over the three provenance maintenance schemes the
    evaluation compares: ExSPAN (uncompressed), Basic (§4), and Advanced
    (§5, optionally with the §5.4 inter-class layout). *)

type t =
  | Exspan of Store_exspan.t
  | Basic of Store_basic.t
  | Advanced of Store_advanced.t

type scheme = S_exspan | S_basic | S_advanced | S_advanced_interclass

val all_schemes : scheme list
val scheme_name : scheme -> string

val make :
  scheme ->
  delp:Dpc_ndlog.Delp.t ->
  env:Dpc_engine.Env.t ->
  nodes:int ->
  t
(** Builds the store; for the Advanced schemes this runs the static
    analysis ({!Dpc_analysis.Equi_keys.compute}) first. *)

val name : t -> string

val nodes : t -> Dpc_engine.Node.t array
(** The store's cluster; pass to [Runtime.create ~nodes] so the runtime
    and the store share per-node state and metrics. *)

val hook : t -> Dpc_engine.Prov_hook.t

val set_degraded_sink : t -> (int -> unit) -> unit
(** Re-route the degraded-query tick ([crash.queries_degraded]): [f
    querier] runs instead of the default increment on the querier's
    volatile registry. {!Durable.attach} installs a sink that counts into
    the durable per-node log, so the tally survives a crash of the
    querier like the other [crash.*] counters. *)

val node_storage : t -> int -> Rows.storage
val total_storage : t -> Rows.storage

val query :
  t ->
  cost:Query_cost.t ->
  routing:Dpc_net.Routing.t ->
  ?evid:Dpc_util.Sha1.t ->
  ?up:(int -> bool) ->
  Dpc_ndlog.Tuple.t ->
  Query_result.t
(** [up] is the node-liveness predicate (default: everything up). A query
    that touches a down node is charged the bounded timeout/retry budget
    from {!Query_cost} and returns a result marked
    [Query_result.complete = false] instead of hanging or raising. *)

val query_page :
  t ->
  cost:Query_cost.t ->
  routing:Dpc_net.Routing.t ->
  ?evid:Dpc_util.Sha1.t ->
  ?up:(int -> bool) ->
  ?cursor:string ->
  limit:int ->
  Dpc_ndlog.Tuple.t ->
  Query_result.t * Query_result.page
(** {!query}, then one bounded page of the canonical tree order (see
    {!Query_result.paginate}). The full result is returned alongside so
    callers still see latency/completeness accounting.
    @raise Invalid_argument on a bad [limit] or [cursor]. *)

(** {2 Query serving tier: memoization}

    One {!Query_cache.t} is shared by every node of the backend. Attach
    registers the crash-invalidation hooks ({!Dpc_engine.Node.on_reset})
    and wires [query.cache.*] metrics into the per-node registries; §5.5
    [sig] deliveries invalidate through each store's [on_slow_update]. *)

val attach_query_cache : ?capacity:int -> t -> Query_cache.t
val query_cache : t -> Query_cache.t option
val detach_query_cache : t -> unit

val set_query_cache : t -> Query_cache.t option -> unit
(** Install a specific cache instance (e.g. one shared across backends);
    {!attach_query_cache} is the common path. *)

val dump : t -> (string * string list * string list list) list
(** The backend's relational tables as [(name, header, rows)], for
    inspection and the example programs. *)

val checkpoint : t -> string
(** Serialize the store to bytes (scheme-tagged). *)

val restore :
  scheme -> delp:Dpc_ndlog.Delp.t -> env:Dpc_engine.Env.t -> string -> t
(** Rebuild a store from {!checkpoint} output. The scheme must match the
    one the checkpoint was taken from.
    @raise Dpc_util.Serialize.Corrupt on malformed or mismatched input. *)

val checkpoint_node : t -> int -> string
(** Serialize one node's tables for its durable checkpoint (used by
    {!Durable} between WAL compactions). *)

val digest_node : t -> int -> string
(** SHA-1 (hex) of the node's canonical checkpoint blob WITHOUT sealing
    dirty tracking — a pure observation, safe to take between delta
    cuts. Equal digests mean byte-identical node tables; this is what
    the real-process transparency oracle compares against the
    simulator. *)

val restore_node : t -> int -> string -> unit
(** Reload one node's tables after a {!Dpc_engine.Node.reset}, from
    {!checkpoint_node} output taken on the same scheme.
    @raise Dpc_util.Serialize.Corrupt on malformed or mismatched input. *)

val set_dirty_tracking : t -> bool -> unit
(** Enable per-node dirty-set tracking so {!checkpoint_delta} captures
    everything written after this call. {!Durable.attach} turns it on
    when delta checkpoints are configured; it is off by default because
    tracking costs a list cons per insert. *)

val checkpoint_delta : t -> int -> string
(** Serialize one node's changes since its last cut
    ({!checkpoint_node}, {!checkpoint_delta}, or {!restore_node} /
    {!apply_delta}) — O(changes), not O(state) — and clear its dirty
    set. Meaningful only with {!set_dirty_tracking} on. *)

val apply_delta : t -> int -> string -> unit
(** Replay one {!checkpoint_delta} blob on top of the node's current
    state; apply a base {!restore_node} first, then each delta oldest
    to newest. @raise Dpc_util.Serialize.Corrupt on malformed or
    mismatched input. *)
