(** Packet-forwarding experiment driver (§6.1): wires a topology, a
    provenance backend, and a runtime together; installs shortest-path
    routes for the communicating pairs; and injects packet streams. *)

type t = {
  sim : Dpc_net.Sim.t option;
      (** the simulator, when built with {!setup}; [None] under
          {!setup_on} (e.g. a {!Dpc_net.Shard_sim} backend) *)
  transport : Dpc_net.Transport.t;
      (** the transport the runtime sends through (fault wrapper
          included, when [faults] was given) *)
  runtime : Dpc_engine.Runtime.t;
  backend : Dpc_core.Backend.t;
  routing : Dpc_net.Routing.t;
  pairs : (int * int) list;
  fault_stats : Dpc_net.Transport.fault_stats option;
      (** live counters of the fault injector, when [faults] was given *)
}

val sim_exn : t -> Dpc_net.Sim.t
(** The simulator behind a {!setup}-built driver, for bucket-based
    bandwidth measurements. @raise Invalid_argument on a driver built
    with {!setup_on}. *)

val setup :
  scheme:Dpc_core.Backend.scheme ->
  topology:Dpc_net.Topology.t ->
  routing:Dpc_net.Routing.t ->
  pairs:(int * int) list ->
  ?bucket_width:float ->
  ?record_outputs:bool ->
  ?faults:Dpc_net.Transport.fault_config ->
  ?fault_seed:int ->
  ?reliable:Dpc_net.Reliable.config ->
  unit ->
  t
(** [record_outputs] (default [true]) is passed to the runtime; turn it
    off in long measurement runs that never call {!received} or
    {!query_random_outputs}.

    [faults] interposes {!Dpc_net.Transport.faulty} (seeded by
    [fault_seed], default 0) between the simulator and the runtime, and
    [reliable] layers {!Dpc_net.Reliable} on top so the run still
    delivers everything; the retransmit/ack overhead is then readable
    from [Dpc_engine.Runtime.reliability runtime]. Injecting faults
    without [reliable] will lose messages. *)

val setup_on :
  transport:Dpc_net.Transport.t ->
  scheme:Dpc_core.Backend.scheme ->
  routing:Dpc_net.Routing.t ->
  pairs:(int * int) list ->
  ?record_outputs:bool ->
  ?reliable:Dpc_net.Reliable.config ->
  unit ->
  t
(** The same world over an arbitrary transport — the domain-scaling
    bench runs the forwarding workload over {!Dpc_net.Shard_sim} this
    way. [routing] still provides the pair routes (and query-time
    costs); wire latency is whatever the transport models. Drivers built
    here have no simulator: {!sim_exn} raises, bucketed bandwidth series
    are unavailable. *)

val inject_stream :
  t -> rate_per_pair:float -> duration:float -> payload_size:int -> int
(** Inject packets for every pair at [rate_per_pair] packets/second for
    [duration] seconds of simulated time; payloads are unique per packet
    and padded to [payload_size] bytes. Returns the number injected
    (schedules only; call {!run}). *)

val inject_total :
  t -> total:int -> duration:float -> payload_size:int -> int
(** Inject [total] packets distributed evenly (round-robin) across the
    pairs over [duration] seconds (the Fig 10 workload). *)

val run : ?until:float -> t -> unit

val received : t -> Dpc_ndlog.Tuple.t list
(** The [recv] output tuples, in arrival order. *)

val query_random_outputs :
  t -> rng:Dpc_util.Rng.t -> cost:Dpc_core.Query_cost.t -> count:int ->
  Dpc_core.Query_result.t list
(** Execute [count] provenance queries on outputs drawn uniformly from the
    received tuples (the Fig 12 workload).
    @raise Invalid_argument if nothing was received. *)
