(** One node's materialized tuples, addressed by digest.

    Query-time reconstruction needs actual tuple contents: ExSPAN resolves
    every body tuple by its [vid]; Basic and Advanced resolve slow-changing
    tuples by [vid] and the input event by [evid] at its ingress node. This
    mirrors the tuples a declarative networking engine keeps in its node
    databases anyway; the paper's storage metric does not include it (it
    serializes only the [prov]/[ruleExec] tables), so we account for it
    separately.

    A store instance covers a single node; stores hang one off each
    {!Dpc_engine.Node.t} they use. *)

type t

val create : unit -> t

val put : t -> key:Dpc_util.Sha1.t -> Dpc_ndlog.Tuple.t -> unit
(** Idempotent for an existing key. *)

val put_new : t -> key:Dpc_util.Sha1.t -> Dpc_ndlog.Tuple.t -> bool
(** Like {!put}, but reports whether the entry was actually inserted —
    the hook delta checkpointing needs to track first insertions. *)

val get : t -> key:Dpc_util.Sha1.t -> Dpc_ndlog.Tuple.t option

val bytes : t -> int
val count : t -> int

val iter : t -> (key:Dpc_util.Sha1.t -> Dpc_ndlog.Tuple.t -> unit) -> unit
(** Visit every entry, in unspecified order. *)
