lib/net/tree_topo.ml: Array Dpc_util List Topology
