examples/route_update.ml: Backend Dpc_apps Dpc_core Dpc_engine Dpc_ndlog Dpc_net Format List Printf Prov_tree Query_cost Rows
