(* Checkpoint/restore tests: a store serialized to bytes and rebuilt must
   answer every query identically, storage accounting must survive the
   round-trip, and the Advanced store must be able to CONTINUE maintenance
   (its equivalence tables are part of the checkpoint). *)

open Dpc_core

let check = Alcotest.check
let tree_t = Alcotest.testable Prov_tree.pp Prov_tree.equal

let line_link = { Dpc_net.Topology.latency = 0.002; bandwidth = 1e7 }

let topology () =
  let topo = Dpc_net.Topology.create ~n:3 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  Dpc_net.Topology.add_link topo 1 2 line_link;
  topo

let routes =
  [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
    Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ]

let run_workload scheme payloads =
  let topo = topology () in
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env
      ~hook:(Backend.hook backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime routes;
  List.iter
    (fun payload ->
      Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload))
    payloads;
  Dpc_engine.Runtime.run runtime;
  (backend, routing)

let payloads = [ "a"; "b"; "c" ]

let storage_t =
  Alcotest.testable
    (fun fmt (s : Rows.storage) ->
      Format.fprintf fmt "prov=%dB/%d rows, ruleExec=%dB/%d rows, equi=%dB, events=%dB"
        s.prov_bytes s.prov_rows s.rule_exec_bytes s.rule_exec_rows s.equi_bytes
        s.event_bytes)
    ( = )

let test_roundtrip_queries name scheme =
  let backend, routing = run_workload scheme payloads in
  let blob = Backend.checkpoint backend in
  let restored =
    Backend.restore scheme ~delp:(Dpc_apps.Forwarding.delp ()) ~env:Dpc_apps.Forwarding.env blob
  in
  List.iter
    (fun payload ->
      let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload in
      let before = (Backend.query backend ~cost:Query_cost.free ~routing out).trees in
      let after = (Backend.query restored ~cost:Query_cost.free ~routing out).trees in
      check (Alcotest.list tree_t) (name ^ ": trees for " ^ payload) before after;
      check Alcotest.bool (name ^ ": found something") true (before <> []))
    payloads

let test_roundtrip_storage name scheme =
  let backend, _ = run_workload scheme payloads in
  let blob = Backend.checkpoint backend in
  let restored =
    Backend.restore scheme ~delp:(Dpc_apps.Forwarding.delp ()) ~env:Dpc_apps.Forwarding.env blob
  in
  check storage_t (name ^ ": storage preserved") (Backend.total_storage backend)
    (Backend.total_storage restored)

let test_checkpoint_is_stable name scheme =
  let backend, _ = run_workload scheme payloads in
  let blob = Backend.checkpoint backend in
  let restored =
    Backend.restore scheme ~delp:(Dpc_apps.Forwarding.delp ()) ~env:Dpc_apps.Forwarding.env blob
  in
  check Alcotest.string (name ^ ": checkpoint of restore is identical") blob
    (Backend.checkpoint restored)

let test_advanced_continues_after_restore () =
  (* The equivalence tables travel with the checkpoint: a packet of an
     already-seen class processed after restore gets existFlag = true and
     adds only a prov delta. *)
  let backend, routing = run_workload Backend.S_advanced payloads in
  let delp = Dpc_apps.Forwarding.delp () in
  let blob = Backend.checkpoint backend in
  let restored = Backend.restore Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env blob in
  let topo = topology () in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env
      ~hook:(Backend.hook restored) ()
  in
  Dpc_engine.Runtime.load_slow runtime routes;
  let before = Backend.total_storage restored in
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"d");
  Dpc_engine.Runtime.run runtime;
  let after = Backend.total_storage restored in
  check Alcotest.int "no new chain rows" before.rule_exec_rows after.rule_exec_rows;
  check Alcotest.int "one new prov delta" (before.prov_rows + 1) after.prov_rows;
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"d" in
  check Alcotest.int "new packet queryable via old chain" 1
    (List.length (Backend.query restored ~cost:Query_cost.free ~routing out).trees)

let test_wrong_magic_rejected () =
  let backend, _ = run_workload Backend.S_basic payloads in
  let blob = Backend.checkpoint backend in
  Alcotest.check_raises "exspan magic on basic blob"
    (Dpc_util.Serialize.Corrupt "not an ExSPAN checkpoint") (fun () ->
      ignore
        (Backend.restore Backend.S_exspan ~delp:(Dpc_apps.Forwarding.delp ())
           ~env:Dpc_apps.Forwarding.env blob))

let test_truncated_blob_rejected () =
  let backend, _ = run_workload Backend.S_advanced payloads in
  let blob = Backend.checkpoint backend in
  let truncated = String.sub blob 0 (String.length blob / 2) in
  match
    Backend.restore Backend.S_advanced ~delp:(Dpc_apps.Forwarding.delp ())
      ~env:Dpc_apps.Forwarding.env truncated
  with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception Dpc_util.Serialize.Corrupt _ -> ()
  | exception Invalid_argument _ -> () (* a digest cut mid-way *)

let test_interclass_layout_roundtrips () =
  let backend, routing = run_workload Backend.S_advanced_interclass payloads in
  let blob = Backend.checkpoint backend in
  let restored =
    Backend.restore Backend.S_advanced_interclass ~delp:(Dpc_apps.Forwarding.delp ())
      ~env:Dpc_apps.Forwarding.env blob
  in
  (* The interclass flag is encoded in the blob, so the restored store uses
     node/link tables and still answers queries. *)
  check Alcotest.string "name" "Advanced+interclass" (Backend.name restored);
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"a" in
  check Alcotest.int "query works" 1
    (List.length (Backend.query restored ~cost:Query_cost.free ~routing out).trees)

(* ------------------------------------------------------------------ *)
(* Durable recovery property: a checkpoint cut MID-RUN (forced, on every
   node, while messages are in flight between events) plus the journal
   tail replayed after a later crash answers every query identically to
   the uninterrupted run. Random programs via Delp_gen; the small
   [checkpoint_every] also exercises automatic compaction. *)

let tree_sig tree =
  Dpc_ndlog.Tuple.canonical (Prov_tree.event_of tree) ^ "|" ^ Prov_tree.to_string tree

let world_digests (w : Dpc_testkit.Delp_gen.world) =
  List.map
    (fun (out, (meta : Dpc_engine.Prov_hook.meta)) -> (out, meta.evid))
    (Dpc_engine.Runtime.outputs w.runtime)
  |> List.sort_uniq compare
  |> List.map (fun (out, evid) ->
       let trees =
         (Backend.query w.backend ~cost:Query_cost.free ~routing:w.routing ~evid out).trees
       in
       ( (Dpc_ndlog.Tuple.canonical out, Dpc_util.Sha1.to_hex evid),
         List.sort_uniq compare (List.map tree_sig trees) ))
  |> List.sort compare

let test_midrun_checkpoint name scheme =
  let cache_hits = ref 0 in
  List.iter
    (fun seed ->
      let open Dpc_testkit in
      let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed) in
      let spacing = 0.4 in
      let clean =
        Delp_gen.build_world
          ~transport:(Dpc_net.Transport.direct ~nodes:instance.nodes ())
          instance scheme
      in
      Delp_gen.run_events ~spacing clean instance.events;
      let crashable, control =
        Dpc_net.Transport.crashable (Dpc_net.Transport.direct ~nodes:instance.nodes ())
      in
      let world =
        Delp_gen.build_world ~transport:crashable ~reliable:Dpc_net.Reliable.default_config
          instance scheme
      in
      let durable =
        Durable.attach ~backend:world.Delp_gen.backend ~runtime:world.Delp_gen.runtime ~control
          ~config:{ Durable.checkpoint_every = 4; rebase_every = 4 } ()
      in
      let victim = seed mod instance.nodes in
      let tr = Dpc_engine.Runtime.transport world.Delp_gen.runtime in
      Dpc_net.Transport.schedule tr ~delay:1.0 (fun () ->
        for node = 0 to instance.nodes - 1 do
          Durable.checkpoint_now durable node
        done);
      Durable.schedule_crash durable ~node:victim ~at:1.7 ~downtime:0.8;
      Delp_gen.run_events ~spacing world instance.events;
      let stats = Durable.node_stats durable victim in
      check Alcotest.int
        (Printf.sprintf "%s seed %d: victim crashed once" name seed)
        1 stats.crashes;
      check Alcotest.bool
        (Printf.sprintf "%s seed %d: mid-run checkpoint happened" name seed)
        true (stats.checkpoints >= 2);
      let reference = world_digests clean in
      if reference <> world_digests world then
        Alcotest.failf "%s seed %d: queries diverged after mid-run checkpoint + replay\n%s" name
          seed instance.description;
      (* Cache-correctness satellite: a memoization cache attached to the
         recovered world must be invisible — a populating pass and an
         all-hit pass both reproduce the clean run's digests. *)
      let cache = Backend.attach_query_cache world.Delp_gen.backend in
      if reference <> world_digests world then
        Alcotest.failf "%s seed %d: cache-on digests diverged (populating pass)\n%s" name seed
          instance.description;
      if reference <> world_digests world then
        Alcotest.failf "%s seed %d: cache-on digests diverged (hit pass)\n%s" name seed
          instance.description;
      cache_hits := !cache_hits + (Query_cache.stats cache).hits)
    [ 1; 2; 3; 4; 5 ];
  (* Some seeds derive nothing cacheable; across the five the hit pass
     must have served from memory at least once. *)
  check Alcotest.bool (name ^ ": cache served hits") true (!cache_hits > 0)

(* ------------------------------------------------------------------ *)
(* Delta-checkpoint drift suite: a base cut plus a chain of deltas,
   replayed onto a fresh backend, must rebuild state BYTE-IDENTICAL to a
   full checkpoint of the original at the same point — for every scheme.
   This is the invariant that lets [Durable] emit O(changes) deltas
   between periodic full rebases without risking state drift. *)

let batches = [ [ "a"; "b" ]; [ "c"; "d" ]; [ "e" ] ]

let test_delta_drift name scheme =
  let topo = topology () in
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  Backend.set_dirty_tracking backend true;
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
      ~env:Dpc_apps.Forwarding.env ~hook:(Backend.hook backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime routes;
  let run_batch payloads =
    List.iter
      (fun payload ->
        Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload))
      payloads;
    Dpc_engine.Runtime.run runtime
  in
  (* Cut after every batch: batch 0 seals the full base, later batches
     emit deltas capturing just that batch's changes. *)
  let cuts =
    List.mapi
      (fun i batch ->
        run_batch batch;
        Array.init 3 (fun node ->
          if i = 0 then Backend.checkpoint_node backend node
          else Backend.checkpoint_delta backend node))
      batches
  in
  let replay =
    Backend.make scheme ~delp:(Dpc_apps.Forwarding.delp ()) ~env:Dpc_apps.Forwarding.env
      ~nodes:3
  in
  List.iteri
    (fun i cut ->
      Array.iteri
        (fun node blob ->
          if i = 0 then Backend.restore_node replay node blob
          else Backend.apply_delta replay node blob)
        cut)
    cuts;
  for node = 0 to 2 do
    let full = Backend.checkpoint_node backend node in
    let rebuilt = Backend.checkpoint_node replay node in
    if not (String.equal full rebuilt) then
      Alcotest.failf "%s node %d: delta chain drifted from full checkpoint (full %dB, rebuilt %dB)"
        name node (String.length full) (String.length rebuilt)
  done

(* ------------------------------------------------------------------ *)
(* Crash-schedule hygiene: a crash landing at the exact instant a node's
   previous outage ends is an event-queue tie (restart and crash race)
   and must be pruned, not admitted. *)

let schedule_t =
  Alcotest.list (Alcotest.triple Alcotest.int (Alcotest.float 1e-9) (Alcotest.float 1e-9))

let test_prune_overlaps () =
  let pruned =
    Durable.prune_overlaps ~nodes:2
      [ (0, 1.0, 0.5); (0, 1.5, 0.3); (1, 1.5, 0.3); (0, 1.6, 0.2); (0, 0.0, 0.1) ]
  in
  (* (0, 1.5, _) collides with node 0's restart at exactly 1.0 + 0.5 and
     must go; the same instant on node 1 is fine; time 0.0 is a valid
     crash time (busy_until starts at -inf, not 0). *)
  check schedule_t "exact-restart-instant crash rejected"
    [ (0, 0.0, 0.1); (0, 1.0, 0.5); (1, 1.5, 0.3); (0, 1.6, 0.2) ]
    pruned;
  (match Durable.prune_overlaps ~nodes:0 [] with
   | _ -> Alcotest.fail "expected Invalid_argument for nodes = 0"
   | exception Invalid_argument _ -> ());
  match Durable.prune_overlaps ~nodes:1 [ (1, 0.5, 0.1) ] with
  | _ -> Alcotest.fail "expected Invalid_argument for out-of-range node"
  | exception Invalid_argument _ -> ()

let test_random_schedule_no_ties () =
  List.iter
    (fun seed ->
      let sched =
        Durable.random_schedule ~seed ~nodes:3 ~count:40 ~horizon:10.0 ~min_down:0.1
          ~max_down:0.5
      in
      let busy = Array.make 3 Float.neg_infinity in
      List.iter
        (fun (node, at, down) ->
          if at <= busy.(node) then
            Alcotest.failf "seed %d: crash at %.6f while node %d busy until %.6f" seed at node
              busy.(node);
          busy.(node) <- at +. down)
        sched)
    [ 1; 7; 42 ]

let scheme_cases f =
  List.map
    (fun s ->
      Alcotest.test_case (Backend.scheme_name s) `Quick (fun () ->
        f (Backend.scheme_name s) s))
    [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

let () =
  Alcotest.run "dpc_persistence"
    [
      ("round-trip queries", scheme_cases test_roundtrip_queries);
      ("round-trip storage", scheme_cases test_roundtrip_storage);
      ("checkpoint stable", scheme_cases test_checkpoint_is_stable);
      ( "advanced",
        [
          Alcotest.test_case "continues after restore" `Quick
            test_advanced_continues_after_restore;
          Alcotest.test_case "interclass layout" `Quick test_interclass_layout_roundtrips;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "wrong magic" `Quick test_wrong_magic_rejected;
          Alcotest.test_case "truncated blob" `Quick test_truncated_blob_rejected;
        ] );
      ("mid-run checkpoint + replay", scheme_cases test_midrun_checkpoint);
      ("delta checkpoints", scheme_cases test_delta_drift);
      ( "crash schedule",
        [
          Alcotest.test_case "prune overlaps" `Quick test_prune_overlaps;
          Alcotest.test_case "random schedule never ties" `Quick test_random_schedule_no_ties;
        ] );
    ]
