bench/main.ml: Array Figures List Micro Printf String Sys
