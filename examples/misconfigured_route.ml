(* Network debugging with provenance: the paper's §2.2 motivation.

   n1 has a direct link to n3, but its route table sends traffic for n3 via
   n2 — a misconfiguration if shortest paths are the policy. The provenance
   engine faithfully records the detour; querying the provenance of the
   received packet explains *why* it took the longer path and points the
   administrator at the offending route entry.

     dune exec examples/misconfigured_route.exe *)

open Dpc_core

let () =
  (* Topology: a triangle n1(0) - n2(1) - n3(2), including a direct n1-n3
     link. *)
  let topo = Dpc_net.Topology.create ~n:3 in
  let link = { Dpc_net.Topology.latency = 0.002; bandwidth = 50e6 /. 8.0 } in
  Dpc_net.Topology.add_link topo 0 1 link;
  Dpc_net.Topology.add_link topo 1 2 link;
  Dpc_net.Topology.add_link topo 0 2 link;
  let routing = Dpc_net.Routing.compute topo in
  let delp = Dpc_apps.Forwarding.delp () in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
      ~env:Dpc_apps.Forwarding.env ~hook:(Backend.hook backend)
      ~nodes:(Backend.nodes backend) ()
  in
  (* The misconfiguration: n1 routes to n3 via n2 despite the direct link. *)
  Dpc_engine.Runtime.load_slow runtime
    [
      Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
      Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2;
    ];
  print_endline "Topology: n1 - n2 - n3 with a DIRECT n1 - n3 link.";
  print_endline "Route table at n1 (misconfigured): route(@n1, n3, n2)\n";

  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"data");
  Dpc_engine.Runtime.run runtime;

  let output = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"data" in
  Format.printf "The administrator observes %a and asks: why two hops?@.@."
    Dpc_ndlog.Tuple.pp output;
  let result = Backend.query backend ~cost:Query_cost.emulation ~routing output in
  List.iter (fun tree -> Format.printf "%a@.@." Prov_tree.pp tree) result.trees;

  (* Extract the diagnosis mechanically: the slow-changing tuples in the
     tree ARE the route entries responsible for the path. *)
  (match result.trees with
  | tree :: _ ->
      let routes =
        List.filter
          (fun t -> String.equal (Dpc_ndlog.Tuple.rel t) "route")
          (Prov_tree.tuples tree)
      in
      print_endline "Route entries on the recorded path:";
      List.iter (fun r -> Format.printf "  %a@." Dpc_ndlog.Tuple.pp r) routes;
      Format.printf
        "\nDiagnosis: the first hop was decided by %a at n1 —\nthe direct n1-n3 link was \
         available, so this entry is the misconfiguration.@."
        Dpc_ndlog.Tuple.pp (List.nth routes (List.length routes - 1))
  | [] -> print_endline "no provenance found (unexpected)")
