lib/ndlog/tuple.mli: Dpc_util Format Value
