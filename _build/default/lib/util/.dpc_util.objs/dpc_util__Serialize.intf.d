lib/util/serialize.mli:
