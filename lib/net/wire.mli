(** The [dpc-wire-v1] frame codec: what actually crosses a process
    boundary.

    Every message between two [dpcd] processes — data payloads,
    cumulative acknowledgements, connection hellos, and control-plane
    requests — travels as one length-prefixed frame:

    {v
    offset  size  field
    0       4     magic "DPCW"
    4       1     version (1)
    5       1     kind (0 data, 1 ack, 2 hello, 3 ctrl)
    6       4     src node id, big-endian (0xffffffff = control client)
    10      4     dst node id, big-endian
    14      8     channel sequence number, big-endian
    22      4     payload length, big-endian
    26      20    SHA-1 digest of the payload bytes
    46      n     payload
    v}

    The digest makes corruption detectable end to end, independent of
    the byte stream underneath; the fixed header makes truncation
    detectable ({!Decoder.next} simply waits for more bytes). A frame
    that fails any check — wrong magic, unknown version or kind, an
    oversized length, a digest mismatch — raises {!Corrupt}, and the
    decoder guarantees no partial delivery: either the whole frame is
    returned or nothing is consumed.

    Payload encodings ride on {!Dpc_util.Serialize} and are the
    receiving layer's business: data frames carry a serialized
    {!Dpc_engine.Journal.entry}, control frames carry the [dpcd]
    control protocol (see [Dpc_proc.Daemon]). *)

type kind =
  | Data  (** a channel payload; [seq] is its per-channel sequence number *)
  | Ack  (** cumulative acknowledgement: every seq [<= seq] was delivered *)
  | Hello  (** first frame on a connection, announcing the dialer's [src] *)
  | Ctrl  (** control-plane request or reply (launcher <-> daemon) *)

type frame = { kind : kind; src : int; dst : int; seq : int; payload : string }

val control_id : int
(** The [src] a control client announces instead of a node id. *)

val header_bytes : int
(** Fixed bytes before the payload (46). *)

val max_payload : int
(** Upper bound on [payload] length (16 MiB); longer frames are rejected
    as corrupt on both ends rather than silently buffered forever. *)

exception Corrupt of string
(** Raised by {!encode} on out-of-range fields and by {!Decoder.next} on
    a frame that cannot be valid (bad magic, version, kind, length, or
    payload digest). *)

val encode : frame -> string
(** The frame's wire bytes. @raise Corrupt on a negative id/seq or an
    oversized payload. *)

(** Incremental decoding over any byte stream: feed whatever arrived,
    pull zero or more complete frames. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> int -> unit
  (** [feed d buf off len] appends bytes to the decoder's buffer. *)

  val feed_string : t -> string -> unit

  val next : t -> frame option
  (** The next complete frame, or [None] if the buffer holds only a
      frame prefix (truncation is indistinguishable from "not yet
      arrived" on a live stream — the caller decides when a stall is an
      error). Consumes nothing on [None]. @raise Corrupt as soon as the
      buffered bytes cannot extend to a valid frame; the buffer is left
      unusable and the connection should be dropped. *)

  val buffered : t -> int
  (** Bytes currently held (a partial frame at most {!max_payload} +
      {!header_bytes} long). *)
end
