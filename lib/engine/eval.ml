open Dpc_ndlog

exception Eval_error of string

type binding = (string * Value.t) list

let fail fmt = Printf.ksprintf (fun m -> raise (Eval_error m)) fmt

let match_atom (a : Ast.atom) tuple binding =
  if not (String.equal a.rel (Tuple.rel tuple)) then None
  else if List.length a.args <> Tuple.arity tuple then None
  else begin
    let rec go binding i = function
      | [] -> Some binding
      | Ast.Const c :: rest ->
          if Value.equal c (Tuple.arg tuple i) then go binding (i + 1) rest else None
      | Ast.Var v :: rest -> begin
          let actual = Tuple.arg tuple i in
          match List.assoc_opt v binding with
          | Some bound -> if Value.equal bound actual then go binding (i + 1) rest else None
          | None -> go ((v, actual) :: binding) (i + 1) rest
        end
    in
    go binding 0 a.args
  end

let arith op a b =
  match op, a, b with
  | Ast.Add, Value.Int x, Value.Int y -> Value.Int (x + y)
  | Ast.Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
  | Ast.Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
  | Ast.Div, Value.Int _, Value.Int 0 -> fail "division by zero"
  | Ast.Div, Value.Int x, Value.Int y -> Value.Int (x / y)
  | Ast.Mod, Value.Int _, Value.Int 0 -> fail "modulo by zero"
  | Ast.Mod, Value.Int x, Value.Int y -> Value.Int (x mod y)
  | Ast.Add, Value.Str x, Value.Str y -> Value.Str (x ^ y)
  | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), _, _ ->
      fail "arithmetic on non-numeric values (%s, %s)" (Value.to_string a)
        (Value.to_string b)

let rec eval_expr env binding = function
  | Ast.E_const c -> c
  | Ast.E_var v -> begin
      match List.assoc_opt v binding with
      | Some value -> value
      | None -> fail "unbound variable %s" v
    end
  | Ast.E_binop (op, a, b) -> arith op (eval_expr env binding a) (eval_expr env binding b)
  | Ast.E_call (f, args) -> begin
      match Env.lookup env f with
      | None -> fail "unknown function %s" f
      | Some fn -> fn (List.map (eval_expr env binding) args)
    end

let compare_values op a b =
  let ordered cmp =
    match a, b with
    | Value.Int x, Value.Int y -> cmp (compare x y) 0
    | Value.Str x, Value.Str y -> cmp (String.compare x y) 0
    | (Value.Int _ | Value.Str _ | Value.Bool _ | Value.Addr _), _ ->
        fail "ordering comparison on %s and %s" (Value.to_string a) (Value.to_string b)
  in
  match op with
  | Ast.Eq -> Value.equal a b
  | Ast.Neq -> not (Value.equal a b)
  | Ast.Lt -> ordered ( < )
  | Ast.Leq -> ordered ( <= )
  | Ast.Gt -> ordered ( > )
  | Ast.Geq -> ordered ( >= )

let instantiate (a : Ast.atom) binding =
  let values =
    List.map
      (function
        | Ast.Const c -> c
        | Ast.Var v -> begin
            match List.assoc_opt v binding with
            | Some value -> value
            | None -> fail "unbound head variable %s" v
          end)
      a.args
  in
  Tuple.make a.rel values

(* Process conditions left to right, branching on slow-atom joins.
   [lookup] supplies candidate tuples for a condition atom given the
   binding accumulated so far (an index probe or scan at runtime, the
   recorded tuple at re-derivation time). *)
let run_conditions env conds binding ~lookup =
  let rec go binding used cond_idx = function
    | [] -> [ (binding, List.rev used) ]
    | Ast.C_atom a :: rest ->
        List.concat_map
          (fun tuple ->
            match match_atom a tuple binding with
            | None -> []
            | Some binding -> go binding (tuple :: used) (cond_idx + 1) rest)
          (lookup cond_idx a binding)
    | Ast.C_cmp (op, lhs, rhs) :: rest ->
        if compare_values op (eval_expr env binding lhs) (eval_expr env binding rhs) then
          go binding used (cond_idx + 1) rest
        else []
    | Ast.C_assign (x, e) :: rest ->
        let value = eval_expr env binding e in
        begin
          match List.assoc_opt x binding with
          | Some bound -> if Value.equal bound value then go binding used (cond_idx + 1) rest else []
          | None -> go ((x, value) :: binding) used (cond_idx + 1) rest
        end
  in
  go binding [] 0 conds

let fire ~env ~db ~(rule : Ast.rule) ~event =
  match match_atom rule.event event [] with
  | None -> []
  | Some binding ->
      run_conditions env rule.conds binding ~lookup:(fun _ (a : Ast.atom) _ -> Db.scan db a.rel)
      |> List.map (fun (binding, slow) -> (instantiate rule.head binding, slow))

(* Compile-time join planning: walk the conditions left to right tracking
   which variables the event atom and earlier conditions have bound; for
   each condition atom, the argument positions holding constants or
   already-bound variables become the key of a {!Db.lookup} index probe.
   An atom with no bound position falls back to the unsorted full
   relation. *)
type key_part = K_const of Value.t | K_var of string

type source = S_all | S_keyed of { positions : int list; parts : key_part list }

type plan = { rule : Ast.rule; sources : source array }

let plan_rule p = p.rule

let plan (rule : Ast.rule) =
  let bound = Hashtbl.create 16 in
  let bind_atom (a : Ast.atom) =
    List.iter
      (function Ast.Var v -> Hashtbl.replace bound v () | Ast.Const _ -> ())
      a.args
  in
  bind_atom rule.event;
  let source_of = function
    | Ast.C_atom a ->
        let keyed =
          List.concat
            (List.mapi
               (fun i -> function
                 | Ast.Const c -> [ (i, K_const c) ]
                 | Ast.Var v -> if Hashtbl.mem bound v then [ (i, K_var v) ] else [])
               a.args)
        in
        let s =
          match keyed with
          | [] -> S_all
          | _ :: _ ->
              S_keyed { positions = List.map fst keyed; parts = List.map snd keyed }
        in
        bind_atom a;
        s
    | Ast.C_cmp _ -> S_all
    | Ast.C_assign (x, _) ->
        Hashtbl.replace bound x ();
        S_all
  in
  { rule; sources = Array.of_list (List.map source_of rule.conds) }

let fire_planned ~env ~db ~plan ~event =
  let rule = plan.rule in
  match match_atom rule.event event [] with
  | None -> []
  | Some binding ->
      let lookup cond_idx (a : Ast.atom) binding =
        match plan.sources.(cond_idx) with
        | S_all -> Db.all db a.rel
        | S_keyed { positions; parts } ->
            let key =
              List.map
                (function
                  | K_const c -> c
                  | K_var v -> (
                      match List.assoc_opt v binding with
                      | Some value -> value
                      | None -> fail "fire_planned: unbound key variable %s in %s" v rule.name))
                parts
            in
            Db.lookup db ~rel:a.rel ~positions ~key
      in
      run_conditions env rule.conds binding ~lookup
      |> List.map (fun (binding, slow) -> (instantiate rule.head binding, slow))

let fire_with_slow ~env ~(rule : Ast.rule) ~event ~slow =
  match match_atom rule.event event [] with
  | None -> None
  | Some binding ->
      let slow_arr = Array.of_list slow in
      let atom_positions =
        (* cond_idx -> index into [slow] for condition atoms. *)
        let tbl = Hashtbl.create 4 in
        let next = ref 0 in
        List.iteri
          (fun i c ->
            match c with
            | Ast.C_atom _ ->
                Hashtbl.add tbl i !next;
                incr next
            | Ast.C_cmp _ | Ast.C_assign _ -> ())
          rule.conds;
        if !next <> Array.length slow_arr then
          fail "fire_with_slow: rule %s expects %d slow tuples, got %d" rule.name !next
            (Array.length slow_arr);
        tbl
      in
      let lookup cond_idx (_ : Ast.atom) _ = [ slow_arr.(Hashtbl.find atom_positions cond_idx) ] in
      begin
        match run_conditions env rule.conds binding ~lookup with
        | [] -> None
        | [ (binding, _) ] -> Some (instantiate rule.head binding)
        | _ :: _ :: _ -> fail "fire_with_slow: ambiguous re-derivation for rule %s" rule.name
      end
