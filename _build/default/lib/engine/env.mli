(** User-defined function environment for rule evaluation (e.g. the DNS
    program's [f_isSubDomain]). *)

type t

val empty : t

val register : t -> string -> (Dpc_ndlog.Value.t list -> Dpc_ndlog.Value.t) -> t
(** Functional update; later registrations shadow earlier ones. *)

val lookup : t -> string -> (Dpc_ndlog.Value.t list -> Dpc_ndlog.Value.t) option

val names : t -> string list
