(** Per-node state: the database, a metrics registry, and a typed
    property map through which higher layers (the provenance stores in
    [lib/core]) attach their own per-node tables without this module
    knowing about them.

    A [Node.t array] — usually built with {!cluster} — is the single
    owner of everything a node holds; the runtime, the stores, and the
    side stores all reach their state through it instead of indexing
    parallel arrays by node id. *)

type t

val create : id:int -> t
(** A fresh node with an empty database, empty metrics, no properties.
    @raise Invalid_argument on a negative id. *)

val cluster : int -> t array
(** [cluster n] is [n] fresh nodes with ids [0 .. n-1].
    @raise Invalid_argument if [n] is not positive. *)

val id : t -> int
val db : t -> Db.t
val metrics : t -> Dpc_util.Metrics.t

val tick : t -> ?by:int -> string -> unit
(** Bump a counter in the node's metrics registry: the one-liner every
    layer that instruments per-node work wants. *)

val reset : t -> unit
(** Wipe everything volatile — database, metrics, properties — as a crash
    does. The node keeps its id; the stores re-initialize their property
    records lazily on the next touch. Hooks registered with {!on_reset}
    run after the wipe. *)

val on_reset : t -> (unit -> unit) -> unit
(** Register a hook that fires after every {!reset} of this node. Hooks
    survive the reset itself (they live outside the property map) — this
    is the engine-level invalidation point for layers that cache derived
    views of a node's state, e.g. the query serving tier dropping memo
    entries when a crash rematerializes the node. *)

(** {2 Typed properties}

    Each store instance allocates a private {!key} at creation time and
    stashes its per-node record under it, so several stores (or several
    handles of a cross-program store) can share one cluster without
    colliding. *)

type 'a key

val key : name:string -> unit -> 'a key
(** A fresh key. Two calls never compare equal, even with the same name;
    [name] is for diagnostics only. *)

val key_name : _ key -> string
val find : t -> 'a key -> 'a option
val set : t -> 'a key -> 'a -> unit

val get_or_init : t -> 'a key -> init:(unit -> 'a) -> 'a
(** The value under the key, creating and storing [init ()] first if the
    node doesn't have one yet. *)
