(** The fixed transparency-oracle scenario both worlds run: a 3-node
    packet-forwarding chain, in five phases.

    {ol
    {- [pre]: five packets from node 0 toward node 2 along the loaded
       routes (0 -> 1 -> 2).}
    {- [mid]: three more packets — the real cluster injects these while
       node 1's daemon is [kill -9]ed, so they sit in node 0's durable
       outbox until the restarted daemon recovers and the retransmits
       land.}
    {- [refresh]: the §5.5 route update at node 1 (delete + reinsert of
       the same entry — two [sig] broadcasts wiping every [htequi]).}
    {- [post]: five packets that must see re-materialized chains.}
    {- [part]: three packets injected while the 0↔1 link is blocked in
       both directions ({!Ctrl.request.Block}); the cluster then kills
       node 1 mid-partition, restarts it, heals the link, and the
       packets must still arrive exactly once — the durable outbox
       re-offer and the socket redial reconcile on heal.}}

    The simulator reference ({!simulate}) runs the same phases over
    {!Dpc_net.Transport.direct} with a quiescence run between each; the
    real cluster separates phases with the launcher's status barrier.
    Because every store serializes deterministically (sorted relations,
    canonical tuple order) and both worlds apply the same per-node
    operation sequences, the per-node digests must match byte for byte
    — crashes, retransmission, and recovery included. *)

val nodes : int
(** 3. *)

val routes : unit -> Dpc_ndlog.Tuple.t list
(** The forwarding entries: node 0 -> 1, node 1 -> 2 for destination 2. *)

val refreshed_route : unit -> Dpc_ndlog.Tuple.t
(** The entry the refresh phase deletes and reinserts (homed at node 1). *)

val pre_packets : unit -> Dpc_ndlog.Tuple.t list
val mid_packets : unit -> Dpc_ndlog.Tuple.t list
val post_packets : unit -> Dpc_ndlog.Tuple.t list
val part_packets : unit -> Dpc_ndlog.Tuple.t list

val total_outputs : int
(** Packets across all phases (16) — every one must surface as a [recv]
    output at node 2. *)

val soak_packets : round:int -> int -> Dpc_ndlog.Tuple.t list
(** [count] packets with round-stamped payloads ([soak<round>-<i>]) —
    the sustained traffic of [dpcd cluster --soak]. *)

type digests = { store : string; db : string }
(** Hex SHA-1 of one node's provenance tables
    ({!Dpc_core.Backend.digest_node}) and relational database
    ({!db_digest}). *)

val db_digest : Dpc_engine.Db.t -> string
(** SHA-1 (hex) of {!Dpc_engine.Db.canonical} — non-sealing. *)

val simulate : Dpc_core.Backend.scheme -> digests array
(** Run the whole scenario in-process on a direct transport and return
    the per-node reference digests the real cluster must reproduce. *)

val simulate_soak : Dpc_core.Backend.scheme -> rounds:int -> per_round:int -> digests array
(** Reference digests for the soak workload: [rounds] rounds of
    [per_round] packets each, quiesced between rounds. *)
