lib/engine/runtime.ml: Array Ast Db Delp Dpc_ndlog Dpc_net Env Eval List Logs Printf Prov_hook String Tuple
