examples/quickstart.ml: Backend Dpc_analysis Dpc_apps Dpc_core Dpc_engine Dpc_ndlog Dpc_net Dpc_util Format List Printf Prov_tree Query_cost Rows
