lib/ndlog/parser.mli: Ast
