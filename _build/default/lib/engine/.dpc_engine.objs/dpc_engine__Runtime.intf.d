lib/engine/runtime.mli: Db Dpc_ndlog Dpc_net Env Prov_hook
