lib/core/store_advanced.ml: Array Ast Delp Dpc_analysis Dpc_engine Dpc_ndlog Dpc_net Dpc_util Hashtbl List Printf Prov_tree Query_cost Query_result Rows Sha1 Side_store String Tuple
