(** Equivalence-based online compression (paper §5, Table 3).

    Stage 1: at the ingress node, the event's equivalence-key values
    (identified by static analysis, {!Dpc_analysis.Equi_keys}) are hashed
    and checked against the node's [htequi]; a hit sets [existFlag].
    Stage 2: rule executions store [ruleExec] rows only when
    [existFlag = false] — one shared chain per equivalence class.
    Stage 3: at the output node, every execution stores a small [prov] delta
    [(VID, RLoc, RID, EVID)] referencing the shared chain via [hmap].

    With [~interclass:true], the §5.4 layout splits [ruleExec] into a
    [ruleExecNode] table (concrete rule executions, deduplicated across
    equivalence classes) and a [ruleExecLink] table (per-tree parent/child
    pointers), so chains that overlap — e.g. crossing traffic sharing a
    path suffix — share rows.

    Slow-changing inserts (§5.5) clear [htequi] at every node receiving the
    [sig] broadcast, forcing re-materialization of each class's chain. *)

type t

val create :
  delp:Dpc_ndlog.Delp.t ->
  env:Dpc_engine.Env.t ->
  keys:Dpc_analysis.Equi_keys.t ->
  ?interclass:bool ->
  nodes:int ->
  unit ->
  t
(** Builds a fresh [nodes]-node cluster; per-node tables hang off each
    {!Dpc_engine.Node.t} and row writes tick its [store.*] counters
    (including [store.equi_hits]/[store.equi_misses] at ingress). *)

val set_degraded_sink : t -> (int -> unit) -> unit
(** Re-route the degraded-query tick: [f querier] runs instead of the
    default increment of [crash.queries_degraded] on the querier's
    volatile registry. Installed by the durable layer so the count
    survives a crash of the querier (see [Durable.attach]). *)

val nodes : t -> Dpc_engine.Node.t array
(** The cluster owning all per-node state; pass to
    [Runtime.create ~nodes] so the runtime shares it. *)

val set_query_cache : t -> Query_cache.t option -> unit
(** Attach (or detach, with [None]) the shared memoization cache — same
    contract as {!Store_basic.set_query_cache}. The §5.5 [htequi] wipe in
    [on_slow_update] additionally invalidates the flushed node's entries. *)

val query_cache : t -> Query_cache.t option

val hook : t -> Dpc_engine.Prov_hook.t

val node_storage : t -> int -> Rows.storage
val total_storage : t -> Rows.storage

val classes_seen : t -> int
(** Total distinct equivalence keys currently in the [htequi] tables. *)

val orphan_outputs : t -> int
(** Outputs that arrived with [existFlag = true] but found no [hmap] entry
    (possible when a §5.5 reset races in-flight executions); their
    provenance is not recorded, mirroring the paper's assumption that
    updates quiesce before querying. *)

val query :
  t ->
  cost:Query_cost.t ->
  routing:Dpc_net.Routing.t ->
  ?evid:Dpc_util.Sha1.t ->
  ?up:(int -> bool) ->
  Dpc_ndlog.Tuple.t ->
  Query_result.t
(** The paper's QUERY (Fig 18): fetch the prov deltas for the tuple,
    recursively collect the shared chain(s), retrieve the input event by
    [evid] at the leaf's node, and re-derive intermediate tuples upward.
    Candidate chains that fail re-derivation (possible under the §5.4
    layout, where link rows of different trees may alternate) are
    discarded. [up] is the node-liveness predicate — a chain that reaches
    a down node is abandoned after the bounded retry budget and the
    result is marked [complete = false] (see {!Store_exspan.query}). *)

val dump : t -> (string * string list * string list list) list
(** Human-readable table contents [(name, header, rows)] — the shape of the
    paper's Table 3 (or Table 4 under the inter-class layout). *)

val checkpoint : t -> string
(** Serialize the full store to bytes, including the equivalence tables
    ([htequi]/[hmap]), so maintenance can also continue after a restore. *)

val restore :
  delp:Dpc_ndlog.Delp.t ->
  env:Dpc_engine.Env.t ->
  keys:Dpc_analysis.Equi_keys.t ->
  string ->
  t
(** Rebuild a store from {!checkpoint} output.
    @raise Dpc_util.Serialize.Corrupt on malformed input, including an
    inter-class/plain layout mismatch encoded in the blob. *)

val checkpoint_node : t -> int -> string
(** Serialize one node's tables — rows, equivalence state
    ([htequi]/[hmap], both ingress-local), and side stores — for its
    durable checkpoint. The store-global orphan counter is excluded. *)

val digest_node : t -> int -> string
(** SHA-1 (hex) of the node's canonical blob without sealing dirty
    tracking — same contract as {!Store_exspan.digest_node}. *)

val restore_node : t -> int -> string -> unit
(** Reload one node's tables after a {!Dpc_engine.Node.reset}.
    @raise Dpc_util.Serialize.Corrupt on malformed input or a layout
    mismatch. *)

val set_track_dirty : t -> bool -> unit
(** Enable dirty-set tracking for delta checkpoints — same contract as
    {!Store_exspan.set_track_dirty}. *)

val checkpoint_delta : t -> int -> string
(** One node's changes since its last cut — new rows and side entries,
    plus the equivalence-state change record: whether [htequi] was wiped
    by a slow update, the keys added since, and the full current ref list
    of every [hmap] class that grew. O(changes); clears the dirty set. *)

val apply_delta : t -> int -> string -> unit
(** Replay a {!checkpoint_delta} blob on top of the node's current
    state (base checkpoint plus earlier deltas, oldest first).
    @raise Dpc_util.Serialize.Corrupt on malformed input or a layout
    mismatch. *)
