lib/workload/pairs.mli: Dpc_util
