(** Graphviz rendering of provenance trees, in the paper's Fig 3 style:
    oval rule-execution nodes, boxed tuple nodes, slow-changing tuples
    shaded. *)

val to_dot : ?name:string -> Prov_tree.t -> string
(** A complete [digraph] for one tree. *)

val forest_to_dot : ?name:string -> Prov_tree.t list -> string
(** One digraph containing every tree; structurally shared tuples (same
    contents) are merged into a single node, which makes the sharing that
    the compression schemes exploit visible. *)
