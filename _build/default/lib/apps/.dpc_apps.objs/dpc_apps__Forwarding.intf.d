lib/apps/forwarding.mli: Dpc_engine Dpc_ndlog Dpc_net
