open Dpc_ndlog

let source =
  {|// DHCP-style address assignment.
r1 dhcpRequest(@R, H, RQID) :- discover(@H, RQID), dhcpRelay(@H, R).
r2 dhcpOffer(@H, IP, RQID)  :- dhcpRequest(@R, H, RQID), addressPool(@R, H, IP).
|}

let delp () =
  match Parser.parse_program ~name:"dhcp" source with
  | Error e -> failwith ("Dhcp.delp: parse error: " ^ e)
  | Ok p -> begin
      match Delp.validate p with
      | Ok d -> d
      | Error e -> failwith ("Dhcp.delp: " ^ Delp.error_to_string e)
    end

let env = Dpc_engine.Env.empty

let discover ~host ~rqid = Tuple.make "discover" [ Value.Addr host; Value.Int rqid ]
let dhcp_relay ~host ~server = Tuple.make "dhcpRelay" [ Value.Addr host; Value.Addr server ]

let address_pool ~server ~host ~ip =
  Tuple.make "addressPool" [ Value.Addr server; Value.Addr host; Value.Str ip ]

let offer ~host ~ip ~rqid =
  Tuple.make "dhcpOffer" [ Value.Addr host; Value.Str ip; Value.Int rqid ]
