type t =
  | Exspan of Store_exspan.t
  | Basic of Store_basic.t
  | Advanced of Store_advanced.t

type scheme = S_exspan | S_basic | S_advanced | S_advanced_interclass

let all_schemes = [ S_exspan; S_basic; S_advanced; S_advanced_interclass ]

let scheme_name = function
  | S_exspan -> "ExSPAN"
  | S_basic -> "Basic"
  | S_advanced -> "Advanced"
  | S_advanced_interclass -> "Advanced+interclass"

let make scheme ~delp ~env ~nodes =
  match scheme with
  | S_exspan -> Exspan (Store_exspan.create ~delp ~env ~nodes)
  | S_basic -> Basic (Store_basic.create ~delp ~env ~nodes)
  | S_advanced ->
      let keys = Dpc_analysis.Equi_keys.compute delp in
      Advanced (Store_advanced.create ~delp ~env ~keys ~nodes ())
  | S_advanced_interclass ->
      let keys = Dpc_analysis.Equi_keys.compute delp in
      Advanced (Store_advanced.create ~delp ~env ~keys ~interclass:true ~nodes ())

let nodes = function
  | Exspan s -> Store_exspan.nodes s
  | Basic s -> Store_basic.nodes s
  | Advanced s -> Store_advanced.nodes s

let name = function
  | Exspan _ -> "ExSPAN"
  | Basic _ -> "Basic"
  | Advanced s -> begin
      (* The hook name distinguishes the inter-class variant. *)
      match (Store_advanced.hook s).Dpc_engine.Prov_hook.name with
      | "advanced+interclass" -> "Advanced+interclass"
      | _ -> "Advanced"
    end

let hook = function
  | Exspan s -> Store_exspan.hook s
  | Basic s -> Store_basic.hook s
  | Advanced s -> Store_advanced.hook s

let set_degraded_sink t f =
  match t with
  | Exspan s -> Store_exspan.set_degraded_sink s f
  | Basic s -> Store_basic.set_degraded_sink s f
  | Advanced s -> Store_advanced.set_degraded_sink s f

let node_storage t node =
  match t with
  | Exspan s -> Store_exspan.node_storage s node
  | Basic s -> Store_basic.node_storage s node
  | Advanced s -> Store_advanced.node_storage s node

let total_storage = function
  | Exspan s -> Store_exspan.total_storage s
  | Basic s -> Store_basic.total_storage s
  | Advanced s -> Store_advanced.total_storage s

let query t ~cost ~routing ?evid ?up output =
  match t with
  | Exspan s -> Store_exspan.query s ~cost ~routing ?evid ?up output
  | Basic s -> Store_basic.query s ~cost ~routing ?evid ?up output
  | Advanced s -> Store_advanced.query s ~cost ~routing ?evid ?up output

let query_page t ~cost ~routing ?evid ?up ?cursor ~limit output =
  let r = query t ~cost ~routing ?evid ?up output in
  (r, Query_result.paginate ?cursor ~limit r.Query_result.trees)

let set_query_cache t cache =
  match t with
  | Exspan s -> Store_exspan.set_query_cache s cache
  | Basic s -> Store_basic.set_query_cache s cache
  | Advanced s -> Store_advanced.set_query_cache s cache

let query_cache = function
  | Exspan s -> Store_exspan.query_cache s
  | Basic s -> Store_basic.query_cache s
  | Advanced s -> Store_advanced.query_cache s

let attach_query_cache ?capacity t =
  let cluster = nodes t in
  let tick ~node name by = Dpc_util.Metrics.incr ~by (Dpc_engine.Node.metrics cluster.(node)) name in
  let cache = Query_cache.create ?capacity ~tick () in
  set_query_cache t (Some cache);
  cache

let detach_query_cache t = set_query_cache t None

let dump = function
  | Exspan s -> Store_exspan.dump s
  | Basic s -> Store_basic.dump s
  | Advanced s -> Store_advanced.dump s

let checkpoint = function
  | Exspan s -> Store_exspan.checkpoint s
  | Basic s -> Store_basic.checkpoint s
  | Advanced s -> Store_advanced.checkpoint s

let checkpoint_node t node =
  match t with
  | Exspan s -> Store_exspan.checkpoint_node s node
  | Basic s -> Store_basic.checkpoint_node s node
  | Advanced s -> Store_advanced.checkpoint_node s node

let digest_node t node =
  match t with
  | Exspan s -> Store_exspan.digest_node s node
  | Basic s -> Store_basic.digest_node s node
  | Advanced s -> Store_advanced.digest_node s node

let restore_node t node blob =
  match t with
  | Exspan s -> Store_exspan.restore_node s node blob
  | Basic s -> Store_basic.restore_node s node blob
  | Advanced s -> Store_advanced.restore_node s node blob

let set_dirty_tracking t on =
  match t with
  | Exspan s -> Store_exspan.set_track_dirty s on
  | Basic s -> Store_basic.set_track_dirty s on
  | Advanced s -> Store_advanced.set_track_dirty s on

let checkpoint_delta t node =
  match t with
  | Exspan s -> Store_exspan.checkpoint_delta s node
  | Basic s -> Store_basic.checkpoint_delta s node
  | Advanced s -> Store_advanced.checkpoint_delta s node

let apply_delta t node blob =
  match t with
  | Exspan s -> Store_exspan.apply_delta s node blob
  | Basic s -> Store_basic.apply_delta s node blob
  | Advanced s -> Store_advanced.apply_delta s node blob

let restore scheme ~delp ~env blob =
  match scheme with
  | S_exspan -> Exspan (Store_exspan.restore ~delp ~env blob)
  | S_basic -> Basic (Store_basic.restore ~delp ~env blob)
  | S_advanced | S_advanced_interclass ->
      let keys = Dpc_analysis.Equi_keys.compute delp in
      Advanced (Store_advanced.restore ~delp ~env ~keys blob)
