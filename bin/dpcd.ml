(* dpcd: the real-process node daemon and its cluster launcher.

   `dpcd serve` hosts ONE scenario node in this process — socket
   transport, WAL + checkpoints + outbox on disk under --dir — and pumps
   its event loop until a Shutdown control frame.

   `dpcd cluster` is the transparency oracle: it spawns three `dpcd
   serve` children per scheme, drives the Scenario phases over the
   control plane (including a mid-run `kill -9` of node 1 and a recovery
   from its data directory), and checks every node's digests against the
   in-process simulator. Exit status 0 iff every scheme matched. *)

open Cmdliner

let scheme_conv =
  let parse s =
    match Dpc_proc.Cluster.scheme_of_arg s with
    | Some scheme -> Ok scheme
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Dpc_proc.Cluster.scheme_arg s) in
  Arg.conv (parse, print)

let scheme_doc = "Maintenance scheme: exspan, basic, advanced, or advanced-interclass."

(* ---- serve ----------------------------------------------------------- *)

let serve scheme nodes local dir =
  if local < 0 || local >= nodes then
    `Error (false, Printf.sprintf "--local %d out of range for %d nodes" local nodes)
  else begin
    let daemon =
      Dpc_proc.Daemon.create ~scheme ~nodes ~local
        ~addr_of:(Dpc_proc.Cluster.addr_of ~dir)
        ~dir ()
    in
    Dpc_proc.Daemon.serve daemon;
    `Ok ()
  end

let serve_cmd =
  let scheme =
    Arg.(required & opt (some scheme_conv) None & info [ "scheme" ] ~docv:"SCHEME" ~doc:scheme_doc)
  in
  let nodes =
    Arg.(value & opt int Dpc_proc.Scenario.nodes & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let local =
    Arg.(required & opt (some int) None & info [ "local" ] ~docv:"I" ~doc:"The node this process hosts.")
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Data directory: listen sockets, and this node's WAL/checkpoints/outbox under \
                $(i,DIR)/node-$(i,I)/.")
  in
  let doc = "host one cluster node in this process" in
  Cmd.v (Cmd.info "serve" ~doc) Term.(ret (const serve $ scheme $ nodes $ local $ dir))

(* ---- cluster --------------------------------------------------------- *)

let cluster schemes dir =
  let schemes =
    match schemes with [] -> Dpc_core.Backend.all_schemes | chosen -> chosen
  in
  let dir =
    match dir with
    | Some d -> d
    | None -> Filename.temp_dir "dpc-procs-" ""
  in
  Printf.printf "dpcd cluster: %d node(s) per scheme, state under %s\n%!" Dpc_proc.Scenario.nodes dir;
  if Dpc_proc.Cluster.run_all ~exe:Sys.executable_name ~dir schemes then `Ok ()
  else `Error (false, "real-process digests diverged from the simulator")

let cluster_cmd =
  let schemes =
    Arg.(value & opt_all scheme_conv [] & info [ "scheme" ] ~docv:"SCHEME" ~doc:(scheme_doc ^ " Repeatable; default all four."))
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Working directory (default: a fresh temp dir). Keep short: Unix socket paths live \
                inside it.")
  in
  let doc = "spawn a daemon per node and run the crash/transparency oracle" in
  Cmd.v (Cmd.info "cluster" ~doc) Term.(ret (const cluster $ schemes $ dir))

let () =
  let doc = "distributed provenance compression, as real processes" in
  let info = Cmd.info "dpcd" ~doc in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; cluster_cmd ]))
