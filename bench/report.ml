(* Machine-readable bench report (--json PATH): collects per-figure
   wall-clock, injected-event counts, and storage series while the figures
   print their human-readable tables, then writes one JSON document.

   Schema ("dpc-bench-v1"):

     { "schema": "dpc-bench-v1",
       "scale": "scaled-down" | "paper" | "tiny",
       "seed": <int>,
       "figures": {
         "<fig>": {
           "wall_clock_s": <float>,
           "events": <int>,
           "events_per_s": <float>,
           "series": { "<label>": [[<x>, <bytes>], ...], ... } } } }

   [events] is 0 and [series] {} where a figure has nothing to report.
   The writer is hand-rolled: the repo deliberately has no JSON dependency. *)

type fig = {
  mutable wall_s : float;
  mutable events : int;
  mutable series : (string * (float * int) list) list;
}

let path = ref None
let figures : (string * fig) list ref = ref []

let enable p = path := Some p

let fig name =
  match List.assoc_opt name !figures with
  | Some f -> f
  | None ->
      let f = { wall_s = 0.0; events = 0; series = [] } in
      figures := !figures @ [ (name, f) ];
      f

let set_wall name s = (fig name).wall_s <- s

let add_events name n =
  let f = fig name in
  f.events <- f.events + n

let add_series name label points =
  let f = fig name in
  f.series <- f.series @ [ (label, points) ]

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.6g keeps the file small and is lossless for the quantities involved
   (sub-microsecond walls and whole-second snapshot times). *)
let float_lit f =
  let s = Printf.sprintf "%.6g" f in
  (* Bare exponents and integers are valid JSON; "nan"/"inf" are not. *)
  if Float.is_finite f then s else "null"

let write ~scale ~seed =
  match !path with
  | None -> ()
  | Some p ->
      let buf = Buffer.create 4096 in
      let add = Buffer.add_string buf in
      add "{\n";
      add (Printf.sprintf "  \"schema\": \"dpc-bench-v1\",\n");
      add (Printf.sprintf "  \"scale\": \"%s\",\n" (escape scale));
      add (Printf.sprintf "  \"seed\": %d,\n" seed);
      add "  \"figures\": {";
      List.iteri
        (fun i (name, f) ->
          if i > 0 then add ",";
          add (Printf.sprintf "\n    \"%s\": {\n" (escape name));
          add (Printf.sprintf "      \"wall_clock_s\": %s,\n" (float_lit f.wall_s));
          add (Printf.sprintf "      \"events\": %d,\n" f.events);
          let eps = if f.wall_s > 0.0 then float_of_int f.events /. f.wall_s else 0.0 in
          add (Printf.sprintf "      \"events_per_s\": %s,\n" (float_lit eps));
          add "      \"series\": {";
          List.iteri
            (fun j (label, points) ->
              if j > 0 then add ",";
              add (Printf.sprintf "\n        \"%s\": [" (escape label));
              List.iteri
                (fun k (x, v) ->
                  if k > 0 then add ", ";
                  add (Printf.sprintf "[%s, %d]" (float_lit x) v))
                points;
              add "]")
            f.series;
          if f.series <> [] then add "\n      ";
          add "}\n    }")
        !figures;
      if !figures <> [] then add "\n  ";
      add "}\n}\n";
      let oc = open_out p in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "\nbench report written to %s\n" p
