lib/analysis/depgraph.mli: Dpc_ndlog Format
