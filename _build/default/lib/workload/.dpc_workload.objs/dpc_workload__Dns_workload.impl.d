lib/workload/dns_workload.ml: Array Dpc_apps Dpc_core Dpc_engine Dpc_net Dpc_util List Printf String
