(** Ground tuples: a relation name applied to values, with the first
    attribute as the location specifier. *)

type t

val make : string -> Value.t list -> t
(** @raise Invalid_argument if the argument list is empty or the first
    argument is not an [Addr] (every NDlog relation is located). *)

val rel : t -> string
val args : t -> Value.t array
val arity : t -> int

val loc : t -> int
(** The node address in the location specifier (first attribute). *)

val arg : t -> int -> Value.t
(** @raise Invalid_argument on an out-of-range index. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val canonical : t -> string
(** Unambiguous rendering used as SHA-1 input; [vid = sha1 (canonical t)]
    mirrors the paper's [sha1(packet(@n1, n1, n3, "data"))]. Memoized per
    tuple value. *)

val digest : t -> Dpc_util.Sha1.t
(** The tuple's SHA-1, memoized per tuple value — the vid every
    provenance scheme keys on. Computed over the canonical rendering with
    one twist: [Str] payloads longer than {!Value.payload_inline_max}
    contribute their interned rendering ({!Value.interned_feed} — length
    plus the payload's own cached digest) instead of their raw bytes, so
    repeated large payloads are hashed once per distinct content.
    Injective and deterministic like [sha1 (canonical t)], but NOT equal
    to it for tuples with large payloads. *)

val pp : Format.formatter -> t -> unit
(** e.g. [packet(@n1, n1, n3, "data")]. *)

val to_string : t -> string

val wire_size : t -> int
(** Serialized size in bytes, for bandwidth and storage accounting. *)

val serialized_size : t -> int
(** Exact byte count {!serialize} emits for this tuple, computed without
    serializing — the unit of Db's incremental storage accounting. *)

val serialize : Dpc_util.Serialize.writer -> t -> unit
val deserialize : Dpc_util.Serialize.reader -> t
