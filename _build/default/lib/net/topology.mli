(** Undirected network topologies with per-link latency and bandwidth. *)

type link = { latency : float  (** seconds *); bandwidth : float  (** bytes/second *) }

type t

val create : n:int -> t
(** [create ~n] is a topology with nodes [0 .. n-1] and no links.
    @raise Invalid_argument if [n <= 0]. *)

val size : t -> int

val add_link : t -> int -> int -> link -> unit
(** Add an undirected link. Replaces an existing link between the pair.
    @raise Invalid_argument on out-of-range nodes, self-links. *)

val link : t -> int -> int -> link option
val connected : t -> int -> int -> bool
val neighbors : t -> int -> (int * link) list
val links : t -> (int * int * link) list
(** Each undirected link once, with [fst < snd]. *)

val degree : t -> int -> int

val is_connected : t -> bool
(** Whether every node is reachable from node 0. *)
