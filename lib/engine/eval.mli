(** Evaluation of a single DELP rule against an event tuple.

    [fire] is the runtime join: unify the event atom with the arriving
    event tuple, join the slow-changing condition atoms against the local
    database, evaluate comparison atoms and assignments, and instantiate the
    head. One result per satisfying combination of slow-changing tuples.

    [fire_with_slow] is the symbolic re-derivation used at query time
    (§4 step 2): instead of joining the database — whose slow-changing
    tables may have changed since — it binds the condition atoms to the
    recorded slow tuples and recomputes the head. *)

exception Eval_error of string
(** Type errors, unknown functions, division by zero. Evaluation is only
    partial on ill-typed programs; DELP validation does not type-check. *)

type binding = (string * Dpc_ndlog.Value.t) list

val match_atom :
  Dpc_ndlog.Ast.atom -> Dpc_ndlog.Tuple.t -> binding -> binding option
(** Unify an atom against a ground tuple, extending the binding; [None] on
    relation/arity/value mismatch. *)

val eval_expr : Env.t -> binding -> Dpc_ndlog.Ast.expr -> Dpc_ndlog.Value.t
(** @raise Eval_error on unbound variables, unknown functions, type
    mismatches, division by zero. *)

val instantiate : Dpc_ndlog.Ast.atom -> binding -> Dpc_ndlog.Tuple.t
(** @raise Eval_error on unbound variables. *)

val fire :
  env:Env.t ->
  db:Db.t ->
  rule:Dpc_ndlog.Ast.rule ->
  event:Dpc_ndlog.Tuple.t ->
  (Dpc_ndlog.Tuple.t * Dpc_ndlog.Tuple.t list) list
(** All (head, slow tuples used) derivations of [rule] triggered by
    [event]; empty if the event does not match or no join succeeds. Slow
    tuples are listed in condition-atom order. *)

type plan
(** A rule compiled for index-driven joins: for each condition atom, the
    argument positions already bound by the event atom or earlier
    conditions (constants included) form the key of a {!Db.lookup} probe;
    atoms with no bound position fall back to a full-relation pass. *)

val plan : Dpc_ndlog.Ast.rule -> plan

val plan_rule : plan -> Dpc_ndlog.Ast.rule

val fire_planned :
  env:Env.t ->
  db:Db.t ->
  plan:plan ->
  event:Dpc_ndlog.Tuple.t ->
  (Dpc_ndlog.Tuple.t * Dpc_ndlog.Tuple.t list) list
(** Same derivations as {!fire} on the planned rule (as a multiset —
    candidate order, and hence result order, is unspecified), but each
    condition atom probes an exact index bucket instead of scanning and
    sorting the relation. *)

val fire_with_slow :
  env:Env.t ->
  rule:Dpc_ndlog.Ast.rule ->
  event:Dpc_ndlog.Tuple.t ->
  slow:Dpc_ndlog.Tuple.t list ->
  Dpc_ndlog.Tuple.t option
(** Re-derive the head from the event and the recorded slow tuples (one per
    condition atom, in order); [None] if they no longer unify or a
    comparison fails. *)
