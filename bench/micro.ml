(* Bechamel micro-benchmarks for the hot operations of the maintenance
   pipeline: hashing, equivalence-key extraction, rule firing, and
   per-scheme provenance recording. *)

open Bechamel
open Toolkit

let packet = Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:(String.make 500 'x')

let sha1_64 =
  let input = String.make 64 'a' in
  Test.make ~name:"sha1/64B" (Staged.stage (fun () -> Dpc_util.Sha1.digest_string input))

let sha1_1k =
  let input = String.make 1024 'a' in
  Test.make ~name:"sha1/1KB" (Staged.stage (fun () -> Dpc_util.Sha1.digest_string input))

let tuple_canonical =
  Test.make ~name:"tuple/canonical+hash"
    (Staged.stage (fun () -> Dpc_util.Sha1.digest_string (Dpc_ndlog.Tuple.canonical packet)))

let equi_key_hash =
  let keys = Dpc_analysis.Equi_keys.compute (Dpc_apps.Forwarding.delp ()) in
  Test.make ~name:"equi_keys/key_hash"
    (Staged.stage (fun () -> Dpc_analysis.Equi_keys.key_hash keys packet))

let static_analysis =
  let delp = Dpc_apps.Dns.delp () in
  Test.make ~name:"analysis/GetEquiKeys(dns)"
    (Staged.stage (fun () -> Dpc_analysis.Equi_keys.compute delp))

let rule_fire =
  let delp = Dpc_apps.Forwarding.delp () in
  let rule = List.hd delp.program.rules in
  let db = Dpc_engine.Db.create () in
  List.iter
    (fun d -> ignore (Dpc_engine.Db.insert db (Dpc_apps.Forwarding.route ~at:0 ~dst:d ~next:1)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Test.make ~name:"eval/fire(join of 8 routes)"
    (Staged.stage (fun () ->
       Dpc_engine.Eval.fire ~env:Dpc_apps.Forwarding.env ~db ~rule ~event:packet))

(* End-to-end recording cost: one packet through the 3-node example under
   each scheme, amortized. *)
let record_scheme scheme =
  Test.make ~name:(Printf.sprintf "record/%s" (Dpc_core.Backend.scheme_name scheme))
    (Staged.stage
       (let topo = Dpc_net.Topology.create ~n:3 in
        let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e9 } in
        Dpc_net.Topology.add_link topo 0 1 l;
        Dpc_net.Topology.add_link topo 1 2 l;
        let routing = Dpc_net.Routing.compute topo in
        let delp = Dpc_apps.Forwarding.delp () in
        let backend =
          Dpc_core.Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3
        in
        let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
        let runtime =
          Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
            ~env:Dpc_apps.Forwarding.env ~hook:(Dpc_core.Backend.hook backend)
            ~nodes:(Dpc_core.Backend.nodes backend) ()
        in
        Dpc_engine.Runtime.load_slow runtime
          [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
            Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ];
        let counter = ref 0 in
        fun () ->
          incr counter;
          Dpc_engine.Runtime.inject runtime
            (Dpc_apps.Forwarding.packet ~src:0 ~dst:2
               ~payload:(Printf.sprintf "p%d" !counter));
          Dpc_engine.Runtime.run runtime))

let tests =
  Test.make_grouped ~name:"dpc"
    [
      sha1_64;
      sha1_1k;
      tuple_canonical;
      equi_key_hash;
      static_analysis;
      rule_fire;
      record_scheme Dpc_core.Backend.S_exspan;
      record_scheme Dpc_core.Backend.S_basic;
      record_scheme Dpc_core.Backend.S_advanced;
    ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "\n=== Micro-benchmarks (monotonic clock, ns/run) ===";
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let estimate =
          match Analyze.OLS.estimates result with
          | Some [ e ] -> Printf.sprintf "%.1f" e
          | Some _ | None -> "n/a"
        in
        [ name; estimate ] :: acc)
      results []
    |> List.sort compare
  in
  Dpc_util.Table_fmt.print ~header:[ "benchmark"; "ns/run" ] ~rows
