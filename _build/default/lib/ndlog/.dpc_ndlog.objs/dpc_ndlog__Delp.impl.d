lib/ndlog/delp.ml: Ast Hashtbl List Printf String
