(** Deterministic binary serialization.

    The paper measures provenance storage by serializing the per-node
    relational tables (with boost::serialization) and taking the file size.
    This module is the stand-in: a length-prefixed binary writer/reader whose
    output size is a faithful, deterministic proxy for table storage. *)

type writer

val writer : unit -> writer
val write_int : writer -> int -> unit
(** Fixed 8-byte little-endian integer. *)

val write_varint : writer -> int -> unit
(** LEB128-style variable-length non-negative integer. *)

val varint_size : int -> int
(** Bytes {!write_varint} would emit, without writing — for analytic size
    accounting that must match serialization exactly. *)

val write_float : writer -> float -> unit
val write_bool : writer -> bool -> unit
val write_string : writer -> string -> unit
(** Varint length prefix followed by the raw bytes. *)

val write_list : writer -> ('a -> unit) -> 'a list -> unit
(** Varint count followed by each element via the callback. *)

val contents : writer -> string
val size : writer -> int

val reset : writer -> unit
(** Drop everything written so far, keeping the backing store — the
    writer restarts empty. For long-lived writers that batch work (e.g.
    the WAL group-commit buffer). *)

val with_scratch : (writer -> unit) -> string
(** [with_scratch f] runs [f] against a per-domain reusable scratch
    writer and returns its contents. Equivalent to
    [let w = writer () in f w; contents w] minus the per-call buffer
    allocation; use for one-shot blobs on hot paths (checkpoints,
    deltas). Re-entrant calls on the same domain get a fresh writer. *)

type reader

val reader : string -> reader
val read_int : reader -> int
val read_varint : reader -> int
val read_float : reader -> float
val read_bool : reader -> bool
val read_string : reader -> string
val read_list : reader -> (unit -> 'a) -> 'a list
val at_end : reader -> bool

exception Corrupt of string
