module Wire = Dpc_net.Wire
module Backend = Dpc_core.Backend

let addr_of ~dir node = Printf.sprintf "unix:%s/node-%d.sock" dir node

let scheme_arg = function
  | Backend.S_exspan -> "exspan"
  | Backend.S_basic -> "basic"
  | Backend.S_advanced -> "advanced"
  | Backend.S_advanced_interclass -> "advanced-interclass"

let scheme_of_arg = function
  | "exspan" -> Some Backend.S_exspan
  | "basic" -> Some Backend.S_basic
  | "advanced" -> Some Backend.S_advanced
  | "advanced-interclass" -> Some Backend.S_advanced_interclass
  | _ -> None

exception Oracle_failure of string

let failf fmt = Printf.ksprintf (fun msg -> raise (Oracle_failure msg)) fmt

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* ---- the control client ---------------------------------------------- *)

module Client = struct
  type t = { fd : Unix.file_descr; decoder : Wire.Decoder.t; node : int; mutable seq : int }

  let sockaddr_of addr =
    match String.index_opt addr ':' with
    | Some i when String.sub addr 0 i = "unix" ->
        Unix.ADDR_UNIX (String.sub addr (i + 1) (String.length addr - i - 1))
    | Some i when String.sub addr 0 i = "tcp" -> (
        let rest = String.sub addr (i + 1) (String.length addr - i - 1) in
        match String.rindex_opt rest ':' with
        | Some j ->
            let host = String.sub rest 0 j in
            let port = int_of_string (String.sub rest (j + 1) (String.length rest - j - 1)) in
            Unix.ADDR_INET ((Unix.gethostbyname host).h_addr_list.(0), port)
        | None -> failf "malformed tcp address %S" addr)
    | _ -> failf "malformed address %S" addr

  (* The daemon binds its listen socket inside [Daemon.create], so a
     connection refused just means the process has not reached that point
     yet — retry until the deadline. *)
  let connect ~addr ~node ~timeout =
    let sa = sockaddr_of addr in
    let deadline = Unix.gettimeofday () +. timeout in
    let rec attempt () =
      let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
      match Unix.connect fd sa with
      | () -> fd
      | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
        when Unix.gettimeofday () < deadline ->
          Unix.close fd;
          Unix.sleepf 0.02;
          attempt ()
      | exception exn ->
          Unix.close fd;
          raise exn
    in
    let fd = attempt () in
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
    write_all fd (Wire.encode { kind = Hello; src = Wire.control_id; dst = node; seq = 0; payload = "" });
    { fd; decoder = Wire.Decoder.create (); node; seq = 0 }

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

  let rec next_reply t ~seq buf =
    match Wire.Decoder.next t.decoder with
    | Some { kind = Ctrl; seq = s; payload; _ } when s = seq -> Ctrl.decode_reply payload
    | Some _ -> next_reply t ~seq buf
    | None -> (
        match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 -> failf "daemon %d closed the control connection" t.node
        | n ->
            Wire.Decoder.feed t.decoder buf 0 n;
            next_reply t ~seq buf
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            failf "daemon %d control reply timed out" t.node)

  let request t req =
    t.seq <- t.seq + 1;
    let seq = t.seq in
    write_all t.fd
      (Wire.encode
         { kind = Ctrl; src = Wire.control_id; dst = t.node; seq; payload = Ctrl.encode_request req });
    next_reply t ~seq (Bytes.create 65536)

  (* Fire-and-forget: [Shutdown] has no reply. *)
  let send t req =
    t.seq <- t.seq + 1;
    write_all t.fd
      (Wire.encode
         {
           kind = Ctrl;
           src = Wire.control_id;
           dst = t.node;
           seq = t.seq;
           payload = Ctrl.encode_request req;
         })
end

let expect_ok node what = function
  | Ctrl.Ok -> ()
  | Ctrl.Error msg -> failf "daemon %d rejected %s: %s" node what msg
  | _ -> failf "daemon %d: unexpected reply to %s" node what

let status client =
  match Client.request client Ctrl.Status with
  | Ctrl.Status_r s -> s
  | Ctrl.Error msg -> failf "daemon %d status failed: %s" client.Client.node msg
  | _ -> failf "daemon %d: unexpected reply to status" client.Client.node

(* ---- daemon processes ------------------------------------------------- *)

type proc = { node : int; mutable pid : int }

let spawn ?chaos ~exe ~dir ~scheme node =
  let log =
    Unix.openfile
      (Filename.concat dir (Printf.sprintf "node-%d.log" node))
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  let chaos_args =
    match chaos with
    | None -> []
    | Some ((fc : Dpc_net.Transport.fault_config), seed) ->
        [
          "--drop"; string_of_float fc.drop;
          "--dup"; string_of_float fc.duplicate;
          "--delay"; string_of_float fc.delay;
          "--delay-max"; string_of_float fc.delay_max;
          "--chaos-seed"; string_of_int seed;
        ]
  in
  let args =
    Array.of_list
      ([
         exe; "serve";
         "--scheme"; scheme_arg scheme;
         "--nodes"; string_of_int Scenario.nodes;
         "--local"; string_of_int node;
         "--dir"; dir;
       ]
      @ chaos_args)
  in
  let pid = Unix.create_process exe args Unix.stdin log log in
  Unix.close log;
  { node; pid }

let kill_hard proc =
  if proc.pid > 0 then begin
    (try Unix.kill proc.pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] proc.pid) with Unix.Unix_error _ -> ());
    proc.pid <- -1
  end

(* Reap a daemon that was asked to shut down; escalate to SIGKILL if it
   does not exit within the grace period. *)
let reap ?(grace = 5.0) proc =
  if proc.pid > 0 then begin
    let deadline = Unix.gettimeofday () +. grace in
    let rec wait () =
      match Unix.waitpid [ Unix.WNOHANG ] proc.pid with
      | 0, _ ->
          if Unix.gettimeofday () > deadline then kill_hard proc
          else begin
            Unix.sleepf 0.02;
            wait ()
          end
      | _ -> proc.pid <- -1
      | exception Unix.Unix_error _ -> proc.pid <- -1
    in
    wait ()
  end

(* ---- the quiescence barrier ------------------------------------------- *)

(* Two consecutive all-daemon polls with zero unacked frames everywhere
   and unchanged monotonic counters: nothing in flight, nothing happened
   between the polls, so (absent new control input) nothing will. *)
let quiesce ?(timeout = 30.0) clients =
  let deadline = Unix.gettimeofday () +. timeout in
  let poll () =
    List.map (fun c -> let s = status c in (s.Ctrl.unacked, s.data_sent, s.data_received)) clients
  in
  let stable a b =
    List.for_all2
      (fun (ua, sa, ra) (ub, sb, rb) -> ua = 0 && ub = 0 && sa = sb && ra = rb)
      a b
  in
  let rec settle prev =
    if Unix.gettimeofday () > deadline then failf "cluster did not quiesce within %.0fs" timeout;
    let round = poll () in
    if stable prev round then ()
    else begin
      Unix.sleepf 0.03;
      settle round
    end
  in
  settle (poll ())

(* ---- the oracle ------------------------------------------------------- *)

let mkdir_p dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let digest client =
  match Client.request client Ctrl.Digest with
  | Ctrl.Digest_r { node; store; db } ->
      if node <> client.Client.node then
        failf "daemon %d answered for node %d" client.Client.node node;
      { Scenario.store; db }
  | Ctrl.Error msg -> failf "daemon %d digest failed: %s" client.Client.node msg
  | _ -> failf "daemon %d: unexpected reply to digest" client.Client.node

let run_scheme ?chaos ~exe ~dir scheme =
  mkdir_p dir;
  let reference = Scenario.simulate scheme in
  let procs = Array.init Scenario.nodes (fun node -> { node; pid = -1 }) in
  let clients : Client.t option array = Array.make Scenario.nodes None in
  let client node = Option.get clients.(node) in
  let connect node =
    clients.(node) <- Some (Client.connect ~addr:(addr_of ~dir node) ~node ~timeout:10.0)
  in
  let all_clients () = Array.to_list clients |> List.filter_map Fun.id in
  let cleanup () =
    Array.iter (fun c -> Option.iter Client.close c) clients;
    Array.iter kill_hard procs
  in
  match
    Fun.protect ~finally:cleanup (fun () ->
        Array.iteri (fun node p -> p.pid <- (spawn ?chaos ~exe ~dir ~scheme node).pid) procs;
        Array.iteri (fun node _ -> connect node) procs;
        (* Routes everywhere: each daemon keeps only its own node's entries
           live, but loading the full table keeps the daemons agnostic of
           which rows they will need. *)
        Array.iter
          (fun p -> expect_ok p.node "load" (Client.request (client p.node) (Ctrl.Load (Scenario.routes ()))))
          procs;
        quiesce (all_clients ());
        (* Phase 1: pre packets on the healthy chain. *)
        List.iter
          (fun packet -> expect_ok 0 "inject" (Client.request (client 0) (Ctrl.Inject packet)))
          (Scenario.pre_packets ());
        quiesce (all_clients ());
        (* Cut a checkpoint at node 1 so its recovery restores a real cut
           (channels included) and replays only the tail. *)
        expect_ok 1 "checkpoint" (Client.request (client 1) Ctrl.Checkpoint);
        (* Phase 2: kill node 1 the hard way, inject while it is down. *)
        Client.close (client 1);
        clients.(1) <- None;
        kill_hard procs.(1);
        List.iter
          (fun packet -> expect_ok 0 "inject" (Client.request (client 0) (Ctrl.Inject packet)))
          (Scenario.mid_packets ());
        (* Let node 0 actually attempt (and fail) deliveries toward the dead
           process — the frames must wait in its durable outbox. *)
        Unix.sleepf 0.3;
        let stalled = (status (client 0)).Ctrl.unacked in
        if stalled = 0 then failf "node 0 reported nothing in flight while node 1 was dead";
        procs.(1).pid <- (spawn ?chaos ~exe ~dir ~scheme 1).pid;
        connect 1;
        let s1 = status (client 1) in
        if not s1.Ctrl.recovered then failf "respawned node 1 did not recover from disk";
        quiesce (all_clients ());
        (* Phase 3: the §5.5 route refresh at node 1. *)
        (match Client.request (client 1) (Ctrl.Slow_delete (Scenario.refreshed_route ())) with
        | Ctrl.Deleted true -> ()
        | Ctrl.Deleted false -> failf "node 1 lost its route across the crash"
        | Ctrl.Error msg -> failf "node 1 rejected the route delete: %s" msg
        | _ -> failf "node 1: unexpected reply to the route delete");
        expect_ok 1 "route reinsert"
          (Client.request (client 1) (Ctrl.Slow_insert (Scenario.refreshed_route ())));
        quiesce (all_clients ());
        (* Phase 4: post packets against the re-materialized chains. *)
        List.iter
          (fun packet -> expect_ok 0 "inject" (Client.request (client 0) (Ctrl.Inject packet)))
          (Scenario.post_packets ());
        quiesce (all_clients ());
        (* Phase 5: partition 0 <-> 1 in both directions, inject into the
           cut, kill node 1 mid-partition, restart it, then heal. The part
           packets must ride node 0's durable outbox across the outage and
           the crash, and arrive exactly once after the link comes back. *)
        expect_ok 0 "block" (Client.request (client 0) (Ctrl.Block 1));
        expect_ok 1 "block" (Client.request (client 1) (Ctrl.Block 0));
        List.iter
          (fun packet -> expect_ok 0 "inject" (Client.request (client 0) (Ctrl.Inject packet)))
          (Scenario.part_packets ());
        (* Give node 0's retransmit scan time to keep (not) delivering. *)
        Unix.sleepf 0.3;
        let parted = (status (client 0)).Ctrl.unacked in
        if parted = 0 then failf "node 0 reported nothing in flight across the partition";
        (* Crash the far side of the cut while it is unreachable. Its
           volatile block dies with the process; node 0's survives, so the
           partition stays up one-way until the explicit heal below. *)
        Client.close (client 1);
        clients.(1) <- None;
        kill_hard procs.(1);
        procs.(1).pid <- (spawn ?chaos ~exe ~dir ~scheme 1).pid;
        connect 1;
        if not (status (client 1)).Ctrl.recovered then
          failf "node 1 did not recover from disk after the mid-partition crash";
        expect_ok 0 "unblock" (Client.request (client 0) (Ctrl.Unblock 1));
        quiesce (all_clients ());
        let sink = status (client 2) in
        if sink.Ctrl.outputs <> Scenario.total_outputs then
          failf "node 2 recorded %d outputs, expected %d" sink.Ctrl.outputs Scenario.total_outputs;
        (* The verdict: every node's digests against the simulator's. *)
        Array.iteri
          (fun node (expected : Scenario.digests) ->
            let got = digest (client node) in
            if got.Scenario.store <> expected.Scenario.store then
              failf "node %d store digest diverged from the simulator (%s vs %s)" node
                got.Scenario.store expected.Scenario.store;
            if got.Scenario.db <> expected.Scenario.db then
              failf "node %d db digest diverged from the simulator (%s vs %s)" node
                got.Scenario.db expected.Scenario.db)
          reference;
        let summary =
          Printf.sprintf
            "%d outputs, node-1 crash recovered, %d frames stalled while down, %d across the partition%s"
            Scenario.total_outputs stalled parted
            (if Option.is_some chaos then ", chaos on" else "")
        in
        Array.iter
          (fun p -> if Option.is_some clients.(p.node) then Client.send (client p.node) Ctrl.Shutdown)
          procs;
        Array.iter reap procs;
        summary)
  with
  | summary -> Ok summary
  | exception Oracle_failure msg -> Error msg
  | exception exn -> Error (Printexc.to_string exn)

(* ---- the soak oracle --------------------------------------------------- *)

(* Ceiling for one daemon's compacted outbox ledger. After a quiesced
   round everything is acked, so [Compact] rewrites the file down to the
   per-channel cursor records — a few dozen bytes per peer, independent
   of how many rounds have flowed through. *)
let soak_outbox_cap = 1024

let run_soak ?chaos ~exe ~dir ~rounds ~per_round scheme =
  mkdir_p dir;
  let reference = Scenario.simulate_soak scheme ~rounds ~per_round in
  let procs = Array.init Scenario.nodes (fun node -> { node; pid = -1 }) in
  let clients : Client.t option array = Array.make Scenario.nodes None in
  let client node = Option.get clients.(node) in
  let all_clients () = Array.to_list clients |> List.filter_map Fun.id in
  let cleanup () =
    Array.iter (fun c -> Option.iter Client.close c) clients;
    Array.iter kill_hard procs
  in
  match
    Fun.protect ~finally:cleanup (fun () ->
        Array.iteri (fun node p -> p.pid <- (spawn ?chaos ~exe ~dir ~scheme node).pid) procs;
        Array.iteri
          (fun node _ ->
            clients.(node) <- Some (Client.connect ~addr:(addr_of ~dir node) ~node ~timeout:10.0))
          procs;
        Array.iter
          (fun p -> expect_ok p.node "load" (Client.request (client p.node) (Ctrl.Load (Scenario.routes ()))))
          procs;
        quiesce (all_clients ());
        let ledger_peak = ref 0 in
        for round = 1 to rounds do
          List.iter
            (fun packet -> expect_ok 0 "inject" (Client.request (client 0) (Ctrl.Inject packet)))
            (Scenario.soak_packets ~round per_round);
          quiesce (all_clients ());
          (* A quiesced round means every frame is acked, so compaction must
             shrink each ledger back under a round-independent ceiling. *)
          List.iter
            (fun c ->
              expect_ok c.Client.node "compact" (Client.request c Ctrl.Compact);
              let after = (status c).Ctrl.outbox_bytes in
              ledger_peak := max !ledger_peak after;
              if after > soak_outbox_cap then
                failf "round %d: node %d outbox still %d bytes after compact (cap %d)" round
                  c.Client.node after soak_outbox_cap)
            (all_clients ())
        done;
        let sink = status (client 2) in
        let expected_outputs = rounds * per_round in
        if sink.Ctrl.outputs <> expected_outputs then
          failf "node 2 recorded %d outputs, expected %d" sink.Ctrl.outputs expected_outputs;
        Array.iteri
          (fun node (expected : Scenario.digests) ->
            let got = digest (client node) in
            if got.Scenario.store <> expected.Scenario.store then
              failf "node %d store digest diverged from the simulator (%s vs %s)" node
                got.Scenario.store expected.Scenario.store;
            if got.Scenario.db <> expected.Scenario.db then
              failf "node %d db digest diverged from the simulator (%s vs %s)" node
                got.Scenario.db expected.Scenario.db)
          reference;
        let summary =
          Printf.sprintf "%d rounds x %d packets, ledger peak %d bytes (cap %d)" rounds per_round
            !ledger_peak soak_outbox_cap
        in
        Array.iter
          (fun p -> if Option.is_some clients.(p.node) then Client.send (client p.node) Ctrl.Shutdown)
          procs;
        Array.iter reap procs;
        summary)
  with
  | summary -> Ok summary
  | exception Oracle_failure msg -> Error msg
  | exception exn -> Error (Printexc.to_string exn)

let run_all ?chaos ~exe ~dir schemes =
  mkdir_p dir;
  List.fold_left
    (fun ok scheme ->
      let sub = Filename.concat dir (scheme_arg scheme) in
      match run_scheme ?chaos ~exe ~dir:sub scheme with
      | Ok summary ->
          Printf.printf "PASS %-20s %s\n%!" (scheme_arg scheme) summary;
          ok
      | Error msg ->
          Printf.printf "FAIL %-20s %s (logs under %s)\n%!" (scheme_arg scheme) msg sub;
          false)
    true schemes

let run_soak_all ?chaos ~exe ~dir ~rounds ~per_round schemes =
  mkdir_p dir;
  List.fold_left
    (fun ok scheme ->
      let sub = Filename.concat dir ("soak-" ^ scheme_arg scheme) in
      match run_soak ?chaos ~exe ~dir:sub ~rounds ~per_round scheme with
      | Ok summary ->
          Printf.printf "PASS soak %-20s %s\n%!" (scheme_arg scheme) summary;
          ok
      | Error msg ->
          Printf.printf "FAIL soak %-20s %s (logs under %s)\n%!" (scheme_arg scheme) msg sub;
          false)
    true schemes
