lib/engine/prov_hook.ml: Dpc_ndlog Dpc_util
