(** Recursive-descent parser for NDlog programs.

    Concrete syntax, one rule per sentence:

    {v
    r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
    r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
    v}

    The first body atom of each rule is its event relation (the convention
    used by all programs in the paper). "//" starts a line comment. *)

val parse_program : name:string -> string -> (Ast.program, string) result
(** Parse a full program source. Errors carry "line:col: message". *)

val parse_rule : string -> (Ast.rule, string) result
(** Parse a single rule, for tests and tooling. *)
