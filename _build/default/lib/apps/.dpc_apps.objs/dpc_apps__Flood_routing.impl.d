lib/apps/flood_routing.ml: Delp Dpc_engine Dpc_ndlog Dpc_net List Parser Printf Tuple Value
