type fn = Dpc_ndlog.Value.t list -> Dpc_ndlog.Value.t
type t = (string * fn) list

let empty = []
let register t name fn = (name, fn) :: t
let lookup t name = List.assoc_opt name t

let names t =
  List.sort_uniq String.compare (List.map fst t)
