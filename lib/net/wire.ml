module Sha1 = Dpc_util.Sha1

type kind = Data | Ack | Hello | Ctrl

type frame = { kind : kind; src : int; dst : int; seq : int; payload : string }

let control_id = 0xFFFFFFFF
let magic = "DPCW"
let version = 1
let header_bytes = 4 + 1 + 1 + 4 + 4 + 8 + 4 + 20
let max_payload = 16 * 1024 * 1024

exception Corrupt of string

let kind_to_byte = function Data -> 0 | Ack -> 1 | Hello -> 2 | Ctrl -> 3

let kind_of_byte = function
  | 0 -> Data
  | 1 -> Ack
  | 2 -> Hello
  | 3 -> Ctrl
  | b -> raise (Corrupt (Printf.sprintf "unknown frame kind %d" b))

let put_u32 b off v =
  Bytes.set_uint8 b off ((v lsr 24) land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 3) (v land 0xff)

let get_u32 b off =
  (Bytes.get_uint8 b off lsl 24)
  lor (Bytes.get_uint8 b (off + 1) lsl 16)
  lor (Bytes.get_uint8 b (off + 2) lsl 8)
  lor Bytes.get_uint8 b (off + 3)

let put_u64 b off v =
  put_u32 b off ((v lsr 32) land 0xFFFFFFFF);
  put_u32 b (off + 4) (v land 0xFFFFFFFF)

let get_u64 b off = (get_u32 b off lsl 32) lor get_u32 b (off + 4)

let encode { kind; src; dst; seq; payload } =
  if src < 0 || src > control_id then raise (Corrupt (Printf.sprintf "src %d out of range" src));
  if dst < 0 || dst > control_id then raise (Corrupt (Printf.sprintf "dst %d out of range" dst));
  if seq < 0 then raise (Corrupt (Printf.sprintf "negative seq %d" seq));
  let len = String.length payload in
  if len > max_payload then raise (Corrupt (Printf.sprintf "payload of %d bytes too large" len));
  let b = Bytes.create (header_bytes + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 version;
  Bytes.set_uint8 b 5 (kind_to_byte kind);
  put_u32 b 6 src;
  put_u32 b 10 dst;
  put_u64 b 14 seq;
  put_u32 b 22 len;
  Bytes.blit_string (Sha1.to_raw (Sha1.digest_string payload)) 0 b 26 20;
  Bytes.blit_string payload 0 b 46 len;
  Bytes.unsafe_to_string b

module Decoder = struct
  (* A growable byte buffer with a consume offset; compacted when the
     consumed prefix dominates, so long sessions do not accrete. *)
  type t = { mutable buf : Bytes.t; mutable start : int; mutable stop : int }

  let create () = { buf = Bytes.create 4096; start = 0; stop = 0 }

  let buffered d = d.stop - d.start

  let ensure d extra =
    if d.start > 0 && (d.start > 64 * 1024 || d.stop + extra > Bytes.length d.buf) then begin
      Bytes.blit d.buf d.start d.buf 0 (d.stop - d.start);
      d.stop <- d.stop - d.start;
      d.start <- 0
    end;
    if d.stop + extra > Bytes.length d.buf then begin
      let cap = ref (Bytes.length d.buf) in
      while d.stop + extra > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit d.buf 0 bigger 0 d.stop;
      d.buf <- bigger
    end

  let feed d src off len =
    if off < 0 || len < 0 || off + len > Bytes.length src then
      invalid_arg "Wire.Decoder.feed: bad slice";
    ensure d len;
    Bytes.blit src off d.buf d.stop len;
    d.stop <- d.stop + len

  let feed_string d s = feed d (Bytes.unsafe_of_string s) 0 (String.length s)

  let next d =
    if buffered d < header_bytes then None
    else begin
      let b = d.buf and o = d.start in
      if not (Bytes.sub_string b o 4 = magic) then raise (Corrupt "bad magic");
      let v = Bytes.get_uint8 b (o + 4) in
      if v <> version then raise (Corrupt (Printf.sprintf "unsupported wire version %d" v));
      let kind = kind_of_byte (Bytes.get_uint8 b (o + 5)) in
      let src = get_u32 b (o + 6) in
      let dst = get_u32 b (o + 10) in
      let seq = get_u64 b (o + 14) in
      let len = get_u32 b (o + 22) in
      if len > max_payload then raise (Corrupt (Printf.sprintf "payload of %d bytes too large" len));
      if buffered d < header_bytes + len then None
      else begin
        let digest = Bytes.sub_string b (o + 26) 20 in
        let payload = Bytes.sub_string b (o + 46) len in
        if not (String.equal digest (Sha1.to_raw (Sha1.digest_string payload))) then
          raise (Corrupt "payload digest mismatch");
        d.start <- o + header_bytes + len;
        if d.start = d.stop then begin
          d.start <- 0;
          d.stop <- 0
        end;
        Some { kind; src; dst; seq; payload }
      end
    end
end
