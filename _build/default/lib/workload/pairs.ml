let select ~rng ~eligible ~count =
  let nodes = Array.of_list eligible in
  let n = Array.length nodes in
  if n < 2 then invalid_arg "Pairs.select: need at least two eligible nodes";
  if count > n * (n - 1) then invalid_arg "Pairs.select: more pairs requested than exist";
  let seen = Hashtbl.create (2 * count) in
  let rec draw acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let s = Dpc_util.Rng.pick rng nodes and d = Dpc_util.Rng.pick rng nodes in
      if s = d || Hashtbl.mem seen (s, d) then draw acc remaining
      else begin
        Hashtbl.add seen (s, d) ();
        draw ((s, d) :: acc) (remaining - 1)
      end
    end
  in
  draw [] count
