type t = { cdf : float array; pmf : float array }

let create ?(exponent = 1.0) n =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if exponent < 0.0 then invalid_arg "Zipf.create: exponent must be non-negative";
  let weights = Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let pmf = Array.map (fun w -> w /. total) weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf.(n - 1) <- 1.0;
  { cdf; pmf }

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let pmf t k =
  if k < 0 || k >= Array.length t.pmf then invalid_arg "Zipf.pmf: rank out of range";
  t.pmf.(k)

let support t = Array.length t.pmf
