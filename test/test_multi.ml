(* Tests for Store_multi: cross-program provenance compression (the
   paper's §8 future work). Two programs — packet forwarding and the
   traffic-mirroring protocol that shares its forwarding rule — run
   concurrently over the same routes and the same packet stream. *)

open Dpc_core

let check = Alcotest.check

let line_link = { Dpc_net.Topology.latency = 0.002; bandwidth = 1e7 }

(* n0 -> n1 -> n2. *)
let topology () =
  let topo = Dpc_net.Topology.create ~n:3 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  Dpc_net.Topology.add_link topo 1 2 line_link;
  topo

let routes =
  [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
    Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ]

type world = {
  store : Store_multi.t;
  fwd : Store_multi.handle;
  mirror : Store_multi.handle;
  fwd_rt : Dpc_engine.Runtime.t;
  mirror_rt : Dpc_engine.Runtime.t;
  routing : Dpc_net.Routing.t;
}

let make_world () =
  let topo = topology () in
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let store = Store_multi.create ~nodes:3 in
  let fwd_delp = Dpc_apps.Forwarding.delp () in
  let mirror_delp = Dpc_apps.Mirror.delp () in
  let fwd = Store_multi.add_program store ~id:"forwarding" ~delp:fwd_delp ~env:Dpc_engine.Env.empty in
  let mirror = Store_multi.add_program store ~id:"mirror" ~delp:mirror_delp ~env:Dpc_engine.Env.empty in
  let fwd_rt =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp:fwd_delp ~env:Dpc_engine.Env.empty
      ~hook:(Store_multi.hook fwd) ()
  in
  let mirror_rt =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp:mirror_delp ~env:Dpc_engine.Env.empty
      ~hook:(Store_multi.hook mirror) ()
  in
  Dpc_engine.Runtime.load_slow fwd_rt routes;
  Dpc_engine.Runtime.load_slow mirror_rt routes;
  (sim, { store; fwd; mirror; fwd_rt; mirror_rt; routing })

let send_both sim w ~payload =
  Dpc_engine.Runtime.inject w.fwd_rt (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload);
  Dpc_engine.Runtime.inject w.mirror_rt (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload);
  Dpc_net.Sim.run sim

let test_rule_signature_name_insensitive () =
  let fwd_r1 = List.hd (Dpc_apps.Forwarding.delp ()).program.rules in
  let mirror_r1 = List.hd (Dpc_apps.Mirror.delp ()).program.rules in
  check Alcotest.string "shared forwarding rule" (Store_multi.rule_signature fwd_r1)
    (Store_multi.rule_signature mirror_r1);
  let fwd_r2 = List.nth (Dpc_apps.Forwarding.delp ()).program.rules 1 in
  let mirror_r2 = List.nth (Dpc_apps.Mirror.delp ()).program.rules 1 in
  check Alcotest.bool "final rules differ" false
    (String.equal (Store_multi.rule_signature fwd_r2) (Store_multi.rule_signature mirror_r2))

let test_rule_signature_alpha_insensitive () =
  (* The same forwarding rule with every variable renamed. *)
  let renamed =
    match
      Dpc_ndlog.Parser.parse_rule
        "r9 packet(@Hop, Source, Dest, Body) :- packet(@Here, Source, Dest, Body), route(@Here, Dest, Hop)."
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse error: %s" e
  in
  let fwd_r1 = List.hd (Dpc_apps.Forwarding.delp ()).program.rules in
  check Alcotest.string "alpha-equivalent rules share a signature"
    (Store_multi.rule_signature fwd_r1)
    (Store_multi.rule_signature renamed);
  (* But a structurally different rule does not. *)
  let different =
    match
      Dpc_ndlog.Parser.parse_rule
        "r9 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, S, N)."
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse error: %s" e
  in
  check Alcotest.bool "structural difference detected" false
    (String.equal (Store_multi.rule_signature fwd_r1) (Store_multi.rule_signature different))

let test_shared_rows_deduplicate () =
  let sim, w = make_world () in
  send_both sim w ~payload:"data";
  (* One chain each: r1@0, r1@1, r2@2. The two r1 executions are shared
     (same rule content, node, route tuple); the final rules differ. *)
  let shared = Store_multi.shared_storage w.store in
  check Alcotest.int "4 shared node rows (2 shared r1 + 2 distinct finals)" 4
    shared.Rows.rule_exec_rows;
  (* Each program keeps its own 3 link rows and 1 prov delta. *)
  let fwd_private = Store_multi.program_storage w.fwd in
  let mirror_private = Store_multi.program_storage w.mirror in
  check Alcotest.int "fwd links" 3 fwd_private.Rows.rule_exec_rows;
  check Alcotest.int "mirror links" 3 mirror_private.Rows.rule_exec_rows;
  check Alcotest.int "fwd prov" 1 fwd_private.Rows.prov_rows;
  check Alcotest.int "mirror prov" 1 mirror_private.Rows.prov_rows

let test_queries_isolated_and_correct () =
  let sim, w = make_world () in
  send_both sim w ~payload:"data";
  let fwd_out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"data" in
  let mirror_out = Dpc_apps.Mirror.mirror_log ~at:2 ~src:0 ~dst:2 ~payload:"data" in
  let fwd_result = Store_multi.query w.fwd ~cost:Query_cost.free ~routing:w.routing fwd_out in
  check Alcotest.int "fwd finds its tree" 1 (List.length fwd_result.trees);
  check (Alcotest.list Alcotest.string) "fwd rule names" [ "r2"; "r1"; "r1" ]
    (Prov_tree.rules_root_to_leaf (List.hd fwd_result.trees));
  let mirror_result =
    Store_multi.query w.mirror ~cost:Query_cost.free ~routing:w.routing mirror_out
  in
  check Alcotest.int "mirror finds its tree" 1 (List.length mirror_result.trees);
  (* Isolation: neither program can see the other's outputs. *)
  let cross = Store_multi.query w.fwd ~cost:Query_cost.free ~routing:w.routing mirror_out in
  check Alcotest.int "no cross-program leakage" 0 (List.length cross.trees)

let test_sharing_beats_separate_stores () =
  let sim, w = make_world () in
  for i = 1 to 10 do
    send_both sim w ~payload:(Printf.sprintf "p%d" i)
  done;
  let multi_bytes = Rows.provenance_bytes (Store_multi.total_storage w.store) in
  (* The same workload in two separate Advanced+interclass stores. *)
  let separate scheme delp env packet_out =
    ignore packet_out;
    let topo = topology () in
    let routing = Dpc_net.Routing.compute topo in
    let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
    let backend = Backend.make scheme ~delp ~env ~nodes:3 in
    let rt = Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env ~hook:(Backend.hook backend) () in
    Dpc_engine.Runtime.load_slow rt routes;
    for i = 1 to 10 do
      Dpc_engine.Runtime.inject rt
        (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "p%d" i))
    done;
    Dpc_engine.Runtime.run rt;
    Rows.provenance_bytes (Backend.total_storage backend)
  in
  let fwd_alone =
    separate Backend.S_advanced_interclass (Dpc_apps.Forwarding.delp ()) Dpc_engine.Env.empty ()
  in
  let mirror_alone =
    separate Backend.S_advanced_interclass (Dpc_apps.Mirror.delp ()) Dpc_engine.Env.empty ()
  in
  check Alcotest.bool "multi < sum of separate stores" true
    (multi_bytes < fwd_alone + mirror_alone)

let test_flush_is_per_program () =
  let sim, w = make_world () in
  send_both sim w ~payload:"one";
  (* A slow-changing insert via the forwarding runtime flushes only the
     forwarding program's htequi (each runtime broadcasts to its own
     hook). *)
  Dpc_engine.Runtime.insert_slow_runtime w.fwd_rt (Dpc_apps.Forwarding.route ~at:1 ~dst:0 ~next:0);
  Dpc_net.Sim.run sim;
  send_both sim w ~payload:"two";
  (* Forwarding re-materialized (flag was false after flush): its hmap list
     is unchanged (same chain), still 1 prov per packet. Mirror unaffected. *)
  let fwd_out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"two" in
  let result = Store_multi.query w.fwd ~cost:Query_cost.free ~routing:w.routing fwd_out in
  check Alcotest.int "still queryable after flush" 1 (List.length result.trees)

let test_duplicate_program_id_rejected () =
  let store = Store_multi.create ~nodes:3 in
  let delp = Dpc_apps.Forwarding.delp () in
  ignore (Store_multi.add_program store ~id:"p" ~delp ~env:Dpc_engine.Env.empty);
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Store_multi.add_program: duplicate program id \"p\"") (fun () ->
      ignore (Store_multi.add_program store ~id:"p" ~delp ~env:Dpc_engine.Env.empty))

let test_trees_match_single_program_advanced () =
  (* The multi store's reconstruction for forwarding equals the plain
     Advanced scheme's. *)
  let sim, w = make_world () in
  send_both sim w ~payload:"data";
  let topo = topology () in
  let routing = Dpc_net.Routing.compute topo in
  let sim2 = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_engine.Env.empty ~nodes:3 in
  let rt = Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim2) ~delp ~env:Dpc_engine.Env.empty
             ~hook:(Backend.hook backend) () in
  Dpc_engine.Runtime.load_slow rt routes;
  Dpc_engine.Runtime.inject rt (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"data");
  Dpc_engine.Runtime.run rt;
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"data" in
  let multi_trees = (Store_multi.query w.fwd ~cost:Query_cost.free ~routing:w.routing out).trees in
  let single_trees = (Backend.query backend ~cost:Query_cost.free ~routing out).trees in
  check (Alcotest.list (Alcotest.testable Prov_tree.pp Prov_tree.equal)) "same trees"
    single_trees multi_trees

let () =
  Alcotest.run "dpc_multi"
    [
      ( "cross-program compression",
        [
          Alcotest.test_case "signature is name-insensitive" `Quick
            test_rule_signature_name_insensitive;
          Alcotest.test_case "signature is alpha-insensitive" `Quick
            test_rule_signature_alpha_insensitive;
          Alcotest.test_case "shared rows deduplicate" `Quick test_shared_rows_deduplicate;
          Alcotest.test_case "queries isolated and correct" `Quick
            test_queries_isolated_and_correct;
          Alcotest.test_case "sharing beats separate stores" `Quick
            test_sharing_beats_separate_stores;
          Alcotest.test_case "flush is per program" `Quick test_flush_is_per_program;
          Alcotest.test_case "duplicate id rejected" `Quick test_duplicate_program_id_rejected;
          Alcotest.test_case "trees match single-program Advanced" `Quick
            test_trees_match_single_program_advanced;
        ] );
    ]
