(** Relational provenance rows shared by the three maintenance schemes, with
    serialized-size accounting (the paper's storage metric serializes the
    per-node [prov] and [ruleExec] tables and measures the bytes). *)

type prov_row = {
  loc : int;  (** node storing the row (and the tuple's location) *)
  vid : Dpc_util.Sha1.t;  (** hash of the tuple *)
  rid : (int * Dpc_util.Sha1.t) option;
      (** (RLoc, RID) of the deriving rule execution; [None] marks a base
          tuple (ExSPAN) *)
  evid : Dpc_util.Sha1.t option;  (** input-event hash (Advanced only) *)
}

type rule_exec_row = {
  rloc : int;
  rid : Dpc_util.Sha1.t;
  rule : string;
  vids : Dpc_util.Sha1.t list;  (** body tuple hashes (scheme-dependent subset) *)
  next : (int * Dpc_util.Sha1.t) option;
      (** (NLoc, NRID) back-pointer (Basic/Advanced); [None] at the leaf *)
}

type link_row = {
  link_rloc : int;
  link_rid : Dpc_util.Sha1.t;
  link_next : (int * Dpc_util.Sha1.t) option;
}
(** A [ruleExecLink] row of the inter-equivalence-class layout (§5.4). *)

val prov_row_bytes : with_evid:bool -> prov_row -> int
val rule_exec_row_bytes : with_next:bool -> rule_exec_row -> int
val link_row_bytes : link_row -> int

val vid_of : Dpc_ndlog.Tuple.t -> Dpc_util.Sha1.t
(** [sha1 (canonical tuple)]. *)

val hex : Dpc_util.Sha1.t -> string

val key : Dpc_util.Sha1.t -> string
(** Store-table key for a digest: the raw 20 bytes (no allocation), as
    opposed to [hex], which renders 40 characters for display. *)

val ref_bytes : int
(** Wire size of a (node, digest) provenance reference. *)

(** Multi-map from a string key to rows, deduplicating identical rows and
    keeping a running serialized-size counter. *)
module Table : sig
  type 'a t

  val create : row_bytes:('a -> int) -> unit -> 'a t

  val add : 'a t -> key:string -> 'a -> bool
  (** [true] if the row was new under this key (structural comparison). *)

  val find : 'a t -> string -> 'a list
  (** Rows for a key, oldest first; empty list for unknown keys. *)

  val rows : 'a t -> int
  val bytes : 'a t -> int
  val clear : 'a t -> unit
  val iter : 'a t -> (string -> 'a -> unit) -> unit
end

type storage = {
  prov_bytes : int;
  rule_exec_bytes : int;  (** including §5.4 node and link tables when used *)
  equi_bytes : int;  (** htequi + hmap (Advanced) *)
  event_bytes : int;  (** input events materialized for querying *)
  prov_rows : int;
  rule_exec_rows : int;
}

val empty_storage : storage
val add_storage : storage -> storage -> storage

val provenance_bytes : storage -> int
(** [prov_bytes + rule_exec_bytes]: the metric the paper reports. *)

val show_digest : Dpc_util.Sha1.t -> string
(** Abbreviated hex for table dumps. *)

val show_ref : (int * Dpc_util.Sha1.t) option -> string
(** ["n3/1a2b3c4d"] or ["NULL"]. *)

val dump_prov :
  with_evid:bool -> (int -> prov_row list) -> int -> string list * string list list
(** Header and sorted rows of the prov tables of nodes [0..n-1]. *)

val dump_rule_exec :
  with_next:bool -> (int -> rule_exec_row list) -> int -> string list * string list list

val write_prov_row : Dpc_util.Serialize.writer -> prov_row -> unit
val read_prov_row : Dpc_util.Serialize.reader -> prov_row
val write_rule_exec_row : Dpc_util.Serialize.writer -> rule_exec_row -> unit
val read_rule_exec_row : Dpc_util.Serialize.reader -> rule_exec_row
val write_link_row : Dpc_util.Serialize.writer -> link_row -> unit
val read_link_row : Dpc_util.Serialize.reader -> link_row
