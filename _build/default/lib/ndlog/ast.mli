(** Abstract syntax of NDlog rules.

    A rule has the shape [head :- event, condition, ...] where the first
    body atom is the event relation designated by the programmer (the
    convention used by every program in the paper) and the remaining
    conditions are slow-changing relational atoms, comparison atoms, or
    assignments. *)

type term = Var of string | Const of Value.t

type atom = { rel : string; args : term list }
(** First argument carries the location specifier ("@" in concrete syntax). *)

type binop = Add | Sub | Mul | Div | Mod

type expr =
  | E_var of string
  | E_const of Value.t
  | E_binop of binop * expr * expr
  | E_call of string * expr list
      (** User-defined function, e.g. [f_isSubDomain(DM, URL)]. *)

type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type cond =
  | C_atom of atom  (** join with a slow-changing relation *)
  | C_cmp of cmp * expr * expr  (** arithmetic atom, e.g. [D == L] *)
  | C_assign of string * expr  (** [N := L + 2] *)

type rule = { name : string; head : atom; event : atom; conds : cond list }

type program = { prog_name : string; rules : rule list }

val atom_vars : atom -> string list
(** Variables in order of first occurrence, without duplicates. *)

val expr_vars : expr -> string list
val cond_vars : cond -> string list
val rule_body_atoms : rule -> atom list
(** Event atom followed by the slow-changing condition atoms. *)

val var_positions : atom -> (string * int) list
(** [(v, i)] for each position [i] holding variable [v] (duplicates kept). *)

val equal_term : term -> term -> bool

val map_rule_vars : (string -> string) -> rule -> rule
(** Apply a renaming to every variable occurrence in the rule (head, event,
    and all conditions). *)

val rule_vars_in_order : rule -> string list
(** All variables of a rule in order of first occurrence (head, then event,
    then conditions left to right), deduplicated — the ordering used for
    alpha-normalization. *)
