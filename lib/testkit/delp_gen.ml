open Dpc_ndlog

type instance = {
  delp : Delp.t;
  nodes : int;
  slow_tuples : Tuple.t list;
  events : Tuple.t list;
  description : string;
}

(* Small domains keep join hit rates high and duplicate events likely. *)
let node_count = 4
let int_domain = 3

(* A generated slow atom: its AST plus which positions are address-typed
   (position 0 always; the last position when the atom relocates the
   head). *)
type slow_spec = { atom : Ast.atom; addr_positions : int list }

let fresh =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Printf.sprintf "%s%d" prefix !counter

let gen_rule ~rng ~index ~event_rel ~event_arity =
  let loc_var = fresh "L" in
  let event_vars = loc_var :: List.init (event_arity - 1) (fun _ -> fresh "V") in
  let event =
    { Ast.rel = event_rel; args = List.map (fun v -> Ast.Var v) event_vars }
  in
  let int_event_vars = List.tl event_vars in
  let pick_int_var () =
    List.nth int_event_vars (Dpc_util.Rng.int rng (List.length int_event_vars))
  in
  (* Slow-changing condition atoms; the first may relocate the head. *)
  let n_slow = Dpc_util.Rng.int rng 3 in
  let mover = n_slow > 0 && Dpc_util.Rng.float rng 1.0 < 0.7 in
  let slow_specs =
    List.init n_slow (fun j ->
      let relocates = mover && j = 0 in
      let rel = fresh (Printf.sprintf "s%d_" index) in
      let middle_arity = Dpc_util.Rng.int rng 2 in
      let middle =
        List.init middle_arity (fun _ ->
          if Dpc_util.Rng.float rng 1.0 < 0.7 && int_event_vars <> [] then
            Ast.Var (pick_int_var ())
          else Ast.Var (fresh "W"))
      in
      let tail = if relocates then [ Ast.Var (fresh "N") ] else [ Ast.Var (fresh "W") ] in
      let args = Ast.Var loc_var :: (middle @ tail) in
      let addr_positions = if relocates then [ 0; List.length args - 1 ] else [ 0 ] in
      { atom = { Ast.rel; args }; addr_positions })
  in
  let cmp_conds =
    if int_event_vars <> [] && Dpc_util.Rng.float rng 1.0 < 0.4 then
      (* Always true on the non-negative domain; exercises comparison
         handling and marks the variable's attribute as a key. *)
      [ Ast.C_cmp (Ast.Geq, Ast.E_var (pick_int_var ()), Ast.E_const (Value.Int 0)) ]
    else []
  in
  let assign_conds, assigned =
    if int_event_vars <> [] && Dpc_util.Rng.float rng 1.0 < 0.4 then begin
      let a = fresh "A" in
      ( [ Ast.C_assign
            (a, Ast.E_binop (Ast.Add, Ast.E_var (pick_int_var ()),
                             Ast.E_const (Value.Int (Dpc_util.Rng.int rng int_domain)))) ],
        [ a ] )
    end
    else ([], [])
  in
  (* Head: located at the mover's address variable, or locally. *)
  let head_loc =
    if mover then
      match List.hd slow_specs with
      | { atom = { Ast.args; _ }; _ } -> begin
          match List.nth args (List.length args - 1) with
          | Ast.Var n -> n
          | Ast.Const _ -> assert false
        end
    else loc_var
  in
  let slow_int_vars =
    List.concat_map
      (fun spec ->
        List.filteri (fun i _ -> not (List.mem i spec.addr_positions)) spec.atom.args
        |> List.filter_map (function Ast.Var v -> Some v | Ast.Const _ -> None))
      slow_specs
  in
  let head_pool = int_event_vars @ slow_int_vars @ assigned in
  let head_arity = 1 + 1 + Dpc_util.Rng.int rng 3 in
  let head_args =
    Ast.Var head_loc
    :: List.init (head_arity - 1) (fun _ ->
         if head_pool = [] || Dpc_util.Rng.float rng 1.0 < 0.15 then
           Ast.Const (Value.Int (Dpc_util.Rng.int rng int_domain))
         else Ast.Var (List.nth head_pool (Dpc_util.Rng.int rng (List.length head_pool))))
  in
  let head = { Ast.rel = Printf.sprintf "h%d" index; args = head_args } in
  let conds =
    List.map (fun spec -> Ast.C_atom spec.atom) slow_specs @ cmp_conds @ assign_conds
  in
  ({ Ast.name = Printf.sprintf "r%d" index; head; event; conds }, slow_specs)

let gen_slow_tuples ~rng specs =
  List.concat
    (List.mapi
       (fun j spec ->
      let arity = List.length spec.atom.args in
      List.concat_map
        (fun node ->
          (* Only the first slow atom may carry two tuples per node
             (branching derivations); the rest carry one, bounding the
             per-event fan-out well below the query caps. *)
          let count = if j = 0 then 1 + Dpc_util.Rng.int rng 2 else 1 in
          List.init count (fun _ ->
            let args =
              List.init arity (fun i ->
                if i = 0 then Value.Addr node
                else if List.mem i spec.addr_positions then
                  Value.Addr (Dpc_util.Rng.int rng node_count)
                else Value.Int (Dpc_util.Rng.int rng int_domain))
            in
            Tuple.make spec.atom.rel args))
        (List.init node_count (fun i -> i)))
       specs)

let gen_events ~rng ~event_rel ~event_arity =
  let count = 6 + Dpc_util.Rng.int rng 5 in
  List.init count (fun _ ->
    let args =
      List.init event_arity (fun i ->
        if i = 0 then Value.Addr (Dpc_util.Rng.int rng node_count)
        else Value.Int (Dpc_util.Rng.int rng int_domain))
    in
    Tuple.make event_rel args)

let generate ~rng =
  let n_rules = 1 + Dpc_util.Rng.int rng 3 in
  let event_arity = 2 + Dpc_util.Rng.int rng 3 in
  let rec build index event_rel event_arity acc_rules acc_specs =
    if index > n_rules then (List.rev acc_rules, List.concat (List.rev acc_specs))
    else begin
      let rule, specs = gen_rule ~rng ~index ~event_rel ~event_arity in
      build (index + 1) rule.head.rel (List.length rule.head.args) (rule :: acc_rules)
        (specs :: acc_specs)
    end
  in
  let rules, specs = build 1 "ev" event_arity [] [] in
  let program = { Ast.prog_name = "generated"; rules } in
  let delp =
    match Delp.validate program with
    | Ok d -> d
    | Error e ->
        failwith
          (Printf.sprintf "Delp_gen.generate produced an invalid program (%s):\n%s"
             (Delp.error_to_string e)
             (Pretty.program_to_string program))
  in
  {
    delp;
    nodes = node_count;
    slow_tuples = gen_slow_tuples ~rng specs;
    events = gen_events ~rng ~event_rel:"ev" ~event_arity;
    description = Pretty.program_to_string program;
  }

type world = {
  runtime : Dpc_engine.Runtime.t;
  backend : Dpc_core.Backend.t;
  routing : Dpc_net.Routing.t;
}

let build_world ?transport ?reliable instance scheme =
  let topo = Dpc_net.Topology.create ~n:instance.nodes in
  let link = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e8 } in
  for a = 0 to instance.nodes - 1 do
    for b = a + 1 to instance.nodes - 1 do
      Dpc_net.Topology.add_link topo a b link
    done
  done;
  let routing = Dpc_net.Routing.compute topo in
  let transport =
    match transport with
    | Some tr ->
        if Dpc_net.Transport.nodes tr <> instance.nodes then
          invalid_arg
            (Printf.sprintf "Delp_gen.build_world: %d-node transport for a %d-node instance"
               (Dpc_net.Transport.nodes tr) instance.nodes);
        tr
    | None -> Dpc_net.Transport.of_sim (Dpc_net.Sim.create ~topology:topo ~routing ())
  in
  let backend =
    Dpc_core.Backend.make scheme ~delp:instance.delp ~env:Dpc_engine.Env.empty
      ~nodes:instance.nodes
  in
  let runtime =
    Dpc_engine.Runtime.create ~transport ?reliable ~delp:instance.delp
      ~env:Dpc_engine.Env.empty ~hook:(Dpc_core.Backend.hook backend)
      ~nodes:(Dpc_core.Backend.nodes backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime instance.slow_tuples;
  { runtime; backend; routing }

let run_events ?(spacing = 0.0) world events =
  List.iteri
    (fun i ev -> Dpc_engine.Runtime.inject world.runtime ~delay:(float_of_int i *. spacing) ev)
    events;
  Dpc_engine.Runtime.run world.runtime

let mutate_non_keys ~rng ~keys event =
  let key_positions = Dpc_analysis.Equi_keys.keys keys in
  let args =
    Array.to_list
      (Array.mapi
         (fun i v ->
           if List.mem i key_positions then v
           else
             match v with
             | Value.Int _ -> Value.Int (int_domain + Dpc_util.Rng.int rng int_domain)
             | Value.Str _ | Value.Bool _ | Value.Addr _ -> v)
         (Tuple.args event))
  in
  Tuple.make (Tuple.rel event) args

let rec tree_shape (tree : Dpc_core.Prov_tree.t) =
  let slow = String.concat "," (List.map Tuple.canonical tree.slow) in
  let rest =
    match tree.trigger with
    | Dpc_core.Prov_tree.Event _ -> "<event>"
    | Dpc_core.Prov_tree.Derived sub -> tree_shape sub
  in
  Printf.sprintf "%s[%s];%s" tree.rule slow rest
