(** A DHCP-style address-assignment application. The paper names DHCP as a
    protocol DELP can model (§3.1); this two-rule version exercises
    compression with a single-attribute equivalence key (the requesting
    host): repeated discovers from one host form one equivalence class. *)

val source : string
val delp : unit -> Dpc_ndlog.Delp.t
val env : Dpc_engine.Env.t

val discover : host:int -> rqid:int -> Dpc_ndlog.Tuple.t
(** The input event [discover(@host, rqid)]. *)

val dhcp_relay : host:int -> server:int -> Dpc_ndlog.Tuple.t
val address_pool : server:int -> host:int -> ip:string -> Dpc_ndlog.Tuple.t
val offer : host:int -> ip:string -> rqid:int -> Dpc_ndlog.Tuple.t
