lib/util/heap.mli:
