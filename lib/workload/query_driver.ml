open Dpc_core

type t = {
  backend : Backend.t;
  routing : Dpc_net.Routing.t;
  targets : Dpc_ndlog.Tuple.t array;
  zipf : Dpc_util.Zipf.t;
  rng : Dpc_util.Rng.t;
  cost : Query_cost.t;
}

let create ~backend ~routing ~targets ?(exponent = 1.0) ?(seed = 0) ?(cost = Query_cost.emulation)
    () =
  if Array.length targets = 0 then invalid_arg "Query_driver.create: no targets";
  {
    backend;
    routing;
    targets;
    zipf = Dpc_util.Zipf.create ~exponent (Array.length targets);
    rng = Dpc_util.Rng.create ~seed;
    cost;
  }

type outcome = {
  issued : int;
  complete : int;
  partial : int;
  empty : int;
  latencies : float list;
}

let fire t ?up () =
  let rank = Dpc_util.Zipf.sample t.zipf t.rng in
  Backend.query t.backend ~cost:t.cost ~routing:t.routing ?up t.targets.(rank)

(* Shared accumulator: storms record results in issue order. *)
type tally = {
  mutable n : int;
  mutable ok : int;
  mutable degraded : int;
  mutable none : int;
  mutable lat_rev : float list;
}

let fresh_tally () = { n = 0; ok = 0; degraded = 0; none = 0; lat_rev = [] }

let record tally (r : Query_result.t) =
  tally.n <- tally.n + 1;
  if r.complete then tally.ok <- tally.ok + 1 else tally.degraded <- tally.degraded + 1;
  if r.trees = [] then tally.none <- tally.none + 1;
  tally.lat_rev <- r.latency :: tally.lat_rev

let outcome_of tally =
  {
    issued = tally.n;
    complete = tally.ok;
    partial = tally.degraded;
    empty = tally.none;
    latencies = List.rev tally.lat_rev;
  }

let storm t ?up ~count () =
  let tally = fresh_tally () in
  for _ = 1 to count do
    record tally (fire t ?up ())
  done;
  outcome_of tally

let schedule_storm t ~transport ?up ~start ~rate ~count () =
  if rate <= 0.0 then invalid_arg "Query_driver.schedule_storm: rate must be positive";
  if count < 0 then invalid_arg "Query_driver.schedule_storm: negative count";
  let tally = fresh_tally () in
  (* Fixed arrival times relative to now: open-loop, the schedule never
     waits for completions. Ranks are drawn at fire time from the
     driver's RNG; the transport fires equal-delay events in a
     deterministic order, so the sequence is still seed-reproducible. *)
  for i = 0 to count - 1 do
    let delay = start +. (float_of_int i /. rate) in
    Dpc_net.Transport.schedule transport ~delay (fun () -> record tally (fire t ?up ()))
  done;
  fun () -> outcome_of tally

type percentiles = { p50 : float; p90 : float; p99 : float; mean : float }

let percentiles_ms outcome =
  if outcome.latencies = [] then invalid_arg "Query_driver.percentiles_ms: no latencies";
  let ms = List.map (fun s -> s *. 1000.0) outcome.latencies in
  {
    p50 = Dpc_util.Stats.percentile ms 50.0;
    p90 = Dpc_util.Stats.percentile ms 90.0;
    p99 = Dpc_util.Stats.percentile ms 99.0;
    mean = Dpc_util.Stats.mean ms;
  }
