.PHONY: all build test bench chaos crash ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

chaos:
	DPC_CHAOS_FULL=1 dune exec test/test_chaos.exe

# Crash/recovery suites only: the crash oracle sweep (quick by default,
# full width with DPC_CHAOS_FULL=1 in the environment) plus the
# durable-recovery and degraded-query groups.
crash:
	dune exec test/test_chaos.exe -- test 'crash oracle'
	dune exec test/test_persistence.exe -- test 'mid-run checkpoint'
	dune exec test/test_robustness.exe -- test 'degraded queries'

ci:
	sh scripts/ci.sh

clean:
	dune clean
