(** Pretty-printer producing parseable NDlog concrete syntax (tested by
    round-tripping through {!Parser}). *)

val term : Format.formatter -> Ast.term -> unit
val atom : Format.formatter -> Ast.atom -> unit
val expr : Format.formatter -> Ast.expr -> unit
val cond : Format.formatter -> Ast.cond -> unit
val rule : Format.formatter -> Ast.rule -> unit
val program : Format.formatter -> Ast.program -> unit

val rule_to_string : Ast.rule -> string
val program_to_string : Ast.program -> string
