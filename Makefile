.PHONY: all build test bench chaos ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

chaos:
	DPC_CHAOS_FULL=1 dune exec test/test_chaos.exe

ci:
	sh scripts/ci.sh

clean:
	dune clean
