lib/core/rows.mli: Dpc_ndlog Dpc_util
