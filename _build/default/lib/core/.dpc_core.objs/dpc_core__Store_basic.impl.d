lib/core/store_basic.ml: Array Ast Delp Dpc_engine Dpc_ndlog Dpc_net Dpc_util List Printf Prov_tree Query_cost Query_result Rows Sha1 Side_store String Tuple
