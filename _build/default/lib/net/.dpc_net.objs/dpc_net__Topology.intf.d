lib/net/topology.mli:
