lib/core/prov_dot.ml: Buffer Dpc_ndlog Dpc_util Hashtbl List Printf Prov_tree Rows String Tuple
