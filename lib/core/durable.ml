module S = Dpc_util.Serialize
module Metrics = Dpc_util.Metrics
module Rng = Dpc_util.Rng
module Clock = Dpc_util.Clock
module Node = Dpc_engine.Node
module Db = Dpc_engine.Db
module Runtime = Dpc_engine.Runtime
module Journal = Dpc_engine.Journal
module Transport = Dpc_net.Transport
module Reliable = Dpc_net.Reliable

type config = { checkpoint_every : int; rebase_every : int }

let default_config = { checkpoint_every = 64; rebase_every = 8 }

(* What a node needs to come back: the store tables, the slow-table
   database, and its reliable-channel sequence state, all as of the same
   boundary. A delta cut carries the store and db CHANGES since the
   previous cut; only the channel snapshot (O(channels) sequence
   numbers, not O(state)) is always full. *)
type checkpoint = { store : string; db : string; channels : string option }

type node_log = {
  mutable checkpoint : checkpoint option;  (* last full (base) cut *)
  mutable deltas : checkpoint list;  (* delta cuts since the base, newest first *)
  mutable wal : string list;  (* serialized entry groups, newest first *)
  mutable wal_entries : int;
  mutable boundaries : int;  (* boundary entries currently in the wal *)
  (* Group commit: entries of the current top-level operation accumulate
     here and land in [wal] as ONE blob when the next boundary (or a
     crash/checkpoint) closes the group — one buffered append and one
     metrics tick per operation instead of per entry. *)
  pending : S.writer;
  mutable pending_entries : int;
  mutable pending_bytes : int;
  (* Durable counters: they live here, not in the node registry, so a
     crash cannot erase them; [rematerialize] copies them back into the
     wiped registry so metric snapshots stay complete. *)
  mutable crashes : int;
  mutable wal_bytes : int;  (* cumulative bytes ever appended (incl. pending) *)
  mutable checkpoints : int;
  mutable checkpoint_bytes : int;  (* cumulative serialized cut bytes *)
  mutable delta_cuts : int;  (* how many of [checkpoints] were deltas *)
  mutable delta_bytes : int;  (* their share of [checkpoint_bytes] *)
  (* Recovery time accumulates as a float and is rounded ONCE at each
     read: summing per-recovery ceilings would overstate a node that
     recovers many times by up to a millisecond each. [recovery_ms_ticked]
     is what the metrics registry has already been told, so ticks carry
     only the rounded delta. *)
  mutable recovery_s : float;
  mutable recovery_ms_ticked : int;
  mutable queries_degraded : int;
}

type node_stats = {
  crashes : int;
  wal_bytes : int;
  wal_entries : int;
  checkpoints : int;
  checkpoint_bytes : int;
  delta_cuts : int;
  delta_bytes : int;
  recovery_ms : int;
  queries_degraded : int;
}

type t = {
  backend : Backend.t;
  runtime : Runtime.t;
  control : Transport.crash_control;
  config : config;
  logs : node_log array;
  recovering : bool array;
      (* Recovery replays the journal through the same code paths that
         produced it; this per-node flag keeps those paths from appending
         the entries a second time. Per-node rather than global: on a
         sharded transport one node's recovery must not suppress the
         journaling of live nodes on other shards. *)
}

let fresh_log () =
  {
    checkpoint = None;
    deltas = [];
    wal = [];
    wal_entries = 0;
    boundaries = 0;
    pending = S.writer ();
    pending_entries = 0;
    pending_bytes = 0;
    crashes = 0;
    wal_bytes = 0;
    checkpoints = 0;
    checkpoint_bytes = 0;
    delta_cuts = 0;
    delta_bytes = 0;
    recovery_s = 0.0;
    recovery_ms_ticked = 0;
    queries_degraded = 0;
  }

let metrics t node = Node.metrics (Runtime.node t.runtime node)

let recovery_ms_of log = int_of_float (ceil (log.recovery_s *. 1000.))

(* Close the open entry group: one wal append, one metrics tick. *)
let flush_group t node =
  let log = t.logs.(node) in
  if log.pending_entries > 0 then begin
    log.wal <- S.contents log.pending :: log.wal;
    S.reset log.pending;
    log.pending_entries <- 0;
    Metrics.incr (metrics t node) ~by:log.pending_bytes "crash.wal_bytes";
    log.pending_bytes <- 0
  end

let cut_bytes c =
  String.length c.store + String.length c.db
  + match c.channels with Some s -> String.length s | None -> 0

(* A cut is a DELTA while a base exists and fewer than [rebase_every - 1]
   deltas follow it; the next cut after that rebases to a fresh full
   checkpoint, bounding recovery to one base + (rebase_every - 1) deltas
   + the wal. [rebase_every <= 1] means every cut is full. *)
let take_checkpoint t node =
  flush_group t node;
  let log = t.logs.(node) in
  let channels =
    match Runtime.reliability t.runtime with
    | None -> None
    | Some r -> Some (Reliable.snapshot r ~node)
  in
  let as_delta =
    log.checkpoint <> None
    && t.config.rebase_every > 1
    && List.length log.deltas < t.config.rebase_every - 1
  in
  let db =
    let d = Runtime.db t.runtime node in
    if as_delta then Db.snapshot_delta d else Db.snapshot d
  in
  let cut =
    if as_delta then begin
      let c = { store = Backend.checkpoint_delta t.backend node; db; channels } in
      log.deltas <- c :: log.deltas;
      c
    end
    else begin
      let c = { store = Backend.checkpoint_node t.backend node; db; channels } in
      log.checkpoint <- Some c;
      log.deltas <- [];
      c
    end
  in
  log.wal <- [];
  log.wal_entries <- 0;
  log.boundaries <- 0;
  log.checkpoints <- log.checkpoints + 1;
  let bytes = cut_bytes cut in
  log.checkpoint_bytes <- log.checkpoint_bytes + bytes;
  if as_delta then begin
    log.delta_cuts <- log.delta_cuts + 1;
    log.delta_bytes <- log.delta_bytes + bytes
  end;
  let m = metrics t node in
  Metrics.incr m "crash.checkpoints";
  Metrics.incr m ~by:bytes "crash.checkpoint_bytes"

(* WAL-then-apply: called before the entry's effects. A boundary entry
   marks the start of a fresh top-level operation — everything before it
   has fully applied — so the open group is flushed and compaction cuts
   the checkpoint just BEFORE buffering it: the checkpoint covers the old
   wal, the new wal starts with this entry's group. *)
let append t node entry =
  if not t.recovering.(node) then begin
    let log = t.logs.(node) in
    if Journal.is_boundary entry then begin
      flush_group t node;
      if t.config.checkpoint_every > 0 && log.boundaries >= t.config.checkpoint_every
      then take_checkpoint t node;
      log.boundaries <- log.boundaries + 1
    end;
    let before = S.size log.pending in
    Journal.write log.pending entry;
    let len = S.size log.pending - before in
    log.pending_entries <- log.pending_entries + 1;
    log.pending_bytes <- log.pending_bytes + len;
    log.wal_entries <- log.wal_entries + 1;
    log.wal_bytes <- log.wal_bytes + len
  end

let on_channel_event t (ev : Reliable.channel_event) =
  match ev with
  | Reliable.Next_seq { src; dst; seq } -> append t src (Journal.Next_seq { peer = dst; seq })
  | Reliable.Expected { src; dst; seq } -> append t dst (Journal.Expected { peer = src; seq })

let attach ~backend ~runtime ~control ?(config = default_config) () =
  if config.checkpoint_every < 0 then
    invalid_arg "Durable.attach: checkpoint_every must be non-negative";
  if config.rebase_every < 0 then
    invalid_arg "Durable.attach: rebase_every must be non-negative";
  let n = Array.length (Runtime.nodes runtime) in
  let t =
    {
      backend;
      runtime;
      control;
      config;
      logs = Array.init n (fun _ -> fresh_log ());
      recovering = Array.make n false;
    }
  in
  Runtime.set_journal runtime (fun ~node entry -> append t node entry);
  (* Degraded queries count into the durable log like every other
     [crash.*] statistic: the registry tick alone would vanish if the
     QUERIER itself crashed later. [rematerialize] copies it back. *)
  Backend.set_degraded_sink backend (fun querier ->
    let log = t.logs.(querier) in
    log.queries_degraded <- log.queries_degraded + 1;
    Metrics.incr (metrics t querier) "crash.queries_degraded");
  (match Runtime.reliability runtime with
  | None -> ()
  | Some r -> Reliable.set_persist r (fun ev -> on_channel_event t ev));
  Runtime.set_availability runtime control.Transport.is_up;
  (* Dirty tracking must be live BEFORE the first cut so every write
     after checkpoint 0 lands in some delta — both the provenance stores
     and each node's relational db. *)
  if config.rebase_every > 1 then begin
    Backend.set_dirty_tracking backend true;
    Array.iteri
      (fun node _ -> Db.set_dirty_tracking (Runtime.db runtime node) true)
      (Runtime.nodes runtime)
  end;
  (* Seal the pre-attach state (slow tables loaded at build time, empty
     stores) into checkpoint 0, so recovery never depends on journal
     entries from before the journal existed. *)
  Array.iteri (fun node _ -> take_checkpoint t node) (Runtime.nodes runtime);
  t

let is_up t node = t.control.Transport.is_up node

let rematerialize t node =
  let m = metrics t node in
  let log = t.logs.(node) in
  if log.crashes > 0 then Metrics.incr m ~by:log.crashes "crash.crashes";
  (* Bytes still sitting in the open group have not been ticked yet; the
     registry stays behind by exactly that much until the next flush. *)
  let ticked_wal = log.wal_bytes - log.pending_bytes in
  if ticked_wal > 0 then Metrics.incr m ~by:ticked_wal "crash.wal_bytes";
  if log.checkpoints > 0 then Metrics.incr m ~by:log.checkpoints "crash.checkpoints";
  if log.checkpoint_bytes > 0 then Metrics.incr m ~by:log.checkpoint_bytes "crash.checkpoint_bytes";
  if log.recovery_ms_ticked > 0 then Metrics.incr m ~by:log.recovery_ms_ticked "crash.recovery_ms";
  if log.queries_degraded > 0 then
    Metrics.incr m ~by:log.queries_degraded "crash.queries_degraded"

let crash t node =
  if is_up t node then begin
    (* The open group reaches the wal before the node state dies — the
       simulated WAL is durable, the group buffer is just batching. *)
    flush_group t node;
    t.control.Transport.crash node;
    Node.reset (Runtime.node t.runtime node);
    (match Runtime.reliability t.runtime with
    | None -> ()
    | Some r -> Reliable.forget r ~node);
    let log = t.logs.(node) in
    log.crashes <- log.crashes + 1;
    rematerialize t node
  end

let restart t node =
  if not (is_up t node) then begin
    (* Wall clock, NOT [Sys.time]: recovery replays on whatever domain
       runs the shard, and CPU time summed across domains both inflates
       multi-domain recoveries and misses time spent blocked. *)
    let t0 = Clock.now () in
    let log = t.logs.(node) in
    t.recovering.(node) <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering.(node) <- false)
      (fun () ->
        (match log.checkpoint with
        | None -> ()
        | Some base ->
            Backend.restore_node t.backend node base.store;
            (* Store and db: base plus deltas, oldest first. Channels:
               every cut carries a full snapshot, so only the newest
               matters. *)
            let db = Runtime.db t.runtime node in
            Db.load db base.db;
            List.iter
              (fun (d : checkpoint) ->
                Backend.apply_delta t.backend node d.store;
                Db.apply_delta db d.db)
              (List.rev log.deltas);
            let newest = match log.deltas with d :: _ -> d | [] -> base in
            (match (newest.channels, Runtime.reliability t.runtime) with
            | Some blob, Some r -> Reliable.restore r ~node blob
            | _ -> ()));
        (* The wal is NOT truncated: a second crash before the next
           compaction replays the same checkpoint plus the same entries
           (and whatever lands after this recovery). Each wal blob is one
           flushed group; decode entries until the group is exhausted. *)
        let entries =
          List.concat_map
            (fun blob ->
              let r = S.reader blob in
              let acc = ref [] in
              while not (S.at_end r) do
                acc := Journal.read r :: !acc
              done;
              List.rev !acc)
            (List.rev log.wal)
        in
        Runtime.replay t.runtime ~node entries);
    log.recovery_s <- log.recovery_s +. (Clock.now () -. t0);
    let total = recovery_ms_of log in
    if total > log.recovery_ms_ticked then begin
      Metrics.incr (metrics t node) ~by:(total - log.recovery_ms_ticked) "crash.recovery_ms";
      log.recovery_ms_ticked <- total
    end;
    (* Reconnect the wire last: no delivery can race the rebuild. *)
    t.control.Transport.restart node
  end

let checkpoint_now t node =
  if not (is_up t node) then invalid_arg "Durable.checkpoint_now: node is down";
  take_checkpoint t node

let node_stats t node =
  let log = t.logs.(node) in
  {
    crashes = log.crashes;
    wal_bytes = log.wal_bytes;
    wal_entries = log.wal_entries;
    checkpoints = log.checkpoints;
    checkpoint_bytes = log.checkpoint_bytes;
    delta_cuts = log.delta_cuts;
    delta_bytes = log.delta_bytes;
    recovery_ms = recovery_ms_of log;
    queries_degraded = log.queries_degraded;
  }

let schedule_crash t ~node ~at ~downtime =
  if downtime <= 0.0 then invalid_arg "Durable.schedule_crash: downtime must be positive";
  let tr = Runtime.transport t.runtime in
  let delay_to at = Float.max 0.0 (at -. Transport.now tr) in
  (* On the node's own shard: crash wipes and restart rebuilds state that
     shard owns (tables, registry, channel endpoints). *)
  Transport.schedule_on tr ~node ~delay:(delay_to at) (fun () -> crash t node);
  Transport.schedule_on tr ~node ~delay:(delay_to (at +. downtime)) (fun () -> restart t node)

(* Reject any candidate that overlaps a kept outage of the same node —
   INCLUDING a crash at exactly the previous restart instant ([<=], not
   [<]): the crash and the restart would be scheduled for the same
   simulated time, and which fires first is an event-queue tie, not part
   of the schedule's contract. Kept outages are sorted by crash time and
   stable for a given input. *)
let prune_overlaps ~nodes schedule =
  if nodes <= 0 then invalid_arg "Durable.prune_overlaps: need at least one node";
  let by_time = List.sort (fun (_, a, _) (_, b, _) -> compare a b) schedule in
  let busy_until = Array.make nodes Float.neg_infinity in
  List.filter
    (fun (node, at, downtime) ->
      if node < 0 || node >= nodes then
        invalid_arg "Durable.prune_overlaps: node out of range";
      if at <= busy_until.(node) then false
      else begin
        busy_until.(node) <- at +. downtime;
        true
      end)
    by_time

(* Seeded crash schedules: candidates drawn uniformly, then filtered so
   one node's outages never collide. *)
let random_schedule ~seed ~nodes ~count ~horizon ~min_down ~max_down =
  if nodes <= 0 then invalid_arg "Durable.random_schedule: need at least one node";
  if min_down <= 0.0 || max_down < min_down then
    invalid_arg "Durable.random_schedule: need 0 < min_down <= max_down";
  let rng = Rng.create ~seed in
  let candidates =
    List.init count (fun _ ->
        let node = Rng.int rng nodes in
        let at = Rng.float rng horizon in
        let downtime =
          if max_down = min_down then min_down else min_down +. Rng.float rng (max_down -. min_down)
        in
        (node, at, downtime))
  in
  prune_overlaps ~nodes candidates

let schedule t schedule_list =
  List.iter (fun (node, at, downtime) -> schedule_crash t ~node ~at ~downtime) schedule_list
