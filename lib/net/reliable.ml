type config = {
  timeout : float;
  backoff : float;
  max_timeout : float;
  max_retries : int;
}

let default_config = { timeout = 0.05; backoff = 2.0; max_timeout = 1.0; max_retries = 20 }

(* Sequence number (and a little framing) on every data message; an ack
   carries the channel id and the sequence it confirms. *)
let data_header_bytes = 8
let ack_bytes = 12

(* One directed (src, dst) channel. The sender's half is [next_seq]; the
   receiver's half is the dedup/reorder window: everything below
   [expected] has been delivered in order, and [pending] holds arrivals
   above the gap, waiting for it to fill. The window stays small — it
   drains as soon as the missing retransmit lands. *)
type channel = {
  mutable next_seq : int;
  mutable expected : int;
  pending : (int, unit -> unit) Hashtbl.t;
}

type stats = {
  data_msgs : int;
  data_bytes : int;
  retransmits : int;
  retransmit_bytes : int;
  acks : int;
  ack_bytes_total : int;
  dup_dropped : int;
  held : int;
  abandoned : int;
}

type t = {
  inner : Transport.t;
  config : config;
  metrics : (int -> Dpc_util.Metrics.t) option;
  channels : (int * int, channel) Hashtbl.t;
  mutable data_msgs : int;
  mutable data_bytes : int;
  mutable retransmits : int;
  mutable retransmit_bytes : int;
  mutable acks : int;
  mutable ack_bytes_total : int;
  mutable dup_dropped : int;
  mutable held : int;
  mutable abandoned : int;
}

let wrap ?(config = default_config) ?metrics inner =
  if config.timeout <= 0.0 then invalid_arg "Reliable.wrap: timeout must be positive";
  if config.backoff < 1.0 then invalid_arg "Reliable.wrap: backoff must be >= 1";
  if config.max_retries < 0 then invalid_arg "Reliable.wrap: negative max_retries";
  {
    inner;
    config;
    metrics;
    channels = Hashtbl.create 64;
    data_msgs = 0;
    data_bytes = 0;
    retransmits = 0;
    retransmit_bytes = 0;
    acks = 0;
    ack_bytes_total = 0;
    dup_dropped = 0;
    held = 0;
    abandoned = 0;
  }

let tick t node ?by name =
  match t.metrics with None -> () | Some f -> Dpc_util.Metrics.incr (f node) ?by name

let channel t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some ch -> ch
  | None ->
      let ch = { next_seq = 0; expected = 0; pending = Hashtbl.create 8 } in
      Hashtbl.add t.channels (src, dst) ch;
      ch

(* Deliver in sequence order: run the arrival if it is the next expected
   message, then drain whatever the gap was holding back. Out-of-order
   arrivals wait in the window; duplicates (below the watermark or already
   waiting) are dropped. Returns what happened, for accounting. *)
let accept ch seq k =
  if seq < ch.expected || Hashtbl.mem ch.pending seq then `Duplicate
  else if seq > ch.expected then begin
    Hashtbl.add ch.pending seq k;
    `Held
  end
  else begin
    k ();
    ch.expected <- ch.expected + 1;
    let rec drain () =
      match Hashtbl.find_opt ch.pending ch.expected with
      | None -> ()
      | Some k' ->
          Hashtbl.remove ch.pending ch.expected;
          k' ();
          ch.expected <- ch.expected + 1;
          drain ()
    in
    drain ();
    `Delivered
  end

let send t ~src ~dst ~bytes k =
  let ch = channel t ~src ~dst in
  let seq = ch.next_seq in
  ch.next_seq <- seq + 1;
  let wire = bytes + data_header_bytes in
  let acked = ref false in
  let attempts = ref 0 in
  (* Receiver side: dedup and reorder through the window, and ack every
     arrival — a duplicate means the sender may have missed an earlier
     ack, and a held message is safely received even if not yet
     deliverable. *)
  let deliver () =
    (match accept ch seq k with
    | `Delivered -> ()
    | `Duplicate ->
        t.dup_dropped <- t.dup_dropped + 1;
        tick t dst "net.dup_dropped"
    | `Held ->
        t.held <- t.held + 1;
        tick t dst "net.held");
    t.acks <- t.acks + 1;
    t.ack_bytes_total <- t.ack_bytes_total + ack_bytes;
    tick t dst "net.acks_sent";
    tick t dst ~by:ack_bytes "net.ack_bytes";
    Transport.send t.inner ~src:dst ~dst:src ~bytes:ack_bytes (fun () -> acked := true)
  in
  let rec transmit () =
    incr attempts;
    if !attempts = 1 then begin
      t.data_msgs <- t.data_msgs + 1;
      t.data_bytes <- t.data_bytes + wire;
      tick t src "net.data_msgs"
    end
    else begin
      t.retransmits <- t.retransmits + 1;
      t.retransmit_bytes <- t.retransmit_bytes + wire;
      tick t src "net.retransmits";
      tick t src ~by:wire "net.retransmit_bytes"
    end;
    Transport.send t.inner ~src ~dst ~bytes:wire deliver;
    (* Arm the ack timeout for this attempt. There is no cancellation: an
       acked timer just fires and finds nothing to do. *)
    let backoff =
      t.config.timeout *. (t.config.backoff ** float_of_int (!attempts - 1))
    in
    let delay = Float.min backoff t.config.max_timeout in
    Transport.schedule t.inner ~delay (fun () ->
      if not !acked then
        if !attempts > t.config.max_retries then begin
          t.abandoned <- t.abandoned + 1;
          tick t src "net.abandoned"
        end
        else transmit ())
  in
  transmit ()

let transport t : Transport.t =
  let (module T : Transport.S) = t.inner in
  (module struct
    let name = "reliable+" ^ T.name
    let nodes = T.nodes
    let now = T.now
    let schedule = T.schedule
    let send ~src ~dst ~bytes k = send t ~src ~dst ~bytes k

    let broadcast ~src ~bytes k =
      for dst = 0 to nodes - 1 do
        send ~src ~dst ~bytes (fun () -> k dst)
      done

    let run = T.run
    let total_bytes = T.total_bytes
    let messages = T.messages
  end)

let stats t : stats =
  {
    data_msgs = t.data_msgs;
    data_bytes = t.data_bytes;
    retransmits = t.retransmits;
    retransmit_bytes = t.retransmit_bytes;
    acks = t.acks;
    ack_bytes_total = t.ack_bytes_total;
    dup_dropped = t.dup_dropped;
    held = t.held;
    abandoned = t.abandoned;
  }
