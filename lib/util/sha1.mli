(** SHA-1 (RFC 3174), implemented from scratch.

    The paper identifies provenance nodes by SHA-1 hashes of tuple and
    rule-execution contents; this module provides that primitive without an
    external dependency. *)

type t
(** A 20-byte digest. *)

val digest_string : string -> t
(** [digest_string s] is the SHA-1 digest of [s]. *)

val digest_iter : ((string -> unit) -> unit) -> t
(** [digest_iter feeder] digests the concatenation of every string the
    feeder passes to its callback, without materializing the whole
    message. Equivalent to [digest_string] of the concatenation. The
    feeder must not itself start another digest (the streaming context is
    shared). *)

val digest_concat : string list -> t
(** [digest_concat parts] hashes the concatenation of [parts], inserting a
    ['+'] separator between parts (mirroring the paper's
    [sha1(r1+n1+vid1+vid2)] notation and avoiding ambiguity between
    ["ab"+"c"] and ["a"+"bc"]). *)

val to_hex : t -> string
(** Lowercase 40-character hexadecimal rendering. *)

val to_raw : t -> string
(** The 20 raw digest bytes. *)

val of_raw : string -> t
(** [of_raw s] reinterprets 20 raw bytes as a digest.
    @raise Invalid_argument if [String.length s <> 20]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val abbrev : t -> string
(** First 8 hex characters, for human-readable output. *)

val pp : Format.formatter -> t -> unit