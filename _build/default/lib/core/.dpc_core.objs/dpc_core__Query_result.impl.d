lib/core/query_result.ml: List Prov_tree
