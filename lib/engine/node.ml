type binding = ..

type 'a key = {
  uid : int;
  key_name : string;
  inj : 'a -> binding;
  proj : binding -> 'a option;
}

let next_uid = ref 0

let key (type a) ~name () : a key =
  let module M = struct
    type binding += K of a
  end in
  incr next_uid;
  {
    uid = !next_uid;
    key_name = name;
    inj = (fun v -> M.K v);
    proj = (function M.K v -> Some v | _ -> None);
  }

let key_name k = k.key_name

type t = {
  id : int;
  db : Db.t;
  metrics : Dpc_util.Metrics.t;
  props : (int, binding) Hashtbl.t;
  mutable reset_hooks : (unit -> unit) list;
}

let create ~id =
  if id < 0 then invalid_arg "Node.create: negative id";
  {
    id;
    db = Db.create ();
    metrics = Dpc_util.Metrics.create ();
    props = Hashtbl.create 8;
    reset_hooks = [];
  }

let cluster n =
  if n <= 0 then invalid_arg "Node.cluster: size must be positive";
  Array.init n (fun id -> create ~id)

let id t = t.id
let db t = t.db
let metrics t = t.metrics
let tick t ?by name = Dpc_util.Metrics.incr t.metrics ?by name

let on_reset t hook = t.reset_hooks <- hook :: t.reset_hooks

let reset t =
  Db.clear t.db;
  Dpc_util.Metrics.clear t.metrics;
  Hashtbl.reset t.props;
  (* Hooks outlive the wipe on purpose: a crash must notify the layers
     that index this node's state (e.g. the query cache) even though the
     per-node property records themselves are gone. Registration order is
     irrelevant, so the reversed list is fine. *)
  List.iter (fun hook -> hook ()) t.reset_hooks

let find t k =
  match Hashtbl.find_opt t.props k.uid with
  | None -> None
  | Some b -> (
      match k.proj b with
      | Some _ as v -> v
      | None ->
          (* uids are unique per key, so a uid collision with a foreign
             constructor can only be a bug in this module *)
          assert false)

let set t k v = Hashtbl.replace t.props k.uid (k.inj v)

let get_or_init t k ~init =
  match find t k with
  | Some v -> v
  | None ->
      let v = init () in
      set t k v;
      v
