lib/engine/eval.mli: Db Dpc_ndlog Env
