lib/core/query_cost.ml: Dpc_net
