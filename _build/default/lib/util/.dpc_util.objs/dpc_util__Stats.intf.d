lib/util/stats.mli:
