(* Sharded discrete-event transport: the node set is partitioned
   round-robin into [domains] shards, each owned by one OCaml domain with
   its own event heap, clock, and counters. Cross-shard messages move
   through mutex-guarded inboxes between barrier-separated phases of a
   conservative (YAWNS-style) time-window loop: every round processes the
   events in [T, T + latency) where T is the global minimum head time and
   [latency] is the minimum cross-shard delay, so no shard can receive a
   message "from the past".

   Determinism is structural, not statistical. Every event carries a key
   [(at, origin, ctr)] assigned by its creator: [origin] is the creating
   node (or a reserved id for the main domain / anonymous shard timers)
   and [ctr] a per-origin counter. The key is a total order, identical
   whatever the shard count, so each node processes its events in the
   same sequence under [~domains:1] and [~domains:4] — the
   parallel-vs-sequential digest oracle in the tests leans on exactly
   this. *)

type event = { at : float; origin : int; ctr : int; action : unit -> unit }

let cmp_event a b =
  match Float.compare a.at b.at with
  | 0 -> ( match compare a.origin b.origin with 0 -> compare a.ctr b.ctr | c -> c)
  | c -> c

type shard = {
  sid : int;
  heap : event Dpc_util.Heap.t;
  mutable clock : float;
  (* (destination shard, event) pairs buffered during the processing
     phase, flushed at the first barrier. Owner-only until the flush. *)
  mutable outbox : (int * event) list;
  mutable anon_ctr : int;
  mutable bytes : int;
  mutable msgs : int;
}

type inbox = { ilock : Mutex.t; mutable items : event list }

(* Reusable sense-reversing barrier; [Mutex]/[Condition] only, no
   domainslib. The lock handoff doubles as the memory fence that makes
   pre-barrier writes (heads, inbox flushes) visible after it. *)
module Barrier = struct
  type t = {
    lock : Mutex.t;
    cond : Condition.t;
    parties : int;
    mutable count : int;
    mutable phase : int;
  }

  let create parties =
    { lock = Mutex.create (); cond = Condition.create (); parties; count = 0; phase = 0 }

  let wait b =
    Mutex.lock b.lock;
    let phase = b.phase in
    b.count <- b.count + 1;
    if b.count = b.parties then begin
      b.count <- 0;
      b.phase <- b.phase + 1;
      Condition.broadcast b.cond
    end
    else
      while b.phase = phase do
        Condition.wait b.cond b.lock
      done;
    Mutex.unlock b.lock
end

type t = {
  nodes : int;
  domains : int;
  latency : float;
  jitter : float;
  seed : int;
  shards : shard array;
  inboxes : inbox array;
  (* Published head-of-heap times, one slot per shard; written by the
     owner before a barrier, read by everyone after it. *)
  heads : float array;
  (* Per-origin event counters. [node_ctr.(n)] is owned by [n]'s shard
     (or the main domain outside [run]); the channel counters drive the
     deterministic jitter hash and are owned by the sending shard. *)
  node_ctr : int array;
  chan_ctr : int array;
  mutable main_ctr : int;
  mutable global_time : float;
  mutable running : bool;
  error : (exn * Printexc.raw_backtrace) option Atomic.t;
  barrier : Barrier.t;
}

(* The shard the current domain is driving, [None] on the main domain
   outside a sequential [run]. Worker domains are spawned per [run] call,
   so a fresh domain always starts at the default. *)
let dls_shard : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let partition ~domains ~nodes =
  if domains <= 0 then invalid_arg "Shard_sim.partition: domains must be positive";
  if nodes <= 0 then invalid_arg "Shard_sim.partition: nodes must be positive";
  Array.init nodes (fun n -> n mod domains)

let create ?(latency = 0.001) ?(jitter = 0.0) ?(seed = 0) ~domains ~nodes () =
  if domains <= 0 then invalid_arg "Shard_sim.create: domains must be positive";
  if nodes <= 0 then invalid_arg "Shard_sim.create: nodes must be positive";
  if latency <= 0.0 then
    (* The window loop's lookahead is the minimum cross-shard delay; a
       zero-latency wire would shrink every round to a single timestamp
       and, worse, admit same-time cross-shard causality. *)
    invalid_arg "Shard_sim.create: latency must be positive";
  if jitter < 0.0 then invalid_arg "Shard_sim.create: negative jitter";
  {
    nodes;
    domains;
    latency;
    jitter;
    seed;
    shards =
      Array.init domains (fun sid ->
        { sid; heap = Dpc_util.Heap.create ~cmp:cmp_event; clock = 0.0; outbox = [];
          anon_ctr = 0; bytes = 0; msgs = 0 });
    inboxes = Array.init domains (fun _ -> { ilock = Mutex.create (); items = [] });
    heads = Array.make domains infinity;
    node_ctr = Array.make nodes 0;
    chan_ctr = Array.make (nodes * nodes) 0;
    main_ctr = 0;
    global_time = 0.0;
    running = false;
    error = Atomic.make None;
    barrier = Barrier.create domains;
  }

let domains t = t.domains
let nodes t = t.nodes
let shard_of t node = node mod t.domains

(* Reserved origins: [-1] is the main domain; [-(s + 2)] is shard [s]'s
   anonymous context (generic [schedule] with no node attached). *)
let main_origin = -1
let anon_origin sid = -(sid + 2)

let check_node t ~what node =
  if node < 0 || node >= t.nodes then
    invalid_arg (Printf.sprintf "Shard_sim.%s: node %d out of range" what node)

let current_shard () = Domain.DLS.get dls_shard

let caller_now t = function
  | Some sid -> t.shards.(sid).clock
  | None -> t.global_time

(* Route an event to the shard that must execute it. From the main domain
   no workers are live, so pushing straight into the target heap is safe;
   from a worker, a foreign target goes through the outbox and crosses at
   the next barrier. *)
let push_event t ~target ev =
  match current_shard () with
  | None -> Dpc_util.Heap.push t.shards.(target).heap ev
  | Some sid when sid = target -> Dpc_util.Heap.push t.shards.(sid).heap ev
  | Some sid ->
      let s = t.shards.(sid) in
      s.outbox <- (target, ev) :: s.outbox

let node_event t ~node ~at action =
  let ctr = t.node_ctr.(node) in
  t.node_ctr.(node) <- ctr + 1;
  { at; origin = node; ctr; action }

(* SplitMix64 finalizer (same construction as [Transport.hashed_decide]):
   jitter for the [n]th message on a channel hashes (seed, src, dst, n),
   so latencies are identical whatever the shard count. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L
let mix_absorb state x = mix64 (Int64.add state (Int64.mul golden (Int64.of_int (x + 1))))
let unit_float h = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let wire_delay t ~src ~dst =
  if t.jitter = 0.0 then t.latency
  else begin
    let idx = (src * t.nodes) + dst in
    let n = t.chan_ctr.(idx) in
    t.chan_ctr.(idx) <- n + 1;
    let h = mix_absorb (mix_absorb (mix_absorb (Int64.of_int t.seed) src) dst) n in
    t.latency +. (t.jitter *. unit_float h)
  end

let send t ~src ~dst ~bytes k =
  check_node t ~what:"send" src;
  check_node t ~what:"send" dst;
  let ctx = current_shard () in
  let charge = t.shards.(match ctx with Some sid -> sid | None -> shard_of t src) in
  charge.msgs <- charge.msgs + 1;
  charge.bytes <- charge.bytes + bytes;
  let at = caller_now t ctx +. wire_delay t ~src ~dst in
  push_event t ~target:(shard_of t dst) (node_event t ~node:src ~at k)

let schedule t ~delay k =
  if delay < 0.0 then invalid_arg "Shard_sim.schedule: negative delay";
  match current_shard () with
  | None ->
      let ctr = t.main_ctr in
      t.main_ctr <- ctr + 1;
      push_event t ~target:0 { at = t.global_time +. delay; origin = main_origin; ctr; action = k }
  | Some sid ->
      let s = t.shards.(sid) in
      let ctr = s.anon_ctr in
      s.anon_ctr <- ctr + 1;
      push_event t ~target:sid { at = s.clock +. delay; origin = anon_origin sid; ctr; action = k }

let schedule_on t ~node ~delay k =
  if delay < 0.0 then invalid_arg "Shard_sim.schedule_on: negative delay";
  check_node t ~what:"schedule_on" node;
  let target = shard_of t node in
  match current_shard () with
  | None -> push_event t ~target (node_event t ~node ~at:(t.global_time +. delay) k)
  | Some sid when sid = target ->
      push_event t ~target (node_event t ~node ~at:(t.shards.(sid).clock +. delay) k)
  | Some sid ->
      (* Arming a timer on a foreign node's shard mid-run: allowed, but
         the node counter belongs to the target shard, so the event is
         tagged with the caller's anonymous origin and crosses via the
         outbox (clamped forward on ingest if the window already moved). *)
      let s = t.shards.(sid) in
      let ctr = s.anon_ctr in
      s.anon_ctr <- ctr + 1;
      push_event t ~target { at = s.clock +. delay; origin = anon_origin sid; ctr; action = k }

let total_bytes t = Array.fold_left (fun acc s -> acc + s.bytes) 0 t.shards
let messages t = Array.fold_left (fun acc s -> acc + s.msgs) 0 t.shards
let now t = caller_now t (current_shard ())

(* One shard's side of the window loop. Three barriers per round:
   process-[flush]-ingest/publish-[decide]; all workers read the same
   published heads between rounds, so they agree on the window — and on
   termination — without any leader. *)
let worker t ~limit sid =
  Domain.DLS.set dls_shard (Some sid);
  let s = t.shards.(sid) in
  let publish () =
    t.heads.(sid) <-
      (match Dpc_util.Heap.peek s.heap with Some ev -> ev.at | None -> infinity)
  in
  publish ();
  Barrier.wait t.barrier;
  let rec round () =
    if Atomic.get t.error <> None then ()
    else begin
      let tmin = Array.fold_left Float.min infinity t.heads in
      if tmin >= limit then ()
      else begin
        let window = Float.min (tmin +. t.latency) limit in
        (try
           let rec drain () =
             match Dpc_util.Heap.peek s.heap with
             | Some ev when ev.at < window ->
                 ignore (Dpc_util.Heap.pop s.heap);
                 if ev.at > s.clock then s.clock <- ev.at;
                 ev.action ();
                 drain ()
             | _ -> ()
           in
           drain ()
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set t.error None (Some (e, bt))));
        Barrier.wait t.barrier;
        List.iter
          (fun (target, ev) ->
            let ib = t.inboxes.(target) in
            Mutex.protect ib.ilock (fun () -> ib.items <- ev :: ib.items))
          s.outbox;
        s.outbox <- [];
        Barrier.wait t.barrier;
        let ib = t.inboxes.(sid) in
        let incoming =
          Mutex.protect ib.ilock (fun () ->
            let items = ib.items in
            ib.items <- [];
            items)
        in
        List.iter
          (fun ev ->
            (* Only a cross-shard [schedule_on] with a tiny delay can land
               behind the local clock; pull it forward rather than run an
               event in the past. Message arrivals always clear the
               window by construction (arrival >= send time + latency). *)
            let ev = if ev.at < s.clock then { ev with at = s.clock } else ev in
            Dpc_util.Heap.push s.heap ev)
          incoming;
        publish ();
        Barrier.wait t.barrier;
        round ()
      end
    end
  in
  round ()

let run_sequential t ~limit =
  let s = t.shards.(0) in
  Domain.DLS.set dls_shard (Some 0);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set dls_shard None;
      if s.clock > t.global_time then t.global_time <- s.clock)
    (fun () ->
      let rec go () =
        match Dpc_util.Heap.peek s.heap with
        | Some ev when ev.at < limit ->
            ignore (Dpc_util.Heap.pop s.heap);
            if ev.at > s.clock then s.clock <- ev.at;
            ev.action ();
            go ()
        | _ -> ()
      in
      go ())

let run ?until t =
  if t.running then invalid_arg "Shard_sim.run: already running";
  let limit = match until with None -> infinity | Some u -> u in
  if t.domains = 1 then run_sequential t ~limit
  else begin
    t.running <- true;
    Atomic.set t.error None;
    let workers = Array.init t.domains (fun sid -> Domain.spawn (fun () -> worker t ~limit sid)) in
    Array.iter Domain.join workers;
    t.running <- false;
    Array.iter (fun s -> if s.clock > t.global_time then t.global_time <- s.clock) t.shards;
    match Atomic.get t.error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let transport t : Transport.t =
  (module struct
    let name = Printf.sprintf "shard_sim[%d]" t.domains
    let nodes = t.nodes
    let shards = t.domains
    let shard_of node = shard_of t node
    let now () = now t
    let schedule ~delay k = schedule t ~delay k
    let schedule_on ~node ~delay k = schedule_on t ~node ~delay k
    let send ~src ~dst ~bytes k = send t ~src ~dst ~bytes k

    let broadcast ~src ~bytes k =
      for dst = 0 to nodes - 1 do
        send ~src ~dst ~bytes (fun () -> k dst)
      done

    let run ?until () = run ?until t
    let total_bytes () = total_bytes t
    let messages () = messages t
  end)
