module Socket = Dpc_net.Socket
module Backend = Dpc_core.Backend
module Durable = Dpc_core.Durable
module Runtime = Dpc_engine.Runtime
module Journal = Dpc_engine.Journal
module Tuple = Dpc_ndlog.Tuple

type t = {
  sock : Socket.t;
  runtime : Runtime.t;
  backend : Backend.t;
  durable : Durable.t;
  local : int;
}

(* The simulator's crash switchboard has no meaning here: the "crash" of a
   real node is the process dying, and recovery happens at the next
   [create] in a fresh process. *)
let real_process_control : Dpc_net.Transport.crash_control =
  {
    crash = ignore;
    restart = ignore;
    is_up = (fun _ -> true);
    crash_stats = { crashes = Atomic.make 0; suppressed = Atomic.make 0 };
  }

let default_config = { Durable.checkpoint_every = 4; rebase_every = 2 }

let rec create ~scheme ~nodes ~local ~addr_of ~dir ?(config = default_config) ?chaos () =
  let delp = Dpc_apps.Forwarding.delp () in
  let env = Dpc_apps.Forwarding.env in
  let backend = Backend.make scheme ~delp ~env ~nodes in
  let sock = Socket.create ~nodes ~local ~addr_of () in
  (match chaos with
  | Some (fault_config, seed) -> Socket.set_chaos sock ~config:fault_config ~seed
  | None -> ());
  let runtime =
    Runtime.create ~transport:(Socket.transport sock) ~delp ~env ~hook:(Backend.hook backend)
      ~nodes:(Backend.nodes backend) ()
  in
  let durable =
    Durable.attach ~backend ~runtime ~control:real_process_control ~config ~disk:dir
      ~disk_nodes:(fun node -> node = local)
      ()
  in
  let outbox () = Option.get (Durable.outbox durable local) in
  (* Checkpoint cuts carry the transport's channel sequence state; recovery
     pushes the newest cut's blob back (monotonic, so WAL entries replayed
     afterwards can only advance it further). *)
  Durable.set_channel_state durable
    ~snapshot:(fun node -> if node = local then Some (Socket.snapshot_channels sock) else None)
    ~restore:(fun node blob -> if node = local then Socket.restore_channels sock blob);
  Runtime.set_channel_restore runtime
    ~next_seq:(fun ~peer ~seq -> Socket.set_next_seq sock ~dst:peer seq)
    ~expected:(fun ~peer ~seq -> Socket.set_expected sock ~src:peer seq);
  (* Replay reconciliation: remote sends regenerated while the WAL replays
     arrive in channel order starting at the restored cut's cursor. A send
     whose position the outbox already recorded needs nothing (its frame is
     either acked or in the pending tail re-offered below); a send past the
     ledger's cursor is the crash window — the arrival made the WAL but the
     kill landed before the outbox append — so it is recorded now and rides
     out with the pending tail. *)
  let replay_pos = Hashtbl.create 4 in
  Runtime.set_remote runtime
    ~is_local:(fun node -> node = local)
    ~ship:(fun ~dst ~bytes:_ ~payload -> Socket.send_payload sock ~dst payload)
    ~replayed:(fun ~dst ~payload ->
      let pos =
        match Hashtbl.find_opt replay_pos dst with
        | Some p -> p
        | None -> Socket.sender_next_seq sock ~dst
      in
      Hashtbl.replace replay_pos dst (pos + 1);
      let ob = outbox () in
      if pos >= Durable.Outbox.next_seq ob ~dst then
        Durable.Outbox.record_send ob ~dst ~seq:pos payload);
  Socket.set_persist sock (fun event ->
      match event with
      | Socket.Sent { dst; seq; payload } ->
          (* The WAL group holding this send's cause (the arrival or input
             being processed right now) must hit disk before the ledger
             promises the send — otherwise a crash could leave an outbox
             record whose origin the journal never saw. *)
          Durable.flush_wal durable local;
          Durable.Outbox.record_send (outbox ()) ~dst ~seq payload
      | Socket.Acked { dst; seq } -> Durable.Outbox.record_ack (outbox ()) ~dst ~seq
      | Socket.Expected { src; seq } ->
          Durable.journal durable local (Journal.Expected { peer = src; seq }));
  (* The ack of a delivery batch is a durable promise: flush before acks. *)
  Socket.set_sync sock (fun () -> Durable.flush_wal durable local);
  Socket.set_deliver sock (fun ~src:_ ~payload -> Runtime.deliver_remote runtime ~node:local payload);
  let t = { sock; runtime; backend; durable; local } in
  if Durable.recovered durable local then begin
    Durable.recover durable local;
    let ob = outbox () in
    (* The ledger is the sender's durable cursor — ahead of both the cut
       and whatever replay just reconciled. *)
    for dst = 0 to nodes - 1 do
      if dst <> local then Socket.set_next_seq sock ~dst (Durable.Outbox.next_seq ob ~dst)
    done;
    List.iter
      (fun (dst, seq, payload) -> Socket.requeue sock ~dst ~seq payload)
      (Durable.Outbox.pending ob)
  end;
  Socket.set_control sock (fun ~payload ~reply -> handle_control t ~payload ~reply);
  t

and handle_control t ~payload ~reply =
  let respond r = reply (Ctrl.encode_reply r) in
  let homed_here tuple what k =
    if Tuple.loc tuple <> t.local then
      respond
        (Ctrl.Error
           (Printf.sprintf "%s %s is homed at node %d, not this daemon (node %d)" what
              (Tuple.to_string tuple) (Tuple.loc tuple) t.local))
    else k ()
  in
  match Ctrl.decode_request payload with
  | exception exn -> respond (Ctrl.Error (Printexc.to_string exn))
  | Ctrl.Load tuples ->
      Runtime.load_slow t.runtime tuples;
      respond Ctrl.Ok
  | Ctrl.Inject event ->
      homed_here event "input event" (fun () ->
          Runtime.inject t.runtime event;
          respond Ctrl.Ok)
  | Ctrl.Slow_insert tuple ->
      homed_here tuple "slow tuple" (fun () ->
          Runtime.insert_slow_runtime t.runtime tuple;
          respond Ctrl.Ok)
  | Ctrl.Slow_delete tuple ->
      homed_here tuple "slow tuple" (fun () ->
          respond (Ctrl.Deleted (Runtime.delete_slow_runtime t.runtime tuple)))
  | Ctrl.Checkpoint ->
      Durable.checkpoint_now t.durable t.local;
      respond Ctrl.Ok
  | Ctrl.Status ->
      let s = Socket.stats t.sock in
      let rs = Runtime.stats t.runtime in
      respond
        (Ctrl.Status_r
           {
             node = t.local;
             recovered = Durable.recovered t.durable t.local;
             unacked = Socket.unacked t.sock;
             data_sent = s.data_sent;
             data_received = s.data_received;
             fired = rs.fired;
             outputs = rs.outputs;
             wal_entries = (Durable.node_stats t.durable t.local).wal_entries;
             outbox_bytes =
               (match Durable.outbox t.durable t.local with
               | Some ob -> Durable.Outbox.size_bytes ob
               | None -> 0);
           })
  | Ctrl.Digest ->
      respond
        (Ctrl.Digest_r
           {
             node = t.local;
             store = Backend.digest_node t.backend t.local;
             db = Scenario.db_digest (Runtime.db t.runtime t.local);
           })
  | Ctrl.Shutdown -> Socket.stop t.sock
  | Ctrl.Compact ->
      (match Durable.outbox t.durable t.local with
      | Some ob -> Durable.Outbox.compact ob
      | None -> ());
      respond Ctrl.Ok
  | Ctrl.Block peer -> (
      match Socket.set_peer_blocked t.sock ~peer true with
      | () -> respond Ctrl.Ok
      | exception Invalid_argument msg -> respond (Ctrl.Error msg))
  | Ctrl.Unblock peer -> (
      match Socket.set_peer_blocked t.sock ~peer false with
      | () -> respond Ctrl.Ok
      | exception Invalid_argument msg -> respond (Ctrl.Error msg))

let serve t =
  Runtime.run t.runtime;
  Socket.close t.sock

let socket t = t.sock
let runtime t = t.runtime
let durable t = t.durable
