lib/engine/env.ml: Dpc_ndlog List String
