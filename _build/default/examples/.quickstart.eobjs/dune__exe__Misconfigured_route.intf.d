examples/misconfigured_route.mli:
