lib/core/prov_tree.mli: Dpc_ndlog Dpc_util Format
