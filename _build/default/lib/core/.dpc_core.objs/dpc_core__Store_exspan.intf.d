lib/core/store_exspan.mli: Dpc_engine Dpc_ndlog Dpc_net Dpc_util Query_cost Query_result Rows
