lib/ndlog/value.mli: Dpc_util Format
