lib/core/side_store.ml: Array Dpc_ndlog Dpc_util Hashtbl Tuple
