(* delpc: the DELP "compiler" front end.

   Parses an NDlog program, validates the DELP restrictions (Definition 1),
   and reports the static analysis of §5.2: relation classification, the
   attribute-level dependency graph, and the equivalence keys.

     dune exec bin/delpc.exe -- check program.delp
     dune exec bin/delpc.exe -- analyze program.delp
     dune exec bin/delpc.exe -- analyze --builtin dns *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let builtins =
  [
    ("forwarding", Dpc_apps.Forwarding.source);
    ("dns", Dpc_apps.Dns.source);
    ("dhcp", Dpc_apps.Dhcp.source);
    ("arp", Dpc_apps.Arp.source);
  ]

let load ~builtin ~file =
  match builtin, file with
  | Some name, _ -> begin
      match List.assoc_opt name builtins with
      | Some src -> Ok (name, src)
      | None ->
          Error
            (Printf.sprintf "unknown builtin %S (available: %s)" name
               (String.concat ", " (List.map fst builtins)))
    end
  | None, Some path -> begin
      match read_file path with
      | src -> Ok (Filename.remove_extension (Filename.basename path), src)
      | exception Sys_error e -> Error e
    end
  | None, None -> Error "provide a program file or --builtin <name>"

let validate_src name src =
  match Dpc_ndlog.Parser.parse_program ~name src with
  | Error e -> Error (Printf.sprintf "parse error: %s" e)
  | Ok program -> begin
      match Dpc_ndlog.Delp.validate program with
      | Error e -> Error (Printf.sprintf "not a valid DELP: %s" (Dpc_ndlog.Delp.error_to_string e))
      | Ok delp -> Ok delp
    end

let or_die = function
  | Ok v -> v
  | Error message ->
      prerr_endline ("delpc: " ^ message);
      exit 1

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"NDlog program file.")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "builtin" ] ~docv:"NAME"
        ~doc:"Use a built-in program (forwarding, dns, dhcp, arp) instead of a file.")

let check builtin file =
  let name, src = or_die (load ~builtin ~file) in
  let delp = or_die (validate_src name src) in
  Printf.printf "%s: valid DELP with %d rules\n" name (List.length delp.program.rules);
  Printf.printf "  input event   : %s/%d\n" delp.input_event
    (Dpc_ndlog.Delp.event_arity delp);
  Printf.printf "  output        : %s\n" delp.output_rel;
  Printf.printf "  event relations: %s\n" (String.concat ", " delp.event_rels);
  Printf.printf "  slow-changing : %s\n" (String.concat ", " delp.slow_rels)

let analyze builtin file dot =
  let name, src = or_die (load ~builtin ~file) in
  let delp = or_die (validate_src name src) in
  let g = Dpc_analysis.Depgraph.build delp in
  let keys = Dpc_analysis.Equi_keys.compute delp in
  Printf.printf "program %s:\n%s\n\n" name (Dpc_ndlog.Pretty.program_to_string delp.program);
  if dot then begin
    (* Graphviz rendering of the dependency graph. *)
    print_endline "graph depgraph {";
    List.iter
      (fun v ->
        Printf.printf "  \"%s\"%s;\n"
          (Dpc_analysis.Depgraph.attr_to_string v)
          (if Dpc_analysis.Depgraph.is_anchor g v then " [style=filled, fillcolor=lightgray]"
           else ""))
      (Dpc_analysis.Depgraph.vertices g);
    List.iter
      (fun (a, b) ->
        Printf.printf "  \"%s\" -- \"%s\";\n"
          (Dpc_analysis.Depgraph.attr_to_string a)
          (Dpc_analysis.Depgraph.attr_to_string b))
      (Dpc_analysis.Depgraph.edges g);
    print_endline "}"
  end
  else begin
    Format.printf "attribute-level dependency graph:@.%a@.@." Dpc_analysis.Depgraph.pp g;
    Format.printf "%a@." Dpc_analysis.Equi_keys.pp keys
  end

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and validate a DELP (Definition 1).")
    Term.(const check $ builtin_arg $ file_arg)

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit the dependency graph as Graphviz DOT.")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Print the dependency graph and equivalence keys (paper \u{00a7}5.2).")
    Term.(const analyze $ builtin_arg $ file_arg $ dot_arg)

let () =
  let info =
    Cmd.info "delpc" ~version:"1.0.0"
      ~doc:"Static analysis for distributed event-driven linear programs."
  in
  exit (Cmd.eval (Cmd.group info [ check_cmd; analyze_cmd ]))
