(* Regeneration harnesses for every figure in the paper's evaluation
   (§6, Figures 8-16), plus the §5.4 ablation. Each harness prints the same
   series the paper plots and a shape-check line comparing the measured
   ratios against the paper's qualitative claims.

   Default parameters are scaled down from the paper's for wall-clock
   sanity; [paper_scale] selects the published parameters. Absolute numbers
   are not expected to match (the substrate is a simulator); the shapes
   are. *)

open Dpc_util
open Dpc_core
open Dpc_workload

type config = { paper_scale : bool; tiny : bool; seed : int; domains : int }

let default_config = { paper_scale = false; tiny = false; seed = 1; domains = 4 }

let scale_name cfg = if cfg.tiny then "tiny" else if cfg.paper_scale then "paper" else "scaled-down"

let schemes = [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced ]

let scheme_label s = Backend.scheme_name s

let header fig title =
  Printf.printf "\n=== Figure %s: %s ===\n" fig title

let shape_check name ok detail =
  Printf.printf "SHAPE CHECK [%s]: %s (%s)\n" name (if ok then "OK" else "MISMATCH") detail

let pct_levels = [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ]

let cdf_row label samples =
  label
  :: List.map (fun p -> Table_fmt.human_rate (Stats.percentile samples p)) pct_levels

let cdf_table rows =
  Table_fmt.print
    ~header:("scheme" :: List.map (fun p -> Printf.sprintf "p%.0f" p) pct_levels)
    ~rows

(* ------------------------------------------------------------------ *)
(* Shared setups *)

let transit_stub cfg =
  let rng = Rng.create ~seed:cfg.seed in
  let ts = Dpc_net.Transit_stub.generate ~rng Dpc_net.Transit_stub.paper_params in
  let routing = Dpc_net.Routing.compute ts.topology in
  (ts, routing, rng)

let forwarding_run cfg ~scheme ~pairs ~rate ~duration ~payload ?bucket_width ?snapshots_every
    ?record_outputs () =
  let ts, routing, rng = transit_stub cfg in
  let pair_list = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:pairs in
  let d =
    Forwarding_driver.setup ~scheme ~topology:ts.topology ~routing ~pairs:pair_list
      ?bucket_width ?record_outputs ()
  in
  let series =
    match snapshots_every with
    | None -> ref []
    | Some every ->
        Measure.storage_snapshots ~sim:(Forwarding_driver.sim_exn d) ~every ~until:duration (fun () ->
          Measure.total_provenance_bytes d.backend)
  in
  let injected = Forwarding_driver.inject_stream d ~rate_per_pair:rate ~duration ~payload_size:payload in
  Forwarding_driver.run d;
  (d, injected, series, rng)

let dns_run cfg ~scheme ~urls ~rate ~duration ?total ?bucket_width ?snapshots_every
    ?record_outputs () =
  let rng = Rng.create ~seed:cfg.seed in
  let spec = Dns_workload.generate ~rng ~servers:100 ~backbone_depth:27 ~urls ~clients:10 in
  let t = Dns_workload.setup ~scheme spec ?bucket_width ?record_outputs () in
  let series =
    match snapshots_every with
    | None -> ref []
    | Some every ->
        Measure.storage_snapshots ~sim:t.sim ~every ~until:duration (fun () ->
          Measure.total_provenance_bytes t.backend)
  in
  let injected =
    match total with
    | Some total -> Dns_workload.inject_n_requests t ~rng ~total ~duration
    | None -> Dns_workload.inject_requests t ~rng ~rate ~duration
  in
  Dns_workload.run t;
  (t, injected, series)

(* ------------------------------------------------------------------ *)
(* Figure 8: CDF of per-node storage growth rate (forwarding). *)

let fig8 cfg =
  header "8" "CDF of per-node provenance storage growth rate (packet forwarding)";
  let pairs = if cfg.paper_scale then 100 else 30 in
  let rate = if cfg.paper_scale then 100.0 else 20.0 in
  let duration = if cfg.paper_scale then 10.0 else 5.0 in
  Printf.printf "workload: %d pairs, %.0f packets/s each, %.0fs, 100-node transit-stub\n"
    pairs rate duration;
  let rates_of scheme =
    let d, injected, _, _ =
      forwarding_run cfg ~scheme ~pairs ~rate ~duration ~payload:500 ~record_outputs:false ()
    in
    Report.add_events "fig8" injected;
    Measure.per_node_rates ~backend:d.backend ~nodes:100 ~duration
  in
  let per_scheme = List.map (fun s -> (s, rates_of s)) schemes in
  cdf_table (List.map (fun (s, rates) -> cdf_row (scheme_label s) rates) per_scheme);
  let median s = Stats.median (List.assoc s per_scheme) in
  let p90 s = Stats.percentile (List.assoc s per_scheme) 90.0 in
  shape_check "fig8"
    (median Backend.S_basic < median Backend.S_exspan
    && p90 Backend.S_advanced *. 3.0 < p90 Backend.S_exspan)
    (Printf.sprintf "median ExSPAN %s, Basic %s; p90 Advanced %s vs ExSPAN %s"
       (Table_fmt.human_rate (median Backend.S_exspan))
       (Table_fmt.human_rate (median Backend.S_basic))
       (Table_fmt.human_rate (p90 Backend.S_advanced))
       (Table_fmt.human_rate (p90 Backend.S_exspan)))

(* ------------------------------------------------------------------ *)
(* Figure 9: total storage growth over time (forwarding). *)

let fig9 cfg =
  header "9" "Provenance storage growth over time (packet forwarding)";
  let pairs = if cfg.tiny then 5 else if cfg.paper_scale then 100 else 30 in
  let rate = if cfg.tiny then 5.0 else if cfg.paper_scale then 100.0 else 20.0 in
  (* The paper ran 100 s (1M packets); ExSPAN's tables for that run need
     several GB, so even paper scale caps the duration — growth is linear,
     so the per-second rates are unaffected. *)
  let duration = if cfg.tiny then 2.0 else if cfg.paper_scale then 20.0 else 10.0 in
  let every = if cfg.paper_scale then 2.0 else 1.0 in
  Printf.printf "workload: %d pairs, %.0f packets/s each, %.0fs, snapshots every %.0fs%s\n"
    pairs rate duration every
    (if cfg.paper_scale then " (paper ran 100 s; duration capped, rates are per-second)" else "");
  let runs =
    List.map
      (fun scheme ->
        let _, injected, series, _ =
          forwarding_run cfg ~scheme ~pairs ~rate ~duration ~payload:500
            ~snapshots_every:every ~record_outputs:false ()
        in
        Report.add_events "fig9" injected;
        Report.add_series "fig9" (scheme_label scheme) !series;
        (scheme, !series))
      schemes
  in
  let times = List.map fst (snd (List.hd runs)) in
  Table_fmt.print
    ~header:("t (s)" :: List.map (fun (s, _) -> scheme_label s) runs)
    ~rows:
      (List.mapi
         (fun i t ->
           Printf.sprintf "%.0f" t
           :: List.map (fun (_, series) -> Table_fmt.human_bytes (snd (List.nth series i))) runs)
         times);
  let growth scheme =
    let series = List.assoc scheme runs in
    let _, last = List.nth series (List.length series - 1) in
    float_of_int last /. duration
  in
  let gx = growth Backend.S_exspan and gb = growth Backend.S_basic and ga = growth Backend.S_advanced in
  List.iter
    (fun (name, g) ->
      Printf.printf "%-10s grows at %s; would fill a 1TB disk in %.1f hours\n" name
        (Table_fmt.human_rate g)
        (1e12 /. g /. 3600.0))
    [ ("ExSPAN", gx); ("Basic", gb); ("Advanced", ga) ];
  shape_check "fig9"
    (gb < gx && ga *. 5.0 < gx)
    (Printf.sprintf "growth ExSPAN %s, Basic %s, Advanced %s (paper: 131/109/10.3 MB/s)"
       (Table_fmt.human_rate gx) (Table_fmt.human_rate gb) (Table_fmt.human_rate ga))

(* ------------------------------------------------------------------ *)
(* Figure 10: storage vs number of communicating pairs, fixed packets. *)

let fig10 cfg =
  header "10" "Storage vs number of communicating pairs (2000 packets total)";
  let total = 2000 in
  let pair_counts = if cfg.paper_scale then [ 10; 25; 50; 75; 100 ] else [ 10; 20; 40; 60; 80 ] in
  let storage scheme pairs =
    let ts, routing, rng = transit_stub cfg in
    let pair_list = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:pairs in
    let d = Forwarding_driver.setup ~scheme ~topology:ts.topology ~routing ~pairs:pair_list () in
    ignore (Forwarding_driver.inject_total d ~total ~duration:10.0 ~payload_size:500);
    Forwarding_driver.run d;
    Measure.total_provenance_bytes d.backend
  in
  let results =
    List.map (fun pairs -> (pairs, List.map (fun s -> (s, storage s pairs)) schemes)) pair_counts
  in
  Report.add_events "fig10" (total * List.length pair_counts * List.length schemes);
  List.iter
    (fun s ->
      Report.add_series "fig10" (scheme_label s)
        (List.map (fun (pairs, ps) -> (float_of_int pairs, List.assoc s ps)) results))
    schemes;
  Table_fmt.print
    ~header:("pairs" :: List.map scheme_label schemes)
    ~rows:
      (List.map
         (fun (pairs, per_scheme) ->
           string_of_int pairs
           :: List.map (fun (_, b) -> Table_fmt.human_bytes b) per_scheme)
         results);
  (* ExSPAN/Basic roughly flat; Advanced grows with pairs but stays lowest. *)
  let series scheme = List.map (fun (_, ps) -> List.assoc scheme ps) results in
  let flatness xs =
    let lo = List.fold_left min max_int xs and hi = List.fold_left max 0 xs in
    float_of_int hi /. float_of_int (max 1 lo)
  in
  let adv = series Backend.S_advanced in
  let adv_grows = List.nth adv (List.length adv - 1) > List.hd adv in
  let adv_below =
    List.for_all2 ( > ) (series Backend.S_exspan) adv
  in
  shape_check "fig10"
    (flatness (series Backend.S_exspan) < 1.6 && adv_grows && adv_below)
    (Printf.sprintf "ExSPAN spread x%.2f (flat), Advanced grows with pairs yet stays lowest"
       (flatness (series Backend.S_exspan)))

(* ------------------------------------------------------------------ *)
(* Figure 11: bandwidth during forwarding (+ §5.5 update variant). *)

let fig11 cfg =
  header "11" "Bandwidth consumption during packet forwarding";
  let pairs = if cfg.tiny then 8 else if cfg.paper_scale then 500 else 50 in
  let per_pair = if cfg.tiny then 20 else 100 in
  let duration = 10.0 in
  let rate = float_of_int per_pair /. duration in
  Printf.printf "workload: %d pairs x %d packets, 500-byte payloads\n" pairs per_pair;
  let ts, routing, _ = transit_stub cfg in
  let pair_list =
    Pairs.select ~rng:(Rng.create ~seed:cfg.seed) ~eligible:ts.stub_nodes ~count:pairs
  in
  let run_driver d ~updates =
    let injected =
      Forwarding_driver.inject_stream d ~rate_per_pair:rate ~duration ~payload_size:500
    in
    Report.add_events "fig11" injected;
    if updates then begin
      (* §5.5 variant: refresh one pair's routes periodically (the paper
         updates a route every 10 seconds). A refresh is a delete followed
         by a reinsert — re-inserting a present tuple alone is a no-op and
         would broadcast nothing. *)
      let update_every = 5.0 in
      let pair_arr = Array.of_list pair_list in
      for k = 0 to int_of_float (duration /. update_every) - 1 do
        Dpc_net.Sim.schedule (Forwarding_driver.sim_exn d)
          ~delay:((float_of_int k +. 0.5) *. update_every) (fun () ->
          let src, dst = pair_arr.(k mod Array.length pair_arr) in
          List.iter
            (fun t ->
              ignore (Dpc_engine.Runtime.delete_slow_runtime d.Forwarding_driver.runtime t);
              Dpc_engine.Runtime.insert_slow_runtime d.Forwarding_driver.runtime t)
            (Dpc_apps.Forwarding.routes_for_pair routing ~src ~dst))
      done
    end;
    Forwarding_driver.run d;
    Dpc_net.Transport.total_bytes d.Forwarding_driver.transport
  in
  let run ?(updates = false) scheme =
    run_driver
      (Forwarding_driver.setup ~scheme ~topology:ts.topology ~routing ~pairs:pair_list ())
      ~updates
  in
  let baseline =
    (* No provenance at all: the null hook. *)
    let sim = Dpc_net.Sim.create ~topology:ts.topology ~routing () in
    let delp = Dpc_apps.Forwarding.delp () in
    let runtime =
      Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
        ~env:Dpc_apps.Forwarding.env ~hook:Dpc_engine.Prov_hook.null ()
    in
    Dpc_engine.Runtime.load_slow runtime (Dpc_apps.Forwarding.routes_for_pairs routing pair_list);
    let d : Forwarding_driver.t =
      {
        sim = Some sim;
        transport = Dpc_engine.Runtime.transport runtime;
        runtime;
        backend = Backend.make Backend.S_basic ~delp ~env:Dpc_apps.Forwarding.env ~nodes:100;
        routing;
        pairs = pair_list;
        fault_stats = None;
      }
    in
    run_driver d ~updates:false
  in
  let results = List.map (fun s -> (scheme_label s, run s)) schemes in
  let adv_updates = run ~updates:true Backend.S_advanced in
  (* Same workload over a lossy network, with the reliable-delivery layer
     keeping effects exactly-once. Total bytes now include the delivery
     layer's own traffic; the ack/retransmit adders are reported apart so
     the protocol overhead is visible next to the provenance overhead. *)
  let adv_reliable, rel_adders =
    let d =
      Forwarding_driver.setup ~scheme:Backend.S_advanced ~topology:ts.topology ~routing
        ~pairs:pair_list
        ~faults:(Dpc_net.Transport.fault_config ~drop:0.05 ~duplicate:0.02 ~delay:0.1 ~delay_max:0.005 ())
        ~fault_seed:(cfg.seed + 11) ~reliable:Dpc_net.Reliable.default_config ()
    in
    let total = run_driver d ~updates:false in
    let rs =
      match Dpc_engine.Runtime.reliability d.Forwarding_driver.runtime with
      | Some r -> Dpc_net.Reliable.stats r
      | None -> assert false (* setup was given ~reliable *)
    in
    (total, rs)
  in
  let rows =
    ("no provenance", baseline, 0.0)
    :: List.map
         (fun (name, b) ->
           (name, b, 100.0 *. (float_of_int b /. float_of_int baseline -. 1.0)))
         results
    @ [
        ( "Advanced + route updates",
          adv_updates,
          100.0 *. (float_of_int adv_updates /. float_of_int baseline -. 1.0) );
        ( "Advanced + reliable (lossy net)",
          adv_reliable,
          100.0 *. (float_of_int adv_reliable /. float_of_int baseline -. 1.0) );
      ]
  in
  Table_fmt.print ~header:[ "scheme"; "total bytes"; "overhead vs baseline" ]
    ~rows:(List.map (fun (n, b, p) -> [ n; Table_fmt.human_bytes b; Printf.sprintf "%.2f%%" p ]) rows);
  Printf.printf
    "reliable delivery adders: %s retransmitted (%d msgs), %s acks (%d msgs), %d duplicates suppressed, %d abandoned\n"
    (Table_fmt.human_bytes rel_adders.Dpc_net.Reliable.retransmit_bytes)
    rel_adders.Dpc_net.Reliable.retransmits
    (Table_fmt.human_bytes rel_adders.Dpc_net.Reliable.ack_bytes_total)
    rel_adders.Dpc_net.Reliable.acks rel_adders.Dpc_net.Reliable.dup_dropped
    rel_adders.Dpc_net.Reliable.abandoned;
  List.iter
    (fun (name, b, _) -> Report.add_series "fig11" name [ (float_of_int pairs, b) ])
    rows;
  Report.add_series "fig11" "reliable retransmit bytes"
    [ (float_of_int pairs, rel_adders.Dpc_net.Reliable.retransmit_bytes) ];
  Report.add_series "fig11" "reliable ack bytes"
    [ (float_of_int pairs, rel_adders.Dpc_net.Reliable.ack_bytes_total) ];
  let get name = List.assoc name results in
  let ad = get "Advanced" and ex = get "ExSPAN" in
  let upd_increase = 100.0 *. (float_of_int adv_updates /. float_of_int ad -. 1.0) in
  (* The update-overhead bound assumes the packet stream dwarfs the fixed
     per-update broadcast cost; at tiny scale it does not, so only the
     scheme comparison and the delivery-layer sanity apply there. *)
  let updates_ok = cfg.tiny || upd_increase < 5.0 in
  let reliable_ok =
    rel_adders.Dpc_net.Reliable.abandoned = 0
    && rel_adders.Dpc_net.Reliable.retransmits > 0
    && adv_reliable > ad
  in
  shape_check "fig11"
    (float_of_int ad < 1.15 *. float_of_int ex && updates_ok && reliable_ok)
    (Printf.sprintf
       "Advanced within %.1f%% of ExSPAN (payload dominates); updates add %.2f%%%s (paper: 0.6%%); lossy run lost nothing"
       (100.0 *. (float_of_int ad /. float_of_int ex -. 1.0))
       upd_increase
       (if cfg.tiny then " (not checked at tiny scale)" else ""))

(* ------------------------------------------------------------------ *)
(* Figure 12: CDF of provenance query latency. *)

let fig12 cfg =
  header "12" "CDF of provenance query latency (emulation cost model)";
  let pairs = if cfg.paper_scale then 100 else 30 in
  let queries = 100 in
  Printf.printf "workload: %d pairs, %d random queries, LAN hop latency + processing costs\n"
    pairs queries;
  let latencies scheme =
    let d, _, _, rng =
      forwarding_run cfg ~scheme ~pairs ~rate:5.0 ~duration:2.0 ~payload:500 ()
    in
    Forwarding_driver.query_random_outputs d ~rng ~cost:Query_cost.emulation ~count:queries
    |> List.map (fun (r : Query_result.t) -> r.latency *. 1000.0)
  in
  let per_scheme = List.map (fun s -> (s, latencies s)) schemes in
  Table_fmt.print
    ~header:[ "scheme"; "mean (ms)"; "median (ms)"; "p90 (ms)"; "max (ms)" ]
    ~rows:
      (List.map
         (fun (s, ls) ->
           [
             scheme_label s;
             Printf.sprintf "%.1f" (Stats.mean ls);
             Printf.sprintf "%.1f" (Stats.median ls);
             Printf.sprintf "%.1f" (Stats.percentile ls 90.0);
             Printf.sprintf "%.1f" (Stats.maximum ls);
           ])
         per_scheme);
  let mean s = Stats.mean (List.assoc s per_scheme) in
  let ratio = mean Backend.S_exspan /. mean Backend.S_basic in
  shape_check "fig12"
    (ratio > 1.8 && mean Backend.S_advanced < mean Backend.S_exspan)
    (Printf.sprintf "ExSPAN/Basic mean ratio %.2fx (paper: ~3x; 75ms vs 25.5ms)" ratio)

(* ------------------------------------------------------------------ *)
(* Figure 13: CDF of per-nameserver storage growth rate (DNS). *)

let fig13 cfg =
  header "13" "CDF of per-nameserver storage growth rate (DNS)";
  let rate = if cfg.paper_scale then 1000.0 else 200.0 in
  let duration = if cfg.paper_scale then 100.0 else 5.0 in
  Printf.printf "workload: %.0f requests/s aggregate, %.0fs, 100 servers, 38 URLs (Zipf)\n"
    rate duration;
  let rates_of scheme =
    let t, injected, _ = dns_run cfg ~scheme ~urls:38 ~rate ~duration () in
    Report.add_events "fig13" injected;
    Measure.per_node_rates ~backend:t.backend ~nodes:100 ~duration
  in
  let per_scheme = List.map (fun s -> (s, rates_of s)) schemes in
  cdf_table (List.map (fun (s, rates) -> cdf_row (scheme_label s) rates) per_scheme);
  let p80 s = Stats.percentile (List.assoc s per_scheme) 80.0 in
  let reduction = p80 Backend.S_exspan /. max 1.0 (p80 Backend.S_advanced) in
  shape_check "fig13"
    (p80 Backend.S_basic <= p80 Backend.S_exspan && reduction > 2.0)
    (Printf.sprintf "p80 ExSPAN/Advanced = %.1fx (paper: ~4x; 476 vs 121 Kbps)" reduction)

(* ------------------------------------------------------------------ *)
(* Figure 14: DNS storage vs number of URLs, fixed 200 requests. *)

let fig14 cfg =
  header "14" "DNS storage vs number of requested URLs (200 requests total)";
  let url_counts = if cfg.paper_scale then [ 5; 10; 20; 30; 38 ] else [ 5; 10; 20; 30; 38 ] in
  let storage scheme urls =
    let t, injected, _ = dns_run cfg ~scheme ~urls ~rate:0.0 ~duration:5.0 ~total:200 () in
    Report.add_events "fig14" injected;
    Measure.total_provenance_bytes t.backend
  in
  let results =
    List.map (fun urls -> (urls, List.map (fun s -> (s, storage s urls)) schemes)) url_counts
  in
  List.iter
    (fun s ->
      Report.add_series "fig14" (scheme_label s)
        (List.map (fun (urls, ps) -> (float_of_int urls, List.assoc s ps)) results))
    schemes;
  Table_fmt.print
    ~header:("URLs" :: List.map scheme_label schemes)
    ~rows:
      (List.map
         (fun (urls, per_scheme) ->
           string_of_int urls :: List.map (fun (_, b) -> Table_fmt.human_bytes b) per_scheme)
         results);
  let series scheme = List.map (fun (_, ps) -> List.assoc scheme ps) results in
  let ex = series Backend.S_exspan and ad = series Backend.S_advanced in
  let ex_spread =
    float_of_int (List.fold_left max 0 ex) /. float_of_int (max 1 (List.fold_left min max_int ex))
  in
  let ad_grows = List.nth ad (List.length ad - 1) > List.hd ad in
  shape_check "fig14"
    (ex_spread < 1.5 && ad_grows && List.for_all2 ( > ) ex ad)
    (Printf.sprintf "ExSPAN spread x%.2f (flat); Advanced grows with URLs yet stays lowest"
       ex_spread)

(* ------------------------------------------------------------------ *)
(* Figure 15: DNS bandwidth with continuous requests. *)

let fig15 cfg =
  header "15" "Bandwidth for DNS resolution (continuous requests)";
  let total = if cfg.paper_scale then 100_000 else 5_000 in
  let duration = if cfg.paper_scale then 100.0 else 10.0 in
  Printf.printf "workload: %d requests over %.0fs\n" total duration;
  let run scheme =
    let t, injected, _ =
      dns_run cfg ~scheme ~urls:38 ~rate:0.0 ~duration ~total ~bucket_width:1.0
        ~record_outputs:false ()
    in
    Report.add_events "fig15" injected;
    (Dpc_net.Sim.total_bytes t.sim, Measure.bandwidth_series t.sim)
  in
  let results = List.map (fun s -> (s, run s)) schemes in
  Table_fmt.print
    ~header:[ "scheme"; "total bytes"; "mean bandwidth" ]
    ~rows:
      (List.map
         (fun (s, (total_bytes, _)) ->
           [
             scheme_label s;
             Table_fmt.human_bytes total_bytes;
             Table_fmt.human_rate (float_of_int total_bytes /. duration);
           ])
         results);
  let bytes s = float_of_int (fst (List.assoc s results)) in
  let overhead = 100.0 *. (bytes Backend.S_advanced /. bytes Backend.S_exspan -. 1.0) in
  shape_check "fig15"
    (bytes Backend.S_basic < 1.1 *. bytes Backend.S_exspan && overhead > 5.0 && overhead < 80.0)
    (Printf.sprintf
       "Advanced uses %.0f%% more bandwidth than ExSPAN (paper: ~25%%; meta dominates payload-less requests)"
       overhead)

(* ------------------------------------------------------------------ *)
(* Figure 16: DNS storage growth over time. *)

let fig16 cfg =
  header "16" "DNS provenance storage growth over time";
  let rate = if cfg.paper_scale then 1000.0 else 200.0 in
  let duration = if cfg.paper_scale then 100.0 else 10.0 in
  let every = if cfg.paper_scale then 10.0 else 1.0 in
  Printf.printf "workload: %.0f requests/s, %.0fs, snapshots every %.0fs\n" rate duration every;
  let runs =
    List.map
      (fun scheme ->
        let _, injected, series =
          dns_run cfg ~scheme ~urls:38 ~rate ~duration ~snapshots_every:every
            ~record_outputs:false ()
        in
        Report.add_events "fig16" injected;
        Report.add_series "fig16" (scheme_label scheme) !series;
        (scheme, !series))
      schemes
  in
  let times = List.map fst (snd (List.hd runs)) in
  Table_fmt.print
    ~header:("t (s)" :: List.map (fun (s, _) -> scheme_label s) runs)
    ~rows:
      (List.mapi
         (fun i t ->
           Printf.sprintf "%.0f" t
           :: List.map (fun (_, series) -> Table_fmt.human_bytes (snd (List.nth series i))) runs)
         times);
  let growth scheme =
    let series = List.assoc scheme runs in
    float_of_int (snd (List.nth series (List.length series - 1))) /. duration
  in
  let gx = growth Backend.S_exspan and gb = growth Backend.S_basic and ga = growth Backend.S_advanced in
  List.iter
    (fun (name, g) ->
      Printf.printf "%-10s grows at %s; would fill a 1TB disk in %.1f days\n" name
        (Table_fmt.human_rate g)
        (1e12 /. g /. 86400.0))
    [ ("ExSPAN", gx); ("Basic", gb); ("Advanced", ga) ];
  shape_check "fig16"
    (gb < gx && ga < gb)
    (Printf.sprintf "growth %s / %s / %s (paper: 13.15 / 11.57 / 3.81 Mbps)"
       (Table_fmt.human_rate gx) (Table_fmt.human_rate gb) (Table_fmt.human_rate ga))

(* ------------------------------------------------------------------ *)
(* Ablation: §5.4 inter-class compression. *)

let ablation_interclass cfg =
  header "A1 (ablation)" "Inter-equivalence-class compression (§5.4)";
  (* Many clients requesting the same URLs: every (client, URL) pair is its
     own equivalence class, but all classes for one URL share the whole
     server-side chain — exactly the §5.4 sharing opportunity. *)
  let rng = Rng.create ~seed:cfg.seed in
  let spec = Dns_workload.generate ~rng ~servers:60 ~backbone_depth:15 ~urls:5 ~clients:10 in
  let run scheme =
    let rng = Rng.create ~seed:(cfg.seed + 1) in
    let t = Dns_workload.setup ~scheme spec () in
    ignore (Dns_workload.inject_n_requests t ~rng ~total:500 ~duration:5.0);
    Dns_workload.run t;
    let s = Backend.total_storage t.backend in
    (Rows.provenance_bytes s, s.rule_exec_rows)
  in
  let plain_bytes, plain_rows = run Backend.S_advanced in
  let inter_bytes, inter_rows = run Backend.S_advanced_interclass in
  Table_fmt.print
    ~header:[ "variant"; "prov+ruleExec bytes"; "ruleExec rows" ]
    ~rows:
      [
        [ "Advanced (intra-class only)"; Table_fmt.human_bytes plain_bytes; string_of_int plain_rows ];
        [ "Advanced + inter-class"; Table_fmt.human_bytes inter_bytes; string_of_int inter_rows ];
      ];
  shape_check "ablation-interclass" (inter_bytes < plain_bytes)
    (Printf.sprintf "inter-class saves %.1f%% on crossing DNS traffic"
       (100.0 *. (1.0 -. (float_of_int inter_bytes /. float_of_int plain_bytes))))

(* ------------------------------------------------------------------ *)
(* Ablation: cross-program compression (§8 future work). *)

let ablation_cross_program cfg =
  header "A2 (ablation)" "Cross-program compression (§8 future work)";
  (* Packet forwarding and the mirroring protocol share Fig 1's forwarding
     rule; both observe the same packet stream over the same routes. *)
  let ts, routing, rng = transit_stub cfg in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:20 in
  let fwd_delp = Dpc_apps.Forwarding.delp () in
  let mirror_delp = Dpc_apps.Mirror.delp () in
  let routes = Dpc_apps.Forwarding.routes_for_pairs routing pairs in
  let inject rt =
    List.iteri
      (fun i (src, dst) ->
        for seq = 0 to 49 do
          Dpc_engine.Runtime.inject rt ~delay:(float_of_int seq *. 0.1)
            (Dpc_apps.Forwarding.packet ~src ~dst ~payload:(Printf.sprintf "p%d-%d" i seq))
        done)
      pairs
  in
  (* Shared store hosting both programs. *)
  let sim = Dpc_net.Sim.create ~topology:ts.topology ~routing () in
  let store = Store_multi.create ~nodes:100 in
  let fwd = Store_multi.add_program store ~id:"forwarding" ~delp:fwd_delp ~env:Dpc_engine.Env.empty in
  let mirror = Store_multi.add_program store ~id:"mirror" ~delp:mirror_delp ~env:Dpc_engine.Env.empty in
  let transport = Dpc_net.Transport.of_sim sim in
  let fwd_rt =
    Dpc_engine.Runtime.create ~transport ~delp:fwd_delp ~env:Dpc_engine.Env.empty
      ~hook:(Store_multi.hook fwd) ~nodes:(Store_multi.nodes store) ()
  in
  let mirror_rt =
    Dpc_engine.Runtime.create ~transport ~delp:mirror_delp ~env:Dpc_engine.Env.empty
      ~hook:(Store_multi.hook mirror) ~nodes:(Store_multi.nodes store) ()
  in
  Dpc_engine.Runtime.load_slow fwd_rt routes;
  Dpc_engine.Runtime.load_slow mirror_rt routes;
  inject fwd_rt;
  inject mirror_rt;
  Dpc_net.Sim.run sim;
  let shared_bytes = Rows.provenance_bytes (Store_multi.total_storage store) in
  (* The same workload in two isolated Advanced+interclass stores. *)
  let isolated delp =
    let sim = Dpc_net.Sim.create ~topology:ts.topology ~routing () in
    let backend = Backend.make Backend.S_advanced_interclass ~delp ~env:Dpc_engine.Env.empty ~nodes:100 in
    let rt =
      Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
        ~env:Dpc_engine.Env.empty ~hook:(Backend.hook backend)
        ~nodes:(Backend.nodes backend) ()
    in
    Dpc_engine.Runtime.load_slow rt routes;
    inject rt;
    Dpc_net.Sim.run sim;
    Rows.provenance_bytes (Backend.total_storage backend)
  in
  let separate_bytes = isolated fwd_delp + isolated mirror_delp in
  Table_fmt.print
    ~header:[ "deployment"; "prov+ruleExec bytes" ]
    ~rows:
      [
        [ "two isolated Advanced+interclass stores"; Table_fmt.human_bytes separate_bytes ];
        [ "one shared cross-program store"; Table_fmt.human_bytes shared_bytes ];
      ];
  shape_check "ablation-cross-program" (shared_bytes < separate_bytes)
    (Printf.sprintf "sharing the forwarding rule saves %.1f%%"
       (100.0 *. (1.0 -. (float_of_int shared_bytes /. float_of_int separate_bytes))))

(* ------------------------------------------------------------------ *)
(* Ablation: reactive maintenance by replay (§3.2 / DTaP), the storage vs
   query-latency trade. *)

let ablation_replay cfg =
  header "A3 (ablation)" "Reactive maintenance by replay (§3.2): storage vs query latency";
  let ts, routing, rng = transit_stub cfg in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:10 in
  let delp = Dpc_apps.Forwarding.delp () in
  let routes = Dpc_apps.Forwarding.routes_for_pairs routing pairs in
  let inject rt =
    List.iteri
      (fun i (src, dst) ->
        for seq = 0 to 19 do
          Dpc_engine.Runtime.inject rt ~delay:(float_of_int seq *. 0.1)
            (Dpc_apps.Forwarding.packet ~src ~dst
               ~payload:(Printf.sprintf "p%d-%d" i seq))
        done)
      pairs
  in
  (* One run per scheme; replay rides along with the Advanced run. *)
  let replay = Replay.create ~delp ~env:Dpc_apps.Forwarding.env ~nodes:100 in
  let run scheme ~with_replay =
    let sim = Dpc_net.Sim.create ~topology:ts.topology ~routing () in
    let backend = Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:100 in
    let hook =
      if with_replay then Replay.combine (Backend.hook backend) (Replay.hook replay)
      else Backend.hook backend
    in
    let rt =
      Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
        ~env:Dpc_apps.Forwarding.env ~hook ~nodes:(Backend.nodes backend) ()
    in
    Dpc_engine.Runtime.load_slow rt routes;
    if with_replay then Replay.record_initial_slow replay routes;
    inject rt;
    Dpc_net.Sim.run sim;
    (backend, List.map fst (Dpc_engine.Runtime.outputs rt))
  in
  let sample_queries backend outputs =
    let arr = Array.of_list outputs in
    let g = Rng.create ~seed:7 in
    List.init 10 (fun _ ->
      (Backend.query backend ~cost:Query_cost.emulation ~routing (Rng.pick g arr)).latency
      *. 1000.0)
  in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      let with_replay = scheme = Backend.S_advanced in
      let backend, outputs = run scheme ~with_replay in
      let latencies = sample_queries backend outputs in
      rows :=
        [
          Backend.scheme_name scheme;
          Table_fmt.human_bytes (Rows.provenance_bytes (Backend.total_storage backend));
          Printf.sprintf "%.1f" (Stats.mean latencies);
        ]
        :: !rows;
      if with_replay then begin
        let arr = Array.of_list outputs in
        let g = Rng.create ~seed:7 in
        let replay_latencies =
          List.init 3 (fun _ ->
            (Replay.replay_and_query replay ~topology:ts.topology (Rng.pick g arr)).latency
            *. 1000.0)
        in
        rows :=
          [
            "Replay log (§3.2)";
            Table_fmt.human_bytes (Replay.storage_bytes replay);
            Printf.sprintf "%.1f" (Stats.mean replay_latencies);
          ]
          :: !rows
      end)
    schemes;
  Table_fmt.print ~header:[ "strategy"; "storage"; "mean query latency (ms)" ]
    ~rows:(List.rev !rows);
  print_endline
    "(the log stores only input events; queries pay a full re-execution on top of the lookup)"

(* ------------------------------------------------------------------ *)
(* Ablation: runtime computation overhead of provenance maintenance (the
   paper claims "negligible network overhead added to each monitored
   network application at runtime"; this measures the computational side —
   wall-clock per event with each scheme versus no provenance at all). *)

let ablation_overhead cfg =
  header "A4 (ablation)" "Runtime overhead of provenance maintenance";
  let ts, routing, rng = transit_stub cfg in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:20 in
  let delp = Dpc_apps.Forwarding.delp () in
  let routes = Dpc_apps.Forwarding.routes_for_pairs routing pairs in
  let events = 4000 in
  let run hook =
    let sim = Dpc_net.Sim.create ~topology:ts.topology ~routing () in
    let rt =
      Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
        ~env:Dpc_apps.Forwarding.env ~hook ()
    in
    Dpc_engine.Runtime.load_slow rt routes;
    let pair_arr = Array.of_list pairs in
    for seq = 0 to events - 1 do
      let src, dst = pair_arr.(seq mod Array.length pair_arr) in
      Dpc_engine.Runtime.inject rt
        (Dpc_apps.Forwarding.packet ~src ~dst ~payload:(Printf.sprintf "p%d" seq))
    done;
    let t0 = Dpc_util.Clock.now () in
    Dpc_engine.Runtime.run rt;
    Dpc_util.Clock.now () -. t0
  in
  let baseline = run Dpc_engine.Prov_hook.null in
  let rows =
    ("no provenance", baseline)
    :: List.map
         (fun scheme ->
           let backend = Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:100 in
           (Backend.scheme_name scheme, run (Backend.hook backend)))
         (schemes @ [ Backend.S_advanced_interclass ])
  in
  Table_fmt.print
    ~header:[ "scheme"; "wall time"; "events/s"; "overhead vs baseline" ]
    ~rows:
      (List.map
         (fun (name, secs) ->
           [
             name;
             Printf.sprintf "%.3f s" secs;
             Printf.sprintf "%.0f" (float_of_int events /. secs);
             Printf.sprintf "%.0f%%" (100.0 *. (secs /. baseline -. 1.0));
           ])
         rows);
  let advanced = List.assoc "Advanced" rows and exspan = List.assoc "ExSPAN" rows in
  shape_check "ablation-overhead" (advanced < exspan)
    (Printf.sprintf "Advanced's runtime cost (%.0f%% over baseline) below ExSPAN's (%.0f%%)"
       (100.0 *. (advanced /. baseline -. 1.0))
       (100.0 *. (exspan /. baseline -. 1.0)))

(* ------------------------------------------------------------------ *)
(* Ablation: delta checkpoints vs full-state cuts on the Fig 8
   forwarding workload. Same world, same compaction cadence; the only
   knob is [rebase_every] (1 = serialize full node state at every cut, 8
   = ship dirty rows and rebase every 8th cut). The claim: once tables
   are large, serialized bytes per cut shrink by well over 5x. *)

let ablation_checkpoint cfg =
  header "A5 (ablation)" "Delta checkpoints vs full cuts (Fig 8 forwarding workload)";
  let pairs = if cfg.tiny then 5 else 30 in
  let rate = if cfg.tiny then 5.0 else 20.0 in
  (* Twice the Fig 8 window: full cuts grow with accumulated state while
     deltas stay O(changes), so the gap needs room to open. *)
  let duration = if cfg.tiny then 2.0 else 10.0 in
  let ts, routing, rng = transit_stub cfg in
  let pair_list = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:pairs in
  let run scheme rebase_every =
    let sim = Dpc_net.Sim.create ~topology:ts.topology ~routing () in
    let crashable, control =
      Dpc_net.Transport.crashable (Dpc_net.Transport.of_sim sim)
    in
    let d =
      Forwarding_driver.setup_on ~transport:crashable ~scheme ~routing ~pairs:pair_list
        ~record_outputs:false ()
    in
    let durable =
      Durable.attach ~backend:d.backend ~runtime:d.runtime ~control
        ~config:{ Durable.checkpoint_every = (if cfg.tiny then 8 else 32); rebase_every } ()
    in
    let injected =
      Forwarding_driver.inject_stream d ~rate_per_pair:rate ~duration ~payload_size:500
    in
    Forwarding_driver.run d;
    (* Count only nodes that compacted beyond the attach-time checkpoint
       0 — idle transit nodes would otherwise swamp the average with
       empty full cuts (identical under both configs). *)
    let cuts = ref 0 and bytes = ref 0 and dcuts = ref 0 and dbytes = ref 0 in
    for n = 0 to Array.length (Backend.nodes d.backend) - 1 do
      let s = Durable.node_stats durable n in
      if s.checkpoints >= 2 then begin
        cuts := !cuts + s.checkpoints;
        bytes := !bytes + s.checkpoint_bytes;
        dcuts := !dcuts + s.delta_cuts;
        dbytes := !dbytes + s.delta_bytes
      end
    done;
    (injected, !cuts, !bytes, !dcuts, !dbytes)
  in
  let measurements =
    List.map
      (fun scheme ->
        let injected, fo_cuts, fo_bytes, _, _ = run scheme 1 in
        let _, cuts, bytes, dcuts, dbytes = run scheme 8 in
        Report.add_events "ablation_checkpoint" injected;
        (* Within the delta run: average full rebase vs average delta. *)
        let full_avg = float_of_int (bytes - dbytes) /. float_of_int (max 1 (cuts - dcuts)) in
        let delta_avg = float_of_int dbytes /. float_of_int (max 1 dcuts) in
        let blended_full = float_of_int fo_bytes /. float_of_int (max 1 fo_cuts) in
        let blended_delta = float_of_int bytes /. float_of_int (max 1 cuts) in
        (scheme, dcuts, full_avg, delta_avg, blended_full /. blended_delta))
      schemes
  in
  Table_fmt.print
    ~header:
      [ "scheme"; "delta cuts"; "full bytes/cut"; "delta bytes/cut"; "shrink";
        "total vs full-only" ]
    ~rows:
      (List.map
         (fun (scheme, dcuts, full_avg, delta_avg, blended) ->
           [
             scheme_label scheme;
             string_of_int dcuts;
             Table_fmt.human_bytes (int_of_float full_avg);
             Table_fmt.human_bytes (int_of_float delta_avg);
             Printf.sprintf "%.1fx" (full_avg /. delta_avg);
             Printf.sprintf "%.1fx" blended;
           ])
         measurements);
  List.iteri
    (fun i (scheme, _, full_avg, delta_avg, _) ->
      Report.add_series "ablation_checkpoint"
        (scheme_label scheme ^ " bytes per cut")
        [ (float_of_int i, int_of_float full_avg);
          (float_of_int i +. 0.5, int_of_float delta_avg) ])
    measurements;
  let ratios =
    List.map (fun (_, _, full_avg, delta_avg, _) -> full_avg /. delta_avg) measurements
  in
  let worst = List.fold_left Float.min infinity ratios in
  shape_check "ablation-checkpoint"
    (worst >= 5.0)
    (Printf.sprintf "bytes per cut shrink %.1fx-%.1fx (full -> delta), every scheme >= 5x"
       worst
       (List.fold_left Float.max 0.0 ratios))

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Metrics registry dump: the 3-node quickstart forwarding workload under
   both transports. The sim-backed run and the zero-latency direct run
   process the same events, so the runtime.* and store.* counters must
   agree; only shipped bytes differ (the direct backend charges each
   message once instead of per hop). *)

let metrics_report _cfg =
  header "metrics" "Per-node metrics registry (quickstart under both transports)";
  let delp = Dpc_apps.Forwarding.delp () in
  let run transport =
    let backend =
      Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env
        ~nodes:(Dpc_net.Transport.nodes transport)
    in
    let rt =
      Dpc_engine.Runtime.create ~transport ~delp ~env:Dpc_apps.Forwarding.env
        ~hook:(Backend.hook backend) ~nodes:(Backend.nodes backend) ()
    in
    Dpc_engine.Runtime.load_slow rt
      [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
        Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ];
    for seq = 0 to 9 do
      Dpc_engine.Runtime.inject rt
        (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "p%d" seq))
    done;
    Dpc_engine.Runtime.run rt;
    rt
  in
  let sim_transport =
    let topo = Dpc_net.Topology.create ~n:3 in
    let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e9 } in
    Dpc_net.Topology.add_link topo 0 1 l;
    Dpc_net.Topology.add_link topo 1 2 l;
    Dpc_net.Transport.of_sim
      (Dpc_net.Sim.create ~topology:topo ~routing:(Dpc_net.Routing.compute topo) ())
  in
  List.iter
    (fun transport ->
      let rt = run transport in
      Printf.printf "\n-- transport: %s --\n" (Dpc_net.Transport.name transport);
      Table_fmt.print ~header:[ "metric"; "kind"; "value" ] ~rows:(Measure.metrics_rows rt))
    [ sim_transport; Dpc_net.Transport.direct ~nodes:3 () ]

(* ------------------------------------------------------------------ *)
(* Crash-fault tolerance (not a paper figure: §6 assumes fault-free runs).
   The quickstart forwarding pipeline under a seeded schedule of
   whole-node crashes with durable recovery (Durable WAL + checkpoints),
   against the same pipeline bare. Reports: the journaling overhead in
   wall clock and bytes, per-node crash.* counters, and a query fired
   mid-outage that must degrade (partial, bounded) instead of hanging. *)

let fig_crash cfg =
  header "crash" "crash-fault tolerance: WAL overhead, recovery, degraded queries";
  let nodes = 3 in
  let packets = if cfg.tiny then 60 else if cfg.paper_scale then 4000 else 600 in
  let spacing = 0.01 in
  let window = float_of_int packets *. spacing in
  let delp = Dpc_apps.Forwarding.delp () in
  let routes =
    [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
      Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ]
  in
  let routing =
    let topo = Dpc_net.Topology.create ~n:nodes in
    let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e9 } in
    Dpc_net.Topology.add_link topo 0 1 l;
    Dpc_net.Topology.add_link topo 1 2 l;
    Dpc_net.Routing.compute topo
  in
  let build () =
    let crashable, control =
      Dpc_net.Transport.crashable (Dpc_net.Transport.direct ~nodes ())
    in
    let backend =
      Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env ~nodes
    in
    let runtime =
      Dpc_engine.Runtime.create ~transport:crashable
        ~reliable:Dpc_net.Reliable.default_config ~delp ~env:Dpc_apps.Forwarding.env
        ~hook:(Backend.hook backend) ~nodes:(Backend.nodes backend)
        ~record_outputs:false ()
    in
    Dpc_engine.Runtime.load_slow runtime routes;
    (backend, runtime, control)
  in
  let inject runtime =
    for i = 0 to packets - 1 do
      Dpc_engine.Runtime.inject runtime
        ~delay:(float_of_int i *. spacing)
        (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "p%d" i))
    done
  in
  let timed_run runtime =
    let t0 = Dpc_util.Clock.now () in
    Dpc_engine.Runtime.run runtime;
    Dpc_util.Clock.now () -. t0
  in
  (* Baseline: same transport stack, durability off, no crashes. *)
  let _, bare_runtime, _ = build () in
  inject bare_runtime;
  let bare_wall = timed_run bare_runtime in
  let bare_outputs = (Dpc_engine.Runtime.stats bare_runtime).outputs in
  (* Durable run under a seeded crash schedule covering most of the
     injection window; downtimes stay far below the retry budget. *)
  let backend, runtime, control = build () in
  let durable =
    Durable.attach ~backend ~runtime ~control
      ~config:{ Durable.checkpoint_every = 32; rebase_every = 8 } ()
  in
  inject runtime;
  let schedule =
    Durable.random_schedule ~seed:cfg.seed ~nodes ~count:4 ~horizon:(window *. 0.8)
      ~min_down:(10.0 *. spacing) ~max_down:(40.0 *. spacing)
  in
  Durable.schedule durable schedule;
  (* Fire a provenance query from inside every outage: each must come
     back promptly, marked partial. (The crash.queries_degraded ticks of
     queries whose querier crashes again later are wiped with that node's
     registry — store counters are volatile by design.) *)
  let mid_outage = ref [] in
  List.iter
    (fun (_, at, downtime) ->
      Dpc_net.Transport.schedule
        (Dpc_engine.Runtime.transport runtime)
        ~delay:(at +. (downtime /. 2.0))
        (fun () ->
          let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"p0" in
          mid_outage :=
            Backend.query backend ~cost:Query_cost.simulation ~routing
              ~up:(Durable.is_up durable) out
            :: !mid_outage))
    schedule;
  let wall = timed_run runtime in
  let outputs = (Dpc_engine.Runtime.stats runtime).outputs in
  Printf.printf
    "workload: %d packets over %.0fs (sim), %d scheduled outages, checkpoint every 32 entries\n"
    packets window (List.length schedule);
  List.iter
    (fun (node, at, downtime) ->
      Printf.printf "  outage: node %d down %.2fs-%.2fs\n" node at (at +. downtime))
    schedule;
  let stats = List.init nodes (fun n -> (n, Durable.node_stats durable n)) in
  let degraded n =
    Dpc_util.Metrics.counter_value
      (Dpc_engine.Node.metrics (Backend.nodes backend).(n))
      "crash.queries_degraded"
  in
  Table_fmt.print
    ~header:
      [ "node"; "crashes"; "checkpoints"; "ckpt bytes"; "wal entries"; "wal bytes";
        "recovery ms"; "queries degraded" ]
    ~rows:
      (List.map
         (fun (n, (s : Durable.node_stats)) ->
           [
             string_of_int n;
             string_of_int s.crashes;
             string_of_int s.checkpoints;
             Table_fmt.human_bytes s.checkpoint_bytes;
             string_of_int s.wal_entries;
             Table_fmt.human_bytes s.wal_bytes;
             string_of_int s.recovery_ms;
             string_of_int (degraded n);
           ])
         stats);
  let total f = List.fold_left (fun acc (_, s) -> acc + f s) 0 stats in
  let wal_bytes = total (fun (s : Durable.node_stats) -> s.wal_bytes) in
  let prov_bytes = Measure.total_provenance_bytes backend in
  Printf.printf "journal: %s for %s of provenance (%.1fx); wall %.3fs vs %.3fs bare (+%.0f%%)\n"
    (Table_fmt.human_bytes wal_bytes)
    (Table_fmt.human_bytes prov_bytes)
    (float_of_int wal_bytes /. float_of_int (max 1 prov_bytes))
    wall bare_wall
    (100.0 *. ((wall /. Float.max 1e-9 bare_wall) -. 1.0));
  shape_check "crash-lossless"
    (outputs = bare_outputs && bare_outputs = packets)
    (Printf.sprintf "%d/%d packets delivered across %d crashes" outputs packets
       (total (fun (s : Durable.node_stats) -> s.crashes)));
  (match !mid_outage with
  | [] -> shape_check "crash-degraded-query" false "no outage was scheduled"
  | rs ->
      shape_check "crash-degraded-query"
        (List.for_all (fun r -> (not r.Query_result.complete) && r.latency < 60.0) rs)
        (Printf.sprintf "%d mid-outage queries, all partial, slowest %.2fs (bounded)"
           (List.length rs)
           (List.fold_left (fun acc r -> Float.max acc r.Query_result.latency) 0.0 rs)));
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"p0" in
  let healed =
    Backend.query backend ~cost:Query_cost.simulation ~routing ~up:(Durable.is_up durable) out
  in
  shape_check "crash-recovered"
    (healed.Query_result.complete && healed.trees <> [])
    "post-recovery query complete and non-empty";
  Report.add_events "crash" packets;
  let per_node f = List.map (fun (n, s) -> (float_of_int n, f s)) stats in
  Report.add_series "crash" "crashes" (per_node (fun (s : Durable.node_stats) -> s.crashes));
  Report.add_series "crash" "checkpoints"
    (per_node (fun (s : Durable.node_stats) -> s.checkpoints));
  Report.add_series "crash" "wal bytes" (per_node (fun (s : Durable.node_stats) -> s.wal_bytes));
  Report.add_series "crash" "checkpoint bytes"
    (per_node (fun (s : Durable.node_stats) -> s.checkpoint_bytes));
  Report.add_series "crash" "queries degraded"
    (List.map (fun (n, _) -> (float_of_int n, degraded n)) stats);
  Report.add_series "crash" "suppressed deliveries"
    [ (0.0, Atomic.get control.Dpc_net.Transport.crash_stats.suppressed) ];
  (* Wall-clock derived, stripped by the CI determinism diff. *)
  Report.add_series "crash" "recovery ms"
    (per_node (fun (s : Durable.node_stats) -> s.recovery_ms))

(* ------------------------------------------------------------------ *)
(* Domain scaling: the forwarding workload over the sharded multicore
   transport (Shard_sim), swept over shard counts up to [cfg.domains].
   Two claims per point: (a) the digest of the run — runtime stats, total
   provenance bytes, merged metrics — is byte-identical to the 1-domain
   run (the determinism contract of lib/net/shard_sim.mli); (b) on a
   machine with enough cores, wall clock shrinks. The speedup shape check
   is core-gated: on a single-core host the parallel run only pays
   barrier overhead and the check reports the gating instead of failing. *)

let fig_scaling cfg =
  header "S" "Domain scaling: throughput and digest equality vs shard count";
  let pairs = if cfg.tiny then 4 else if cfg.paper_scale then 60 else 20 in
  let rate = if cfg.tiny then 5.0 else 20.0 in
  let duration = if cfg.tiny then 2.0 else 5.0 in
  let domain_counts =
    let rec up d = if d > cfg.domains then [] else d :: up (d * 2) in
    match up 1 with [] -> [ 1 ] | l -> l
  in
  Printf.printf "workload: %d pairs, %.0f packets/s each, %.0fs, domains %s\n" pairs rate
    duration
    (String.concat "/" (List.map string_of_int domain_counts));
  let run_at domains =
    let ts, routing, rng = transit_stub cfg in
    let pair_list = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:pairs in
    let nodes = Dpc_net.Topology.size ts.topology in
    let transport =
      Dpc_net.Shard_sim.transport
        (Dpc_net.Shard_sim.create ~latency:0.0005 ~seed:cfg.seed ~domains ~nodes ())
    in
    let d =
      Forwarding_driver.setup_on ~transport ~scheme:Backend.S_advanced ~routing
        ~pairs:pair_list ~record_outputs:false ()
    in
    let injected = Forwarding_driver.inject_stream d ~rate_per_pair:rate ~duration ~payload_size:500 in
    let t0 = Unix.gettimeofday () in
    Forwarding_driver.run d;
    let wall = Unix.gettimeofday () -. t0 in
    let digest =
      ( Dpc_engine.Runtime.stats d.Forwarding_driver.runtime,
        Measure.total_provenance_bytes d.Forwarding_driver.backend,
        Dpc_engine.Runtime.metrics_snapshot d.Forwarding_driver.runtime )
    in
    Report.add_events "scaling" injected;
    (injected, wall, digest)
  in
  let results = List.map (fun domains -> (domains, run_at domains)) domain_counts in
  let _, (_, wall1, digest1) = List.hd results in
  Table_fmt.print
    ~header:[ "domains"; "wall (s)"; "events/s"; "speedup"; "digest" ]
    ~rows:
      (List.map
         (fun (domains, (injected, wall, digest)) ->
           [
             string_of_int domains;
             Printf.sprintf "%.3f" wall;
             Printf.sprintf "%.0f" (float_of_int injected /. wall);
             Printf.sprintf "%.2fx" (wall1 /. wall);
             (if digest = digest1 then "= sequential" else "DIVERGED");
           ])
         results);
  Report.add_series "scaling" "events_per_s_by_domains"
    (List.map
       (fun (domains, (injected, wall, _)) ->
         (float_of_int domains, int_of_float (float_of_int injected /. wall)))
       results);
  let all_equal = List.for_all (fun (_, (_, _, d)) -> d = digest1) results in
  shape_check "scaling-digests" all_equal
    (Printf.sprintf "every shard count reproduces the 1-domain digest (%d points)"
       (List.length results));
  let cores = Domain.recommended_domain_count () in
  let top_domains, (_, top_wall, _) = List.nth results (List.length results - 1) in
  let speedup = wall1 /. top_wall in
  if cores >= 4 && top_domains >= 4 then
    shape_check "scaling-speedup" (speedup >= 1.6)
      (Printf.sprintf "%d domains: %.2fx over sequential on %d cores" top_domains speedup cores)
  else
    Printf.printf
      "SHAPE CHECK [scaling-speedup]: SKIPPED (%d core(s) available; %.2fx at %d domains is \
       barrier overhead, not parallelism)\n"
      cores speedup top_domains

(* ------------------------------------------------------------------ *)
(* Query serving tier (not a paper figure): the memoized re-execution
   cache under a Zipfian query storm. Three storms per scheme over one
   forwarding world — cache off (baseline), cold cache (populates; its
   hit rate is the steady-state claim), warm cache (repeat of the same
   seeded storm; its p99 is the speedup claim) — then two liveness
   phases on the Advanced scheme: a storm open-loop-scheduled against a
   still-ingesting run, and a storm across crash windows riding the
   degraded [?up] path. All latencies are modeled (Query_cost), so the
   series are deterministic and the bench gate can pin them. *)

let fig_queries cfg =
  header "Q" "Query serving tier: memoized re-execution under a Zipfian query storm";
  let pairs = if cfg.tiny then 5 else if cfg.paper_scale then 60 else 20 in
  let rate = if cfg.tiny then 5.0 else 20.0 in
  let duration = if cfg.tiny then 2.0 else 5.0 in
  let storm_n = if cfg.tiny then 80 else if cfg.paper_scale then 2000 else 400 in
  let storm_seed = cfg.seed + 3 in
  let dedup_targets outputs =
    let seen = Hashtbl.create 256 in
    List.filter
      (fun t -> if Hashtbl.mem seen t then false else (Hashtbl.add seen t (); true))
      outputs
    |> Array.of_list
  in
  (* Hot set scaled to the storm so the Zipf head actually repeats. *)
  let hot_set targets =
    let keep = min (Array.length targets) (max 8 (storm_n / 4)) in
    Array.sub targets 0 keep
  in
  Printf.printf
    "workload: %d pairs, %.0f packets/s each, %.0fs; storms of %d Zipfian queries (seed %d)\n"
    pairs rate duration storm_n storm_seed;
  let per_scheme =
    List.map
      (fun scheme ->
        let d, injected, _, _ =
          forwarding_run cfg ~scheme ~pairs ~rate ~duration ~payload:500 ()
        in
        Report.add_events "queries" injected;
        let targets = hot_set (dedup_targets (Forwarding_driver.received d)) in
        let storm () =
          Query_driver.storm
            (Query_driver.create ~backend:d.Forwarding_driver.backend
               ~routing:d.Forwarding_driver.routing ~targets ~seed:storm_seed ())
            ~count:storm_n ()
        in
        let off = storm () in
        let cache = Backend.attach_query_cache d.Forwarding_driver.backend in
        let cold = storm () in
        let cold_stats = Query_cache.stats cache in
        let warm = storm () in
        (scheme, Array.length targets, off, cold, cold_stats, warm))
      schemes
  in
  let hit_rate (s : Query_cache.stats) =
    float_of_int s.hits /. float_of_int (max 1 (s.hits + s.misses))
  in
  Table_fmt.print
    ~header:
      [ "scheme"; "targets"; "hit rate"; "p50 off (ms)"; "p99 off (ms)"; "p50 warm (ms)";
        "p99 warm (ms)"; "p99 speedup" ]
    ~rows:
      (List.map
         (fun (scheme, ntargets, off, _, st, warm) ->
           let po = Query_driver.percentiles_ms off
           and pw = Query_driver.percentiles_ms warm in
           [
             scheme_label scheme;
             string_of_int ntargets;
             Printf.sprintf "%.0f%%" (100.0 *. hit_rate st);
             Printf.sprintf "%.2f" po.p50;
             Printf.sprintf "%.2f" po.p99;
             Printf.sprintf "%.2f" pw.p50;
             Printf.sprintf "%.2f" pw.p99;
             Printf.sprintf "%.1fx" (po.p99 /. pw.p99);
           ])
         per_scheme);
  List.iteri
    (fun i (scheme, _, off, _, st, warm) ->
      let po = Query_driver.percentiles_ms off
      and pw = Query_driver.percentiles_ms warm in
      let x = float_of_int i in
      let us ms = int_of_float (ms *. 1000.0) in
      Report.add_series "queries" (scheme_label scheme ^ " p99 us (no cache)") [ (x, us po.p99) ];
      Report.add_series "queries" (scheme_label scheme ^ " p50 us (no cache)") [ (x, us po.p50) ];
      Report.add_series "queries" (scheme_label scheme ^ " p99 us (warm cache)") [ (x, us pw.p99) ];
      Report.add_series "queries" (scheme_label scheme ^ " p50 us (warm cache)") [ (x, us pw.p50) ];
      Report.add_series "queries"
        (scheme_label scheme ^ " hit rate %")
        [ (x, int_of_float (100.0 *. hit_rate st)) ])
    per_scheme;
  shape_check "queries-hit-rate"
    (List.for_all (fun (_, _, _, _, st, _) -> hit_rate st >= 0.5) per_scheme)
    (String.concat ", "
       (List.map
          (fun (s, _, _, _, st, _) ->
            Printf.sprintf "%s %.0f%%" (scheme_label s) (100.0 *. hit_rate st))
          per_scheme));
  shape_check "queries-speedup"
    (List.for_all
       (fun (_, _, off, _, _, warm) ->
         (Query_driver.percentiles_ms warm).p99 < (Query_driver.percentiles_ms off).p99)
       per_scheme)
    (String.concat ", "
       (List.map
          (fun (s, _, off, _, _, warm) ->
            Printf.sprintf "%s %.1fx" (scheme_label s)
              ((Query_driver.percentiles_ms off).p99 /. (Query_driver.percentiles_ms warm).p99))
          per_scheme));
  (* The cache must be invisible to results: every storm (off, cold
     populate, warm hit) sees the same completeness and emptiness. *)
  shape_check "queries-transparent"
    (List.for_all
       (fun (_, _, off, cold, _, warm) ->
         off.Query_driver.complete = cold.Query_driver.complete
         && cold.Query_driver.complete = warm.Query_driver.complete
         && off.Query_driver.empty = cold.Query_driver.empty
         && cold.Query_driver.empty = warm.Query_driver.empty)
       per_scheme)
    "off/cold/warm storms agree on complete and empty counts";
  (* Phase 2: the same storm open-loop against a run still ingesting —
     queries interleave with writes, the generation checks keep entries
     honest, and every result is complete (nothing is down). *)
  let live =
    let ts, routing, rng = transit_stub cfg in
    let pair_list = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:pairs in
    let d =
      Forwarding_driver.setup ~scheme:Backend.S_advanced ~topology:ts.topology ~routing
        ~pairs:pair_list ()
    in
    ignore (Forwarding_driver.inject_stream d ~rate_per_pair:rate ~duration ~payload_size:500);
    ignore (Backend.attach_query_cache d.Forwarding_driver.backend);
    (* Targets from a completed twin of this world: same seed, same
       topology, same injection — its outputs are this run's future. *)
    let targets =
      let d0, _, _, _ =
        forwarding_run cfg ~scheme:Backend.S_advanced ~pairs ~rate ~duration ~payload:500 ()
      in
      hot_set (dedup_targets (Forwarding_driver.received d0))
    in
    let driver =
      Query_driver.create ~backend:d.Forwarding_driver.backend
        ~routing:d.Forwarding_driver.routing ~targets ~seed:storm_seed ()
    in
    let storm_rate = float_of_int storm_n /. (duration /. 2.0) in
    let collect =
      Query_driver.schedule_storm driver ~transport:d.Forwarding_driver.transport
        ~start:(duration /. 4.0) ~rate:storm_rate ~count:storm_n ()
    in
    Forwarding_driver.run d;
    collect ()
  in
  Printf.printf
    "concurrent-with-ingest storm: %d issued, %d complete, %d empty (queried before derivation)\n"
    live.Query_driver.issued live.Query_driver.complete live.Query_driver.empty;
  Report.add_series "queries" "live storm empty"
    [ (0.0, live.Query_driver.empty) ];
  shape_check "queries-live"
    (live.Query_driver.issued = storm_n
    && live.Query_driver.partial = 0
    && live.Query_driver.complete = storm_n)
    (Printf.sprintf "%d open-loop queries during ingest, all complete, %d hit not-yet-derived outputs"
       live.Query_driver.issued live.Query_driver.empty);
  (* Phase 3: a storm across crash windows (the fig_crash world). Queries
     landing in an outage degrade via [?up] instead of hanging; the cache
     never serves an entry whose dependency is down, and Node.reset
     invalidation drops entries owned by the crashed node. *)
  let crash_outcome, crash_invalidations =
    let nodes = 3 in
    let packets = if cfg.tiny then 60 else 600 in
    let spacing = 0.01 in
    let window = float_of_int packets *. spacing in
    let delp = Dpc_apps.Forwarding.delp () in
    let routes =
      [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
        Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ]
    in
    let routing =
      let topo = Dpc_net.Topology.create ~n:nodes in
      let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e9 } in
      Dpc_net.Topology.add_link topo 0 1 l;
      Dpc_net.Topology.add_link topo 1 2 l;
      Dpc_net.Routing.compute topo
    in
    let crashable, control =
      Dpc_net.Transport.crashable (Dpc_net.Transport.direct ~nodes ())
    in
    let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env ~nodes in
    let runtime =
      Dpc_engine.Runtime.create ~transport:crashable
        ~reliable:Dpc_net.Reliable.default_config ~delp ~env:Dpc_apps.Forwarding.env
        ~hook:(Backend.hook backend) ~nodes:(Backend.nodes backend) ~record_outputs:false ()
    in
    Dpc_engine.Runtime.load_slow runtime routes;
    let durable =
      Durable.attach ~backend ~runtime ~control
        ~config:{ Durable.checkpoint_every = 32; rebase_every = 8 } ()
    in
    let cache = Backend.attach_query_cache backend in
    for i = 0 to packets - 1 do
      Dpc_engine.Runtime.inject runtime ~delay:(float_of_int i *. spacing)
        (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "p%d" i))
    done;
    Durable.schedule durable
      (Durable.random_schedule ~seed:cfg.seed ~nodes ~count:4 ~horizon:(window *. 0.8)
         ~min_down:(10.0 *. spacing) ~max_down:(40.0 *. spacing));
    (* Query the early packets: derived before the storm starts, so an
       incomplete result means a crash window, not a missing output. *)
    let targets =
      Array.init 16 (fun i ->
        Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:(Printf.sprintf "p%d" i))
    in
    let driver =
      Query_driver.create ~backend ~routing ~targets ~cost:Query_cost.simulation
        ~seed:storm_seed ()
    in
    let count = if cfg.tiny then 40 else 120 in
    let start = 20.0 *. spacing in
    let collect =
      Query_driver.schedule_storm driver
        ~transport:(Dpc_engine.Runtime.transport runtime)
        ~up:(Durable.is_up durable) ~start
        ~rate:(float_of_int count /. (window -. start)) ~count ()
    in
    Dpc_engine.Runtime.run runtime;
    (collect (), (Query_cache.stats cache).invalidations)
  in
  Printf.printf
    "crash-window storm: %d issued, %d complete, %d degraded, %d cache invalidations on reset\n"
    crash_outcome.Query_driver.issued crash_outcome.Query_driver.complete
    crash_outcome.Query_driver.partial crash_invalidations;
  Report.add_series "queries" "crash storm degraded"
    [ (0.0, crash_outcome.Query_driver.partial) ];
  let bounded =
    List.for_all (fun l -> l < 60.0) crash_outcome.Query_driver.latencies
  in
  shape_check "queries-crash-degraded"
    (crash_outcome.Query_driver.partial > 0 && bounded)
    (Printf.sprintf "%d of %d storm queries degraded inside outages, all bounded"
       crash_outcome.Query_driver.partial crash_outcome.Query_driver.issued)

(* ------------------------------------------------------------------ *)
(* Partition faults: heal latency and the retransmit storm, with and
   without backoff jitter. A star of senders all pointed at one sink is
   cut off for longer than the retry budget, so every channel suspends
   and parks its tail; on the heal they all probe, resurrect, and
   re-offer at once. Without jitter the channels move in lockstep and
   the whole backlog slams the sink in one simulated instant; the
   deterministic per-channel jitter decorrelates them. *)

let fig_partitions cfg =
  header "partitions" "link partitions: heal latency and retransmit storms";
  let senders = if cfg.tiny then 4 else if cfg.paper_scale then 64 else 16 in
  let per_sender = if cfg.tiny then 3 else 5 in
  let nodes = senders + 1 in
  let heal_at = 2.0 in
  let bytes_per_msg = 200 in
  (* Short budget so the outage comfortably outlasts it: retransmits at
     0.05 / 0.1 / 0.2 s after the first send, then the channel parks. *)
  let config jitter =
    { Dpc_net.Reliable.timeout = 0.05; backoff = 2.0; max_timeout = 0.2; max_retries = 3; jitter }
  in
  Printf.printf "workload: %d senders x %d messages into node 0, links down 0.0-%.1f s\n" senders
    per_sender heal_at;
  let run jitter =
    let inner, control = Dpc_net.Transport.partitionable (Dpc_net.Transport.direct ~nodes ()) in
    let rel = Dpc_net.Reliable.wrap ~config:(config jitter) inner in
    let tr = Dpc_net.Reliable.transport rel in
    (* Cut the whole star before any traffic moves; heal everything at
       [heal_at]. *)
    Dpc_net.Transport.schedule_plan tr control
      (Dpc_net.Transport.split_plan ~nodes ~left:[ 0 ] ~at:0.0 ~duration:heal_at);
    let delivered = ref 0 in
    let bursts : (float, int) Hashtbl.t = Hashtbl.create 64 in
    for src = 1 to senders do
      for i = 1 to per_sender do
        ignore i;
        Dpc_net.Transport.schedule tr ~delay:0.1 (fun () ->
            Dpc_net.Transport.send tr ~src ~dst:0 ~bytes:bytes_per_msg (fun () ->
                incr delivered;
                let t = Dpc_net.Transport.now tr in
                Hashtbl.replace bursts t (1 + Option.value ~default:0 (Hashtbl.find_opt bursts t))))
      done
    done;
    Dpc_net.Transport.run tr;
    let settled = Dpc_net.Transport.now tr in
    let s = Dpc_net.Reliable.stats rel in
    let peak_burst = Hashtbl.fold (fun _ n acc -> max n acc) bursts 0 in
    (settled -. heal_at, peak_burst, !delivered, s, Atomic.get control.Dpc_net.Transport.partition_stats.lost)
  in
  let heal_off, burst_off, delivered_off, s_off, lost_off = run 0.0 in
  let heal_on, burst_on, delivered_on, s_on, _ = run 0.3 in
  let row label heal burst (s : Dpc_net.Reliable.stats) =
    [
      label;
      Printf.sprintf "%.3f s" heal;
      string_of_int s.retransmits;
      Table_fmt.human_bytes s.retransmit_bytes;
      string_of_int s.probes;
      string_of_int burst;
    ]
  in
  Table_fmt.print
    ~header:[ "backoff"; "heal latency"; "retransmits"; "storm bytes"; "probes"; "peak burst" ]
    ~rows:[ row "no jitter" heal_off burst_off s_off; row "jitter 0.3" heal_on burst_on s_on ];
  Printf.printf
    "suspensions/resurrections: %d/%d without jitter, %d/%d with; %d deliveries lost on down links\n"
    s_off.suspensions s_off.resurrections s_on.suspensions s_on.resurrections lost_off;
  Report.add_events "partitions" (2 * senders * per_sender);
  Report.add_series "partitions" "heal latency (s)" [ (0.0, int_of_float (1000.0 *. heal_off)); (0.3, int_of_float (1000.0 *. heal_on)) ];
  Report.add_series "partitions" "storm bytes"
    [ (0.0, s_off.retransmit_bytes); (0.3, s_on.retransmit_bytes) ];
  Report.add_series "partitions" "peak burst" [ (0.0, burst_off); (0.3, burst_on) ];
  let total = senders * per_sender in
  shape_check "partitions"
    (delivered_off = total && delivered_on = total
    && s_off.abandoned = 0 && s_on.abandoned = 0
    && s_off.suspensions = senders
    && s_off.suspensions = s_off.resurrections
    && s_on.suspensions = s_on.resurrections
    && lost_off > 0
    && heal_off <= 1.0 && heal_on <= 1.0
    && burst_on < burst_off)
    (Printf.sprintf
       "all %d messages exactly once after heal, nothing left parked; jitter cuts the peak burst %d -> %d"
       total burst_off burst_on)

let all =
  [
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("ablation_interclass", ablation_interclass);
    ("ablation_cross_program", ablation_cross_program);
    ("ablation_replay", ablation_replay);
    ("ablation_overhead", ablation_overhead);
    ("ablation_checkpoint", ablation_checkpoint);
    ("crash", fig_crash);
    ("partitions", fig_partitions);
    ("queries", fig_queries);
    ("scaling", fig_scaling);
    ("metrics", metrics_report);
  ]
