(* Quickstart: the paper's running example, end to end.

   Builds the 3-node topology of Fig 2 (n1 -> n2 -> n3), runs the packet
   forwarding DELP of Fig 1 with provenance maintenance under each of the
   three schemes, prints the resulting relational tables (the shapes of the
   paper's Tables 1, 2 and 3), and queries the provenance of the received
   packet — reconstructing the tree of Fig 3 in every case.

     dune exec examples/quickstart.exe *)

open Dpc_core

let () =
  (* 1. The program: parse, validate, and analyze it. *)
  let delp = Dpc_apps.Forwarding.delp () in
  print_endline "The packet-forwarding DELP (paper Fig 1):";
  print_endline (Dpc_ndlog.Pretty.program_to_string delp.program);
  let keys = Dpc_analysis.Equi_keys.compute delp in
  Format.printf "\nStatic analysis: %a@." Dpc_analysis.Equi_keys.pp keys;

  (* 2. The network: n1 -- n2 -- n3 (ids 0, 1, 2). *)
  let topo = Dpc_net.Topology.create ~n:3 in
  let link = { Dpc_net.Topology.latency = 0.002; bandwidth = 50e6 /. 8.0 } in
  Dpc_net.Topology.add_link topo 0 1 link;
  Dpc_net.Topology.add_link topo 1 2 link;
  let routing = Dpc_net.Routing.compute topo in

  let run scheme =
    Printf.printf "\n----- %s -----\n" (Backend.scheme_name scheme);
    let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
    let backend = Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
    let runtime =
      Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
        ~env:Dpc_apps.Forwarding.env ~hook:(Backend.hook backend)
        ~nodes:(Backend.nodes backend) ()
    in
    (* Routing state of Fig 2: n1 and n2 forward toward n3. *)
    Dpc_engine.Runtime.load_slow runtime
      [
        Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
        Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2;
      ];
    (* The two packets of Fig 6. *)
    Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"data");
    Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"url");
    Dpc_engine.Runtime.run runtime;

    (* 3. The stored provenance tables. *)
    List.iter
      (fun (name, header, rows) ->
        Printf.printf "\n%s table:\n" name;
        Dpc_util.Table_fmt.print ~header ~rows)
      (Backend.dump backend);
    let s = Backend.total_storage backend in
    Printf.printf "\nprov+ruleExec storage: %s (%d + %d rows)\n"
      (Dpc_util.Table_fmt.human_bytes (Rows.provenance_bytes s))
      s.prov_rows s.rule_exec_rows;

    (* 4. Query the provenance of recv(@n3, n1, n3, "data") — Fig 3. *)
    let output = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"data" in
    let result = Backend.query backend ~cost:Query_cost.emulation ~routing output in
    Format.printf "\nProvenance of %a (query latency %.1f ms):@."
      Dpc_ndlog.Tuple.pp output (result.latency *. 1000.0);
    List.iter (fun tree -> Format.printf "%a@." Prov_tree.pp tree) result.trees
  in
  List.iter run [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced ]
