(* Tests for dpc_util: SHA-1 vectors, heap ordering, RNG determinism,
   Zipf distribution, serializer round-trips, statistics. *)

open Dpc_util

let check = Alcotest.check
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* SHA-1 *)

let sha1_hex s = Sha1.to_hex (Sha1.digest_string s)

(* Reference vectors from RFC 3174 and FIPS 180-1. *)
let test_sha1_vectors () =
  checks "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (sha1_hex "");
  checks "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (sha1_hex "abc");
  checks "two-block"
    "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (sha1_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  checks "million-a"
    "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (sha1_hex (String.make 1_000_000 'a'))

let test_sha1_block_boundaries () =
  (* Lengths straddling the 55/56/64-byte padding boundaries. *)
  checks "55 bytes" "c1c8bbdc22796e28c0e15163d20899b65621d65a"
    (sha1_hex (String.make 55 'a'));
  checks "56 bytes" "c2db330f6083854c99d4b5bfb6e8f29f201be699"
    (sha1_hex (String.make 56 'a'));
  checks "64 bytes" "0098ba824b5c16427bd7a1122a5a442a25ec644d"
    (sha1_hex (String.make 64 'a'))

let test_sha1_concat () =
  check Alcotest.bool "separator disambiguates" false
    (Sha1.equal (Sha1.digest_concat [ "ab"; "c" ]) (Sha1.digest_concat [ "a"; "bc" ]));
  checks "concat = joined" (Sha1.to_hex (Sha1.digest_string "r1+n1+v2"))
    (Sha1.to_hex (Sha1.digest_concat [ "r1"; "n1"; "v2" ]))

let test_sha1_raw_roundtrip () =
  let d = Sha1.digest_string "roundtrip" in
  check Alcotest.bool "of_raw . to_raw = id" true (Sha1.equal d (Sha1.of_raw (Sha1.to_raw d)));
  Alcotest.check_raises "of_raw rejects short input"
    (Invalid_argument "Sha1.of_raw: expected 20 bytes") (fun () ->
      ignore (Sha1.of_raw "short"))

(* The streaming feeder must agree with the one-shot digest no matter how
   the message is cut, including cuts straddling the 64-byte block
   boundary and messages landing on every padding edge. *)
let test_sha1_digest_iter () =
  let lengths = [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 128; 200; 513 ] in
  List.iter
    (fun len ->
      let s = String.init len (fun i -> Char.chr (32 + ((i * 7) mod 95))) in
      let whole = Sha1.digest_string s in
      check Alcotest.bool
        (Printf.sprintf "one piece, len %d" len)
        true
        (Sha1.equal whole (Sha1.digest_iter (fun f -> f s)));
      List.iter
        (fun cut ->
          if cut <= len then
            let streamed =
              Sha1.digest_iter (fun f ->
                f (String.sub s 0 cut);
                f (String.sub s cut (len - cut)))
            in
            check Alcotest.bool
              (Printf.sprintf "len %d cut at %d" len cut)
              true (Sha1.equal whole streamed))
        [ 0; 1; 63; 64; 65 ];
      (* byte-at-a-time *)
      let streamed =
        Sha1.digest_iter (fun f -> String.iter (fun c -> f (String.make 1 c)) s)
      in
      check Alcotest.bool (Printf.sprintf "byte stream, len %d" len) true
        (Sha1.equal whole streamed))
    lengths

let prop_sha1_digest_iter_matches =
  QCheck.Test.make ~name:"digest_iter over random pieces = digest_string of concat"
    ~count:200
    QCheck.(list (string_of_size Gen.(0 -- 150)))
    (fun pieces ->
      Sha1.equal
        (Sha1.digest_string (String.concat "" pieces))
        (Sha1.digest_iter (fun f -> List.iter f pieces)))

let prop_sha1_deterministic =
  QCheck.Test.make ~name:"sha1 deterministic and 40 hex chars" ~count:200
    QCheck.string (fun s ->
      let d1 = sha1_hex s and d2 = sha1_hex s in
      String.equal d1 d2 && String.length d1 = 40)

let prop_sha1_injective_on_samples =
  QCheck.Test.make ~name:"sha1 distinguishes distinct strings" ~count:200
    (QCheck.pair QCheck.string QCheck.string) (fun (a, b) ->
      String.equal a b || not (String.equal (sha1_hex a) (sha1_hex b)))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  check (Alcotest.list Alcotest.int) "sorted drain" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  check Alcotest.bool "is_empty" true (Heap.is_empty h);
  check (Alcotest.option Alcotest.int) "pop empty" None (Heap.pop h);
  check (Alcotest.option Alcotest.int) "peek empty" None (Heap.peek h)

let test_heap_peek_and_clear () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 42;
  Heap.push h 7;
  check (Alcotest.option Alcotest.int) "peek min" (Some 7) (Heap.peek h);
  check Alcotest.int "length" 2 (Heap.length h);
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int) (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

(* The event queues (Sim, Transport.direct) key entries by
   [(priority, insertion seq)] to get FIFO among equal priorities. Check
   that the pattern actually yields a stable sort: draining equals a
   stable sort of the insertion order by priority alone. *)
let prop_heap_seq_breaks_ties_in_insertion_order =
  QCheck.Test.make ~name:"equal priorities pop in insertion order" ~count:200
    QCheck.(list (int_bound 5)) (fun priorities ->
      let h = Heap.create ~cmp:(fun (pa, sa) (pb, sb) ->
        match compare pa pb with 0 -> compare sa sb | c -> c)
      in
      let items = List.mapi (fun seq p -> (p, seq)) priorities in
      List.iter (Heap.push h) items;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.stable_sort (fun (pa, _) (pb, _) -> compare pa pb) items)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_counters () =
  let m = Metrics.create () in
  check Alcotest.int "unknown counter is 0" 0 (Metrics.counter_value m "x");
  Metrics.incr m "x";
  Metrics.incr m "x" ~by:4;
  Metrics.incr m "y";
  check Alcotest.int "accumulates" 5 (Metrics.counter_value m "x");
  let s = Metrics.snapshot m in
  check Alcotest.int "snapshot reads" 5 (Metrics.counter s "x");
  check Alcotest.int "absent in snapshot" 0 (Metrics.counter s "z");
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted by name" [ ("x", 5); ("y", 1) ] s.counters;
  Metrics.clear m;
  check Alcotest.int "clear resets" 0 (Metrics.counter_value m "x")

let test_metrics_gauges_and_histograms () =
  let m = Metrics.create () in
  Metrics.set_gauge m "g" 2.0;
  Metrics.set_gauge m "g" 7.5;
  Metrics.observe m "h" 1.0;
  Metrics.observe m "h" 3.0;
  let s = Metrics.snapshot m in
  check (Alcotest.option (Alcotest.float 1e-9)) "gauge keeps last" (Some 7.5)
    (Metrics.gauge s "g");
  check (Alcotest.option (Alcotest.float 1e-9)) "absent gauge" None (Metrics.gauge s "nope");
  (match Metrics.histogram s "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      check Alcotest.int "count" 2 h.Metrics.count;
      checkf "sum" 4.0 h.sum;
      checkf "min" 1.0 h.min;
      checkf "max" 3.0 h.max;
      checkf "mean" 2.0 (Metrics.mean h));
  check Alcotest.bool "absent histogram" true (Metrics.histogram s "nope" = None)

let test_metrics_snapshot_immutable () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  let s = Metrics.snapshot m in
  Metrics.incr m "x" ~by:10;
  check Alcotest.int "snapshot is a copy" 1 (Metrics.counter s "x");
  check Alcotest.int "registry moved on" 11 (Metrics.counter_value m "x")

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "shared" ~by:2;
  Metrics.incr a "only_a";
  Metrics.incr b "shared" ~by:3;
  Metrics.incr b "only_b" ~by:7;
  Metrics.set_gauge a "g" 1.5;
  Metrics.set_gauge b "g" 2.5;
  Metrics.observe a "h" 1.0;
  Metrics.observe b "h" 5.0;
  let s = Metrics.merge (Metrics.snapshot a) (Metrics.snapshot b) in
  check Alcotest.int "counters add" 5 (Metrics.counter s "shared");
  check Alcotest.int "left-only survives" 1 (Metrics.counter s "only_a");
  check Alcotest.int "right-only survives" 7 (Metrics.counter s "only_b");
  check (Alcotest.option (Alcotest.float 1e-9)) "gauges sum" (Some 4.0) (Metrics.gauge s "g");
  (match Metrics.histogram s "h" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
      check Alcotest.int "counts add" 2 h.Metrics.count;
      checkf "min of mins" 1.0 h.min;
      checkf "max of maxes" 5.0 h.max);
  check Alcotest.bool "empty is identity" true
    (Metrics.merge Metrics.empty (Metrics.snapshot a) = Metrics.snapshot a);
  (* Merge result stays sorted, so further merges agree. *)
  let names = List.map fst s.counters in
  check Alcotest.bool "merged counters sorted" true (List.sort compare names = names)

let test_metrics_to_rows () =
  let m = Metrics.create () in
  Metrics.incr m "c" ~by:3;
  Metrics.set_gauge m "g" 1.0;
  let rows = Metrics.to_rows (Metrics.snapshot m) in
  check Alcotest.int "one row per metric" 2 (List.length rows);
  List.iter (fun row -> check Alcotest.int "three columns" 3 (List.length row)) rows

let prop_metrics_merge_commutes =
  let snap_gen =
    QCheck.Gen.map
      (fun pairs ->
        let m = Metrics.create () in
        List.iter (fun (k, v) -> Metrics.incr m (String.make 1 (Char.chr (97 + k))) ~by:v) pairs;
        Metrics.snapshot m)
      QCheck.Gen.(list_size (int_bound 10) (tup2 (int_bound 5) (int_bound 100)))
  in
  QCheck.Test.make ~name:"merge commutes on counters" ~count:100
    (QCheck.make (QCheck.Gen.tup2 snap_gen snap_gen)) (fun (a, b) ->
      Metrics.merge a b = Metrics.merge b a)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:17 and b = Rng.create ~seed:17 in
  let xs g = List.init 20 (fun _ -> Rng.int g 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same stream" (xs a) (xs b)

let test_rng_bounds () =
  let g = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.fail "Rng.int out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Rng.float g 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "Rng.float out of bounds"
  done

let test_rng_split_independent () =
  let g = Rng.create ~seed:9 in
  let child = Rng.split g in
  let xs = List.init 10 (fun _ -> Rng.int g 100) in
  let ys = List.init 10 (fun _ -> Rng.int child 100) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let g = Rng.create ~seed:5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Zipf *)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create 38 in
  let total = ref 0.0 in
  for k = 0 to 37 do
    total := !total +. Zipf.pmf z k
  done;
  check (Alcotest.float 1e-9) "pmf sums to 1" 1.0 !total

let test_zipf_rank_ordering () =
  let z = Zipf.create 10 in
  for k = 0 to 8 do
    if Zipf.pmf z k < Zipf.pmf z (k + 1) then Alcotest.fail "pmf not decreasing"
  done

let test_zipf_samples_in_range () =
  let z = Zipf.create 5 and g = Rng.create ~seed:1 in
  for _ = 1 to 2000 do
    let k = Zipf.sample z g in
    if k < 0 || k >= 5 then Alcotest.fail "sample out of range"
  done

let test_zipf_empirical_matches_pmf () =
  let n = 6 in
  let z = Zipf.create n and g = Rng.create ~seed:11 in
  let counts = Array.make n 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let k = Zipf.sample z g in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to n - 1 do
    let emp = float_of_int counts.(k) /. float_of_int trials in
    let expected = Zipf.pmf z k in
    if abs_float (emp -. expected) > 0.02 then
      Alcotest.failf "rank %d: empirical %.4f vs pmf %.4f" k emp expected
  done

let test_zipf_invalid_args () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create 0));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Zipf.create: exponent must be non-negative") (fun () ->
      ignore (Zipf.create ~exponent:(-1.0) 5))

(* ------------------------------------------------------------------ *)
(* Serialize *)

let test_serialize_scalars () =
  let w = Serialize.writer () in
  Serialize.write_int w 42;
  Serialize.write_int w (-1);
  Serialize.write_int w max_int;
  Serialize.write_varint w 0;
  Serialize.write_varint w 300;
  Serialize.write_float w 3.14159;
  Serialize.write_bool w true;
  Serialize.write_bool w false;
  Serialize.write_string w "hello";
  let r = Serialize.reader (Serialize.contents w) in
  check Alcotest.int "int" 42 (Serialize.read_int r);
  check Alcotest.int "negative int" (-1) (Serialize.read_int r);
  check Alcotest.int "max_int" max_int (Serialize.read_int r);
  check Alcotest.int "varint 0" 0 (Serialize.read_varint r);
  check Alcotest.int "varint 300" 300 (Serialize.read_varint r);
  checkf "float" 3.14159 (Serialize.read_float r);
  check Alcotest.bool "true" true (Serialize.read_bool r);
  check Alcotest.bool "false" false (Serialize.read_bool r);
  checks "string" "hello" (Serialize.read_string r);
  check Alcotest.bool "at_end" true (Serialize.at_end r)

let test_serialize_list () =
  let w = Serialize.writer () in
  Serialize.write_list w (Serialize.write_string w) [ "a"; "bb"; "ccc" ];
  let r = Serialize.reader (Serialize.contents w) in
  let xs = Serialize.read_list r (fun () -> Serialize.read_string r) in
  check (Alcotest.list Alcotest.string) "list round-trip" [ "a"; "bb"; "ccc" ] xs

let test_serialize_corrupt () =
  let r = Serialize.reader "\x05ab" in
  Alcotest.check_raises "string overrun" (Serialize.Corrupt "string overruns input")
    (fun () -> ignore (Serialize.read_string r))

let prop_serialize_roundtrip_ints =
  QCheck.Test.make ~name:"int round-trip" ~count:500 QCheck.int (fun v ->
    let w = Serialize.writer () in
    Serialize.write_int w v;
    Serialize.read_int (Serialize.reader (Serialize.contents w)) = v)

let prop_serialize_roundtrip_strings =
  QCheck.Test.make ~name:"string round-trip" ~count:500 QCheck.string (fun s ->
    let w = Serialize.writer () in
    Serialize.write_string w s;
    String.equal (Serialize.read_string (Serialize.reader (Serialize.contents w))) s)

let prop_serialize_roundtrip_varint =
  QCheck.Test.make ~name:"varint round-trip" ~count:500 QCheck.(0 -- max_int)
    (fun v ->
      let w = Serialize.writer () in
      Serialize.write_varint w v;
      Serialize.read_varint (Serialize.reader (Serialize.contents w)) = v)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basics () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  checkf "mean" 2.5 (Stats.mean xs);
  checkf "median" 2.5 (Stats.median xs);
  checkf "min" 1.0 (Stats.minimum xs);
  checkf "max" 4.0 (Stats.maximum xs);
  checkf "p0" 1.0 (Stats.percentile xs 0.0);
  checkf "p100" 4.0 (Stats.percentile xs 100.0);
  checkf "stddev" (sqrt 1.25) (Stats.stddev xs)

let test_stats_singleton () =
  checkf "mean" 7.0 (Stats.mean [ 7.0 ]);
  checkf "median" 7.0 (Stats.median [ 7.0 ]);
  checkf "stddev" 0.0 (Stats.stddev [ 7.0 ])

let test_stats_cdf () =
  let xs = [ 3.0; 1.0; 2.0 ] in
  let c = Stats.cdf xs in
  check (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) (Alcotest.float 1e-9)))
    "cdf" [ (1.0, 1.0 /. 3.0); (2.0, 2.0 /. 3.0); (3.0, 1.0) ] c;
  checkf "cdf_at below" 0.0 (Stats.cdf_at xs 0.5);
  checkf "cdf_at mid" (2.0 /. 3.0) (Stats.cdf_at xs 2.0);
  checkf "cdf_at above" 1.0 (Stats.cdf_at xs 10.0)

let test_stats_empty_raises () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean []))

(* ------------------------------------------------------------------ *)
(* Table_fmt *)

let test_table_fmt_alignment () =
  let s = Table_fmt.render ~header:[ "a"; "bbb" ] ~rows:[ [ "xx"; "y" ]; [ "z" ] ] in
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "4 lines" 4 (List.length lines);
  (* All lines padded to the same width. *)
  match lines with
  | h :: _ ->
      List.iter
        (fun l -> check Alcotest.int "width" (String.length h) (String.length l))
        lines
  | [] -> Alcotest.fail "no output"

let test_table_human_units () =
  checks "bytes" "512 B" (Table_fmt.human_bytes 512);
  checks "kb" "2.05 KB" (Table_fmt.human_bytes 2048);
  checks "mb" "1.50 MB" (Table_fmt.human_bytes 1_500_000);
  checks "gb" "2.00 GB" (Table_fmt.human_bytes 2_000_000_000);
  checks "rate" "10.30 MB/s" (Table_fmt.human_rate 10.3e6)

(* Clock-discipline regression (the PR 2 -> PR 6 timing lie): [Sys.time]
   is CPU time summed across every domain of the process, so it both
   misses time a domain spends blocked and multiply-counts concurrent
   work. [Clock.now] must behave like a wall clock: two domains sleeping
   concurrently advance it by the sleep duration, while the CPU clock
   barely moves (sleeping burns no CPU anywhere). This works on any core
   count — sleeps are concurrent even on one core. *)
let test_clock_is_wall_clock () =
  let wall0 = Clock.now () in
  let cpu0 = Sys.time () in
  let sleeper () = Unix.sleepf 0.05 in
  let d1 = Domain.spawn sleeper and d2 = Domain.spawn sleeper in
  Domain.join d1;
  Domain.join d2;
  let wall = Clock.now () -. wall0 in
  let cpu = Sys.time () -. cpu0 in
  check Alcotest.bool
    (Printf.sprintf "wall clock advanced by the sleep (%.4fs)" wall)
    true (wall >= 0.04);
  check Alcotest.bool
    (Printf.sprintf "CPU time did not (%.4fs) - Clock.now must not be Sys.time" cpu)
    true (cpu < 0.04)

let test_clock_monotone_enough () =
  (* gettimeofday can step backwards under NTP, but within a test run
     successive reads must be non-decreasing for timing code to make
     sense; catch a Clock.now that returns garbage (e.g. uninitialized
     or CPU-seconds mixing). *)
  let a = Clock.now () in
  let b = Clock.now () in
  check Alcotest.bool "non-decreasing" true (b >= a);
  check Alcotest.bool "plausible epoch (after 2020)" true (a > 1_577_836_800.)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dpc_util"
    [
      ( "sha1",
        [
          Alcotest.test_case "reference vectors" `Quick test_sha1_vectors;
          Alcotest.test_case "padding boundaries" `Quick test_sha1_block_boundaries;
          Alcotest.test_case "digest_concat" `Quick test_sha1_concat;
          Alcotest.test_case "raw round-trip" `Quick test_sha1_raw_roundtrip;
          Alcotest.test_case "streaming digest_iter" `Quick test_sha1_digest_iter;
        ]
        @ qsuite
            [
              prop_sha1_deterministic;
              prop_sha1_injective_on_samples;
              prop_sha1_digest_iter_matches;
            ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek and clear" `Quick test_heap_peek_and_clear;
        ]
        @ qsuite [ prop_heap_sorts; prop_heap_seq_breaks_ties_in_insertion_order ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "gauges and histograms" `Quick test_metrics_gauges_and_histograms;
          Alcotest.test_case "snapshot immutable" `Quick test_metrics_snapshot_immutable;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
          Alcotest.test_case "to_rows" `Quick test_metrics_to_rows;
        ]
        @ qsuite [ prop_metrics_merge_commutes ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "pmf decreasing in rank" `Quick test_zipf_rank_ordering;
          Alcotest.test_case "samples in range" `Quick test_zipf_samples_in_range;
          Alcotest.test_case "empirical matches pmf" `Quick test_zipf_empirical_matches_pmf;
          Alcotest.test_case "invalid arguments" `Quick test_zipf_invalid_args;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "scalars" `Quick test_serialize_scalars;
          Alcotest.test_case "lists" `Quick test_serialize_list;
          Alcotest.test_case "corrupt input" `Quick test_serialize_corrupt;
        ]
        @ qsuite
            [
              prop_serialize_roundtrip_ints;
              prop_serialize_roundtrip_strings;
              prop_serialize_roundtrip_varint;
            ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "singleton" `Quick test_stats_singleton;
          Alcotest.test_case "cdf" `Quick test_stats_cdf;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
        ] );
      ( "table_fmt",
        [
          Alcotest.test_case "alignment" `Quick test_table_fmt_alignment;
          Alcotest.test_case "human units" `Quick test_table_human_units;
        ] );
      ( "clock",
        [
          Alcotest.test_case "wall clock, not CPU time" `Quick test_clock_is_wall_clock;
          Alcotest.test_case "sane readings" `Quick test_clock_monotone_enough;
        ] );
    ]
