(** Pluggable message transport between nodes.

    The runtime ships tuples and control messages through this interface
    only; how they travel — through the discrete-event simulator, directly
    in process, or (later) over sockets — is the backend's business. Two
    backends are provided:

    - {!of_sim} wraps a {!Sim.t}: hop-by-hop latency and bandwidth,
      per-link byte accounting. Behavior-identical to calling the
      simulator directly.
    - {!direct} is a zero-latency in-process backend for fast tests and
      library embedding: messages are delivered at the current virtual
      time (FIFO among equal times), [schedule] still honors its delay,
      and total bytes/messages are counted.

    All backends deliver callbacks through an event queue, never
    synchronously from [send] — senders can rely on run-to-completion of
    the current handler. *)

module type S = sig
  val name : string

  val nodes : int
  (** Number of addressable nodes; valid ids are [0 .. nodes-1]. *)

  val now : unit -> float

  val schedule : delay:float -> (unit -> unit) -> unit
  (** Run a callback [delay] seconds from now. Events at equal times fire
      in scheduling order. @raise Invalid_argument on a negative delay. *)

  val send : src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
  (** Deliver a message of [bytes] to [dst]; the callback fires at the
      arrival time. @raise Failure if [dst] is unreachable. *)

  val broadcast : src:int -> bytes:int -> (int -> unit) -> unit
  (** Send [bytes] from [src] to every node (the origin included); the
      callback receives the destination node on each delivery. *)

  val run : ?until:float -> unit -> unit
  (** Process queued events in timestamp order until quiescence, or stop
      before the first event past [until] (which stays queued). *)

  val total_bytes : unit -> int
  val messages : unit -> int
end

type t = (module S)

val name : t -> string
val nodes : t -> int
val now : t -> float
val schedule : t -> delay:float -> (unit -> unit) -> unit
val send : t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
val broadcast : t -> src:int -> bytes:int -> (int -> unit) -> unit
val run : ?until:float -> t -> unit
val total_bytes : t -> int
val messages : t -> int

val of_sim : Sim.t -> t
(** The simulator-backed transport. [nodes] is the topology size. *)

val direct : nodes:int -> unit -> t
(** A fresh zero-latency in-process transport.
    @raise Invalid_argument if [nodes] is not positive. *)
