lib/testkit/delp_gen.mli: Dpc_analysis Dpc_core Dpc_engine Dpc_ndlog Dpc_net Dpc_util
