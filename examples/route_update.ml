(* Slow-changing table updates at runtime (paper §5.5, Fig 7).

   Traffic flows n1 -> n2 -> n3 and its provenance chain is materialized
   once. The administrator then redirects n1's traffic through a new node
   n4. The insert broadcasts a [sig] control message that flushes every
   node's equivalence-key table, so the next packet re-materializes a
   fresh chain for the new path — while the provenance of packets that took
   the old path remains intact and queryable (provenance is monotone).

     dune exec examples/route_update.exe *)

open Dpc_core

let query backend routing output =
  let result = Backend.query backend ~cost:Query_cost.emulation ~routing output in
  Format.printf "Provenance of %a:@." Dpc_ndlog.Tuple.pp output;
  List.iter (fun tree -> Format.printf "%a@.@." Prov_tree.pp tree) result.trees

let () =
  (* Fig 7 topology: n1(0), n2(1), n3(2), n4(3); n1-n2-n3 and n1-n4-n3. *)
  let topo = Dpc_net.Topology.create ~n:4 in
  let link = { Dpc_net.Topology.latency = 0.002; bandwidth = 50e6 /. 8.0 } in
  List.iter
    (fun (a, b) -> Dpc_net.Topology.add_link topo a b link)
    [ (0, 1); (1, 2); (0, 3); (3, 2) ];
  let routing = Dpc_net.Routing.compute topo in
  let delp = Dpc_apps.Forwarding.delp () in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env ~nodes:4 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
      ~env:Dpc_apps.Forwarding.env ~hook:(Backend.hook backend)
      ~nodes:(Backend.nodes backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime
    [
      Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
      Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2;
    ];

  print_endline "Phase 1: traffic takes n1 -> n2 -> n3.\n";
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"before");
  Dpc_engine.Runtime.run runtime;
  query backend routing (Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"before");

  print_endline "Phase 2: the administrator redirects n1's traffic via n4 (Fig 7).";
  print_endline "Deleting route(@n1, n3, n2); inserting route(@n1, n3, n4), route(@n4, n3, n3).";
  print_endline "The inserts broadcast sig; every node flushes its equivalence-key table.\n";
  ignore
    (Dpc_engine.Runtime.delete_slow_runtime runtime (Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1));
  Dpc_engine.Runtime.insert_slow_runtime runtime (Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:3);
  Dpc_engine.Runtime.insert_slow_runtime runtime (Dpc_apps.Forwarding.route ~at:3 ~dst:2 ~next:2);
  Dpc_engine.Runtime.run runtime;

  print_endline "Phase 3: the next packet takes n1 -> n4 -> n3 and re-materializes a chain.\n";
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"after");
  Dpc_engine.Runtime.run runtime;
  query backend routing (Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"after");

  print_endline "The old tree survives the update (provenance is monotone):\n";
  query backend routing (Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"before");

  let s = Backend.total_storage backend in
  Printf.printf "Final storage: %d ruleExec rows (two chains), %d prov rows (two packets).\n"
    s.Rows.rule_exec_rows s.Rows.prov_rows
