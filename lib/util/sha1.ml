type t = string

let mask32 = 0xFFFFFFFF

(* Process one 64-byte block starting at [off] in [msg], updating state.
   [w] is the caller's 80-slot schedule scratch (hoisted out of the
   per-block loop). Tuple digests sit on the engine's hot path and this
   build has no flambda, so the 80 rounds are fully unrolled into
   straight-line let-bound ints (no ref cells, no per-round closure
   call), the rotates are open-coded on already-masked words, and the
   bounds checks are elided — [w] is always 80 slots and [off + 63] is
   in range. The state renaming per round uses a single simultaneous
   [let ... and ...] so every right-hand side reads the previous
   round's values. *)
let process_block h w msg off =
  for i = 0 to 15 do
    let j = off + (i * 4) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get msg j) lsl 24)
      lor (Char.code (Bytes.unsafe_get msg (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get msg (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get msg (j + 3)))
  done;
  for i = 16 to 79 do
    (* All stored words are masked to 32 bits, so rotl-by-1 needs no mask
       before the right shift. *)
    let x =
      Array.unsafe_get w (i - 3)
      lxor Array.unsafe_get w (i - 8)
      lxor Array.unsafe_get w (i - 14)
      lxor Array.unsafe_get w (i - 16)
    in
    Array.unsafe_set w i (((x lsl 1) lor (x lsr 31)) land mask32)
  done;
  let a = h.(0) and b = h.(1) and c = h.(2) and d = h.(3) and e = h.(4) in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 0) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 1) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 2) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 3) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 4) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 5) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 6) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 7) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 8) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 9) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 10) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 11) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 12) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 13) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 14) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 15) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 16) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 17) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 18) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e + 0x5A827999 + Array.unsafe_get w 19) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 20) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 21) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 22) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 23) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 24) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 25) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 26) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 27) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 28) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 29) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 30) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 31) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 32) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 33) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 34) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 35) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 36) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 37) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 38) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ED9EBA1 + Array.unsafe_get w 39) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 40) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 41) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 42) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 43) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 44) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 45) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 46) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 47) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 48) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 49) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 50) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 51) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 52) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 53) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 54) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 55) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 56) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 57) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 58) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (b land d) lor (c land d)) + e + 0x8F1BBCDC + Array.unsafe_get w 59) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 60) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 61) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 62) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 63) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 64) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 65) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 66) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 67) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 68) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 69) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 70) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 71) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 72) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 73) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 74) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 75) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 76) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 77) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 78) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in
  let t = (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xCA62C1D6 + Array.unsafe_get w 79) land mask32 in
  let br = ((b lsl 30) lor (b lsr 2)) land mask32 in
  let a = t and b = a and c = br and d = c and e = d in

  h.(0) <- (h.(0) + a) land mask32;
  h.(1) <- (h.(1) + b) land mask32;
  h.(2) <- (h.(2) + c) land mask32;
  h.(3) <- (h.(3) + d) land mask32;
  h.(4) <- (h.(4) + e) land mask32

(* Streaming context. Hashing dominates the provenance hot path, so the
   padded whole-message copy of the textbook formulation is replaced by a
   context that consumes input in place: full 64-byte blocks are processed
   straight out of the source string (via the read-only
   [Bytes.unsafe_of_string] view), and only the sub-block tail ever hits
   the 64-byte carry buffer. *)
type ctx = {
  st : int array;  (* 5-word chaining state *)
  cw : int array;  (* 80-slot schedule scratch *)
  cbuf : Bytes.t;  (* partial-block carry, 64 bytes *)
  mutable fill : int;  (* bytes pending in [cbuf] *)
  mutable total : int;  (* total message bytes fed *)
}

let init () =
  { st = Array.make 5 0; cw = Array.make 80 0; cbuf = Bytes.create 64; fill = 0; total = 0 }

let reset ctx =
  ctx.st.(0) <- 0x67452301;
  ctx.st.(1) <- 0xEFCDAB89;
  ctx.st.(2) <- 0x98BADCFE;
  ctx.st.(3) <- 0x10325476;
  ctx.st.(4) <- 0xC3D2E1F0;
  ctx.fill <- 0;
  ctx.total <- 0

let feed ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  if ctx.fill > 0 then begin
    let take = min (64 - ctx.fill) len in
    Bytes.blit_string s 0 ctx.cbuf ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := take;
    if ctx.fill = 64 then begin
      process_block ctx.st ctx.cw ctx.cbuf 0;
      ctx.fill <- 0
    end
  end;
  if ctx.fill = 0 then begin
    (* Read-only view: process_block never writes to [msg]. *)
    let b = Bytes.unsafe_of_string s in
    while len - !pos >= 64 do
      process_block ctx.st ctx.cw b !pos;
      pos := !pos + 64
    done;
    let rem = len - !pos in
    if rem > 0 then begin
      Bytes.blit_string s !pos ctx.cbuf 0 rem;
      ctx.fill <- rem
    end
  end

let final ctx =
  (* Pad: 0x80, zeros to 56 mod 64, then the 8-byte big-endian bit count. *)
  Bytes.set ctx.cbuf ctx.fill '\x80';
  if ctx.fill >= 56 then begin
    Bytes.fill ctx.cbuf (ctx.fill + 1) (63 - ctx.fill) '\000';
    process_block ctx.st ctx.cw ctx.cbuf 0;
    Bytes.fill ctx.cbuf 0 56 '\000'
  end
  else Bytes.fill ctx.cbuf (ctx.fill + 1) (55 - ctx.fill) '\000';
  let bitlen = ctx.total * 8 in
  for k = 0 to 7 do
    Bytes.set ctx.cbuf (63 - k) (Char.chr ((bitlen lsr (8 * k)) land 0xFF))
  done;
  process_block ctx.st ctx.cw ctx.cbuf 0;
  let out = Bytes.create 20 in
  for i = 0 to 4 do
    for k = 0 to 3 do
      Bytes.set out ((i * 4) + k) (Char.chr ((ctx.st.(i) lsr (8 * (3 - k))) land 0xFF))
    done
  done;
  Bytes.unsafe_to_string out

(* One shared context PER DOMAIN: digesting is never re-entered within a
   domain (the [digest_iter] feeder only renders value pieces; it must
   not itself digest), but sharded runtimes digest concurrently from
   several domains — a process-global context would tear. *)
let shared_key = Domain.DLS.new_key init

let digest_string s =
  let shared = Domain.DLS.get shared_key in
  reset shared;
  feed shared s;
  final shared

let digest_iter feeder =
  let shared = Domain.DLS.get shared_key in
  reset shared;
  feeder (feed shared);
  final shared

let digest_concat parts =
  let shared = Domain.DLS.get shared_key in
  reset shared;
  List.iteri
    (fun i part ->
      if i > 0 then feed shared "+";
      feed shared part)
    parts;
  final shared

let hex_digits = "0123456789abcdef"

let to_hex t =
  let out = Bytes.create 40 in
  String.iteri
    (fun i c ->
      let b = Char.code c in
      Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_digits (b lsr 4));
      Bytes.unsafe_set out ((2 * i) + 1) (String.unsafe_get hex_digits (b land 0xF)))
    t;
  Bytes.unsafe_to_string out

let to_raw t = t

let of_raw s =
  if String.length s <> 20 then invalid_arg "Sha1.of_raw: expected 20 bytes";
  s

let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let abbrev t = String.sub (to_hex t) 0 8
let pp fmt t = Format.pp_print_string fmt (abbrev t)
