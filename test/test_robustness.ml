(* Robustness tests: message reordering (the §5.6 out-of-order concern),
   graceful degradation on mismatched programs, and query behaviour against
   stores with missing pieces. *)

open Dpc_core

let check = Alcotest.check

let line_link = { Dpc_net.Topology.latency = 0.002; bandwidth = 1e7 }

(* ------------------------------------------------------------------ *)
(* Jitter mechanics *)

let test_jitter_reorders_messages () =
  let topo = Dpc_net.Topology.create ~n:2 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  let routing = Dpc_net.Routing.compute topo in
  let jitter = 0.5 and seed = 3 in
  let sim = Dpc_net.Sim.create ~jitter ~seed ~topology:topo ~routing () in
  let arrivals = ref [] in
  for i = 1 to 20 do
    Dpc_net.Sim.send sim ~src:0 ~dst:1 ~bytes:10 (fun () -> arrivals := i :: !arrivals)
  done;
  Dpc_net.Sim.run sim;
  let order = List.rev !arrivals in
  (* The exact permutation is derivable: every send has the same base
     latency (same path, same size), plus one jitter draw from the seeded
     stream, consumed in send order. The heap breaks arrival-time ties by
     scheduling order, so the expected order is a stable sort of the
     messages by their jitter draw. *)
  let rng = Dpc_util.Rng.create ~seed in
  let draws = Array.init 20 (fun i -> (Dpc_util.Rng.float rng jitter, i + 1)) in
  Array.sort compare draws;
  let expected = Array.to_list (Array.map snd draws) in
  check (Alcotest.list Alcotest.int) "the seeded permutation" expected order;
  check Alcotest.bool "and it is a real reordering" true
    (expected <> List.init 20 (fun i -> i + 1))

let test_zero_jitter_preserves_order () =
  let topo = Dpc_net.Topology.create ~n:2 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let arrivals = ref [] in
  for i = 1 to 20 do
    Dpc_net.Sim.send sim ~src:0 ~dst:1 ~bytes:10 (fun () -> arrivals := i :: !arrivals)
  done;
  Dpc_net.Sim.run sim;
  check (Alcotest.list Alcotest.int) "FIFO" (List.init 20 (fun i -> i + 1)) (List.rev !arrivals)

let test_run_until_boundary () =
  (* [run ~until] is a half-open horizon: an event exactly at [until]
     stays queued for the next run, and equal-time events pushed back at
     the horizon keep their scheduling order. *)
  let topo = Dpc_net.Topology.create ~n:2 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let fired = ref [] in
  let mark label () = fired := label :: !fired in
  Dpc_net.Sim.schedule sim ~delay:1.0 (mark "early");
  Dpc_net.Sim.schedule sim ~delay:2.0 (mark "boundary-a");
  Dpc_net.Sim.schedule sim ~delay:2.0 (mark "boundary-b");
  Dpc_net.Sim.schedule sim ~delay:3.0 (mark "late");
  Dpc_net.Sim.run sim ~until:2.0;
  check (Alcotest.list Alcotest.string) "events at [until] stay queued" [ "early" ]
    (List.rev !fired);
  Dpc_net.Sim.run sim ~until:3.0;
  check (Alcotest.list Alcotest.string) "the [2, 3) window, in seq order"
    [ "early"; "boundary-a"; "boundary-b" ] (List.rev !fired);
  Dpc_net.Sim.run sim;
  check (Alcotest.list Alcotest.string) "the rest"
    [ "early"; "boundary-a"; "boundary-b"; "late" ] (List.rev !fired)

let test_negative_jitter_rejected () =
  let topo = Dpc_net.Topology.create ~n:2 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  let routing = Dpc_net.Routing.compute topo in
  Alcotest.check_raises "negative jitter" (Invalid_argument "Sim.create: negative jitter")
    (fun () -> ignore (Dpc_net.Sim.create ~jitter:(-1.0) ~topology:topo ~routing ()))

(* ------------------------------------------------------------------ *)
(* Losslessness under reordering: packets racing each other through the
   network must not corrupt any scheme's provenance. *)

let jittery_world scheme =
  let topo = Dpc_net.Topology.create ~n:4 in
  List.iter
    (fun (a, b) -> Dpc_net.Topology.add_link topo a b line_link)
    [ (0, 1); (1, 2); (2, 3) ];
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~jitter:0.05 ~seed:11 ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:4 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env
      ~hook:(Backend.hook backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime
    [
      Dpc_apps.Forwarding.route ~at:0 ~dst:3 ~next:1;
      Dpc_apps.Forwarding.route ~at:1 ~dst:3 ~next:2;
      Dpc_apps.Forwarding.route ~at:2 ~dst:3 ~next:3;
    ];
  for i = 1 to 25 do
    Dpc_engine.Runtime.inject runtime
      (Dpc_apps.Forwarding.packet ~src:0 ~dst:3 ~payload:(Printf.sprintf "p%d" i))
  done;
  Dpc_engine.Runtime.run runtime;
  (backend, routing, runtime)

let test_losslessness_under_jitter () =
  let reference, routing, _ = jittery_world Backend.S_exspan in
  List.iter
    (fun scheme ->
      let backend, routing', runtime = jittery_world scheme in
      ignore routing';
      check Alcotest.int
        (Backend.scheme_name scheme ^ ": all delivered")
        25
        (Dpc_engine.Runtime.stats runtime).outputs;
      for i = 1 to 25 do
        let out =
          Dpc_apps.Forwarding.recv ~at:3 ~src:0 ~dst:3 ~payload:(Printf.sprintf "p%d" i)
        in
        let expected = (Backend.query reference ~cost:Query_cost.free ~routing out).trees in
        let got = (Backend.query backend ~cost:Query_cost.free ~routing out).trees in
        check
          (Alcotest.list (Alcotest.testable Prov_tree.pp Prov_tree.equal))
          (Printf.sprintf "%s: packet %d" (Backend.scheme_name scheme) i)
          expected got
      done)
    [ Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

(* ------------------------------------------------------------------ *)
(* Graceful degradation *)

let test_query_with_wrong_program_is_empty () =
  (* A checkpoint restored under a different program: queries cannot
     re-derive (unknown rules) and must return empty, not crash. *)
  let topo = Dpc_net.Topology.create ~n:3 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  Dpc_net.Topology.add_link topo 1 2 line_link;
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make Backend.S_basic ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env
      ~hook:(Backend.hook backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime
    [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
      Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ];
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x");
  Dpc_engine.Runtime.run runtime;
  let blob = Backend.checkpoint backend in
  let restored =
    Backend.restore Backend.S_basic ~delp:(Dpc_apps.Dhcp.delp ()) ~env:Dpc_apps.Dhcp.env blob
  in
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"x" in
  let result = Backend.query restored ~cost:Query_cost.free ~routing out in
  check Alcotest.int "no trees, no crash" 0 (List.length result.trees)

let test_query_empty_store () =
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let topo = Dpc_net.Topology.create ~n:3 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  Dpc_net.Topology.add_link topo 1 2 line_link;
  let routing = Dpc_net.Routing.compute topo in
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"x" in
  let result = Backend.query backend ~cost:Query_cost.emulation ~routing out in
  check Alcotest.int "empty store, empty result" 0 (List.length result.trees);
  check Alcotest.bool "still charged the lookup" true (result.latency > 0.0)

let test_advanced_orphan_counting () =
  (* A flag=true output whose class has no hmap entry (the §5.5 race) is
     counted, not stored. We force it by clearing htequi-then-hmap
     inconsistently: clear htequi via a slow insert, inject an event, and
     clear hmap is not possible from outside — instead check the counter
     stays 0 on clean runs. *)
  let _, _, runtime = jittery_world Backend.S_advanced in
  ignore runtime;
  let delp = Dpc_apps.Forwarding.delp () in
  let keys = Dpc_analysis.Equi_keys.compute delp in
  let store = Store_advanced.create ~delp ~env:Dpc_apps.Forwarding.env ~keys ~nodes:3 () in
  check Alcotest.int "no orphans on a fresh store" 0 (Store_advanced.orphan_outputs store)

(* ------------------------------------------------------------------ *)
(* Degraded queries against crashed nodes: bounded, partial, never hung. *)

let line_world scheme =
  let topo = Dpc_net.Topology.create ~n:3 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  Dpc_net.Topology.add_link topo 1 2 line_link;
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
      ~env:Dpc_apps.Forwarding.env ~hook:(Backend.hook backend) ~nodes:(Backend.nodes backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime
    [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
      Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ];
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x");
  Dpc_engine.Runtime.run runtime;
  (backend, routing)

let down_budget =
  float_of_int (Query_cost.simulation.down_retries + 1) *. Query_cost.simulation.down_timeout

let test_query_down_node_is_partial () =
  List.iter
    (fun scheme ->
      let name = Backend.scheme_name scheme in
      let backend, routing = line_world scheme in
      let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"x" in
      (* Sanity: with everyone up, the query is complete and non-empty. *)
      let healthy = Backend.query backend ~cost:Query_cost.simulation ~routing out in
      check Alcotest.bool (name ^ ": healthy query complete") true healthy.Query_result.complete;
      check Alcotest.bool (name ^ ": healthy query non-empty") true (healthy.trees <> []);
      (* Node 1 carries the middle of every chain: with it down, the query
         returns promptly — charged the bounded retry budget — marked
         partial, and raises nothing. *)
      let degraded =
        Backend.query backend ~cost:Query_cost.simulation ~routing ~up:(fun n -> n <> 1) out
      in
      check Alcotest.bool (name ^ ": result marked partial") false
        degraded.Query_result.complete;
      check Alcotest.bool (name ^ ": charged the down budget") true
        (degraded.latency >= down_budget);
      check Alcotest.bool (name ^ ": latency bounded") true
        (degraded.latency <= healthy.latency +. (10.0 *. down_budget));
      (* The degradation is visible in the querier's metrics. *)
      let m = Dpc_engine.Node.metrics (Backend.nodes backend).(2) in
      check Alcotest.bool (name ^ ": crash.queries_degraded ticked") true
        (Dpc_util.Metrics.counter_value m "crash.queries_degraded" >= 1))
    [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

let test_query_down_querier_is_partial () =
  let backend, routing = line_world Backend.S_basic in
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"x" in
  let degraded =
    Backend.query backend ~cost:Query_cost.simulation ~routing ~up:(fun n -> n <> 2) out
  in
  check Alcotest.bool "partial" false degraded.Query_result.complete;
  check Alcotest.int "no trees from a down querier" 0 (List.length degraded.trees);
  check Alcotest.bool "still charged" true (degraded.latency >= down_budget)

let test_query_during_partition_is_bounded () =
  (* End to end through partitionable: the world ingests over the faulted
     transport, a partition cuts the querier off from the middle of the
     chain, and the degraded [?up] query (the link state as the up
     predicate) must return promptly — bounded by the retry budget —
     marked partial. After the heal, the same query is complete again. *)
  let parted, control = Dpc_net.Transport.partitionable (Dpc_net.Transport.direct ~nodes:3 ()) in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:parted ~reliable:Dpc_net.Reliable.default_config ~delp
      ~env:Dpc_apps.Forwarding.env ~hook:(Backend.hook backend) ~nodes:(Backend.nodes backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime
    [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
      Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ];
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x");
  Dpc_engine.Runtime.run runtime;
  let topo = Dpc_net.Topology.create ~n:3 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  Dpc_net.Topology.add_link topo 1 2 line_link;
  let routing = Dpc_net.Routing.compute topo in
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"x" in
  (* The querier sits at node 2; a node is reachable iff the directed
     link from the querier is up. *)
  let q () =
    Backend.query backend ~cost:Query_cost.simulation ~routing
      ~up:(fun n -> n = 2 || control.Dpc_net.Transport.link_up ~src:2 ~dst:n)
      out
  in
  let healthy = q () in
  check Alcotest.bool "healthy complete" true healthy.Query_result.complete;
  control.Dpc_net.Transport.set_link ~src:2 ~dst:1 ~up:false;
  let during = q () in
  check Alcotest.bool "partial during the partition" false during.Query_result.complete;
  check Alcotest.bool "charged the down budget" true (during.latency >= down_budget);
  check Alcotest.bool "latency bounded" true
    (during.latency <= healthy.latency +. (10.0 *. down_budget));
  control.Dpc_net.Transport.set_link ~src:2 ~dst:1 ~up:true;
  let after = q () in
  check Alcotest.bool "complete after the heal" true after.Query_result.complete;
  check
    (Alcotest.list (Alcotest.testable Prov_tree.pp Prov_tree.equal))
    "same trees as before the cut" healthy.trees after.trees

let test_query_recovers_after_restart () =
  (* End to end through Durable: query during the outage is partial, the
     same query after recovery is complete and identical to healthy. *)
  let crashable, control = Dpc_net.Transport.crashable (Dpc_net.Transport.direct ~nodes:3 ()) in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:crashable ~reliable:Dpc_net.Reliable.default_config
      ~delp ~env:Dpc_apps.Forwarding.env ~hook:(Backend.hook backend)
      ~nodes:(Backend.nodes backend) ()
  in
  let durable = Dpc_core.Durable.attach ~backend ~runtime ~control () in
  Dpc_engine.Runtime.load_slow runtime
    [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
      Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ];
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x");
  Dpc_engine.Runtime.run runtime;
  let topo = Dpc_net.Topology.create ~n:3 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  Dpc_net.Topology.add_link topo 1 2 line_link;
  let routing = Dpc_net.Routing.compute topo in
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"x" in
  let q () =
    Backend.query backend ~cost:Query_cost.simulation ~routing
      ~up:(Dpc_core.Durable.is_up durable) out
  in
  let healthy = q () in
  check Alcotest.bool "healthy complete" true healthy.Query_result.complete;
  Dpc_core.Durable.crash durable 1;
  let during = q () in
  check Alcotest.bool "partial during outage" false during.Query_result.complete;
  Dpc_core.Durable.restart durable 1;
  Dpc_engine.Runtime.run runtime;
  let after = q () in
  check Alcotest.bool "complete after recovery" true after.Query_result.complete;
  check
    (Alcotest.list (Alcotest.testable Prov_tree.pp Prov_tree.equal))
    "same trees as before the crash" healthy.trees after.trees

let () =
  Alcotest.run "dpc_robustness"
    [
      ( "jitter",
        [
          Alcotest.test_case "reorders messages" `Quick test_jitter_reorders_messages;
          Alcotest.test_case "zero jitter is FIFO" `Quick test_zero_jitter_preserves_order;
          Alcotest.test_case "run ~until boundary" `Quick test_run_until_boundary;
          Alcotest.test_case "negative rejected" `Quick test_negative_jitter_rejected;
        ] );
      ( "losslessness under reordering",
        [ Alcotest.test_case "all schemes" `Quick test_losslessness_under_jitter ] );
      ( "graceful degradation",
        [
          Alcotest.test_case "wrong program" `Quick test_query_with_wrong_program_is_empty;
          Alcotest.test_case "empty store" `Quick test_query_empty_store;
          Alcotest.test_case "orphan counter" `Quick test_advanced_orphan_counting;
        ] );
      ( "degraded queries",
        [
          Alcotest.test_case "down node marks partial" `Quick test_query_down_node_is_partial;
          Alcotest.test_case "down querier marks partial" `Quick
            test_query_down_querier_is_partial;
          Alcotest.test_case "recovers after restart" `Quick test_query_recovers_after_restart;
          Alcotest.test_case "bounded during a partition" `Quick
            test_query_during_partition_is_bounded;
        ] );
    ]
