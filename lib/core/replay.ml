open Dpc_ndlog

type entry = E_event of Tuple.t | E_insert of Tuple.t | E_delete of Tuple.t

type t = {
  delp : Delp.t;
  env : Dpc_engine.Env.t;
  nodes : int;
  mutable log_rev : entry list;
  mutable initial_slow : Tuple.t list;
}

let create ~delp ~env ~nodes = { delp; env; nodes; log_rev = []; initial_slow = [] }

let record t entry = t.log_rev <- entry :: t.log_rev

let hook t =
  {
    Dpc_engine.Prov_hook.null with
    name = "replay-log";
    on_input =
      (fun ~node:_ event ->
        record t (E_event event);
        Dpc_engine.Prov_hook.initial_meta event);
    on_slow_update =
      (fun ~node ~op tuple ->
        (* The sig broadcast reaches every node; log the update once, when
           it arrives at the tuple's own location. *)
        if node = Tuple.loc tuple then
          record t
            (match op with
            | Dpc_engine.Prov_hook.Slow_insert -> E_insert tuple
            | Dpc_engine.Prov_hook.Slow_delete -> E_delete tuple));
  }

let combine (a : Dpc_engine.Prov_hook.t) (b : Dpc_engine.Prov_hook.t) =
  {
    Dpc_engine.Prov_hook.name = a.name ^ "+" ^ b.name;
    on_input =
      (fun ~node event ->
        ignore (b.on_input ~node event);
        a.on_input ~node event);
    on_fire =
      (fun ~node ~rule ~event ~slow ~head meta ->
        ignore (b.on_fire ~node ~rule ~event ~slow ~head meta);
        a.on_fire ~node ~rule ~event ~slow ~head meta);
    on_output =
      (fun ~node output meta ->
        b.on_output ~node output meta;
        a.on_output ~node output meta);
    on_slow_update =
      (fun ~node ~op tuple ->
        b.on_slow_update ~node ~op tuple;
        a.on_slow_update ~node ~op tuple);
    meta_bytes = (fun meta -> a.meta_bytes meta + b.meta_bytes meta);
  }

let record_initial_slow t tuples = t.initial_slow <- t.initial_slow @ tuples

let log_length t = List.length t.log_rev

let storage_bytes t =
  let w = Dpc_util.Serialize.writer () in
  List.iter (fun tuple -> Tuple.serialize w tuple) t.initial_slow;
  List.iter
    (fun entry ->
      match entry with
      | E_event tuple | E_insert tuple | E_delete tuple ->
          Dpc_util.Serialize.write_varint w
            (match entry with E_event _ -> 0 | E_insert _ -> 1 | E_delete _ -> 2);
          Tuple.serialize w tuple)
    t.log_rev;
  Dpc_util.Serialize.size w

(* Seconds charged per replayed log entry (the rule executions it causes
   are charged through the engine's determinism, not modeled further). *)
let replay_cost_per_entry = 0.0005

let replay_and_query t ~topology ?evid target =
  let routing = Dpc_net.Routing.compute topology in
  let sim = Dpc_net.Sim.create ~topology ~routing () in
  let transport = Dpc_net.Transport.of_sim sim in
  let store = Store_exspan.create ~delp:t.delp ~env:t.env ~nodes:t.nodes in
  let runtime =
    Dpc_engine.Runtime.create ~transport ~delp:t.delp ~env:t.env
      ~hook:(Store_exspan.hook store) ~nodes:(Store_exspan.nodes store) ()
  in
  Dpc_engine.Runtime.load_slow runtime t.initial_slow;
  (* Replay in arrival order, quiescing between entries so each update is
     fully processed before the next input. *)
  List.iter
    (fun entry ->
      (match entry with
      | E_event event -> Dpc_engine.Runtime.inject runtime event
      | E_insert tuple -> Dpc_engine.Runtime.insert_slow_runtime runtime tuple
      | E_delete tuple -> ignore (Dpc_engine.Runtime.delete_slow_runtime runtime tuple));
      Dpc_engine.Runtime.run runtime)
    (List.rev t.log_rev);
  let result = Store_exspan.query store ~cost:Query_cost.emulation ~routing ?evid target in
  {
    result with
    Query_result.latency =
      result.Query_result.latency
      +. (float_of_int (log_length t) *. replay_cost_per_entry);
  }
