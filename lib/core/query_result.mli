(** Result of a distributed provenance query. *)

type t = {
  trees : Prov_tree.t list;
      (** all reconstructed derivations of the queried tuple, deduplicated *)
  latency : float;  (** seconds, under the query's {!Query_cost} model *)
  entries : int;  (** provenance rows fetched *)
  bytes : int;  (** bytes processed or shipped *)
  complete : bool;
      (** [false] when a crashed node made part of the provenance
          unreachable: the branches that needed it were abandoned after
          the bounded retry budget ({!Query_cost.t.down_timeout} ×
          retries), so [trees] may be a subset of the truth. [true] on
          every fully-answered query, including empty ones. *)
}

val empty : t

val dedup_trees : Prov_tree.t list -> Prov_tree.t list
