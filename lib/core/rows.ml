open Dpc_util

type prov_row = {
  loc : int;
  vid : Sha1.t;
  rid : (int * Sha1.t) option;
  evid : Sha1.t option;
}

type rule_exec_row = {
  rloc : int;
  rid : Sha1.t;
  rule : string;
  vids : Sha1.t list;
  next : (int * Sha1.t) option;
}

type link_row = {
  link_rloc : int;
  link_rid : Sha1.t;
  link_next : (int * Sha1.t) option;
}

let write_digest w d = Serialize.write_string w (Sha1.to_raw d)

let write_ref w = function
  | None -> Serialize.write_bool w false
  | Some (node, d) ->
      Serialize.write_bool w true;
      Serialize.write_varint w node;
      write_digest w d

(* Row sizes are computed analytically rather than by running the writers
   above through a scratch buffer: [Table.add] charges every new row on the
   store hot path, and the buffer allocation showed up in profiles. Each
   formula must agree byte-for-byte with the corresponding writer —
   test_core's row-bytes test checks them against a real serialization. *)

(* write_string of a 20-byte raw digest: 1-byte varint length + 20 bytes. *)
let digest_size = 21

let ref_size = function
  | None -> 1
  | Some (node, _) -> 1 + Serialize.varint_size node + digest_size

let opt_digest_size = function None -> 1 | Some _ -> 1 + digest_size

let prov_row_bytes ~with_evid r =
  Serialize.varint_size r.loc + digest_size + ref_size r.rid
  + if with_evid then opt_digest_size r.evid else 0

let rule_exec_row_bytes ~with_next r =
  let rule_len = String.length r.rule in
  let nvids = List.length r.vids in
  Serialize.varint_size r.rloc + digest_size
  + Serialize.varint_size rule_len + rule_len
  + Serialize.varint_size nvids + (nvids * digest_size)
  + if with_next then ref_size r.next else 0

let link_row_bytes r =
  Serialize.varint_size r.link_rloc + digest_size + ref_size r.link_next

let vid_of = Dpc_ndlog.Tuple.digest
let hex = Sha1.to_hex

(* Store-table key for a digest: the 20 raw bytes, not the hex rendering.
   Identity on the representation, so keying costs no allocation on the
   record hot path; [hex] is for human-readable output only. *)
let key = Sha1.to_raw

let ref_bytes = 4 + 20

module Table = struct
  type 'a t = {
    row_bytes : 'a -> int;
    entries : (string, 'a list ref) Hashtbl.t;
    mutable count : int;
    mutable bytes : int;
  }

  let create ~row_bytes () = { row_bytes; entries = Hashtbl.create 64; count = 0; bytes = 0 }

  let add t ~key row =
    let cell =
      match Hashtbl.find_opt t.entries key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add t.entries key c;
          c
    in
    if List.mem row !cell then false
    else begin
      cell := !cell @ [ row ];
      t.count <- t.count + 1;
      t.bytes <- t.bytes + t.row_bytes row;
      true
    end

  let find t key = match Hashtbl.find_opt t.entries key with None -> [] | Some c -> !c
  let rows t = t.count
  let bytes t = t.bytes

  let clear t =
    Hashtbl.reset t.entries;
    t.count <- 0;
    t.bytes <- 0

  let iter t f = Hashtbl.iter (fun k c -> List.iter (f k) !c) t.entries
end

type storage = {
  prov_bytes : int;
  rule_exec_bytes : int;
  equi_bytes : int;
  event_bytes : int;
  prov_rows : int;
  rule_exec_rows : int;
}

let empty_storage =
  {
    prov_bytes = 0;
    rule_exec_bytes = 0;
    equi_bytes = 0;
    event_bytes = 0;
    prov_rows = 0;
    rule_exec_rows = 0;
  }

let add_storage a b =
  {
    prov_bytes = a.prov_bytes + b.prov_bytes;
    rule_exec_bytes = a.rule_exec_bytes + b.rule_exec_bytes;
    equi_bytes = a.equi_bytes + b.equi_bytes;
    event_bytes = a.event_bytes + b.event_bytes;
    prov_rows = a.prov_rows + b.prov_rows;
    rule_exec_rows = a.rule_exec_rows + b.rule_exec_rows;
  }

let provenance_bytes s = s.prov_bytes + s.rule_exec_bytes

let show_digest d = Dpc_util.Sha1.abbrev d

let show_ref = function
  | None -> "NULL"
  | Some (node, d) -> Printf.sprintf "n%d/%s" node (show_digest d)

let dump_prov ~with_evid rows_of n =
  let header =
    [ "Loc"; "VID"; "(RLoc,RID)" ] @ (if with_evid then [ "EVID" ] else [])
  in
  let rows =
    List.concat_map
      (fun node ->
        List.map
          (fun r ->
            [ Printf.sprintf "n%d" r.loc; show_digest r.vid; show_ref r.rid ]
            @
            if with_evid then
              [ (match r.evid with None -> "NULL" | Some e -> show_digest e) ]
            else [])
          (rows_of node))
      (List.init n (fun i -> i))
  in
  (header, List.sort compare rows)

let dump_rule_exec ~with_next rows_of n =
  let header =
    [ "RLoc"; "RID"; "RULE"; "VIDS" ] @ (if with_next then [ "(NLoc,NRID)" ] else [])
  in
  let rows =
    List.concat_map
      (fun node ->
        List.map
          (fun r ->
            [
              Printf.sprintf "n%d" r.rloc;
              show_digest r.rid;
              r.rule;
              (match r.vids with
              | [] -> "NULL"
              | vids -> "(" ^ String.concat "," (List.map show_digest vids) ^ ")");
            ]
            @ (if with_next then [ show_ref r.next ] else []))
          (rows_of node))
      (List.init n (fun i -> i))
  in
  (header, List.sort compare rows)

let read_digest r = Dpc_util.Sha1.of_raw (Serialize.read_string r)

let read_ref r =
  if Serialize.read_bool r then begin
    let node = Serialize.read_varint r in
    Some (node, read_digest r)
  end
  else None

let write_opt_digest w = function
  | None -> Serialize.write_bool w false
  | Some d ->
      Serialize.write_bool w true;
      write_digest w d

let read_opt_digest r = if Serialize.read_bool r then Some (read_digest r) else None

let write_prov_row w r =
  Serialize.write_varint w r.loc;
  write_digest w r.vid;
  write_ref w r.rid;
  write_opt_digest w r.evid

let read_prov_row r =
  let loc = Serialize.read_varint r in
  let vid = read_digest r in
  let rid = read_ref r in
  let evid = read_opt_digest r in
  { loc; vid; rid; evid }

let write_rule_exec_row w r =
  Serialize.write_varint w r.rloc;
  write_digest w r.rid;
  Serialize.write_string w r.rule;
  Serialize.write_list w (write_digest w) r.vids;
  write_ref w r.next

let read_rule_exec_row r =
  let rloc = Serialize.read_varint r in
  let rid = read_digest r in
  let rule = Serialize.read_string r in
  let vids = Serialize.read_list r (fun () -> read_digest r) in
  let next = read_ref r in
  { rloc; rid; rule; vids; next }

let write_link_row w r =
  Serialize.write_varint w r.link_rloc;
  write_digest w r.link_rid;
  write_ref w r.link_next

let read_link_row r =
  let link_rloc = Serialize.read_varint r in
  let link_rid = read_digest r in
  let link_next = read_ref r in
  { link_rloc; link_rid; link_next }
