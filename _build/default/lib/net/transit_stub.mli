(** Transit-stub topology generator (substitute for GT-ITM, which the paper
    used to generate its 100-node evaluation topology).

    The generated graph has [transit] fully-meshed transit nodes; each
    transit node attaches [stub_domains] stub domains; each stub domain is a
    connected random graph of [stubs_per_domain] nodes whose gateway links to
    the transit node. Link classes use the paper's parameters by default:
    transit–transit 50 ms / 1 Gbps, transit–stub 10 ms / 100 Mbps,
    stub–stub 2 ms / 50 Mbps. *)

type params = {
  transit : int;
  stub_domains : int;  (** per transit node *)
  stubs_per_domain : int;
  transit_link : Topology.link;
  transit_stub_link : Topology.link;
  stub_link : Topology.link;
  extra_stub_edges : int;  (** extra random intra-domain edges beyond the spanning tree *)
}

val paper_params : params
(** 4 transit nodes x 3 stub domains x 8 stub nodes = 100 nodes, the
    evaluation topology of §6.1. *)

type t = {
  topology : Topology.t;
  transit_nodes : int list;
  stub_nodes : int list;
}

val generate : rng:Dpc_util.Rng.t -> params -> t
(** @raise Invalid_argument if any count is non-positive. *)

val node_count : params -> int
