type event = { at : float; seq : int; action : unit -> unit }

type t = {
  topo : Topology.t;
  routing : Routing.t;
  bucket_width : float;
  jitter : float;
  rng : Dpc_util.Rng.t;
  queue : event Dpc_util.Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  mutable total_bytes : int;
  mutable messages : int;
  link_counters : (int * int, int ref) Hashtbl.t;
  buckets : (int, int ref) Hashtbl.t;
}

let create ?(bucket_width = 1.0) ?(jitter = 0.0) ?(seed = 0) ~topology ~routing () =
  if jitter < 0.0 then invalid_arg "Sim.create: negative jitter";
  {
    topo = topology;
    routing;
    bucket_width;
    jitter;
    rng = Dpc_util.Rng.create ~seed;
    queue =
      Dpc_util.Heap.create ~cmp:(fun a b ->
        match compare a.at b.at with 0 -> compare a.seq b.seq | c -> c);
    clock = 0.0;
    next_seq = 0;
    processed = 0;
    total_bytes = 0;
    messages = 0;
    link_counters = Hashtbl.create 64;
    buckets = Hashtbl.create 64;
  }

let topology t = t.topo
let routing t = t.routing
let now t = t.clock

let schedule_at t at action =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Dpc_util.Heap.push t.queue { at; seq; action }

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t (t.clock +. delay) action

let counter tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add tbl key r;
      r

let account t ~at ~hop_src ~hop_dst ~bytes =
  t.total_bytes <- t.total_bytes + bytes;
  let key = (min hop_src hop_dst, max hop_src hop_dst) in
  let c = counter t.link_counters key in
  c := !c + bytes;
  let bucket = int_of_float (at /. t.bucket_width) in
  let b = counter t.buckets bucket in
  b := !b + bytes

let jitter_delay t = if t.jitter = 0.0 then 0.0 else Dpc_util.Rng.float t.rng t.jitter

let send t ~src ~dst ~bytes k =
  t.messages <- t.messages + 1;
  if src = dst then schedule t ~delay:(jitter_delay t) k
  else begin
    match Routing.path t.routing ~src ~dst with
    | None -> failwith (Printf.sprintf "Sim.send: node %d unreachable from %d" dst src)
    | Some path ->
        (* Walk the path hop by hop, accumulating per-hop delays and charging
           each link at the moment transmission on it starts. *)
        let rec hops at = function
          | a :: (b :: _ as rest) ->
              let link =
                match Topology.link t.topo a b with
                | Some l -> l
                | None -> assert false (* routing only uses existing links *)
              in
              account t ~at ~hop_src:a ~hop_dst:b ~bytes;
              let arrival = at +. link.latency +. (float_of_int bytes /. link.bandwidth) in
              hops arrival rest
          | [ _ ] | [] -> at
        in
        let arrival = hops t.clock path +. jitter_delay t in
        schedule_at t arrival k
  end

let run ?until t =
  let limit = match until with None -> infinity | Some u -> u in
  let rec go () =
    match Dpc_util.Heap.pop t.queue with
    | None -> ()
    | Some ev when ev.at >= limit ->
        (* Reached the horizon: the interval is half-open, so an event
           exactly at [until] stays queued for the next run. Push it back
           (its seq is preserved, so equal-time ordering survives). *)
        Dpc_util.Heap.push t.queue ev
    | Some ev ->
        t.clock <- max t.clock ev.at;
        t.processed <- t.processed + 1;
        ev.action ();
        go ()
  in
  go ()

let events_processed t = t.processed
let total_bytes t = t.total_bytes

let link_bytes t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.link_counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let bucket_bytes t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let messages_sent t = t.messages
