(** Discrete-event network simulator (substitute for ns-3).

    Time is in seconds. Messages are forwarded hop-by-hop along shortest
    paths (store-and-forward): each hop contributes its link latency plus
    the transmission time [bytes / bandwidth], and the bytes are charged to
    that link's counters — which is what the bandwidth figures (11 and 15)
    report. *)

type t

val create :
  ?bucket_width:float ->
  ?jitter:float ->
  ?seed:int ->
  topology:Topology.t ->
  routing:Routing.t ->
  unit ->
  t
(** [bucket_width] (default 1 s) sets the granularity of the
    bandwidth-over-time accounting. [jitter] (default 0) adds a uniform
    random extra delay in [0, jitter] seconds to every message delivery,
    deterministically from [seed] — messages then overtake each other,
    which is how the §5.6 out-of-order scenarios are exercised. *)

val topology : t -> Topology.t
val routing : t -> Routing.t

val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] seconds from now. Events at equal times fire in
    scheduling order. @raise Invalid_argument on a negative delay. *)

val send : t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
(** Deliver a message of [bytes] from [src] to [dst]; the callback fires at
    the destination's arrival time. A self-send delivers at the current
    time (still via the queue, preserving ordering).
    @raise Failure if [dst] is unreachable from [src]. *)

val run : ?until:float -> t -> unit
(** Process queued events in timestamp order until the queue is empty or
    simulated time would reach [until]. The horizon is half-open: an
    event at exactly [until] stays queued, so [run ~until:a] followed by
    [run ~until:b] processes every event in [0, a) then [a, b) exactly
    once. *)

val events_processed : t -> int

val total_bytes : t -> int
(** All bytes transmitted so far, summed over every hop of every message. *)

val link_bytes : t -> ((int * int) * int) list
(** Per-link byte counters, endpoints ordered, sorted. *)

val bucket_bytes : t -> (int * int) list
(** [(bucket_index, bytes)] sorted by bucket; bucket [i] covers
    [i * bucket_width, (i+1) * bucket_width). *)

val messages_sent : t -> int
