type t = string

let mask32 = 0xFFFFFFFF
let rotl32 x n = ((x lsl n) lor ((x land mask32) lsr (32 - n))) land mask32

(* Process one 64-byte block starting at [off] in [msg], updating state. *)
let process_block h msg off =
  let w = Array.make 80 0 in
  for i = 0 to 15 do
    let b k = Char.code (Bytes.get msg (off + (i * 4) + k)) in
    w.(i) <- (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  done;
  for i = 16 to 79 do
    w.(i) <- rotl32 (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
  done;
  let a = ref h.(0)
  and b = ref h.(1)
  and c = ref h.(2)
  and d = ref h.(3)
  and e = ref h.(4) in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then (!b land !c) lor (lnot !b land !d) land mask32, 0x5A827999
      else if i < 40 then !b lxor !c lxor !d, 0x6ED9EBA1
      else if i < 60 then (!b land !c) lor (!b land !d) lor (!c land !d), 0x8F1BBCDC
      else !b lxor !c lxor !d, 0xCA62C1D6
    in
    let tmp = (rotl32 !a 5 + (f land mask32) + !e + k + w.(i)) land mask32 in
    e := !d;
    d := !c;
    c := rotl32 !b 30;
    b := !a;
    a := tmp
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32

let digest_string s =
  let len = String.length s in
  (* Padded length: message + 0x80 + zeros + 8-byte big-endian bit length. *)
  let padded = ((len + 8) / 64 + 1) * 64 in
  let msg = Bytes.make padded '\000' in
  Bytes.blit_string s 0 msg 0 len;
  Bytes.set msg len '\x80';
  let bitlen = len * 8 in
  for k = 0 to 7 do
    Bytes.set msg (padded - 1 - k) (Char.chr ((bitlen lsr (8 * k)) land 0xFF))
  done;
  let h = [| 0x67452301; 0xEFCDAB89; 0x98BADCFE; 0x10325476; 0xC3D2E1F0 |] in
  for blk = 0 to (padded / 64) - 1 do
    process_block h msg (blk * 64)
  done;
  let out = Bytes.create 20 in
  for i = 0 to 4 do
    for k = 0 to 3 do
      Bytes.set out ((i * 4) + k) (Char.chr ((h.(i) lsr (8 * (3 - k))) land 0xFF))
    done
  done;
  Bytes.unsafe_to_string out

let digest_concat parts = digest_string (String.concat "+" parts)

let to_hex t =
  let buf = Buffer.create 40 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) t;
  Buffer.contents buf

let to_raw t = t

let of_raw s =
  if String.length s <> 20 then invalid_arg "Sha1.of_raw: expected 20 bytes";
  s

let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let abbrev t = String.sub (to_hex t) 0 8
let pp fmt t = Format.pp_print_string fmt (abbrev t)
