open Dpc_ndlog
open Dpc_util
module Node = Dpc_engine.Node

(* Rows and side entries first written since the node's last checkpoint
   cut, for O(changes) delta checkpoints (see [Store_exspan] for the
   contract; tables never delete, so "dirty" = "newly inserted"). *)
type dirty = {
  mutable d_prov : Rows.prov_row list;
  mutable d_exec : Rows.rule_exec_row list;
  mutable d_slow : (Sha1.t * Tuple.t) list;
  mutable d_events : (Sha1.t * Tuple.t) list;
}

type node_state = {
  prov : Rows.prov_row Rows.Table.t;  (* keyed by vid hex; outputs only *)
  rule_exec : Rows.rule_exec_row Rows.Table.t;  (* keyed by rid hex *)
  slow_tuples : Side_store.t;  (* vid -> slow tuple, at the executing node *)
  events : Side_store.t;  (* evid -> input event, at the ingress node *)
  dirty : dirty;
  (* Write generation: bumped on every accepted insert (rows and side
     entries). The query cache snapshots the generations of the nodes a
     walk read; a moved generation invalidates the memo entry. *)
  mutable gen : int;
}

type t = {
  delp : Delp.t;
  env : Dpc_engine.Env.t;
  nodes : Node.t array;
  key : node_state Node.key;
  mutable track_dirty : bool;
  mutable degraded_sink : (int -> unit) option;
  mutable cache : Query_cache.t option;
  mutable reset_hooked : bool;
}

let fresh_state () =
  {
    prov = Rows.Table.create ~row_bytes:(Rows.prov_row_bytes ~with_evid:false) ();
    rule_exec = Rows.Table.create ~row_bytes:(Rows.rule_exec_row_bytes ~with_next:true) ();
    slow_tuples = Side_store.create ();
    events = Side_store.create ();
    dirty = { d_prov = []; d_exec = []; d_slow = []; d_events = [] };
    gen = 0;
  }

let create ~delp ~env ~nodes =
  { delp; env; nodes = Node.cluster nodes; key = Node.key ~name:"store.basic" ();
    track_dirty = false; degraded_sink = None; cache = None; reset_hooked = false }

let set_track_dirty t on = t.track_dirty <- on

(* Degraded-query accounting. By default the tick lands in the querier's
   volatile registry and dies with it on a crash; a durable layer
   re-routes it through [set_degraded_sink] (see [Backend] / [Durable])
   so the count survives. *)
let set_degraded_sink t f = t.degraded_sink <- Some f

let degraded_for t querier () =
  match t.degraded_sink with
  | Some f -> f querier
  | None -> Dpc_util.Metrics.incr (Node.metrics t.nodes.(querier)) "crash.queries_degraded"

let nodes t = t.nodes
let state t node = Node.get_or_init t.nodes.(node) t.key ~init:fresh_state

(* Query-cache plumbing: the backend attaches one shared cache; the store
   invalidates by node on §5.5 sig flushes and on crash resets. The
   Node.on_reset hooks are registered once per store and survive the
   reset itself (see [Node]). *)
let invalidate_cache t node =
  match t.cache with None -> () | Some cache -> Query_cache.invalidate_node cache node

let set_query_cache t cache =
  t.cache <- cache;
  if cache <> None && not t.reset_hooked then begin
    t.reset_hooked <- true;
    Array.iteri
      (fun node n -> Node.on_reset n (fun () -> invalidate_cache t node))
      t.nodes
  end

let query_cache t = t.cache

let add_prov t ~node ~key row =
  let st = state t node in
  if Rows.Table.add st.prov ~key row then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_prov <- row :: st.dirty.d_prov;
    Metrics.incr (Node.metrics t.nodes.(node)) "store.prov_rows"
  end

let add_rule_exec t ~node ~key row =
  let st = state t node in
  if Rows.Table.add st.rule_exec ~key row then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_exec <- row :: st.dirty.d_exec;
    Metrics.incr (Node.metrics t.nodes.(node)) "store.rule_exec_rows"
  end

let slow_put t ~node ~key tuple =
  let st = state t node in
  if Side_store.put_new st.slow_tuples ~key tuple then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_slow <- (key, tuple) :: st.dirty.d_slow
  end

let event_put t ~node ~key tuple =
  let st = state t node in
  if Side_store.put_new st.events ~key tuple then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_events <- (key, tuple) :: st.dirty.d_events
  end

(* Must stay byte-identical to [Store_exspan.rid_of]: Table 2 reuses
   Table 1's rids. Same streamed raw-vid encoding, no hex. *)
let rid_of ~rule_name ~node ~vids =
  Sha1.digest_iter (fun f ->
    f rule_name;
    f "+";
    f (string_of_int node);
    List.iter
      (fun vid ->
        f "+";
        f (Sha1.to_raw vid))
      vids)

let on_fire t ~node ~(rule : Ast.rule) ~event ~slow ~head:_ (meta : Dpc_engine.Prov_hook.meta) =
  let event_vid = Rows.vid_of event in
  let slow_vids = List.map Rows.vid_of slow in
  (* Same rid as ExSPAN (Table 2 reuses Table 1's rids). *)
  let rid = rid_of ~rule_name:rule.name ~node ~vids:(slow_vids @ [ event_vid ]) in
  (* The input event's vid is kept in the leaf row (Table 2's rid1 row);
     intermediate event vids are dropped — that is the optimization. *)
  let vids = if meta.prev = None then slow_vids @ [ event_vid ] else slow_vids in
  add_rule_exec t ~node ~key:(Rows.key rid)
    { Rows.rloc = node; rid; rule = rule.name; vids; next = meta.prev };
  List.iter2 (fun tuple vid -> slow_put t ~node ~key:vid tuple) slow slow_vids;
  { meta with prev = Some (node, rid) }

let on_output t ~node output (meta : Dpc_engine.Prov_hook.meta) =
  add_prov t ~node
    ~key:(Rows.key (Rows.vid_of output))
    { Rows.loc = node; vid = Rows.vid_of output; rid = meta.prev; evid = None }

let hook t =
  {
    Dpc_engine.Prov_hook.name = "basic";
    on_input =
      (fun ~node event ->
        let meta = Dpc_engine.Prov_hook.initial_meta event in
        event_put t ~node ~key:meta.evid event;
        meta);
    on_fire = (fun ~node ~rule ~event ~slow ~head meta -> on_fire t ~node ~rule ~event ~slow ~head meta);
    on_output = (fun ~node output meta -> on_output t ~node output meta);
    (* Basic keeps no equivalence state to wipe, but a §5.5 sig still
       means the slow world changed under previously served trees: drop
       this node's memoized reconstructions. *)
    on_slow_update = (fun ~node ~op:_ _ -> invalidate_cache t node);
    (* Ships the (NLoc, NRID) back-pointer. *)
    meta_bytes = (fun _ -> Rows.ref_bytes);
  }

let node_storage t node =
  let st = state t node in
  {
    Rows.empty_storage with
    Rows.prov_bytes = Rows.Table.bytes st.prov;
    rule_exec_bytes = Rows.Table.bytes st.rule_exec;
    event_bytes = Side_store.bytes st.slow_tuples + Side_store.bytes st.events;
    prov_rows = Rows.Table.rows st.prov;
    rule_exec_rows = Rows.Table.rows st.rule_exec;
  }

let total_storage t =
  Array.to_list (Array.mapi (fun i _ -> node_storage t i) t.nodes)
  |> List.fold_left Rows.add_storage Rows.empty_storage

exception Broken of string

type acct = {
  cost : Query_cost.t;
  routing : Dpc_net.Routing.t;
  up : int -> bool;
  querier : int;
  degraded : unit -> unit;
  mutable latency : float;
  mutable entries : int;
  mutable bytes : int;
  mutable rederives : int;
  mutable hop_s : float;
  mutable downs : int;
  mutable complete : bool;
  (* Nodes whose state the walk read (or tried to), for the query cache's
     dependency snapshot. Reset around each memoizable unit of work. *)
  mutable touched : int list;
}

let fresh_acct ~cost ~routing ~up ~querier ~degraded =
  { cost; routing; up; querier; degraded; latency = 0.0; entries = 0; bytes = 0;
    rederives = 0; hop_s = 0.0; downs = 0; complete = true; touched = [] }

let charge_entries acct n =
  acct.entries <- acct.entries + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_entry)

let charge_bytes acct n =
  acct.bytes <- acct.bytes + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_byte)

let charge_rederive acct n =
  acct.rederives <- acct.rederives + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_rederive)

let charge_hop acct ~src ~dst =
  let h = Query_cost.hop acct.cost acct.routing ~src ~dst in
  acct.hop_s <- acct.hop_s +. h;
  acct.latency <- acct.latency +. h

let touch acct node =
  if not (List.mem node acct.touched) then acct.touched <- node :: acct.touched

(* Call before reading any state at [node]: a down node costs the bounded
   retry budget, marks the result partial, and abandons the branch. *)
let require_up acct node =
  touch acct node;
  if not (acct.up node) then begin
    acct.downs <- acct.downs + 1;
    acct.latency <-
      acct.latency
      +. (float_of_int (acct.cost.Query_cost.down_retries + 1)
          *. acct.cost.Query_cost.down_timeout);
    if acct.complete then begin
      acct.complete <- false;
      acct.degraded ()
    end;
    raise (Broken (Printf.sprintf "node %d is down" node))
  end

(* Memoize one unit of reconstruction (everything reachable from [rref]
   for the context [ctx]) in the attached cache, if any. Only walks that
   never hit a down node are recorded; a hit charges one lookup entry and
   skips the hops/rederives entirely — that's the serving-tier win. *)
let with_cache t acct ~rref:(rloc, rid) ~ctx compute =
  match t.cache with
  | None -> compute ()
  | Some cache -> (
      let key = Query_cache.key ~loc:rloc ~rid ~ctx in
      let gen node = (state t node).gen in
      match Query_cache.find cache ~querier:acct.querier ~up:acct.up ~gen key with
      | Some trees ->
          charge_entries acct 1;
          trees
      | None ->
          let outer = acct.touched and downs0 = acct.downs in
          acct.touched <- [];
          let trees = compute () in
          if acct.downs = downs0 then
            Query_cache.add cache ~querier:acct.querier
              ~deps:(List.map (fun n -> (n, gen n)) acct.touched)
              key trees;
          acct.touched <- List.rev_append outer acct.touched;
          trees)

let find_rule t name =
  match List.find_opt (fun (r : Ast.rule) -> String.equal r.name name) t.delp.program.rules with
  | Some r -> r
  | None -> raise (Broken (Printf.sprintf "unknown rule %s" name))

let max_chains = 64

(* Step 1: fetch the optimized chain(s) root-to-leaf, charging hops. The
   rid hashes the rule, node, and body vids, so when an event tuple has
   several upstream derivations one rid carries several rows differing only
   in their back-pointer; the walk branches over them — each branch is one
   derivation, and §5.6's QUERY likewise returns a set. *)
let fetch_chains t acct ~start rref =
  let results = ref [] in
  let rec go at (rloc, rid) acc seen =
    if List.length !results >= max_chains then ()
    else begin
      charge_hop acct ~src:at ~dst:rloc;
      require_up acct rloc;
      let key = (rloc, Rows.key rid) in
      if List.mem key seen then ()
      else begin
        let seen = key :: seen in
        match Rows.Table.find (state t rloc).rule_exec (Rows.key rid) with
        | [] ->
            raise
              (Broken (Printf.sprintf "missing ruleExec %s at node %d" (Rows.hex rid) rloc))
        | rows ->
            List.iter
              (fun (row : Rows.rule_exec_row) ->
                charge_entries acct 1;
                charge_bytes acct (Rows.rule_exec_row_bytes ~with_next:true row);
                match row.next with
                | None -> results := List.rev (row :: acc) :: !results
                | Some next -> go rloc next (row :: acc) seen)
              rows
      end
    end
  in
  go start rref [] [];
  !results

let resolve_slow t acct ~node vid =
  match Side_store.get (state t node).slow_tuples ~key:vid with
  | Some tuple ->
      charge_bytes acct (Tuple.wire_size tuple);
      tuple
  | None ->
      raise (Broken (Printf.sprintf "slow tuple %s not found at node %d" (Rows.hex vid) node))

(* Step 2: re-derive the intermediate events from the leaf upward,
   assembling the provenance tree. [chain] is root-to-leaf. *)
let rederive t acct chain =
  let rec build = function
    | [] -> raise (Broken "empty chain")
    | [ (leaf : Rows.rule_exec_row) ] ->
        (* Leaf row: vids = slow tuples then the input event. *)
        let slow_vids, event_vid =
          match List.rev leaf.vids with
          | ev :: rest -> (List.rev rest, ev)
          | [] -> raise (Broken "leaf ruleExec with no vids")
        in
        let event =
          match Side_store.get (state t leaf.rloc).events ~key:event_vid with
          | Some ev ->
              charge_bytes acct (Tuple.wire_size ev);
              ev
          | None ->
              raise
                (Broken
                   (Printf.sprintf "input event %s not materialized at node %d"
                      (Rows.hex event_vid) leaf.rloc))
        in
        let slow = List.map (resolve_slow t acct ~node:leaf.rloc) slow_vids in
        let rule = find_rule t leaf.rule in
        charge_rederive acct 1;
        begin
          match Dpc_engine.Eval.fire_with_slow ~env:t.env ~rule ~event ~slow with
          | Some head ->
              ({ Prov_tree.rule = leaf.rule; output = head; trigger = Event event; slow }, head)
          | None -> raise (Broken "re-derivation failed at leaf")
        end
    | (row : Rows.rule_exec_row) :: rest ->
        let sub, sub_head = build rest in
        if Tuple.loc sub_head <> row.rloc then
          raise (Broken "re-derived event located at the wrong node");
        let slow = List.map (resolve_slow t acct ~node:row.rloc) row.vids in
        let rule = find_rule t row.rule in
        charge_rederive acct 1;
        begin
          match Dpc_engine.Eval.fire_with_slow ~env:t.env ~rule ~event:sub_head ~slow with
          | Some head ->
              ( { Prov_tree.rule = row.rule; output = head; trigger = Derived sub; slow },
                head )
          | None -> raise (Broken "re-derivation failed")
        end
  in
  build chain

let query t ~cost ~routing ?evid ?(up = fun _ -> true) output =
  let querier = Tuple.loc output in
  let acct = fresh_acct ~cost ~routing ~up ~querier ~degraded:(degraded_for t querier) in
  let trees =
    match require_up acct querier with
    | exception Broken _ -> []
    | () ->
        let htp = Rows.vid_of output in
        let ctx = Sha1.to_raw htp in
        let rows = Rows.Table.find (state t querier).prov (Rows.key htp) in
        charge_entries acct (max 1 (List.length rows));
        List.concat_map
          (fun (r : Rows.prov_row) ->
            match r.rid with
            | None -> []
            | Some rref ->
                with_cache t acct ~rref ~ctx (fun () ->
                    match fetch_chains t acct ~start:querier rref with
                    | chains ->
                        List.filter_map
                          (fun chain ->
                            match rederive t acct chain with
                            | tree, head when Tuple.equal head output -> Some tree
                            | _ -> None
                            | exception Broken _ -> None)
                          chains
                    | exception Broken _ -> []))
          rows
  in
  let trees =
    match evid with
    | None -> trees
    | Some e -> List.filter (fun tr -> Sha1.equal (Prov_tree.event_id tr) e) trees
  in
  (match trees with
  | [] -> ()
  | tr :: _ -> charge_hop acct ~src:(Tuple.loc (Prov_tree.event_of tr)) ~dst:querier);
  { Query_result.trees = Query_result.dedup_trees trees; latency = acct.latency;
    entries = acct.entries; bytes = acct.bytes; rederives = acct.rederives;
    hop_s = acct.hop_s; downs = acct.downs; complete = acct.complete }

let dump t =
  let n = Array.length t.nodes in
  let prov_rows node =
    let acc = ref [] in
    Rows.Table.iter (state t node).prov (fun _ r -> acc := r :: !acc);
    !acc
  in
  let exec_rows node =
    let acc = ref [] in
    Rows.Table.iter (state t node).rule_exec (fun _ r -> acc := r :: !acc);
    !acc
  in
  let ph, pr = Rows.dump_prov ~with_evid:false prov_rows n in
  let rh, rr = Rows.dump_rule_exec ~with_next:true exec_rows n in
  [ ("prov", ph, pr); ("ruleExec", rh, rr) ]

(* Canonical (sorted) order so checkpoints are byte-stable. *)
let table_rows table =
  let acc = ref [] in
  Rows.Table.iter table (fun _ r -> acc := r :: !acc);
  List.sort compare !acc

(* (node, key, tuple) entries across the cluster in canonical order; the
   same wire shape as the old cluster-wide side store. *)
let side_entries t select =
  let acc = ref [] in
  Array.iteri
    (fun node _ ->
      Side_store.iter (select (state t node)) (fun ~key tuple -> acc := (node, key, tuple) :: !acc))
    t.nodes;
  List.sort (fun (n1, k1, _) (n2, k2, _) -> compare (n1, Sha1.to_raw k1) (n2, Sha1.to_raw k2)) !acc

let write_side w entries =
  let open Dpc_util.Serialize in
  write_list w
    (fun (node, key, tuple) ->
      write_varint w node;
      write_string w (Sha1.to_raw key);
      Tuple.serialize w tuple)
    entries

let read_side r t select =
  let open Dpc_util.Serialize in
  ignore
    (read_list r (fun () ->
       let node = read_varint r in
       let key = Sha1.of_raw (read_string r) in
       Side_store.put (select (state t node)) ~key (Tuple.deserialize r)))

let checkpoint t =
  let open Dpc_util.Serialize in
  let w = writer () in
  write_string w "dpc-basic-v1";
  write_varint w (Array.length t.nodes);
  Array.iteri
    (fun node _ ->
      let st = state t node in
      write_list w (Rows.write_prov_row w) (table_rows st.prov);
      write_list w (Rows.write_rule_exec_row w) (table_rows st.rule_exec))
    t.nodes;
  write_side w (side_entries t (fun st -> st.slow_tuples));
  write_side w (side_entries t (fun st -> st.events));
  contents w

let restore ~delp ~env blob =
  let open Dpc_util.Serialize in
  let r = reader blob in
  if not (String.equal (read_string r) "dpc-basic-v1") then
    raise (Corrupt "not a Basic checkpoint");
  let nodes = read_varint r in
  let t = create ~delp ~env ~nodes in
  for _ = 1 to nodes do
    List.iter
      (fun (row : Rows.prov_row) -> add_prov t ~node:row.loc ~key:(Rows.key row.vid) row)
      (read_list r (fun () -> Rows.read_prov_row r));
    List.iter
      (fun (row : Rows.rule_exec_row) -> add_rule_exec t ~node:row.rloc ~key:(Rows.key row.rid) row)
      (read_list r (fun () -> Rows.read_rule_exec_row r))
  done;
  read_side r t (fun st -> st.slow_tuples);
  read_side r t (fun st -> st.events);
  t

(* Per-node checkpoint: every Basic write is already node-local (the
   back-pointer travels in the meta; nobody writes across nodes), so one
   node's tables are exactly what it owns. *)

let node_magic = "dpc-basic-node-v1"
let delta_magic = "dpc-basic-delta-v1"

let clear_dirty (st : node_state) =
  st.dirty.d_prov <- [];
  st.dirty.d_exec <- [];
  st.dirty.d_slow <- [];
  st.dirty.d_events <- []

let write_side_list w entries =
  let open Dpc_util.Serialize in
  write_list w
    (fun (key, tuple) ->
      write_string w (Sha1.to_raw key);
      Tuple.serialize w tuple)
    (List.sort (fun (k1, _) (k2, _) -> compare (Sha1.to_raw k1) (Sha1.to_raw k2)) entries)

let write_node_side w store =
  let acc = ref [] in
  Side_store.iter store (fun ~key tuple -> acc := (key, tuple) :: !acc);
  write_side_list w !acc

let read_node_side r store =
  let open Dpc_util.Serialize in
  ignore
    (read_list r (fun () ->
       let key = Sha1.of_raw (read_string r) in
       Side_store.put store ~key (Tuple.deserialize r)))

(* The canonical node blob: byte-stable for a given table state however
   it was reached. [checkpoint_node] seals dirty tracking around it;
   [digest_node] deliberately does not. *)
let node_blob t node =
  let open Dpc_util.Serialize in
  let st = state t node in
  with_scratch (fun w ->
      write_string w node_magic;
      write_list w (Rows.write_prov_row w) (table_rows st.prov);
      write_list w (Rows.write_rule_exec_row w) (table_rows st.rule_exec);
      write_node_side w st.slow_tuples;
      write_node_side w st.events)

let checkpoint_node t node =
  let blob = node_blob t node in
  clear_dirty (state t node);
  blob

let digest_node t node = Sha1.to_hex (Sha1.digest_string (node_blob t node))

(* O(changes) delta: the dirty rows/side entries only, same encodings as
   [checkpoint_node], canonically sorted. *)
let checkpoint_delta t node =
  let open Dpc_util.Serialize in
  let st = state t node in
  let blob =
    with_scratch (fun w ->
        write_string w delta_magic;
        write_list w (Rows.write_prov_row w) (List.sort compare st.dirty.d_prov);
        write_list w (Rows.write_rule_exec_row w) (List.sort compare st.dirty.d_exec);
        write_side_list w st.dirty.d_slow;
        write_side_list w st.dirty.d_events)
  in
  clear_dirty st;
  blob

let read_rows_into t node r =
  let open Dpc_util.Serialize in
  List.iter
    (fun (row : Rows.prov_row) -> add_prov t ~node ~key:(Rows.key row.vid) row)
    (read_list r (fun () -> Rows.read_prov_row r));
  List.iter
    (fun (row : Rows.rule_exec_row) -> add_rule_exec t ~node ~key:(Rows.key row.rid) row)
    (read_list r (fun () -> Rows.read_rule_exec_row r))

let apply_delta t node blob =
  let open Dpc_util.Serialize in
  let r = reader blob in
  if not (String.equal (read_string r) delta_magic) then
    raise (Corrupt "not a Basic node delta");
  read_rows_into t node r;
  let st = state t node in
  read_node_side r st.slow_tuples;
  read_node_side r st.events;
  if not (at_end r) then raise (Corrupt "trailing bytes in Basic node delta");
  clear_dirty st

let restore_node t node blob =
  let open Dpc_util.Serialize in
  let r = reader blob in
  if not (String.equal (read_string r) node_magic) then
    raise (Corrupt "not a Basic node checkpoint");
  read_rows_into t node r;
  let st = state t node in
  read_node_side r st.slow_tuples;
  read_node_side r st.events;
  clear_dirty st
