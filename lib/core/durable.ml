module S = Dpc_util.Serialize
module Metrics = Dpc_util.Metrics
module Rng = Dpc_util.Rng
module Node = Dpc_engine.Node
module Db = Dpc_engine.Db
module Runtime = Dpc_engine.Runtime
module Journal = Dpc_engine.Journal
module Transport = Dpc_net.Transport
module Reliable = Dpc_net.Reliable

type config = { checkpoint_every : int }

let default_config = { checkpoint_every = 64 }

(* What a node needs to come back: the store tables, the slow-table
   database, and its reliable-channel sequence state, all as of the same
   boundary. *)
type checkpoint = { store : string; db : string; channels : string option }

type node_log = {
  mutable checkpoint : checkpoint option;
  mutable wal : string list;  (* serialized entries, newest first *)
  mutable wal_entries : int;
  mutable boundaries : int;  (* boundary entries currently in the wal *)
  (* Durable counters: they live here, not in the node registry, so a
     crash cannot erase them; [rematerialize] copies them back into the
     wiped registry so metric snapshots stay complete. *)
  mutable crashes : int;
  mutable wal_bytes : int;  (* cumulative bytes ever appended *)
  mutable checkpoints : int;
  mutable recovery_ms : int;
  mutable queries_degraded : int;
}

type node_stats = {
  crashes : int;
  wal_bytes : int;
  wal_entries : int;
  checkpoints : int;
  recovery_ms : int;
  queries_degraded : int;
}

type t = {
  backend : Backend.t;
  runtime : Runtime.t;
  control : Transport.crash_control;
  config : config;
  logs : node_log array;
  recovering : bool array;
      (* Recovery replays the journal through the same code paths that
         produced it; this per-node flag keeps those paths from appending
         the entries a second time. Per-node rather than global: on a
         sharded transport one node's recovery must not suppress the
         journaling of live nodes on other shards. *)
}

let fresh_log () =
  {
    checkpoint = None;
    wal = [];
    wal_entries = 0;
    boundaries = 0;
    crashes = 0;
    wal_bytes = 0;
    checkpoints = 0;
    recovery_ms = 0;
    queries_degraded = 0;
  }

let metrics t node = Node.metrics (Runtime.node t.runtime node)

let take_checkpoint t node =
  let log = t.logs.(node) in
  let channels =
    match Runtime.reliability t.runtime with
    | None -> None
    | Some r -> Some (Reliable.snapshot r ~node)
  in
  log.checkpoint <-
    Some
      {
        store = Backend.checkpoint_node t.backend node;
        db = Db.snapshot (Runtime.db t.runtime node);
        channels;
      };
  log.wal <- [];
  log.wal_entries <- 0;
  log.boundaries <- 0;
  log.checkpoints <- log.checkpoints + 1;
  Metrics.incr (metrics t node) "crash.checkpoints"

let serialize_entry entry =
  let w = S.writer () in
  Journal.write w entry;
  S.contents w

(* WAL-then-apply: called before the entry's effects. A boundary entry
   marks the start of a fresh top-level operation — everything before it
   has fully applied — so compaction cuts the checkpoint just BEFORE
   appending it: the checkpoint covers the old wal, the new wal starts
   with this entry. *)
let append t node entry =
  if not t.recovering.(node) then begin
    let log = t.logs.(node) in
    let bytes = serialize_entry entry in
    let boundary = Journal.is_boundary entry in
    if boundary && t.config.checkpoint_every > 0 && log.boundaries >= t.config.checkpoint_every
    then take_checkpoint t node;
    log.wal <- bytes :: log.wal;
    log.wal_entries <- log.wal_entries + 1;
    if boundary then log.boundaries <- log.boundaries + 1;
    log.wal_bytes <- log.wal_bytes + String.length bytes;
    Metrics.incr (metrics t node) ~by:(String.length bytes) "crash.wal_bytes"
  end

let on_channel_event t (ev : Reliable.channel_event) =
  match ev with
  | Reliable.Next_seq { src; dst; seq } -> append t src (Journal.Next_seq { peer = dst; seq })
  | Reliable.Expected { src; dst; seq } -> append t dst (Journal.Expected { peer = src; seq })

let attach ~backend ~runtime ~control ?(config = default_config) () =
  if config.checkpoint_every < 0 then
    invalid_arg "Durable.attach: checkpoint_every must be non-negative";
  let n = Array.length (Runtime.nodes runtime) in
  let t =
    {
      backend;
      runtime;
      control;
      config;
      logs = Array.init n (fun _ -> fresh_log ());
      recovering = Array.make n false;
    }
  in
  Runtime.set_journal runtime (fun ~node entry -> append t node entry);
  (* Degraded queries count into the durable log like every other
     [crash.*] statistic: the registry tick alone would vanish if the
     QUERIER itself crashed later. [rematerialize] copies it back. *)
  Backend.set_degraded_sink backend (fun querier ->
    let log = t.logs.(querier) in
    log.queries_degraded <- log.queries_degraded + 1;
    Metrics.incr (metrics t querier) "crash.queries_degraded");
  (match Runtime.reliability runtime with
  | None -> ()
  | Some r -> Reliable.set_persist r (fun ev -> on_channel_event t ev));
  Runtime.set_availability runtime control.Transport.is_up;
  (* Seal the pre-attach state (slow tables loaded at build time, empty
     stores) into checkpoint 0, so recovery never depends on journal
     entries from before the journal existed. *)
  Array.iteri (fun node _ -> take_checkpoint t node) (Runtime.nodes runtime);
  t

let is_up t node = t.control.Transport.is_up node

let rematerialize t node =
  let m = metrics t node in
  let log = t.logs.(node) in
  if log.crashes > 0 then Metrics.incr m ~by:log.crashes "crash.crashes";
  if log.wal_bytes > 0 then Metrics.incr m ~by:log.wal_bytes "crash.wal_bytes";
  if log.checkpoints > 0 then Metrics.incr m ~by:log.checkpoints "crash.checkpoints";
  if log.recovery_ms > 0 then Metrics.incr m ~by:log.recovery_ms "crash.recovery_ms";
  if log.queries_degraded > 0 then
    Metrics.incr m ~by:log.queries_degraded "crash.queries_degraded"

let crash t node =
  if is_up t node then begin
    t.control.Transport.crash node;
    Node.reset (Runtime.node t.runtime node);
    (match Runtime.reliability t.runtime with
    | None -> ()
    | Some r -> Reliable.forget r ~node);
    let log = t.logs.(node) in
    log.crashes <- log.crashes + 1;
    rematerialize t node
  end

let restart t node =
  if not (is_up t node) then begin
    let t0 = Sys.time () in
    let log = t.logs.(node) in
    t.recovering.(node) <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering.(node) <- false)
      (fun () ->
        (match log.checkpoint with
        | None -> ()
        | Some c ->
            Backend.restore_node t.backend node c.store;
            Db.load (Runtime.db t.runtime node) c.db;
            (match (c.channels, Runtime.reliability t.runtime) with
            | Some blob, Some r -> Reliable.restore r ~node blob
            | _ -> ()));
        (* The wal is NOT truncated: a second crash before the next
           compaction replays the same checkpoint plus the same entries
           (and whatever lands after this recovery). *)
        let entries = List.rev_map (fun bytes -> Journal.read (S.reader bytes)) log.wal in
        Runtime.replay t.runtime ~node entries);
    let ms = int_of_float (ceil ((Sys.time () -. t0) *. 1000.)) in
    log.recovery_ms <- log.recovery_ms + ms;
    Metrics.incr (metrics t node) ~by:ms "crash.recovery_ms";
    (* Reconnect the wire last: no delivery can race the rebuild. *)
    t.control.Transport.restart node
  end

let checkpoint_now t node =
  if not (is_up t node) then invalid_arg "Durable.checkpoint_now: node is down";
  take_checkpoint t node

let node_stats t node =
  let log = t.logs.(node) in
  {
    crashes = log.crashes;
    wal_bytes = log.wal_bytes;
    wal_entries = log.wal_entries;
    checkpoints = log.checkpoints;
    recovery_ms = log.recovery_ms;
    queries_degraded = log.queries_degraded;
  }

let schedule_crash t ~node ~at ~downtime =
  if downtime <= 0.0 then invalid_arg "Durable.schedule_crash: downtime must be positive";
  let tr = Runtime.transport t.runtime in
  let delay_to at = Float.max 0.0 (at -. Transport.now tr) in
  (* On the node's own shard: crash wipes and restart rebuilds state that
     shard owns (tables, registry, channel endpoints). *)
  Transport.schedule_on tr ~node ~delay:(delay_to at) (fun () -> crash t node);
  Transport.schedule_on tr ~node ~delay:(delay_to (at +. downtime)) (fun () -> restart t node)

(* Seeded crash schedules. Candidates are drawn uniformly, then filtered
   so one node's outages never overlap (an overlapping restart would cut
   a later outage short); the result is sorted by crash time and stable
   for a given seed. *)
let random_schedule ~seed ~nodes ~count ~horizon ~min_down ~max_down =
  if nodes <= 0 then invalid_arg "Durable.random_schedule: need at least one node";
  if min_down <= 0.0 || max_down < min_down then
    invalid_arg "Durable.random_schedule: need 0 < min_down <= max_down";
  let rng = Rng.create ~seed in
  let candidates =
    List.init count (fun _ ->
        let node = Rng.int rng nodes in
        let at = Rng.float rng horizon in
        let downtime =
          if max_down = min_down then min_down else min_down +. Rng.float rng (max_down -. min_down)
        in
        (node, at, downtime))
  in
  let by_time = List.sort (fun (_, a, _) (_, b, _) -> compare a b) candidates in
  let busy_until = Array.make nodes 0.0 in
  List.filter
    (fun (node, at, downtime) ->
      if at < busy_until.(node) then false
      else begin
        busy_until.(node) <- at +. downtime;
        true
      end)
    by_time

let schedule t schedule_list =
  List.iter (fun (node, at, downtime) -> schedule_crash t ~node ~at ~downtime) schedule_list
