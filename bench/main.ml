(* Benchmark harness entry point: regenerates every figure of the paper's
   evaluation (Figures 8-16) plus the §5.4 ablation, and optionally the
   Bechamel micro-benchmarks.

     dune exec bench/main.exe                 # all figures, scaled down
     dune exec bench/main.exe -- --fig 9      # one figure
     dune exec bench/main.exe -- --paper-scale
     dune exec bench/main.exe -- --tiny       # smoke-test scale
     dune exec bench/main.exe -- --json out.json
     dune exec bench/main.exe -- --micro      # micro-benchmarks only *)

let usage () =
  print_endline
    "usage: main.exe [--fig <id>] [--paper-scale] [--tiny] [--seed <n>] [--domains <n>] [--json <path>] [--micro] [--list]";
  print_endline "  ids:";
  List.iter (fun (name, _) -> Printf.printf "    %s\n" name) Figures.all

let () =
  (* The figure runs retain every provenance row they create, so the live
     heap only grows; the default space_overhead (120) makes the major GC
     chase that growth and costs ~15% of fig9's wall clock. Trading memory
     for time is the right call in a benchmark harness. *)
  Gc.set { (Gc.get ()) with Gc.space_overhead = 400 };
  let args = Array.to_list Sys.argv in
  let rec parse cfg figs micro = function
    | [] -> (cfg, figs, micro)
    | "--paper-scale" :: rest -> parse { cfg with Figures.paper_scale = true } figs micro rest
    | "--tiny" :: rest -> parse { cfg with Figures.tiny = true } figs micro rest
    | "--seed" :: n :: rest ->
        parse { cfg with Figures.seed = int_of_string n } figs micro rest
    | "--domains" :: n :: rest ->
        let d = int_of_string n in
        if d < 1 then begin
          Printf.eprintf "--domains must be >= 1\n";
          exit 2
        end;
        parse { cfg with Figures.domains = d } figs micro rest
    | "--json" :: path :: rest ->
        Report.enable path;
        parse cfg figs micro rest
    | "--fig" :: id :: rest ->
        let id = if String.length id <= 2 then "fig" ^ id else id in
        parse cfg (id :: figs) micro rest
    | "--micro" :: rest -> parse cfg figs true rest
    | "--list" :: _ ->
        usage ();
        exit 0
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        usage ();
        exit 2
  in
  let cfg, figs, micro = parse Figures.default_config [] false (List.tl args) in
  let figs = List.rev figs in
  print_endline "Distributed Provenance Compression - evaluation harness";
  Printf.printf "scale: %s, seed: %d\n" (Figures.scale_name cfg) cfg.Figures.seed;
  (* No selection: run everything (all figures plus the micro suite). *)
  let run_all = figs = [] && not micro in
  let micro = micro || run_all in
  let selected =
    if run_all then Figures.all
    else if figs = [] then []
    else
      List.map
        (fun id ->
          match List.assoc_opt id Figures.all with
          | Some f -> (id, f)
          | None ->
              Printf.eprintf "unknown figure id %s\n" id;
              usage ();
              exit 2)
        figs
  in
  List.iter
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      f cfg;
      Report.set_wall name (Unix.gettimeofday () -. t0))
    selected;
  if micro then Micro.run ();
  Report.write ~scale:(Figures.scale_name cfg) ~seed:cfg.Figures.seed
