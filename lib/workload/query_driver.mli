(** Open-loop Zipfian query-storm driver for the serving tier.

    Real provenance query traffic is heavily skewed — a few popular
    outputs (hot routes, incident tuples) draw most of the load — so the
    driver ranks a target population by the existing {!Dpc_util.Zipf}
    sampler and fires seeded storms against a live backend:

    - {!storm} issues a closed burst, e.g. against a quiesced run;
    - {!schedule_storm} arms an open-loop arrival process on the run's
      transport (fixed rate, issue times independent of completions), so
      queries interleave with ingest or with a crash window, riding the
      [?up] degraded path from the crash-fault PR.

    Everything is deterministic given the seed: the same storm against
    the same world issues the same queries in the same order, which is
    what lets the chaos-style suites compare cache-on vs cache-off runs
    digest-for-digest and the bench gate pin p99. *)

type t

val create :
  backend:Dpc_core.Backend.t ->
  routing:Dpc_net.Routing.t ->
  targets:Dpc_ndlog.Tuple.t array ->
  ?exponent:float ->
  ?seed:int ->
  ?cost:Dpc_core.Query_cost.t ->
  unit ->
  t
(** [targets] in rank order: index 0 is the hottest tuple. [exponent]
    (default 1.0) is the Zipf skew, [seed] (default 0) the driver's RNG,
    [cost] (default {!Dpc_core.Query_cost.emulation}) the latency model.
    @raise Invalid_argument if [targets] is empty. *)

type outcome = {
  issued : int;
  complete : int;  (** results with [complete = true] *)
  partial : int;  (** degraded results (a down node was hit) *)
  empty : int;  (** results with no trees *)
  latencies : float list;  (** modeled seconds, in issue order *)
}

val fire : t -> ?up:(int -> bool) -> unit -> Dpc_core.Query_result.t
(** Issue one query at the next sampled rank. *)

val storm : t -> ?up:(int -> bool) -> count:int -> unit -> outcome
(** [count] queries back to back (a closed burst). *)

val schedule_storm :
  t ->
  transport:Dpc_net.Transport.t ->
  ?up:(int -> bool) ->
  start:float ->
  rate:float ->
  count:int ->
  unit ->
  unit -> outcome
(** Arm [count] queries at fixed [rate] per second of simulated time
    beginning [start] seconds from now — an open-loop arrival process.
    Returns a collector to call after the transport run completes; it
    reports whatever has fired so far. [up] is evaluated at each query's
    fire time, so a query landing in a crash window degrades and one
    landing after recovery doesn't.
    @raise Invalid_argument if [rate <= 0] or [count < 0]. *)

type percentiles = { p50 : float; p90 : float; p99 : float; mean : float }

val percentiles_ms : outcome -> percentiles
(** Latency percentiles in milliseconds.
    @raise Invalid_argument on an outcome with no latencies. *)
