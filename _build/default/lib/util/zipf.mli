(** Zipfian sampling.

    The paper's DNS workload draws requested URLs from a Zipfian
    distribution (Jung et al., "DNS performance and the effectiveness of
    caching"); this module provides a seeded sampler over ranks [0, n). *)

type t

val create : ?exponent:float -> int -> t
(** [create n] prepares a sampler over ranks [0, n) with
    P(rank = k) proportional to 1 / (k+1)^exponent. [exponent] defaults to
    1.0. @raise Invalid_argument if [n <= 0] or [exponent < 0]. *)

val sample : t -> Rng.t -> int
(** Draw a rank in [0, n). *)

val pmf : t -> int -> float
(** Probability of rank [k]. @raise Invalid_argument if out of range. *)

val support : t -> int
