(** A node-local relational store with set semantics (the [DB_i] of the
    system model, §3): slow-changing base tables plus derived tuples.

    Each relation carries secondary hash indexes keyed on attribute
    positions (chosen at rule-compile time by {!Eval.plan}). Indexes are
    built lazily on the first {!lookup} and maintained incrementally by
    {!insert}/{!remove}, as is the per-relation serialized-byte counter
    behind {!size_bytes}. *)

type t

val create : unit -> t

val insert : t -> Dpc_ndlog.Tuple.t -> bool
(** [true] if the tuple was new. *)

val remove : t -> Dpc_ndlog.Tuple.t -> bool
(** [true] if the tuple was present. *)

val mem : t -> Dpc_ndlog.Tuple.t -> bool

val iter : t -> string -> (Dpc_ndlog.Tuple.t -> unit) -> unit
(** Visit every tuple of a relation, in unspecified order. *)

val all : t -> string -> Dpc_ndlog.Tuple.t list
(** All tuples of a relation, in unspecified order (no sort). *)

val scan : t -> string -> Dpc_ndlog.Tuple.t list
(** All tuples of a relation, sorted — deterministic but O(n log n); use
    {!iter}/{!all}/{!lookup} where order is not observable. *)

val lookup :
  t -> rel:string -> positions:int list -> key:Dpc_ndlog.Value.t list -> Dpc_ndlog.Tuple.t list
(** The tuples of [rel] whose attributes at [positions] equal [key]
    (element-wise, same order). Served from a secondary hash index: built
    on first use for that positions list, updated on insert/remove
    thereafter. [positions] must be non-empty and in range for every tuple
    of the relation. *)

val clear : t -> unit
(** Drop every relation, index, and byte counter — the store of a node
    whose memory just went away. *)

val snapshot : t -> string
(** Deterministic serialization of the whole store: relations sorted by
    name, tuples in {!scan} order. Seals a cut: the dirty log behind
    {!snapshot_delta} restarts here. *)

val canonical : t -> string
(** The same bytes as {!snapshot} WITHOUT sealing a cut — a pure
    observation for digest comparison, safe between delta cuts. *)

val load : t -> string -> unit
(** Insert every tuple of a {!snapshot} (set semantics: tuples already
    present are kept once). Does not clear first; clears the dirty log
    (the loaded state is a cut, not a change since one).
    @raise Dpc_util.Serialize.Corrupt on a malformed blob. *)

val set_dirty_tracking : t -> bool -> unit
(** Record every effective insert/remove (in order) so {!snapshot_delta}
    can serialize just the changes since the last cut. Off by default. *)

val snapshot_delta : t -> string
(** The insert/remove log since the last cut ({!snapshot},
    {!snapshot_delta}, {!load}, or {!apply_delta}), chronological —
    O(changes), not O(store). Seals a cut. Meaningful only with
    {!set_dirty_tracking} on. *)

val apply_delta : t -> string -> unit
(** Replay one {!snapshot_delta} blob: apply a base {!load} first, then
    each delta oldest to newest. Clears the dirty log.
    @raise Dpc_util.Serialize.Corrupt on a malformed blob. *)

val relations : t -> string list
val cardinality : t -> string -> int
val total_tuples : t -> int

val size_bytes : t -> int
(** Serialized size of the whole store, maintained incrementally (O(1),
    not O(store)). When {!set_debug_recount} is on, every call verifies
    the counter against {!recount_bytes} and raises on divergence. *)

val recount_bytes : t -> int
(** Slow path: re-serialize everything and measure. Equals {!size_bytes}
    by construction; retained as the oracle for the debug assertion and
    tests. *)

val set_debug_recount : bool -> unit
(** Global toggle for the {!size_bytes} self-check (off by default; keep
    it off on hot paths). *)
