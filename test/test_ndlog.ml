(* Tests for dpc_ndlog: values, tuples, lexer, parser, pretty-printer
   round-trips, and the DELP validator on the paper's programs. *)

open Dpc_ndlog

let check = Alcotest.check
let checks = Alcotest.check Alcotest.string

let forwarding_src =
  {|
  // Packet forwarding (paper Figure 1).
  r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
  r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
  |}

let dns_src =
  {|
  // DNS resolution (paper Figure 19).
  r1 request(@RT, URL, HST, RQID) :- url(@HST, URL, RQID), rootServer(@HST, RT).
  r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),
                                     nameServer(@X, DM, SV),
                                     f_isSubDomain(DM, URL) == true.
  r3 dnsResult(@X, URL, IPADDR, HST, RQID) :- request(@X, URL, HST, RQID),
                                              addressRecord(@X, URL, IPADDR).
  r4 reply(@HST, URL, IPADDR, RQID) :- dnsResult(@X, URL, IPADDR, HST, RQID).
  |}

let parse_ok ?(name = "p") src =
  match Parser.parse_program ~name src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let validate_ok src =
  match Delp.validate (parse_ok src) with
  | Ok d -> d
  | Error e -> Alcotest.failf "validation error: %s" (Delp.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_canonical_distinct () =
  let vs =
    [ Value.Int 1; Value.Str "1"; Value.Bool true; Value.Addr 1; Value.Int 0; Value.Str "" ]
  in
  let canons = List.map Value.canonical vs in
  let distinct = List.sort_uniq String.compare canons in
  check Alcotest.int "all canonical forms distinct" (List.length vs) (List.length distinct)

let test_value_canonical_length_prefixed () =
  (* "ab" + "c" vs "a" + "bc" style collisions must be impossible. *)
  check Alcotest.bool "no concat ambiguity" false
    (String.equal
       (Value.canonical (Value.Str "ab") ^ Value.canonical (Value.Str "c"))
       (Value.canonical (Value.Str "a") ^ Value.canonical (Value.Str "bc")))

let test_value_accessors () =
  check Alcotest.int "addr" 3 (Value.addr_exn (Value.Addr 3));
  check Alcotest.int "int" 5 (Value.int_exn (Value.Int 5));
  check Alcotest.bool "bool" true (Value.bool_exn (Value.Bool true));
  checks "str" "x" (Value.str_exn (Value.Str "x"));
  Alcotest.check_raises "addr_exn on int" (Invalid_argument "Value.addr_exn: not an address")
    (fun () -> ignore (Value.addr_exn (Value.Int 1)))

let prop_value_serialize_roundtrip =
  let value_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun i -> Value.Int i) int;
          map (fun s -> Value.Str s) (string_size (int_bound 30));
          map (fun b -> Value.Bool b) bool;
          map (fun a -> Value.Addr a) (int_bound 1000);
        ])
  in
  QCheck.Test.make ~name:"value serialize round-trip" ~count:300
    (QCheck.make value_gen) (fun v ->
      let w = Dpc_util.Serialize.writer () in
      Value.serialize w v;
      Value.equal v (Value.deserialize (Dpc_util.Serialize.reader (Dpc_util.Serialize.contents w))))

(* ------------------------------------------------------------------ *)
(* Tuple *)

let packet_tuple =
  Tuple.make "packet" [ Value.Addr 1; Value.Addr 1; Value.Addr 3; Value.Str "data" ]

let test_tuple_basics () =
  checks "rel" "packet" (Tuple.rel packet_tuple);
  check Alcotest.int "arity" 4 (Tuple.arity packet_tuple);
  check Alcotest.int "loc" 1 (Tuple.loc packet_tuple);
  checks "pp" "packet(@n1, n1, n3, \"data\")" (Tuple.to_string packet_tuple)

let test_tuple_requires_location () =
  Alcotest.check_raises "first arg must be an address"
    (Invalid_argument "Tuple.make: first attribute must be a node address") (fun () ->
      ignore (Tuple.make "packet" [ Value.Int 1 ]));
  Alcotest.check_raises "empty args" (Invalid_argument "Tuple.make: empty argument list")
    (fun () -> ignore (Tuple.make "packet" []))

let test_tuple_canonical_sensitivity () =
  let t1 = Tuple.make "packet" [ Value.Addr 1; Value.Str "data" ] in
  let t2 = Tuple.make "packet" [ Value.Addr 1; Value.Str "date" ] in
  let t3 = Tuple.make "packem" [ Value.Addr 1; Value.Str "data" ] in
  check Alcotest.bool "payload matters" false
    (String.equal (Tuple.canonical t1) (Tuple.canonical t2));
  check Alcotest.bool "relation matters" false
    (String.equal (Tuple.canonical t1) (Tuple.canonical t3))

(* The digest contract with payload interning: for tuples whose [Str]
   payloads are at most [Value.payload_inline_max] bytes the digest is
   exactly sha1(canonical); larger payloads contribute their interned
   rendering ("h:" ^ length ^ ":" ^ raw payload digest) in place of the
   raw bytes, so the digest equals sha1 of the canonical string with
   that substitution. Both memoization orders must agree, and payloads
   spanning SHA-1 blocks are covered. *)
let test_tuple_digest_contract () =
  let mk payload = Tuple.make "packet" [ Value.Addr 3; Value.Int 7; Value.Str payload ] in
  let expected_digest payload =
    let buf = Buffer.create 64 in
    Buffer.add_string buf "packet(";
    Buffer.add_string buf (Value.canonical (Value.Addr 3));
    Buffer.add_char buf ',';
    Buffer.add_string buf (Value.canonical (Value.Int 7));
    Buffer.add_char buf ',';
    (match Value.interned_digest (Value.Str payload) with
    | Some (len, d) ->
        check Alcotest.bool "interned only above the inline threshold" true
          (String.length payload > Value.payload_inline_max);
        check Alcotest.int "interned length is the payload length" (String.length payload) len;
        Value.interned_feed (Buffer.add_string buf) ~len d
    | None ->
        check Alcotest.bool "inline at or below the threshold" true
          (String.length payload <= Value.payload_inline_max);
        Buffer.add_string buf (Value.canonical (Value.Str payload)));
    Buffer.add_char buf ')';
    Dpc_util.Sha1.digest_string (Buffer.contents buf)
  in
  List.iter
    (fun payload ->
      let a = mk payload in
      let da = Tuple.digest a in
      check Alcotest.bool "digest matches the interned canonical rendering" true
        (Dpc_util.Sha1.equal da (expected_digest payload));
      (* Small payloads keep the historical vid = sha1(canonical). *)
      if String.length payload <= Value.payload_inline_max then
        check Alcotest.bool "inline digest = sha1 canonical" true
          (Dpc_util.Sha1.equal da (Dpc_util.Sha1.digest_string (Tuple.canonical a)));
      (* canonical first: the memoized-string path must agree *)
      let b = mk payload in
      ignore (Tuple.canonical b);
      check Alcotest.bool "memoized digest agrees" true
        (Dpc_util.Sha1.equal (Tuple.digest b) da);
      (* the interned digest is cached per domain; a repeat build agrees *)
      check Alcotest.bool "repeat digest agrees" true
        (Dpc_util.Sha1.equal (Tuple.digest (mk payload)) da);
      (* canonical_iter pieces concatenate to canonical *)
      let buf = Buffer.create 16 in
      Value.canonical_iter (Buffer.add_string buf) (Value.Str payload);
      check Alcotest.string "value pieces concat to canonical"
        (Value.canonical (Value.Str payload))
        (Buffer.contents buf))
    [ ""; "x"; String.make 55 'p'; String.make 64 'q'; String.make 65 's'; String.make 500 'r' ]

let test_tuple_serialize_roundtrip () =
  let w = Dpc_util.Serialize.writer () in
  Tuple.serialize w packet_tuple;
  let t = Tuple.deserialize (Dpc_util.Serialize.reader (Dpc_util.Serialize.contents w)) in
  check Alcotest.bool "round-trip" true (Tuple.equal packet_tuple t)

let test_tuple_wire_size_grows_with_payload () =
  let small = Tuple.make "p" [ Value.Addr 1; Value.Str "x" ] in
  let large = Tuple.make "p" [ Value.Addr 1; Value.Str (String.make 500 'x') ] in
  check Alcotest.bool "payload grows wire size" true
    (Tuple.wire_size large > Tuple.wire_size small + 490)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_operators () =
  match Lexer.tokenize ":- := == != < <= > >= + - * / % @ ( ) , ." with
  | Error e -> Alcotest.failf "lex error: %s" e.message
  | Ok toks ->
      let kinds = List.map (fun (t : Lexer.located) -> t.tok) toks in
      check Alcotest.int "token count (incl. eof)" 19 (List.length kinds);
      check Alcotest.bool "ends with eof" true
        (match List.rev kinds with Lexer.T_eof :: _ -> true | _ -> false)

let test_lexer_idents_and_vars () =
  match Lexer.tokenize "packet Route f_isSubDomain X true false" with
  | Error e -> Alcotest.failf "lex error: %s" e.message
  | Ok toks -> begin
      match List.map (fun (t : Lexer.located) -> t.tok) toks with
      | [
       Lexer.T_ident "packet";
       Lexer.T_var "Route";
       Lexer.T_ident "f_isSubDomain";
       Lexer.T_var "X";
       Lexer.T_bool true;
       Lexer.T_bool false;
       Lexer.T_eof;
      ] ->
          ()
      | _ -> Alcotest.fail "unexpected token stream"
    end

let test_lexer_strings_and_comments () =
  match Lexer.tokenize "\"a\\nb\" // comment\n42" with
  | Error e -> Alcotest.failf "lex error: %s" e.message
  | Ok toks -> begin
      match List.map (fun (t : Lexer.located) -> t.tok) toks with
      | [ Lexer.T_str "a\nb"; Lexer.T_int 42; Lexer.T_eof ] -> ()
      | _ -> Alcotest.fail "unexpected token stream"
    end

let test_lexer_error_position () =
  match Lexer.tokenize "abc\n  $" with
  | Ok _ -> Alcotest.fail "expected a lex error"
  | Error e ->
      check Alcotest.int "line" 2 e.line;
      check Alcotest.int "col" 3 e.col

let test_lexer_unterminated_string () =
  match Lexer.tokenize "\"oops" with
  | Ok _ -> Alcotest.fail "expected a lex error"
  | Error e -> checks "message" "unterminated string literal" e.message

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_forwarding () =
  let p = parse_ok forwarding_src in
  check Alcotest.int "two rules" 2 (List.length p.rules);
  let r1 = List.nth p.rules 0 in
  checks "rule name" "r1" r1.name;
  checks "head rel" "packet" r1.head.rel;
  checks "event rel" "packet" r1.event.rel;
  check Alcotest.int "one condition" 1 (List.length r1.conds);
  let r2 = List.nth p.rules 1 in
  match r2.conds with
  | [ Ast.C_cmp (Ast.Eq, Ast.E_var "D", Ast.E_var "L") ] -> ()
  | _ -> Alcotest.fail "r2 condition should be D == L"

let test_parse_dns () =
  let p = parse_ok dns_src in
  check Alcotest.int "four rules" 4 (List.length p.rules);
  let r2 = List.nth p.rules 1 in
  match r2.conds with
  | [ Ast.C_atom ns; Ast.C_cmp (Ast.Eq, Ast.E_call ("f_isSubDomain", [ _; _ ]), rhs) ] ->
      checks "slow atom" "nameServer" ns.rel;
      check Alcotest.bool "rhs is true" true (rhs = Ast.E_const (Value.Bool true))
  | _ -> Alcotest.fail "r2 should have a nameServer join and a UDF comparison"

let test_parse_assignment () =
  match Parser.parse_rule "r2 recv(@L, S, N, DT) :- packet(@L, S, D, DT), N := L + 2." with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok r -> begin
      match r.conds with
      | [ Ast.C_assign ("N", Ast.E_binop (Ast.Add, Ast.E_var "L", Ast.E_const (Value.Int 2))) ]
        ->
          ()
      | _ -> Alcotest.fail "expected the assignment N := L + 2"
    end

let test_parse_expression_precedence () =
  match Parser.parse_rule "r1 p(@L, X) :- q(@L, A, B, C), X := A + B * C." with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok r -> begin
      match r.conds with
      | [ Ast.C_assign ("X", Ast.E_binop (Ast.Add, Ast.E_var "A", Ast.E_binop (Ast.Mul, _, _))) ]
        ->
          ()
      | _ -> Alcotest.fail "B * C should bind tighter than +"
    end

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

let test_parse_missing_at () =
  match Parser.parse_rule "r1 p(L) :- q(@L)." with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> check Alcotest.bool "mentions location specifier" true
                 (contains_substring e "location")

let test_parse_event_must_be_atom () =
  match Parser.parse_rule "r1 p(@L, X) :- X == 1, q(@L, X)." with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ()

let test_parse_negative_literal () =
  match Parser.parse_rule "r1 p(@L, X) :- q(@L, Y), X := Y + -3." with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok r -> begin
      match r.conds with
      | [ Ast.C_assign ("X", Ast.E_binop (Ast.Add, _, Ast.E_const (Value.Int (-3)))) ] -> ()
      | _ -> Alcotest.fail "expected Y + -3"
    end

let test_parser_error_reports_position () =
  match Parser.parse_program ~name:"bad" "r1 p(@L) :- q(@L)" with
  | Ok _ -> Alcotest.fail "expected a parse error (missing final dot)"
  | Error e ->
      check Alcotest.bool "has position prefix" true
        (String.contains e ':' && String.length e > 4)

(* ------------------------------------------------------------------ *)
(* Pretty round-trip *)

let test_pretty_roundtrip_forwarding () =
  let p = parse_ok forwarding_src in
  let printed = Pretty.program_to_string p in
  let p2 = parse_ok printed in
  checks "round-trip stable" printed (Pretty.program_to_string p2)

let test_pretty_roundtrip_dns () =
  let p = parse_ok dns_src in
  let printed = Pretty.program_to_string p in
  let p2 = parse_ok printed in
  checks "round-trip stable" printed (Pretty.program_to_string p2)

let test_pretty_parenthesizes_nested_binops () =
  match Parser.parse_rule "r1 p(@L, X) :- q(@L, A, B, C), X := (A + B) * C." with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok r ->
      let printed = Pretty.rule_to_string r in
      begin
        match Parser.parse_rule printed with
        | Error e -> Alcotest.failf "re-parse error on %S: %s" printed e
        | Ok r2 -> checks "tree preserved" printed (Pretty.rule_to_string r2)
      end

(* ------------------------------------------------------------------ *)
(* DELP validation *)

let test_delp_forwarding () =
  let d = validate_ok forwarding_src in
  checks "input event" "packet" d.input_event;
  checks "output" "recv" d.output_rel;
  check (Alcotest.list Alcotest.string) "slow rels" [ "route" ] d.slow_rels;
  check (Alcotest.list Alcotest.string) "event rels" [ "packet"; "recv" ] d.event_rels;
  check Alcotest.int "packet arity" 4 (Delp.arity d "packet");
  check Alcotest.bool "route is slow" true (Delp.is_slow d "route");
  check Alcotest.bool "packet is event" true (Delp.is_event d "packet");
  check Alcotest.int "packet triggers two rules" 2
    (List.length (Delp.rules_for_event d "packet"))

let test_delp_dns () =
  let d = validate_ok dns_src in
  checks "input event" "url" d.input_event;
  checks "output" "reply" d.output_rel;
  check (Alcotest.list Alcotest.string) "slow rels"
    [ "rootServer"; "nameServer"; "addressRecord" ]
    d.slow_rels;
  check Alcotest.int "event arity" 3 (Delp.event_arity d)

let test_delp_rejects_broken_chain () =
  let src =
    {|
    r1 a(@L, X) :- e(@L, X), s(@L, X).
    r2 b(@L, X) :- c(@L, X), s(@L, X).
    |}
  in
  match Delp.validate (parse_ok src) with
  | Ok _ -> Alcotest.fail "expected Not_chained"
  | Error (Delp.Not_chained { rule; head_of_previous; event }) ->
      checks "rule" "r2" rule;
      checks "head" "a" head_of_previous;
      checks "event" "c" event
  | Error e -> Alcotest.failf "wrong error: %s" (Delp.error_to_string e)

let test_delp_rejects_head_as_condition () =
  let src =
    {|
    r1 a(@L, X) :- e(@L, X), s(@L, X).
    r2 b(@L, X) :- a(@L, X), a(@L, X).
    |}
  in
  match Delp.validate (parse_ok src) with
  | Ok _ -> Alcotest.fail "expected Event_rel_in_conditions"
  | Error (Delp.Event_rel_in_conditions { rel; _ }) -> checks "rel" "a" rel
  | Error e -> Alcotest.failf "wrong error: %s" (Delp.error_to_string e)

let test_delp_rejects_arity_mismatch () =
  let src =
    {|
    r1 a(@L, X) :- e(@L, X), s(@L, X).
    r2 b(@L) :- a(@L, X), s(@L, X, X).
    |}
  in
  match Delp.validate (parse_ok src) with
  | Ok _ -> Alcotest.fail "expected Arity_mismatch"
  | Error (Delp.Arity_mismatch { rel; _ }) -> checks "rel" "s" rel
  | Error e -> Alcotest.failf "wrong error: %s" (Delp.error_to_string e)

let test_delp_rejects_unbound_head_var () =
  let src = "r1 a(@L, Y) :- e(@L, X)." in
  match Delp.validate (parse_ok src) with
  | Ok _ -> Alcotest.fail "expected Unbound_head_var"
  | Error (Delp.Unbound_head_var { var; _ }) -> checks "var" "Y" var
  | Error e -> Alcotest.failf "wrong error: %s" (Delp.error_to_string e)

let test_delp_rejects_duplicate_rule_names () =
  let src =
    {|
    r1 a(@L, X) :- e(@L, X).
    r1 b(@L, X) :- a(@L, X).
    |}
  in
  match Delp.validate (parse_ok src) with
  | Ok _ -> Alcotest.fail "expected Duplicate_rule_name"
  | Error (Delp.Duplicate_rule_name name) -> checks "name" "r1" name
  | Error e -> Alcotest.failf "wrong error: %s" (Delp.error_to_string e)

let test_delp_rejects_empty () =
  match Delp.validate { Ast.prog_name = "empty"; rules = [] } with
  | Ok _ -> Alcotest.fail "expected Empty_program"
  | Error Delp.Empty_program -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Delp.error_to_string e)

let test_delp_assignment_binds_head_var () =
  let src = "r1 a(@L, Y) :- e(@L, X), Y := X + 1." in
  ignore (validate_ok src)

let test_delp_rejects_unbound_assign () =
  let src = "r1 a(@L, Y) :- e(@L, X), Y := Z + 1." in
  match Delp.validate (parse_ok src) with
  | Ok _ -> Alcotest.fail "expected Unbound_assign_var"
  | Error (Delp.Unbound_assign_var { var; _ }) -> checks "var" "Z" var
  | Error e -> Alcotest.failf "wrong error: %s" (Delp.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Ast variable utilities *)

let test_rule_vars_in_order () =
  match Parser.parse_rule "r1 out(@N, S) :- ev(@L, S, D), s(@L, D, N), X := S + 1, X >= 0." with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok r ->
      check (Alcotest.list Alcotest.string) "first-occurrence order"
        [ "N"; "S"; "L"; "D"; "X" ]
        (Ast.rule_vars_in_order r)

let test_map_rule_vars () =
  match Parser.parse_rule "r1 out(@N, S) :- ev(@L, S, D), s(@L, D, N), X := S + 1, X >= 0." with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok r ->
      let renamed = Ast.map_rule_vars (fun v -> "Q" ^ v) r in
      check (Alcotest.list Alcotest.string) "all occurrences renamed"
        [ "QN"; "QS"; "QL"; "QD"; "QX" ]
        (Ast.rule_vars_in_order renamed);
      (* Constants and relation names untouched. *)
      checks "relation kept" "out" renamed.head.rel;
      check Alcotest.bool "identity is identity" true
        (Ast.map_rule_vars (fun v -> v) r = r)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dpc_ndlog"
    [
      ( "value",
        [
          Alcotest.test_case "canonical distinct" `Quick test_value_canonical_distinct;
          Alcotest.test_case "canonical length-prefixed" `Quick
            test_value_canonical_length_prefixed;
          Alcotest.test_case "accessors" `Quick test_value_accessors;
        ]
        @ qsuite [ prop_value_serialize_roundtrip ] );
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "requires location" `Quick test_tuple_requires_location;
          Alcotest.test_case "canonical sensitivity" `Quick test_tuple_canonical_sensitivity;
          Alcotest.test_case "digest contract with payload interning" `Quick
            test_tuple_digest_contract;
          Alcotest.test_case "serialize round-trip" `Quick test_tuple_serialize_roundtrip;
          Alcotest.test_case "wire size" `Quick test_tuple_wire_size_grows_with_payload;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "idents and vars" `Quick test_lexer_idents_and_vars;
          Alcotest.test_case "strings and comments" `Quick test_lexer_strings_and_comments;
          Alcotest.test_case "error position" `Quick test_lexer_error_position;
          Alcotest.test_case "unterminated string" `Quick test_lexer_unterminated_string;
        ] );
      ( "parser",
        [
          Alcotest.test_case "forwarding program" `Quick test_parse_forwarding;
          Alcotest.test_case "dns program" `Quick test_parse_dns;
          Alcotest.test_case "assignment" `Quick test_parse_assignment;
          Alcotest.test_case "precedence" `Quick test_parse_expression_precedence;
          Alcotest.test_case "missing @" `Quick test_parse_missing_at;
          Alcotest.test_case "event must be an atom" `Quick test_parse_event_must_be_atom;
          Alcotest.test_case "negative literal" `Quick test_parse_negative_literal;
          Alcotest.test_case "error position" `Quick test_parser_error_reports_position;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "round-trip forwarding" `Quick test_pretty_roundtrip_forwarding;
          Alcotest.test_case "round-trip dns" `Quick test_pretty_roundtrip_dns;
          Alcotest.test_case "nested binops" `Quick test_pretty_parenthesizes_nested_binops;
        ] );
      ( "ast",
        [
          Alcotest.test_case "rule_vars_in_order" `Quick test_rule_vars_in_order;
          Alcotest.test_case "map_rule_vars" `Quick test_map_rule_vars;
        ] );
      ( "delp",
        [
          Alcotest.test_case "forwarding classification" `Quick test_delp_forwarding;
          Alcotest.test_case "dns classification" `Quick test_delp_dns;
          Alcotest.test_case "broken chain" `Quick test_delp_rejects_broken_chain;
          Alcotest.test_case "head as condition" `Quick test_delp_rejects_head_as_condition;
          Alcotest.test_case "arity mismatch" `Quick test_delp_rejects_arity_mismatch;
          Alcotest.test_case "unbound head var" `Quick test_delp_rejects_unbound_head_var;
          Alcotest.test_case "duplicate rule names" `Quick test_delp_rejects_duplicate_rule_names;
          Alcotest.test_case "empty program" `Quick test_delp_rejects_empty;
          Alcotest.test_case "assignment binds" `Quick test_delp_assignment_binds_head_var;
          Alcotest.test_case "unbound assignment" `Quick test_delp_rejects_unbound_assign;
        ] );
    ]
