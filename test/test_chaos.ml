(* Chaos/property harness: the paper's cross-node invariants under a
   fault-injecting transport.

   The oracle: for seeded random DELP instances (Delp_gen) and all four
   maintenance schemes, the same event stream run over a clean
   Transport.direct and over faulty+Reliable (drops, duplicates, delays on)
   must produce byte-identical query results and provenance-tree digests —
   and the retry/dedup counters must be nonzero, proving the faults
   actually fired. A dedicated regression drops the first transmission of
   every §5.5 sig broadcast and checks the flush still reaches every node
   once the retransmits land.

   The sweep defaults to 10 instances so tier-1 stays fast; the 50-instance
   run is the `chaos` CI step (DPC_CHAOS_FULL=1, see scripts/ci.sh and
   `make chaos`). DPC_CHAOS_INSTANCES overrides the full count. *)

open Dpc_core
open Dpc_testkit

let check = Alcotest.check

let all_schemes =
  [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

(* Fault rates: at least the 10% drop / 5% duplication the acceptance
   criteria demand, plus delays to force reordering beyond what jitter
   alone produces. *)
let chaos_rates =
  Dpc_net.Transport.fault_config ~drop:0.12 ~duplicate:0.06 ~delay:0.25 ~delay_max:0.02 ()

let fault_seed_base = 0xC4A05

let tree_sig tree =
  Dpc_ndlog.Tuple.canonical (Prov_tree.event_of tree) ^ "|" ^ Prov_tree.to_string tree

let query w ?evid out =
  Backend.query w.Delp_gen.backend ~cost:Query_cost.free ~routing:w.Delp_gen.routing ?evid out

(* Every distinct (output, evid) pair with a byte digest of its tree set:
   the world's complete observable provenance state, comparable with (=). *)
let world_digests w =
  List.map
    (fun (out, (meta : Dpc_engine.Prov_hook.meta)) -> (out, meta.evid))
    (Dpc_engine.Runtime.outputs w.Delp_gen.runtime)
  |> List.sort_uniq compare
  |> List.map (fun (out, evid) ->
       let sigs = List.sort_uniq compare (List.map tree_sig (query w ~evid out).trees) in
       ( (Dpc_ndlog.Tuple.canonical out, Dpc_util.Sha1.to_hex evid),
         Dpc_util.Sha1.to_hex (Dpc_util.Sha1.digest_string (String.concat "\n" sigs)) ))
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* The chaos oracle on one generated instance. Returns the fault totals so
   the sweep can prove the faults fired. *)

type totals = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable retransmits : int;
  mutable dup_dropped : int;
  mutable cache_hits : int;
}

let sweep_totals =
  { dropped = 0; duplicated = 0; retransmits = 0; dup_dropped = 0; cache_hits = 0 }

(* Cache-correctness satellite: attach a memoization cache to a finished
   world and read its full observable state twice — once populating, once
   served from the cache. Both passes must reproduce [reference] byte for
   byte; the hit count is returned so the sweep can prove the second pass
   actually served from memory. *)
let check_cached_digests ~(fail : string -> unit) w reference =
  let cache = Backend.attach_query_cache w.Delp_gen.backend in
  if world_digests w <> reference then
    fail "cache-on digests diverged from cache-off (populating pass)";
  if world_digests w <> reference then
    fail "cache-on digests diverged from cache-off (hit pass)";
  let stats = Query_cache.stats cache in
  Backend.detach_query_cache w.Delp_gen.backend;
  stats.Query_cache.hits

let chaos_instance seed =
  let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed) in
  let fault_seed = fault_seed_base + seed in
  List.iter
    (fun scheme ->
      let fail fmt =
        Printf.ksprintf
          (fun msg ->
            Alcotest.failf "seed %d, fault seed %d, %s: %s\nprogram:\n%s" seed fault_seed
              (Backend.scheme_name scheme) msg instance.description)
          fmt
      in
      (* Baseline: clean zero-latency delivery. *)
      let clean =
        Delp_gen.build_world
          ~transport:(Dpc_net.Transport.direct ~nodes:instance.nodes ())
          instance scheme
      in
      Delp_gen.run_events clean instance.events;
      (* Chaos: the same transport behind fault injection, with the
         reliable layer giving the runtime its guarantees back. *)
      let faulty, fstats =
        Dpc_net.Transport.faulty ~config:chaos_rates
          ~rng:(Dpc_util.Rng.create ~seed:fault_seed)
          (Dpc_net.Transport.direct ~nodes:instance.nodes ())
      in
      let chaos =
        Delp_gen.build_world ~transport:faulty ~reliable:Dpc_net.Reliable.default_config
          instance scheme
      in
      Delp_gen.run_events chaos instance.events;
      let rstats =
        match Dpc_engine.Runtime.reliability chaos.Delp_gen.runtime with
        | Some r -> Dpc_net.Reliable.stats r
        | None -> fail "runtime lost its reliability layer"
      in
      if rstats.abandoned > 0 then
        fail "reliable layer abandoned %d messages (retry budget too small for the fault rates)"
          rstats.abandoned;
      let clean_digests = world_digests clean and chaos_digests = world_digests chaos in
      if clean_digests <> chaos_digests then begin
        let render ds =
          String.concat "\n"
            (List.map (fun ((out, evid), d) -> Printf.sprintf "  %s @%s -> %s" out evid d) ds)
        in
        fail "provenance diverged under faults\nclean:\n%s\nchaos:\n%s" (render clean_digests)
          (render chaos_digests)
      end;
      sweep_totals.cache_hits <-
        sweep_totals.cache_hits
        + check_cached_digests ~fail:(fun msg -> fail "%s" msg) chaos clean_digests;
      sweep_totals.dropped <- sweep_totals.dropped + Atomic.get fstats.dropped;
      sweep_totals.duplicated <- sweep_totals.duplicated + Atomic.get fstats.duplicated;
      sweep_totals.retransmits <- sweep_totals.retransmits + rstats.retransmits;
      sweep_totals.dup_dropped <- sweep_totals.dup_dropped + rstats.dup_dropped)
    all_schemes

let run_sweep ~instances =
  List.iter chaos_instance (List.init instances (fun i -> i + 1));
  (* The oracle is vacuous if the faults never fired. *)
  check Alcotest.bool "messages were dropped" true (sweep_totals.dropped > 0);
  check Alcotest.bool "messages were duplicated" true (sweep_totals.duplicated > 0);
  check Alcotest.bool "retransmits happened" true (sweep_totals.retransmits > 0);
  check Alcotest.bool "dedup suppressed duplicates" true (sweep_totals.dup_dropped > 0);
  check Alcotest.bool "query cache served hits" true (sweep_totals.cache_hits > 0)

let test_sweep_quick () = run_sweep ~instances:10

let test_sweep_full () =
  match Sys.getenv_opt "DPC_CHAOS_FULL" with
  | None -> print_endline "skipped (set DPC_CHAOS_FULL=1; `make chaos` does)"
  | Some _ ->
      let instances =
        match Sys.getenv_opt "DPC_CHAOS_INSTANCES" with
        | Some s -> int_of_string s
        | None -> 50
      in
      run_sweep ~instances

(* ------------------------------------------------------------------ *)
(* Crash/recovery oracle: the same instance and event stream, run once
   crash-free and once under a seeded schedule of whole-node crashes with
   durable recovery (Transport.crashable + Durable WAL/checkpoints).
   Events are spread over a time window so outages land mid-stream; after
   the last restart the provenance digests must be byte-identical — the
   recovered nodes rebuilt exactly the state they lost. *)

let crash_seed_base = 0xDEAD5

type crash_totals = {
  mutable crashes : int;
  mutable suppressed : int;
  mutable recovered_entries : int;  (* journal entries replayed across all restarts *)
  mutable crash_cache_hits : int;
}

let crash_sweep_totals =
  { crashes = 0; suppressed = 0; recovered_entries = 0; crash_cache_hits = 0 }

(* Event spacing and outage windows sized together: downtimes stay far
   below the reliable layer's ~16 s retry budget, and the crash horizon
   covers the injection window so outages overlap live traffic. *)
let crash_spacing = 0.4
let crash_horizon = 4.0

let crash_instance seed =
  let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed) in
  let schedule =
    Durable.random_schedule ~seed:(crash_seed_base + seed) ~nodes:instance.nodes ~count:3
      ~horizon:crash_horizon ~min_down:0.3 ~max_down:1.2
  in
  List.iter
    (fun scheme ->
      let fail fmt =
        Printf.ksprintf
          (fun msg ->
            Alcotest.failf "seed %d, %s: %s\nschedule: %s\nprogram:\n%s" seed
              (Backend.scheme_name scheme) msg
              (String.concat "; "
                 (List.map
                    (fun (n, at, d) -> Printf.sprintf "node %d down %.2f-%.2f" n at (at +. d))
                    schedule))
              instance.description)
          fmt
      in
      let clean =
        Delp_gen.build_world
          ~transport:(Dpc_net.Transport.direct ~nodes:instance.nodes ())
          instance scheme
      in
      Delp_gen.run_events ~spacing:crash_spacing clean instance.events;
      let crashable, control =
        Dpc_net.Transport.crashable (Dpc_net.Transport.direct ~nodes:instance.nodes ())
      in
      let world =
        Delp_gen.build_world ~transport:crashable ~reliable:Dpc_net.Reliable.default_config
          instance scheme
      in
      let durable =
        Durable.attach ~backend:world.Delp_gen.backend ~runtime:world.Delp_gen.runtime ~control
          ~config:{ Durable.checkpoint_every = 8; rebase_every = 4 } ()
      in
      Durable.schedule durable schedule;
      (* A cache lives through the crashes too, so every Node.reset runs
         the registered invalidation hook on a real recovery path. *)
      ignore (Backend.attach_query_cache world.Delp_gen.backend);
      Delp_gen.run_events ~spacing:crash_spacing world instance.events;
      (* Every scheduled outage ended inside the run. *)
      Array.iteri
        (fun node _ -> if not (Durable.is_up durable node) then fail "node %d never restarted" node)
        (Dpc_engine.Runtime.nodes world.Delp_gen.runtime |> Array.map (fun _ -> ()));
      let rstats =
        match Dpc_engine.Runtime.reliability world.Delp_gen.runtime with
        | Some r -> Dpc_net.Reliable.stats r
        | None -> fail "runtime lost its reliability layer"
      in
      if rstats.abandoned > 0 then
        fail "reliable layer abandoned %d messages (outage longer than the retry budget)"
          rstats.abandoned;
      let clean_digests = world_digests clean and crash_digests = world_digests world in
      if clean_digests <> crash_digests then begin
        let render ds =
          String.concat "\n"
            (List.map (fun ((out, evid), d) -> Printf.sprintf "  %s @%s -> %s" out evid d) ds)
        in
        fail "provenance diverged across crashes\nclean:\n%s\ncrashed:\n%s" (render clean_digests)
          (render crash_digests)
      end;
      crash_sweep_totals.crash_cache_hits <-
        crash_sweep_totals.crash_cache_hits
        + check_cached_digests ~fail:(fun msg -> fail "%s" msg) world clean_digests;
      let stats = control.Dpc_net.Transport.crash_stats in
      crash_sweep_totals.crashes <- crash_sweep_totals.crashes + Atomic.get stats.crashes;
      crash_sweep_totals.suppressed <- crash_sweep_totals.suppressed + Atomic.get stats.suppressed;
      Array.iteri
        (fun node _ ->
          crash_sweep_totals.recovered_entries <-
            crash_sweep_totals.recovered_entries + (Durable.node_stats durable node).wal_entries)
        (Dpc_core.Backend.nodes world.Delp_gen.backend))
    all_schemes

let run_crash_sweep ~instances =
  List.iter crash_instance (List.init instances (fun i -> i + 1));
  (* The oracle is vacuous if no node ever went down or no delivery was
     ever cut by an outage. *)
  check Alcotest.bool "nodes crashed" true (crash_sweep_totals.crashes > 0);
  check Alcotest.bool "deliveries were suppressed at down nodes" true
    (crash_sweep_totals.suppressed > 0);
  check Alcotest.bool "journals were non-trivial" true (crash_sweep_totals.recovered_entries > 0);
  check Alcotest.bool "query cache served hits after recovery" true
    (crash_sweep_totals.crash_cache_hits > 0)

let test_crash_quick () = run_crash_sweep ~instances:6

let test_crash_full () =
  match Sys.getenv_opt "DPC_CHAOS_FULL" with
  | None -> print_endline "skipped (set DPC_CHAOS_FULL=1; `make crash` does)"
  | Some _ ->
      let instances =
        match Sys.getenv_opt "DPC_CHAOS_INSTANCES" with
        | Some s -> int_of_string s
        | None -> 25
      in
      run_crash_sweep ~instances

(* ------------------------------------------------------------------ *)
(* Partition oracle: the same instance and event stream, run clean and
   behind partitionable + Reliable under a link-outage plan. Every plan
   cuts links for far longer than the retry budget below, so channels
   must suspend, park their unacked tails, and resurrect on heal — and
   after the heal the observable provenance must be byte-identical to
   the perfect-network run, with nothing left parked. Four plan
   families run per instance: a symmetric split, an asymmetric one-way
   cut, a flapping link, and a seeded-random schedule. *)

let partition_seed_base = 0x9A47

(* Retry budget the outages outlast cheaply: attempts at 0.05 / 0.1 /
   0.2 s (the cap), then the channel parks — ~0.35 s of in-flight
   budget against cuts of 1.5 s and up. Jitter is on so the hardened
   backoff path runs inside the oracle, not just in unit tests. *)
let partition_reliable =
  {
    Dpc_net.Reliable.default_config with
    timeout = 0.05;
    max_timeout = 0.2;
    max_retries = 3;
    jitter = 0.3;
  }

let partition_spacing = 0.3

let partition_plans ~nodes ~seed =
  [
    ("split", Dpc_net.Transport.split_plan ~nodes ~left:[ 0 ] ~at:0.5 ~duration:2.0);
    ("asymmetric", Dpc_net.Transport.oneway_plan ~src:0 ~dst:1 ~at:0.4 ~duration:1.8);
    ("flapping", Dpc_net.Transport.flap_plan ~a:0 ~b:1 ~at:0.3 ~cycles:3 ~down:0.5 ~dwell:0.25);
    ( "random",
      Dpc_net.Transport.random_plan ~seed ~nodes ~count:4 ~horizon:2.5 ~min_down:0.6
        ~max_down:2.0 ~dwell:0.2 () );
  ]

type partition_totals = {
  mutable cuts : int;
  mutable lost : int;
  mutable suspensions : int;
  mutable resurrections : int;
  mutable parked : int;
}

let partition_sweep_totals =
  { cuts = 0; lost = 0; suspensions = 0; resurrections = 0; parked = 0 }

let partition_instance seed =
  let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed) in
  List.iter
    (fun scheme ->
      let clean =
        Delp_gen.build_world
          ~transport:(Dpc_net.Transport.direct ~nodes:instance.nodes ())
          instance scheme
      in
      Delp_gen.run_events ~spacing:partition_spacing clean instance.events;
      let clean_digests = world_digests clean in
      List.iter
        (fun (plan_name, plan) ->
          let fail fmt =
            Printf.ksprintf
              (fun msg ->
                Alcotest.failf "seed %d, %s, %s plan: %s\nprogram:\n%s" seed
                  (Backend.scheme_name scheme) plan_name msg instance.description)
              fmt
          in
          let parted, control =
            Dpc_net.Transport.partitionable
              (Dpc_net.Transport.direct ~nodes:instance.nodes ())
          in
          let world =
            Delp_gen.build_world ~transport:parted ~reliable:partition_reliable instance scheme
          in
          Dpc_net.Transport.schedule_plan parted control plan;
          Delp_gen.run_events ~spacing:partition_spacing world instance.events;
          let r =
            match Dpc_engine.Runtime.reliability world.Delp_gen.runtime with
            | Some r -> r
            | None -> fail "runtime lost its reliability layer"
          in
          let rstats = Dpc_net.Reliable.stats r in
          (* The health invariant: nothing parked, nothing suspended once
             every outage has healed. *)
          if rstats.abandoned > 0 then
            fail "%d messages still parked after the heal" rstats.abandoned;
          let stuck = Dpc_net.Reliable.suspended_channels r in
          if stuck > 0 then fail "%d channels still suspended after the heal" stuck;
          let part_digests = world_digests world in
          if clean_digests <> part_digests then begin
            let render ds =
              String.concat "\n"
                (List.map (fun ((out, evid), d) -> Printf.sprintf "  %s @%s -> %s" out evid d) ds)
            in
            fail "provenance diverged across the partition\nclean:\n%s\npartitioned:\n%s"
              (render clean_digests) (render part_digests)
          end;
          let pstats = control.Dpc_net.Transport.partition_stats in
          partition_sweep_totals.cuts <- partition_sweep_totals.cuts + Atomic.get pstats.cuts;
          partition_sweep_totals.lost <- partition_sweep_totals.lost + Atomic.get pstats.lost;
          partition_sweep_totals.suspensions <-
            partition_sweep_totals.suspensions + rstats.suspensions;
          partition_sweep_totals.resurrections <-
            partition_sweep_totals.resurrections + rstats.resurrections;
          partition_sweep_totals.parked <- partition_sweep_totals.parked + rstats.parked)
        (partition_plans ~nodes:instance.nodes ~seed:(partition_seed_base + seed)))
    all_schemes

let run_partition_sweep ~instances =
  List.iter partition_instance (List.init instances (fun i -> i + 1));
  (* The oracle is vacuous unless links actually cut traffic and some
     channel rode the full suspend/park/resurrect path. *)
  check Alcotest.bool "links were cut" true (partition_sweep_totals.cuts > 0);
  check Alcotest.bool "deliveries were lost on down links" true (partition_sweep_totals.lost > 0);
  check Alcotest.bool "channels suspended" true (partition_sweep_totals.suspensions > 0);
  check Alcotest.bool "channels resurrected" true (partition_sweep_totals.resurrections > 0);
  check Alcotest.bool "messages were parked" true (partition_sweep_totals.parked > 0);
  check Alcotest.int "every suspension was matched by a resurrection"
    partition_sweep_totals.suspensions partition_sweep_totals.resurrections

let test_partition_quick () = run_partition_sweep ~instances:3

let test_partition_full () =
  match Sys.getenv_opt "DPC_CHAOS_FULL" with
  | None -> print_endline "skipped (set DPC_CHAOS_FULL=1; `make partitions` does)"
  | Some _ ->
      let instances =
        match Sys.getenv_opt "DPC_CHAOS_INSTANCES" with
        | Some s -> int_of_string s
        | None -> 15
      in
      run_partition_sweep ~instances

(* ------------------------------------------------------------------ *)
(* §5.5 under loss: drop the first transmission of every sig broadcast and
   check the flush (and so re-materialization) still reaches every node
   once the retransmits land. Guards the fig11 delete/insert path. *)

let sig_nodes = 3

(* Line routing for queries; transport is direct, so topology only feeds
   the query-time cost model. *)
let sig_routing () =
  let topo = Dpc_net.Topology.create ~n:sig_nodes in
  let link = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e8 } in
  Dpc_net.Topology.add_link topo 0 1 link;
  Dpc_net.Topology.add_link topo 1 2 link;
  Dpc_net.Routing.compute topo

(* A sig data message on the wire: the runtime's fixed sig payload plus
   the reliable layer's header. Everything else (packets with payloads and
   provenance meta, 12-byte acks) has a different size, so a byte-count
   filter picks out exactly the sig transmissions. *)
let sig_wire_bytes = 28 + 4 + Dpc_net.Reliable.data_header_bytes

let sig_world ~faults =
  let routing = sig_routing () in
  let inner = Dpc_net.Transport.direct ~nodes:sig_nodes () in
  let transport, fstats, reliable =
    if not faults then (inner, None, None)
    else begin
      let seen = Hashtbl.create 16 in
      let tr, stats =
        Dpc_net.Transport.faulty_with inner ~decide:(fun ~src ~dst ~bytes ->
          if bytes <> sig_wire_bytes then Dpc_net.Transport.F_deliver
          else begin
            (* The scenario makes exactly two sig broadcasts (delete +
               reinsert), sent back-to-back — so per channel the first two
               sig transmissions are precisely the first attempt of each
               broadcast. Drop those; let every retransmit through. *)
            let n = Option.value ~default:0 (Hashtbl.find_opt seen (src, dst)) in
            Hashtbl.replace seen (src, dst) (n + 1);
            if n < 2 then Dpc_net.Transport.F_drop else Dpc_net.Transport.F_deliver
          end)
      in
      (tr, Some stats, Some Dpc_net.Reliable.default_config)
    end
  in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env ~nodes:sig_nodes in
  (* Count sig arrivals per node around the store's own hook. *)
  let flushes = Array.make sig_nodes 0 in
  let hook = Backend.hook backend in
  let counting_hook =
    {
      hook with
      Dpc_engine.Prov_hook.on_slow_update =
        (fun ~node ~op tuple ->
          flushes.(node) <- flushes.(node) + 1;
          hook.Dpc_engine.Prov_hook.on_slow_update ~node ~op tuple);
    }
  in
  let runtime =
    Dpc_engine.Runtime.create ~transport ?reliable ~delp ~env:Dpc_apps.Forwarding.env
      ~hook:counting_hook ~nodes:(Backend.nodes backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime
    [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
      Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ];
  (* Phase A: packets against the original table; then a §5.5 route
     refresh (delete + reinsert, the fig11 update pattern — two sig
     broadcasts); then phase B packets that must see re-materialization. *)
  for i = 1 to 5 do
    Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "pre%d" i))
  done;
  let refreshed = Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 in
  Dpc_net.Transport.schedule transport ~delay:1.0 (fun () ->
    ignore (Dpc_engine.Runtime.delete_slow_runtime runtime refreshed);
    Dpc_engine.Runtime.insert_slow_runtime runtime refreshed);
  for i = 1 to 5 do
    Dpc_engine.Runtime.inject runtime ~delay:2.0
      (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "post%d" i))
  done;
  Dpc_engine.Runtime.run runtime;
  (runtime, backend, routing, flushes, fstats)

let test_sig_under_loss () =
  let rt_ref, backend_ref, routing, flushes_ref, _ = sig_world ~faults:false in
  let rt, backend, _, flushes, fstats = sig_world ~faults:true in
  (* The faults fired: 2 broadcasts x 3 destinations, first transmission
     of each dropped. *)
  let fstats = Option.get fstats in
  check Alcotest.bool "first sig transmissions dropped" true (Atomic.get fstats.dropped >= 6);
  let rstats = Option.get (Dpc_engine.Runtime.reliability rt) |> Dpc_net.Reliable.stats in
  check Alcotest.bool "sig retransmits happened" true (rstats.retransmits >= 6);
  check Alcotest.int "no message abandoned" 0 rstats.abandoned;
  (* Every node still saw both sig flushes, exactly once each. *)
  Array.iteri
    (fun node n ->
      check Alcotest.int (Printf.sprintf "flushes at clean node %d" node) 2 n;
      check Alcotest.int (Printf.sprintf "flushes at faulty node %d" node) 2 flushes.(node))
    flushes_ref;
  (* And the provenance is byte-identical to the fault-free run: the
     flushed classes re-materialized on every path. *)
  let digest backend out =
    let trees =
      (Backend.query backend ~cost:Query_cost.free ~routing out).trees
      |> List.map tree_sig |> List.sort_uniq compare
    in
    Dpc_util.Sha1.to_hex (Dpc_util.Sha1.digest_string (String.concat "\n" trees))
  in
  let outputs rt =
    List.map (fun (out, _) -> out) (Dpc_engine.Runtime.outputs rt)
    |> List.sort_uniq Dpc_ndlog.Tuple.compare
  in
  let ref_outs = outputs rt_ref and got_outs = outputs rt in
  check Alcotest.int "all packets delivered" 10 (List.length got_outs);
  check
    (Alcotest.list Alcotest.string)
    "same outputs"
    (List.map Dpc_ndlog.Tuple.canonical ref_outs)
    (List.map Dpc_ndlog.Tuple.canonical got_outs);
  List.iter2
    (fun a b ->
      check Alcotest.string
        (Printf.sprintf "tree digest for %s" (Dpc_ndlog.Tuple.to_string a))
        (digest backend_ref a) (digest backend b))
    ref_outs got_outs

let () =
  Alcotest.run "dpc_chaos"
    [
      ( "chaos oracle",
        [
          Alcotest.test_case "sweep (quick, 10 instances)" `Quick test_sweep_quick;
          Alcotest.test_case "sweep (full, 50 instances)" `Slow test_sweep_full;
        ] );
      ( "crash oracle",
        [
          Alcotest.test_case "crash sweep (quick, 6 instances)" `Quick test_crash_quick;
          Alcotest.test_case "crash sweep (full, 25 instances)" `Slow test_crash_full;
        ] );
      ( "partition oracle",
        [
          Alcotest.test_case "partition sweep (quick, 3 instances)" `Quick test_partition_quick;
          Alcotest.test_case "partition sweep (full, 15 instances)" `Slow test_partition_full;
        ] );
      ( "sig under loss",
        [ Alcotest.test_case "first transmission dropped" `Quick test_sig_under_loss ] );
    ]
