lib/net/sim.ml: Dpc_util Hashtbl List Printf Routing Topology
