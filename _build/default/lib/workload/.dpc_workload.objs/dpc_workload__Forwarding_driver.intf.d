lib/workload/forwarding_driver.mli: Dpc_core Dpc_engine Dpc_ndlog Dpc_net Dpc_util
