open Dpc_ndlog

let source =
  {|// Traffic mirroring: shares the forwarding rule of Fig 1.
r1 packet(@N, S, D, DT)    :- packet(@L, S, D, DT), route(@L, D, N).
r2 mirrorLog(@L, S, D, DT) :- packet(@L, S, D, DT), D == L.
|}

let delp () =
  match Parser.parse_program ~name:"mirror" source with
  | Error e -> failwith ("Mirror.delp: parse error: " ^ e)
  | Ok p -> begin
      match Delp.validate p with
      | Ok d -> d
      | Error e -> failwith ("Mirror.delp: " ^ Delp.error_to_string e)
    end

let env = Dpc_engine.Env.empty

let mirror_log ~at ~src ~dst ~payload =
  Tuple.make "mirrorLog" [ Value.Addr at; Value.Addr src; Value.Addr dst; Value.Str payload ]
