(** Tree topology generator for the DNS evaluation (§6.2): a synthetic
    hierarchy of name servers rooted at node 0, with a controllable maximum
    depth (the paper used 100 name servers with maximum tree depth 27). *)

type t = {
  topology : Topology.t;
  parent : int array;  (** [parent.(0) = -1] for the root *)
  depth : int array;
}

val generate :
  rng:Dpc_util.Rng.t -> n:int -> backbone_depth:int -> link:Topology.link -> t
(** A backbone chain of [backbone_depth] links descends from the root;
    remaining nodes attach uniformly at random to existing nodes.
    @raise Invalid_argument if [n <= 0] or [backbone_depth >= n] or
    [backbone_depth < 0]. *)

val max_depth : t -> int
val children : t -> int -> int list
