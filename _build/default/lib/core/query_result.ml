type t = { trees : Prov_tree.t list; latency : float; entries : int; bytes : int }

let empty = { trees = []; latency = 0.0; entries = 0; bytes = 0 }

let dedup_trees trees = List.sort_uniq Prov_tree.compare trees
