lib/apps/dhcp.mli: Dpc_engine Dpc_ndlog
