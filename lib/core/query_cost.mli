(** Cost model for distributed provenance queries.

    The paper measured query latency on a 25-machine socket testbed
    (Fig 12), where per-hop network latency is LAN-class and the dominant
    cost is fetching, deserializing, and shipping provenance entries —
    which is why ExSPAN, which processes the fat intermediate tuples, is
    about 3x slower than Basic/Advanced. This model reproduces that
    mechanism: each query pays per-hop network latency, a fixed cost per
    entry fetched, and a per-byte cost for every byte processed or
    shipped. Constants are calibrated once (see EXPERIMENTS.md) and shared
    by all three schemes. *)

type t = {
  hop_latency : float option;
      (** per-hop network latency override; [None] uses the topology's link
          latencies along the routing path *)
  per_entry : float;  (** seconds per provenance row fetched *)
  per_byte : float;  (** seconds per byte processed or shipped *)
  per_rederive : float;
      (** seconds per rule re-executed locally at the querier (§4 step 2);
          much cheaper than a distributed row fetch, which is what makes
          Basic/Advanced queries faster than ExSPAN's despite the extra
          recomputation *)
  down_timeout : float;
      (** seconds one attempt against a crashed node waits before timing
          out; a query that touches a down node is charged
          [(down_retries + 1) * down_timeout] and degrades (the result is
          marked partial) instead of hanging *)
  down_retries : int;  (** retries after the first timed-out attempt *)
}

val emulation : t
(** LAN-class latencies + processing costs: the Fig 12 setting. *)

val simulation : t
(** Topology link latencies, same processing costs. *)

val free : t
(** Zero cost everywhere, for correctness tests. *)

val hop : t -> Dpc_net.Routing.t -> src:int -> dst:int -> float
(** Network latency charged for moving the query from [src] to [dst]. *)
