let storage_snapshots ~sim ~every ~until probe =
  let acc = ref [] in
  let n = int_of_float (until /. every) in
  for k = 0 to n do
    let at = float_of_int k *. every in
    Dpc_net.Sim.schedule sim ~delay:at (fun () -> acc := !acc @ [ (at, probe ()) ])
  done;
  acc

let per_node_rates ~backend ~nodes ~duration =
  List.init nodes (fun node ->
    let s = Dpc_core.Backend.node_storage backend node in
    float_of_int (Dpc_core.Rows.provenance_bytes s) /. duration)

let total_provenance_bytes backend =
  Dpc_core.Rows.provenance_bytes (Dpc_core.Backend.total_storage backend)

let bandwidth_series sim =
  List.map
    (fun (bucket, bytes) -> (float_of_int bucket, float_of_int bytes))
    (Dpc_net.Sim.bucket_bytes sim)

let runtime_metrics runtime = Dpc_engine.Runtime.metrics_snapshot runtime

let metrics_rows runtime = Dpc_util.Metrics.to_rows (runtime_metrics runtime)

let metrics_counter runtime name =
  Dpc_util.Metrics.counter (Dpc_engine.Runtime.metrics_snapshot runtime) name
