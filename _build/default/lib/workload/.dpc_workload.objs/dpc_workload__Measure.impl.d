lib/workload/measure.ml: Dpc_core Dpc_net List
