(* Real-process building blocks, unit-tested in one process: the
   dpc-wire-v1 frame codec (round-trips, incremental decoding, corruption
   detection), the durable outbox ledger (persist-before-send across
   simulated kill -9 reloads, torn tails, compaction), the control
   protocol codec, a live two-socket transport pair, and on-disk durable
   recovery digest equality. The full cross-process oracle — three dpcd
   daemons, a real kill -9, digests against the simulator — is `make
   procs` (bin/dpcd.ml cluster mode); these tests cover the pieces it is
   built from. *)

module Wire = Dpc_net.Wire
module Socket = Dpc_net.Socket
module Outbox = Dpc_core.Durable.Outbox

let check = Alcotest.check

let frame kind ~src ~dst ~seq payload : Wire.frame = { kind; src; dst; seq; payload }

let temp_dir prefix = Filename.temp_dir (prefix ^ "-") ""

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir prefix f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let drain decoder =
  let rec go acc =
    match Wire.Decoder.next decoder with Some f -> go (f :: acc) | None -> List.rev acc
  in
  go []

let test_wire_roundtrip () =
  let frames =
    [
      frame Wire.Data ~src:0 ~dst:1 ~seq:1 "hello";
      frame Wire.Ack ~src:1 ~dst:0 ~seq:41 "";
      frame Wire.Hello ~src:2 ~dst:0 ~seq:0 "";
      frame Wire.Ctrl ~src:Wire.control_id ~dst:1 ~seq:7 (String.make 300 'x');
      frame Wire.Data ~src:0 ~dst:2 ~seq:max_int "payload with \x00 bytes \xff";
    ]
  in
  let d = Wire.Decoder.create () in
  List.iter (fun f -> Wire.Decoder.feed_string d (Wire.encode f)) frames;
  let got = drain d in
  check Alcotest.int "all frames decoded" (List.length frames) (List.length got);
  List.iter2
    (fun (a : Wire.frame) (b : Wire.frame) ->
      check Alcotest.bool "kind" true (a.kind = b.kind);
      check Alcotest.int "src" a.src b.src;
      check Alcotest.int "dst" a.dst b.dst;
      check Alcotest.int "seq" a.seq b.seq;
      check Alcotest.string "payload" a.payload b.payload)
    frames got

(* Feed the stream one byte at a time: a frame must appear exactly when
   its last byte lands, never earlier (no partial delivery). *)
let test_wire_incremental () =
  let f1 = frame Wire.Data ~src:0 ~dst:1 ~seq:5 "abc" in
  let f2 = frame Wire.Data ~src:0 ~dst:1 ~seq:6 "defg" in
  let bytes = Wire.encode f1 ^ Wire.encode f2 in
  let d = Wire.Decoder.create () in
  let boundary1 = String.length (Wire.encode f1) in
  let seen = ref 0 in
  String.iteri
    (fun i c ->
      Wire.Decoder.feed_string d (String.make 1 c);
      List.iter
        (fun (got : Wire.frame) ->
          incr seen;
          let expected_at = if !seen = 1 then boundary1 - 1 else String.length bytes - 1 in
          check Alcotest.int "frame completed exactly at its last byte" expected_at i;
          check Alcotest.string "payload" (if !seen = 1 then "abc" else "defg") got.payload)
        (drain d))
    bytes;
  check Alcotest.int "both frames arrived" 2 !seen

let expect_corrupt what bytes =
  let d = Wire.Decoder.create () in
  Wire.Decoder.feed_string d bytes;
  match drain d with
  | exception Wire.Corrupt _ -> ()
  | _ -> Alcotest.failf "%s: decoder accepted corrupt input" what

let test_wire_corruption () =
  let good = Wire.encode (frame Wire.Data ~src:0 ~dst:1 ~seq:3 "payload") in
  let patch i c = String.mapi (fun j x -> if j = i then c else x) good in
  expect_corrupt "bad magic" (patch 0 'X');
  expect_corrupt "bad version" (patch 4 '\xff');
  expect_corrupt "bad kind" (patch 5 '\x09');
  (* Oversized length field: bytes 22-25 big-endian. *)
  expect_corrupt "oversized length" (patch 22 '\x7f');
  (* Flip one payload byte: the SHA-1 digest must catch it. *)
  expect_corrupt "payload digest" (patch (String.length good - 1) '!');
  (* A truncated frame is not corrupt — just incomplete. *)
  let d = Wire.Decoder.create () in
  Wire.Decoder.feed_string d (String.sub good 0 (String.length good - 1));
  check Alcotest.bool "truncated prefix yields nothing" true (Wire.Decoder.next d = None);
  (* Encoder-side validation. *)
  (match Wire.encode (frame Wire.Data ~src:(-1) ~dst:0 ~seq:0 "") with
  | exception Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "negative src accepted");
  match Wire.encode (frame Wire.Data ~src:0 ~dst:0 ~seq:0 (String.make (Wire.max_payload + 1) 'a')) with
  | exception Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized payload accepted"

let wire_fuzz =
  QCheck.Test.make ~count:200 ~name:"wire codec round-trips arbitrary frames"
    QCheck.(
      quad (int_bound 3) (pair (int_bound 1000) (int_bound 1000))
        (int_bound 1_000_000) (string_of_size Gen.(int_bound 2000)))
    (fun (k, (src, dst), seq, payload) ->
      let kind = List.nth [ Wire.Data; Wire.Ack; Wire.Hello; Wire.Ctrl ] k in
      let f = frame kind ~src ~dst ~seq payload in
      let d = Wire.Decoder.create () in
      (* Split the wire bytes at an arbitrary point to exercise buffering. *)
      let bytes = Wire.encode f in
      let cut = seq mod (String.length bytes + 1) in
      Wire.Decoder.feed_string d (String.sub bytes 0 cut);
      let early = Wire.Decoder.next d in
      Wire.Decoder.feed_string d (String.sub bytes cut (String.length bytes - cut));
      match (early, drain d) with
      | None, [ got ] | Some got, [] ->
          got.Wire.kind = f.kind && got.src = f.src && got.dst = f.dst && got.seq = f.seq
          && got.payload = f.payload
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Durable outbox *)

let test_outbox_basic () =
  with_temp_dir "dpc-outbox" (fun dir ->
      let ob = Outbox.open_ ~dir in
      check Alcotest.int "fresh next_seq" 1 (Outbox.next_seq ob ~dst:1);
      Outbox.record_send ob ~dst:1 ~seq:1 "a";
      Outbox.record_send ob ~dst:1 ~seq:2 "b";
      Outbox.record_send ob ~dst:2 ~seq:1 "c";
      Outbox.record_ack ob ~dst:1 ~seq:1;
      check Alcotest.int "next_seq advanced" 3 (Outbox.next_seq ob ~dst:1);
      check Alcotest.int "acked" 1 (Outbox.acked ob ~dst:1);
      check
        (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.string))
        "pending is the unacked tail"
        [ (1, 2, "b"); (2, 1, "c") ]
        (Outbox.pending ob);
      Outbox.close ob)

(* The exactly-once property across a crash: whatever interleaving of
   sends and cumulative acks hit the ledger, a reload (what a restarted
   daemon does) reconstructs exactly the recorded-but-unacked tail — the
   frames to re-offer — and the durable cursor never runs backwards, so
   a re-offered send can never collide with a fresh sequence number. *)
let outbox_crash_reload =
  QCheck.Test.make ~count:60 ~name:"outbox reload reconstructs the unacked tail exactly once"
    QCheck.(list_of_size Gen.(int_range 1 40) (pair (int_bound 2) (int_bound 3)))
    (fun ops ->
      with_temp_dir "dpc-outbox-fuzz" (fun dir ->
          let ob = Outbox.open_ ~dir in
          let next = Array.make 3 1 in
          let sent = Hashtbl.create 16 in
          let acked = Array.make 3 0 in
          List.iter
            (fun (dst, op) ->
              if op < 3 then begin
                (* A send: persist-before-first-send means the record always
                   reaches the ledger, even if the frame never leaves. *)
                let seq = next.(dst) in
                next.(dst) <- seq + 1;
                let payload = Printf.sprintf "p-%d-%d" dst seq in
                Outbox.record_send ob ~dst ~seq payload;
                Hashtbl.replace sent (dst, seq) payload
              end
              else if next.(dst) > 1 then begin
                (* A cumulative ack somewhere into the sent range. *)
                let seq = 1 + ((dst * 7) mod (next.(dst) - 1)) in
                Outbox.record_ack ob ~dst ~seq;
                acked.(dst) <- max acked.(dst) seq
              end)
            ops;
          (* kill -9: no close, no flush — reopen from the bytes on disk. *)
          let reloaded = Outbox.open_ ~dir in
          let expected =
            Hashtbl.fold
              (fun (dst, seq) payload acc ->
                if seq > acked.(dst) then ((dst, seq, payload) :: acc) else acc)
              sent []
            |> List.sort compare
          in
          let ok_pending = Outbox.pending reloaded = expected in
          let ok_cursor =
            List.for_all (fun dst -> Outbox.next_seq reloaded ~dst = next.(dst)) [ 0; 1; 2 ]
          in
          (* Compaction must preserve exactly the same observable state. *)
          Outbox.compact reloaded;
          let ok_compacted = Outbox.pending reloaded = expected in
          let recompacted = Outbox.open_ ~dir in
          let ok_reload2 =
            Outbox.pending recompacted = expected
            && List.for_all (fun dst -> Outbox.next_seq recompacted ~dst = next.(dst)) [ 0; 1; 2 ]
          in
          Outbox.close ob;
          Outbox.close reloaded;
          Outbox.close recompacted;
          ok_pending && ok_cursor && ok_compacted && ok_reload2))

(* A kill mid-append leaves a torn record at the end of the file; the
   reload must keep the valid prefix and drop the tail — safe, because
   an unfinished record's frame was never transmitted. *)
let test_outbox_torn_tail () =
  with_temp_dir "dpc-outbox-torn" (fun dir ->
      let ob = Outbox.open_ ~dir in
      Outbox.record_send ob ~dst:1 ~seq:1 "kept";
      Outbox.record_send ob ~dst:1 ~seq:2 "also kept";
      Outbox.close ob;
      let path = Filename.concat dir "outbox.log" in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
      (* Tag byte of a Send record with nothing behind it. *)
      ignore (Unix.write_substring fd "\x00" 0 1);
      Unix.close fd;
      let reloaded = Outbox.open_ ~dir in
      check
        (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.string))
        "torn tail dropped, prefix kept"
        [ (1, 1, "kept"); (1, 2, "also kept") ]
        (Outbox.pending reloaded);
      check Alcotest.int "cursor from the prefix" 3 (Outbox.next_seq reloaded ~dst:1);
      Outbox.close reloaded)

(* ------------------------------------------------------------------ *)
(* Control protocol codec *)

let test_ctrl_roundtrip () =
  let tuple = Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x" in
  let requests =
    [
      Dpc_proc.Ctrl.Load [ tuple; Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ];
      Dpc_proc.Ctrl.Inject tuple;
      Dpc_proc.Ctrl.Slow_insert tuple;
      Dpc_proc.Ctrl.Slow_delete tuple;
      Dpc_proc.Ctrl.Checkpoint;
      Dpc_proc.Ctrl.Status;
      Dpc_proc.Ctrl.Digest;
      Dpc_proc.Ctrl.Shutdown;
      Dpc_proc.Ctrl.Compact;
      Dpc_proc.Ctrl.Block 2;
      Dpc_proc.Ctrl.Unblock 2;
    ]
  in
  List.iter
    (fun req ->
      check Alcotest.bool "request round-trips" true
        (Dpc_proc.Ctrl.decode_request (Dpc_proc.Ctrl.encode_request req) = req))
    requests;
  let replies =
    [
      Dpc_proc.Ctrl.Ok;
      Dpc_proc.Ctrl.Deleted true;
      Dpc_proc.Ctrl.Status_r
        {
          node = 1;
          recovered = true;
          unacked = 3;
          data_sent = 10;
          data_received = 7;
          fired = 21;
          outputs = 13;
          wal_entries = 5;
          outbox_bytes = 420;
        };
      Dpc_proc.Ctrl.Digest_r { node = 2; store = "abc"; db = "def" };
      Dpc_proc.Ctrl.Error "nope";
    ]
  in
  List.iter
    (fun reply ->
      check Alcotest.bool "reply round-trips" true
        (Dpc_proc.Ctrl.decode_reply (Dpc_proc.Ctrl.encode_reply reply) = reply))
    replies

(* ------------------------------------------------------------------ *)
(* A live socket pair: two transports in one process, pumped alternately. *)

let pump transports ~until_cond ~tag =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (until_cond ())) && Unix.gettimeofday () < deadline do
    List.iter
      (fun tr -> Dpc_net.Transport.run ~until:(Dpc_net.Transport.now tr +. 0.02) tr)
      transports
  done;
  if not (until_cond ()) then Alcotest.failf "%s: condition not reached within 10s" tag

let test_socket_pair () =
  with_temp_dir "dpc-sock" (fun dir ->
      let addr_of node = Printf.sprintf "unix:%s/n%d.sock" dir node in
      let a = Socket.create ~nodes:2 ~local:0 ~addr_of () in
      let b = Socket.create ~nodes:2 ~local:1 ~addr_of () in
      Fun.protect
        ~finally:(fun () ->
          Socket.close a;
          Socket.close b)
        (fun () ->
          let got_a = ref [] and got_b = ref [] in
          Socket.set_deliver a (fun ~src ~payload -> got_a := (src, payload) :: !got_a);
          Socket.set_deliver b (fun ~src ~payload -> got_b := (src, payload) :: !got_b);
          let persist_b = ref [] in
          Socket.set_persist b (fun ev -> persist_b := ev :: !persist_b);
          let ta = Socket.transport a and tb = Socket.transport b in
          for i = 1 to 5 do
            Socket.send_payload a ~dst:1 (Printf.sprintf "a->b %d" i)
          done;
          Socket.send_payload b ~dst:0 "b->a 1";
          pump [ ta; tb ] ~tag:"duplex delivery" ~until_cond:(fun () ->
              List.length !got_b = 5 && List.length !got_a = 1);
          check
            (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
            "b received in channel order"
            (List.init 5 (fun i -> (0, Printf.sprintf "a->b %d" (i + 1))))
            (List.rev !got_b);
          check
            (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
            "a received" [ (1, "b->a 1") ] (List.rev !got_a);
          (* Acks flow back: pump until both outboxes drain. *)
          pump [ ta; tb ] ~tag:"acks drain" ~until_cond:(fun () ->
              Socket.unacked a = 0 && Socket.unacked b = 0);
          (* The receiver persisted every watermark advance, in order,
             before the deliveries it covers. *)
          let expected_marks =
            List.filter_map
              (function Socket.Expected { src = 0; seq } -> Some seq | _ -> None)
              (List.rev !persist_b)
          in
          check (Alcotest.list Alcotest.int) "watermark advances in order" [ 2; 3; 4; 5; 6 ]
            expected_marks;
          let sa = Socket.stats a in
          check Alcotest.int "a sent five" 5 sa.data_sent;
          check Alcotest.int "a received one" 1 sa.data_received))

(* ------------------------------------------------------------------ *)
(* Durable disk recovery, in-process: the same forwarding scenario the
   dpcd oracle runs, on a direct transport with the log mirrored to
   disk; a second world attached to the same directory must rebuild
   byte-identical per-node digests from checkpoint chains + WAL alone. *)

let quiet_control () : Dpc_net.Transport.crash_control =
  {
    crash = ignore;
    restart = ignore;
    is_up = (fun _ -> true);
    crash_stats = { crashes = Atomic.make 0; suppressed = Atomic.make 0 };
  }

let build_disk_world scheme dir =
  let delp = Dpc_apps.Forwarding.delp () in
  let env = Dpc_apps.Forwarding.env in
  let backend = Dpc_core.Backend.make scheme ~delp ~env ~nodes:Dpc_proc.Scenario.nodes in
  let transport = Dpc_net.Transport.direct ~nodes:Dpc_proc.Scenario.nodes () in
  let runtime =
    Dpc_engine.Runtime.create ~transport ~delp ~env ~hook:(Dpc_core.Backend.hook backend)
      ~nodes:(Dpc_core.Backend.nodes backend) ()
  in
  let durable =
    Dpc_core.Durable.attach ~backend ~runtime ~control:(quiet_control ())
      ~config:{ Dpc_core.Durable.checkpoint_every = 4; rebase_every = 2 }
      ~disk:dir ()
  in
  (backend, runtime, durable)

let digests backend runtime =
  Array.init Dpc_proc.Scenario.nodes (fun node ->
      ( Dpc_core.Backend.digest_node backend node,
        Dpc_proc.Scenario.db_digest (Dpc_engine.Runtime.db runtime node) ))

let test_disk_recovery () =
  List.iter
    (fun scheme ->
      with_temp_dir "dpc-disk" (fun dir ->
          let backend, runtime, durable = build_disk_world scheme dir in
          Dpc_engine.Runtime.load_slow runtime (Dpc_proc.Scenario.routes ());
          let phase injects =
            List.iter (fun ev -> Dpc_engine.Runtime.inject runtime ev) injects;
            Dpc_engine.Runtime.run runtime
          in
          phase (Dpc_proc.Scenario.pre_packets ());
          phase (Dpc_proc.Scenario.mid_packets ());
          ignore (Dpc_engine.Runtime.delete_slow_runtime runtime (Dpc_proc.Scenario.refreshed_route ()));
          Dpc_engine.Runtime.insert_slow_runtime runtime (Dpc_proc.Scenario.refreshed_route ());
          Dpc_engine.Runtime.run runtime;
          phase (Dpc_proc.Scenario.post_packets ());
          let before = digests backend runtime in
          (* kill -9 durability model: write() to the kernel survives the
             signal, but entries still in the userspace group-commit buffer
             do not. A real daemon flushes before every ack and outbox
             record, so a quiescent cluster has an empty buffer — model
             that quiescent point before handing the directory over. *)
          for node = 0 to Dpc_proc.Scenario.nodes - 1 do
            Dpc_core.Durable.flush_wal durable node
          done;
          (* The "restarted process": a fresh world over the same directory. *)
          let backend2, runtime2, durable2 = build_disk_world scheme dir in
          for node = 0 to Dpc_proc.Scenario.nodes - 1 do
            if not (Dpc_core.Durable.recovered durable2 node) then
              Alcotest.failf "node %d found no on-disk state" node;
            Dpc_core.Durable.recover durable2 node
          done;
          let after = digests backend2 runtime2 in
          Array.iteri
            (fun node (store, db) ->
              let store', db' = after.(node) in
              check Alcotest.string
                (Printf.sprintf "%s node %d store digest" (Dpc_core.Backend.scheme_name scheme) node)
                store store';
              check Alcotest.string
                (Printf.sprintf "%s node %d db digest" (Dpc_core.Backend.scheme_name scheme) node)
                db db')
            before))
    Dpc_core.Backend.all_schemes

let () =
  Alcotest.run "dpc_proc"
    [
      ( "wire codec",
        [
          Alcotest.test_case "round-trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "incremental, no partial delivery" `Quick test_wire_incremental;
          Alcotest.test_case "corruption detected" `Quick test_wire_corruption;
          QCheck_alcotest.to_alcotest wire_fuzz;
        ] );
      ( "durable outbox",
        [
          Alcotest.test_case "record / ack / pending" `Quick test_outbox_basic;
          QCheck_alcotest.to_alcotest outbox_crash_reload;
          Alcotest.test_case "torn tail dropped" `Quick test_outbox_torn_tail;
        ] );
      ("control protocol", [ Alcotest.test_case "round-trip" `Quick test_ctrl_roundtrip ]);
      ("socket transport", [ Alcotest.test_case "duplex pair" `Quick test_socket_pair ]);
      ( "disk recovery",
        [ Alcotest.test_case "digest equality, all schemes" `Quick test_disk_recovery ] );
    ]
