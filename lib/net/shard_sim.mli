(** Multi-domain sharded transport.

    Partitions the node set round-robin into [domains] shards, each owned
    by one OCaml 5 domain with its own event heap, virtual clock, and
    byte/message counters. Cross-shard messages cross mutex-guarded
    inboxes between the barrier-separated phases of a conservative
    time-window loop: each round processes every event in
    [T, T + latency), where [T] is the global minimum pending timestamp
    and [latency] (the minimum wire delay) is the lookahead that makes it
    impossible for a shard to receive a message from its past.

    {b Ownership.} All callbacks concerning node [n] — deliveries, timers
    armed with [schedule_on ~node:n] — execute on shard
    [n mod domains]. Per-node engine state (the [Node.t] registries, the
    store tables, the reliable-channel endpoints) therefore stays
    single-owner and lock-free.

    {b Determinism.} Every event is keyed [(time, origin, ctr)] where
    [origin] is the creating node and [ctr] a per-origin counter; the key
    totally orders events identically whatever the shard count. A fault-
    free run under [~domains:4] executes each node's event sequence — and
    therefore produces provenance digests — byte-identical to
    [~domains:1]; under hashed fault or crash schedules the existing
    confluence oracles close the gap. [run] returning is the merge
    barrier: the worker-domain joins order every shard effect before
    anything the caller does next. *)

type t

val create :
  ?latency:float -> ?jitter:float -> ?seed:int -> domains:int -> nodes:int -> unit -> t
(** [latency] (default [0.001]) is the fixed wire delay and the window
    lookahead; it must be positive. [jitter] (default [0]) adds a
    per-message extra delay, uniform in [0, jitter), drawn from a pure
    hash of [(seed, src, dst, channel count)] so it is identical whatever
    the shard count.
    @raise Invalid_argument if [domains] or [nodes] is not positive,
    [latency] is not positive, or [jitter] is negative. *)

val transport : t -> Transport.t
(** The {!Transport.S} view; [Transport.shards] is [domains]. *)

val domains : t -> int
val nodes : t -> int

val shard_of : t -> int -> int
(** [shard_of t n = n mod domains t]. *)

val partition : domains:int -> nodes:int -> int array
(** The round-robin shard map as an array ([partition.(n)] is [n]'s
    shard), for tests and tooling that reason about the layout without
    building a transport.
    @raise Invalid_argument if either argument is not positive. *)

val run : ?until:float -> t -> unit
(** Same contract as {!Transport.run} (half-open horizon). [~domains:1]
    runs inline on the calling domain; otherwise one worker domain per
    shard is spawned for the duration of the call and joined before it
    returns. A callback exception is re-raised here on the caller, after
    all workers have parked.
    @raise Invalid_argument on re-entrant use. *)

val now : t -> float
(** The calling shard's clock mid-run; outside [run], the maximum clock
    reached so far. *)

val total_bytes : t -> int
val messages : t -> int
(** Cluster-wide accounting, summed over shards; call from outside [run]
    (the per-shard counters are owner-written). *)
