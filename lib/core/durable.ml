module S = Dpc_util.Serialize
module Metrics = Dpc_util.Metrics
module Rng = Dpc_util.Rng
module Clock = Dpc_util.Clock
module Node = Dpc_engine.Node
module Db = Dpc_engine.Db
module Runtime = Dpc_engine.Runtime
module Journal = Dpc_engine.Journal
module Transport = Dpc_net.Transport
module Reliable = Dpc_net.Reliable

type config = { checkpoint_every : int; rebase_every : int }

let default_config = { checkpoint_every = 64; rebase_every = 8 }

(* Real-disk plumbing. The durability target is crash-stop of the
   PROCESS (kill -9), not power loss: a completed [write] survives the
   process because the page cache belongs to the kernel, so "durable"
   here means written, not fsynced. Upgrading to power-failure
   durability is one fsync per flush point, in exactly these spots. *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Atomic file replacement: full content to a temp name, then rename.
   Readers see the old version or the new one, never a torn middle. *)
let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) (fun () -> write_all fd contents);
  Sys.rename tmp path

let read_file path = In_channel.with_open_bin path In_channel.input_all

module Outbox = struct
  (* The persist-before-send ledger: a [Send] record reaches this file
     before the frame's first transmission, so an outgoing message can
     never be lost to a sender crash — on restart the unacked tail is
     re-offered and the receiver's dedup window absorbs any overlap.
     [Ack] records let compaction drop delivered payloads; [Mark]
     records survive compaction as the per-channel sequence summary
     (without them a compacted ledger would forget how many sends ever
     existed, and recovery could re-issue a used sequence number). *)

  type chan = {
    mutable recorded : int;  (* highest sequence ever written for this dst *)
    mutable acked : int;  (* highest cumulatively acknowledged sequence *)
    pending : (int, string) Hashtbl.t;  (* recorded, not yet acked *)
  }

  type t = {
    path : string;
    mutable fd : Unix.file_descr;
    chans : (int, chan) Hashtbl.t;
    mutable bytes : int;
  }

  let magic = "dpc-outbox-v1"

  let chan_of t dst =
    match Hashtbl.find_opt t.chans dst with
    | Some c -> c
    | None ->
        let c = { recorded = 0; acked = 0; pending = Hashtbl.create 8 } in
        Hashtbl.replace t.chans dst c;
        c

  let drop_acked c upto =
    Hashtbl.iter
      (fun seq _ -> if seq <= upto then Hashtbl.remove c.pending seq)
      (Hashtbl.copy c.pending)

  let apply_send t dst seq payload =
    let c = chan_of t dst in
    if seq > c.recorded then c.recorded <- seq;
    if seq > c.acked then Hashtbl.replace c.pending seq payload

  let apply_ack t dst seq =
    let c = chan_of t dst in
    if seq > c.acked then begin
      c.acked <- seq;
      drop_acked c seq
    end

  let apply_mark t dst recorded acked =
    let c = chan_of t dst in
    if recorded > c.recorded then c.recorded <- recorded;
    if acked > c.acked then begin
      c.acked <- acked;
      drop_acked c acked
    end

  let read_record t r =
    match S.read_varint r with
    | 0 ->
        let dst = S.read_varint r in
        let seq = S.read_varint r in
        let payload = S.read_string r in
        apply_send t dst seq payload
    | 1 ->
        let dst = S.read_varint r in
        let seq = S.read_varint r in
        apply_ack t dst seq
    | 2 ->
        let dst = S.read_varint r in
        let recorded = S.read_varint r in
        let acked = S.read_varint r in
        apply_mark t dst recorded acked
    | tag -> raise (S.Corrupt (Printf.sprintf "outbox: unknown record tag %d" tag))

  let open_ ~dir =
    let path = Filename.concat dir "outbox.log" in
    let t = { path; fd = Unix.stdin; chans = Hashtbl.create 8; bytes = 0 } in
    let existing = Sys.file_exists path in
    if existing then begin
      let contents = read_file path in
      if contents <> "" then begin
        let r = S.reader contents in
        (match S.read_string r with
        | m when m = magic -> ()
        | m -> raise (S.Corrupt (Printf.sprintf "outbox: bad magic %S in %s" m path))
        | exception S.Corrupt _ ->
            raise (S.Corrupt (Printf.sprintf "outbox: unreadable header in %s" path)));
        (* A kill can tear the last record mid-write; everything after the
           first undecodable byte was never acknowledged to anyone (the
           record had not finished persisting, so the frame never went
           out) and is safely dropped. *)
        (try
           while not (S.at_end r) do
             read_record t r
           done
         with S.Corrupt _ -> ());
        t.bytes <- String.length contents
      end
    end;
    t.fd <- Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644;
    if (not existing) || t.bytes = 0 then begin
      let header = S.with_scratch (fun w -> S.write_string w magic) in
      write_all t.fd header;
      t.bytes <- String.length header
    end;
    t

  let append t blob =
    write_all t.fd blob;
    t.bytes <- t.bytes + String.length blob

  let record_send t ~dst ~seq payload =
    apply_send t dst seq payload;
    append t
      (S.with_scratch (fun w ->
           S.write_varint w 0;
           S.write_varint w dst;
           S.write_varint w seq;
           S.write_string w payload))

  let record_ack t ~dst ~seq =
    if seq > (chan_of t dst).acked then begin
      apply_ack t dst seq;
      append t
        (S.with_scratch (fun w ->
             S.write_varint w 1;
             S.write_varint w dst;
             S.write_varint w seq))
    end

  let pending t =
    Hashtbl.fold
      (fun dst c acc ->
        Hashtbl.fold (fun seq payload acc -> (dst, seq, payload) :: acc) c.pending acc)
      t.chans []
    |> List.sort compare

  let next_seq t ~dst = (chan_of t dst).recorded + 1
  let recorded t ~dst = (chan_of t dst).recorded
  let acked t ~dst = (chan_of t dst).acked
  let size_bytes t = t.bytes

  let compact t =
    let blob =
      S.with_scratch (fun w ->
          S.write_string w magic;
          let dsts = Hashtbl.fold (fun dst _ acc -> dst :: acc) t.chans [] |> List.sort compare in
          List.iter
            (fun dst ->
              let c = chan_of t dst in
              S.write_varint w 2;
              S.write_varint w dst;
              S.write_varint w c.recorded;
              S.write_varint w c.acked;
              Hashtbl.fold (fun seq payload acc -> (seq, payload) :: acc) c.pending []
              |> List.sort compare
              |> List.iter (fun (seq, payload) ->
                     S.write_varint w 0;
                     S.write_varint w dst;
                     S.write_varint w seq;
                     S.write_string w payload))
            dsts)
    in
    Unix.close t.fd;
    write_file_atomic t.path blob;
    t.fd <- Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644;
    t.bytes <- String.length blob

  let close t = try Unix.close t.fd with _ -> ()
end

(* What a node needs to come back: the store tables, the slow-table
   database, and its reliable-channel sequence state, all as of the same
   boundary. A delta cut carries the store and db CHANGES since the
   previous cut; only the channel snapshot (O(channels) sequence
   numbers, not O(state)) is always full. *)
type checkpoint = { store : string; db : string; channels : string option }

(* One node's on-disk mirror: cut files + a write-ahead log named by
   epoch, tied together by an atomically-replaced manifest. The manifest
   rename is the commit point of a compaction; every other file write
   happens strictly before it, so a crash at any instant leaves either
   the old (cuts, wal) generation or the new one fully intact. *)
type disk = {
  dir : string;
  mutable wal_fd : Unix.file_descr;
  mutable epoch : int;  (* names the live wal file, wal-<epoch>.log *)
  mutable base_id : int;  (* cut id of the full checkpoint; -1 before the first *)
  mutable delta_ids : int list;  (* oldest first *)
  mutable next_cut : int;
  outbox : Outbox.t;
}

type node_log = {
  mutable checkpoint : checkpoint option;  (* last full (base) cut *)
  mutable deltas : checkpoint list;  (* delta cuts since the base, newest first *)
  mutable wal : string list;  (* serialized entry groups, newest first *)
  mutable wal_entries : int;
  mutable boundaries : int;  (* boundary entries currently in the wal *)
  (* Group commit: entries of the current top-level operation accumulate
     here and land in [wal] as ONE blob when the next boundary (or a
     crash/checkpoint) closes the group — one buffered append and one
     metrics tick per operation instead of per entry. *)
  pending : S.writer;
  mutable pending_entries : int;
  mutable pending_bytes : int;
  (* Durable counters: they live here, not in the node registry, so a
     crash cannot erase them; [rematerialize] copies them back into the
     wiped registry so metric snapshots stay complete. *)
  mutable crashes : int;
  mutable wal_bytes : int;  (* cumulative bytes ever appended (incl. pending) *)
  mutable checkpoints : int;
  mutable checkpoint_bytes : int;  (* cumulative serialized cut bytes *)
  mutable delta_cuts : int;  (* how many of [checkpoints] were deltas *)
  mutable delta_bytes : int;  (* their share of [checkpoint_bytes] *)
  (* Recovery time accumulates as a float and is rounded ONCE at each
     read: summing per-recovery ceilings would overstate a node that
     recovers many times by up to a millisecond each. [recovery_ms_ticked]
     is what the metrics registry has already been told, so ticks carry
     only the rounded delta. *)
  mutable recovery_s : float;
  mutable recovery_ms_ticked : int;
  mutable queries_degraded : int;
  mutable disk : disk option;
}

type node_stats = {
  crashes : int;
  wal_bytes : int;
  wal_entries : int;
  checkpoints : int;
  checkpoint_bytes : int;
  delta_cuts : int;
  delta_bytes : int;
  recovery_ms : int;
  queries_degraded : int;
}

type t = {
  backend : Backend.t;
  runtime : Runtime.t;
  control : Transport.crash_control;
  config : config;
  logs : node_log array;
  from_disk : bool array;
      (* Nodes whose log was loaded from an existing on-disk state at
         attach; their volatile state is rebuilt by {!recover}, not
         sealed into a fresh checkpoint 0. *)
  mutable chan_snapshot : (int -> string option) option;
  mutable chan_restore : (int -> string -> unit) option;
  recovering : bool array;
      (* Recovery replays the journal through the same code paths that
         produced it; this per-node flag keeps those paths from appending
         the entries a second time. Per-node rather than global: on a
         sharded transport one node's recovery must not suppress the
         journaling of live nodes on other shards. *)
}

let fresh_log () =
  {
    checkpoint = None;
    deltas = [];
    wal = [];
    wal_entries = 0;
    boundaries = 0;
    pending = S.writer ();
    pending_entries = 0;
    pending_bytes = 0;
    crashes = 0;
    wal_bytes = 0;
    checkpoints = 0;
    checkpoint_bytes = 0;
    delta_cuts = 0;
    delta_bytes = 0;
    recovery_s = 0.0;
    recovery_ms_ticked = 0;
    queries_degraded = 0;
    disk = None;
  }

(* ---- the on-disk format (dpc-manifest-v1 / dpc-cut-v1) --------------- *)

let manifest_magic = "dpc-manifest-v1"
let cut_magic = "dpc-cut-v1"
let wal_path dir epoch = Filename.concat dir (Printf.sprintf "wal-%d.log" epoch)
let cut_path dir id = Filename.concat dir (Printf.sprintf "cut-%d.bin" id)
let manifest_path dir = Filename.concat dir "manifest"

let write_manifest d =
  write_file_atomic (manifest_path d.dir)
    (S.with_scratch (fun w ->
         S.write_string w manifest_magic;
         S.write_varint w d.epoch;
         S.write_varint w d.base_id;
         S.write_list w (S.write_varint w) d.delta_ids))

let read_manifest dir =
  let r = S.reader (read_file (manifest_path dir)) in
  let m = S.read_string r in
  if m <> manifest_magic then raise (S.Corrupt (Printf.sprintf "manifest: bad magic %S" m));
  let epoch = S.read_varint r in
  let base_id = S.read_varint r in
  let delta_ids = S.read_list r (fun () -> S.read_varint r) in
  (epoch, base_id, delta_ids)

let write_cut dir id ~is_delta (c : checkpoint) =
  write_file_atomic (cut_path dir id)
    (S.with_scratch (fun w ->
         S.write_string w cut_magic;
         S.write_bool w is_delta;
         S.write_string w c.store;
         S.write_string w c.db;
         match c.channels with
         | None -> S.write_bool w false
         | Some s ->
             S.write_bool w true;
             S.write_string w s))

let read_cut dir id =
  let r = S.reader (read_file (cut_path dir id)) in
  let m = S.read_string r in
  if m <> cut_magic then raise (S.Corrupt (Printf.sprintf "cut %d: bad magic %S" id m));
  let is_delta = S.read_bool r in
  let store = S.read_string r in
  let db = S.read_string r in
  let channels = if S.read_bool r then Some (S.read_string r) else None in
  (is_delta, { store; db; channels })

(* Drop files a crash between manifest commit and cleanup left behind. *)
let sweep_unreferenced d =
  let referenced name =
    name = "manifest" || name = "outbox.log"
    || name = Filename.basename (wal_path d.dir d.epoch)
    || List.exists
         (fun id -> name = Filename.basename (cut_path d.dir id))
         (d.base_id :: d.delta_ids)
  in
  Array.iter
    (fun name ->
      let is_ours =
        String.length name >= 4
        && (String.sub name 0 4 = "cut-" || String.sub name 0 4 = "wal-"
           || Filename.check_suffix name ".tmp")
      in
      if is_ours && not (referenced name) then
        try Unix.unlink (Filename.concat d.dir name) with _ -> ())
    (Sys.readdir d.dir)

let metrics t node = Node.metrics (Runtime.node t.runtime node)

let recovery_ms_of log = int_of_float (ceil (log.recovery_s *. 1000.))

(* Close the open entry group: one wal append, one metrics tick. *)
let flush_group t node =
  let log = t.logs.(node) in
  if log.pending_entries > 0 then begin
    let blob = S.contents log.pending in
    log.wal <- blob :: log.wal;
    (match log.disk with None -> () | Some d -> write_all d.wal_fd blob);
    S.reset log.pending;
    log.pending_entries <- 0;
    Metrics.incr (metrics t node) ~by:log.pending_bytes "crash.wal_bytes";
    log.pending_bytes <- 0
  end

let cut_bytes c =
  String.length c.store + String.length c.db
  + match c.channels with Some s -> String.length s | None -> 0

(* A cut is a DELTA while a base exists and fewer than [rebase_every - 1]
   deltas follow it; the next cut after that rebases to a fresh full
   checkpoint, bounding recovery to one base + (rebase_every - 1) deltas
   + the wal. [rebase_every <= 1] means every cut is full. *)
let take_checkpoint t node =
  flush_group t node;
  let log = t.logs.(node) in
  let channels =
    match Runtime.reliability t.runtime with
    | Some r -> Some (Reliable.snapshot r ~node)
    | None -> ( match t.chan_snapshot with Some f -> f node | None -> None)
  in
  let as_delta =
    log.checkpoint <> None
    && t.config.rebase_every > 1
    && List.length log.deltas < t.config.rebase_every - 1
  in
  let db =
    let d = Runtime.db t.runtime node in
    if as_delta then Db.snapshot_delta d else Db.snapshot d
  in
  let cut =
    if as_delta then begin
      let c = { store = Backend.checkpoint_delta t.backend node; db; channels } in
      log.deltas <- c :: log.deltas;
      c
    end
    else begin
      let c = { store = Backend.checkpoint_node t.backend node; db; channels } in
      log.checkpoint <- Some c;
      log.deltas <- [];
      c
    end
  in
  (match log.disk with
  | None -> ()
  | Some d ->
      (* Commit protocol: cut file and fresh wal first, manifest rename
         second (the commit point), fd switch and cleanup last. A crash
         before the rename leaves the previous generation complete — the
         old wal file was never touched; one after it leaves stray files
         that [sweep_unreferenced] collects on the next load. *)
      let id = d.next_cut in
      d.next_cut <- id + 1;
      write_cut d.dir id ~is_delta:as_delta cut;
      let old_epoch = d.epoch in
      let old_base = d.base_id in
      let old_deltas = d.delta_ids in
      let epoch = d.epoch + 1 in
      let fd =
        Unix.openfile (wal_path d.dir epoch) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      if as_delta then d.delta_ids <- d.delta_ids @ [ id ] else begin
        d.base_id <- id;
        d.delta_ids <- []
      end;
      d.epoch <- epoch;
      write_manifest d;
      (try Unix.close d.wal_fd with _ -> ());
      d.wal_fd <- fd;
      (try Unix.unlink (wal_path d.dir old_epoch) with _ -> ());
      if not as_delta then
        List.iter
          (fun old -> if old >= 0 then try Unix.unlink (cut_path d.dir old) with _ -> ())
          (old_base :: old_deltas));
  log.wal <- [];
  log.wal_entries <- 0;
  log.boundaries <- 0;
  log.checkpoints <- log.checkpoints + 1;
  let bytes = cut_bytes cut in
  log.checkpoint_bytes <- log.checkpoint_bytes + bytes;
  if as_delta then begin
    log.delta_cuts <- log.delta_cuts + 1;
    log.delta_bytes <- log.delta_bytes + bytes
  end;
  let m = metrics t node in
  Metrics.incr m "crash.checkpoints";
  Metrics.incr m ~by:bytes "crash.checkpoint_bytes"

(* WAL-then-apply: called before the entry's effects. A boundary entry
   marks the start of a fresh top-level operation — everything before it
   has fully applied — so the open group is flushed and compaction cuts
   the checkpoint just BEFORE buffering it: the checkpoint covers the old
   wal, the new wal starts with this entry's group. *)
let append t node entry =
  if not t.recovering.(node) then begin
    let log = t.logs.(node) in
    if Journal.is_boundary entry then begin
      flush_group t node;
      if t.config.checkpoint_every > 0 && log.boundaries >= t.config.checkpoint_every
      then take_checkpoint t node;
      log.boundaries <- log.boundaries + 1
    end;
    let before = S.size log.pending in
    Journal.write log.pending entry;
    let len = S.size log.pending - before in
    log.pending_entries <- log.pending_entries + 1;
    log.pending_bytes <- log.pending_bytes + len;
    log.wal_entries <- log.wal_entries + 1;
    log.wal_bytes <- log.wal_bytes + len
  end

let on_channel_event t (ev : Reliable.channel_event) =
  match ev with
  | Reliable.Next_seq { src; dst; seq } -> append t src (Journal.Next_seq { peer = dst; seq })
  | Reliable.Expected { src; dst; seq } -> append t dst (Journal.Expected { peer = src; seq })

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Rebuild a node's in-memory log from its directory. The wal's valid
   prefix is kept and the file is rewritten clean before reopening for
   append — a torn tail (the kill landed mid-write) was never covered by
   an outgoing ack, so dropping it loses nothing anyone was promised. *)
let load_disk_state t node dir =
  let log = t.logs.(node) in
  let epoch, base_id, delta_ids = read_manifest dir in
  let base =
    let is_delta, c = read_cut dir base_id in
    if is_delta then raise (S.Corrupt (Printf.sprintf "manifest base cut %d is a delta" base_id));
    c
  in
  let deltas =
    List.map
      (fun id ->
        let is_delta, c = read_cut dir id in
        if not is_delta then
          raise (S.Corrupt (Printf.sprintf "manifest delta cut %d is a full checkpoint" id));
        c)
      delta_ids
  in
  log.checkpoint <- Some base;
  log.deltas <- List.rev deltas;
  let wpath = wal_path dir epoch in
  let entries =
    if Sys.file_exists wpath then begin
      let r = S.reader (read_file wpath) in
      let acc = ref [] in
      (try
         while not (S.at_end r) do
           acc := Journal.read r :: !acc
         done
       with S.Corrupt _ -> ());
      List.rev !acc
    end
    else []
  in
  let blob = S.with_scratch (fun w -> List.iter (Journal.write w) entries) in
  write_file_atomic wpath blob;
  if entries <> [] then log.wal <- [ blob ];
  log.wal_entries <- List.length entries;
  log.boundaries <- List.length (List.filter Journal.is_boundary entries);
  log.wal_bytes <- String.length blob;
  log.checkpoints <- 1 + List.length delta_ids;
  let d =
    {
      dir;
      wal_fd = Unix.openfile wpath [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
      epoch;
      base_id;
      delta_ids;
      next_cut = 1 + List.fold_left max base_id delta_ids;
      outbox = Outbox.open_ ~dir;
    }
  in
  log.disk <- Some d;
  sweep_unreferenced d

let init_disk_state t node dir =
  mkdir_p dir;
  let d =
    {
      dir;
      wal_fd = Unix.openfile (wal_path dir 0) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644;
      epoch = 0;
      base_id = -1;
      delta_ids = [];
      next_cut = 0;
      outbox = Outbox.open_ ~dir;
    }
  in
  t.logs.(node).disk <- Some d

let attach ~backend ~runtime ~control ?(config = default_config) ?disk
    ?(disk_nodes = fun _ -> true) () =
  if config.checkpoint_every < 0 then
    invalid_arg "Durable.attach: checkpoint_every must be non-negative";
  if config.rebase_every < 0 then
    invalid_arg "Durable.attach: rebase_every must be non-negative";
  let n = Array.length (Runtime.nodes runtime) in
  let t =
    {
      backend;
      runtime;
      control;
      config;
      logs = Array.init n (fun _ -> fresh_log ());
      from_disk = Array.make n false;
      chan_snapshot = None;
      chan_restore = None;
      recovering = Array.make n false;
    }
  in
  (match disk with
  | None -> ()
  | Some root ->
      mkdir_p root;
      Array.iteri
        (fun node _ ->
          if disk_nodes node then begin
            let dir = Filename.concat root (Printf.sprintf "node-%d" node) in
            if Sys.file_exists (manifest_path dir) then begin
              load_disk_state t node dir;
              t.from_disk.(node) <- true
            end
            else init_disk_state t node dir
          end)
        (Runtime.nodes runtime));
  Runtime.set_journal runtime (fun ~node entry -> append t node entry);
  (* Degraded queries count into the durable log like every other
     [crash.*] statistic: the registry tick alone would vanish if the
     QUERIER itself crashed later. [rematerialize] copies it back. *)
  Backend.set_degraded_sink backend (fun querier ->
    let log = t.logs.(querier) in
    log.queries_degraded <- log.queries_degraded + 1;
    Metrics.incr (metrics t querier) "crash.queries_degraded");
  (match Runtime.reliability runtime with
  | None -> ()
  | Some r -> Reliable.set_persist r (fun ev -> on_channel_event t ev));
  Runtime.set_availability runtime control.Transport.is_up;
  (* Dirty tracking must be live BEFORE the first cut so every write
     after checkpoint 0 lands in some delta — both the provenance stores
     and each node's relational db. *)
  if config.rebase_every > 1 then begin
    Backend.set_dirty_tracking backend true;
    Array.iteri
      (fun node _ -> Db.set_dirty_tracking (Runtime.db runtime node) true)
      (Runtime.nodes runtime)
  end;
  (* Seal the pre-attach state (slow tables loaded at build time, empty
     stores) into checkpoint 0, so recovery never depends on journal
     entries from before the journal existed. Nodes loaded from disk
     keep their existing generation — their volatile state is rebuilt by
     {!recover}, and cutting a fresh checkpoint of the still-empty world
     here would overwrite it. *)
  Array.iteri
    (fun node _ -> if not t.from_disk.(node) then take_checkpoint t node)
    (Runtime.nodes runtime);
  t

let is_up t node = t.control.Transport.is_up node

let rematerialize t node =
  let m = metrics t node in
  let log = t.logs.(node) in
  if log.crashes > 0 then Metrics.incr m ~by:log.crashes "crash.crashes";
  (* Bytes still sitting in the open group have not been ticked yet; the
     registry stays behind by exactly that much until the next flush. *)
  let ticked_wal = log.wal_bytes - log.pending_bytes in
  if ticked_wal > 0 then Metrics.incr m ~by:ticked_wal "crash.wal_bytes";
  if log.checkpoints > 0 then Metrics.incr m ~by:log.checkpoints "crash.checkpoints";
  if log.checkpoint_bytes > 0 then Metrics.incr m ~by:log.checkpoint_bytes "crash.checkpoint_bytes";
  if log.recovery_ms_ticked > 0 then Metrics.incr m ~by:log.recovery_ms_ticked "crash.recovery_ms";
  if log.queries_degraded > 0 then
    Metrics.incr m ~by:log.queries_degraded "crash.queries_degraded"

let crash t node =
  if is_up t node then begin
    (* The open group reaches the wal before the node state dies — the
       simulated WAL is durable, the group buffer is just batching. *)
    flush_group t node;
    t.control.Transport.crash node;
    Node.reset (Runtime.node t.runtime node);
    (match Runtime.reliability t.runtime with
    | None -> ()
    | Some r -> Reliable.forget r ~node);
    let log = t.logs.(node) in
    log.crashes <- log.crashes + 1;
    rematerialize t node
  end

(* The recovery core shared by in-process [restart] and real-process
   [recover]: restore the newest cut chain, then replay the wal tail. *)
let rebuild t node =
  let log = t.logs.(node) in
  t.recovering.(node) <- true;
  Fun.protect
    ~finally:(fun () -> t.recovering.(node) <- false)
    (fun () ->
      (match log.checkpoint with
      | None -> ()
      | Some base ->
          Backend.restore_node t.backend node base.store;
          (* Store and db: base plus deltas, oldest first. Channels:
             every cut carries a full snapshot, so only the newest
             matters. *)
          let db = Runtime.db t.runtime node in
          Db.load db base.db;
          List.iter
            (fun (d : checkpoint) ->
              Backend.apply_delta t.backend node d.store;
              Db.apply_delta db d.db)
            (List.rev log.deltas);
          let newest = match log.deltas with d :: _ -> d | [] -> base in
          (match (newest.channels, Runtime.reliability t.runtime) with
          | Some blob, Some r -> Reliable.restore r ~node blob
          | Some blob, None -> (
              match t.chan_restore with Some f -> f node blob | None -> ())
          | None, _ -> ()));
      (* The wal is NOT truncated: a second crash before the next
         compaction replays the same checkpoint plus the same entries
         (and whatever lands after this recovery). Each wal blob is one
         flushed group; decode entries until the group is exhausted. *)
      let entries =
        List.concat_map
          (fun blob ->
            let r = S.reader blob in
            let acc = ref [] in
            while not (S.at_end r) do
              acc := Journal.read r :: !acc
            done;
            List.rev !acc)
          (List.rev log.wal)
      in
      Runtime.replay t.runtime ~node entries)

let tick_recovery t node t0 =
  let log = t.logs.(node) in
  log.recovery_s <- log.recovery_s +. (Clock.now () -. t0);
  let total = recovery_ms_of log in
  if total > log.recovery_ms_ticked then begin
    Metrics.incr (metrics t node) ~by:(total - log.recovery_ms_ticked) "crash.recovery_ms";
    log.recovery_ms_ticked <- total
  end

let restart t node =
  if not (is_up t node) then begin
    (* Wall clock, NOT [Sys.time]: recovery replays on whatever domain
       runs the shard, and CPU time summed across domains both inflates
       multi-domain recoveries and misses time spent blocked. *)
    let t0 = Clock.now () in
    rebuild t node;
    tick_recovery t node t0;
    (* Reconnect the wire last: no delivery can race the rebuild. *)
    t.control.Transport.restart node
  end

let recovered t node = t.from_disk.(node)

let recover t node =
  let t0 = Clock.now () in
  rebuild t node;
  tick_recovery t node t0

let set_channel_state t ~snapshot ~restore =
  t.chan_snapshot <- Some snapshot;
  t.chan_restore <- Some restore

let journal t node entry = append t node entry
let flush_wal t node = flush_group t node

let outbox t node =
  match t.logs.(node).disk with Some d -> Some d.outbox | None -> None

let checkpoint_now t node =
  if not (is_up t node) then invalid_arg "Durable.checkpoint_now: node is down";
  take_checkpoint t node

let node_stats t node =
  let log = t.logs.(node) in
  {
    crashes = log.crashes;
    wal_bytes = log.wal_bytes;
    wal_entries = log.wal_entries;
    checkpoints = log.checkpoints;
    checkpoint_bytes = log.checkpoint_bytes;
    delta_cuts = log.delta_cuts;
    delta_bytes = log.delta_bytes;
    recovery_ms = recovery_ms_of log;
    queries_degraded = log.queries_degraded;
  }

let schedule_crash t ~node ~at ~downtime =
  if downtime <= 0.0 then invalid_arg "Durable.schedule_crash: downtime must be positive";
  let tr = Runtime.transport t.runtime in
  let delay_to at = Float.max 0.0 (at -. Transport.now tr) in
  (* On the node's own shard: crash wipes and restart rebuilds state that
     shard owns (tables, registry, channel endpoints). *)
  Transport.schedule_on tr ~node ~delay:(delay_to at) (fun () -> crash t node);
  Transport.schedule_on tr ~node ~delay:(delay_to (at +. downtime)) (fun () -> restart t node)

(* Reject any candidate that overlaps a kept outage of the same node —
   INCLUDING a crash at exactly the previous restart instant ([<=], not
   [<]): the crash and the restart would be scheduled for the same
   simulated time, and which fires first is an event-queue tie, not part
   of the schedule's contract. Kept outages are sorted by crash time and
   stable for a given input. *)
let prune_overlaps ~nodes schedule =
  if nodes <= 0 then invalid_arg "Durable.prune_overlaps: need at least one node";
  let by_time = List.sort (fun (_, a, _) (_, b, _) -> compare a b) schedule in
  let busy_until = Array.make nodes Float.neg_infinity in
  List.filter
    (fun (node, at, downtime) ->
      if node < 0 || node >= nodes then
        invalid_arg "Durable.prune_overlaps: node out of range";
      if at <= busy_until.(node) then false
      else begin
        busy_until.(node) <- at +. downtime;
        true
      end)
    by_time

(* Seeded crash schedules: candidates drawn uniformly, then filtered so
   one node's outages never collide. *)
let random_schedule ~seed ~nodes ~count ~horizon ~min_down ~max_down =
  if nodes <= 0 then invalid_arg "Durable.random_schedule: need at least one node";
  if min_down <= 0.0 || max_down < min_down then
    invalid_arg "Durable.random_schedule: need 0 < min_down <= max_down";
  let rng = Rng.create ~seed in
  let candidates =
    List.init count (fun _ ->
        let node = Rng.int rng nodes in
        let at = Rng.float rng horizon in
        let downtime =
          if max_down = min_down then min_down else min_down +. Rng.float rng (max_down -. min_down)
        in
        (node, at, downtime))
  in
  prune_overlaps ~nodes candidates

let schedule t schedule_list =
  List.iter (fun (node, at, downtime) -> schedule_crash t ~node ~at ~downtime) schedule_list
