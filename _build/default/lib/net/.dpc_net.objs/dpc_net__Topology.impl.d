lib/net/topology.ml: Array Hashtbl Int List Printf
