(** Basic storage optimization (paper §4, Table 2): provenance nodes for
    intermediate event tuples are dropped; each [ruleExec] row carries a
    [(NLoc, NRID)] back-pointer to the rule execution that derived its
    event, and only output tuples (the relations of interest) get [prov]
    rows. Queries walk the back-pointer chain to the leaf, retrieve the
    input event, and re-derive the intermediate tuples bottom-up. *)

type t

val create : delp:Dpc_ndlog.Delp.t -> env:Dpc_engine.Env.t -> nodes:int -> t
(** Builds a fresh [nodes]-node cluster; per-node tables hang off each
    {!Dpc_engine.Node.t} and row writes tick its [store.*] counters. *)

val set_degraded_sink : t -> (int -> unit) -> unit
(** Re-route the degraded-query tick: [f querier] runs instead of the
    default increment of [crash.queries_degraded] on the querier's
    volatile registry. Installed by the durable layer so the count
    survives a crash of the querier (see [Durable.attach]). *)

val nodes : t -> Dpc_engine.Node.t array
(** The cluster owning all per-node state; pass to
    [Runtime.create ~nodes] so the runtime shares it. *)

val set_query_cache : t -> Query_cache.t option -> unit
(** Attach (or detach, with [None]) the shared memoization cache the
    query path consults. Attaching registers per-node crash-invalidation
    hooks ({!Dpc_engine.Node.on_reset}) once; §5.5 [sig] deliveries
    invalidate through the store's own [on_slow_update]. *)

val query_cache : t -> Query_cache.t option

val hook : t -> Dpc_engine.Prov_hook.t

val node_storage : t -> int -> Rows.storage
val total_storage : t -> Rows.storage

val query :
  t ->
  cost:Query_cost.t ->
  routing:Dpc_net.Routing.t ->
  ?evid:Dpc_util.Sha1.t ->
  ?up:(int -> bool) ->
  Dpc_ndlog.Tuple.t ->
  Query_result.t
(** Two-step query (§4): fetch the optimized chain, then recompute the
    intermediate provenance nodes by re-executing the recorded rules from
    the leaf upward. [up] is the node-liveness predicate — a chain that
    reaches a down node is abandoned after the bounded retry budget and
    the result is marked [complete = false] (see {!Store_exspan.query}). *)

val dump : t -> (string * string list * string list list) list
(** Human-readable table contents [(name, header, rows)] — the shape of the
    paper's Table 2. *)

val checkpoint : t -> string
(** Serialize the full store to bytes. *)

val restore : delp:Dpc_ndlog.Delp.t -> env:Dpc_engine.Env.t -> string -> t
(** Rebuild a store from {!checkpoint} output.
    @raise Dpc_util.Serialize.Corrupt on malformed input. *)

val checkpoint_node : t -> int -> string
(** Serialize one node's tables for its durable checkpoint. *)

val digest_node : t -> int -> string
(** SHA-1 (hex) of the node's canonical blob without sealing dirty
    tracking — same contract as {!Store_exspan.digest_node}. *)

val restore_node : t -> int -> string -> unit
(** Reload one node's tables after a {!Dpc_engine.Node.reset}.
    @raise Dpc_util.Serialize.Corrupt on malformed input. *)

val set_track_dirty : t -> bool -> unit
(** Enable dirty-set tracking for delta checkpoints — same contract as
    {!Store_exspan.set_track_dirty}. *)

val checkpoint_delta : t -> int -> string
(** One node's rows/side entries inserted since its last cut — O(changes);
    clears the dirty set. See {!Store_exspan.checkpoint_delta}. *)

val apply_delta : t -> int -> string -> unit
(** Replay a {!checkpoint_delta} blob on top of the node's current tables.
    @raise Dpc_util.Serialize.Corrupt on malformed input. *)
