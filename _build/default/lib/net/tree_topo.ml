type t = { topology : Topology.t; parent : int array; depth : int array }

let generate ~rng ~n ~backbone_depth ~link =
  if n <= 0 then invalid_arg "Tree_topo.generate: n must be positive";
  if backbone_depth < 0 || backbone_depth >= n then
    invalid_arg "Tree_topo.generate: backbone_depth out of range";
  let topo = Topology.create ~n in
  let parent = Array.make n (-1) in
  let depth = Array.make n 0 in
  let attach child par =
    parent.(child) <- par;
    depth.(child) <- depth.(par) + 1;
    Topology.add_link topo child par link
  in
  (* Backbone chain 0 - 1 - ... - backbone_depth. *)
  for v = 1 to backbone_depth do
    attach v (v - 1)
  done;
  (* Remaining nodes attach uniformly at random. *)
  for v = backbone_depth + 1 to n - 1 do
    attach v (Dpc_util.Rng.int rng v)
  done;
  { topology = topo; parent; depth }

let max_depth t = Array.fold_left max 0 t.depth

let children t v =
  let n = Array.length t.parent in
  List.filter (fun c -> t.parent.(c) = v) (List.init n (fun i -> i))
