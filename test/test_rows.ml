(* Unit tests for the dpc_core storage building blocks: row serialization,
   the deduplicating multi-map, size accounting, side stores, and the
   storage record arithmetic. *)

open Dpc_core

let check = Alcotest.check

let d1 = Dpc_util.Sha1.digest_string "one"
let d2 = Dpc_util.Sha1.digest_string "two"
let d3 = Dpc_util.Sha1.digest_string "three"

let prov_row = { Rows.loc = 3; vid = d1; rid = Some (1, d2); evid = Some d3 }
let base_row = { Rows.loc = 0; vid = d1; rid = None; evid = None }

let exec_row =
  { Rows.rloc = 2; rid = d1; rule = "r1"; vids = [ d2; d3 ]; next = Some (1, d2) }

let link_row = { Rows.link_rloc = 2; link_rid = d1; link_next = None }

(* ------------------------------------------------------------------ *)
(* Row serialization *)

let roundtrip write read v =
  let w = Dpc_util.Serialize.writer () in
  write w v;
  let r = Dpc_util.Serialize.reader (Dpc_util.Serialize.contents w) in
  let v' = read r in
  check Alcotest.bool "consumed everything" true (Dpc_util.Serialize.at_end r);
  v'

let test_prov_row_roundtrip () =
  check Alcotest.bool "full row" true
    (roundtrip Rows.write_prov_row Rows.read_prov_row prov_row = prov_row);
  check Alcotest.bool "base row" true
    (roundtrip Rows.write_prov_row Rows.read_prov_row base_row = base_row)

let test_exec_row_roundtrip () =
  check Alcotest.bool "exec row" true
    (roundtrip Rows.write_rule_exec_row Rows.read_rule_exec_row exec_row = exec_row);
  let leaf = { exec_row with Rows.next = None; vids = [] } in
  check Alcotest.bool "leaf row" true
    (roundtrip Rows.write_rule_exec_row Rows.read_rule_exec_row leaf = leaf)

let test_link_row_roundtrip () =
  check Alcotest.bool "link row" true
    (roundtrip Rows.write_link_row Rows.read_link_row link_row = link_row)

(* ------------------------------------------------------------------ *)
(* Size accounting *)

let test_row_bytes_reflect_contents () =
  (* An evid column costs bytes; more vids cost more. *)
  let without = Rows.prov_row_bytes ~with_evid:false prov_row in
  let with_evid = Rows.prov_row_bytes ~with_evid:true prov_row in
  check Alcotest.bool "evid costs ~21 bytes" true (with_evid - without >= 20);
  let small = { exec_row with Rows.vids = [ d2 ] } in
  check Alcotest.bool "vids cost bytes" true
    (Rows.rule_exec_row_bytes ~with_next:true exec_row
    > Rows.rule_exec_row_bytes ~with_next:true small);
  check Alcotest.bool "next column costs bytes" true
    (Rows.rule_exec_row_bytes ~with_next:true exec_row
    > Rows.rule_exec_row_bytes ~with_next:false exec_row)

(* The analytic size formulas must agree byte-for-byte with a real
   serialization — Db and the store tables charge rows with the formulas,
   and persistence writes the rows with the writers. *)
let test_row_bytes_match_serialization () =
  let open Dpc_util.Serialize in
  let measure write = let w = writer () in write w; size w in
  let wr_digest w d = write_string w (Dpc_util.Sha1.to_raw d) in
  let wr_ref w = function
    | None -> write_bool w false
    | Some (node, d) ->
        write_bool w true;
        write_varint w node;
        wr_digest w d
  in
  let rows = [ prov_row; base_row; { prov_row with Rows.loc = 200; rid = Some (150, d3) } ] in
  List.iter
    (fun (r : Rows.prov_row) ->
      List.iter
        (fun with_evid ->
          let reference =
            measure (fun w ->
              write_varint w r.loc;
              wr_digest w r.vid;
              wr_ref w r.rid;
              if with_evid then
                match r.evid with
                | None -> write_bool w false
                | Some e ->
                    write_bool w true;
                    wr_digest w e)
          in
          check Alcotest.int
            (Printf.sprintf "prov row, with_evid=%b" with_evid)
            reference
            (Rows.prov_row_bytes ~with_evid r))
        [ false; true ])
    rows;
  let execs = [ exec_row; { exec_row with Rows.vids = []; next = None; rule = "longer-rule-name" } ] in
  List.iter
    (fun (r : Rows.rule_exec_row) ->
      List.iter
        (fun with_next ->
          let reference =
            measure (fun w ->
              write_varint w r.rloc;
              wr_digest w r.rid;
              write_string w r.rule;
              write_list w (wr_digest w) r.vids;
              if with_next then wr_ref w r.next)
          in
          check Alcotest.int
            (Printf.sprintf "exec row, with_next=%b" with_next)
            reference
            (Rows.rule_exec_row_bytes ~with_next r))
        [ false; true ])
    execs;
  List.iter
    (fun (r : Rows.link_row) ->
      let reference =
        measure (fun w ->
          write_varint w r.link_rloc;
          wr_digest w r.link_rid;
          wr_ref w r.link_next)
      in
      check Alcotest.int "link row" reference (Rows.link_row_bytes r))
    [ link_row; { link_row with Rows.link_next = Some (90, d2) } ]

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_dedup_and_multimap () =
  let t = Rows.Table.create ~row_bytes:(Rows.prov_row_bytes ~with_evid:true) () in
  check Alcotest.bool "first add" true (Rows.Table.add t ~key:"k" prov_row);
  check Alcotest.bool "duplicate row" false (Rows.Table.add t ~key:"k" prov_row);
  check Alcotest.bool "distinct row, same key" true (Rows.Table.add t ~key:"k" base_row);
  check Alcotest.int "two rows" 2 (Rows.Table.rows t);
  check Alcotest.int "find returns both, oldest first" 2 (List.length (Rows.Table.find t "k"));
  check Alcotest.bool "order preserved" true (List.hd (Rows.Table.find t "k") = prov_row);
  check (Alcotest.list Alcotest.bool) "unknown key" []
    (List.map (fun _ -> true) (Rows.Table.find t "missing"))

let test_table_byte_counter () =
  let t = Rows.Table.create ~row_bytes:(Rows.prov_row_bytes ~with_evid:true) () in
  ignore (Rows.Table.add t ~key:"a" prov_row);
  let one = Rows.Table.bytes t in
  ignore (Rows.Table.add t ~key:"a" prov_row);
  check Alcotest.int "duplicates do not count" one (Rows.Table.bytes t);
  ignore (Rows.Table.add t ~key:"b" base_row);
  check Alcotest.int "sum of row sizes"
    (one + Rows.prov_row_bytes ~with_evid:true base_row)
    (Rows.Table.bytes t);
  Rows.Table.clear t;
  check Alcotest.int "clear resets rows" 0 (Rows.Table.rows t);
  check Alcotest.int "clear resets bytes" 0 (Rows.Table.bytes t)

let test_table_iter_visits_all () =
  let t = Rows.Table.create ~row_bytes:(Rows.prov_row_bytes ~with_evid:true) () in
  ignore (Rows.Table.add t ~key:"a" prov_row);
  ignore (Rows.Table.add t ~key:"b" base_row);
  let n = ref 0 in
  Rows.Table.iter t (fun _ _ -> incr n);
  check Alcotest.int "two visits" 2 !n

(* ------------------------------------------------------------------ *)
(* Side_store *)

let tuple = Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:0

let test_side_store_basics () =
  let s = Side_store.create () in
  Side_store.put s ~key:d1 tuple;
  Side_store.put s ~key:d1 tuple;
  check Alcotest.int "idempotent put" 1 (Side_store.count s);
  check Alcotest.bool "get hit" true (Side_store.get s ~key:d1 <> None);
  check Alcotest.bool "get miss (other key)" true (Side_store.get s ~key:d2 = None);
  check Alcotest.int "bytes = digest + tuple" (20 + Dpc_ndlog.Tuple.wire_size tuple)
    (Side_store.bytes s);
  check Alcotest.bool "fresh store independent" true
    (Side_store.get (Side_store.create ()) ~key:d1 = None)

let test_side_store_iter () =
  let s = Side_store.create () in
  Side_store.put s ~key:d1 tuple;
  Side_store.put s ~key:d2 tuple;
  let visited = ref [] in
  Side_store.iter s (fun ~key _ -> visited := Dpc_util.Sha1.to_hex key :: !visited);
  check Alcotest.int "two entries" 2 (List.length !visited);
  check Alcotest.bool "keys correct" true
    (List.mem (Dpc_util.Sha1.to_hex d1) !visited && List.mem (Dpc_util.Sha1.to_hex d2) !visited)

(* ------------------------------------------------------------------ *)
(* Storage record *)

let test_storage_arithmetic () =
  let a =
    { Rows.prov_bytes = 1; rule_exec_bytes = 2; equi_bytes = 3; event_bytes = 4;
      prov_rows = 5; rule_exec_rows = 6 }
  in
  let two = Rows.add_storage a a in
  check Alcotest.int "prov" 2 two.prov_bytes;
  check Alcotest.int "rows" 12 two.rule_exec_rows;
  check Alcotest.int "paper metric" 3 (Rows.provenance_bytes a);
  check Alcotest.int "identity" 1 (Rows.add_storage Rows.empty_storage a).prov_bytes

let test_show_helpers () =
  check Alcotest.string "null ref" "NULL" (Rows.show_ref None);
  check Alcotest.bool "ref with node" true
    (String.length (Rows.show_ref (Some (3, d1))) > 3);
  check Alcotest.int "abbrev is 8 chars" 8 (String.length (Rows.show_digest d1))

let prop_prov_row_roundtrip =
  let digest_gen = QCheck.Gen.map Dpc_util.Sha1.digest_string QCheck.Gen.string in
  let row_gen =
    QCheck.Gen.(
      map
        (fun (loc, v, has_rid, rloc, has_evid) ->
          {
            Rows.loc;
            vid = v;
            rid = (if has_rid then Some (rloc, v) else None);
            evid = (if has_evid then Some v else None);
          })
        (tup5 (int_bound 500) digest_gen bool (int_bound 500) bool))
  in
  QCheck.Test.make ~name:"prov row round-trip" ~count:200 (QCheck.make row_gen) (fun row ->
    roundtrip Rows.write_prov_row Rows.read_prov_row row = row)

let prop_exec_row_roundtrip =
  let digest_gen = QCheck.Gen.map Dpc_util.Sha1.digest_string QCheck.Gen.string in
  let row_gen =
    QCheck.Gen.(
      map
        (fun (rloc, rid, rule, vids, has_next) ->
          { Rows.rloc; rid; rule; vids; next = (if has_next then Some (rloc, rid) else None) })
        (tup5 (int_bound 500) digest_gen (string_size (int_bound 10))
           (list_size (int_bound 4) digest_gen) bool))
  in
  QCheck.Test.make ~name:"exec row round-trip" ~count:200 (QCheck.make row_gen) (fun row ->
    roundtrip Rows.write_rule_exec_row Rows.read_rule_exec_row row = row)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dpc_rows"
    [
      ( "serialization",
        [
          Alcotest.test_case "prov row" `Quick test_prov_row_roundtrip;
          Alcotest.test_case "exec row" `Quick test_exec_row_roundtrip;
          Alcotest.test_case "link row" `Quick test_link_row_roundtrip;
        ]
        @ qsuite [ prop_prov_row_roundtrip; prop_exec_row_roundtrip ] );
      ( "sizing",
        [
          Alcotest.test_case "bytes reflect contents" `Quick test_row_bytes_reflect_contents;
          Alcotest.test_case "formulas match serialization" `Quick
            test_row_bytes_match_serialization;
        ] );
      ( "table",
        [
          Alcotest.test_case "dedup and multimap" `Quick test_table_dedup_and_multimap;
          Alcotest.test_case "byte counter" `Quick test_table_byte_counter;
          Alcotest.test_case "iter" `Quick test_table_iter_visits_all;
        ] );
      ( "side store",
        [
          Alcotest.test_case "basics" `Quick test_side_store_basics;
          Alcotest.test_case "iter" `Quick test_side_store_iter;
        ] );
      ( "storage",
        [
          Alcotest.test_case "arithmetic" `Quick test_storage_arithmetic;
          Alcotest.test_case "show helpers" `Quick test_show_helpers;
        ] );
    ]
