let term fmt = function
  | Ast.Var v -> Format.pp_print_string fmt v
  | Ast.Const c -> Value.pp fmt c

let atom fmt (a : Ast.atom) =
  Format.fprintf fmt "%s(" a.rel;
  List.iteri
    (fun i t ->
      if i = 0 then Format.fprintf fmt "@@%a" term t
      else Format.fprintf fmt ", %a" term t)
    a.args;
  Format.pp_print_char fmt ')'

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"

let cmp_str = function
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Leq -> "<="
  | Ast.Gt -> ">"
  | Ast.Geq -> ">="

let rec expr fmt = function
  | Ast.E_var v -> Format.pp_print_string fmt v
  | Ast.E_const c -> Value.pp fmt c
  | Ast.E_binop (op, a, b) ->
      (* Parenthesize operands conservatively: re-parsing must preserve the
         tree, and precedence inside the operands may be lower. *)
      Format.fprintf fmt "%a %s %a" paren_operand a (binop_str op) paren_operand b
  | Ast.E_call (f, args) ->
      Format.fprintf fmt "%s(" f;
      List.iteri
        (fun i e ->
          if i > 0 then Format.pp_print_string fmt ", ";
          expr fmt e)
        args;
      Format.pp_print_char fmt ')'

and paren_operand fmt e =
  match e with
  | Ast.E_binop _ -> Format.fprintf fmt "(%a)" expr e
  | Ast.E_var _ | Ast.E_const _ | Ast.E_call _ -> expr fmt e

let cond fmt = function
  | Ast.C_atom a -> atom fmt a
  | Ast.C_cmp (op, a, b) -> Format.fprintf fmt "%a %s %a" expr a (cmp_str op) expr b
  | Ast.C_assign (v, e) -> Format.fprintf fmt "%s := %a" v expr e

let rule fmt (r : Ast.rule) =
  Format.fprintf fmt "%s %a :- %a" r.name atom r.head atom r.event;
  List.iter (fun c -> Format.fprintf fmt ", %a" cond c) r.conds;
  Format.pp_print_char fmt '.'

let program fmt (p : Ast.program) =
  List.iteri
    (fun i r ->
      if i > 0 then Format.pp_print_newline fmt ();
      rule fmt r)
    p.rules

let rule_to_string r = Format.asprintf "%a" rule r
let program_to_string p = Format.asprintf "%a" program p
