lib/ndlog/delp.mli: Ast
