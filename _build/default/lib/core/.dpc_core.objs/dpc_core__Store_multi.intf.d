lib/core/store_multi.mli: Dpc_engine Dpc_ndlog Dpc_net Dpc_util Query_cost Query_result Rows
