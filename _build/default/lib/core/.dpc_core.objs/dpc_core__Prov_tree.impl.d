lib/core/prov_tree.ml: Dpc_ndlog Dpc_util Format List Stdlib String Tuple
