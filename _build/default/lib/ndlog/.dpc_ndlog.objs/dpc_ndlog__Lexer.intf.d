lib/ndlog/lexer.mli:
