examples/dns_resolution.ml: Backend Dns_workload Dpc_analysis Dpc_apps Dpc_core Dpc_ndlog Dpc_net Dpc_util Dpc_workload Format List Printf Prov_tree Query_cost Rows
