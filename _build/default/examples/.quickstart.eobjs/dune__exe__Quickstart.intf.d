examples/quickstart.mli:
