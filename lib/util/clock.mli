(** Wall-clock time for every reported duration.

    Clock discipline (see DESIGN.md): anything shown to a user as elapsed
    time — bench figures, [crash.recovery_ms], throughput — must be
    measured with {!now}, never [Sys.time]. [Sys.time] is process CPU
    time, which SUMS across OCaml 5 domains: on the sharded runtime a
    4-domain run with a genuine 2x wall-clock speedup reports a slowdown.
    CPU time remains available directly via [Sys.time] for the rare
    cases that want it (none of the reported metrics do). *)

val now : unit -> float
(** [Unix.gettimeofday]: seconds since the epoch, wall clock. *)
