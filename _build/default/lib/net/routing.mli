(** All-pairs shortest-path routing over a topology.

    The paper pre-computes shortest paths with a declarative routing
    protocol and installs them in per-node [route] tables; this module is
    the equivalent: latency-weighted Dijkstra from every node, exposing
    next hops (to fill [route] tables) and full paths (for the simulator's
    hop-by-hop message forwarding). *)

type t

val compute : Topology.t -> t
(** O(n * (m log n)); run once per topology. *)

val next_hop : t -> src:int -> dst:int -> int option
(** The neighbor of [src] on a shortest path to [dst]; [None] if
    unreachable or [src = dst]. *)

val path : t -> src:int -> dst:int -> int list option
(** Inclusive node sequence from [src] to [dst]; [Some [src]] when
    [src = dst]; [None] if unreachable. *)

val distance : t -> src:int -> dst:int -> float option
(** Total latency along the shortest path. *)

val hop_count : t -> src:int -> dst:int -> int option

val mean_pair_distance : t -> float
(** Mean hop count over all ordered reachable pairs with [src <> dst]. *)

val diameter : t -> int
(** Maximum hop count over all reachable pairs. *)
