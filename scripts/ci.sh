#!/bin/sh
# Continuous-integration entry point: formatting (when the tool is
# available), full build, full test suite. Run from the repo root or via
# `make ci`.
set -eu

cd "$(dirname "$0")/.."

# Formatting is advisory-gated: ocamlformat is not part of the minimal
# toolchain, so the check only runs where it is installed (and never
# rewrites — CI must not mutate the tree).
if command -v ocamlformat >/dev/null 2>&1; then
    echo "== ocamlformat check =="
    dune build @fmt
else
    echo "== ocamlformat not installed; skipping format check =="
fi

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== ci ok =="
