open Dpc_ndlog

type t = { tables : (string, (string, Tuple.t) Hashtbl.t) Hashtbl.t }

let create () = { tables = Hashtbl.create 8 }

let table t rel =
  match Hashtbl.find_opt t.tables rel with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.add t.tables rel tbl;
      tbl

let insert t tuple =
  let tbl = table t (Tuple.rel tuple) in
  let key = Tuple.canonical tuple in
  if Hashtbl.mem tbl key then false
  else begin
    Hashtbl.add tbl key tuple;
    true
  end

let remove t tuple =
  match Hashtbl.find_opt t.tables (Tuple.rel tuple) with
  | None -> false
  | Some tbl ->
      let key = Tuple.canonical tuple in
      if Hashtbl.mem tbl key then begin
        Hashtbl.remove tbl key;
        true
      end
      else false

let mem t tuple =
  match Hashtbl.find_opt t.tables (Tuple.rel tuple) with
  | None -> false
  | Some tbl -> Hashtbl.mem tbl (Tuple.canonical tuple)

let scan t rel =
  match Hashtbl.find_opt t.tables rel with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun _ tuple acc -> tuple :: acc) tbl []
      |> List.sort Tuple.compare

let relations t =
  Hashtbl.fold (fun rel tbl acc -> if Hashtbl.length tbl > 0 then rel :: acc else acc)
    t.tables []
  |> List.sort String.compare

let cardinality t rel =
  match Hashtbl.find_opt t.tables rel with None -> 0 | Some tbl -> Hashtbl.length tbl

let total_tuples t = Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.tables 0

let size_bytes t =
  let w = Dpc_util.Serialize.writer () in
  List.iter
    (fun rel -> List.iter (fun tuple -> Tuple.serialize w tuple) (scan t rel))
    (relations t);
  Dpc_util.Serialize.size w
