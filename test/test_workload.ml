(* Tests for dpc_workload: pair selection, the forwarding driver on a real
   transit-stub topology, the DNS workload generator and driver, and the
   measurement helpers. These double as scaled-down end-to-end runs of the
   evaluation scenarios. *)

open Dpc_workload

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pairs *)

let test_pairs_distinct () =
  let rng = Dpc_util.Rng.create ~seed:3 in
  let pairs = Pairs.select ~rng ~eligible:(List.init 20 (fun i -> i)) ~count:30 in
  check Alcotest.int "count" 30 (List.length pairs);
  check Alcotest.int "distinct" 30 (List.length (List.sort_uniq compare pairs));
  List.iter (fun (s, d) -> if s = d then Alcotest.fail "self pair") pairs

let test_pairs_errors () =
  let rng = Dpc_util.Rng.create ~seed:3 in
  Alcotest.check_raises "too few nodes"
    (Invalid_argument "Pairs.select: need at least two eligible nodes") (fun () ->
      ignore (Pairs.select ~rng ~eligible:[ 1 ] ~count:1));
  Alcotest.check_raises "too many pairs"
    (Invalid_argument "Pairs.select: more pairs requested than exist") (fun () ->
      ignore (Pairs.select ~rng ~eligible:[ 1; 2 ] ~count:3))

(* ------------------------------------------------------------------ *)
(* Forwarding driver on the paper's transit-stub topology *)

let transit_stub_world () =
  let rng = Dpc_util.Rng.create ~seed:17 in
  let ts = Dpc_net.Transit_stub.generate ~rng Dpc_net.Transit_stub.paper_params in
  let routing = Dpc_net.Routing.compute ts.topology in
  (ts, routing, rng)

let test_forwarding_driver_delivers_everything () =
  let ts, routing, rng = transit_stub_world () in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:10 in
  let d =
    Forwarding_driver.setup ~scheme:Dpc_core.Backend.S_advanced ~topology:ts.topology
      ~routing ~pairs ()
  in
  let injected = Forwarding_driver.inject_stream d ~rate_per_pair:5.0 ~duration:2.0 ~payload_size:100 in
  Forwarding_driver.run d;
  check Alcotest.int "all delivered" injected (List.length (Forwarding_driver.received d))

let test_forwarding_driver_storage_ordering () =
  let ts, routing, rng = transit_stub_world () in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:10 in
  let total scheme =
    let d = Forwarding_driver.setup ~scheme ~topology:ts.topology ~routing ~pairs () in
    ignore (Forwarding_driver.inject_stream d ~rate_per_pair:5.0 ~duration:2.0 ~payload_size:100);
    Forwarding_driver.run d;
    Measure.total_provenance_bytes d.backend
  in
  let ex = total Dpc_core.Backend.S_exspan in
  let ba = total Dpc_core.Backend.S_basic in
  let ad = total Dpc_core.Backend.S_advanced in
  check Alcotest.bool "basic < exspan" true (ba < ex);
  check Alcotest.bool "advanced << basic" true (ad * 2 < ba)

let test_forwarding_driver_inject_total_even_split () =
  let ts, routing, rng = transit_stub_world () in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:4 in
  let d =
    Forwarding_driver.setup ~scheme:Dpc_core.Backend.S_basic ~topology:ts.topology ~routing
      ~pairs ()
  in
  let injected = Forwarding_driver.inject_total d ~total:40 ~duration:1.0 ~payload_size:64 in
  Forwarding_driver.run d;
  check Alcotest.int "injected" 40 injected;
  check Alcotest.int "delivered" 40 (List.length (Forwarding_driver.received d))

let test_forwarding_driver_queries () =
  let ts, routing, rng = transit_stub_world () in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:5 in
  let d =
    Forwarding_driver.setup ~scheme:Dpc_core.Backend.S_advanced ~topology:ts.topology
      ~routing ~pairs ()
  in
  ignore (Forwarding_driver.inject_stream d ~rate_per_pair:2.0 ~duration:1.0 ~payload_size:100);
  Forwarding_driver.run d;
  let results =
    Forwarding_driver.query_random_outputs d ~rng ~cost:Dpc_core.Query_cost.emulation ~count:20
  in
  check Alcotest.int "20 queries" 20 (List.length results);
  List.iter
    (fun (r : Dpc_core.Query_result.t) ->
      check Alcotest.bool "found a tree" true (r.trees <> []);
      check Alcotest.bool "positive latency" true (r.latency > 0.0))
    results

(* ------------------------------------------------------------------ *)
(* DNS workload *)

let test_dns_spec_well_formed () =
  let rng = Dpc_util.Rng.create ~seed:23 in
  let spec = Dns_workload.paper_spec ~rng () in
  check Alcotest.int "100 servers" 100 (Array.length spec.domains);
  check Alcotest.int "38 urls" 38 (Array.length spec.urls);
  check Alcotest.int "10 clients" 10 (Array.length spec.clients);
  check Alcotest.string "root domain empty" "" spec.domains.(0);
  (* Every URL is a subdomain of each of its authority's ancestors. *)
  Array.iteri
    (fun k auth ->
      let url = spec.urls.(k) in
      let rec up v =
        if v >= 0 then begin
          if not (Dpc_apps.Dns.is_sub_domain spec.domains.(v) url) then
            Alcotest.failf "url %s not under ancestor %s" url spec.domains.(v);
          up spec.tree.parent.(v)
        end
      in
      up auth)
    spec.authority;
  (* Domains are unique. *)
  let ds = Array.to_list spec.domains in
  check Alcotest.int "unique domains" (List.length ds)
    (List.length (List.sort_uniq compare ds))

let test_dns_driver_resolves_everything () =
  let rng = Dpc_util.Rng.create ~seed:23 in
  let spec = Dns_workload.generate ~rng ~servers:40 ~backbone_depth:10 ~urls:12 ~clients:5 in
  let t = Dns_workload.setup ~scheme:Dpc_core.Backend.S_advanced spec () in
  let injected = Dns_workload.inject_requests t ~rng ~rate:50.0 ~duration:1.0 in
  Dns_workload.run t;
  check Alcotest.int "every request answered" injected (List.length (Dns_workload.replies t));
  check Alcotest.int "no dead ends" 0 (Dpc_engine.Runtime.stats t.runtime).dead_ends

let test_dns_driver_storage_ordering () =
  let rng0 = Dpc_util.Rng.create ~seed:29 in
  let spec = Dns_workload.generate ~rng:rng0 ~servers:40 ~backbone_depth:10 ~urls:12 ~clients:5 in
  let total scheme =
    let rng = Dpc_util.Rng.create ~seed:31 in
    let t = Dns_workload.setup ~scheme spec () in
    ignore (Dns_workload.inject_requests t ~rng ~rate:100.0 ~duration:1.0);
    Dns_workload.run t;
    Measure.total_provenance_bytes t.backend
  in
  let ex = total Dpc_core.Backend.S_exspan in
  let ba = total Dpc_core.Backend.S_basic in
  let ad = total Dpc_core.Backend.S_advanced in
  check Alcotest.bool "basic < exspan" true (ba < ex);
  check Alcotest.bool "advanced < basic" true (ad < ba)

let test_dns_zipf_concentrates_requests () =
  (* With a Zipf workload the head URL receives far more requests than the
     tail; compression benefits concentrate correspondingly. *)
  let rng = Dpc_util.Rng.create ~seed:37 in
  let spec = Dns_workload.generate ~rng ~servers:40 ~backbone_depth:10 ~urls:10 ~clients:3 in
  let t = Dns_workload.setup ~scheme:Dpc_core.Backend.S_exspan spec () in
  ignore (Dns_workload.inject_requests t ~rng ~rate:300.0 ~duration:1.0);
  Dns_workload.run t;
  let by_url = Hashtbl.create 16 in
  List.iter
    (fun reply ->
      let url = Dpc_ndlog.Value.str_exn (Dpc_ndlog.Tuple.arg reply 1) in
      Hashtbl.replace by_url url (1 + Option.value ~default:0 (Hashtbl.find_opt by_url url)))
    (Dns_workload.replies t);
  let counts = Hashtbl.fold (fun _ c acc -> c :: acc) by_url [] |> List.sort compare |> List.rev in
  match counts with
  | top :: _ ->
      check Alcotest.bool "head URL dominates" true
        (float_of_int top > 0.15 *. 300.0)
  | [] -> Alcotest.fail "no replies"

(* ------------------------------------------------------------------ *)
(* Query driver (seeded Zipfian storms) *)

let storm_world () =
  let ts, routing, rng = transit_stub_world () in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:5 in
  let d =
    Forwarding_driver.setup ~scheme:Dpc_core.Backend.S_advanced ~topology:ts.topology
      ~routing ~pairs ()
  in
  ignore (Forwarding_driver.inject_stream d ~rate_per_pair:4.0 ~duration:2.0 ~payload_size:100);
  Forwarding_driver.run d;
  (d, Array.of_list (Forwarding_driver.received d))

let test_query_driver_deterministic () =
  let d, targets = storm_world () in
  let storm seed =
    Query_driver.storm
      (Query_driver.create ~backend:d.Forwarding_driver.backend
         ~routing:d.Forwarding_driver.routing ~targets ~seed ())
      ~count:50 ()
  in
  let a = storm 11 and b = storm 11 in
  check Alcotest.int "issued" 50 a.Query_driver.issued;
  check Alcotest.int "all complete" 50 a.Query_driver.complete;
  check Alcotest.int "no partials" 0 a.Query_driver.partial;
  check Alcotest.int "no empties" 0 a.Query_driver.empty;
  check
    (Alcotest.list (Alcotest.float 1e-12))
    "same seed, same storm" a.Query_driver.latencies b.Query_driver.latencies;
  let c = storm 12 in
  if a.Query_driver.latencies = c.Query_driver.latencies then
    Alcotest.fail "different seeds issued identical 50-query storms";
  let p = Query_driver.percentiles_ms a in
  check Alcotest.bool "percentiles ordered" true (p.p50 <= p.p90 && p.p90 <= p.p99);
  check Alcotest.bool "positive latencies" true (p.p50 > 0.0)

let test_query_driver_open_loop () =
  let ts, routing, rng = transit_stub_world () in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:5 in
  (* Targets come from a completed twin world; the storm then rides the
     live transport of a second, still-running one. *)
  let _, targets = storm_world () in
  let d =
    Forwarding_driver.setup ~scheme:Dpc_core.Backend.S_advanced ~topology:ts.topology
      ~routing ~pairs ()
  in
  ignore (Forwarding_driver.inject_stream d ~rate_per_pair:4.0 ~duration:2.0 ~payload_size:100);
  let driver =
    Query_driver.create ~backend:d.Forwarding_driver.backend
      ~routing:d.Forwarding_driver.routing ~targets ~seed:11 ()
  in
  let collect =
    Query_driver.schedule_storm driver ~transport:d.Forwarding_driver.transport ~start:0.5
      ~rate:100.0 ~count:30 ()
  in
  (* Nothing fires until the transport runs. *)
  check Alcotest.int "armed, not fired" 0 (collect ()).Query_driver.issued;
  Forwarding_driver.run d;
  let o = collect () in
  check Alcotest.int "all fired during the run" 30 o.Query_driver.issued;
  check Alcotest.int "all complete" 30 o.Query_driver.complete

let test_query_driver_errors () =
  let d, targets = storm_world () in
  let backend = d.Forwarding_driver.backend and routing = d.Forwarding_driver.routing in
  Alcotest.check_raises "empty targets"
    (Invalid_argument "Query_driver.create: no targets") (fun () ->
      ignore (Query_driver.create ~backend ~routing ~targets:[||] ()));
  let driver = Query_driver.create ~backend ~routing ~targets ~seed:1 () in
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Query_driver.schedule_storm: rate must be positive") (fun () ->
      ignore
        (Query_driver.schedule_storm driver ~transport:d.Forwarding_driver.transport
           ~start:0.0 ~rate:0.0 ~count:1 ()
          : unit -> Query_driver.outcome));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Query_driver.schedule_storm: negative count") (fun () ->
      ignore
        (Query_driver.schedule_storm driver ~transport:d.Forwarding_driver.transport
           ~start:0.0 ~rate:1.0 ~count:(-1) ()
          : unit -> Query_driver.outcome));
  Alcotest.check_raises "percentiles of nothing"
    (Invalid_argument "Query_driver.percentiles_ms: no latencies") (fun () ->
      ignore
        (Query_driver.percentiles_ms
           { Query_driver.issued = 0; complete = 0; partial = 0; empty = 0; latencies = [] }))

(* ------------------------------------------------------------------ *)
(* Measure *)

let test_measure_snapshots () =
  let ts, routing, rng = transit_stub_world () in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:3 in
  let d =
    Forwarding_driver.setup ~scheme:Dpc_core.Backend.S_exspan ~topology:ts.topology ~routing
      ~pairs ()
  in
  let series =
    Measure.storage_snapshots ~sim:(Forwarding_driver.sim_exn d) ~every:1.0 ~until:4.0 (fun () ->
      Measure.total_provenance_bytes d.backend)
  in
  ignore (Forwarding_driver.inject_stream d ~rate_per_pair:10.0 ~duration:4.0 ~payload_size:64);
  Forwarding_driver.run d;
  check Alcotest.int "five snapshots" 5 (List.length !series);
  let values = List.map snd !series in
  check Alcotest.bool "monotone growth" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 4) values) (List.tl values));
  check Alcotest.bool "grows overall" true (List.nth values 4 > List.hd values)

let test_measure_per_node_rates () =
  let ts, routing, rng = transit_stub_world () in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:5 in
  let d =
    Forwarding_driver.setup ~scheme:Dpc_core.Backend.S_exspan ~topology:ts.topology ~routing
      ~pairs ()
  in
  ignore (Forwarding_driver.inject_stream d ~rate_per_pair:10.0 ~duration:2.0 ~payload_size:64);
  Forwarding_driver.run d;
  let rates = Measure.per_node_rates ~backend:d.backend ~nodes:100 ~duration:2.0 in
  check Alcotest.int "one rate per node" 100 (List.length rates);
  check Alcotest.bool "some node stores provenance" true (List.exists (fun r -> r > 0.0) rates);
  check Alcotest.bool "no negative rates" true (List.for_all (fun r -> r >= 0.0) rates)

let test_measure_bandwidth_series () =
  let ts, routing, rng = transit_stub_world () in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:3 in
  let d =
    Forwarding_driver.setup ~scheme:Dpc_core.Backend.S_basic ~topology:ts.topology ~routing
      ~pairs ~bucket_width:1.0 ()
  in
  ignore (Forwarding_driver.inject_stream d ~rate_per_pair:10.0 ~duration:3.0 ~payload_size:64);
  Forwarding_driver.run d;
  let series = Measure.bandwidth_series (Forwarding_driver.sim_exn d) in
  check Alcotest.bool "non-empty" true (series <> []);
  List.iter (fun (_, bps) -> if bps <= 0.0 then Alcotest.fail "empty bucket reported") series

let () =
  Alcotest.run "dpc_workload"
    [
      ( "pairs",
        [
          Alcotest.test_case "distinct" `Quick test_pairs_distinct;
          Alcotest.test_case "errors" `Quick test_pairs_errors;
        ] );
      ( "forwarding driver",
        [
          Alcotest.test_case "delivers everything" `Quick
            test_forwarding_driver_delivers_everything;
          Alcotest.test_case "storage ordering" `Quick test_forwarding_driver_storage_ordering;
          Alcotest.test_case "inject_total" `Quick test_forwarding_driver_inject_total_even_split;
          Alcotest.test_case "queries" `Quick test_forwarding_driver_queries;
        ] );
      ( "dns workload",
        [
          Alcotest.test_case "spec well-formed" `Quick test_dns_spec_well_formed;
          Alcotest.test_case "resolves everything" `Quick test_dns_driver_resolves_everything;
          Alcotest.test_case "storage ordering" `Quick test_dns_driver_storage_ordering;
          Alcotest.test_case "zipf concentration" `Quick test_dns_zipf_concentrates_requests;
        ] );
      ( "query driver",
        [
          Alcotest.test_case "seeded storms are deterministic" `Quick
            test_query_driver_deterministic;
          Alcotest.test_case "open-loop scheduling" `Quick test_query_driver_open_loop;
          Alcotest.test_case "errors" `Quick test_query_driver_errors;
        ] );
      ( "measure",
        [
          Alcotest.test_case "snapshots" `Quick test_measure_snapshots;
          Alcotest.test_case "per-node rates" `Quick test_measure_per_node_rates;
          Alcotest.test_case "bandwidth series" `Quick test_measure_bandwidth_series;
        ] );
    ]
