(** Memoization cache for bottom-up proof-tree re-execution.

    Querying the compressed schemes (Basic, Advanced) re-derives trees
    by walking [(NLoc, NRID)] back-pointers and re-firing rules; ExSPAN
    walks its uncompressed graph. All of that work is a pure function of
    the per-node store state it reads, so the serving tier memoizes it:
    one entry per query root, keyed by the root reference plus a scheme
    supplied context digest (the queried output's vid, and for Advanced
    the event id that selects the chain).

    Correctness contract — a hit must be byte-identical to a recompute:

    - {b Staleness.} Store tables are append-only but row {e sets} under
      an existing key still grow (a Basic rid gains alternative chains;
      an ExSPAN prov row gains derived refs). Every entry therefore
      records the write {e generation} of each node it read; the stores
      bump their per-node generation on every accepted row insert, and a
      lookup whose recorded generations no longer match drops the entry
      (counted as an invalidation) and misses.
    - {b §5.5 slow-update flush.} A [sig] broadcast means previously
      reconstructed trees may no longer reflect the store (Advanced
      wipes [htequi]); the stores call {!invalidate_node} from their
      [on_slow_update] hook, dropping every entry that read the node.
    - {b Crash recovery.} [Node.reset] (the crash path) fires an
      engine-level hook that calls {!invalidate_node}; rematerialized
      state then repopulates under fresh generations.
    - {b Degraded queries.} An entry also records nothing about node
      liveness, so a lookup takes the query's [up] predicate: any dep on
      a down node is a miss — the real walk then degrades exactly as it
      would with the cache off, keeping digests identical under crash
      schedules. Entries are never written from a walk that hit a down
      node.

    The cache is shared across nodes of one backend and mutex-guarded,
    so sharded (multi-domain) runs may consult it concurrently. Metrics
    flow through a tick callback the creator wires to the per-node
    registries: [query.cache.{hit,miss,evict,invalidate}]. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  size : int;  (** live entries *)
}

val create : ?capacity:int -> tick:(node:int -> string -> int -> unit) -> unit -> t
(** A fresh cache. [capacity] (default 4096) bounds live entries; going
    over evicts the least-recently-used half in one sweep. [tick node
    name by] routes a metrics increment to [node]'s registry.
    @raise Invalid_argument if [capacity < 1]. *)

val key : loc:int -> rid:Dpc_util.Sha1.t -> ctx:string -> string
(** The cache key for a query root: the [(NLoc, NRID)] pair the paper's
    reconstruction starts from, plus a scheme-specific context [ctx]
    disambiguating what is being rebuilt from that root (the output's
    vid; Advanced adds the event id). Raw bytes, no hex. *)

val find :
  t ->
  querier:int ->
  up:(int -> bool) ->
  gen:(int -> int) ->
  string ->
  Prov_tree.t list option
(** Look up a key. [gen node] must return the node's current write
    generation in the consulting store; [up] is the query's liveness
    predicate. Returns [None] (miss) when absent, when any dep node is
    down, or when a dep generation moved (the entry is then dropped and
    counted as an invalidation). Hit/miss ticks land on [querier]. *)

val add : t -> querier:int -> deps:(int * int) list -> string -> Prov_tree.t list -> unit
(** [add t ~querier ~deps key trees] memoizes [trees] under [key] with
    dependency snapshot [deps = (node, generation-as-read) list]. The
    caller must only add results of complete walks (no down node hit).
    May trigger eviction, ticked against [querier]. *)

val invalidate_node : t -> int -> unit
(** Drop every entry that read [node]; ticks
    [query.cache.invalidate] on that node once per dropped entry. *)

val clear : t -> unit
(** Drop everything, without counting invalidations (administrative). *)

val stats : t -> stats
val capacity : t -> int
