(** At-least-once delivery with exactly-once effects, over any transport.

    The engine's cross-node invariants — the [(NLoc, NRID)] back-pointers
    of §4 and the §5.5 [sig] broadcast — assume every message takes effect
    exactly once. A {!Transport.faulty} network breaks that: messages are
    lost, arrive twice, or arrive late. This layer restores the guarantee
    the invariants need:

    - every directed [(src, dst)] channel numbers its messages with a
      sequence number ([data_header_bytes] on the wire);
    - the receiver keeps a dedup/reorder window — a contiguous watermark
      plus the arrivals held above a gap — so each message's callback runs
      exactly once and in channel order, no matter how many copies arrive
      or how late. It acks ([ack_bytes] on the wire) only arrivals the
      watermark covers: a delivered message or a below-watermark
      duplicate. An arrival held above a gap is NOT acked — the window is
      volatile, so an ack is a durable promise the receiver can only make
      for the contiguous prefix (see the crash support below);
    - the sender retransmits on an ack timeout, backing off exponentially
      up to a cap, and gives up (counting the loss) after [max_retries]
      retransmissions so a totally dead link cannot hang the run.

    Transmission is at-least-once; *effects* are exactly-once and FIFO per
    channel — the TCP assumption the paper makes. Exactly-once alone is
    not enough: in the Advanced scheme a same-class event shipped with
    [exist_flag = true] must not overtake the earlier event that
    materializes its equivalence class on the shared channel, or its tree
    is orphaned (the §5.5 race). Cross-channel ordering is not (and need
    not be) restored; §5.6 covers that.

    The price of FIFO is head-of-line blocking: a gap holds later arrivals
    on the channel until the retransmit lands, and a message abandoned
    after [max_retries] wedges its channel for good — which is why
    [abandoned] must stay zero in a healthy run.

    All retransmit timers ride on the inner transport's clock, so a
    simulated run with faults still quiesces deterministically. *)

type config = {
  timeout : float;  (** seconds before the first retransmission *)
  backoff : float;  (** timeout multiplier per further attempt *)
  max_timeout : float;  (** backoff cap, seconds *)
  max_retries : int;  (** retransmissions before giving up *)
}

val default_config : config
(** 50 ms initial timeout, doubling to a 1 s cap, 20 retransmissions. *)

val data_header_bytes : int
(** Wire bytes the layer adds to every data transmission (the channel
    sequence number). *)

val ack_bytes : int
(** Wire size of one acknowledgement message. *)

type stats = {
  data_msgs : int;  (** distinct messages accepted from the sender *)
  data_bytes : int;  (** first-transmission bytes, headers included *)
  retransmits : int;  (** retransmissions performed *)
  retransmit_bytes : int;
  acks : int;  (** acknowledgements sent *)
  ack_bytes_total : int;
  dup_dropped : int;  (** arrivals suppressed by the dedup window *)
  held : int;  (** arrivals parked behind a sequence gap, then replayed *)
  abandoned : int;  (** messages given up on after [max_retries] *)
}

type t

val wrap : ?config:config -> ?metrics:(int -> Dpc_util.Metrics.t) -> Transport.t -> t
(** Layer reliable delivery over a transport. When [metrics] maps a node
    id to its registry, the layer records per-node counters:
    [net.data_msgs], [net.retransmits], [net.retransmit_bytes] and
    [net.abandoned] at the sender; [net.acks_sent], [net.ack_bytes],
    [net.dup_dropped] and [net.held] at the receiver. *)

val transport : t -> Transport.t
(** The reliable transport: [send] and [broadcast] deliver their callback
    exactly once per message (given enough retries); [schedule], [run],
    [now], byte and message totals delegate to the inner transport — so
    [total_bytes] includes ack and retransmit traffic, and {!stats} says
    how much of it there was. *)

val stats : t -> stats
(** Cluster-wide totals (the per-node breakdown lives in [metrics]). *)

(** {2 Crash support: channel state as data}

    A node's share of the channel state — the [next_seq] of channels it
    sends on, the [expected] watermark of channels it receives on — can be
    journaled, checkpointed, wiped on crash, and restored on recovery.
    The reorder window itself is never saved: held arrivals are unacked
    by construction, so the peers' retransmissions rebuild it. Restoring
    the watermark IS the recovery handshake — no explicit re-announce
    message is needed, because a retransmission below the restored
    watermark is acked as a duplicate and one at it is delivered. *)

type channel_event =
  | Next_seq of { src : int; dst : int; seq : int }
      (** channel [(src, dst)]: the sender's next unused sequence number
          advanced to [seq] — durable state of node [src] *)
  | Expected of { src : int; dst : int; seq : int }
      (** channel [(src, dst)]: the receiver's contiguous watermark
          advanced to [seq] — durable state of node [dst] *)

val set_persist : t -> (channel_event -> unit) -> unit
(** Observe every sequence-state advance, for write-ahead logging. The
    watermark event fires BEFORE the delivery callback runs, so journal
    entries written from inside the callback follow it. *)

val set_next_seq : t -> src:int -> dst:int -> int -> unit
(** Monotonic: raises the channel's [next_seq] to the given value if it is
    currently lower (mutating the live channel record — in-flight
    retransmit closures observe the change). Used by WAL replay. *)

val set_expected : t -> src:int -> dst:int -> int -> unit
(** Monotonic watermark restore, same contract as {!set_next_seq}. *)

val forget : t -> node:int -> unit
(** Wipe the node's volatile channel state, as a crash does: [next_seq]
    of its outgoing channels and the watermark + reorder window of its
    incoming ones drop to zero, in place. Without a subsequent
    {!restore}/{!set_next_seq}, the node would reuse sequence numbers its
    peers have already seen. *)

val snapshot : t -> node:int -> string
(** Serialize the node's channel sequence state (for inclusion in a
    checkpoint). Deterministic: channels are sorted, zero-state channels
    are skipped. *)

val restore : t -> node:int -> string -> unit
(** Apply a {!snapshot} through {!set_next_seq}/{!set_expected} — i.e.
    monotonically, so replaying an old snapshot over fresher state is a
    no-op. @raise Dpc_util.Serialize.Corrupt on a malformed blob. *)
