(** At-least-once delivery with exactly-once effects, over any transport.

    The engine's cross-node invariants — the [(NLoc, NRID)] back-pointers
    of §4 and the §5.5 [sig] broadcast — assume every message takes effect
    exactly once. A {!Transport.faulty} network breaks that: messages are
    lost, arrive twice, or arrive late. This layer restores the guarantee
    the invariants need:

    - every directed [(src, dst)] channel numbers its messages with a
      sequence number ([data_header_bytes] on the wire);
    - the receiver keeps a dedup/reorder window — a contiguous watermark
      plus the arrivals held above a gap — so each message's callback runs
      exactly once and in channel order, no matter how many copies arrive
      or how late. It acks ([ack_bytes] on the wire) only arrivals the
      watermark covers: a delivered message or a below-watermark
      duplicate. An arrival held above a gap is NOT acked — the window is
      volatile, so an ack is a durable promise the receiver can only make
      for the contiguous prefix (see the crash support below);
    - the sender retransmits on an ack timeout, backing off exponentially
      up to a cap (with optional deterministic per-channel jitter), and
      after [max_retries] retransmissions {e suspends} the channel: the
      unacked tail is parked, a cheap heal probe runs on the same capped
      backoff, and when the probe is answered the channel {e resurrects}
      — the parked tail re-offers in sequence order, so a partition
      longer than the whole retry budget still ends in exactly-once FIFO
      delivery once the link heals.

    Transmission is at-least-once; *effects* are exactly-once and FIFO per
    channel — the TCP assumption the paper makes. Exactly-once alone is
    not enough: in the Advanced scheme a same-class event shipped with
    [exist_flag = true] must not overtake the earlier event that
    materializes its equivalence class on the shared channel, or its tree
    is orphaned (the §5.5 race). Cross-channel ordering is not (and need
    not be) restored; §5.6 covers that.

    The price of FIFO is head-of-line blocking: a gap holds later arrivals
    on the channel until the retransmit lands, and a suspended channel
    holds its whole tail until resurrection. [abandoned] counts the
    currently-parked backlog — it must drain to zero once every partition
    heals, which the partition oracle asserts.

    All retransmit and probe timers ride on the inner transport's clock,
    so a simulated run with faults still quiesces deterministically —
    {b provided every partition eventually heals}. A suspended channel
    probes forever; drive an unhealed phase with [run ~until], not
    [run]. *)

type config = {
  timeout : float;  (** seconds before the first retransmission *)
  backoff : float;  (** timeout multiplier per further attempt *)
  max_timeout : float;  (** backoff cap, seconds *)
  max_retries : int;  (** retransmissions before suspending the channel *)
  jitter : float;
      (** fraction of the capped delay a deterministic per-channel hash
          may pull each retransmit/probe timer earlier; [0] disables.
          De-synchronizes the retransmit storm after a heal. *)
}

val default_config : config
(** 50 ms initial timeout, doubling to a 1 s cap, 20 retransmissions,
    no jitter. *)

val backoff_delay : config -> src:int -> dst:int -> attempt:int -> float
(** The delay armed after the [attempt]th transmission (1-based):
    [timeout * backoff^(attempt-1)] capped at [max_timeout], then scaled
    into [[(1-jitter) * capped, capped]] by a pure hash of
    [(src, dst, attempt)] — deterministic per channel, no shared stream.
    Exposed for the backoff-arithmetic tests and for anything that wants
    to reason about the retry budget [sum of the first max_retries + 1
    delays]. *)

val data_header_bytes : int
(** Wire bytes the layer adds to every data transmission (the channel
    sequence number). *)

val ack_bytes : int
(** Wire size of one acknowledgement message. *)

val probe_bytes : int
(** Wire size of one heal probe (and of its pong) — the whole per-probe
    cost of a suspended channel is [2 * probe_bytes] per backoff period,
    versus a full data retransmission per period before suspension. *)

type stats = {
  data_msgs : int;  (** distinct messages accepted from the sender *)
  data_bytes : int;  (** first-transmission bytes, headers included *)
  retransmits : int;  (** retransmissions performed (re-offers included) *)
  retransmit_bytes : int;
  acks : int;  (** acknowledgements sent *)
  ack_bytes_total : int;
  dup_dropped : int;  (** arrivals suppressed by the dedup window *)
  held : int;  (** arrivals parked behind a sequence gap, then replayed *)
  abandoned : int;
      (** messages currently parked on a suspended channel. Rises while a
          partition outlives the retry budget, drains to zero on
          resurrection (or on a crash wipe of the sender) — the health
          invariant every oracle asserts at end of run. *)
  suspensions : int;  (** channel transitions into the suspended state *)
  resurrections : int;  (** suspended channels brought back by a probe *)
  parked : int;  (** messages ever parked (cumulative) *)
  probes : int;  (** heal probes sent *)
}

type t

val wrap : ?config:config -> ?metrics:(int -> Dpc_util.Metrics.t) -> Transport.t -> t
(** Layer reliable delivery over a transport. When [metrics] maps a node
    id to its registry, the layer records per-node counters:
    [net.data_msgs], [net.retransmits], [net.retransmit_bytes],
    [net.parked], [net.suspensions], [net.resurrections] and
    [net.probes] at the sender; [net.acks_sent], [net.ack_bytes],
    [net.dup_dropped] and [net.held] at the receiver.
    @raise Invalid_argument on a non-positive timeout, backoff below 1,
    negative max_retries, or jitter outside [0, 1). *)

val suspended_channels : t -> int
(** Number of channels currently suspended (parked tail waiting on a
    heal probe). Zero once every partition has healed and every probe
    has been answered. *)

val transport : t -> Transport.t
(** The reliable transport: [send] and [broadcast] deliver their callback
    exactly once per message (given enough retries); [schedule], [run],
    [now], byte and message totals delegate to the inner transport — so
    [total_bytes] includes ack and retransmit traffic, and {!stats} says
    how much of it there was. *)

val stats : t -> stats
(** Cluster-wide totals (the per-node breakdown lives in [metrics]). *)

(** {2 Crash support: channel state as data}

    A node's share of the channel state — the [next_seq] of channels it
    sends on, the [expected] watermark of channels it receives on — can be
    journaled, checkpointed, wiped on crash, and restored on recovery.
    The reorder window itself is never saved: held arrivals are unacked
    by construction, so the peers' retransmissions rebuild it. Restoring
    the watermark IS the recovery handshake — no explicit re-announce
    message is needed, because a retransmission below the restored
    watermark is acked as a duplicate and one at it is delivered. *)

type channel_event =
  | Next_seq of { src : int; dst : int; seq : int }
      (** channel [(src, dst)]: the sender's next unused sequence number
          advanced to [seq] — durable state of node [src] *)
  | Expected of { src : int; dst : int; seq : int }
      (** channel [(src, dst)]: the receiver's contiguous watermark
          advanced to [seq] — durable state of node [dst] *)

val set_persist : t -> (channel_event -> unit) -> unit
(** Observe every sequence-state advance, for write-ahead logging. The
    watermark event fires BEFORE the delivery callback runs, so journal
    entries written from inside the callback follow it. *)

val set_next_seq : t -> src:int -> dst:int -> int -> unit
(** Monotonic: raises the channel's [next_seq] to the given value if it is
    currently lower (mutating the live channel record — in-flight
    retransmit closures observe the change). Used by WAL replay. *)

val set_expected : t -> src:int -> dst:int -> int -> unit
(** Monotonic watermark restore, same contract as {!set_next_seq}. *)

val forget : t -> node:int -> unit
(** Wipe the node's volatile channel state, as a crash does: [next_seq]
    of its outgoing channels and the watermark + reorder window of its
    incoming ones drop to zero, in place. Without a subsequent
    {!restore}/{!set_next_seq}, the node would reuse sequence numbers its
    peers have already seen. *)

val snapshot : t -> node:int -> string
(** Serialize the node's channel sequence state (for inclusion in a
    checkpoint). Deterministic: channels are sorted, zero-state channels
    are skipped. *)

val restore : t -> node:int -> string -> unit
(** Apply a {!snapshot} through {!set_next_seq}/{!set_expected} — i.e.
    monotonically, so replaying an old snapshot over fresher state is a
    no-op. @raise Dpc_util.Serialize.Corrupt on a malformed blob. *)
