type params = {
  transit : int;
  stub_domains : int;
  stubs_per_domain : int;
  transit_link : Topology.link;
  transit_stub_link : Topology.link;
  stub_link : Topology.link;
  extra_stub_edges : int;
}

let paper_params =
  {
    transit = 4;
    stub_domains = 3;
    stubs_per_domain = 8;
    transit_link = { Topology.latency = 0.050; bandwidth = 1e9 /. 8.0 };
    transit_stub_link = { Topology.latency = 0.010; bandwidth = 100e6 /. 8.0 };
    stub_link = { Topology.latency = 0.002; bandwidth = 50e6 /. 8.0 };
    extra_stub_edges = 2;
  }

type t = { topology : Topology.t; transit_nodes : int list; stub_nodes : int list }

let node_count p = p.transit + (p.transit * p.stub_domains * p.stubs_per_domain)

let generate ~rng p =
  if p.transit <= 0 || p.stub_domains <= 0 || p.stubs_per_domain <= 0 then
    invalid_arg "Transit_stub.generate: counts must be positive";
  let n = node_count p in
  let topo = Topology.create ~n in
  let transit_nodes = List.init p.transit (fun i -> i) in
  (* Full mesh among transit nodes. *)
  List.iter
    (fun a ->
      List.iter (fun b -> if a < b then Topology.add_link topo a b p.transit_link) transit_nodes)
    transit_nodes;
  let next = ref p.transit in
  let stub_nodes = ref [] in
  List.iter
    (fun transit ->
      for _domain = 1 to p.stub_domains do
        let members =
          List.init p.stubs_per_domain (fun _ ->
            let v = !next in
            incr next;
            stub_nodes := v :: !stub_nodes;
            v)
        in
        (* Random spanning tree: each node links to a random earlier member. *)
        List.iteri
          (fun i v ->
            if i > 0 then begin
              let earlier = List.nth members (Dpc_util.Rng.int rng i) in
              Topology.add_link topo v earlier p.stub_link
            end)
          members;
        (* A few extra intra-domain edges for path diversity. *)
        let members_arr = Array.of_list members in
        for _ = 1 to p.extra_stub_edges do
          let a = Dpc_util.Rng.pick rng members_arr
          and b = Dpc_util.Rng.pick rng members_arr in
          if a <> b && not (Topology.connected topo a b) then
            Topology.add_link topo a b p.stub_link
        done;
        (* Gateway: the first member connects to the transit node. *)
        match members with
        | gateway :: _ -> Topology.add_link topo transit gateway p.transit_stub_link
        | [] -> assert false
      done)
    transit_nodes;
  { topology = topo; transit_nodes; stub_nodes = List.rev !stub_nodes }
