lib/util/table_fmt.ml: List Printf String
