lib/core/store_multi.ml: Array Ast Delp Dpc_analysis Dpc_engine Dpc_ndlog Dpc_net Dpc_util Hashtbl List Pretty Printf Prov_tree Query_cost Query_result Rows Sha1 Side_store Tuple
