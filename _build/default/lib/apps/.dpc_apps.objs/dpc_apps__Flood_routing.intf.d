lib/apps/flood_routing.mli: Dpc_engine Dpc_ndlog Dpc_net
