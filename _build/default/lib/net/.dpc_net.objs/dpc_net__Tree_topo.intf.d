lib/net/tree_topo.mli: Dpc_util Topology
