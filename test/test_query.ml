(* Query serving tier tests.

   Covers the memoization cache (unit semantics: hit/miss, generation
   staleness, down-dependency handling, LRU eviction, metrics ticks),
   the §5.5 slow-update invalidation regression (delete a route, the
   flush must evict the affected entries and the next query must rebuild
   rather than serve stale trees), proof-tree pagination properties over
   generated instances (pages concatenate to the full forest, top-k is a
   prefix, cursors survive checkpoint/restore, bad cursors surface), the
   analytic query-cost drift identity, and the seeded Zipfian storm
   sweep (quick by default; DPC_QUERIES_FULL=1 — `make queries` — runs
   every scheme at full size). *)

open Dpc_core
open Dpc_testkit
open Dpc_workload

let check = Alcotest.check

let all_schemes =
  [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

let sha = Dpc_util.Sha1.digest_string

(* ------------------------------------------------------------------ *)
(* Cache unit semantics. Entries can carry any tree list, including [];
   these tests never need real trees. *)

type tick = { node : int; name : string; by : int }

let make_cache ?capacity () =
  let ticks = ref [] in
  let cache =
    Query_cache.create ?capacity
      ~tick:(fun ~node name by -> ticks := { node; name; by } :: !ticks)
      ()
  in
  (cache, ticks)

let ticked ticks name =
  List.fold_left (fun acc t -> if t.name = name then acc + t.by else acc) 0 !ticks

let all_up _ = true

let test_cache_hit_miss () =
  let cache, ticks = make_cache () in
  let key = Query_cache.key ~loc:3 ~rid:(sha "r") ~ctx:"ctx" in
  let gen _ = 7 in
  (match Query_cache.find cache ~querier:0 ~up:all_up ~gen key with
  | Some _ -> Alcotest.fail "hit on an empty cache"
  | None -> ());
  Query_cache.add cache ~querier:0 ~deps:[ (1, 7); (2, 7) ] key [];
  (match Query_cache.find cache ~querier:0 ~up:all_up ~gen key with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "hit returned different trees"
  | None -> Alcotest.fail "miss right after add");
  let s = Query_cache.stats cache in
  check Alcotest.int "hits" 1 s.hits;
  check Alcotest.int "misses" 1 s.misses;
  check Alcotest.int "size" 1 s.size;
  check Alcotest.int "invalidations" 0 s.invalidations;
  check Alcotest.int "hit tick" 1 (ticked ticks "query.cache.hit");
  check Alcotest.int "miss tick" 1 (ticked ticks "query.cache.miss")

let test_cache_key_disambiguates () =
  (* Same root, different context (e.g. two events of one equivalence
     class) must not collide. *)
  let k1 = Query_cache.key ~loc:1 ~rid:(sha "r") ~ctx:Dpc_util.Sha1.(to_raw (sha "e1"))
  and k2 = Query_cache.key ~loc:1 ~rid:(sha "r") ~ctx:Dpc_util.Sha1.(to_raw (sha "e2"))
  and k3 = Query_cache.key ~loc:2 ~rid:(sha "r") ~ctx:Dpc_util.Sha1.(to_raw (sha "e1")) in
  if k1 = k2 || k1 = k3 || k2 = k3 then Alcotest.fail "cache keys collided"

let test_cache_generation_staleness () =
  let cache, ticks = make_cache () in
  let key = Query_cache.key ~loc:0 ~rid:(sha "r") ~ctx:"" in
  Query_cache.add cache ~querier:0 ~deps:[ (1, 7) ] key [];
  (* Node 1 accepted a write since the entry was recorded. *)
  (match Query_cache.find cache ~querier:0 ~up:all_up ~gen:(fun _ -> 8) key with
  | Some _ -> Alcotest.fail "served a stale entry"
  | None -> ());
  let s = Query_cache.stats cache in
  check Alcotest.int "entry dropped" 0 s.size;
  check Alcotest.int "counted as invalidation" 1 s.invalidations;
  check Alcotest.int "and as a miss" 1 s.misses;
  (* The lazily-detected staleness tick lands at the querier. *)
  check Alcotest.bool "invalidate ticked at the querier" true
    (List.exists (fun t -> t.name = "query.cache.invalidate" && t.node = 0) !ticks)

let test_cache_down_dep_is_miss_not_drop () =
  let cache, _ = make_cache () in
  let key = Query_cache.key ~loc:0 ~rid:(sha "r") ~ctx:"" in
  let gen _ = 7 in
  Query_cache.add cache ~querier:0 ~deps:[ (1, 7); (2, 7) ] key [];
  (* Node 2 is down: the lookup must miss (the real walk then degrades
     exactly like cache-off), but the entry survives the outage. *)
  (match Query_cache.find cache ~querier:0 ~up:(fun n -> n <> 2) ~gen key with
  | Some _ -> Alcotest.fail "served an entry with a down dependency"
  | None -> ());
  check Alcotest.int "entry kept" 1 (Query_cache.stats cache).size;
  (match Query_cache.find cache ~querier:0 ~up:all_up ~gen key with
  | Some _ -> ()
  | None -> Alcotest.fail "entry gone after the node came back")

let test_cache_invalidate_node () =
  let cache, _ = make_cache () in
  let k1 = Query_cache.key ~loc:0 ~rid:(sha "a") ~ctx:""
  and k2 = Query_cache.key ~loc:0 ~rid:(sha "b") ~ctx:"" in
  Query_cache.add cache ~querier:0 ~deps:[ (1, 7) ] k1 [];
  Query_cache.add cache ~querier:0 ~deps:[ (2, 7) ] k2 [];
  Query_cache.invalidate_node cache 1;
  let s = Query_cache.stats cache in
  check Alcotest.int "only the dependent entry dropped" 1 s.size;
  check Alcotest.int "one invalidation" 1 s.invalidations;
  (match Query_cache.find cache ~querier:0 ~up:all_up ~gen:(fun _ -> 7) k2 with
  | Some _ -> ()
  | None -> Alcotest.fail "independent entry was dropped")

let test_cache_eviction () =
  let cache, ticks = make_cache ~capacity:4 () in
  for i = 1 to 5 do
    Query_cache.add cache ~querier:0 ~deps:[ (0, 1) ]
      (Query_cache.key ~loc:i ~rid:(sha (string_of_int i)) ~ctx:"")
      []
  done;
  let s = Query_cache.stats cache in
  check Alcotest.bool "evictions happened" true (s.evictions > 0);
  check Alcotest.bool "size back under capacity" true (s.size <= 4);
  check Alcotest.bool "evict ticked" true (ticked ticks "query.cache.evict" > 0);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Query_cache.create: capacity must be positive") (fun () ->
      ignore (Query_cache.create ~capacity:0 ~tick:(fun ~node:_ _ _ -> ()) ()))

(* ------------------------------------------------------------------ *)
(* A small forwarding world shared by the integration tests: 3-node
   line, a handful of packets, queryable recv outputs at node 2. *)

let line_routes =
  [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
    Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ]

let line_routing () =
  let topo = Dpc_net.Topology.create ~n:3 in
  let l = { Dpc_net.Topology.latency = 0.002; bandwidth = 1e7 } in
  Dpc_net.Topology.add_link topo 0 1 l;
  Dpc_net.Topology.add_link topo 1 2 l;
  Dpc_net.Routing.compute topo

let forwarding_world scheme payloads =
  let routing = line_routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let runtime =
    Dpc_engine.Runtime.create
      ~transport:(Dpc_net.Transport.direct ~nodes:3 ())
      ~delp ~env:Dpc_apps.Forwarding.env ~hook:(Backend.hook backend)
      ~nodes:(Backend.nodes backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime line_routes;
  List.iter
    (fun p ->
      Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:p))
    payloads;
  Dpc_engine.Runtime.run runtime;
  (backend, runtime, routing)

let recv p = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:p

let tree_sigs (r : Query_result.t) =
  List.map (fun t -> Prov_tree.to_string t) r.trees

let test_backend_cache_metrics () =
  let backend, _, routing = forwarding_world Backend.S_advanced [ "a"; "b" ] in
  check Alcotest.bool "no cache by default" true
    (Option.is_none (Backend.query_cache backend));
  let cache = Backend.attach_query_cache backend in
  check Alcotest.bool "attached" true
    (match Backend.query_cache backend with Some c -> c == cache | None -> false);
  let q p = ignore (Backend.query backend ~cost:Query_cost.free ~routing (recv p)) in
  q "a";
  q "a";
  (* Queries run at the querier — node 2, the recv location — so the
     hit/miss ticks land in that node's registry. *)
  let m = Dpc_engine.Node.metrics (Backend.nodes backend).(2) in
  check Alcotest.bool "miss counted on querier" true
    (Dpc_util.Metrics.counter_value m "query.cache.miss" > 0);
  check Alcotest.bool "hit counted on querier" true
    (Dpc_util.Metrics.counter_value m "query.cache.hit" > 0);
  Backend.detach_query_cache backend;
  check Alcotest.bool "detached" true (Option.is_none (Backend.query_cache backend))

(* ------------------------------------------------------------------ *)
(* §5.5 invalidation regression: populate the cache, delete a route (a
   slow-update sig broadcast), and the affected entries must be evicted —
   the next query rebuilds from the store instead of serving the
   pre-flush trees, and agrees byte-for-byte with a cache-off query. *)

let test_sig_flush_invalidates name scheme =
  let payloads = [ "a"; "b"; "c" ] in
  let backend, runtime, routing = forwarding_world scheme payloads in
  let q p = Backend.query backend ~cost:Query_cost.free ~routing (recv p) in
  let baseline = List.map (fun p -> tree_sigs (q p)) payloads in
  List.iter
    (fun sigs -> check Alcotest.bool (name ^ ": baseline non-empty") true (sigs <> []))
    baseline;
  let cache = Backend.attach_query_cache backend in
  let populate = List.map (fun p -> tree_sigs (q p)) payloads in
  check Alcotest.bool (name ^ ": populating pass identical") true (populate = baseline);
  ignore (List.map (fun p -> tree_sigs (q p)) payloads);
  let before = Query_cache.stats cache in
  check Alcotest.bool (name ^ ": repeat pass hit") true (before.hits > 0);
  (* The §5.5 slow update: delete one route. The sig broadcast reaches
     every node and must flush the entries built over it. *)
  let refreshed = Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 in
  check Alcotest.bool (name ^ ": route was present") true
    (Dpc_engine.Runtime.delete_slow_runtime runtime refreshed);
  Dpc_engine.Runtime.run runtime;
  let after = Query_cache.stats cache in
  check Alcotest.bool (name ^ ": flush evicted cached entries") true
    (after.invalidations > before.invalidations);
  (* Re-query with the cache on, then with it off: both views of the
     post-flush store must agree — stale trees would differ here. *)
  let rebuilt_on = List.map (fun p -> tree_sigs (q p)) payloads in
  let rebuilt_misses = (Query_cache.stats cache).misses in
  check Alcotest.bool (name ^ ": re-query rebuilt, not served") true
    (rebuilt_misses > after.misses || rebuilt_on = []);
  Backend.detach_query_cache backend;
  let rebuilt_off = List.map (fun p -> tree_sigs (q p)) payloads in
  check Alcotest.bool (name ^ ": cache-on equals cache-off after flush") true
    (rebuilt_on = rebuilt_off);
  (* Reinsert completes the fig11 refresh; the world must heal back to
     the original trees with the cache reattached. *)
  ignore (Backend.attach_query_cache backend);
  Dpc_engine.Runtime.insert_slow_runtime runtime refreshed;
  Dpc_engine.Runtime.run runtime;
  let healed = List.map (fun p -> tree_sigs (q p)) payloads in
  check Alcotest.bool (name ^ ": healed after reinsert") true (healed = baseline)

(* ------------------------------------------------------------------ *)
(* Pagination properties over generated instances. The pool under test
   is every tree of every output of a world — large enough for real
   multi-page traversals. *)

let world_tree_pool (w : Delp_gen.world) =
  List.map (fun (out, _) -> out) (Dpc_engine.Runtime.outputs w.runtime)
  |> List.sort_uniq Dpc_ndlog.Tuple.compare
  |> List.concat_map (fun out ->
       (Backend.query w.backend ~cost:Query_cost.free ~routing:w.routing out).trees)
  |> Query_result.dedup_trees

let trees_equal a b =
  List.length a = List.length b && List.for_all2 Prov_tree.equal a b

let paginate_all ?(limit = 1) pool =
  let rec walk cursor acc rounds =
    if rounds > List.length pool + 2 then Alcotest.fail "pagination did not terminate";
    let p = Query_result.paginate ?cursor ~limit pool in
    check Alcotest.int "page_total is the pool size" (List.length pool) p.page_total;
    check Alcotest.bool "page is bounded" true (List.length p.page_trees <= limit);
    let acc = acc @ p.page_trees in
    match p.next_cursor with
    | None -> acc
    | Some c -> walk (Some c) acc (rounds + 1)
  in
  walk None [] 0

let test_pagination_properties () =
  let pools = ref 0 in
  List.iter
    (fun seed ->
      let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed) in
      List.iter
        (fun scheme ->
          let w = Delp_gen.build_world instance scheme in
          Delp_gen.run_events w instance.events;
          let pool = world_tree_pool w in
          if List.length pool >= 2 then incr pools;
          List.iter
            (fun limit ->
              if not (trees_equal pool (paginate_all ~limit pool)) then
                Alcotest.failf "seed %d, %s, limit %d: concatenated pages <> full forest" seed
                  (Backend.scheme_name scheme) limit)
            [ 1; 2; 3 ];
          (* Top-k is a prefix of the canonical order. *)
          List.iteri
            (fun k _ ->
              let prefix = Query_result.top_k k pool in
              if not (trees_equal prefix (List.filteri (fun i _ -> i < k) pool)) then
                Alcotest.failf "seed %d, %s: top_%d is not a prefix" seed
                  (Backend.scheme_name scheme) k)
            pool)
        [ Backend.S_exspan; Backend.S_advanced ])
    [ 1; 2; 3; 4; 5 ];
  (* The property is vacuous on single-tree pools. *)
  check Alcotest.bool "some pools were multi-page" true (!pools > 0)

let test_pagination_errors () =
  let backend, _, routing = forwarding_world Backend.S_basic [ "a"; "b" ] in
  let trees p = (Backend.query backend ~cost:Query_cost.free ~routing (recv p)).trees in
  let pool = trees "a" in
  check Alcotest.bool "have a tree" true (pool <> []);
  Alcotest.check_raises "limit 0"
    (Invalid_argument "Query_result.paginate: limit must be positive") (fun () ->
      ignore (Query_result.paginate ~limit:0 pool));
  Alcotest.check_raises "malformed cursor"
    (Invalid_argument "Query_result.paginate: malformed cursor") (fun () ->
      ignore (Query_result.paginate ~cursor:"bogus" ~limit:1 pool));
  (* A cursor from a different result set names no tree here. *)
  let foreign = Query_result.cursor_of_tree (List.hd (trees "b")) in
  Alcotest.check_raises "stale cursor"
    (Invalid_argument "Query_result.paginate: unknown or stale cursor") (fun () ->
      ignore (Query_result.paginate ~cursor:foreign ~limit:1 pool));
  (* query_page surfaces the same errors through the backend API. *)
  Alcotest.check_raises "query_page propagates"
    (Invalid_argument "Query_result.paginate: malformed cursor") (fun () ->
      ignore
        (Backend.query_page backend ~cost:Query_cost.free ~routing ~cursor:"bogus" ~limit:1
           (recv "a")));
  Alcotest.check_raises "negative top_k" (Invalid_argument "Query_result.top_k: negative k")
    (fun () -> ignore (Query_result.top_k (-1) pool))

(* Cursors survive a restart: re-issuing a pre-checkpoint cursor against
   the restored store resumes at exactly the same position. *)
let test_cursor_survives_restart name scheme =
  let multi = ref false in
  List.iter
    (fun seed ->
      let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed) in
      let w = Delp_gen.build_world instance scheme in
      Delp_gen.run_events w instance.events;
      let pool = world_tree_pool w in
      if List.length pool >= 2 then begin
        multi := true;
        let first = Query_result.paginate ~limit:1 pool in
        let cursor = Option.get first.next_cursor in
        let rest_before = Query_result.paginate ~cursor ~limit:(List.length pool) pool in
        (* Restart: serialize, rebuild, recompute the pool from the
           restored backend, re-issue the same cursor string. *)
        let blob = Backend.checkpoint w.backend in
        let restored =
          Backend.restore scheme ~delp:instance.Delp_gen.delp ~env:Dpc_engine.Env.empty blob
        in
        let pool' =
          List.map (fun (out, _) -> out) (Dpc_engine.Runtime.outputs w.runtime)
          |> List.sort_uniq Dpc_ndlog.Tuple.compare
          |> List.concat_map (fun out ->
               (Backend.query restored ~cost:Query_cost.free ~routing:w.routing out).trees)
          |> Query_result.dedup_trees
        in
        let rest_after = Query_result.paginate ~cursor ~limit:(List.length pool') pool' in
        if not (trees_equal rest_before.page_trees rest_after.page_trees) then
          Alcotest.failf "%s seed %d: cursor resumed at a different position after restart" name
            seed
      end)
    [ 1; 2; 3; 4; 5 ];
  check Alcotest.bool (name ^ ": a multi-tree pool occurred") true !multi

(* ------------------------------------------------------------------ *)
(* Cost-model drift: the modeled latency must equal the analytic
   identity over the counted work, exactly — with and without the cache,
   with and without a down node. *)

let drift_identity (cost : Query_cost.t) (r : Query_result.t) =
  r.hop_s
  +. (float_of_int r.entries *. cost.per_entry)
  +. (float_of_int r.bytes *. cost.per_byte)
  +. (float_of_int r.rederives *. cost.per_rederive)
  +. (float_of_int r.downs *. float_of_int (cost.down_retries + 1) *. cost.down_timeout)

let test_cost_drift () =
  let downs_total = ref 0 and queries = ref 0 in
  List.iter
    (fun seed ->
      let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed) in
      List.iter
        (fun scheme ->
          let w = Delp_gen.build_world instance scheme in
          Delp_gen.run_events w instance.events;
          let outs =
            List.map (fun (out, _) -> out) (Dpc_engine.Runtime.outputs w.runtime)
            |> List.sort_uniq Dpc_ndlog.Tuple.compare
          in
          let check_drift label cost ?up out =
            let r = Backend.query w.backend ~cost ~routing:w.routing ?up out in
            incr queries;
            downs_total := !downs_total + r.Query_result.downs;
            let expected = drift_identity cost r in
            if Float.abs (r.latency -. expected) > 1e-9 then
              Alcotest.failf
                "seed %d, %s, %s: latency %.12f drifted from identity %.12f \
                 (hop %.12f, %d entries, %d bytes, %d rederives, %d downs)"
                seed (Backend.scheme_name scheme) label r.latency expected r.hop_s r.entries
                r.bytes r.rederives r.downs
          in
          let sweep label =
            List.iter
              (fun out ->
                List.iter
                  (fun (cname, cost) ->
                    check_drift (label ^ " " ^ cname) cost out;
                    check_drift (label ^ " " ^ cname ^ " degraded") cost
                      ~up:(fun n -> n <> 0) out)
                  [
                    ("emulation", Query_cost.emulation);
                    ("simulation", Query_cost.simulation);
                    ("free", Query_cost.free);
                  ])
              outs
          in
          sweep "no-cache";
          ignore (Backend.attach_query_cache w.backend);
          sweep "cache-populate";
          sweep "cache-hit")
        all_schemes)
    [ 1; 2; 3 ];
  check Alcotest.bool "identity checked on real queries" true (!queries > 0);
  check Alcotest.bool "down term exercised" true (!downs_total > 0)

(* ------------------------------------------------------------------ *)
(* Zipfian storm sweep: one forwarding world per scheme; the same seeded
   storm cache-off, cold, and warm. Transparent results, >= 50% hit rate
   cold, and a faster warm p99. Quick runs the Advanced scheme; the full
   sweep (DPC_QUERIES_FULL=1, `make queries`) runs all four. *)

let run_storm_sweep ~schemes ~count =
  let ts, routing, rng =
    let rng = Dpc_util.Rng.create ~seed:17 in
    let ts = Dpc_net.Transit_stub.generate ~rng Dpc_net.Transit_stub.paper_params in
    (ts, Dpc_net.Routing.compute ts.topology, rng)
  in
  let pairs = Pairs.select ~rng ~eligible:ts.stub_nodes ~count:5 in
  List.iter
    (fun scheme ->
      let name = Backend.scheme_name scheme in
      let d =
        Forwarding_driver.setup ~scheme ~topology:ts.topology ~routing ~pairs ()
      in
      ignore (Forwarding_driver.inject_stream d ~rate_per_pair:10.0 ~duration:2.0 ~payload_size:100);
      Forwarding_driver.run d;
      let seen = Hashtbl.create 256 in
      let targets =
        List.filter
          (fun t -> if Hashtbl.mem seen t then false else (Hashtbl.add seen t (); true))
          (Forwarding_driver.received d)
        |> Array.of_list
      in
      let targets = Array.sub targets 0 (min (Array.length targets) (max 8 (count / 4))) in
      let storm () =
        Query_driver.storm
          (Query_driver.create ~backend:d.Forwarding_driver.backend
             ~routing:d.Forwarding_driver.routing ~targets ~seed:23 ())
          ~count ()
      in
      let off = storm () in
      let cache = Backend.attach_query_cache d.Forwarding_driver.backend in
      let cold = storm () in
      let st = Query_cache.stats cache in
      let warm = storm () in
      check Alcotest.int (name ^ ": all issued") count off.Query_driver.issued;
      check Alcotest.int (name ^ ": transparent complete count") off.Query_driver.complete
        warm.Query_driver.complete;
      check Alcotest.int (name ^ ": transparent empty count") off.Query_driver.empty
        warm.Query_driver.empty;
      check Alcotest.int (name ^ ": cold matches off too") off.Query_driver.empty
        cold.Query_driver.empty;
      let hit_rate = float_of_int st.hits /. float_of_int (max 1 (st.hits + st.misses)) in
      if hit_rate < 0.5 then
        Alcotest.failf "%s: cold hit rate %.0f%% below 50%%" name (100.0 *. hit_rate);
      let p_off = Query_driver.percentiles_ms off
      and p_warm = Query_driver.percentiles_ms warm in
      if p_warm.Query_driver.p99 >= p_off.Query_driver.p99 then
        Alcotest.failf "%s: warm p99 %.3fms not faster than cache-off %.3fms" name
          p_warm.Query_driver.p99 p_off.Query_driver.p99;
      (* Same seed, same storm: the warm pass is reproducible. *)
      let warm2 = storm () in
      check
        (Alcotest.list (Alcotest.float 1e-12))
        (name ^ ": warm storm deterministic")
        warm.Query_driver.latencies warm2.Query_driver.latencies)
    schemes

let test_storm_quick () = run_storm_sweep ~schemes:[ Backend.S_advanced ] ~count:200

let test_storm_full () =
  match Sys.getenv_opt "DPC_QUERIES_FULL" with
  | None -> print_endline "skipped (set DPC_QUERIES_FULL=1; `make queries` does)"
  | Some _ -> run_storm_sweep ~schemes:all_schemes ~count:400

let scheme_cases f =
  List.map
    (fun s ->
      Alcotest.test_case (Backend.scheme_name s) `Quick (fun () ->
        f (Backend.scheme_name s) s))
    all_schemes

let () =
  Alcotest.run "dpc_query"
    [
      ( "cache unit",
        [
          Alcotest.test_case "hit and miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "key disambiguation" `Quick test_cache_key_disambiguates;
          Alcotest.test_case "generation staleness" `Quick test_cache_generation_staleness;
          Alcotest.test_case "down dep is a miss, not a drop" `Quick
            test_cache_down_dep_is_miss_not_drop;
          Alcotest.test_case "invalidate node" `Quick test_cache_invalidate_node;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
        ] );
      ( "backend integration",
        [ Alcotest.test_case "attach, metrics, detach" `Quick test_backend_cache_metrics ] );
      ("sig flush invalidation (§5.5)", scheme_cases test_sig_flush_invalidates);
      ( "pagination",
        [
          Alcotest.test_case "pages concatenate to the forest" `Quick
            test_pagination_properties;
          Alcotest.test_case "bad cursors surface" `Quick test_pagination_errors;
        ] );
      ("cursor survives restart", scheme_cases test_cursor_survives_restart);
      ( "cost drift",
        [ Alcotest.test_case "latency equals the analytic identity" `Quick test_cost_drift ] );
      ( "zipfian storm",
        [
          Alcotest.test_case "storm (quick, Advanced)" `Quick test_storm_quick;
          Alcotest.test_case "storm (full, all schemes)" `Slow test_storm_full;
        ] );
    ]
