lib/apps/arp.mli: Dpc_engine Dpc_ndlog
