lib/ndlog/parser.ml: Array Ast Lexer List Printf Value
