module type S = sig
  val name : string
  val nodes : int
  val shards : int
  val shard_of : int -> int
  val now : unit -> float
  val schedule : delay:float -> (unit -> unit) -> unit
  val schedule_on : node:int -> delay:float -> (unit -> unit) -> unit
  val send : src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
  val broadcast : src:int -> bytes:int -> (int -> unit) -> unit
  val run : ?until:float -> unit -> unit
  val total_bytes : unit -> int
  val messages : unit -> int
end

type t = (module S)

let name (module T : S) = T.name
let nodes (module T : S) = T.nodes
let shards (module T : S) = T.shards
let shard_of (module T : S) node = T.shard_of node
let now (module T : S) = T.now ()
let schedule (module T : S) ~delay k = T.schedule ~delay k
let schedule_on (module T : S) ~node ~delay k = T.schedule_on ~node ~delay k
let send (module T : S) ~src ~dst ~bytes k = T.send ~src ~dst ~bytes k
let broadcast (module T : S) ~src ~bytes k = T.broadcast ~src ~bytes k
let run ?until (module T : S) = T.run ?until ()
let total_bytes (module T : S) = T.total_bytes ()
let messages (module T : S) = T.messages ()

let of_sim sim : t =
  (module struct
    let name = "sim"
    let nodes = Topology.size (Sim.topology sim)
    let shards = 1
    let shard_of _ = 0
    let now () = Sim.now sim
    let schedule ~delay k = Sim.schedule sim ~delay k
    let schedule_on ~node:_ ~delay k = Sim.schedule sim ~delay k
    let send ~src ~dst ~bytes k = Sim.send sim ~src ~dst ~bytes k

    (* The sig broadcast of §5.5: one message per node, the origin
       included (delivered through the queue to preserve ordering). *)
    let broadcast ~src ~bytes k =
      for dst = 0 to nodes - 1 do
        Sim.send sim ~src ~dst ~bytes (fun () -> k dst)
      done

    let run ?until () = Sim.run ?until sim
    let total_bytes () = Sim.total_bytes sim
    let messages () = Sim.messages_sent sim
  end)

type direct_event = { at : float; seq : int; action : unit -> unit }

let direct ~nodes:n () : t =
  if n <= 0 then invalid_arg "Transport.direct: nodes must be positive";
  let queue =
    Dpc_util.Heap.create ~cmp:(fun a b ->
      match compare a.at b.at with 0 -> compare a.seq b.seq | c -> c)
  in
  let clock = ref 0.0 in
  let next_seq = ref 0 in
  let bytes_total = ref 0 in
  let msgs = ref 0 in
  let schedule_at at action =
    let seq = !next_seq in
    incr next_seq;
    Dpc_util.Heap.push queue { at; seq; action }
  in
  (module struct
    let name = "direct"
    let nodes = n
    let shards = 1
    let shard_of _ = 0
    let now () = !clock

    let schedule ~delay k =
      if delay < 0.0 then invalid_arg "Transport.direct: negative delay";
      schedule_at (!clock +. delay) k

    let schedule_on ~node:_ ~delay k = schedule ~delay k

    (* Zero-latency delivery: the message arrives at the current time,
       through the queue so ordering is preserved. Bytes are still
       accounted (once per message; there are no hops). *)
    let send ~src:_ ~dst ~bytes k =
      if dst < 0 || dst >= n then
        failwith (Printf.sprintf "Transport.direct: node %d out of range" dst);
      incr msgs;
      bytes_total := !bytes_total + bytes;
      schedule_at !clock k

    let broadcast ~src ~bytes k =
      for dst = 0 to n - 1 do
        send ~src ~dst ~bytes (fun () -> k dst)
      done

    let run ?until () =
      let limit = match until with None -> infinity | Some u -> u in
      let rec go () =
        match Dpc_util.Heap.pop queue with
        | None -> ()
        | Some ev when ev.at >= limit -> Dpc_util.Heap.push queue ev
        | Some ev ->
            clock := Float.max !clock ev.at;
            ev.action ();
            go ()
      in
      go ()

    let total_bytes () = !bytes_total
    let messages () = !msgs
  end)

(* ------------------------------------------------------------------ *)
(* Fault injection *)

type fault = F_deliver | F_drop | F_duplicate | F_delay of float

type fault_config = { drop : float; duplicate : float; delay : float; delay_max : float }

let fault_config ?(drop = 0.0) ?(duplicate = 0.0) ?(delay = 0.0) ?(delay_max = 0.0) () =
  let rate name r =
    if r < 0.0 || r > 1.0 then
      invalid_arg (Printf.sprintf "Transport.fault_config: %s rate %g outside [0, 1]" name r)
  in
  rate "drop" drop;
  rate "duplicate" duplicate;
  rate "delay" delay;
  if drop +. duplicate +. delay > 1.0 then
    invalid_arg "Transport.fault_config: rates sum past 1";
  if delay_max < 0.0 then invalid_arg "Transport.fault_config: negative delay_max";
  { drop; duplicate; delay; delay_max }

type fault_stats = {
  delivered : int Atomic.t;
  dropped : int Atomic.t;
  duplicated : int Atomic.t;
  delayed : int Atomic.t;
}

let faulty_with ~decide (module T : S) : t * fault_stats =
  let stats =
    { delivered = Atomic.make 0; dropped = Atomic.make 0; duplicated = Atomic.make 0;
      delayed = Atomic.make 0 }
  in
  let transport : t =
    (module struct
      let name = "faulty+" ^ T.name
      let nodes = T.nodes
      let shards = T.shards
      let shard_of = T.shard_of
      let now = T.now
      let schedule = T.schedule
      let schedule_on = T.schedule_on

      let send ~src ~dst ~bytes k =
        match decide ~src ~dst ~bytes with
        | F_deliver ->
            Atomic.incr stats.delivered;
            T.send ~src ~dst ~bytes k
        | F_drop ->
            (* The transmission happened — the inner backend charges its
               bytes and advances its counters — but the receiver never
               sees it. *)
            Atomic.incr stats.dropped;
            T.send ~src ~dst ~bytes (fun () -> ())
        | F_duplicate ->
            Atomic.incr stats.duplicated;
            T.send ~src ~dst ~bytes k;
            T.send ~src ~dst ~bytes k
        | F_delay extra ->
            Atomic.incr stats.delayed;
            T.send ~src ~dst ~bytes (fun () -> T.schedule ~delay:extra k)

      (* Per-destination faults: one broadcast may reach some nodes and
         not others, which is exactly the nasty case for sig. *)
      let broadcast ~src ~bytes k =
        for dst = 0 to nodes - 1 do
          send ~src ~dst ~bytes (fun () -> k dst)
        done

      let run = T.run
      let total_bytes = T.total_bytes
      let messages = T.messages
    end)
  in
  (transport, stats)

let faulty ~config ~rng inner =
  faulty_with inner ~decide:(fun ~src:_ ~dst:_ ~bytes:_ ->
    let u = Dpc_util.Rng.float rng 1.0 in
    if u < config.drop then F_drop
    else if u < config.drop +. config.duplicate then F_duplicate
    else if u < config.drop +. config.duplicate +. config.delay then
      F_delay (Dpc_util.Rng.float rng config.delay_max)
    else F_deliver)

(* SplitMix64 finalizer: the per-channel hashed fault schedule needs a
   high-quality stateless mix so decisions depend only on
   (seed, src, dst, per-channel count), never on global draw order. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

let mix_absorb state x = mix64 (Int64.add state (Int64.mul golden (Int64.of_int (x + 1))))

(* Top 53 bits as a uniform float in [0, 1). *)
let unit_float h = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let hashed_decide ~config ~seed ~nodes =
  if nodes <= 0 then invalid_arg "Transport.hashed_decide: nodes must be positive";
  let counts = Array.make (nodes * nodes) 0 in
  fun ~src ~dst ~bytes:_ ->
    if src < 0 || src >= nodes || dst < 0 || dst >= nodes then
      invalid_arg "Transport.hashed_decide: node out of range";
    let idx = (src * nodes) + dst in
    let n = counts.(idx) in
    counts.(idx) <- n + 1;
    let h = mix_absorb (mix_absorb (mix_absorb (Int64.of_int seed) src) dst) n in
    let u = unit_float h in
    if u < config.drop then F_drop
    else if u < config.drop +. config.duplicate then F_duplicate
    else if u < config.drop +. config.duplicate +. config.delay then
      F_delay (unit_float (mix64 h) *. config.delay_max)
    else F_deliver

let channel_unit_hash ~seed ~src ~dst ~n =
  unit_float (mix_absorb (mix_absorb (mix_absorb (Int64.of_int seed) src) dst) n)

(* ------------------------------------------------------------------ *)
(* Crash faults *)

type crash_stats = { crashes : int Atomic.t; suppressed : int Atomic.t }

type crash_control = {
  crash : int -> unit;
  restart : int -> unit;
  is_up : int -> bool;
  crash_stats : crash_stats;
}

let crashable (module T : S) : t * crash_control =
  let up = Array.make T.nodes true in
  let stats = { crashes = Atomic.make 0; suppressed = Atomic.make 0 } in
  let control =
    {
      crash =
        (fun node ->
          if node < 0 || node >= T.nodes then
            invalid_arg (Printf.sprintf "Transport.crashable: node %d out of range" node);
          if up.(node) then begin
            up.(node) <- false;
            Atomic.incr stats.crashes
          end);
      restart =
        (fun node ->
          if node < 0 || node >= T.nodes then
            invalid_arg (Printf.sprintf "Transport.crashable: node %d out of range" node);
          up.(node) <- true);
      is_up =
        (fun node ->
          if node < 0 || node >= T.nodes then
            invalid_arg (Printf.sprintf "Transport.crashable: node %d out of range" node);
          up.(node));
      crash_stats = stats;
    }
  in
  let transport : t =
    (module struct
      let name = "crashable+" ^ T.name
      let nodes = T.nodes
      let shards = T.shards
      let shard_of = T.shard_of
      let now = T.now
      let schedule = T.schedule
      let schedule_on = T.schedule_on

      (* The wire still carries the message (bytes are charged, the clock
         advances), but a down destination never sees the delivery. The
         up-check runs at ARRIVAL time, not send time: a node that crashes
         while a message is in flight loses it, and a message sent at a
         down node before it recovers is lost even if the node is back up
         when the send is issued — matching a dead NIC, not a full mailbox.
         Under a sharded transport the check runs on the destination's
         shard and crash/restart actions are scheduled on the same shard
         (see [Durable.schedule_crash]), so [up.(dst)] stays single-owner. *)
      let send ~src ~dst ~bytes k =
        T.send ~src ~dst ~bytes (fun () ->
          if up.(dst) then k () else Atomic.incr stats.suppressed)

      let broadcast ~src ~bytes k =
        for dst = 0 to nodes - 1 do
          send ~src ~dst ~bytes (fun () -> k dst)
        done

      let run = T.run
      let total_bytes = T.total_bytes
      let messages = T.messages
    end)
  in
  (transport, control)

(* ------------------------------------------------------------------ *)
(* Partition faults *)

type partition_stats = {
  cuts : int Atomic.t;
  heals : int Atomic.t;
  lost : int Atomic.t;
}

type partition_control = {
  set_link : src:int -> dst:int -> up:bool -> unit;
  link_up : src:int -> dst:int -> bool;
  partition_stats : partition_stats;
}

let partitionable ?metrics (module T : S) : t * partition_control =
  let n = T.nodes in
  (* link.(src * n + dst): directed, so an asymmetric outage can pass
     traffic one way while dropping the reverse path. *)
  let link = Array.make (n * n) true in
  let stats = { cuts = Atomic.make 0; heals = Atomic.make 0; lost = Atomic.make 0 } in
  let check_range src dst =
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg (Printf.sprintf "Transport.partitionable: link %d->%d out of range" src dst)
  in
  let control =
    {
      set_link =
        (fun ~src ~dst ~up ->
          check_range src dst;
          let idx = (src * n) + dst in
          if link.(idx) <> up then begin
            link.(idx) <- up;
            Atomic.incr (if up then stats.heals else stats.cuts);
            match metrics with
            | None -> ()
            | Some f ->
                Dpc_util.Metrics.incr (f dst)
                  (if up then "net.partition.heals" else "net.partition.cuts")
          end);
      link_up =
        (fun ~src ~dst ->
          check_range src dst;
          link.((src * n) + dst));
      partition_stats = stats;
    }
  in
  let transport : t =
    (module struct
      let name = "partitionable+" ^ T.name
      let nodes = T.nodes
      let shards = T.shards
      let shard_of = T.shard_of
      let now = T.now
      let schedule = T.schedule
      let schedule_on = T.schedule_on

      (* Like [crashable], the wire still carries the transmission — bytes
         charged, clocks advanced — and the link check runs at ARRIVAL
         time on the destination's shard. A message in flight when the
         link is cut dies on the floor; one sent into a cut link that
         heals before arrival survives. [set_link] flips must therefore be
         scheduled on [shard_of dst] (see [schedule_plan]) so the check
         stays single-owner under a sharded backend. *)
      let send ~src ~dst ~bytes k =
        T.send ~src ~dst ~bytes (fun () ->
          if link.((src * nodes) + dst) then k ()
          else begin
            Atomic.incr stats.lost;
            match metrics with
            | None -> ()
            | Some f -> Dpc_util.Metrics.incr (f dst) "net.partition.lost"
          end)

      let broadcast ~src ~bytes k =
        for dst = 0 to nodes - 1 do
          send ~src ~dst ~bytes (fun () -> k dst)
        done

      let run = T.run
      let total_bytes = T.total_bytes
      let messages = T.messages
    end)
  in
  (transport, control)

(* ---- partition plans ---- *)

type outage = { link_src : int; link_dst : int; from : float; until : float }

type partition_plan = outage list

let outage ~src ~dst ~from ~until =
  if from < 0.0 || until <= from then
    invalid_arg (Printf.sprintf "Transport.outage: bad window [%g, %g)" from until);
  { link_src = src; link_dst = dst; from; until }

let oneway_plan ~src ~dst ~at ~duration = [ outage ~src ~dst ~from:at ~until:(at +. duration) ]

let link_plan ~a ~b ~at ~duration =
  [
    outage ~src:a ~dst:b ~from:at ~until:(at +. duration);
    outage ~src:b ~dst:a ~from:at ~until:(at +. duration);
  ]

(* Symmetric split: every directed link crossing the cut goes down, both
   ways — the classic two-island partition. *)
let split_plan ~nodes ~left ~at ~duration =
  let in_left = Array.make nodes false in
  List.iter
    (fun node ->
      if node < 0 || node >= nodes then invalid_arg "Transport.split_plan: node out of range";
      in_left.(node) <- true)
    left;
  let plan = ref [] in
  for a = 0 to nodes - 1 do
    for b = 0 to nodes - 1 do
      if a <> b && in_left.(a) && not in_left.(b) then
        plan := outage ~src:a ~dst:b ~from:at ~until:(at +. duration)
                :: outage ~src:b ~dst:a ~from:at ~until:(at +. duration)
                :: !plan
    done
  done;
  List.rev !plan

(* A flapping link: [cycles] down windows of [down] seconds each, with at
   least [dwell] seconds of healed link between them (the min-heal dwell
   that keeps a resurrection from being cut mid-re-offer every time). *)
let flap_plan ~a ~b ~at ~cycles ~down ~dwell =
  if cycles <= 0 then invalid_arg "Transport.flap_plan: cycles must be positive";
  if down <= 0.0 || dwell <= 0.0 then invalid_arg "Transport.flap_plan: down and dwell must be positive";
  List.concat
    (List.init cycles (fun i ->
       let start = at +. (float_of_int i *. (down +. dwell)) in
       link_plan ~a ~b ~at:start ~duration:down))

(* Seeded-random plan: [count] directed outages hashed from the seed, with
   per-link overlap pruning so the cut/heal schedule never double-heals a
   link, and a [dwell] gap enforced between consecutive outages of the
   same link. Deterministic in (seed, nodes, count, horizon ...). *)
let random_plan ~seed ~nodes ~count ~horizon ~min_down ~max_down ?(dwell = 0.0) () =
  if nodes < 2 then invalid_arg "Transport.random_plan: need at least 2 nodes";
  if count < 0 then invalid_arg "Transport.random_plan: negative count";
  if min_down <= 0.0 || max_down < min_down then
    invalid_arg "Transport.random_plan: bad down-time range";
  let draw i slot = channel_unit_hash ~seed ~src:slot ~dst:i ~n:i in
  let raw =
    List.init count (fun i ->
      let src = int_of_float (draw i 1 *. float_of_int nodes) in
      let dst0 = int_of_float (draw i 2 *. float_of_int (nodes - 1)) in
      let dst = if dst0 >= src then dst0 + 1 else dst0 in
      let from = draw i 3 *. horizon in
      let down = min_down +. (draw i 4 *. (max_down -. min_down)) in
      outage ~src ~dst ~from ~until:(from +. down))
  in
  (* Prune per-link overlaps (keep the earlier outage; a later one must
     start at least [dwell] after the survivor heals). *)
  let by_start a b = compare (a.from, a.link_src, a.link_dst) (b.from, b.link_src, b.link_dst) in
  let sorted = List.sort by_start raw in
  let last_heal = Hashtbl.create 16 in
  List.filter
    (fun o ->
      let key = (o.link_src, o.link_dst) in
      let ok =
        match Hashtbl.find_opt last_heal key with
        | Some h -> o.from >= h +. dwell
        | None -> true
      in
      if ok then Hashtbl.replace last_heal key o.until;
      ok)
    sorted

(* Schedule the plan's cut/heal flips. Each flip is a timer on the
   destination node's shard — the shard that owns the arrival-time link
   check — so sharded runs see no cross-domain writes to the link state.
   Times are absolute; anything already in the past fires immediately. *)
let schedule_plan transport control plan =
  let now = now transport in
  List.iter
    (fun o ->
      let at delay f = schedule_on transport ~node:o.link_dst ~delay:(Float.max 0.0 delay) f in
      at (o.from -. now) (fun () -> control.set_link ~src:o.link_src ~dst:o.link_dst ~up:false);
      at (o.until -. now) (fun () -> control.set_link ~src:o.link_src ~dst:o.link_dst ~up:true))
    plan

let plan_horizon plan = List.fold_left (fun acc o -> Float.max acc o.until) 0.0 plan
