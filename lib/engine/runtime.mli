(** Distributed pipelined semi-naïve evaluation of a DELP over a message
    {!Dpc_net.Transport} (§3.1): an arriving event tuple triggers every
    rule whose event relation matches; each derived head is shipped to its
    location specifier and becomes the next event, until a tuple with no
    downstream rules is produced (the output) or no rule fires (the event
    dies). Provenance maintenance piggybacks on this via {!Prov_hook}.

    Per-node state lives in {!Node.t} values: the runtime reaches a
    node's database and metrics through its [Node.t], never through a
    parallel array of its own. Pass [?nodes] to share a cluster with the
    provenance stores (the usual setup); omit it to get a fresh one. *)

type t

type stats = {
  injected : int;
  fired : int;  (** rule executions *)
  outputs : int;
  dead_ends : int;  (** events no rule could fire on *)
}

val create :
  transport:Dpc_net.Transport.t ->
  ?reliable:Dpc_net.Reliable.config ->
  ?domains:int ->
  delp:Dpc_ndlog.Delp.t ->
  env:Env.t ->
  hook:Prov_hook.t ->
  ?msg_overhead:int ->
  ?interest:string list ->
  ?record_outputs:bool ->
  ?nodes:Node.t array ->
  unit ->
  t
(** [msg_overhead] (default 28 bytes) is the fixed per-message header
    charged on top of tuple and meta bytes.

    [reliable] layers {!Dpc_net.Reliable} between the runtime and
    [transport]: every shipped event tuple and every [sig] broadcast then
    gets at-least-once delivery with exactly-once effects — which is what
    the §4 back-pointers and the §5.5 table flush assume — even when
    [transport] drops, duplicates, or delays ({!Dpc_net.Transport.faulty}).
    The layer's per-node [net.*] counters (retransmits, acks, dedup drops)
    land in the node registries and so in {!metrics_snapshot}; its
    cluster-wide byte adders are available through {!reliability}.

    [record_outputs] (default [true]) keeps every terminal output for
    {!outputs}. Turn it off in long measurement runs that never read
    them — otherwise the list grows without bound. Stats and metrics
    still count outputs either way.

    [interest] adds relations of interest beyond the terminal outputs
    (§3.2: the user picks which relations get concrete provenance). A
    derived tuple of an interest relation gets an [on_output] record when
    it arrives at its node — so its provenance is queryable directly —
    and execution continues through it as usual.

    [nodes] defaults to [Node.cluster (Transport.nodes transport)].

    [domains] asserts the intended parallelism: the transport must report
    exactly that many shards (e.g. a [Dpc_net.Shard_sim] created with the
    same [~domains]). Omit it to accept any transport. The runtime itself
    needs no further configuration to run sharded — all dispatch is
    shard-local by construction: an event is processed on the shard
    owning its node, injections and retries are placed with
    [Transport.schedule_on], and the cluster-global stats are atomics.
    @raise Invalid_argument if any [interest] name is not a derived
    (event) relation of the program (the message lists every offender),
    if [nodes] has the wrong length for the transport, or if [domains]
    disagrees with the transport's shard count. *)

val transport : t -> Dpc_net.Transport.t
(** The transport the runtime actually sends through — the reliable
    wrapper when [?reliable] was given, the raw one otherwise. *)

val domains : t -> int
(** The transport's shard count (1 on sequential backends). *)

val reliability : t -> Dpc_net.Reliable.t option
(** The delivery layer created by [?reliable], for its {!Dpc_net.Reliable.stats}
    (ack/retransmit bandwidth adders). [None] on bare transports. *)

val delp : t -> Dpc_ndlog.Delp.t

val nodes : t -> Node.t array
val node : t -> int -> Node.t

val db : t -> int -> Db.t
(** The node-local database; load slow-changing tables through it before
    injecting events, or use {!load_slow}. *)

val load_slow : t -> Dpc_ndlog.Tuple.t list -> unit
(** Insert each tuple into the database at its own location (no broadcast;
    use for pre-run setup). *)

val insert_slow_runtime : t -> Dpc_ndlog.Tuple.t -> unit
(** §5.5: insert a slow-changing tuple at runtime — stores it and
    broadcasts the [sig] control message to every node, invoking each
    node's [on_slow_update] on delivery. Re-inserting a tuple already
    present is a no-op: no broadcast, no message accounting. *)

val delete_slow_runtime : t -> Dpc_ndlog.Tuple.t -> bool
(** §5.5: remove a slow-changing tuple at runtime. A deletion is a
    slow-table update like any other, so it broadcasts [sig] (with the
    same message/byte accounting as an insert) — equivalence-class trees
    derived against the old table must not be served afterwards. Returns
    [false] (and stays silent) if the tuple was not present. *)

val inject : t -> ?delay:float -> Dpc_ndlog.Tuple.t -> unit
(** Schedule an input event tuple for processing at its location.
    @raise Invalid_argument if the tuple is not of the input event
    relation. *)

val outputs : t -> (Dpc_ndlog.Tuple.t * Prov_hook.meta) list
(** Terminal output tuples in production order (oldest first); tuples of
    extra interest relations are not included (they continue executing)
    but are provenance-queryable. *)

val stats : t -> stats

val metrics_snapshot : t -> Dpc_util.Metrics.snapshot
(** The merge of every node's metrics. Counters recorded by the runtime:
    [runtime.injected], [runtime.fired], [runtime.outputs],
    [runtime.dead_ends], [runtime.shipped_msgs], [runtime.shipped_bytes];
    the stores add their own [store.*] counters on the same nodes. *)

val run : ?until:float -> t -> unit
(** Drive the transport until quiescence (or [until]). On a sharded
    transport this spins up the shard domains and returning is the merge
    barrier: every node's state, metrics, and output is safe to read
    afterwards without synchronization. *)

(** {2 Crash-fault support}

    The runtime exposes three hooks the durable layer ([Dpc_core.Durable])
    wires together; none of them is needed on a crash-free run. *)

val set_journal : t -> (node:int -> Journal.entry -> unit) -> unit
(** Install the write-ahead sink. From then on the runtime reports, at
    the owning node and before applying the effect: injected inputs,
    event arrivals (with their meta), delivered [sig] messages,
    slow-table loads and runtime mutations. {!Dpc_net.Reliable} channel
    advances are reported by that layer's own [set_persist], not here. *)

val set_availability : t -> (int -> bool) -> unit
(** Tell {!inject} which nodes are up. An injection whose node is down is
    re-presented every 50 ms (the input source is durable) until the node
    restarts, bounded so a never-restarted node cannot wedge {!run}
    (abandons tick [runtime.abandoned_injections]). Deliveries between
    nodes are already cut by [Transport.crashable]; this hook only covers
    the injection path, which schedules directly on the clock. *)

val replay : t -> node:int -> Journal.entry list -> unit
(** Re-apply a journal tail to rebuild one node's volatile state after
    {!Node.reset}: entries run through the same hook/process pipeline
    that produced the original state, with sends, journaling, and the
    cluster-global {!stats} counters suppressed (per-node metric ticks
    are kept — the node's registry was wiped with it). Channel entries
    restore the reliable layer's sequence state monotonically, in
    place — or go through {!set_channel_restore} when the sequence state
    lives below the transport. Remote-destined sends regenerated during
    replay are re-offered through the [replayed] hook of {!set_remote}
    (see there) instead of being dropped. *)

(** {2 Real-process support}

    A transport that hosts only part of the cluster in this OS process
    (a [Dpc_net.Socket] backend) cannot carry delivery closures to the
    other part. These hooks let the runtime hand every cross-process
    message over as a serialized {!Journal.entry} payload instead; none
    of them is needed on an in-process backend. *)

val set_remote :
  t ->
  is_local:(int -> bool) ->
  ship:(dst:int -> bytes:int -> payload:string -> unit) ->
  replayed:(dst:int -> payload:string -> unit) ->
  unit
(** Split the cluster: [is_local] says which nodes this process hosts.
    Sends and [sig] broadcasts to local nodes keep going through the
    transport's event queue; every other destination gets [ship] with the
    serialized entry (and the modeled [bytes] for accounting) — the host
    forwards the payload to the peer process, which applies it with
    {!deliver_remote}. [replayed] receives the remote sends regenerated
    while {!replay} rebuilds a node: a crash can separate an arrival's
    write-ahead record from the durable-outbox records of the sends it
    caused, so the host must reconcile each re-offered payload against
    its outbox ledger by per-channel position — skip the prefix the
    ledger already has, record-and-transmit the missing tail. *)

val deliver_remote : t -> node:int -> string -> unit
(** Apply one payload shipped by a peer process's [ship] hook to the
    local [node]: journals the entry, then runs it through the normal
    processing pipeline (an [Arrival] fires rules and ships onward, a
    [Sig] invokes the slow-update hook). The caller provides the
    exactly-once, in-order discipline ({!Dpc_net.Socket} does).
    @raise Invalid_argument if the entry is not an arrival or sig, or is
    addressed to a different node.
    @raise Dpc_util.Serialize.Corrupt on an undecodable payload. *)

val set_channel_restore :
  t -> next_seq:(peer:int -> seq:int -> unit) -> expected:(peer:int -> seq:int -> unit) -> unit
(** Where {!replay} routes [Next_seq]/[Expected] journal entries when
    there is no in-process reliable layer: a socket host points these at
    its transport's sequence state ([Dpc_net.Socket.set_next_seq] /
    [set_expected]). Ignored while [?reliable] is in use — the reliable
    layer wins. *)
