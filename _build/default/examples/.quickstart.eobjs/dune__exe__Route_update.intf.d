examples/route_update.mli:
