(** Mutable binary min-heap, used as the discrete-event simulator's queue. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** An empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] if empty. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap is unchanged). *)
