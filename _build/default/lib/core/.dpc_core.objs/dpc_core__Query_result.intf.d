lib/core/query_result.mli: Prov_tree
