lib/net/transit_stub.mli: Dpc_util Topology
