open Dpc_ndlog

let source =
  {|// ARP-style address resolution.
r1 arpRequest(@SW, H, IP, RQID) :- arpQuery(@H, IP, RQID), arpSwitch(@H, SW).
r2 arpReply(@H, IP, MAC, RQID)  :- arpRequest(@SW, H, IP, RQID), macTable(@SW, IP, MAC).
|}

let delp () =
  match Parser.parse_program ~name:"arp" source with
  | Error e -> failwith ("Arp.delp: parse error: " ^ e)
  | Ok p -> begin
      match Delp.validate p with
      | Ok d -> d
      | Error e -> failwith ("Arp.delp: " ^ Delp.error_to_string e)
    end

let env = Dpc_engine.Env.empty

let arp_query ~host ~ip ~rqid =
  Tuple.make "arpQuery" [ Value.Addr host; Value.Str ip; Value.Int rqid ]

let arp_switch ~host ~switch = Tuple.make "arpSwitch" [ Value.Addr host; Value.Addr switch ]

let mac_table ~switch ~ip ~mac =
  Tuple.make "macTable" [ Value.Addr switch; Value.Str ip; Value.Str mac ]

let arp_reply ~host ~ip ~mac ~rqid =
  Tuple.make "arpReply" [ Value.Addr host; Value.Str ip; Value.Str mac; Value.Int rqid ]
