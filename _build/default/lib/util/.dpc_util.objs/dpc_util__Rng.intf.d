lib/util/rng.mli:
