(** A node-local relational store with set semantics (the [DB_i] of the
    system model, §3): slow-changing base tables plus derived tuples. *)

type t

val create : unit -> t

val insert : t -> Dpc_ndlog.Tuple.t -> bool
(** [true] if the tuple was new. *)

val remove : t -> Dpc_ndlog.Tuple.t -> bool
(** [true] if the tuple was present. *)

val mem : t -> Dpc_ndlog.Tuple.t -> bool

val scan : t -> string -> Dpc_ndlog.Tuple.t list
(** All tuples of a relation, in unspecified but deterministic order. *)

val relations : t -> string list
val cardinality : t -> string -> int
val total_tuples : t -> int

val size_bytes : t -> int
(** Serialized size of the whole store. *)
