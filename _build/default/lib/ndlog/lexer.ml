type token =
  | T_ident of string
  | T_var of string
  | T_int of int
  | T_str of string
  | T_bool of bool
  | T_at
  | T_lparen
  | T_rparen
  | T_comma
  | T_dot
  | T_derives
  | T_assign
  | T_eq
  | T_neq
  | T_lt
  | T_leq
  | T_gt
  | T_geq
  | T_plus
  | T_minus
  | T_star
  | T_slash
  | T_percent
  | T_eof

type located = { tok : token; line : int; col : int }
type error = { line : int; col : int; message : string }

exception Lex_error of error

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_alpha c || is_digit c || c = '_'

type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let peek2 cur =
  if cur.pos + 1 < String.length cur.src then Some cur.src.[cur.pos + 1] else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.pos <- cur.pos + 1

let fail cur message = raise (Lex_error { line = cur.line; col = cur.col; message })

let rec skip_trivia cur =
  match peek cur with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance cur;
      skip_trivia cur
  | Some '/' when peek2 cur = Some '/' ->
      let rec to_eol () =
        match peek cur with
        | Some '\n' | None -> ()
        | Some _ ->
            advance cur;
            to_eol ()
      in
      to_eol ();
      skip_trivia cur
  | Some _ | None -> ()

let lex_ident cur =
  let start = cur.pos in
  while match peek cur with Some c -> is_ident_char c | None -> false do
    advance cur
  done;
  String.sub cur.src start (cur.pos - start)

let lex_int cur =
  let start = cur.pos in
  while match peek cur with Some c -> is_digit c | None -> false do
    advance cur
  done;
  int_of_string (String.sub cur.src start (cur.pos - start))

let lex_string cur =
  advance cur;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string literal"
    | Some '"' -> advance cur
    | Some '\\' -> begin
        advance cur;
        match peek cur with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance cur;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance cur;
            go ()
        | Some (('"' | '\\') as c) ->
            Buffer.add_char buf c;
            advance cur;
            go ()
        | Some c -> fail cur (Printf.sprintf "unknown escape '\\%c'" c)
        | None -> fail cur "unterminated escape"
      end
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        go ()
  in
  go ();
  Buffer.contents buf

let next_token cur =
  skip_trivia cur;
  let line = cur.line and col = cur.col in
  let mk tok = { tok; line; col } in
  match peek cur with
  | None -> mk T_eof
  | Some c when is_digit c -> mk (T_int (lex_int cur))
  | Some c when is_alpha c || c = '_' ->
      let word = lex_ident cur in
      if String.equal word "true" then mk (T_bool true)
      else if String.equal word "false" then mk (T_bool false)
      else if c >= 'A' && c <= 'Z' then mk (T_var word)
      else mk (T_ident word)
  | Some '"' -> mk (T_str (lex_string cur))
  | Some '@' ->
      advance cur;
      mk T_at
  | Some '(' ->
      advance cur;
      mk T_lparen
  | Some ')' ->
      advance cur;
      mk T_rparen
  | Some ',' ->
      advance cur;
      mk T_comma
  | Some '.' ->
      advance cur;
      mk T_dot
  | Some ':' -> begin
      advance cur;
      match peek cur with
      | Some '-' ->
          advance cur;
          mk T_derives
      | Some '=' ->
          advance cur;
          mk T_assign
      | Some _ | None -> fail cur "expected ':-' or ':='"
    end
  | Some '=' -> begin
      advance cur;
      match peek cur with
      | Some '=' ->
          advance cur;
          mk T_eq
      | Some _ | None -> fail cur "expected '=='"
    end
  | Some '!' -> begin
      advance cur;
      match peek cur with
      | Some '=' ->
          advance cur;
          mk T_neq
      | Some _ | None -> fail cur "expected '!='"
    end
  | Some '<' -> begin
      advance cur;
      match peek cur with
      | Some '=' ->
          advance cur;
          mk T_leq
      | Some _ | None -> mk T_lt
    end
  | Some '>' -> begin
      advance cur;
      match peek cur with
      | Some '=' ->
          advance cur;
          mk T_geq
      | Some _ | None -> mk T_gt
    end
  | Some '+' ->
      advance cur;
      mk T_plus
  | Some '-' ->
      advance cur;
      mk T_minus
  | Some '*' ->
      advance cur;
      mk T_star
  | Some '/' ->
      advance cur;
      mk T_slash
  | Some '%' ->
      advance cur;
      mk T_percent
  | Some c -> fail cur (Printf.sprintf "unexpected character '%c'" c)

let tokenize src =
  let cur = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token cur in
    match t.tok with T_eof -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  match go [] with toks -> Ok toks | exception Lex_error e -> Error e

let describe = function
  | T_ident s -> Printf.sprintf "identifier %S" s
  | T_var s -> Printf.sprintf "variable %S" s
  | T_int i -> Printf.sprintf "integer %d" i
  | T_str s -> Printf.sprintf "string %S" s
  | T_bool b -> Printf.sprintf "boolean %b" b
  | T_at -> "'@'"
  | T_lparen -> "'('"
  | T_rparen -> "')'"
  | T_comma -> "','"
  | T_dot -> "'.'"
  | T_derives -> "':-'"
  | T_assign -> "':='"
  | T_eq -> "'=='"
  | T_neq -> "'!='"
  | T_lt -> "'<'"
  | T_leq -> "'<='"
  | T_gt -> "'>'"
  | T_geq -> "'>='"
  | T_plus -> "'+'"
  | T_minus -> "'-'"
  | T_star -> "'*'"
  | T_slash -> "'/'"
  | T_percent -> "'%'"
  | T_eof -> "end of input"
