lib/ndlog/ast.mli: Value
