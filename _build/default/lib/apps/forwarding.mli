(** The packet-forwarding application (paper Fig 1): the first evaluation
    workload and the running example for both compression schemes. *)

val source : string
(** NDlog source of the two-rule program. *)

val delp : unit -> Dpc_ndlog.Delp.t
(** Parsed and validated; raises [Failure] only if [source] is broken
    (checked by tests). *)

val env : Dpc_engine.Env.t
(** No user-defined functions. *)

val packet : src:int -> dst:int -> payload:string -> Dpc_ndlog.Tuple.t
(** The input event [packet(@src, src, dst, payload)]. *)

val route : at:int -> dst:int -> next:int -> Dpc_ndlog.Tuple.t
(** A slow-changing routing entry [route(@at, dst, next)]. *)

val recv : at:int -> src:int -> dst:int -> payload:string -> Dpc_ndlog.Tuple.t
(** The output tuple an administrator queries. *)

val routes_for_pair : Dpc_net.Routing.t -> src:int -> dst:int -> Dpc_ndlog.Tuple.t list
(** Route entries along the shortest path from [src] to [dst] (one per
    non-destination hop), as the paper's pre-computed routing protocol
    installs. @raise Failure if [dst] is unreachable. *)

val routes_for_pairs : Dpc_net.Routing.t -> (int * int) list -> Dpc_ndlog.Tuple.t list
(** Union over pairs, deduplicated. *)
