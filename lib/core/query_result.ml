type t = {
  trees : Prov_tree.t list;
  latency : float;
  entries : int;
  bytes : int;
  rederives : int;
  hop_s : float;
  downs : int;
  complete : bool;
}

let empty =
  {
    trees = [];
    latency = 0.0;
    entries = 0;
    bytes = 0;
    rederives = 0;
    hop_s = 0.0;
    downs = 0;
    complete = true;
  }

let dedup_trees trees = List.sort_uniq Prov_tree.compare trees

(* ------------------------------------------------------------------ *)
(* Pagination: bounded chunks of the canonical tree ordering.

   The canonical order is [Prov_tree.compare] — the same total order
   [dedup_trees] already leaves results in — so page boundaries are a
   pure function of the tree set, not of traversal accidents. A cursor
   names the last tree of the previous page by content digest, which
   makes it replayable across restarts: rebuild the result (from the
   store, the WAL, or a checkpoint), and the digest still identifies the
   same position as long as the tree set is unchanged. *)

type page = {
  page_trees : Prov_tree.t list;
  next_cursor : string option;
  page_total : int;
}

let cursor_prefix = "dpc-cursor-v1:"

let cursor_of_tree tree =
  cursor_prefix ^ Dpc_util.Sha1.to_hex (Dpc_util.Sha1.digest_string (Prov_tree.to_string tree))

let rec take n = function
  | [] -> ([], [])
  | x :: rest when n > 0 ->
      let page, beyond = take (n - 1) rest in
      (x :: page, beyond)
  | rest -> ([], rest)

let rec last = function [ x ] -> x | _ :: rest -> last rest | [] -> assert false

let paginate ?cursor ~limit trees =
  if limit < 1 then invalid_arg "Query_result.paginate: limit must be positive";
  let trees = dedup_trees trees in
  let total = List.length trees in
  let remaining =
    match cursor with
    | None -> trees
    | Some c ->
        if not (String.length c > String.length cursor_prefix && String.sub c 0 (String.length cursor_prefix) = cursor_prefix)
        then invalid_arg "Query_result.paginate: malformed cursor";
        (* Start-after semantics: drop everything up to and including the
           named tree. A cursor that names no current tree is stale
           (different result set) — surface it rather than silently
           restarting from the top. *)
        let rec after = function
          | [] -> invalid_arg "Query_result.paginate: unknown or stale cursor"
          | tree :: rest -> if cursor_of_tree tree = c then rest else after rest
        in
        after trees
  in
  let page_trees, beyond = take limit remaining in
  let next_cursor =
    match (page_trees, beyond) with
    | _, [] -> None
    | [], _ -> None
    | _ -> Some (cursor_of_tree (last page_trees))
  in
  { page_trees; next_cursor; page_total = total }

let top_k k trees =
  if k < 0 then invalid_arg "Query_result.top_k: negative k";
  fst (take k (dedup_trees trees))
