open Dpc_ndlog

(* Keyed by the raw 20-byte digest. *)
type t = { tuples : (string, Tuple.t) Hashtbl.t; mutable bytes : int }

let create () = { tuples = Hashtbl.create 32; bytes = 0 }

let put_new t ~key tuple =
  let k = Dpc_util.Sha1.to_raw key in
  if Hashtbl.mem t.tuples k then false
  else begin
    Hashtbl.add t.tuples k tuple;
    t.bytes <- t.bytes + 20 + Tuple.wire_size tuple;
    true
  end

let put t ~key tuple = ignore (put_new t ~key tuple)

let get t ~key = Hashtbl.find_opt t.tuples (Dpc_util.Sha1.to_raw key)
let bytes t = t.bytes
let count t = Hashtbl.length t.tuples
let iter t f = Hashtbl.iter (fun k tuple -> f ~key:(Dpc_util.Sha1.of_raw k) tuple) t.tuples
