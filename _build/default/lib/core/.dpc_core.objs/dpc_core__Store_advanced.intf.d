lib/core/store_advanced.mli: Dpc_analysis Dpc_engine Dpc_ndlog Dpc_net Dpc_util Query_cost Query_result Rows
