bench/main.mli:
