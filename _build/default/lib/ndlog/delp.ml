type t = {
  program : Ast.program;
  input_event : string;
  output_rel : string;
  event_rels : string list;
  slow_rels : string list;
  arities : (string * int) list;
}

type error =
  | Empty_program
  | Not_chained of { rule : string; head_of_previous : string; event : string }
  | Event_rel_in_conditions of { rule : string; rel : string }
  | Arity_mismatch of { rule : string; rel : string; expected : int; actual : int }
  | Unbound_head_var of { rule : string; var : string }
  | Duplicate_rule_name of string
  | Unbound_assign_var of { rule : string; var : string }

let error_to_string = function
  | Empty_program -> "program has no rules"
  | Not_chained { rule; head_of_previous; event } ->
      Printf.sprintf
        "rule %s: event relation %S does not match the head relation %S of the previous rule"
        rule event head_of_previous
  | Event_rel_in_conditions { rule; rel } ->
      Printf.sprintf
        "rule %s: relation %S is an event relation but appears as a slow-changing condition"
        rule rel
  | Arity_mismatch { rule; rel; expected; actual } ->
      Printf.sprintf "rule %s: relation %S used with arity %d but previously with %d" rule
        rel actual expected
  | Unbound_head_var { rule; var } ->
      Printf.sprintf "rule %s: head variable %S is not bound by the body" rule var
  | Duplicate_rule_name name -> Printf.sprintf "duplicate rule name %S" name
  | Unbound_assign_var { rule; var } ->
      Printf.sprintf "rule %s: assignment uses unbound variable %S" rule var

exception Invalid of error

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let collect_arities (p : Ast.program) =
  let arities : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let note rule (a : Ast.atom) =
    let actual = List.length a.args in
    match Hashtbl.find_opt arities a.rel with
    | None -> Hashtbl.add arities a.rel actual
    | Some expected ->
        if expected <> actual then
          raise (Invalid (Arity_mismatch { rule; rel = a.rel; expected; actual }))
  in
  List.iter
    (fun (r : Ast.rule) ->
      note r.name r.head;
      note r.name r.event;
      List.iter
        (function
          | Ast.C_atom a -> note r.name a
          | Ast.C_cmp _ | Ast.C_assign _ -> ())
        r.conds)
    p.rules;
  Hashtbl.fold (fun rel n acc -> (rel, n) :: acc) arities []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let check_safety (r : Ast.rule) =
  (* Variables bound so far: event args, slow atom args, then assignment
     left-hand sides in order; comparisons and assignment right-hand sides
     must only use bound variables, and so must the head. *)
  let bound = Hashtbl.create 16 in
  let bind v = Hashtbl.replace bound v () in
  List.iter bind (Ast.atom_vars r.event);
  List.iter
    (function
      | Ast.C_atom a -> List.iter bind (Ast.atom_vars a)
      | Ast.C_cmp _ | Ast.C_assign _ -> ())
    r.conds;
  List.iter
    (function
      | Ast.C_atom _ -> ()
      | Ast.C_cmp (_, a, b) ->
          List.iter
            (fun v ->
              if not (Hashtbl.mem bound v) then
                raise (Invalid (Unbound_assign_var { rule = r.name; var = v })))
            (Ast.expr_vars a @ Ast.expr_vars b)
      | Ast.C_assign (x, e) ->
          List.iter
            (fun v ->
              if not (Hashtbl.mem bound v) then
                raise (Invalid (Unbound_assign_var { rule = r.name; var = v })))
            (Ast.expr_vars e);
          bind x)
    r.conds;
  List.iter
    (fun v ->
      if not (Hashtbl.mem bound v) then
        raise (Invalid (Unbound_head_var { rule = r.name; var = v })))
    (Ast.atom_vars r.head)

let validate (p : Ast.program) =
  try
    match p.rules with
    | [] -> Error Empty_program
    | first :: _ ->
        (* Unique rule names. *)
        let names = Hashtbl.create 8 in
        List.iter
          (fun (r : Ast.rule) ->
            if Hashtbl.mem names r.name then raise (Invalid (Duplicate_rule_name r.name));
            Hashtbl.add names r.name ())
          p.rules;
        let arities = collect_arities p in
        (* Chaining of consecutive rules. *)
        let rec check_chain = function
          | (a : Ast.rule) :: (b : Ast.rule) :: rest ->
              if not (String.equal a.head.rel b.event.rel) then
                raise
                  (Invalid
                     (Not_chained
                        {
                          rule = b.name;
                          head_of_previous = a.head.rel;
                          event = b.event.rel;
                        }));
              check_chain (b :: rest)
          | [ _ ] | [] -> ()
        in
        check_chain p.rules;
        let input_event = first.event.rel in
        let heads = List.map (fun (r : Ast.rule) -> r.head.rel) p.rules in
        let event_rels = dedup (input_event :: heads) in
        (* Event relations must not appear as slow-changing conditions. *)
        List.iter
          (fun (r : Ast.rule) ->
            List.iter
              (function
                | Ast.C_atom a ->
                    if List.mem a.rel event_rels then
                      raise (Invalid (Event_rel_in_conditions { rule = r.name; rel = a.rel }))
                | Ast.C_cmp _ | Ast.C_assign _ -> ())
              r.conds)
          p.rules;
        let slow_rels =
          dedup
            (List.concat_map
               (fun (r : Ast.rule) ->
                 List.filter_map
                   (function
                     | Ast.C_atom a -> Some a.rel
                     | Ast.C_cmp _ | Ast.C_assign _ -> None)
                   r.conds)
               p.rules)
        in
        List.iter check_safety p.rules;
        let output_rel = (List.nth p.rules (List.length p.rules - 1)).head.rel in
        Ok { program = p; input_event; output_rel; event_rels; slow_rels; arities }
  with Invalid e -> Error e

let arity t rel = List.assoc rel t.arities
let is_slow t rel = List.mem rel t.slow_rels
let is_event t rel = List.mem rel t.event_rels

let rules_for_event t rel =
  List.filter (fun (r : Ast.rule) -> String.equal r.event.rel rel) t.program.rules

let event_arity t = arity t t.input_event
