exception Corrupt of string

type writer = Buffer.t

let writer () = Buffer.create 256

let write_int buf v =
  for k = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * k)) land 0xFF))
  done

let rec write_varint buf v =
  if v < 0 then invalid_arg "Serialize.write_varint: negative";
  if v < 0x80 then Buffer.add_char buf (Char.chr v)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
    write_varint buf (v lsr 7)
  end

let varint_size v =
  if v < 0 then invalid_arg "Serialize.varint_size: negative";
  let rec go n v = if v < 0x80 then n else go (n + 1) (v lsr 7) in
  go 1 v

let write_int64 buf v =
  for k = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL)))
  done

let write_float buf f = write_int64 buf (Int64.bits_of_float f)
let write_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let write_list buf f xs =
  write_varint buf (List.length xs);
  List.iter f xs

let contents = Buffer.contents
let size = Buffer.length
let reset = Buffer.clear

(* Per-domain scratch writer for one-shot blobs (checkpoints, deltas).
   The buffer is reused across calls, so a hot path that serializes
   thousands of blobs allocates the backing store once per domain instead
   of once per blob — and a blob bigger than any before grows the arena
   for all that follow. Nested calls on the same domain fall back to a
   fresh buffer rather than corrupting the arena. *)
type scratch = { buf : Buffer.t; mutable busy : bool }

let scratch_key = Domain.DLS.new_key (fun () -> { buf = Buffer.create 4096; busy = false })

let with_scratch f =
  let s = Domain.DLS.get scratch_key in
  if s.busy then begin
    let w = Buffer.create 4096 in
    f w;
    Buffer.contents w
  end
  else begin
    s.busy <- true;
    Fun.protect
      ~finally:(fun () ->
        s.busy <- false;
        Buffer.clear s.buf)
      (fun () ->
        Buffer.clear s.buf;
        f s.buf;
        Buffer.contents s.buf)
  end

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let byte r =
  if r.pos >= String.length r.data then raise (Corrupt "unexpected end of input");
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_int r =
  let v = ref 0 in
  for k = 0 to 7 do
    v := !v lor (byte r lsl (8 * k))
  done;
  !v

let read_varint r =
  let rec go shift acc =
    let b = byte r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let read_int64 r =
  let v = ref 0L in
  for k = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte r)) (8 * k))
  done;
  !v

let read_float r = Int64.float_of_bits (read_int64 r)
let read_bool r = byte r <> 0

let read_string r =
  let len = read_varint r in
  if r.pos + len > String.length r.data then raise (Corrupt "string overruns input");
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let read_list r f =
  let n = read_varint r in
  List.init n (fun _ -> f ())

let at_end r = r.pos = String.length r.data
