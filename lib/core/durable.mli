(** Per-node durability: write-ahead journal, checkpoints, and the crash /
    recovery protocol that ties the layers together.

    The failure model is crash-stop with restart: a crashed node loses all
    volatile state — its provenance tables, slow-table database, metrics
    registry, and reliable-channel windows — and the wire to it is cut
    ({!Dpc_net.Transport.crashable}) until it restarts. What survives is
    this module's per-node log: a checkpoint (store tables +
    {!Dpc_engine.Db} snapshot + {!Dpc_net.Reliable} sequence state, cut at
    an operation boundary) plus the write-ahead journal tail
    ({!Dpc_engine.Journal}) of everything non-derivable that happened
    since.

    Recovery restores the checkpoint, replays the journal tail through
    {!Dpc_engine.Runtime.replay} (rebuilding every derived row through the
    same hook pipeline that wrote it originally), and reconnects the wire
    last. No explicit re-announce message exists: restoring the receive
    watermark makes the peers' pending retransmissions the recovery
    handshake — below-watermark copies are acked as duplicates, the first
    unseen one is delivered (see {!Dpc_net.Reliable}). *)

type config = {
  checkpoint_every : int;
      (** boundary journal entries between automatic compactions; [0]
          disables automatic checkpoints (the journal grows until
          {!checkpoint_now}) *)
  rebase_every : int;
      (** cuts per full checkpoint: after a full (base) cut, the next
          [rebase_every - 1] cuts serialize only the changes since the
          previous cut ({!Backend.checkpoint_delta} — O(changes), not
          O(state)), then the cycle rebases to a fresh full checkpoint so
          recovery never chains more than [rebase_every - 1] deltas.
          [0] or [1] makes every cut a full checkpoint. *)
}

val default_config : config
(** Compact every 64 boundary entries; rebase every 8th cut. *)

type t

(** {2 The durable outbox ledger}

    The persist-before-send half of real-process exactly-once: a send's
    [Send] record reaches the ledger file (and the kernel) before the
    frame's first transmission, so a sender crash can delay an outgoing
    message but never lose it — restart re-offers the unacked tail and
    the receiver's dedup window absorbs the overlap. [dpc-outbox-v1] on
    disk: an append-only run of Send / Ack / Mark records; a torn tail
    (the kill landed mid-append) is dropped at load, which is safe
    because an unfinished record's frame was never transmitted. *)
module Outbox : sig
  type t

  val open_ : dir:string -> t
  (** Load (or create) [dir]/outbox.log.
      @raise Dpc_util.Serialize.Corrupt on an unreadable header. *)

  val record_send : t -> dst:int -> seq:int -> string -> unit
  (** Append one send, write-through. Call BEFORE first transmission. *)

  val record_ack : t -> dst:int -> seq:int -> unit
  (** Cumulative: [seq] and below are delivered; their payloads become
      reclaimable by {!compact}. No-op if not an advance. *)

  val pending : t -> (int * int * string) list
  (** Recorded-but-unacked sends as [(dst, seq, payload)], sorted — the
      tail to re-offer ([Dpc_net.Socket.requeue]) after a restart. *)

  val next_seq : t -> dst:int -> int
  (** 1 + the highest sequence ever recorded toward [dst] — the durable
      channel cursor a restarted sender resumes from. *)

  val recorded : t -> dst:int -> int
  val acked : t -> dst:int -> int

  val compact : t -> unit
  (** Atomically rewrite the ledger as per-channel [Mark] summaries plus
      the pending payloads, dropping acked ones. *)

  val size_bytes : t -> int
  val close : t -> unit
end

val attach :
  backend:Backend.t ->
  runtime:Dpc_engine.Runtime.t ->
  control:Dpc_net.Transport.crash_control ->
  ?config:config ->
  ?disk:string ->
  ?disk_nodes:(int -> bool) ->
  unit ->
  t
(** Wire durability into a built world: installs the runtime's journal
    sink ({!Dpc_engine.Runtime.set_journal}), the reliable layer's
    sequence-state persister ({!Dpc_net.Reliable.set_persist}), and the
    injection availability predicate, then seals the pre-attach state
    (e.g. slow tables loaded by the generator) into each node's
    checkpoint 0. Attach before injecting anything; events processed
    before attach are not journaled and cannot be recovered.

    [disk] mirrors each node's log onto a real filesystem under
    [disk/node-<i>/] (restricted to the nodes [disk_nodes] selects,
    default all — a [dpcd] daemon passes its own node only): checkpoint
    cuts as [cut-<id>.bin] files, the journal tail as [wal-<epoch>.log]
    (each {!flush_wal} group written through), an {!Outbox} ledger, and
    a [manifest] whose atomic replacement is a compaction's commit point
    — a kill at any instant leaves the previous generation intact. The
    durability model is process crash (kill -9): writes are pushed to
    the kernel but not fsynced. If a node's directory already holds a
    manifest, its log is loaded instead of sealed fresh ({!recovered}
    turns true) and the caller must {!recover} it before traffic.
    @raise Dpc_util.Serialize.Corrupt on an undecodable manifest or cut
    (a torn WAL {e tail} is tolerated and trimmed). *)

val recovered : t -> int -> bool
(** Whether attach found existing on-disk state for the node. *)

val recover : t -> int -> unit
(** Rebuild the node's volatile state from the loaded log: restore the
    newest cut chain, then replay the wal tail through
    {!Dpc_engine.Runtime.replay}. The real-process counterpart of
    {!restart} — the process died instead of the simulated node, so
    there is no wire to reconnect; the caller restores channel state and
    re-offers the outbox tail itself. Adds to [crash.recovery_ms]. *)

val set_channel_state :
  t -> snapshot:(int -> string option) -> restore:(int -> string -> unit) -> unit
(** Where checkpoints get their channel-sequence blob when the reliable
    layer lives below the transport (a socket backend): [snapshot] is
    called at each cut, [restore] with the newest cut's blob during
    {!recover}/{!restart}. Unused (the in-process {!Dpc_net.Reliable}
    wins) when the runtime was built with [?reliable]. *)

val journal : t -> int -> Dpc_engine.Journal.entry -> unit
(** Append one entry to the node's journal directly — for entries the
    runtime cannot see, e.g. a socket transport's receive-watermark
    advances. Suppressed (like every append) while the node recovers. *)

val flush_wal : t -> int -> unit
(** Close the open group-commit buffer and push it to the wal — and, in
    disk mode, through to the kernel. A real-process host calls this
    before acknowledging deliveries and before recording an outgoing
    send, so no peer ever holds a promise the journal does not. *)

val outbox : t -> int -> Outbox.t option
(** The node's outbox ledger ([None] unless attached with [?disk]). *)

val crash : t -> int -> unit
(** Take the node down NOW: cut its wire, wipe its volatile state
    ({!Dpc_engine.Node.reset}), and drop its channel windows
    ({!Dpc_net.Reliable.forget}). Idempotent while down. The durable
    [crash.*] counters survive and are re-materialized into the wiped
    metrics registry. *)

val restart : t -> int -> unit
(** Bring the node back: restore its checkpoint, replay its journal tail
    ({!Dpc_engine.Runtime.replay}), then reconnect the wire — in that
    order, so no delivery races the rebuild. The journal is retained (not
    truncated), so a second crash before the next compaction recovers
    again from the same checkpoint. Idempotent while up. Wall-clock
    recovery time is added to the [crash.recovery_ms] counter (the one
    non-deterministic metric — CI strips it before diffing runs). *)

val schedule_crash : t -> node:int -> at:float -> downtime:float -> unit
(** Schedule {!crash} at simulated time [at] and {!restart} at
    [at +. downtime] on the runtime's transport clock.
    @raise Invalid_argument if [downtime <= 0]. *)

val random_schedule :
  seed:int ->
  nodes:int ->
  count:int ->
  horizon:float ->
  min_down:float ->
  max_down:float ->
  (int * float * float) list
(** A seeded crash schedule [(node, at, downtime)]: [count] candidates
    drawn uniformly over [nodes] and [[0, horizon)] with downtimes in
    [[min_down, max_down)], minus candidates that would overlap an earlier
    outage of the same node (see {!prune_overlaps}). Sorted by crash
    time; deterministic for a given seed. *)

val prune_overlaps :
  nodes:int -> (int * float * float) list -> (int * float * float) list
(** Sort [(node, at, downtime)] entries by crash time and drop any whose
    crash lands during — or at the exact restart instant of — a kept
    outage of the same node: a crash scheduled AT the restart time would
    tie with the restart in the event queue, making the outcome an
    ordering accident rather than part of the schedule.
    @raise Invalid_argument on [nodes <= 0] or an out-of-range node. *)

val schedule : t -> (int * float * float) list -> unit
(** {!schedule_crash} for every entry of a {!random_schedule}-shaped
    list. *)

val is_up : t -> int -> bool
(** The liveness predicate; pass as [?up] to {!Backend.query} so queries
    degrade instead of hanging on a down node. *)

val checkpoint_now : t -> int -> unit
(** Force a compaction of the node's log. Call only between top-level
    operations (e.g. from a [Transport.schedule] callback or while the
    transport is idle) — a checkpoint cut mid-delivery would tear the
    state. @raise Invalid_argument if the node is down. *)

type node_stats = {
  crashes : int;  (** times this node went down *)
  wal_bytes : int;  (** cumulative journal bytes ever appended *)
  wal_entries : int;  (** entries currently in the tail (since last compaction) *)
  checkpoints : int;  (** compactions, including checkpoint 0 at attach *)
  checkpoint_bytes : int;
      (** cumulative serialized bytes across all cuts (full and delta) —
          the number delta checkpoints shrink *)
  delta_cuts : int;  (** how many of [checkpoints] were delta cuts *)
  delta_bytes : int;
      (** the delta cuts' share of [checkpoint_bytes]; the remainder is
          full rebases (and checkpoint 0) *)
  recovery_ms : int;
      (** total wall-clock time spent in {!restart}, accumulated as a
          float and rounded up once here — never summed per-recovery *)
  queries_degraded : int;
      (** queries from this node that touched a down peer (durably
          counted here via {!Backend.set_degraded_sink}, so the tally
          survives a crash of the querier) *)
}

val node_stats : t -> int -> node_stats
(** The durable counters; all but [wal_entries] also appear as [crash.*]
    metrics in the node's registry. *)
