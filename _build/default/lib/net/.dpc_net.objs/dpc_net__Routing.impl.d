lib/net/routing.ml: Array Dpc_util List Topology
