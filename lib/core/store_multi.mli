(** Cross-program provenance compression — the paper's future work (§8).

    "In most network deployments, there may be multiple programs (or
    network protocols) running concurrently. As future work, we plan to
    explore the possibility of compressing provenance trees across programs
    that share execution rules."

    This store hosts several DELPs at once. It uses the §5.4 node/link
    layout with one twist: [ruleExecNode] rows are keyed by the *content
    signature* of the rule (its head and body, not its name or owning
    program) plus the executing node and the slow-changing tuples joined —
    so when two programs contain a syntactically identical rule (say, the
    forwarding rule of Fig 1 reused by a mirroring protocol) and it fires
    against the same slow state, they share one concrete row. Everything
    per-tree or per-program (links, prov deltas, equivalence tables, event
    materialization) stays private to its program, so queries and the §5.5
    reset behave exactly as in the single-program Advanced scheme. *)

type t

val create : nodes:int -> t
(** Builds a fresh [nodes]-node cluster shared by every registered
    program. *)

val nodes : t -> Dpc_engine.Node.t array
(** The shared cluster; pass to [Runtime.create ~nodes] for each
    program's runtime so they all share it. *)

type handle
(** One registered program's view of the shared store. *)

val add_program :
  t ->
  id:string ->
  delp:Dpc_ndlog.Delp.t ->
  env:Dpc_engine.Env.t ->
  handle
(** Registers a program (running its static analysis); [id] must be unique.
    @raise Invalid_argument on a duplicate id. *)

val hook : handle -> Dpc_engine.Prov_hook.t

val query :
  handle ->
  cost:Query_cost.t ->
  routing:Dpc_net.Routing.t ->
  ?evid:Dpc_util.Sha1.t ->
  Dpc_ndlog.Tuple.t ->
  Query_result.t

val shared_storage : t -> Rows.storage
(** The shared [ruleExecNode] table (and the shared slow-tuple
    materialization, under [event_bytes]). *)

val program_storage : handle -> Rows.storage
(** The program-private tables: prov deltas, link rows, equivalence
    tables, events. *)

val total_storage : t -> Rows.storage

val rule_signature : Dpc_ndlog.Ast.rule -> string
(** The sharing key: the rule's content with its name erased and its
    variables alpha-normalized (renamed by order of first occurrence), so
    rules that differ only in naming share rows. *)
