(* DNS resolution with compressed provenance (paper §6.2, Fig 19).

   Generates a synthetic name-server hierarchy, sends a Zipf-distributed
   stream of DNS requests under each provenance scheme, compares storage,
   and walks the provenance of one reply back to the requesting host.

     dune exec examples/dns_resolution.exe *)

open Dpc_core
open Dpc_workload

let () =
  print_endline "The DNS resolution DELP (paper Fig 19):";
  print_endline (Dpc_ndlog.Pretty.program_to_string (Dpc_apps.Dns.delp ()).program);
  let keys = Dpc_analysis.Equi_keys.compute (Dpc_apps.Dns.delp ()) in
  Format.printf "\nStatic analysis: %a@," Dpc_analysis.Equi_keys.pp keys;
  print_endline "(every (host, URL) pair is an equivalence class)\n";

  let rng = Dpc_util.Rng.create ~seed:2024 in
  let spec = Dns_workload.generate ~rng ~servers:50 ~backbone_depth:12 ~urls:15 ~clients:5 in
  Printf.printf "Hierarchy: 50 name servers, max depth %d, 15 URLs, 5 clients\n"
    (Dpc_net.Tree_topo.max_depth spec.tree);

  let requests = 400 in
  let run scheme =
    let rng = Dpc_util.Rng.create ~seed:7 in
    let t = Dns_workload.setup ~scheme spec () in
    ignore (Dns_workload.inject_n_requests t ~rng ~total:requests ~duration:4.0);
    Dns_workload.run t;
    (t, Backend.total_storage t.backend)
  in
  let results = List.map (fun s -> (s, run s)) [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced ] in
  Printf.printf "\nStorage after %d requests:\n" requests;
  Dpc_util.Table_fmt.print
    ~header:[ "scheme"; "prov+ruleExec"; "prov rows"; "ruleExec rows" ]
    ~rows:
      (List.map
         (fun (s, (_, st)) ->
           [
             Backend.scheme_name s;
             Dpc_util.Table_fmt.human_bytes (Rows.provenance_bytes st);
             string_of_int st.Rows.prov_rows;
             string_of_int st.Rows.rule_exec_rows;
           ])
         results);

  (* Query the provenance of the last reply under the Advanced scheme. *)
  let _, (t, _) = List.nth results 2 in
  match List.rev (Dns_workload.replies t) with
  | [] -> failwith "no replies"
  | reply :: _ ->
      let result = Backend.query t.backend ~cost:Query_cost.emulation ~routing:t.routing reply in
      Format.printf "\nProvenance of %a@.(query latency %.1f ms, %d rows fetched):@."
        Dpc_ndlog.Tuple.pp reply (result.latency *. 1000.0) result.entries;
      List.iter (fun tree -> Format.printf "%a@." Prov_tree.pp tree) result.trees
