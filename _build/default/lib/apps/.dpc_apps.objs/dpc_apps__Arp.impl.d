lib/apps/arp.ml: Delp Dpc_engine Dpc_ndlog Parser Tuple Value
