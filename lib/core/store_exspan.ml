open Dpc_ndlog
open Dpc_util
module Node = Dpc_engine.Node

(* Rows and side entries first written since the node's last checkpoint
   cut, for O(changes) delta checkpoints. Only ever appended to when the
   store's [track_dirty] is on (the durable layer flips it at attach);
   each checkpoint/delta/restore operation clears it. Tables never delete,
   so "dirty" is exactly "newly inserted". *)
type dirty = {
  mutable d_prov : Rows.prov_row list;
  mutable d_exec : Rows.rule_exec_row list;
  mutable d_side : (Sha1.t * Tuple.t) list;
}

type node_state = {
  prov : Rows.prov_row Rows.Table.t;  (* keyed by vid hex *)
  rule_exec : Rows.rule_exec_row Rows.Table.t;  (* keyed by rid hex *)
  tuples : Side_store.t;  (* vid -> materialized tuple *)
  dirty : dirty;
  (* Write generation for the query cache's staleness check: bumped on
     every accepted insert (see [Store_basic.node_state]). *)
  mutable gen : int;
}

type t = {
  delp : Delp.t;
  env : Dpc_engine.Env.t;
  nodes : Node.t array;
  key : node_state Node.key;
  mutable track_dirty : bool;
  mutable degraded_sink : (int -> unit) option;
  mutable cache : Query_cache.t option;
  mutable reset_hooked : bool;
}

let fresh_state () =
  {
    prov = Rows.Table.create ~row_bytes:(Rows.prov_row_bytes ~with_evid:false) ();
    rule_exec = Rows.Table.create ~row_bytes:(Rows.rule_exec_row_bytes ~with_next:false) ();
    tuples = Side_store.create ();
    dirty = { d_prov = []; d_exec = []; d_side = [] };
    gen = 0;
  }

let create ~delp ~env ~nodes =
  { delp; env; nodes = Node.cluster nodes; key = Node.key ~name:"store.exspan" ();
    track_dirty = false; degraded_sink = None; cache = None; reset_hooked = false }

let set_track_dirty t on = t.track_dirty <- on

(* Degraded-query accounting. By default the tick lands in the querier's
   volatile registry and dies with it on a crash; a durable layer
   re-routes it through [set_degraded_sink] (see [Backend] / [Durable])
   so the count survives. *)
let set_degraded_sink t f = t.degraded_sink <- Some f

let degraded_for t querier () =
  match t.degraded_sink with
  | Some f -> f querier
  | None -> Dpc_util.Metrics.incr (Node.metrics t.nodes.(querier)) "crash.queries_degraded"

let nodes t = t.nodes
let state t node = Node.get_or_init t.nodes.(node) t.key ~init:fresh_state

(* Query-cache plumbing — see [Store_basic] for the contract. *)
let invalidate_cache t node =
  match t.cache with None -> () | Some cache -> Query_cache.invalidate_node cache node

let set_query_cache t cache =
  t.cache <- cache;
  if cache <> None && not t.reset_hooked then begin
    t.reset_hooked <- true;
    Array.iteri
      (fun node n -> Node.on_reset n (fun () -> invalidate_cache t node))
      t.nodes
  end

let query_cache t = t.cache

let add_prov t ~node (row : Rows.prov_row) =
  let st = state t node in
  if Rows.Table.add st.prov ~key:(Rows.key row.vid) row then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_prov <- row :: st.dirty.d_prov;
    Metrics.incr (Node.metrics t.nodes.(node)) "store.prov_rows"
  end

let add_rule_exec t ~node (row : Rows.rule_exec_row) =
  let st = state t node in
  if Rows.Table.add st.rule_exec ~key:(Rows.key row.rid) row then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_exec <- row :: st.dirty.d_exec;
    Metrics.incr (Node.metrics t.nodes.(node)) "store.rule_exec_rows"
  end

let side_put t ~node ~key tuple =
  let st = state t node in
  if Side_store.put_new st.tuples ~key tuple then begin
    st.gen <- st.gen + 1;
    if t.track_dirty then st.dirty.d_side <- (key, tuple) :: st.dirty.d_side
  end

(* One streamed SHA-1 over "+"-separated parts, vids as their raw 20
   bytes: same injectivity as the old hex-rendered digest_concat (parts
   after the variable-length rule name and node are fixed-width), no hex
   strings and no intermediate list on the per-firing hot path. *)
let rid_of ~rule_name ~node ~vids =
  Sha1.digest_iter (fun f ->
    f rule_name;
    f "+";
    f (string_of_int node);
    List.iter
      (fun vid ->
        f "+";
        f (Sha1.to_raw vid))
      vids)

(* The prov row of a derived tuple is written by the RECEIVER, from the
   (RLoc, RID) reference the tuple ships with — not by the sender reaching
   across into the receiver's tables. Same rows as the sender-writes
   formulation (§4 stores them at the derived tuple's location either
   way), but every write now happens at the node processing the arrival,
   which is what makes a node's store a function of its own journal. The
   one observable difference: an event no rule fires on (a dead end) no
   longer gets a row — it contributes to no output's provenance. *)
let record_arrival t ~node event (meta : Dpc_engine.Prov_hook.meta) =
  match meta.prev with
  | None -> ()
  | Some rref ->
      add_prov t ~node { Rows.loc = node; vid = Rows.vid_of event; rid = Some rref; evid = None };
      side_put t ~node ~key:(Rows.vid_of event) event

let on_fire t ~node ~(rule : Ast.rule) ~event ~slow (meta : Dpc_engine.Prov_hook.meta) =
  record_arrival t ~node event meta;
  let event_vid = Rows.vid_of event in
  let slow_vids = List.map Rows.vid_of slow in
  let vids = slow_vids @ [ event_vid ] in
  let rid = rid_of ~rule_name:rule.name ~node ~vids in
  add_rule_exec t ~node { Rows.rloc = node; rid; rule = rule.name; vids; next = None };
  (* Base rows for the slow tuples (their location is the executing node). *)
  List.iter2
    (fun tuple vid ->
      add_prov t ~node { Rows.loc = node; vid; rid = None; evid = None };
      side_put t ~node ~key:vid tuple)
    slow slow_vids;
  (* The input event is a base tuple; intermediate events get their prov
     row from [record_arrival]. *)
  if meta.prev = None then begin
    add_prov t ~node { Rows.loc = node; vid = event_vid; rid = None; evid = None };
    side_put t ~node ~key:event_vid event
  end;
  { meta with prev = Some (node, rid) }

let hook t =
  {
    Dpc_engine.Prov_hook.name = "exspan";
    on_input =
      (fun ~node event ->
        let meta = Dpc_engine.Prov_hook.initial_meta event in
        side_put t ~node ~key:(Rows.vid_of event) event;
        meta);
    on_fire = (fun ~node ~rule ~event ~slow ~head:_ meta -> on_fire t ~node ~rule ~event ~slow meta);
    on_output = (fun ~node event meta -> record_arrival t ~node event meta);
    (* §5.5 sig delivery: the slow world changed; drop this node's
       memoized reconstructions. *)
    on_slow_update = (fun ~node ~op:_ _ -> invalidate_cache t node);
    (* ExSPAN ships the (RID, RLoc) reference so the receiver can store the
       prov row of the derived tuple. *)
    meta_bytes = (fun _ -> Rows.ref_bytes);
  }

let node_storage t node =
  let st = state t node in
  {
    Rows.empty_storage with
    Rows.prov_bytes = Rows.Table.bytes st.prov;
    rule_exec_bytes = Rows.Table.bytes st.rule_exec;
    event_bytes = Side_store.bytes st.tuples;
    prov_rows = Rows.Table.rows st.prov;
    rule_exec_rows = Rows.Table.rows st.rule_exec;
  }

let total_storage t =
  Array.to_list (Array.mapi (fun i _ -> node_storage t i) t.nodes)
  |> List.fold_left Rows.add_storage Rows.empty_storage

exception Broken of string

(* Mutable accounting threaded through a query. [up] is the liveness
   predicate: touching a down node charges the full bounded retry budget
   ((down_retries + 1) tries of down_timeout each), marks the result
   partial, and abandons the branch — the query never hangs on a dead
   node, it degrades. *)
type acct = {
  cost : Query_cost.t;
  routing : Dpc_net.Routing.t;
  up : int -> bool;
  querier : int;
  degraded : unit -> unit;
  mutable latency : float;
  mutable entries : int;
  mutable bytes : int;
  mutable rederives : int;
  mutable hop_s : float;
  mutable downs : int;
  mutable complete : bool;
  mutable touched : int list;  (* nodes read, for the cache dep snapshot *)
}

let fresh_acct ~cost ~routing ~up ~querier ~degraded =
  { cost; routing; up; querier; degraded; latency = 0.0; entries = 0; bytes = 0;
    rederives = 0; hop_s = 0.0; downs = 0; complete = true; touched = [] }

let charge_entries acct n =
  acct.entries <- acct.entries + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_entry)

let charge_bytes acct n =
  acct.bytes <- acct.bytes + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_byte)

let charge_hop acct ~src ~dst =
  let h = Query_cost.hop acct.cost acct.routing ~src ~dst in
  acct.hop_s <- acct.hop_s +. h;
  acct.latency <- acct.latency +. h

let touch acct node =
  if not (List.mem node acct.touched) then acct.touched <- node :: acct.touched

(* Call before reading any state at [node]. *)
let require_up acct node =
  touch acct node;
  if not (acct.up node) then begin
    acct.downs <- acct.downs + 1;
    acct.latency <-
      acct.latency
      +. (float_of_int (acct.cost.Query_cost.down_retries + 1)
          *. acct.cost.Query_cost.down_timeout);
    if acct.complete then begin
      acct.complete <- false;
      acct.degraded ()
    end;
    raise (Broken (Printf.sprintf "node %d is down" node))
  end

(* Memoize one root reference's reconstruction — see [Store_basic.with_cache]. *)
let with_cache t acct ~rref:(rloc, rid) ~ctx compute =
  match t.cache with
  | None -> compute ()
  | Some cache -> (
      let key = Query_cache.key ~loc:rloc ~rid ~ctx in
      let gen node = (state t node).gen in
      match Query_cache.find cache ~querier:acct.querier ~up:acct.up ~gen key with
      | Some trees ->
          charge_entries acct 1;
          trees
      | None ->
          let outer = acct.touched and downs0 = acct.downs in
          acct.touched <- [];
          let trees = compute () in
          if acct.downs = downs0 then
            Query_cache.add cache ~querier:acct.querier
              ~deps:(List.map (fun n -> (n, gen n)) acct.touched)
              key trees;
          acct.touched <- List.rev_append outer acct.touched;
          trees)

let resolve_tuple t ~node vid =
  match Side_store.get (state t node).tuples ~key:vid with
  | Some tuple -> tuple
  | None -> raise (Broken (Printf.sprintf "tuple %s not materialized at node %d" (Rows.hex vid) node))

let find_rule t name =
  match List.find_opt (fun (r : Ast.rule) -> String.equal r.name name) t.delp.program.rules with
  | Some r -> r
  | None -> raise (Broken (Printf.sprintf "unknown rule %s" name))

let max_derivations = 64

(* Reconstruct every derivation rooted at rule execution (rloc, rid), which
   derived [output]. An intermediate event tuple can itself have several
   derivations (several prov rows with distinct rule references — e.g. two
   equal-cost routes producing the identical tuple), so the result is a
   list, capped at [max_derivations]. [at] is the node the query currently
   sits on. *)
let rec fetch_trees t acct ~at ~output (rloc, rid) =
  charge_hop acct ~src:at ~dst:rloc;
  require_up acct rloc;
  let exec =
    match Rows.Table.find (state t rloc).rule_exec (Rows.key rid) with
    | [ row ] -> row
    | [] -> raise (Broken (Printf.sprintf "missing ruleExec %s at node %d" (Rows.hex rid) rloc))
    | _ :: _ :: _ -> raise (Broken "duplicate ruleExec rid")
  in
  charge_entries acct 1;
  charge_bytes acct (Rows.rule_exec_row_bytes ~with_next:false exec);
  ignore (find_rule t exec.rule);
  (* vids = slow tuples followed by the event. *)
  let slow_vids, event_vid =
    match List.rev exec.vids with
    | ev :: rest -> (List.rev rest, ev)
    | [] -> raise (Broken "ruleExec with no body vids")
  in
  let resolve_body vid =
    (* Each body tuple's prov row lives at the executing node. *)
    let rows = Rows.Table.find (state t rloc).prov (Rows.key vid) in
    charge_entries acct (max 1 (List.length rows));
    let tuple = resolve_tuple t ~node:rloc vid in
    charge_bytes acct (Tuple.wire_size tuple);
    (rows, tuple)
  in
  let slow = List.map (fun vid -> snd (resolve_body vid)) slow_vids in
  let event_rows, event_tuple = resolve_body event_vid in
  let derived_refs = List.filter_map (fun (r : Rows.prov_row) -> r.rid) event_rows in
  let triggers =
    if derived_refs = [] then [ Prov_tree.Event event_tuple ]
    else
      List.concat_map
        (fun rref ->
          List.map
            (fun sub -> Prov_tree.Derived sub)
            (fetch_trees t acct ~at:rloc ~output:event_tuple rref))
        derived_refs
  in
  List.filteri (fun i _ -> i < max_derivations) triggers
  |> List.map (fun trigger -> { Prov_tree.rule = exec.rule; output; trigger; slow })

let query t ~cost ~routing ?evid ?(up = fun _ -> true) output =
  let querier = Tuple.loc output in
  let acct = fresh_acct ~cost ~routing ~up ~querier ~degraded:(degraded_for t querier) in
  let trees =
    match require_up acct querier with
    | exception Broken _ -> []
    | () ->
        let htp = Rows.vid_of output in
        let ctx = Sha1.to_raw htp in
        let rows = Rows.Table.find (state t querier).prov (Rows.key htp) in
        charge_entries acct (max 1 (List.length rows));
        List.concat_map
          (fun (r : Rows.prov_row) ->
            match r.rid with
            | None -> []
            | Some rref ->
                with_cache t acct ~rref ~ctx (fun () ->
                    match fetch_trees t acct ~at:querier ~output rref with
                    | trees -> trees
                    | exception Broken _ -> []))
          rows
  in
  let trees =
    match evid with
    | None -> trees
    | Some e -> List.filter (fun tr -> Sha1.equal (Prov_tree.event_id tr) e) trees
  in
  (* Return trip: ship the collected data back to the querier. *)
  (match trees with
  | [] -> ()
  | tr :: _ ->
      let leaf_event = Prov_tree.event_of tr in
      charge_hop acct ~src:(Tuple.loc leaf_event) ~dst:querier);
  { Query_result.trees = Query_result.dedup_trees trees; latency = acct.latency;
    entries = acct.entries; bytes = acct.bytes; rederives = acct.rederives;
    hop_s = acct.hop_s; downs = acct.downs; complete = acct.complete }

let dump t =
  let n = Array.length t.nodes in
  let prov_rows node =
    let acc = ref [] in
    Rows.Table.iter (state t node).prov (fun _ r -> acc := r :: !acc);
    !acc
  in
  let exec_rows node =
    let acc = ref [] in
    Rows.Table.iter (state t node).rule_exec (fun _ r -> acc := r :: !acc);
    !acc
  in
  let ph, pr = Rows.dump_prov ~with_evid:false prov_rows n in
  let rh, rr = Rows.dump_rule_exec ~with_next:false exec_rows n in
  [ ("prov", ph, pr); ("ruleExec", rh, rr) ]

(* Canonical (sorted) order so checkpoints are byte-stable. *)
let table_rows table =
  let acc = ref [] in
  Rows.Table.iter table (fun _ r -> acc := r :: !acc);
  List.sort compare !acc

(* Side entries across all nodes as (node, key, tuple), in canonical
   order — the same wire shape as when the side store spanned the whole
   cluster, so checkpoints stay byte-identical. *)
let side_entries t =
  let acc = ref [] in
  Array.iteri
    (fun node _ ->
      Side_store.iter (state t node).tuples (fun ~key tuple -> acc := (node, key, tuple) :: !acc))
    t.nodes;
  List.sort (fun (n1, k1, _) (n2, k2, _) -> compare (n1, Sha1.to_raw k1) (n2, Sha1.to_raw k2)) !acc

let write_side w entries =
  let open Dpc_util.Serialize in
  write_list w
    (fun (node, key, tuple) ->
      write_varint w node;
      write_string w (Sha1.to_raw key);
      Tuple.serialize w tuple)
    entries

let read_side r put =
  let open Dpc_util.Serialize in
  List.iter
    (fun () -> ())
    (read_list r (fun () ->
       let node = read_varint r in
       let key = Sha1.of_raw (read_string r) in
       let tuple = Tuple.deserialize r in
       put ~node ~key tuple))

let checkpoint t =
  let open Dpc_util.Serialize in
  let w = writer () in
  write_string w "dpc-exspan-v1";
  write_varint w (Array.length t.nodes);
  Array.iteri
    (fun node _ ->
      let st = state t node in
      write_list w (Rows.write_prov_row w) (table_rows st.prov);
      write_list w (Rows.write_rule_exec_row w) (table_rows st.rule_exec))
    t.nodes;
  write_side w (side_entries t);
  contents w

let restore ~delp ~env blob =
  let open Dpc_util.Serialize in
  let r = reader blob in
  if not (String.equal (read_string r) "dpc-exspan-v1") then
    raise (Corrupt "not an ExSPAN checkpoint");
  let nodes = read_varint r in
  let t = create ~delp ~env ~nodes in
  for node = 0 to nodes - 1 do
    List.iter (fun (row : Rows.prov_row) -> add_prov t ~node:row.loc row)
      (read_list r (fun () -> Rows.read_prov_row r));
    List.iter (fun (row : Rows.rule_exec_row) -> add_rule_exec t ~node:row.rloc row)
      (read_list r (fun () -> Rows.read_rule_exec_row r));
    ignore node
  done;
  read_side r (fun ~node ~key tuple -> Side_store.put (state t node).tuples ~key tuple);
  t

(* Per-node checkpoint: one node's three tables, nothing else. Receiver-
   side writes guarantee this really is the whole of what the node owns —
   no other node ever wrote into it. Restoring goes through the add_*
   paths so the store.* counters (wiped with the node) are rebuilt. *)

let node_magic = "dpc-exspan-node-v1"
let delta_magic = "dpc-exspan-delta-v1"

let clear_dirty (st : node_state) =
  st.dirty.d_prov <- [];
  st.dirty.d_exec <- [];
  st.dirty.d_side <- []

let write_node_side w entries =
  let open Dpc_util.Serialize in
  write_list w
    (fun (key, tuple) ->
      write_string w (Sha1.to_raw key);
      Tuple.serialize w tuple)
    (List.sort (fun (k1, _) (k2, _) -> compare (Sha1.to_raw k1) (Sha1.to_raw k2)) entries)

let read_node_side r put =
  let open Dpc_util.Serialize in
  List.iter
    (fun () -> ())
    (read_list r (fun () ->
       let key = Sha1.of_raw (read_string r) in
       let tuple = Tuple.deserialize r in
       put ~key tuple))

(* The canonical node blob: byte-stable for a given table state however
   it was reached. [checkpoint_node] seals dirty tracking around it;
   [digest_node] deliberately does not. *)
let node_blob t node =
  let open Dpc_util.Serialize in
  let st = state t node in
  with_scratch (fun w ->
      write_string w node_magic;
      write_list w (Rows.write_prov_row w) (table_rows st.prov);
      write_list w (Rows.write_rule_exec_row w) (table_rows st.rule_exec);
      let side = ref [] in
      Side_store.iter st.tuples (fun ~key tuple -> side := (key, tuple) :: !side);
      write_node_side w !side)

let checkpoint_node t node =
  let blob = node_blob t node in
  clear_dirty (state t node);
  blob

let digest_node t node = Sha1.to_hex (Sha1.digest_string (node_blob t node))

(* A delta covers exactly the rows/side entries first inserted since the
   last cut (tables never delete, so that is the whole state change).
   Same row/side encodings as [checkpoint_node], canonically sorted so
   deltas are byte-stable for a given dirty set. *)
let checkpoint_delta t node =
  let open Dpc_util.Serialize in
  let st = state t node in
  let blob =
    with_scratch (fun w ->
        write_string w delta_magic;
        write_list w (Rows.write_prov_row w) (List.sort compare st.dirty.d_prov);
        write_list w (Rows.write_rule_exec_row w) (List.sort compare st.dirty.d_exec);
        write_node_side w st.dirty.d_side)
  in
  clear_dirty st;
  blob

let apply_delta t node blob =
  let open Dpc_util.Serialize in
  let r = reader blob in
  if not (String.equal (read_string r) delta_magic) then
    raise (Corrupt "not an ExSPAN node delta");
  List.iter
    (fun (row : Rows.prov_row) -> add_prov t ~node row)
    (read_list r (fun () -> Rows.read_prov_row r));
  List.iter
    (fun (row : Rows.rule_exec_row) -> add_rule_exec t ~node row)
    (read_list r (fun () -> Rows.read_rule_exec_row r));
  let st = state t node in
  read_node_side r (fun ~key tuple -> Side_store.put st.tuples ~key tuple);
  if not (at_end r) then raise (Corrupt "trailing bytes in ExSPAN node delta");
  clear_dirty st

let restore_node t node blob =
  let open Dpc_util.Serialize in
  let r = reader blob in
  if not (String.equal (read_string r) node_magic) then
    raise (Corrupt "not an ExSPAN node checkpoint");
  List.iter
    (fun (row : Rows.prov_row) -> add_prov t ~node row)
    (read_list r (fun () -> Rows.read_prov_row r));
  List.iter
    (fun (row : Rows.rule_exec_row) -> add_rule_exec t ~node row)
    (read_list r (fun () -> Rows.read_rule_exec_row r));
  let st = state t node in
  read_node_side r (fun ~key tuple -> Side_store.put st.tuples ~key tuple);
  clear_dirty st
