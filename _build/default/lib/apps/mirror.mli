(** A traffic-mirroring protocol that shares Fig 1's forwarding rule.

    Its first rule is textually identical to the forwarding program's
    [r1] (same relations, same variables, same route table); only the final
    rule differs (it logs instead of delivering). Running it concurrently
    with {!Forwarding} is the cross-program compression workload of the
    paper's future work (§8): the shared forwarding executions can be
    stored once in {!Dpc_core.Store_multi}. *)

val source : string
val delp : unit -> Dpc_ndlog.Delp.t
val env : Dpc_engine.Env.t

val mirror_log : at:int -> src:int -> dst:int -> payload:string -> Dpc_ndlog.Tuple.t
(** The output tuple [mirrorLog(@at, src, dst, payload)]. *)
