lib/ndlog/pretty.ml: Ast Format List Value
