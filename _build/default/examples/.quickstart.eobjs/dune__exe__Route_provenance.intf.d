examples/route_provenance.mli:
