(* dpcd: the real-process node daemon and its cluster launcher.

   `dpcd serve` hosts ONE scenario node in this process — socket
   transport, WAL + checkpoints + outbox on disk under --dir — and pumps
   its event loop until a Shutdown control frame.

   `dpcd cluster` is the transparency oracle: it spawns three `dpcd
   serve` children per scheme, drives the Scenario phases over the
   control plane (including a mid-run `kill -9` of node 1 and a recovery
   from its data directory), and checks every node's digests against the
   in-process simulator. Exit status 0 iff every scheme matched. *)

open Cmdliner

let scheme_conv =
  let parse s =
    match Dpc_proc.Cluster.scheme_of_arg s with
    | Some scheme -> Ok scheme
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Dpc_proc.Cluster.scheme_arg s) in
  Arg.conv (parse, print)

let scheme_doc = "Maintenance scheme: exspan, basic, advanced, or advanced-interclass."

(* The process-level chaos widths mirror the in-process sweep
   (test_chaos): wide enough to force drops, duplicates, and delays on
   the real wire, narrow enough that the scenario still quiesces. *)
let chaos_widths = Dpc_net.Transport.fault_config ~drop:0.12 ~duplicate:0.06 ~delay:0.25 ~delay_max:0.02 ()

(* ---- serve ----------------------------------------------------------- *)

let serve scheme nodes local dir drop dup delay delay_max chaos_seed =
  if local < 0 || local >= nodes then
    `Error (false, Printf.sprintf "--local %d out of range for %d nodes" local nodes)
  else begin
    match
      if drop = 0.0 && dup = 0.0 && delay = 0.0 then None
      else Some (Dpc_net.Transport.fault_config ~drop ~duplicate:dup ~delay ~delay_max (), chaos_seed)
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | chaos ->
        let daemon =
          Dpc_proc.Daemon.create ~scheme ~nodes ~local
            ~addr_of:(Dpc_proc.Cluster.addr_of ~dir)
            ~dir ?chaos ()
        in
        Dpc_proc.Daemon.serve daemon;
        `Ok ()
  end

let serve_cmd =
  let scheme =
    Arg.(required & opt (some scheme_conv) None & info [ "scheme" ] ~docv:"SCHEME" ~doc:scheme_doc)
  in
  let nodes =
    Arg.(value & opt int Dpc_proc.Scenario.nodes & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let local =
    Arg.(required & opt (some int) None & info [ "local" ] ~docv:"I" ~doc:"The node this process hosts.")
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Data directory: listen sockets, and this node's WAL/checkpoints/outbox under \
                $(i,DIR)/node-$(i,I)/.")
  in
  let drop =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"P" ~doc:"Chaos: drop rate for outgoing data frames.")
  in
  let dup =
    Arg.(value & opt float 0.0 & info [ "dup" ] ~docv:"P" ~doc:"Chaos: duplication rate.")
  in
  let delay =
    Arg.(value & opt float 0.0 & info [ "delay" ] ~docv:"P" ~doc:"Chaos: delay rate.")
  in
  let delay_max =
    Arg.(value & opt float 0.0 & info [ "delay-max" ] ~docv:"S" ~doc:"Chaos: max extra delay in seconds.")
  in
  let chaos_seed =
    Arg.(value & opt int 1 & info [ "chaos-seed" ] ~docv:"SEED" ~doc:"Chaos: hash seed.")
  in
  let doc = "host one cluster node in this process" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret (const serve $ scheme $ nodes $ local $ dir $ drop $ dup $ delay $ delay_max $ chaos_seed))

(* ---- cluster --------------------------------------------------------- *)

let cluster schemes dir chaos soak rounds per_round =
  let schemes =
    match schemes with [] -> Dpc_core.Backend.all_schemes | chosen -> chosen
  in
  let dir =
    match dir with
    | Some d -> d
    | None -> Filename.temp_dir "dpc-procs-" ""
  in
  let chaos = if chaos then Some (chaos_widths, 7) else None in
  Printf.printf "dpcd cluster%s%s: %d node(s) per scheme, state under %s\n%!"
    (if Option.is_some chaos then " [chaos]" else "")
    (if soak then Printf.sprintf " [soak %dx%d]" rounds per_round else "")
    Dpc_proc.Scenario.nodes dir;
  let ok =
    if soak then
      Dpc_proc.Cluster.run_soak_all ?chaos ~exe:Sys.executable_name ~dir ~rounds ~per_round schemes
    else Dpc_proc.Cluster.run_all ?chaos ~exe:Sys.executable_name ~dir schemes
  in
  if ok then `Ok () else `Error (false, "real-process digests diverged from the simulator")

let cluster_cmd =
  let schemes =
    Arg.(value & opt_all scheme_conv [] & info [ "scheme" ] ~docv:"SCHEME" ~doc:(scheme_doc ^ " Repeatable; default all four."))
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Working directory (default: a fresh temp dir). Keep short: Unix socket paths live \
                inside it.")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:"Run every daemon with hashed frame corruption on the wire (the in-process chaos \
                sweep's widths: drop 0.12, dup 0.06, delay 0.25/0.02s).")
  in
  let soak =
    Arg.(
      value & flag
      & info [ "soak" ]
          ~doc:"Long-running mode: sustained rounds of traffic with periodic outbox compaction, \
                asserting the ledger stays bounded, instead of the crash/partition scenario.")
  in
  let rounds =
    Arg.(value & opt int 12 & info [ "rounds" ] ~docv:"N" ~doc:"Soak rounds (with --soak).")
  in
  let per_round =
    Arg.(value & opt int 4 & info [ "per-round" ] ~docv:"N" ~doc:"Packets per soak round (with --soak).")
  in
  let doc = "spawn a daemon per node and run the crash/partition/transparency oracle" in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(ret (const cluster $ schemes $ dir $ chaos $ soak $ rounds $ per_round))

let () =
  let doc = "distributed provenance compression, as real processes" in
  let info = Cmd.info "dpcd" ~doc in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; cluster_cmd ]))
