let normalize width row =
  let len = List.length row in
  if len >= width then List.filteri (fun i _ -> i < width) row
  else row @ List.init (width - len) (fun _ -> "")

let render ~header ~rows =
  let width = List.length header in
  let rows = List.map (normalize width) rows in
  let cells = header :: rows in
  let col_width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 cells
  in
  let widths = List.init width col_width in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line row =
    String.concat "  " (List.map2 pad widths row)
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ~header ~rows = print_endline (render ~header ~rows)

let human_bytes n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.2f GB" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f MB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.2f KB" (f /. 1e3)
  else Printf.sprintf "%d B" n

let human_rate r =
  if r >= 1e9 then Printf.sprintf "%.2f GB/s" (r /. 1e9)
  else if r >= 1e6 then Printf.sprintf "%.2f MB/s" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.2f KB/s" (r /. 1e3)
  else Printf.sprintf "%.1f B/s" r
