(** Attribute-level dependency graph (paper §5.2).

    Vertices are relation attributes [(rel, index)]. For each rule with
    event atom [ev], an edge connects an event attribute to another
    attribute of the same rule when (1) they share a variable and the other
    attribute belongs to a slow-changing relation, (2) they share a variable
    and the other attribute is a head attribute, (3) their variables appear
    in the same arithmetic (comparison) atom, or (4) the event attribute's
    variable is on the right-hand side of an assignment whose left-hand
    variable is the other (head) attribute.

    Vertices shared between rules (the head relation of [r_i] is the event
    of [r_{i+1}]) connect the per-rule edges into program-wide paths, which
    is what {!Equi_keys} walks.

    Anchors are the targets that make an event attribute an equivalence
    key: attributes of slow-changing relations, plus attributes whose
    variables participate in comparison atoms (the appendix's
    JOIN-ARITH-LEFT/RIGHT rules, which treat comparison participation like a
    slow-changing join because comparisons steer the execution path). *)

type attr = { rel : string; idx : int }

val attr_to_string : attr -> string
(** e.g. ["packet:2"]. *)

type t

val build : Dpc_ndlog.Delp.t -> t

val vertices : t -> attr list
(** Sorted, deduplicated. *)

val neighbors : t -> attr -> attr list
(** Sorted; empty for unknown vertices. *)

val edges : t -> (attr * attr) list
(** Each undirected edge once, with endpoints ordered. *)

val is_anchor : t -> attr -> bool

val anchors : t -> attr list

val reachable : t -> attr -> attr -> bool
(** Undirected reachability (a vertex reaches itself). *)

val reaches_anchor : t -> attr -> bool

val pp : Format.formatter -> t -> unit
