(* Program-level property tests: the paper's theorems checked on randomly
   generated DELPs (programs no human wrote), not just on the two evaluation
   applications. Uses dpc_testkit's generator, which produces valid,
   well-typed linear programs with matching databases and event streams. *)

open Dpc_core
open Dpc_testkit

let check = Alcotest.check

let all_schemes =
  [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

let outputs world =
  List.map fst (Dpc_engine.Runtime.outputs world.Delp_gen.runtime)

(* Distinct (output tuple, evid) pairs produced by a run. *)
let queryable world =
  List.map
    (fun (out, (meta : Dpc_engine.Prov_hook.meta)) -> (out, meta.evid))
    (Dpc_engine.Runtime.outputs world.Delp_gen.runtime)
  |> List.sort_uniq compare

let query world ?evid out =
  Backend.query world.Delp_gen.backend ~cost:Query_cost.free ~routing:world.Delp_gen.routing
    ?evid out

let tree_sig tree = Dpc_ndlog.Tuple.canonical (Prov_tree.event_of tree) ^ "|" ^ Prov_tree.to_string tree

(* ------------------------------------------------------------------ *)
(* Property 1 (Theorem 3 on random programs): every scheme produces the
   same outputs, and for every (output, evid) the reconstructed tree sets
   are identical across schemes. *)

let losslessness_on seed =
  let rng = Dpc_util.Rng.create ~seed in
  let instance = Delp_gen.generate ~rng in
  let worlds =
    List.map
      (fun scheme ->
        let w = Delp_gen.build_world instance scheme in
        Delp_gen.run_events w instance.events;
        (scheme, w))
      all_schemes
  in
  let reference_scheme, reference = List.hd worlds in
  let ref_outputs = List.sort compare (List.map Dpc_ndlog.Tuple.canonical (outputs reference)) in
  List.iter
    (fun (scheme, w) ->
      let got = List.sort compare (List.map Dpc_ndlog.Tuple.canonical (outputs w)) in
      if got <> ref_outputs then
        Alcotest.failf "seed %d: %s and %s disagree on outputs for program:\n%s" seed
          (Backend.scheme_name reference_scheme) (Backend.scheme_name scheme)
          instance.description)
    worlds;
  List.iter
    (fun (out, evid) ->
      let ref_trees =
        List.sort_uniq compare (List.map tree_sig (query reference ~evid out).trees)
      in
      if ref_trees = [] then
        Alcotest.failf "seed %d: reference scheme found no tree for an output of program:\n%s"
          seed instance.description;
      List.iter
        (fun (scheme, w) ->
          let got = List.sort_uniq compare (List.map tree_sig (query w ~evid out).trees) in
          if got <> ref_trees then
            Alcotest.failf
              "seed %d: tree sets differ between %s (%d trees) and %s (%d trees) for %s\n%s"
              seed
              (Backend.scheme_name reference_scheme)
              (List.length ref_trees) (Backend.scheme_name scheme) (List.length got)
              (Dpc_ndlog.Tuple.to_string out) instance.description)
        worlds)
    (queryable reference)

let prop_losslessness =
  QCheck.Test.make ~name:"theorem 3 on random programs" ~count:60 QCheck.small_nat
    (fun seed ->
      losslessness_on (seed + 1);
      true)

(* ------------------------------------------------------------------ *)
(* Property 2 (Theorem 1 on random programs): two events equal on the
   equivalence keys yield the same multiset of tree equivalence classes. *)

let theorem1_on seed =
  let rng = Dpc_util.Rng.create ~seed in
  let instance = Delp_gen.generate ~rng in
  let keys = Dpc_analysis.Equi_keys.compute instance.delp in
  match instance.events with
  | [] -> ()
  | e1 :: _ ->
      let e2 = Delp_gen.mutate_non_keys ~rng ~keys e1 in
      let w = Delp_gen.build_world instance Backend.S_exspan in
      Delp_gen.run_events w [ e1; e2 ];
      let shapes_of event =
        let evid = Dpc_util.Sha1.digest_string (Dpc_ndlog.Tuple.canonical event) in
        List.filter_map
          (fun (out, m) ->
            if Dpc_util.Sha1.equal m.Dpc_engine.Prov_hook.evid evid then Some out else None)
          (Dpc_engine.Runtime.outputs w.Delp_gen.runtime)
        |> List.sort_uniq Dpc_ndlog.Tuple.compare
        |> List.concat_map (fun out -> (query w ~evid out).trees)
        |> List.map Delp_gen.tree_shape
        |> List.sort compare
      in
      let s1 = shapes_of e1 and s2 = shapes_of e2 in
      if s1 <> s2 then
        Alcotest.failf
          "seed %d: key-equal events have different tree shapes (%d vs %d)\nkeys: %s\ne1=%s\ne2=%s\n%s"
          seed (List.length s1) (List.length s2)
          (String.concat "," (List.map string_of_int (Dpc_analysis.Equi_keys.keys keys)))
          (Dpc_ndlog.Tuple.to_string e1) (Dpc_ndlog.Tuple.to_string e2) instance.description

let prop_theorem1 =
  QCheck.Test.make ~name:"theorem 1 on random programs" ~count:60 QCheck.small_nat
    (fun seed ->
      theorem1_on (seed + 1000);
      true)

(* ------------------------------------------------------------------ *)
(* Property 3: generated programs are valid DELPs with well-formed keys,
   and the whole pipeline never raises. *)

let prop_pipeline_total =
  QCheck.Test.make ~name:"pipeline never raises on random programs" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Dpc_util.Rng.create ~seed:(seed + 2000) in
      let instance = Delp_gen.generate ~rng in
      let keys = Dpc_analysis.Equi_keys.compute instance.delp in
      let key_list = Dpc_analysis.Equi_keys.keys keys in
      let w = Delp_gen.build_world instance Backend.S_advanced in
      Delp_gen.run_events w instance.events;
      List.iter (fun (out, evid) -> ignore (query w ~evid out)) (queryable w);
      key_list <> [] && List.hd key_list = 0)

(* ------------------------------------------------------------------ *)
(* Property 3b: the index-driven join produces exactly the derivations of
   the naive scan join, as a multiset, on random programs and databases —
   events are driven through every rule, feeding derived heads back in so
   later rules of the chain are exercised too. *)

let prop_planned_fire_matches_naive =
  QCheck.Test.make ~name:"indexed fire matches naive fire" ~count:60 QCheck.small_nat
    (fun seed ->
      let rng = Dpc_util.Rng.create ~seed:(seed + 7000) in
      let instance = Delp_gen.generate ~rng in
      let db = Dpc_engine.Db.create () in
      List.iter (fun t -> ignore (Dpc_engine.Db.insert db t)) instance.slow_tuples;
      let env = Dpc_engine.Env.empty in
      let plans =
        List.map (fun r -> (r, Dpc_engine.Eval.plan r)) instance.delp.program.rules
      in
      let norm results =
        List.sort compare
          (List.map
             (fun (head, slow) ->
               (Dpc_ndlog.Tuple.canonical head, List.map Dpc_ndlog.Tuple.canonical slow))
             results)
      in
      let rec drive events depth =
        depth > 4 || events = []
        ||
        let next = ref [] in
        let ok =
          List.for_all
            (fun event ->
              List.for_all
                (fun (rule, plan) ->
                  let naive = Dpc_engine.Eval.fire ~env ~db ~rule ~event in
                  let planned = Dpc_engine.Eval.fire_planned ~env ~db ~plan ~event in
                  next := List.map fst naive @ !next;
                  if norm naive <> norm planned then
                    QCheck.Test.fail_reportf
                      "indexed join diverges on rule %s, event %s, program:\n%s" rule.Dpc_ndlog.Ast.name
                      (Dpc_ndlog.Tuple.to_string event)
                      instance.description
                  else true)
                plans)
            events
        in
        ok && drive (List.sort_uniq Dpc_ndlog.Tuple.compare !next) (depth + 1)
      in
      drive instance.events 0)

(* ------------------------------------------------------------------ *)
(* Property 4: generated programs round-trip through the parser. *)

let prop_generated_programs_parse =
  QCheck.Test.make ~name:"generated programs re-parse" ~count:60 QCheck.small_nat
    (fun seed ->
      let rng = Dpc_util.Rng.create ~seed:(seed + 3000) in
      let instance = Delp_gen.generate ~rng in
      match Dpc_ndlog.Parser.parse_program ~name:"generated" instance.description with
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s\n%s" e instance.description
      | Ok p -> begin
          match Dpc_ndlog.Delp.validate p with
          | Error e ->
              QCheck.Test.fail_reportf "re-validation failed: %s\n%s"
                (Dpc_ndlog.Delp.error_to_string e) instance.description
          | Ok d ->
              Dpc_analysis.Equi_keys.keys (Dpc_analysis.Equi_keys.compute d)
              = Dpc_analysis.Equi_keys.keys (Dpc_analysis.Equi_keys.compute instance.delp)
        end)

(* ------------------------------------------------------------------ *)
(* Property 5: checkpoint/restore on random programs — the restored store
   answers every query identically. *)

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint round-trip on random programs" ~count:30
    QCheck.small_nat (fun seed ->
      let rng = Dpc_util.Rng.create ~seed:(seed + 4000) in
      let instance = Delp_gen.generate ~rng in
      let w = Delp_gen.build_world instance Backend.S_advanced in
      Delp_gen.run_events w instance.events;
      let blob = Backend.checkpoint w.Delp_gen.backend in
      let restored =
        Backend.restore Backend.S_advanced ~delp:instance.delp ~env:Dpc_engine.Env.empty blob
      in
      List.for_all
        (fun (out, evid) ->
          let live =
            List.sort_uniq compare (List.map tree_sig (query w ~evid out).trees)
          in
          let back =
            List.sort_uniq compare
              (List.map tree_sig
                 (Backend.query restored ~cost:Query_cost.free ~routing:w.Delp_gen.routing
                    ~evid out)
                   .trees)
          in
          live = back)
        (queryable w))

(* ------------------------------------------------------------------ *)
(* Property 6: replay on random programs — re-executing the input log
   reproduces exactly the ExSPAN trees of the live run. *)

let prop_replay_matches_live =
  QCheck.Test.make ~name:"replay matches live run on random programs" ~count:30
    QCheck.small_nat (fun seed ->
      let rng = Dpc_util.Rng.create ~seed:(seed + 5000) in
      let instance = Delp_gen.generate ~rng in
      (* Build a live ExSPAN world with a replay logger riding along. *)
      let topo = Dpc_net.Topology.create ~n:instance.nodes in
      let link = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e8 } in
      for a = 0 to instance.nodes - 1 do
        for b = a + 1 to instance.nodes - 1 do
          Dpc_net.Topology.add_link topo a b link
        done
      done;
      let routing = Dpc_net.Routing.compute topo in
      let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
      let backend =
        Backend.make Backend.S_exspan ~delp:instance.delp ~env:Dpc_engine.Env.empty
          ~nodes:instance.nodes
      in
      let replay =
        Replay.create ~delp:instance.delp ~env:Dpc_engine.Env.empty ~nodes:instance.nodes
      in
      let hook = Replay.combine (Backend.hook backend) (Replay.hook replay) in
      let rt =
        Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp:instance.delp ~env:Dpc_engine.Env.empty ~hook ()
      in
      Dpc_engine.Runtime.load_slow rt instance.slow_tuples;
      Replay.record_initial_slow replay instance.slow_tuples;
      List.iter (fun ev -> Dpc_engine.Runtime.inject rt ev) instance.events;
      Dpc_engine.Runtime.run rt;
      let pairs =
        List.map
          (fun (out, (m : Dpc_engine.Prov_hook.meta)) -> (out, m.evid))
          (Dpc_engine.Runtime.outputs rt)
        |> List.sort_uniq compare
      in
      List.for_all
        (fun (out, evid) ->
          let live =
            List.sort_uniq compare
              (List.map tree_sig
                 (Backend.query backend ~cost:Query_cost.free ~routing ~evid out).trees)
          in
          let replayed =
            List.sort_uniq compare
              (List.map tree_sig
                 (Replay.replay_and_query replay ~topology:topo ~evid out).trees)
          in
          live = replayed)
        pairs)

(* ------------------------------------------------------------------ *)
(* A deterministic regression case exercising the generator itself. *)

let test_generator_sanity () =
  let rng = Dpc_util.Rng.create ~seed:99 in
  let instance = Delp_gen.generate ~rng in
  check Alcotest.bool "has rules" true (instance.delp.program.rules <> []);
  check Alcotest.bool "has events" true (instance.events <> []);
  check Alcotest.string "input event relation" "ev" instance.delp.input_event;
  (* All slow tuples belong to slow relations of the program. *)
  List.iter
    (fun t ->
      if not (Dpc_ndlog.Delp.is_slow instance.delp (Dpc_ndlog.Tuple.rel t)) then
        Alcotest.failf "tuple %s is not of a slow relation" (Dpc_ndlog.Tuple.to_string t))
    instance.slow_tuples

let test_mutation_preserves_keys () =
  let rng = Dpc_util.Rng.create ~seed:7 in
  let instance = Delp_gen.generate ~rng in
  let keys = Dpc_analysis.Equi_keys.compute instance.delp in
  List.iter
    (fun ev ->
      let ev' = Delp_gen.mutate_non_keys ~rng ~keys ev in
      check Alcotest.bool "still equivalent" true (Dpc_analysis.Equi_keys.equivalent keys ev ev'))
    instance.events

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dpc_properties"
    [
      ( "generator",
        [
          Alcotest.test_case "sanity" `Quick test_generator_sanity;
          Alcotest.test_case "mutation preserves keys" `Quick test_mutation_preserves_keys;
        ] );
      ( "random programs",
        qsuite
          [
            prop_losslessness;
            prop_theorem1;
            prop_pipeline_total;
            prop_planned_fire_matches_naive;
            prop_generated_programs_parse;
            prop_checkpoint_roundtrip;
            prop_replay_matches_live;
          ] );
    ]
