type histogram = { count : int; sum : float; min : float; max : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}

(* One mutex per registry guards every table operation. Registries are
   owned by their node's shard, so the lock is almost always uncontended;
   it exists for the cross-shard readers (snapshots taken at the merge
   barrier, durable counter rematerialization) and for registries shared
   deliberately, e.g. the concurrency property tests. *)
type t = {
  lock : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram ref) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

let cell tbl ~make name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = make () in
      Hashtbl.add tbl name r;
      r

let incr t ?(by = 1) name =
  Mutex.protect t.lock (fun () ->
    let r = cell t.counters ~make:(fun () -> ref 0) name in
    r := !r + by)

let counter_value t name =
  Mutex.protect t.lock (fun () ->
    match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let set_gauge t name v =
  Mutex.protect t.lock (fun () ->
    let r = cell t.gauges ~make:(fun () -> ref 0.0) name in
    r := v)

let observe t name v =
  Mutex.protect t.lock (fun () ->
    match Hashtbl.find_opt t.histograms name with
    | Some r ->
        let h = !r in
        r := { count = h.count + 1; sum = h.sum +. v; min = Float.min h.min v;
               max = Float.max h.max v }
    | None -> Hashtbl.add t.histograms name (ref { count = 1; sum = v; min = v; max = v }))

let clear t =
  Mutex.protect t.lock (fun () ->
    Hashtbl.reset t.counters;
    Hashtbl.reset t.gauges;
    Hashtbl.reset t.histograms)

let sorted_bindings deref tbl =
  Hashtbl.fold (fun k r acc -> (k, deref r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t : snapshot =
  Mutex.protect t.lock (fun () ->
    {
      counters = sorted_bindings ( ! ) t.counters;
      gauges = sorted_bindings ( ! ) t.gauges;
      histograms = sorted_bindings ( ! ) t.histograms;
    })

let empty : snapshot = { counters = []; gauges = []; histograms = [] }

(* Merge two name-sorted association lists, combining values under equal
   names with [combine]. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = String.compare ka kb in
      if c = 0 then (ka, combine va vb) :: merge_assoc combine ta tb
      else if c < 0 then (ka, va) :: merge_assoc combine ta b
      else (kb, vb) :: merge_assoc combine a tb

let merge (a : snapshot) (b : snapshot) : snapshot =
  {
    counters = merge_assoc ( + ) a.counters b.counters;
    (* Gauges are levels; across nodes the cluster-wide level is the sum. *)
    gauges = merge_assoc ( +. ) a.gauges b.gauges;
    histograms =
      merge_assoc
        (fun x y ->
          { count = x.count + y.count; sum = x.sum +. y.sum;
            min = Float.min x.min y.min; max = Float.max x.max y.max })
        a.histograms b.histograms;
  }

let counter (s : snapshot) name =
  match List.assoc_opt name s.counters with Some v -> v | None -> 0

let gauge (s : snapshot) name = List.assoc_opt name s.gauges
let histogram (s : snapshot) name = List.assoc_opt name s.histograms
let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

let to_rows (s : snapshot) =
  List.map (fun (k, v) -> [ k; "counter"; string_of_int v ]) s.counters
  @ List.map (fun (k, v) -> [ k; "gauge"; Printf.sprintf "%g" v ]) s.gauges
  @ List.map
      (fun (k, h) ->
        [ k; "histogram";
          Printf.sprintf "n=%d mean=%g min=%g max=%g" h.count (mean h) h.min h.max ])
      s.histograms
