type config = {
  timeout : float;
  backoff : float;
  max_timeout : float;
  max_retries : int;
  jitter : float;
}

let default_config =
  { timeout = 0.05; backoff = 2.0; max_timeout = 1.0; max_retries = 20; jitter = 0.0 }

(* Sequence number (and a little framing) on every data message; an ack
   carries the channel id and the sequence it confirms. A heal probe is a
   bare channel id + nonce, answered by an equally small pong. *)
let data_header_bytes = 8
let ack_bytes = 12
let probe_bytes = 10

(* The retransmit (and probe) delay for the [attempt]th try: capped
   exponential backoff, optionally pulled earlier by a deterministic
   per-channel hash — no shared random stream, so sharded runs and
   re-runs see the identical schedule. The jittered delay lives in
   [(1 - jitter) * capped, capped]: different channels de-synchronize,
   which is what stops a healing partition from turning every suspended
   sender's timer into one synchronized retransmit storm. *)
let backoff_delay config ~src ~dst ~attempt =
  let capped =
    Float.min (config.timeout *. (config.backoff ** float_of_int (attempt - 1))) config.max_timeout
  in
  if config.jitter <= 0.0 then capped
  else
    let u = Transport.channel_unit_hash ~seed:0x7ea1 ~src ~dst ~n:attempt in
    capped *. (1.0 -. (config.jitter *. u))

(* One directed (src, dst) channel. The sender's half is [next_seq]; the
   receiver's half is the dedup/reorder window: everything below
   [expected] has been delivered in order, and [pending] holds arrivals
   above the gap, waiting for it to fill. The window stays small — it
   drains as soon as the missing retransmit lands. Under a sharded
   transport the two halves live on different domains, but they are
   distinct fields: the sender's shard only touches [next_seq], the
   receiver's only [expected]/[pending]. *)
type channel = {
  mutable next_seq : int;
  mutable expected : int;
  pending : (int, unit -> unit) Hashtbl.t;
  (* Suspension state, owned by the sender's shard. A suspended channel
     has burned its retry budget: instead of dropping the unacked tail it
     parks each message's re-offer thunk here (keyed by seq, re-run in
     seq order on resurrection) and keeps exactly one heal-probe loop
     alive until the link answers. [probe_gen] invalidates stale probe
     timers across resurrect/forget boundaries. *)
  mutable suspended : bool;
  mutable parked : (int * (unit -> unit)) list;
  mutable probe_gen : int;
}

type stats = {
  data_msgs : int;
  data_bytes : int;
  retransmits : int;
  retransmit_bytes : int;
  acks : int;
  ack_bytes_total : int;
  dup_dropped : int;
  held : int;
  abandoned : int;
  suspensions : int;
  resurrections : int;
  parked : int;
  probes : int;
}

type channel_event =
  | Next_seq of { src : int; dst : int; seq : int }
  | Expected of { src : int; dst : int; seq : int }

type t = {
  inner : Transport.t;
  config : config;
  metrics : (int -> Dpc_util.Metrics.t) option;
  (* The full [src][dst] endpoint matrix, allocated eagerly: channel
     lookup never mutates a shared table, so concurrent shards cannot
     race on it. A few MB at the paper's 125 nodes. *)
  channels : channel array array;
  mutable persist : (channel_event -> unit) option;
  (* Cluster-wide accounting; senders on every shard bump these. *)
  data_msgs : int Atomic.t;
  data_bytes : int Atomic.t;
  retransmits : int Atomic.t;
  retransmit_bytes : int Atomic.t;
  acks : int Atomic.t;
  ack_bytes_total : int Atomic.t;
  dup_dropped : int Atomic.t;
  held : int Atomic.t;
  abandoned : int Atomic.t;
  suspensions : int Atomic.t;
  resurrections : int Atomic.t;
  parked_total : int Atomic.t;
  probes : int Atomic.t;
}

let wrap ?(config = default_config) ?metrics inner =
  if config.timeout <= 0.0 then invalid_arg "Reliable.wrap: timeout must be positive";
  if config.backoff < 1.0 then invalid_arg "Reliable.wrap: backoff must be >= 1";
  if config.max_retries < 0 then invalid_arg "Reliable.wrap: negative max_retries";
  if config.jitter < 0.0 || config.jitter >= 1.0 then
    invalid_arg "Reliable.wrap: jitter must be in [0, 1)";
  let n = Transport.nodes inner in
  {
    inner;
    config;
    metrics;
    channels =
      Array.init n (fun _ ->
        Array.init n (fun _ ->
          { next_seq = 0; expected = 0; pending = Hashtbl.create 8; suspended = false;
            parked = []; probe_gen = 0 }));
    persist = None;
    data_msgs = Atomic.make 0;
    data_bytes = Atomic.make 0;
    retransmits = Atomic.make 0;
    retransmit_bytes = Atomic.make 0;
    acks = Atomic.make 0;
    ack_bytes_total = Atomic.make 0;
    dup_dropped = Atomic.make 0;
    held = Atomic.make 0;
    abandoned = Atomic.make 0;
    suspensions = Atomic.make 0;
    resurrections = Atomic.make 0;
    parked_total = Atomic.make 0;
    probes = Atomic.make 0;
  }

let tick t node ?by name =
  match t.metrics with None -> () | Some f -> Dpc_util.Metrics.incr (f node) ?by name

let set_persist t f = t.persist <- Some f
let persist t ev = match t.persist with None -> () | Some f -> f ev

let channel t ~src ~dst = t.channels.(src).(dst)

(* Deliver in sequence order: run the arrival if it is the next expected
   message, then drain whatever the gap was holding back. Out-of-order
   arrivals wait in the window; duplicates (below the watermark or already
   waiting) are dropped. The watermark is advanced (and persisted via
   [notify]) BEFORE the delivery closure runs, so a journal written from
   inside the closure sees the post-delivery sequence state. Returns what
   happened, for accounting. *)
let accept ~notify ch seq k =
  if seq < ch.expected || Hashtbl.mem ch.pending seq then `Duplicate
  else if seq > ch.expected then begin
    Hashtbl.add ch.pending seq k;
    `Held
  end
  else begin
    ch.expected <- ch.expected + 1;
    notify ch.expected;
    k ();
    let rec drain () =
      match Hashtbl.find_opt ch.pending ch.expected with
      | None -> ()
      | Some k' ->
          Hashtbl.remove ch.pending ch.expected;
          ch.expected <- ch.expected + 1;
          notify ch.expected;
          k' ();
          drain ()
    in
    drain ();
    `Delivered
  end

(* ---- suspension + resurrection ----------------------------------- *)

(* The heal-probe loop: one per suspended channel, started on the
   suspension transition. A probe is a tiny Hello-style ping through the
   inner transport, answered by an equally tiny pong; no pong by the next
   capped-backoff deadline means probe again. Both legs cross the real
   (possibly partitioned) wire, so a one-way outage that lets data
   through but eats the reverse path keeps the channel suspended — which
   is right, because acks would be eaten too. The loop dies via
   [probe_gen] when the channel is resurrected or wiped by a crash. *)
let rec probe t ~src ~dst ch ~gen n =
  Atomic.incr t.probes;
  tick t src "net.probes";
  let pong = ref false in
  Transport.send t.inner ~src ~dst ~bytes:probe_bytes (fun () ->
    Transport.send t.inner ~src:dst ~dst:src ~bytes:probe_bytes (fun () -> pong := true));
  let delay = backoff_delay t.config ~src ~dst ~attempt:n in
  Transport.schedule_on t.inner ~node:src ~delay (fun () ->
    if ch.suspended && ch.probe_gen = gen then
      if !pong then resurrect t ~src ~dst ch else probe t ~src ~dst ch ~gen (n + 1))

(* Resurrection: the probe got its pong, so the link is back. Re-offer
   the parked tail in sequence order — the receiver's dedup/reorder
   window makes the re-offers land with exactly-once FIFO effects even
   if an old in-flight copy races them. *)
and resurrect t ~src ~dst:_ ch =
  ch.suspended <- false;
  ch.probe_gen <- ch.probe_gen + 1;
  Atomic.incr t.resurrections;
  tick t src "net.resurrections";
  let backlog = List.sort (fun (a, _) (b, _) -> compare a b) ch.parked in
  ch.parked <- [];
  List.iter
    (fun (_, resume) ->
      Atomic.decr t.abandoned;
      resume ())
    backlog

let suspend t ~src ~dst ch =
  if not ch.suspended then begin
    ch.suspended <- true;
    ch.probe_gen <- ch.probe_gen + 1;
    Atomic.incr t.suspensions;
    tick t src "net.suspensions";
    probe t ~src ~dst ch ~gen:ch.probe_gen 1
  end

let send t ~src ~dst ~bytes k =
  let ch = channel t ~src ~dst in
  let seq = ch.next_seq in
  ch.next_seq <- seq + 1;
  persist t (Next_seq { src; dst; seq = ch.next_seq });
  let wire = bytes + data_header_bytes in
  let acked = ref false in
  let attempts = ref 0 in
  let first = ref true in
  (* Receiver side: dedup and reorder through the window, then ack the
     cumulative watermark — but only when it covers this arrival. A
     delivered or below-watermark duplicate arrival is acked (the sender
     may have missed an earlier ack); a HELD arrival is not, because the
     receiver's window is volatile: if the receiver crashes, everything
     parked behind the gap dies with it, and only the unacked senders'
     retransmissions bring it back. A held message therefore costs one
     extra retransmission in the fault-free case — the price of making
     the ack a durable promise. *)
  let notify expected = persist t (Expected { src; dst; seq = expected }) in
  let deliver () =
    (match accept ~notify ch seq k with
    | `Delivered -> ()
    | `Duplicate ->
        Atomic.incr t.dup_dropped;
        tick t dst "net.dup_dropped"
    | `Held ->
        Atomic.incr t.held;
        tick t dst "net.held");
    if ch.expected > seq then begin
      Atomic.incr t.acks;
      ignore (Atomic.fetch_and_add t.ack_bytes_total ack_bytes);
      tick t dst "net.acks_sent";
      tick t dst ~by:ack_bytes "net.ack_bytes";
      Transport.send t.inner ~src:dst ~dst:src ~bytes:ack_bytes (fun () -> acked := true)
    end
  in
  let rec transmit () =
    incr attempts;
    if !first then begin
      first := false;
      Atomic.incr t.data_msgs;
      ignore (Atomic.fetch_and_add t.data_bytes wire);
      tick t src "net.data_msgs"
    end
    else begin
      Atomic.incr t.retransmits;
      ignore (Atomic.fetch_and_add t.retransmit_bytes wire);
      tick t src "net.retransmits";
      tick t src ~by:wire "net.retransmit_bytes"
    end;
    Transport.send t.inner ~src ~dst ~bytes:wire deliver;
    (* Arm the ack timeout for this attempt, on the sender's own shard:
       the timer closure reads [acked]/[attempts], which the sender owns.
       There is no cancellation: an acked timer just fires and finds
       nothing to do. *)
    let delay = backoff_delay t.config ~src ~dst ~attempt:!attempts in
    Transport.schedule_on t.inner ~node:src ~delay (fun () ->
      if not !acked then
        if ch.suspended || !attempts > t.config.max_retries then park ()
        else transmit ())
  (* Out of retry budget (or the channel already gave up): park the
     re-offer instead of dropping the message, and make sure the heal
     probe is running. [abandoned] counts the currently-parked backlog —
     it drains back to zero when the channel resurrects, so a healthy
     (eventually-healed) run still ends with [abandoned = 0]. *)
  and park () =
    ch.parked <- (seq, fun () -> attempts := 0; transmit ()) :: ch.parked;
    Atomic.incr t.abandoned;
    Atomic.incr t.parked_total;
    tick t src "net.parked";
    suspend t ~src ~dst ch
  in
  if ch.suspended then park () else transmit ()

(* ------------------------------------------------------------------ *)
(* Crash support: channel sequence state as data.

   A node's share of the channel state is the [next_seq] of every channel
   it sends on and the [expected] watermark of every channel it receives
   on. The pending window is deliberately NOT part of it — held arrivals
   were never acked, so after a crash the peers' retransmissions rebuild
   the window on their own. Restoring the watermark is the whole recovery
   handshake: a retransmission below it is acked as a duplicate (filling
   the sender's missed ack), one at it is delivered, and the sender's
   restored [next_seq] keeps new messages from reusing sequence numbers
   the peer has already seen. *)

let set_next_seq t ~src ~dst seq =
  let ch = channel t ~src ~dst in
  if seq > ch.next_seq then begin
    ch.next_seq <- seq;
    persist t (Next_seq { src; dst; seq })
  end

let set_expected t ~src ~dst seq =
  let ch = channel t ~src ~dst in
  if seq > ch.expected then begin
    ch.expected <- seq;
    persist t (Expected { src; dst; seq })
  end

let forget t ~node =
  (* Mutate the existing channel records in place: in-flight retransmit
     and delivery closures captured them, and must observe the wipe. *)
  let n = Array.length t.channels in
  for peer = 0 to n - 1 do
    let out = t.channels.(node).(peer) in
    out.next_seq <- 0;
    (* A crash loses the parked tail with the rest of the volatile send
       state (the durable outbox re-offers it); kill the probe loop and
       drain the parked backlog out of [abandoned]. *)
    out.suspended <- false;
    out.probe_gen <- out.probe_gen + 1;
    List.iter (fun _ -> Atomic.decr t.abandoned) out.parked;
    out.parked <- [];
    let ch = t.channels.(peer).(node) in
    ch.expected <- 0;
    Hashtbl.reset ch.pending
  done

let snapshot_magic = "dpc-rel-v1"

let snapshot t ~node =
  let n = Array.length t.channels in
  let senders = ref [] and receivers = ref [] in
  for peer = n - 1 downto 0 do
    let out = t.channels.(node).(peer) in
    if out.next_seq > 0 then senders := (peer, out.next_seq) :: !senders;
    let in_ = t.channels.(peer).(node) in
    if in_.expected > 0 then receivers := (peer, in_.expected) :: !receivers
  done;
  let w = Dpc_util.Serialize.writer () in
  Dpc_util.Serialize.write_string w snapshot_magic;
  let pair (peer, seq) =
    Dpc_util.Serialize.write_varint w peer;
    Dpc_util.Serialize.write_varint w seq
  in
  Dpc_util.Serialize.write_list w pair !senders;
  Dpc_util.Serialize.write_list w pair !receivers;
  Dpc_util.Serialize.contents w

let restore t ~node blob =
  let r = Dpc_util.Serialize.reader blob in
  if Dpc_util.Serialize.read_string r <> snapshot_magic then
    raise (Dpc_util.Serialize.Corrupt "not a Reliable channel snapshot");
  let pair () =
    let peer = Dpc_util.Serialize.read_varint r in
    let seq = Dpc_util.Serialize.read_varint r in
    (peer, seq)
  in
  List.iter (fun (dst, seq) -> set_next_seq t ~src:node ~dst seq) (Dpc_util.Serialize.read_list r pair);
  List.iter (fun (src, seq) -> set_expected t ~src ~dst:node seq) (Dpc_util.Serialize.read_list r pair)

let transport t : Transport.t =
  let (module T : Transport.S) = t.inner in
  (module struct
    let name = "reliable+" ^ T.name
    let nodes = T.nodes
    let shards = T.shards
    let shard_of = T.shard_of
    let now = T.now
    let schedule = T.schedule
    let schedule_on = T.schedule_on
    let send ~src ~dst ~bytes k = send t ~src ~dst ~bytes k

    let broadcast ~src ~bytes k =
      for dst = 0 to nodes - 1 do
        send ~src ~dst ~bytes (fun () -> k dst)
      done

    let run = T.run
    let total_bytes = T.total_bytes
    let messages = T.messages
  end)

let stats t : stats =
  {
    data_msgs = Atomic.get t.data_msgs;
    data_bytes = Atomic.get t.data_bytes;
    retransmits = Atomic.get t.retransmits;
    retransmit_bytes = Atomic.get t.retransmit_bytes;
    acks = Atomic.get t.acks;
    ack_bytes_total = Atomic.get t.ack_bytes_total;
    dup_dropped = Atomic.get t.dup_dropped;
    held = Atomic.get t.held;
    abandoned = Atomic.get t.abandoned;
    suspensions = Atomic.get t.suspensions;
    resurrections = Atomic.get t.resurrections;
    parked = Atomic.get t.parked_total;
    probes = Atomic.get t.probes;
  }

let suspended_channels t =
  let n = Array.length t.channels in
  let count = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if t.channels.(src).(dst).suspended then incr count
    done
  done;
  !count
