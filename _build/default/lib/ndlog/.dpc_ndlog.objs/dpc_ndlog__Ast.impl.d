lib/ndlog/ast.ml: Hashtbl List String Value
