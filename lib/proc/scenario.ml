module Forwarding = Dpc_apps.Forwarding
module Backend = Dpc_core.Backend
module Runtime = Dpc_engine.Runtime

let nodes = 3

let routes () =
  [ Forwarding.route ~at:0 ~dst:2 ~next:1; Forwarding.route ~at:1 ~dst:2 ~next:2 ]

let refreshed_route () = Forwarding.route ~at:1 ~dst:2 ~next:2

let packets prefix count =
  List.init count (fun i ->
      Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "%s%d" prefix (i + 1)))

let pre_packets () = packets "pre" 5
let mid_packets () = packets "mid" 3
let post_packets () = packets "post" 5
let part_packets () = packets "part" 3
let total_outputs = 16

let soak_packets ~round count =
  List.init count (fun i ->
      Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "soak%d-%d" round (i + 1)))

type digests = { store : string; db : string }

let db_digest db =
  Dpc_util.Sha1.to_hex (Dpc_util.Sha1.digest_string (Dpc_engine.Db.canonical db))

let reference_runtime scheme =
  let delp = Forwarding.delp () in
  let backend = Backend.make scheme ~delp ~env:Forwarding.env ~nodes in
  let transport = Dpc_net.Transport.direct ~nodes () in
  let runtime =
    Runtime.create ~transport ~delp ~env:Forwarding.env ~hook:(Backend.hook backend)
      ~nodes:(Backend.nodes backend) ()
  in
  Runtime.load_slow runtime (routes ());
  (backend, runtime)

let digests_of backend runtime =
  Array.init nodes (fun node ->
      { store = Backend.digest_node backend node; db = db_digest (Runtime.db runtime node) })

let simulate scheme =
  let backend, runtime = reference_runtime scheme in
  let phase injects =
    List.iter (fun event -> Runtime.inject runtime event) injects;
    Runtime.run runtime
  in
  phase (pre_packets ());
  phase (mid_packets ());
  ignore (Runtime.delete_slow_runtime runtime (refreshed_route ()));
  Runtime.insert_slow_runtime runtime (refreshed_route ());
  Runtime.run runtime;
  phase (post_packets ());
  phase (part_packets ());
  digests_of backend runtime

let simulate_soak scheme ~rounds ~per_round =
  let backend, runtime = reference_runtime scheme in
  for round = 1 to rounds do
    List.iter (fun event -> Runtime.inject runtime event) (soak_packets ~round per_round);
    Runtime.run runtime
  done;
  digests_of backend runtime
