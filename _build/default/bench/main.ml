(* Benchmark harness entry point: regenerates every figure of the paper's
   evaluation (Figures 8-16) plus the §5.4 ablation, and optionally the
   Bechamel micro-benchmarks.

     dune exec bench/main.exe                 # all figures, scaled down
     dune exec bench/main.exe -- --fig 9      # one figure
     dune exec bench/main.exe -- --paper-scale
     dune exec bench/main.exe -- --micro      # micro-benchmarks only *)

let usage () =
  print_endline "usage: main.exe [--fig <id>] [--paper-scale] [--seed <n>] [--micro] [--list]";
  print_endline "  ids:";
  List.iter (fun (name, _) -> Printf.printf "    %s\n" name) Figures.all

let () =
  let args = Array.to_list Sys.argv in
  let rec parse cfg figs micro = function
    | [] -> (cfg, figs, micro)
    | "--paper-scale" :: rest -> parse { cfg with Figures.paper_scale = true } figs micro rest
    | "--seed" :: n :: rest ->
        parse { cfg with Figures.seed = int_of_string n } figs micro rest
    | "--fig" :: id :: rest ->
        let id = if String.length id <= 2 then "fig" ^ id else id in
        parse cfg (id :: figs) micro rest
    | "--micro" :: rest -> parse cfg figs true rest
    | "--list" :: _ ->
        usage ();
        exit 0
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        usage ();
        exit 2
  in
  let cfg, figs, micro = parse Figures.default_config [] false (List.tl args) in
  let figs = List.rev figs in
  print_endline "Distributed Provenance Compression - evaluation harness";
  Printf.printf "scale: %s, seed: %d\n"
    (if cfg.Figures.paper_scale then "paper" else "scaled-down")
    cfg.Figures.seed;
  (* No selection: run everything (all figures plus the micro suite). *)
  let run_all = figs = [] && not micro in
  let micro = micro || run_all in
  let selected =
    if run_all then Figures.all
    else if figs = [] then []
    else
      List.map
        (fun id ->
          match List.assoc_opt id Figures.all with
          | Some f -> (id, f)
          | None ->
              Printf.eprintf "unknown figure id %s\n" id;
              usage ();
              exit 2)
        figs
  in
  List.iter (fun (_, f) -> f cfg) selected;
  if micro then Micro.run ()
