lib/engine/eval.ml: Array Ast Db Dpc_ndlog Env Hashtbl List Printf String Tuple Value
