(** Random selection of communicating (source, destination) pairs for the
    packet-forwarding experiments. *)

val select :
  rng:Dpc_util.Rng.t -> eligible:int list -> count:int -> (int * int) list
(** [count] distinct ordered pairs with distinct endpoints, drawn uniformly
    from [eligible]. @raise Invalid_argument if fewer than 2 eligible nodes
    or more pairs requested than exist. *)
