open Dpc_ndlog

type attr = { rel : string; idx : int }

let attr_to_string a = Printf.sprintf "%s:%d" a.rel a.idx
let compare_attr (a : attr) b = Stdlib.compare (a.rel, a.idx) (b.rel, b.idx)

type t = {
  adjacency : (attr, attr list ref) Hashtbl.t;
  anchor_set : (attr, unit) Hashtbl.t;
}

let ensure_vertex g v =
  if not (Hashtbl.mem g.adjacency v) then Hashtbl.add g.adjacency v (ref [])

let add_edge g a b =
  if compare_attr a b <> 0 then begin
    ensure_vertex g a;
    ensure_vertex g b;
    let push v w =
      let l = Hashtbl.find g.adjacency v in
      if not (List.exists (fun x -> compare_attr x w = 0) !l) then l := w :: !l
    in
    push a b;
    push b a
  end

let mark_anchor g v =
  ensure_vertex g v;
  Hashtbl.replace g.anchor_set v ()

(* All (attr, var) occurrences of an atom. *)
let occurrences (a : Ast.atom) =
  List.filteri (fun _ _ -> true) a.args
  |> List.mapi (fun i t -> (i, t))
  |> List.filter_map (function
       | i, Ast.Var v -> Some ({ rel = a.rel; idx = i }, v)
       | _, Ast.Const _ -> None)

let build (delp : Delp.t) =
  let g = { adjacency = Hashtbl.create 64; anchor_set = Hashtbl.create 16 } in
  List.iter
    (fun (r : Ast.rule) ->
      let ev_occ = occurrences r.event in
      let head_occ = occurrences r.head in
      let slow_atoms =
        List.filter_map
          (function Ast.C_atom a -> Some a | Ast.C_cmp _ | Ast.C_assign _ -> None)
          r.conds
      in
      let all_occ =
        ev_occ @ head_occ @ List.concat_map occurrences slow_atoms
      in
      (* Register every attribute as a vertex even if isolated. *)
      List.iter (fun (a, _) -> ensure_vertex g a) all_occ;
      let event_positions_of v =
        List.filter_map
          (fun (a, w) -> if String.equal v w then Some a else None)
          ev_occ
      in
      (* Condition 1: event attr joins a slow-changing attr of the same
         variable; the slow attribute is an anchor. *)
      List.iter
        (fun slow_atom ->
          List.iter
            (fun (sa, v) ->
              mark_anchor g sa;
              List.iter (fun ea -> add_edge g ea sa) (event_positions_of v))
            (occurrences slow_atom))
        slow_atoms;
      (* Condition 2: event attr connects to a head attr of the same
         variable. *)
      List.iter
        (fun (ha, v) -> List.iter (fun ea -> add_edge g ea ha) (event_positions_of v))
        head_occ;
      List.iter
        (function
          | Ast.C_atom _ -> ()
          | Ast.C_cmp (_, lhs, rhs) ->
              (* Condition 3: attributes whose variables appear in the same
                 comparison atom are connected, and (appendix JOIN-ARITH)
                 every participating attribute is an anchor. *)
              let vs = Ast.expr_vars lhs @ Ast.expr_vars rhs in
              let participating =
                List.filter (fun (_, v) -> List.mem v vs) all_occ |> List.map fst
              in
              List.iter (mark_anchor g) participating;
              let ev_participants =
                List.concat_map (fun v -> event_positions_of v) vs
              in
              List.iter
                (fun ea -> List.iter (fun other -> add_edge g ea other) participating)
                ev_participants
          | Ast.C_assign (x, e) ->
              (* Condition 4: RHS event attrs connect to the head attrs
                 holding the assigned variable. *)
              let targets =
                List.filter_map
                  (fun (ha, v) -> if String.equal v x then Some ha else None)
                  head_occ
              in
              List.iter
                (fun v ->
                  List.iter
                    (fun ea -> List.iter (fun ha -> add_edge g ea ha) targets)
                    (event_positions_of v))
                (Ast.expr_vars e))
        r.conds)
    delp.program.rules;
  g

let vertices g =
  Hashtbl.fold (fun v _ acc -> v :: acc) g.adjacency [] |> List.sort compare_attr

let neighbors g v =
  match Hashtbl.find_opt g.adjacency v with
  | None -> []
  | Some l -> List.sort compare_attr !l

let edges g =
  List.concat_map
    (fun v -> List.filter_map (fun w -> if compare_attr v w < 0 then Some (v, w) else None)
                (neighbors g v))
    (vertices g)

let is_anchor g v = Hashtbl.mem g.anchor_set v

let anchors g =
  Hashtbl.fold (fun v () acc -> v :: acc) g.anchor_set [] |> List.sort compare_attr

let bfs g start ~stop =
  let visited = Hashtbl.create 16 in
  let rec go = function
    | [] -> false
    | v :: rest ->
        if Hashtbl.mem visited v then go rest
        else begin
          Hashtbl.add visited v ();
          if stop v then true
          else go (List.rev_append (neighbors g v) rest)
        end
  in
  go [ start ]

let reachable g a b = bfs g a ~stop:(fun v -> compare_attr v b = 0)
let reaches_anchor g a = bfs g a ~stop:(fun v -> is_anchor g v)

let pp fmt g =
  Format.fprintf fmt "@[<v>vertices:";
  List.iter
    (fun v ->
      Format.fprintf fmt "@,  %s%s" (attr_to_string v) (if is_anchor g v then " [anchor]" else ""))
    (vertices g);
  Format.fprintf fmt "@,edges:";
  List.iter
    (fun (a, b) -> Format.fprintf fmt "@,  %s -- %s" (attr_to_string a) (attr_to_string b))
    (edges g);
  Format.fprintf fmt "@]"
