lib/core/backend.mli: Dpc_engine Dpc_ndlog Dpc_net Dpc_util Query_cost Query_result Rows Store_advanced Store_basic Store_exspan
