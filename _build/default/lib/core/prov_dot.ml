open Dpc_ndlog

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Tuple nodes are content-addressed so shared tuples merge across trees;
   rule-execution nodes are addressed by their full body so two executions
   deriving the same tuple from different bodies stay distinct. *)
let tuple_id t = "t_" ^ Dpc_util.Sha1.abbrev (Rows.vid_of t)

let rule_id (tree : Prov_tree.t) =
  let trigger =
    match tree.trigger with
    | Prov_tree.Event ev -> Tuple.canonical ev
    | Prov_tree.Derived sub -> Tuple.canonical sub.output
  in
  "r_"
  ^ Dpc_util.Sha1.abbrev
      (Dpc_util.Sha1.digest_concat
         ((tree.rule :: Tuple.canonical tree.output :: trigger
           :: List.map Tuple.canonical tree.slow)))

let emit_tuple buf ~slow t =
  let style = if slow then ", style=filled, fillcolor=lightgray" else "" in
  Buffer.add_string buf
    (Printf.sprintf "  %s [shape=box, label=\"%s\"%s];\n" (tuple_id t)
       (escape (Tuple.to_string t)) style)

let rec emit buf (tree : Prov_tree.t) =
  let rid = rule_id tree in
  Buffer.add_string buf (Printf.sprintf "  %s [shape=ellipse, label=\"%s\"];\n" rid tree.rule);
  emit_tuple buf ~slow:false tree.output;
  Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" rid (tuple_id tree.output));
  List.iter
    (fun b ->
      emit_tuple buf ~slow:true b;
      Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" (tuple_id b) rid))
    tree.slow;
  match tree.trigger with
  | Prov_tree.Event ev ->
      emit_tuple buf ~slow:false ev;
      Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" (tuple_id ev) rid)
  | Prov_tree.Derived sub ->
      emit buf sub;
      Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" (tuple_id sub.output) rid)

let forest_to_dot ?(name = "provenance") trees =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=BT;\n";
  List.iter (emit buf) trees;
  Buffer.add_string buf "}\n";
  (* Deduplicate repeated node/edge lines introduced by shared tuples. *)
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  let seen = Hashtbl.create 64 in
  let keep line =
    if String.length line > 2 && line.[0] = ' ' then
      if Hashtbl.mem seen line then false
      else begin
        Hashtbl.add seen line ();
        true
      end
    else true
  in
  String.concat "\n" (List.filter keep lines)

let to_dot ?name tree = forest_to_dot ?name [ tree ]
