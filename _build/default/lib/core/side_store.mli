(** Per-node materialized tuples, addressed by digest.

    Query-time reconstruction needs actual tuple contents: ExSPAN resolves
    every body tuple by its [vid]; Basic and Advanced resolve slow-changing
    tuples by [vid] and the input event by [evid] at its ingress node. This
    mirrors the tuples a declarative networking engine keeps in its node
    databases anyway; the paper's storage metric does not include it (it
    serializes only the [prov]/[ruleExec] tables), so we account for it
    separately. *)

type t

val create : nodes:int -> t

val put : t -> node:int -> key:Dpc_util.Sha1.t -> Dpc_ndlog.Tuple.t -> unit
(** Idempotent for an existing key. *)

val get : t -> node:int -> key:Dpc_util.Sha1.t -> Dpc_ndlog.Tuple.t option

val node_bytes : t -> int -> int
val node_count : t -> int -> int
val total_bytes : t -> int

val iter : t -> (node:int -> key:Dpc_util.Sha1.t -> Dpc_ndlog.Tuple.t -> unit) -> unit
(** Visit every entry, in unspecified order. *)
