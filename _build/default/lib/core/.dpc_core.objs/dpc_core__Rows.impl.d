lib/core/rows.ml: Dpc_ndlog Dpc_util Hashtbl List Printf Serialize Sha1 String
