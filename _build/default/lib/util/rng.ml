(* splitmix64, chosen for reproducibility across OCaml versions (the stdlib's
   Random stream is not guaranteed stable between releases). *)
type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Drop two top bits so the value is a non-negative OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  (* 53 significant bits, scaled to [0, 1). *)
  v /. 9007199254740992.0 *. x

let bool t = Int64.logand (next t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next t }
