(** Runtime values carried by NDlog tuples.

    Node addresses are a distinct constructor ([Addr]) because the location
    specifier ("@" on the first attribute of every relation) must always hold
    an address, and the engine routes head tuples by it. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Addr of int  (** a node identifier in the distributed system *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val canonical : t -> string
(** Unambiguous rendering used as SHA-1 input ("i:42", "s:<len>:...",
    "b:true", "@7"): distinct values never collide textually. *)

val canonical_iter : (string -> unit) -> t -> unit
(** [canonical_iter f v] feeds the pieces of [canonical v] to [f] in
    order without concatenating them — a [Str] payload is passed through
    by reference, so hashing a value never copies it. *)

val payload_inline_max : int
(** [Str] payloads longer than this digest via interning (see
    {!interned_digest}); shorter ones are fed verbatim. *)

val interned_digest : t -> (int * Dpc_util.Sha1.t) option
(** [Some (len, sha1 payload)] when the value is a [Str] longer than
    {!payload_inline_max} — the digest comes from a bounded per-domain
    content-keyed cache, so repeated payloads (a packet forwarded hop by
    hop) are hashed once. [None] otherwise. Callers streaming a tuple
    digest must call this for every argument BEFORE starting the stream:
    it digests, and a {!Dpc_util.Sha1.digest_iter} feeder must not. *)

val interned_feed : (string -> unit) -> len:int -> Dpc_util.Sha1.t -> unit
(** Feed the interned rendering ["h:<len>:<raw digest>"] — the digest-path
    stand-in for {!canonical_iter} on a large payload. The ["h:"] lead
    piece is disjoint from every {!canonical_iter} lead piece, keeping the
    digest input injective across the two renderings. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering: [42], ["data"], [true], [n7]. *)

val to_string : t -> string

val addr_exn : t -> int
(** @raise Invalid_argument if the value is not an [Addr]. *)

val int_exn : t -> int
val bool_exn : t -> bool
val str_exn : t -> string

val wire_size : t -> int
(** Bytes this value occupies in a serialized message (used for bandwidth
    accounting). *)

val serialized_size : t -> int
(** Exact byte count {!serialize} emits for this value, computed without
    serializing. *)

val serialize : Dpc_util.Serialize.writer -> t -> unit
val deserialize : Dpc_util.Serialize.reader -> t
