(** The interface between the engine and a provenance maintenance scheme.

    The runtime calls [on_input] when an input event enters the system
    (stage 1 of the online scheme), [on_fire] on every rule execution
    (stage 2), and [on_output] when a tuple with no downstream rules is
    produced (stage 3). The [meta] record is the bookkeeping that rides
    along with each shipped tuple — its wire size is charged to the
    network, which is how the paper's bandwidth-overhead comparison
    arises. *)

type meta = {
  evid : Dpc_util.Sha1.t;  (** hash of the input event tuple *)
  exist_flag : bool;  (** equivalence class already materialized (Advanced) *)
  eqkey : Dpc_util.Sha1.t option;  (** hash of the equivalence-key values *)
  prev : (int * Dpc_util.Sha1.t) option;
      (** (NLoc, NRID): the provenance node of the rule execution that
          derived the current event *)
}

type slow_op = Slow_insert | Slow_delete
(** Which kind of slow-changing update a [sig] broadcast announces. *)

type t = {
  name : string;
  on_input : node:int -> Dpc_ndlog.Tuple.t -> meta;
  on_fire :
    node:int ->
    rule:Dpc_ndlog.Ast.rule ->
    event:Dpc_ndlog.Tuple.t ->
    slow:Dpc_ndlog.Tuple.t list ->
    head:Dpc_ndlog.Tuple.t ->
    meta ->
    meta;
  on_output : node:int -> Dpc_ndlog.Tuple.t -> meta -> unit;
  on_slow_update : node:int -> op:slow_op -> Dpc_ndlog.Tuple.t -> unit;
      (** invoked at each node when it receives the [sig] broadcast after a
          slow-changing insert or delete (§5.5 requires the reset on any
          slow-table update) *)
  meta_bytes : meta -> int;  (** wire size of the piggybacked bookkeeping *)
}

val null : t
(** Maintains nothing; the no-provenance baseline. *)

val initial_meta : Dpc_ndlog.Tuple.t -> meta
(** [evid = sha1 event], no flag, no key, no back-pointer — the meta every
    backend starts from. *)
