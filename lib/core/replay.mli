(** Reactive provenance maintenance by replay (paper §3.2).

    The compression schemes materialize concrete provenance only for the
    relations of interest (the output relation). For everything else the
    paper adopts DTaP's reactive strategy: "only maintaining
    non-deterministic input tuples, and replaying the whole system
    execution to re-construct the provenance information of the tuples of
    less interest during querying."

    This module is that strategy: it records the non-deterministic inputs —
    injected events, the initial slow-changing state, and runtime
    slow-changing updates, in arrival order — and answers a provenance
    query about *any* tuple (including intermediate event tuples that no
    scheme materializes) by re-executing the log against a fresh ExSPAN
    store and querying it.

    Replay reproduces the original execution exactly when slow-changing
    updates quiesce between events (the same assumption Theorem 5 makes);
    an update racing in-flight executions may replay in log order
    instead. *)

type t

val create : delp:Dpc_ndlog.Delp.t -> env:Dpc_engine.Env.t -> nodes:int -> t

val hook : t -> Dpc_engine.Prov_hook.t
(** Records input events (at ingress) and runtime slow-changing updates —
    both inserts and deletes, via the [sig] broadcast each now carries.
    Compose it with another scheme's hook via {!combine} to run compressed
    maintenance and input logging side by side. *)

val combine : Dpc_engine.Prov_hook.t -> Dpc_engine.Prov_hook.t -> Dpc_engine.Prov_hook.t
(** [combine a b] invokes both hooks; [a]'s meta flows through the
    execution (so [a] should be the maintenance scheme, [b] the logger). *)

val record_initial_slow : t -> Dpc_ndlog.Tuple.t list -> unit
(** Call with the same tuples passed to {!Dpc_engine.Runtime.load_slow}. *)

val log_length : t -> int
val storage_bytes : t -> int
(** Serialized size of the input log — the entire storage cost of this
    strategy. *)

val replay_and_query :
  t ->
  topology:Dpc_net.Topology.t ->
  ?evid:Dpc_util.Sha1.t ->
  Dpc_ndlog.Tuple.t ->
  Query_result.t
(** Re-execute the log on a fresh simulator over [topology] with an ExSPAN
    store and query the given tuple. The returned latency includes a
    replay cost proportional to the log length (on top of the local
    query), reflecting that reactive maintenance trades query time for
    storage. *)
