lib/core/query_cost.mli: Dpc_net
