(* Tests for the extension modules: replay-based reactive maintenance
   (§3.2 / DTaP), Graphviz export, and the flood-routing application whose
   multi-path derivations stress the multi-derivation query machinery. *)

open Dpc_ndlog
open Dpc_core

let check = Alcotest.check
let tree_t = Alcotest.testable Prov_tree.pp Prov_tree.equal

let line_link = { Dpc_net.Topology.latency = 0.002; bandwidth = 1e7 }

let line_topology () =
  let topo = Dpc_net.Topology.create ~n:3 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  Dpc_net.Topology.add_link topo 1 2 line_link;
  topo

let routes =
  [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
    Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ]

(* ------------------------------------------------------------------ *)
(* Replay *)

(* A forwarding world running Advanced maintenance AND input logging. *)
let replay_world () =
  let topo = line_topology () in
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let replay = Replay.create ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let hook = Replay.combine (Backend.hook backend) (Replay.hook replay) in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env ~hook ()
  in
  Dpc_engine.Runtime.load_slow runtime routes;
  Replay.record_initial_slow replay routes;
  (topo, routing, runtime, backend, replay)

let test_replay_answers_intermediate_tuples () =
  let topo, routing, runtime, backend, replay = replay_world () in
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x");
  Dpc_engine.Runtime.run runtime;
  (* The intermediate packet at n1 is a tuple of "less interest": the
     Advanced store has no prov row for it... *)
  let intermediate =
    Tuple.make "packet" [ Value.Addr 1; Value.Addr 0; Value.Addr 2; Value.Str "x" ]
  in
  let direct = Backend.query backend ~cost:Query_cost.free ~routing intermediate in
  check Alcotest.int "advanced cannot answer" 0 (List.length direct.trees);
  (* ...but replay reconstructs it. *)
  let replayed = Replay.replay_and_query replay ~topology:topo intermediate in
  check Alcotest.int "replay answers" 1 (List.length replayed.trees);
  let tree = List.hd replayed.trees in
  check (Alcotest.list Alcotest.string) "one-rule derivation" [ "r1" ]
    (Prov_tree.rules_root_to_leaf tree);
  check Alcotest.bool "event is the injected packet" true
    (Tuple.equal (Prov_tree.event_of tree)
       (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x"))

let test_replay_matches_live_exspan () =
  (* Replay must reproduce exactly the trees a live ExSPAN run maintains. *)
  let topo, routing, runtime, _, replay = replay_world () in
  List.iter
    (fun payload ->
      Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload);
      Dpc_engine.Runtime.run runtime)
    [ "a"; "b" ];
  let live =
    let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
    let delp = Dpc_apps.Forwarding.delp () in
    let backend = Backend.make Backend.S_exspan ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
    let rt =
      Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env
        ~hook:(Backend.hook backend) ()
    in
    Dpc_engine.Runtime.load_slow rt routes;
    List.iter
      (fun payload ->
        Dpc_engine.Runtime.inject rt (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload))
      [ "a"; "b" ];
    Dpc_engine.Runtime.run rt;
    backend
  in
  List.iter
    (fun payload ->
      let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload in
      let live_trees = (Backend.query live ~cost:Query_cost.free ~routing out).trees in
      let replay_trees = (Replay.replay_and_query replay ~topology:topo out).trees in
      check (Alcotest.list tree_t) ("trees for " ^ payload) live_trees replay_trees)
    [ "a"; "b" ]

let test_replay_handles_updates () =
  let topo, _, runtime, _, replay = replay_world () in
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"before");
  Dpc_engine.Runtime.run runtime;
  (* Redirect n1's next hop for destination n2... there is no alternate
     path on a line, so instead retarget destination routing through a
     deleted+reinserted entry and verify both epochs replay correctly. *)
  (* The delete's sig broadcast reaches the replay hook, which logs the
     E_delete on its own — no manual recording needed. *)
  ignore (Dpc_engine.Runtime.delete_slow_runtime runtime (Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1));
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"lost");
  Dpc_engine.Runtime.run runtime;
  Dpc_engine.Runtime.insert_slow_runtime runtime (Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1);
  Dpc_engine.Runtime.run runtime;
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"after");
  Dpc_engine.Runtime.run runtime;
  (* "before" and "after" were delivered; "lost" died at n0. *)
  let q payload =
    (Replay.replay_and_query replay ~topology:topo
       (Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload))
      .trees
  in
  check Alcotest.int "before delivered" 1 (List.length (q "before"));
  check Alcotest.int "lost dropped" 0 (List.length (q "lost"));
  check Alcotest.int "after delivered" 1 (List.length (q "after"));
  check Alcotest.int "log has 3 events + 1 delete + 1 insert" 5 (Replay.log_length replay)

let test_replay_storage_is_small () =
  let topo, _, runtime, backend, replay = replay_world () in
  ignore topo;
  for i = 1 to 50 do
    Dpc_engine.Runtime.inject runtime
      (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "p%d" i))
  done;
  Dpc_engine.Runtime.run runtime;
  (* The log stores one tuple per event; even the Advanced store's prov
     deltas (20 x ~76B) plus chain exceed a 50-event log only because the
     log keeps payloads; compare against ExSPAN instead, which it
     replaces. *)
  let exspan_equiv =
    let topo = line_topology () in
    let routing = Dpc_net.Routing.compute topo in
    let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
    let delp = Dpc_apps.Forwarding.delp () in
    let b = Backend.make Backend.S_exspan ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
    let rt = Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env
               ~hook:(Backend.hook b) () in
    Dpc_engine.Runtime.load_slow rt routes;
    for i = 1 to 50 do
      Dpc_engine.Runtime.inject rt
        (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "p%d" i))
    done;
    Dpc_engine.Runtime.run rt;
    Rows.provenance_bytes (Backend.total_storage b)
  in
  check Alcotest.bool "log smaller than ExSPAN tables" true
    (Replay.storage_bytes replay < exspan_equiv);
  ignore backend

let test_replay_latency_includes_log_cost () =
  let topo, _, runtime, _, replay = replay_world () in
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x");
  Dpc_engine.Runtime.run runtime;
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"x" in
  let r = Replay.replay_and_query replay ~topology:topo out in
  check Alcotest.bool "latency positive" true (r.latency > 0.0)

(* ------------------------------------------------------------------ *)
(* Prov_dot *)

let sample_tree () =
  {
    Prov_tree.rule = "r2";
    output = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"d\"q";
    slow = [];
    trigger =
      Derived
        {
          Prov_tree.rule = "r1";
          output = Tuple.make "packet" [ Value.Addr 2; Value.Addr 0; Value.Addr 2; Value.Str "d\"q" ];
          slow = [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:2 ];
          trigger = Event (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"d\"q");
        };
  }

let count_occurrences hay needle =
  let n = String.length needle in
  let rec go i acc =
    if i + n > String.length hay then acc
    else if String.equal (String.sub hay i n) needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_dot_well_formed () =
  let dot = Prov_dot.to_dot (sample_tree ()) in
  check Alcotest.bool "digraph" true (String.length dot > 0 && count_occurrences dot "digraph" = 1);
  check Alcotest.int "balanced braces" (count_occurrences dot "{") (count_occurrences dot "}");
  check Alcotest.int "two rule nodes" 2 (count_occurrences dot "shape=ellipse");
  check Alcotest.int "one shaded slow tuple" 1 (count_occurrences dot "fillcolor=lightgray");
  (* Quotes in payloads are escaped: every line must contain an even number
     of unescaped double quotes, or the DOT syntax is broken. *)
  List.iter
    (fun line ->
      let unescaped = ref 0 in
      String.iteri
        (fun i c -> if c = '"' && (i = 0 || line.[i - 1] <> '\\') then incr unescaped)
        line;
      if !unescaped mod 2 <> 0 then Alcotest.failf "unbalanced quotes in %S" line)
    (String.split_on_char '\n' dot)

let test_dot_forest_merges_shared_tuples () =
  let t = sample_tree () in
  let alone = Prov_dot.to_dot t in
  let forest = Prov_dot.forest_to_dot [ t; t ] in
  (* An identical second tree adds no lines. *)
  check Alcotest.int "same line count" (count_occurrences alone "\n") (count_occurrences forest "\n")

let test_dot_deterministic () =
  let t = sample_tree () in
  check Alcotest.string "stable output" (Prov_dot.to_dot t) (Prov_dot.to_dot t)

(* ------------------------------------------------------------------ *)
(* Flood routing *)

let diamond () =
  let topo = Dpc_net.Topology.create ~n:4 in
  List.iter
    (fun (a, b) -> Dpc_net.Topology.add_link topo a b line_link)
    [ (0, 1); (1, 3); (0, 2); (2, 3) ];
  topo

let flood_world scheme =
  let topo = diamond () in
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Flood_routing.delp () in
  let backend = Backend.make scheme ~delp ~env:Dpc_apps.Flood_routing.env ~nodes:4 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Flood_routing.env
      ~hook:(Backend.hook backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime (Dpc_apps.Flood_routing.link_costs_of_topology topo);
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Flood_routing.adv ~at:0 ~dst:0 ~cost:0);
  Dpc_engine.Runtime.run runtime;
  (runtime, backend, routing)

let test_flood_keys () =
  let keys = Dpc_analysis.Equi_keys.compute (Dpc_apps.Flood_routing.delp ()) in
  (* The destination (adv:1) is not a key: flooding is destination-blind. *)
  check (Alcotest.list Alcotest.int) "keys" [ 0; 2 ] (Dpc_analysis.Equi_keys.keys keys)

let test_flood_terminates () =
  let runtime, _, _ = flood_world Backend.S_exspan in
  let stats = Dpc_engine.Runtime.stats runtime in
  check Alcotest.bool "bounded executions" true (stats.fired > 0 && stats.fired < 1000)

let test_flood_two_path_derivations () =
  List.iter
    (fun scheme ->
      let _, backend, routing = flood_world scheme in
      let cand = Dpc_apps.Flood_routing.route_cand ~at:3 ~dst:0 ~cost:2 in
      let result = Backend.query backend ~cost:Query_cost.free ~routing cand in
      check Alcotest.int
        (Backend.scheme_name scheme ^ ": two derivations through the diamond") 2
        (List.length result.trees))
    [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

let test_flood_schemes_agree () =
  let trees scheme =
    let _, backend, routing = flood_world scheme in
    let cand = Dpc_apps.Flood_routing.route_cand ~at:3 ~dst:0 ~cost:2 in
    (Backend.query backend ~cost:Query_cost.free ~routing cand).trees
  in
  let reference = trees Backend.S_exspan in
  List.iter
    (fun scheme ->
      check (Alcotest.list tree_t) (Backend.scheme_name scheme) reference (trees scheme))
    [ Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

(* ------------------------------------------------------------------ *)
(* Relations of interest (§3.2): the user asks for concrete provenance of
   an intermediate relation. *)

let interest_world scheme =
  let topo = line_topology () in
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:3 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env
      ~hook:(Backend.hook backend) ~interest:[ "packet" ] ()
  in
  Dpc_engine.Runtime.load_slow runtime routes;
  (runtime, backend, routing)

let test_interest_queries_intermediate name scheme =
  let runtime, backend, routing = interest_world scheme in
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x");
  Dpc_engine.Runtime.run runtime;
  (* The intermediate packet at n1 now has concrete provenance. *)
  let intermediate =
    Dpc_ndlog.Tuple.make "packet"
      [ Dpc_ndlog.Value.Addr 1; Dpc_ndlog.Value.Addr 0; Dpc_ndlog.Value.Addr 2;
        Dpc_ndlog.Value.Str "x" ]
  in
  let result = Backend.query backend ~cost:Query_cost.free ~routing intermediate in
  check Alcotest.int (name ^ ": intermediate queryable") 1 (List.length result.trees);
  check (Alcotest.list Alcotest.string) (name ^ ": one-rule chain") [ "r1" ]
    (Prov_tree.rules_root_to_leaf (List.hd result.trees));
  (* The terminal output is still recorded and queryable. *)
  let out = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"x" in
  let r = Backend.query backend ~cost:Query_cost.free ~routing out in
  check Alcotest.int (name ^ ": terminal still queryable") 1 (List.length r.trees);
  check Alcotest.int (name ^ ": outputs list stays terminal-only") 1
    (List.length (Dpc_engine.Runtime.outputs runtime))

let test_interest_advanced_compresses () =
  (* Repeated packets of one class still compress: the interest records are
     per-event prov deltas against the shared chain prefix. *)
  let runtime, backend, routing = interest_world Backend.S_advanced in
  for i = 1 to 10 do
    Dpc_engine.Runtime.inject runtime
      (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:(Printf.sprintf "p%d" i))
  done;
  Dpc_engine.Runtime.run runtime;
  let storage = Backend.total_storage backend in
  check Alcotest.int "one shared chain" 3 storage.Rows.rule_exec_rows;
  (* Per packet: one delta at n1 (intermediate packet@n1), one at n2
     (packet@n2), one at n2 for recv. packet@n0 is the input event (no rule
     derived it), so no delta there. *)
  check Alcotest.int "three deltas per packet" 30 storage.Rows.prov_rows;
  let mid =
    Dpc_ndlog.Tuple.make "packet"
      [ Dpc_ndlog.Value.Addr 1; Dpc_ndlog.Value.Addr 0; Dpc_ndlog.Value.Addr 2;
        Dpc_ndlog.Value.Str "p7" ]
  in
  check Alcotest.int "late packet's intermediate queryable" 1
    (List.length (Backend.query backend ~cost:Query_cost.free ~routing mid).trees)

let test_interest_rejects_unknown_relation () =
  let topo = line_topology () in
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  Alcotest.check_raises "route is not derived"
    (Invalid_argument
       "Runtime.create: interest relations [\"route\"] are not derived by the program")
    (fun () ->
      ignore
        (Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env
           ~hook:Dpc_engine.Prov_hook.null ~interest:[ "route" ] ()))

let interest_cases =
  List.map
    (fun s ->
      Alcotest.test_case (Backend.scheme_name s) `Quick (fun () ->
        test_interest_queries_intermediate (Backend.scheme_name s) s))
    [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

let () =
  Alcotest.run "dpc_extensions"
    [
      ( "replay (§3.2 reactive maintenance)",
        [
          Alcotest.test_case "answers intermediate tuples" `Quick
            test_replay_answers_intermediate_tuples;
          Alcotest.test_case "matches live ExSPAN" `Quick test_replay_matches_live_exspan;
          Alcotest.test_case "handles updates and deletes" `Quick test_replay_handles_updates;
          Alcotest.test_case "log smaller than ExSPAN tables" `Quick
            test_replay_storage_is_small;
          Alcotest.test_case "latency includes log cost" `Quick
            test_replay_latency_includes_log_cost;
        ] );
      ( "prov_dot",
        [
          Alcotest.test_case "well-formed" `Quick test_dot_well_formed;
          Alcotest.test_case "forest merges shared tuples" `Quick
            test_dot_forest_merges_shared_tuples;
          Alcotest.test_case "deterministic" `Quick test_dot_deterministic;
        ] );
      ("relations of interest", interest_cases
        @ [
            Alcotest.test_case "advanced compresses" `Quick test_interest_advanced_compresses;
            Alcotest.test_case "rejects unknown relation" `Quick
              test_interest_rejects_unknown_relation;
          ]);
      ( "flood routing",
        [
          Alcotest.test_case "destination is not a key" `Quick test_flood_keys;
          Alcotest.test_case "terminates" `Quick test_flood_terminates;
          Alcotest.test_case "two-path derivations" `Quick test_flood_two_path_derivations;
          Alcotest.test_case "schemes agree" `Quick test_flood_schemes_agree;
        ] );
    ]
