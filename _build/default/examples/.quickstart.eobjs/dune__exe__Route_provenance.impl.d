examples/route_provenance.ml: Backend Dpc_analysis Dpc_apps Dpc_core Dpc_engine Dpc_ndlog Dpc_net Format List Printf Prov_dot Prov_tree Query_cost
