(** The [dpcd] launcher and real-process transparency oracle.

    {!run_scheme} spawns one daemon process per scenario node (each a
    fresh [dpcd serve] of the given executable), drives the {!Scenario}
    phases over the control plane, [kill -9]s node 1's process mid-run
    and respawns it against the same data directory, and finally
    compares every daemon's store and database digests against the
    in-process simulator reference ({!Scenario.simulate}) — byte
    equality or an error naming the diverging node.

    Phase separation uses a status barrier: all daemons report zero
    unacked frames and unchanged send/receive counters across two
    consecutive polls. Counters are monotonic and every delivery
    enqueues its causal sends before the ack leaves, so the double poll
    cannot observe a quiet instant of an active cluster.

    The oracle's partition phase ({!Scenario} phase [part]) drives
    {!Ctrl.request.Block}/[Unblock]: both sides of the 0-1 link refuse
    each other, packets pile up in node 0's durable outbox, node 1 is
    killed and restarted {e inside} the outage, and after the heal the
    outbox re-offer must reconcile with the restarted daemon exactly
    once. {!run_soak} is the long-running variant: sustained rounds of
    traffic with a periodic {!Ctrl.request.Compact}, asserting the
    ledger stays under a round-independent byte ceiling. *)

val addr_of : dir:string -> int -> string
(** The address convention both sides derive from the data directory:
    ["unix:<dir>/node-<i>.sock"]. *)

val scheme_arg : Dpc_core.Backend.scheme -> string
(** The [--scheme] spelling: [exspan], [basic], [advanced],
    [advanced-interclass]. *)

val scheme_of_arg : string -> Dpc_core.Backend.scheme option

val run_scheme :
  ?chaos:Dpc_net.Transport.fault_config * int ->
  exe:string -> dir:string -> Dpc_core.Backend.scheme -> (string, string) result
(** Run the oracle for one scheme. [exe] is the [dpcd] binary (the
    launcher respawns it as [<exe> serve ...]); [dir] is a fresh
    directory for sockets, daemon logs ([node-<i>.log]), and the
    daemons' durable state. [chaos] is forwarded to every spawned
    daemon as [--drop]/[--dup]/[--delay]/[--delay-max]/[--chaos-seed]
    — hashed frame corruption on the real wire
    ({!Dpc_net.Socket.set_chaos}). [Ok summary] on digest equality;
    [Error] describes the first failure. Spawned processes are always
    reaped, whatever the outcome. *)

val run_all :
  ?chaos:Dpc_net.Transport.fault_config * int ->
  exe:string -> dir:string -> Dpc_core.Backend.scheme list -> bool
(** {!run_scheme} for each scheme in its own subdirectory, printing one
    PASS/FAIL line per scheme to stdout; [true] iff all passed. *)

val run_soak :
  ?chaos:Dpc_net.Transport.fault_config * int ->
  exe:string ->
  dir:string ->
  rounds:int ->
  per_round:int ->
  Dpc_core.Backend.scheme ->
  (string, string) result
(** The sustained-traffic oracle: [rounds] rounds of [per_round]
    packets, quiesced and {!Ctrl.request.Compact}ed between rounds.
    Fails if any daemon's compacted outbox ledger exceeds the
    round-independent byte ceiling, if the sink's output count is
    wrong, or if the final digests diverge from
    {!Scenario.simulate_soak}. *)

val run_soak_all :
  ?chaos:Dpc_net.Transport.fault_config * int ->
  exe:string ->
  dir:string ->
  rounds:int ->
  per_round:int ->
  Dpc_core.Backend.scheme list ->
  bool
(** {!run_soak} per scheme in its own subdirectory with PASS/FAIL
    lines; [true] iff all passed. *)
