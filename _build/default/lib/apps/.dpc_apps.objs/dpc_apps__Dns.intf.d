lib/apps/dns.mli: Dpc_engine Dpc_ndlog
