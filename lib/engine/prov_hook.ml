type meta = {
  evid : Dpc_util.Sha1.t;
  exist_flag : bool;
  eqkey : Dpc_util.Sha1.t option;
  prev : (int * Dpc_util.Sha1.t) option;
}

type slow_op = Slow_insert | Slow_delete

type t = {
  name : string;
  on_input : node:int -> Dpc_ndlog.Tuple.t -> meta;
  on_fire :
    node:int ->
    rule:Dpc_ndlog.Ast.rule ->
    event:Dpc_ndlog.Tuple.t ->
    slow:Dpc_ndlog.Tuple.t list ->
    head:Dpc_ndlog.Tuple.t ->
    meta ->
    meta;
  on_output : node:int -> Dpc_ndlog.Tuple.t -> meta -> unit;
  on_slow_update : node:int -> op:slow_op -> Dpc_ndlog.Tuple.t -> unit;
  meta_bytes : meta -> int;
}

let initial_meta event =
  {
    evid = Dpc_ndlog.Tuple.digest event;
    exist_flag = false;
    eqkey = None;
    prev = None;
  }

let null =
  {
    name = "none";
    on_input = (fun ~node:_ event -> initial_meta event);
    on_fire = (fun ~node:_ ~rule:_ ~event:_ ~slow:_ ~head:_ meta -> meta);
    on_output = (fun ~node:_ _ _ -> ());
    on_slow_update = (fun ~node:_ ~op:_ _ -> ());
    meta_bytes = (fun _ -> 0);
  }
