lib/engine/db.ml: Dpc_ndlog Dpc_util Hashtbl List String Tuple
