(** DNS experiment driver (§6.2): a synthetic name-server hierarchy with
    delegations mirroring the tree topology, URLs placed on authoritative
    servers, and Zipf-distributed request streams (per Jung et al., as the
    paper adopts). *)

type spec = {
  tree : Dpc_net.Tree_topo.t;
  domains : string array;  (** domain of each server; [""] at the root *)
  urls : string array;
  authority : int array;  (** server holding each URL's address record *)
  clients : int array;  (** nodes issuing requests *)
}

val generate :
  rng:Dpc_util.Rng.t ->
  servers:int ->
  backbone_depth:int ->
  urls:int ->
  clients:int ->
  spec
(** @raise Invalid_argument on non-positive counts or [urls]/[clients]
    exceeding what the hierarchy can host. *)

val paper_spec : rng:Dpc_util.Rng.t -> ?urls:int -> unit -> spec
(** 100 servers, backbone depth 27, 38 URLs, 10 clients — the §6.2
    parameters. *)

val slow_tuples : spec -> Dpc_ndlog.Tuple.t list
(** [rootServer] at every client, [nameServer] delegations along tree
    edges, and [addressRecord]s at the authorities. *)

type t = {
  spec : spec;
  sim : Dpc_net.Sim.t;
  runtime : Dpc_engine.Runtime.t;
  backend : Dpc_core.Backend.t;
  routing : Dpc_net.Routing.t;
}

val setup :
  scheme:Dpc_core.Backend.scheme ->
  spec ->
  ?bucket_width:float ->
  ?record_outputs:bool ->
  unit ->
  t
(** [record_outputs] (default [true]) is passed to the runtime; turn it
    off in long measurement runs that never call {!replies}. *)

val inject_requests :
  t -> rng:Dpc_util.Rng.t -> rate:float -> duration:float -> int
(** Aggregate [rate] requests/second for [duration] seconds; each request
    draws its URL from a Zipf distribution over the spec's URLs and its
    client uniformly. Returns the number injected. *)

val inject_n_requests : t -> rng:Dpc_util.Rng.t -> total:int -> duration:float -> int
(** Exactly [total] requests spread evenly over [duration] (Fig 14). *)

val run : ?until:float -> t -> unit

val replies : t -> Dpc_ndlog.Tuple.t list
