lib/apps/mirror.mli: Dpc_engine Dpc_ndlog
