(* The canonical string and its SHA-1 digest are memoized: the engine
   re-canonicalizes the same tuple value at every hop (db keys, vids), and
   the digest is the single most expensive per-firing operation. The memo
   fields are invisible outside this module — [t] is abstract, and
   [equal]/[compare]/[hash] look only at the relation and arguments. *)
type t = {
  rel : string;
  args : Value.t array;
  mutable canonical_memo : string;  (* "" = not yet computed *)
  mutable digest_memo : Dpc_util.Sha1.t option;
}

let build rel args = { rel; args; canonical_memo = ""; digest_memo = None }

let make rel args =
  match args with
  | [] -> invalid_arg "Tuple.make: empty argument list"
  | Value.Addr _ :: _ -> build rel (Array.of_list args)
  | (Value.Int _ | Value.Str _ | Value.Bool _) :: _ ->
      invalid_arg "Tuple.make: first attribute must be a node address"

let rel t = t.rel
let args t = t.args
let arity t = Array.length t.args
let loc t = Value.addr_exn t.args.(0)

let arg t i =
  if i < 0 || i >= Array.length t.args then invalid_arg "Tuple.arg: index out of range";
  t.args.(i)

let equal a b =
  String.equal a.rel b.rel
  && Array.length a.args = Array.length b.args
  && Array.for_all2 Value.equal a.args b.args

let compare a b =
  match String.compare a.rel b.rel with
  | 0 -> Stdlib.compare a.args b.args
  | c -> c

let hash t = Hashtbl.hash (t.rel, t.args)

(* Feed the canonical rendering piecewise: rel, "(", comma-separated value
   pieces, ")". [canonical] and [digest] MUST observe the same byte
   sequence — the digest streams these pieces without building the
   string. *)
let canonical_feed t f =
  f t.rel;
  f "(";
  Array.iteri
    (fun i v ->
      if i > 0 then f ",";
      Value.canonical_iter f v)
    t.args;
  f ")"

let canonical t =
  if t.canonical_memo <> "" then t.canonical_memo
  else begin
    (* Size the buffer from the serialized form (same payload, small
       per-field framing differences) so a large payload never forces
       repeated doubling copies. *)
    let estimate =
      String.length t.rel + 2
      + Array.fold_left (fun acc v -> acc + Value.wire_size v + 12) 0 t.args
    in
    let buf = Buffer.create estimate in
    canonical_feed t (Buffer.add_string buf);
    let s = Buffer.contents buf in
    t.canonical_memo <- s;
    s
  end

(* The digest streams the canonical pieces straight into SHA-1 — except
   that large [Str] payloads are INTERNED: the stream carries the
   payload's own cached digest ("h:<len>:<raw>") instead of its bytes, so
   a big payload is hashed once per distinct content, not once per tuple
   instance carrying it (each hop of a forwarding chain builds a fresh
   head tuple around the same payload). The digest is therefore sha1 of
   the canonical string with large payloads replaced by their interned
   rendering — NOT sha1 (canonical t) — but it remains injective and
   deterministic, which is all the schemes key on. Payload digests are
   computed before the stream starts: a digest_iter feeder must not
   itself digest (the streaming context is shared). *)
let digest t =
  match t.digest_memo with
  | Some d -> d
  | None ->
      let interned = Array.map Value.interned_digest t.args in
      let d =
        Dpc_util.Sha1.digest_iter (fun f ->
          f t.rel;
          f "(";
          Array.iteri
            (fun i v ->
              if i > 0 then f ",";
              match interned.(i) with
              | Some (len, pd) -> Value.interned_feed f ~len pd
              | None -> Value.canonical_iter f v)
            t.args;
          f ")")
      in
      t.digest_memo <- Some d;
      d

let pp fmt t =
  Format.fprintf fmt "%s(@@%a" t.rel Value.pp t.args.(0);
  for i = 1 to Array.length t.args - 1 do
    Format.fprintf fmt ", %a" Value.pp t.args.(i)
  done;
  Format.pp_print_char fmt ')'

let to_string t = Format.asprintf "%a" pp t

let wire_size t =
  String.length t.rel + Array.fold_left (fun acc v -> acc + Value.wire_size v) 0 t.args

let serialize w t =
  let open Dpc_util.Serialize in
  write_string w t.rel;
  write_varint w (Array.length t.args);
  Array.iter (Value.serialize w) t.args

(* Must agree byte-for-byte with [serialize]; Db's incremental byte
   counters rely on per-tuple sizes summing to the whole-store size. *)
let serialized_size t =
  let open Dpc_util.Serialize in
  let rel_len = String.length t.rel in
  varint_size rel_len + rel_len
  + varint_size (Array.length t.args)
  + Array.fold_left (fun acc v -> acc + Value.serialized_size v) 0 t.args

let deserialize r =
  let open Dpc_util.Serialize in
  let rel = read_string r in
  let n = read_varint r in
  let args = List.init n (fun _ -> Value.deserialize r) in
  match args with
  | Value.Addr _ :: _ -> build rel (Array.of_list args)
  | [] | (Value.Int _ | Value.Str _ | Value.Bool _) :: _ ->
      raise (Corrupt "Tuple.deserialize: malformed tuple")
