bin/delprun.mli:
