lib/workload/measure.mli: Dpc_core Dpc_net
