type spec = {
  tree : Dpc_net.Tree_topo.t;
  domains : string array;
  urls : string array;
  authority : int array;
  clients : int array;
}

let dns_link = { Dpc_net.Topology.latency = 0.010; bandwidth = 100e6 /. 8.0 }

let generate ~rng ~servers ~backbone_depth ~urls ~clients =
  if urls <= 0 || clients <= 0 then
    invalid_arg "Dns_workload.generate: counts must be positive";
  if servers < 2 then invalid_arg "Dns_workload.generate: need at least two servers";
  let tree = Dpc_net.Tree_topo.generate ~rng ~n:servers ~backbone_depth ~link:dns_link in
  let domains = Array.make servers "" in
  (* Assign each non-root server the label "d<v>" under its parent's
     domain; tree nodes are created parent-first, so a simple pass works. *)
  for v = 1 to servers - 1 do
    let parent = tree.parent.(v) in
    let label = Printf.sprintf "d%d" v in
    domains.(v) <- (if String.equal domains.(parent) "" then label
                    else label ^ "." ^ domains.(parent))
  done;
  (* URLs live on random non-root servers; several URLs may share an
     authority. *)
  let authority = Array.init urls (fun _ -> 1 + Dpc_util.Rng.int rng (servers - 1)) in
  let url_names = Array.init urls (fun k -> Printf.sprintf "www%d.%s" k domains.(authority.(k))) in
  let all = Array.init servers (fun v -> v) in
  Dpc_util.Rng.shuffle rng all;
  let clients = Array.sub all 0 (min clients servers) in
  { tree; domains; urls = url_names; authority; clients }

let paper_spec ~rng ?(urls = 38) () =
  generate ~rng ~servers:100 ~backbone_depth:27 ~urls ~clients:10

let slow_tuples spec =
  let servers = Array.length spec.domains in
  let delegations =
    List.concat_map
      (fun v ->
        if v = 0 then []
        else
          [ Dpc_apps.Dns.name_server ~at:spec.tree.parent.(v) ~domain:spec.domains.(v)
              ~server:v ])
      (List.init servers (fun i -> i))
  in
  let roots =
    Array.to_list (Array.map (fun h -> Dpc_apps.Dns.root_server ~host:h ~root:0) spec.clients)
  in
  let records =
    Array.to_list
      (Array.mapi
         (fun k auth ->
           Dpc_apps.Dns.address_record ~at:auth ~url:spec.urls.(k)
             ~ip:(Printf.sprintf "10.0.%d.%d" (k / 256) (k mod 256)))
         spec.authority)
  in
  roots @ delegations @ records

type t = {
  spec : spec;
  sim : Dpc_net.Sim.t;
  runtime : Dpc_engine.Runtime.t;
  backend : Dpc_core.Backend.t;
  routing : Dpc_net.Routing.t;
}

let setup ~scheme spec ?(bucket_width = 1.0) ?(record_outputs = true) () =
  let topology = spec.tree.topology in
  let routing = Dpc_net.Routing.compute topology in
  let sim = Dpc_net.Sim.create ~bucket_width ~topology ~routing () in
  let delp = Dpc_apps.Dns.delp () in
  let backend =
    Dpc_core.Backend.make scheme ~delp ~env:Dpc_apps.Dns.env
      ~nodes:(Dpc_net.Topology.size topology)
  in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
      ~env:Dpc_apps.Dns.env ~hook:(Dpc_core.Backend.hook backend)
      ~record_outputs ~nodes:(Dpc_core.Backend.nodes backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime (slow_tuples spec);
  { spec; sim; runtime; backend; routing }

let inject_spread t ~rng ~total ~duration =
  let zipf = Dpc_util.Zipf.create (Array.length t.spec.urls) in
  let interval = duration /. float_of_int (max 1 total) in
  for seq = 0 to total - 1 do
    let url_rank = Dpc_util.Zipf.sample zipf rng in
    let client = Dpc_util.Rng.pick rng t.spec.clients in
    Dpc_engine.Runtime.inject t.runtime
      ~delay:(float_of_int seq *. interval)
      (Dpc_apps.Dns.url ~host:client ~url:t.spec.urls.(url_rank) ~rqid:seq)
  done;
  total

let inject_requests t ~rng ~rate ~duration =
  inject_spread t ~rng ~total:(int_of_float (rate *. duration)) ~duration

let inject_n_requests t ~rng ~total ~duration = inject_spread t ~rng ~total ~duration

let run ?until t = Dpc_engine.Runtime.run ?until t.runtime

let replies t = List.map fst (Dpc_engine.Runtime.outputs t.runtime)
