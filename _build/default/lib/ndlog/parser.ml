open Lexer

type state = { toks : located array; mutable pos : int }

exception Parse_error of string

let fail_at (t : located) message =
  raise (Parse_error (Printf.sprintf "%d:%d: %s" t.line t.col message))

let cur st = st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok =
  let t = cur st in
  if t.tok = tok then advance st
  else fail_at t (Printf.sprintf "expected %s, found %s" (describe tok) (describe t.tok))

let expect_ident st =
  let t = cur st in
  match t.tok with
  | T_ident s ->
      advance st;
      s
  | _ -> fail_at t (Printf.sprintf "expected an identifier, found %s" (describe t.tok))

let cmp_of_token = function
  | T_eq -> Some Ast.Eq
  | T_neq -> Some Ast.Neq
  | T_lt -> Some Ast.Lt
  | T_leq -> Some Ast.Leq
  | T_gt -> Some Ast.Gt
  | T_geq -> Some Ast.Geq
  | _ -> None

(* --------------------------------------------------------------- *)
(* Expressions: precedence climbing with two levels. *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec go lhs =
    match (cur st).tok with
    | T_plus ->
        advance st;
        go (Ast.E_binop (Ast.Add, lhs, parse_multiplicative st))
    | T_minus ->
        advance st;
        go (Ast.E_binop (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  go lhs

and parse_multiplicative st =
  let lhs = parse_primary st in
  let rec go lhs =
    match (cur st).tok with
    | T_star ->
        advance st;
        go (Ast.E_binop (Ast.Mul, lhs, parse_primary st))
    | T_slash ->
        advance st;
        go (Ast.E_binop (Ast.Div, lhs, parse_primary st))
    | T_percent ->
        advance st;
        go (Ast.E_binop (Ast.Mod, lhs, parse_primary st))
    | _ -> lhs
  in
  go lhs

and parse_primary st =
  let t = cur st in
  match t.tok with
  | T_int i ->
      advance st;
      Ast.E_const (Value.Int i)
  | T_minus ->
      advance st;
      let e = parse_primary st in
      begin
        match e with
        | Ast.E_const (Value.Int i) -> Ast.E_const (Value.Int (-i))
        | _ -> Ast.E_binop (Ast.Sub, Ast.E_const (Value.Int 0), e)
      end
  | T_str s ->
      advance st;
      Ast.E_const (Value.Str s)
  | T_bool b ->
      advance st;
      Ast.E_const (Value.Bool b)
  | T_var v ->
      advance st;
      Ast.E_var v
  | T_ident f ->
      advance st;
      expect st T_lparen;
      let args = parse_expr_list st in
      expect st T_rparen;
      Ast.E_call (f, args)
  | T_lparen ->
      advance st;
      let e = parse_expr st in
      expect st T_rparen;
      e
  | _ -> fail_at t (Printf.sprintf "expected an expression, found %s" (describe t.tok))

and parse_expr_list st =
  let first = parse_expr st in
  let rec go acc =
    match (cur st).tok with
    | T_comma ->
        advance st;
        go (parse_expr st :: acc)
    | _ -> List.rev acc
  in
  go [ first ]

(* --------------------------------------------------------------- *)
(* Atoms: rel(@First, T2, ...). The leading '@' is required. *)

let term_of_expr t = function
  | Ast.E_var v -> Ast.Var v
  | Ast.E_const c -> Ast.Const c
  | Ast.E_binop _ | Ast.E_call _ ->
      fail_at t "relation arguments must be variables or constants"

let parse_atom_args st =
  (* Returns the '@'-marked flag and argument expressions. *)
  expect st T_lparen;
  let at_marked =
    match (cur st).tok with
    | T_at ->
        advance st;
        true
    | _ -> false
  in
  let args = parse_expr_list st in
  expect st T_rparen;
  (at_marked, args)

let parse_head_atom st =
  let t = cur st in
  let rel = expect_ident st in
  let at_marked, args = parse_atom_args st in
  if not at_marked then
    fail_at t (Printf.sprintf "head relation %S is missing its location specifier '@'" rel);
  { Ast.rel; args = List.map (term_of_expr t) args }

(* A body element beginning with ident '(' is an atom when followed by
   ',' or '.', and a function-call comparison when followed by a
   comparison operator. *)
let parse_body_elem st =
  let t = cur st in
  match t.tok, (st.toks.(min (st.pos + 1) (Array.length st.toks - 1))).tok with
  | T_var v, T_assign ->
      advance st;
      advance st;
      Ast.C_assign (v, parse_expr st)
  | T_ident rel, T_lparen -> begin
      advance st;
      let at_marked, args = parse_atom_args st in
      match cmp_of_token (cur st).tok with
      | Some op ->
          if at_marked then
            fail_at t (Printf.sprintf "function %S cannot take a location specifier" rel);
          advance st;
          let rhs = parse_expr st in
          Ast.C_cmp (op, Ast.E_call (rel, args), rhs)
      | None ->
          if not at_marked then
            fail_at t
              (Printf.sprintf "relation %S is missing its location specifier '@'" rel);
          Ast.C_atom { Ast.rel; args = List.map (term_of_expr t) args }
    end
  | _ -> begin
      let lhs = parse_expr st in
      match cmp_of_token (cur st).tok with
      | Some op ->
          advance st;
          Ast.C_cmp (op, lhs, parse_expr st)
      | None ->
          fail_at (cur st)
            (Printf.sprintf "expected a comparison operator, found %s"
               (describe (cur st).tok))
    end

let parse_rule_inner st =
  let name_tok = cur st in
  let name =
    match name_tok.tok with
    | T_ident s ->
        advance st;
        s
    | _ -> fail_at name_tok "expected a rule name (e.g. \"r1\")"
  in
  let head = parse_head_atom st in
  expect st T_derives;
  let first = parse_body_elem st in
  let rec go acc =
    match (cur st).tok with
    | T_comma ->
        advance st;
        go (parse_body_elem st :: acc)
    | _ -> List.rev acc
  in
  let body = go [ first ] in
  expect st T_dot;
  match body with
  | Ast.C_atom event :: conds -> { Ast.name; head; event; conds }
  | (Ast.C_cmp _ | Ast.C_assign _) :: _ | [] ->
      fail_at name_tok
        (Printf.sprintf "rule %S: the first body element must be the event relation" name)

let with_tokens src f =
  match Lexer.tokenize src with
  | Error e -> Error (Printf.sprintf "%d:%d: %s" e.line e.col e.message)
  | Ok toks -> begin
      let st = { toks = Array.of_list toks; pos = 0 } in
      match f st with v -> Ok v | exception Parse_error m -> Error m
    end

let parse_program ~name src =
  with_tokens src (fun st ->
    let rec go acc =
      match (cur st).tok with
      | T_eof -> List.rev acc
      | _ -> go (parse_rule_inner st :: acc)
    in
    { Ast.prog_name = name; rules = go [] })

let parse_rule src =
  with_tokens src (fun st ->
    let r = parse_rule_inner st in
    expect st T_eof;
    r)
