open Dpc_ndlog

type t = { rule : string; output : Tuple.t; trigger : trigger; slow : Tuple.t list }
and trigger = Event of Tuple.t | Derived of t

let rec event_of t =
  match t.trigger with Event ev -> ev | Derived sub -> event_of sub

let rec depth t = match t.trigger with Event _ -> 1 | Derived sub -> 1 + depth sub

let rec rules_root_to_leaf t =
  t.rule :: (match t.trigger with Event _ -> [] | Derived sub -> rules_root_to_leaf sub)

let rec tuples t =
  (t.output :: t.slow)
  @ (match t.trigger with Event ev -> [ ev ] | Derived sub -> tuples sub)

let rec equal a b =
  String.equal a.rule b.rule
  && Tuple.equal a.output b.output
  && List.length a.slow = List.length b.slow
  && List.for_all2 Tuple.equal a.slow b.slow
  &&
  match a.trigger, b.trigger with
  | Event x, Event y -> Tuple.equal x y
  | Derived x, Derived y -> equal x y
  | (Event _ | Derived _), _ -> false

let rec equivalent a b =
  String.equal a.rule b.rule
  && List.length a.slow = List.length b.slow
  && List.for_all2 Tuple.equal a.slow b.slow
  &&
  match a.trigger, b.trigger with
  | Event _, Event _ -> true
  | Derived x, Derived y -> equivalent x y
  | (Event _ | Derived _), _ -> false

let rec compare_tree a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  String.compare a.rule b.rule <?> fun () ->
  Tuple.compare a.output b.output <?> fun () ->
  Stdlib.compare (List.map Tuple.canonical a.slow) (List.map Tuple.canonical b.slow)
  <?> fun () ->
  match a.trigger, b.trigger with
  | Event x, Event y -> Tuple.compare x y
  | Derived x, Derived y -> compare_tree x y
  | Event _, Derived _ -> -1
  | Derived _, Event _ -> 1

let compare = compare_tree

let event_id t = Dpc_util.Sha1.digest_string (Tuple.canonical (event_of t))

let rec pp_indent fmt indent t =
  Format.fprintf fmt "%s%a  <- %s" indent Tuple.pp t.output t.rule;
  List.iter (fun b -> Format.fprintf fmt "@,%s  [slow] %a" indent Tuple.pp b) t.slow;
  match t.trigger with
  | Event ev -> Format.fprintf fmt "@,%s  [event] %a" indent Tuple.pp ev
  | Derived sub ->
      Format.fprintf fmt "@,";
      pp_indent fmt (indent ^ "  ") sub

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  pp_indent fmt "" t;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
