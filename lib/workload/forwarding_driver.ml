type t = {
  sim : Dpc_net.Sim.t option;
  transport : Dpc_net.Transport.t;
  runtime : Dpc_engine.Runtime.t;
  backend : Dpc_core.Backend.t;
  routing : Dpc_net.Routing.t;
  pairs : (int * int) list;
  fault_stats : Dpc_net.Transport.fault_stats option;
}

let sim_exn t =
  match t.sim with
  | Some sim -> sim
  | None ->
      invalid_arg
        (Printf.sprintf "Forwarding_driver.sim_exn: driver runs on %s, not the simulator"
           (Dpc_net.Transport.name t.transport))

let build ~sim ~transport ~scheme ~routing ~pairs ~record_outputs ~fault_stats ?reliable () =
  let delp = Dpc_apps.Forwarding.delp () in
  let backend =
    Dpc_core.Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env
      ~nodes:(Dpc_net.Transport.nodes transport)
  in
  let runtime =
    Dpc_engine.Runtime.create ~transport ?reliable ~delp
      ~env:Dpc_apps.Forwarding.env ~hook:(Dpc_core.Backend.hook backend)
      ~record_outputs ~nodes:(Dpc_core.Backend.nodes backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime (Dpc_apps.Forwarding.routes_for_pairs routing pairs);
  { sim; transport; runtime; backend; routing; pairs; fault_stats }

let setup ~scheme ~topology ~routing ~pairs ?(bucket_width = 1.0) ?(record_outputs = true)
    ?faults ?(fault_seed = 0) ?reliable () =
  let sim = Dpc_net.Sim.create ~bucket_width ~topology ~routing () in
  let transport = Dpc_net.Transport.of_sim sim in
  let transport, fault_stats =
    match faults with
    | None -> (transport, None)
    | Some config ->
        let rng = Dpc_util.Rng.create ~seed:fault_seed in
        let faulty, stats = Dpc_net.Transport.faulty ~config ~rng transport in
        (faulty, Some stats)
  in
  build ~sim:(Some sim) ~transport ~scheme ~routing ~pairs ~record_outputs ~fault_stats
    ?reliable ()

let setup_on ~transport ~scheme ~routing ~pairs ?(record_outputs = true) ?reliable () =
  build ~sim:None ~transport ~scheme ~routing ~pairs ~record_outputs ~fault_stats:None
    ?reliable ()

(* Unique payload of exactly [size] bytes: a sequence tag padded with 'x'. *)
let payload ~pair_index ~seq ~size =
  let tag = Printf.sprintf "p%d-s%d-" pair_index seq in
  if String.length tag >= size then tag
  else tag ^ String.make (size - String.length tag) 'x'

let inject_stream t ~rate_per_pair ~duration ~payload_size =
  let interval = 1.0 /. rate_per_pair in
  let count = int_of_float (duration *. rate_per_pair) in
  List.iteri
    (fun pair_index (src, dst) ->
      for seq = 0 to count - 1 do
        let at = float_of_int seq *. interval in
        Dpc_engine.Runtime.inject t.runtime ~delay:at
          (Dpc_apps.Forwarding.packet ~src ~dst
             ~payload:(payload ~pair_index ~seq ~size:payload_size))
      done)
    t.pairs;
  count * List.length t.pairs

let inject_total t ~total ~duration ~payload_size =
  let npairs = List.length t.pairs in
  let pairs = Array.of_list t.pairs in
  let interval = duration /. float_of_int (max 1 total) in
  for seq = 0 to total - 1 do
    let pair_index = seq mod npairs in
    let src, dst = pairs.(pair_index) in
    Dpc_engine.Runtime.inject t.runtime
      ~delay:(float_of_int seq *. interval)
      (Dpc_apps.Forwarding.packet ~src ~dst
         ~payload:(payload ~pair_index ~seq ~size:payload_size))
  done;
  total

let run ?until t = Dpc_engine.Runtime.run ?until t.runtime

let received t = List.map fst (Dpc_engine.Runtime.outputs t.runtime)

let query_random_outputs t ~rng ~cost ~count =
  let outputs = Array.of_list (received t) in
  if Array.length outputs = 0 then
    invalid_arg "Forwarding_driver.query_random_outputs: no outputs received";
  List.init count (fun _ ->
    let output = Dpc_util.Rng.pick rng outputs in
    Dpc_core.Backend.query t.backend ~cost ~routing:t.routing output)
