type t = {
  trees : Prov_tree.t list;
  latency : float;
  entries : int;
  bytes : int;
  complete : bool;
}

let empty = { trees = []; latency = 0.0; entries = 0; bytes = 0; complete = true }

let dedup_trees trees = List.sort_uniq Prov_tree.compare trees
