#!/bin/sh
# Continuous-integration entry point: formatting (when the tool is
# available), full build, full test suite. Run from the repo root or via
# `make ci`.
set -eu

cd "$(dirname "$0")/.."

# Formatting is advisory-gated: ocamlformat is not part of the minimal
# toolchain, so the check only runs where it is installed (and never
# rewrites — CI must not mutate the tree).
if command -v ocamlformat >/dev/null 2>&1; then
    echo "== ocamlformat check =="
    dune build @fmt
else
    echo "== ocamlformat not installed; skipping format check =="
fi

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

# Chaos sweeps at full width: 50 seeded DELP instances per scheme under a
# drop/duplicate/delay transport, and 25 under seeded crash/restart
# schedules with durable recovery — each oracle-checked against a
# fault-free run. Seeds are pinned inside the tests, so this is
# deterministic.
echo "== chaos + crash sweeps (full, pinned seeds) =="
DPC_CHAOS_FULL=1 dune exec test/test_chaos.exe >/dev/null
echo "chaos + crash sweeps ok"

# Crash/recovery unit suites (also part of dune runtest; rerun here so a
# regression names the failing group in the CI log).
echo "== crash suites (quick) =="
make crash >/dev/null
echo "crash suites ok"

# Partition faults: the partition oracle at full width (seeded link
# outage plans — splits, one-way cuts, flapping links, random schedules,
# all outlasting the retry budget), the partitionable/backoff/suspension
# unit group, degraded queries, and the partitions bench figure (heal
# latency + retransmit storm, jitter on/off). Pinned seeds throughout.
echo "== partition-fault suites (full, pinned seeds) =="
make partitions >/dev/null
echo "partition suites ok"

# Multicore determinism: the sharded runtime must reproduce the
# sequential digests at 1/2/4 domains — clean, under hashed faults, and
# under crash schedules — plus the partition and concurrent-metrics
# suites and the scaling figure's own digest shape check (`make scaling`).
echo "== domain-scaling determinism sweep (1/2/4 domains) =="
make scaling >/dev/null
echo "scaling sweep ok"

# Query serving tier: full-width cache/pagination/storm suites plus the
# queries bench figure, which carries its own shape checks (>= 50% hit
# rate, warm p99 faster than cache-off, degraded crash-window storm).
echo "== query serving tier sweep (full, pinned seeds) =="
make queries >/dev/null
echo "queries sweep ok"

# Real processes: the dpcd cluster oracle — three daemons over Unix
# sockets, a mid-run kill -9 of node 1 with recovery from disk, digests
# byte-identical to the simulator for all four schemes. Unix-domain
# sockets are a hard dependency; skippable only where they are absent
# (or explicitly with DPC_SKIP_PROCS=1 on restricted builders).
if [ "${DPC_SKIP_PROCS:-0}" = "1" ]; then
    echo "== dpcd cluster oracle skipped (DPC_SKIP_PROCS=1) =="
else
    echo "== dpcd cluster oracle (3 real processes, kill -9 + partition + recovery) =="
    procs_dir=$(mktemp -d /tmp/dpc-procs.XXXXXX)
    trap 'rm -rf "$procs_dir"' EXIT
    dune exec bin/dpcd.exe -- cluster --dir "$procs_dir"
    rm -rf "$procs_dir"
    echo "== dpcd cluster oracle, wire chaos on =="
    chaos_dir=$(mktemp -d /tmp/dpc-procs-chaos.XXXXXX)
    trap 'rm -rf "$procs_dir" "$chaos_dir"' EXIT
    dune exec bin/dpcd.exe -- cluster --chaos --dir "$chaos_dir"
    rm -rf "$chaos_dir"
    echo "== dpcd cluster soak (bounded outbox ledger under sustained traffic) =="
    soak_dir=$(mktemp -d /tmp/dpc-procs-soak.XXXXXX)
    trap 'rm -rf "$procs_dir" "$chaos_dir" "$soak_dir"' EXIT
    dune exec bin/dpcd.exe -- cluster --soak --dir "$soak_dir"
    rm -rf "$soak_dir"
fi

# API documentation must build warning-free — advisory-gated like
# ocamlformat: odoc is not part of the minimal toolchain.
if command -v odoc >/dev/null 2>&1; then
    echo "== odoc (dune build @doc) =="
    dune build @doc
else
    echo "== odoc not installed; skipping doc build =="
fi

# Throughput regression gate: fig8/fig9 events/s vs the checked-in
# baseline (BENCH_PR8.json), >15% regression fails — plus the queries
# figure's modeled warm-cache p99. Wall-clock based, so it can be
# skipped on noisy builders with DPC_BENCH_GATE_SKIP=1.
sh scripts/bench_gate.sh

# Bench smoke: the tiny fig9 run must finish quickly and produce a valid
# machine-readable report with all three scheme series present.
echo "== bench smoke (tiny fig9 + json report) =="
bench_json=$(mktemp /tmp/dpc-bench-smoke.XXXXXX.json)
trap 'rm -f "$bench_json"' EXIT
dune exec bench/main.exe -- --fig 9 --tiny --json "$bench_json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$bench_json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "dpc-bench-v1", doc.get("schema")
fig9 = doc["figures"]["fig9"]
assert fig9["wall_clock_s"] > 0.0
assert fig9["events"] > 0
for scheme in ("ExSPAN", "Basic", "Advanced"):
    points = fig9["series"][scheme]
    assert points, scheme
print("bench json ok: fig9 %.3fs, %d events, %d series" % (
    fig9["wall_clock_s"], fig9["events"], len(fig9["series"])))
PY
else
    # Minimal sanity without python: the file exists and names the schema.
    grep -q '"schema": "dpc-bench-v1"' "$bench_json"
    grep -q '"fig9"' "$bench_json"
    echo "bench json ok (python3 unavailable; key check only)"
fi

# Determinism: two same-seed runs of the fig9/fig11/crash/partitions/
# queries scenarios (storage snapshots, bandwidth totals, fault injection
# + reliable delivery, seeded crash schedules with durable recovery,
# partition heal latency with jittered backoff, Zipfian query storms
# with modeled latencies) must agree byte-for-byte
# once the wall-clock-derived fields are stripped ("recovery ms" is
# measured wall clock, like wall_clock_s; query percentiles are modeled
# time and therefore NOT stripped).
echo "== bench determinism (tiny fig9+fig11+crash+partitions+queries, seed 7, two runs) =="
det_a=$(mktemp /tmp/dpc-bench-det-a.XXXXXX.json)
det_b=$(mktemp /tmp/dpc-bench-det-b.XXXXXX.json)
trap 'rm -f "$bench_json" "$det_a" "$det_b"' EXIT
dune exec bench/main.exe -- --fig 9 --fig 11 --fig crash --fig partitions --fig queries --tiny --seed 7 --json "$det_a" >/dev/null
dune exec bench/main.exe -- --fig 9 --fig 11 --fig crash --fig partitions --fig queries --tiny --seed 7 --json "$det_b" >/dev/null
grep -v '"wall_clock_s"\|"events_per_s"\|"recovery ms"' "$det_a" > "$det_a.stripped"
grep -v '"wall_clock_s"\|"events_per_s"\|"recovery ms"' "$det_b" > "$det_b.stripped"
trap 'rm -f "$bench_json" "$det_a" "$det_b" "$det_a.stripped" "$det_b.stripped"' EXIT
if diff "$det_a.stripped" "$det_b.stripped" >&2; then
    echo "bench determinism ok"
else
    echo "bench determinism FAILED: same-seed runs differ" >&2
    exit 1
fi

echo "== ci ok =="
