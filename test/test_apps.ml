(* End-to-end tests for the application programs: DNS resolution on a real
   hierarchy (including provenance under every scheme), DHCP and ARP
   round-trips, and the domain-matching UDF. *)

open Dpc_ndlog
open Dpc_core

let check = Alcotest.check
let tuple_t = Alcotest.testable Tuple.pp Tuple.equal

(* ------------------------------------------------------------------ *)
(* f_isSubDomain *)

let test_is_sub_domain () =
  let t = Dpc_apps.Dns.is_sub_domain in
  check Alcotest.bool "root covers everything" true (t "" "www.hello.com");
  check Alcotest.bool "exact" true (t "hello.com" "hello.com");
  check Alcotest.bool "sub" true (t "hello.com" "www.hello.com");
  check Alcotest.bool "label boundary" false (t "hello.com" "shello.com");
  check Alcotest.bool "different tld" false (t "hello.com" "www.hello.org");
  check Alcotest.bool "prefix is not suffix" false (t "www.hello" "www.hello.com")

(* ------------------------------------------------------------------ *)
(* A hand-built 5-node DNS hierarchy:
     0 = root, 1 = "com" server, 2 = "hello.com" server,
     3 = "org" server, 4 = a client host.
   Topology: star around the root plus a client link. *)

let dns_world scheme =
  let topo = Dpc_net.Topology.create ~n:5 in
  let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e7 } in
  List.iter (fun (a, b) -> Dpc_net.Topology.add_link topo a b l) [ (0, 1); (1, 2); (0, 3); (0, 4) ];
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Dns.delp () in
  let backend = Backend.make scheme ~delp ~env:Dpc_apps.Dns.env ~nodes:5 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Dns.env ~hook:(Backend.hook backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime
    [
      Dpc_apps.Dns.root_server ~host:4 ~root:0;
      Dpc_apps.Dns.name_server ~at:0 ~domain:"com" ~server:1;
      Dpc_apps.Dns.name_server ~at:0 ~domain:"org" ~server:3;
      Dpc_apps.Dns.name_server ~at:1 ~domain:"hello.com" ~server:2;
      Dpc_apps.Dns.address_record ~at:2 ~url:"www.hello.com" ~ip:"10.0.0.7";
      Dpc_apps.Dns.address_record ~at:3 ~url:"www.example.org" ~ip:"10.0.0.9";
    ];
  (runtime, backend, routing)

let resolve runtime ~url ~rqid =
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Dns.url ~host:4 ~url ~rqid);
  Dpc_engine.Runtime.run runtime

let test_dns_resolution name scheme =
  let runtime, _, _ = dns_world scheme in
  resolve runtime ~url:"www.hello.com" ~rqid:1;
  let outputs = List.map fst (Dpc_engine.Runtime.outputs runtime) in
  check (Alcotest.list tuple_t) (name ^ ": reply")
    [ Dpc_apps.Dns.reply ~host:4 ~url:"www.hello.com" ~ip:"10.0.0.7" ~rqid:1 ]
    outputs;
  (* r1 at the host, r2 at root and "com", r3 at "hello.com", r4. *)
  check Alcotest.int (name ^ ": five rule executions") 5
    (Dpc_engine.Runtime.stats runtime).fired

let test_dns_provenance_tree name scheme =
  let runtime, backend, routing = dns_world scheme in
  resolve runtime ~url:"www.hello.com" ~rqid:1;
  let out = Dpc_apps.Dns.reply ~host:4 ~url:"www.hello.com" ~ip:"10.0.0.7" ~rqid:1 in
  let result = Backend.query backend ~cost:Query_cost.free ~routing out in
  check Alcotest.int (name ^ ": one tree") 1 (List.length result.trees);
  let tree = List.hd result.trees in
  check (Alcotest.list Alcotest.string) (name ^ ": rule chain")
    [ "r4"; "r3"; "r2"; "r2"; "r1" ]
    (Prov_tree.rules_root_to_leaf tree);
  check tuple_t (name ^ ": leaf event")
    (Dpc_apps.Dns.url ~host:4 ~url:"www.hello.com" ~rqid:1)
    (Prov_tree.event_of tree)

let test_dns_short_path name scheme =
  (* A URL authoritative one level down: shorter chain. *)
  let runtime, backend, routing = dns_world scheme in
  resolve runtime ~url:"www.example.org" ~rqid:9;
  let out = Dpc_apps.Dns.reply ~host:4 ~url:"www.example.org" ~ip:"10.0.0.9" ~rqid:9 in
  let result = Backend.query backend ~cost:Query_cost.free ~routing out in
  check Alcotest.int (name ^ ": one tree") 1 (List.length result.trees);
  check (Alcotest.list Alcotest.string) (name ^ ": rule chain")
    [ "r4"; "r3"; "r2"; "r1" ]
    (Prov_tree.rules_root_to_leaf (List.hd result.trees))

let test_dns_equivalence_compression () =
  let runtime, backend, _ = dns_world Backend.S_advanced in
  for rqid = 1 to 20 do
    resolve runtime ~url:"www.hello.com" ~rqid
  done;
  let storage = Backend.total_storage backend in
  (* One equivalence class (host 4, www.hello.com): 5 shared ruleExec rows,
     one prov delta per request. *)
  check Alcotest.int "shared ruleExec rows" 5 storage.rule_exec_rows;
  check Alcotest.int "per-request prov rows" 20 storage.prov_rows

let test_dns_distinct_urls_distinct_classes () =
  let runtime, backend, _ = dns_world Backend.S_advanced in
  resolve runtime ~url:"www.hello.com" ~rqid:1;
  resolve runtime ~url:"www.example.org" ~rqid:2;
  let storage = Backend.total_storage backend in
  (* 5 + 4 rows for the two chains, minus the shared leaf: both classes
     execute r1 at host 4 with the same rootServer tuple, and the chain rid
     hashes the chain prefix, so the common leaf row deduplicates. *)
  check Alcotest.int "two chains sharing their leaf" 8 storage.rule_exec_rows

let test_dns_all_schemes_agree () =
  let trees scheme =
    let runtime, backend, routing = dns_world scheme in
    resolve runtime ~url:"www.hello.com" ~rqid:1;
    let out = Dpc_apps.Dns.reply ~host:4 ~url:"www.hello.com" ~ip:"10.0.0.7" ~rqid:1 in
    (Backend.query backend ~cost:Query_cost.free ~routing out).trees
  in
  let reference = trees Backend.S_exspan in
  List.iter
    (fun scheme ->
      check
        (Alcotest.list (Alcotest.testable Prov_tree.pp Prov_tree.equal))
        (Backend.scheme_name scheme) reference (trees scheme))
    [ Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

(* ------------------------------------------------------------------ *)
(* DHCP *)

let dhcp_world scheme =
  let topo = Dpc_net.Topology.create ~n:3 in
  let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e7 } in
  Dpc_net.Topology.add_link topo 0 1 l;
  Dpc_net.Topology.add_link topo 1 2 l;
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Dhcp.delp () in
  let backend = Backend.make scheme ~delp ~env:Dpc_apps.Dhcp.env ~nodes:3 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Dhcp.env ~hook:(Backend.hook backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime
    [
      Dpc_apps.Dhcp.dhcp_relay ~host:0 ~server:2;
      Dpc_apps.Dhcp.address_pool ~server:2 ~host:0 ~ip:"192.168.0.5";
    ];
  (runtime, backend, routing)

let test_dhcp_round_trip () =
  let runtime, backend, routing = dhcp_world Backend.S_advanced in
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Dhcp.discover ~host:0 ~rqid:1);
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Dhcp.discover ~host:0 ~rqid:2);
  Dpc_engine.Runtime.run runtime;
  let outputs = List.map fst (Dpc_engine.Runtime.outputs runtime) in
  check Alcotest.int "two offers" 2 (List.length outputs);
  (* One equivalence class: the keys are just the host. *)
  check Alcotest.int "one shared chain" 2 (Backend.total_storage backend).rule_exec_rows;
  let out = Dpc_apps.Dhcp.offer ~host:0 ~ip:"192.168.0.5" ~rqid:2 in
  let result = Backend.query backend ~cost:Query_cost.free ~routing out in
  check Alcotest.int "queryable" 1 (List.length result.trees)

(* ------------------------------------------------------------------ *)
(* ARP *)

let test_arp_round_trip () =
  let topo = Dpc_net.Topology.create ~n:2 in
  Dpc_net.Topology.add_link topo 0 1 { Dpc_net.Topology.latency = 0.001; bandwidth = 1e7 };
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Arp.delp () in
  let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Arp.env ~nodes:2 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Arp.env ~hook:(Backend.hook backend) ()
  in
  Dpc_engine.Runtime.load_slow runtime
    [
      Dpc_apps.Arp.arp_switch ~host:0 ~switch:1;
      Dpc_apps.Arp.mac_table ~switch:1 ~ip:"10.0.0.3" ~mac:"aa:bb";
      Dpc_apps.Arp.mac_table ~switch:1 ~ip:"10.0.0.4" ~mac:"cc:dd";
    ];
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Arp.arp_query ~host:0 ~ip:"10.0.0.3" ~rqid:1);
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Arp.arp_query ~host:0 ~ip:"10.0.0.4" ~rqid:2);
  Dpc_engine.Runtime.inject runtime (Dpc_apps.Arp.arp_query ~host:0 ~ip:"10.0.0.3" ~rqid:3);
  Dpc_engine.Runtime.run runtime;
  check Alcotest.int "three replies" 3 (List.length (Dpc_engine.Runtime.outputs runtime));
  (* Two classes (host, ip): two chains of two rows, whose identical leaf
     (r1 at host 0, same arpSwitch tuple) deduplicates. *)
  check Alcotest.int "two chains sharing their leaf" 3
    (Backend.total_storage backend).rule_exec_rows;
  let out = Dpc_apps.Arp.arp_reply ~host:0 ~ip:"10.0.0.3" ~mac:"aa:bb" ~rqid:3 in
  let result = Backend.query backend ~cost:Query_cost.free ~routing out in
  check Alcotest.int "repeat query shares chain" 1 (List.length result.trees)

let scheme_cases f =
  List.map
    (fun s ->
      Alcotest.test_case (Backend.scheme_name s) `Quick (fun () ->
        f (Backend.scheme_name s) s))
    [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

let () =
  Alcotest.run "dpc_apps"
    [
      ("is_sub_domain", [ Alcotest.test_case "boundaries" `Quick test_is_sub_domain ]);
      ("dns resolution", scheme_cases test_dns_resolution);
      ("dns provenance", scheme_cases test_dns_provenance_tree);
      ("dns short path", scheme_cases test_dns_short_path);
      ( "dns compression",
        [
          Alcotest.test_case "shared chain" `Quick test_dns_equivalence_compression;
          Alcotest.test_case "distinct URLs" `Quick test_dns_distinct_urls_distinct_classes;
          Alcotest.test_case "all schemes agree" `Quick test_dns_all_schemes_agree;
        ] );
      ("dhcp", [ Alcotest.test_case "round trip" `Quick test_dhcp_round_trip ]);
      ("arp", [ Alcotest.test_case "round trip" `Quick test_arp_round_trip ]);
    ]
