lib/net/transit_stub.ml: Array Dpc_util List Topology
