type t = {
  hop_latency : float option;
  per_entry : float;
  per_byte : float;
  per_rederive : float;
  down_timeout : float;
  down_retries : int;
}

let emulation =
  { hop_latency = Some 0.0002; per_entry = 0.0018; per_byte = 6e-6; per_rederive = 0.0002;
    down_timeout = 0.2; down_retries = 2 }

let simulation =
  { hop_latency = None; per_entry = 0.0018; per_byte = 6e-6; per_rederive = 0.0002;
    down_timeout = 0.2; down_retries = 2 }

let free =
  { hop_latency = Some 0.0; per_entry = 0.0; per_byte = 0.0; per_rederive = 0.0;
    down_timeout = 0.0; down_retries = 0 }

let hop t routing ~src ~dst =
  if src = dst then 0.0
  else
    match t.hop_latency with
    | Some per_hop -> begin
        match Dpc_net.Routing.hop_count routing ~src ~dst with
        | Some h -> per_hop *. float_of_int h
        | None -> failwith "Query_cost.hop: unreachable destination"
      end
    | None -> begin
        match Dpc_net.Routing.distance routing ~src ~dst with
        | Some d -> d
        | None -> failwith "Query_cost.hop: unreachable destination"
      end
