lib/core/side_store.mli: Dpc_ndlog Dpc_util
