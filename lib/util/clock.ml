let now () = Unix.gettimeofday ()
