#!/bin/sh
# Bench regression gate: run the fig8/fig9 forwarding benchmarks at the
# same scale and seed as the checked-in baseline (BENCH_PR7.json) and fail
# if events/s regressed by more than the tolerance on either figure.
#
# Wall-clock throughput is noisy, so the tolerance is deliberately wide
# (15%); the gate catches algorithmic regressions (an accidental O(n^2),
# a lost index), not scheduler jitter. Improvements never fail the gate.
#
#   scripts/bench_gate.sh [baseline.json]
#
# Environment:
#   DPC_BENCH_GATE_SKIP=1   skip entirely (e.g. on known-noisy builders)
#   DPC_BENCH_GATE_TOL      regression tolerance, default 0.15
set -eu

cd "$(dirname "$0")/.."

baseline=${1:-BENCH_PR7.json}
tol=${DPC_BENCH_GATE_TOL:-0.15}

if [ "${DPC_BENCH_GATE_SKIP:-0}" = "1" ]; then
    echo "bench gate skipped (DPC_BENCH_GATE_SKIP=1)"
    exit 0
fi

if ! command -v python3 >/dev/null 2>&1; then
    # Loud, not silent: a builder without python3 runs NO throughput gate
    # at all, and that should be visible in the log, not discovered after
    # a regression ships.
    echo "::warning::bench gate SKIPPED: python3 unavailable, fig8/fig9 throughput unchecked" >&2
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "bench gate: baseline $baseline not found" >&2
    exit 1
fi

seed=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['seed'])" "$baseline")

current=$(mktemp /tmp/dpc-bench-gate.XXXXXX.json)
trap 'rm -f "$current"' EXIT

echo "== bench gate: fig8+fig9, seed $seed, vs $baseline (tolerance ${tol}) =="
dune exec bench/main.exe -- --fig 8 --fig 9 --seed "$seed" --json "$current" >/dev/null

python3 - "$baseline" "$current" "$tol" <<'PY'
import json, sys

baseline_path, current_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
baseline = json.load(open(baseline_path))
current = json.load(open(current_path))

assert current["schema"] == baseline["schema"] == "dpc-bench-v1"
if current["scale"] != baseline["scale"]:
    sys.exit("bench gate: scale mismatch (%s vs %s)" % (current["scale"], baseline["scale"]))

failed = False
for fig in ("fig8", "fig9"):
    base = baseline["figures"][fig]["events_per_s"]
    cur = current["figures"][fig]["events_per_s"]
    ratio = cur / base
    verdict = "ok" if ratio >= 1.0 - tol else "REGRESSED"
    print("%s: %.1f events/s vs baseline %.1f (%.2fx) %s" % (fig, cur, base, ratio, verdict))
    if verdict != "ok":
        failed = True

if failed:
    sys.exit("bench gate FAILED: events/s regressed more than %.0f%%" % (tol * 100))
print("bench gate ok")
PY
