open Dpc_ndlog

(* Per-relation state: the primary table keyed by canonical string, an
   incrementally-maintained serialized-byte counter, and any secondary
   indexes built so far. An index maps a key — the concatenated canonical
   encodings of the tuple's values at [positions] — to the bucket of
   tuples sharing those values. Value canonicals parse deterministically
   (every constructor is tagged and strings are length-prefixed), so the
   concatenation is collision-free for a fixed positions list. *)
type index = (string, Tuple.t list ref) Hashtbl.t

type rel_state = {
  tuples : (string, Tuple.t) Hashtbl.t;
  mutable bytes : int;
  mutable indexes : (int list * index) list;
}

type t = {
  tables : (string, rel_state) Hashtbl.t;
  (* Dirty op log for delta snapshots: every effective insert/remove
     since the last cut, NEWEST FIRST ([true] = insert). Chronological
     order matters — a tuple removed and re-added must end up present —
     so this is a log, not a pair of sets. *)
  mutable track_dirty : bool;
  mutable dirty : (bool * Tuple.t) list;
}

let create () = { tables = Hashtbl.create 8; track_dirty = false; dirty = [] }

let set_dirty_tracking t b = t.track_dirty <- b

let debug_recount = ref false
let set_debug_recount b = debug_recount := b

let rel_state t rel =
  match Hashtbl.find_opt t.tables rel with
  | Some rs -> rs
  | None ->
      let rs = { tuples = Hashtbl.create 16; bytes = 0; indexes = [] } in
      Hashtbl.add t.tables rel rs;
      rs

let key_of_values values =
  match values with
  | [ v ] -> Value.canonical v
  | _ ->
      let buf = Buffer.create 32 in
      List.iter (fun v -> Buffer.add_string buf (Value.canonical v)) values;
      Buffer.contents buf

let key_of_tuple tuple positions = key_of_values (List.map (Tuple.arg tuple) positions)

let bucket_add (idx : index) key tuple =
  match Hashtbl.find_opt idx key with
  | Some bucket -> bucket := tuple :: !bucket
  | None -> Hashtbl.add idx key (ref [ tuple ])

let bucket_remove (idx : index) key tuple =
  match Hashtbl.find_opt idx key with
  | None -> ()
  | Some bucket -> (
      bucket := List.filter (fun u -> not (Tuple.equal u tuple)) !bucket;
      match !bucket with [] -> Hashtbl.remove idx key | _ :: _ -> ())

let insert t tuple =
  let rs = rel_state t (Tuple.rel tuple) in
  let ck = Tuple.canonical tuple in
  if Hashtbl.mem rs.tuples ck then false
  else begin
    Hashtbl.add rs.tuples ck tuple;
    rs.bytes <- rs.bytes + Tuple.serialized_size tuple;
    List.iter (fun (ps, idx) -> bucket_add idx (key_of_tuple tuple ps) tuple) rs.indexes;
    if t.track_dirty then t.dirty <- (true, tuple) :: t.dirty;
    true
  end

let remove t tuple =
  match Hashtbl.find_opt t.tables (Tuple.rel tuple) with
  | None -> false
  | Some rs ->
      let ck = Tuple.canonical tuple in
      if Hashtbl.mem rs.tuples ck then begin
        Hashtbl.remove rs.tuples ck;
        rs.bytes <- rs.bytes - Tuple.serialized_size tuple;
        List.iter (fun (ps, idx) -> bucket_remove idx (key_of_tuple tuple ps) tuple) rs.indexes;
        if t.track_dirty then t.dirty <- (false, tuple) :: t.dirty;
        true
      end
      else false

let mem t tuple =
  match Hashtbl.find_opt t.tables (Tuple.rel tuple) with
  | None -> false
  | Some rs -> Hashtbl.mem rs.tuples (Tuple.canonical tuple)

let iter t rel f =
  match Hashtbl.find_opt t.tables rel with
  | None -> ()
  | Some rs -> Hashtbl.iter (fun _ tuple -> f tuple) rs.tuples

let all t rel =
  match Hashtbl.find_opt t.tables rel with
  | None -> []
  | Some rs -> Hashtbl.fold (fun _ tuple acc -> tuple :: acc) rs.tuples []

let scan t rel = List.sort Tuple.compare (all t rel)

let lookup t ~rel ~positions ~key =
  match Hashtbl.find_opt t.tables rel with
  | None -> []
  | Some rs -> (
      let idx =
        match List.assoc_opt positions rs.indexes with
        | Some idx -> idx
        | None ->
            (* Built lazily on the first keyed lookup, then kept current by
               insert/remove. *)
            let idx = Hashtbl.create (max 16 (Hashtbl.length rs.tuples)) in
            Hashtbl.iter
              (fun _ tuple -> bucket_add idx (key_of_tuple tuple positions) tuple)
              rs.tuples;
            rs.indexes <- (positions, idx) :: rs.indexes;
            idx
      in
      match Hashtbl.find_opt idx (key_of_values key) with
      | Some bucket -> !bucket
      | None -> [])

let relations t =
  Hashtbl.fold
    (fun rel rs acc -> if Hashtbl.length rs.tuples > 0 then rel :: acc else acc)
    t.tables []
  |> List.sort String.compare

let cardinality t rel =
  match Hashtbl.find_opt t.tables rel with
  | None -> 0
  | Some rs -> Hashtbl.length rs.tuples

let total_tuples t = Hashtbl.fold (fun _ rs acc -> acc + Hashtbl.length rs.tuples) t.tables 0

let clear t =
  Hashtbl.reset t.tables;
  t.dirty <- []

(* The canonical serialization: relations sorted by name, tuples in scan
   order — byte-stable for a given store state. [snapshot] SEALS a cut
   around it (the dirty log restarts, so the next [snapshot_delta]
   carries exactly the changes since here); [canonical] is the pure
   observation the digest oracles take between cuts. *)
let canonical t =
  let w = Dpc_util.Serialize.writer () in
  Dpc_util.Serialize.write_list w
    (fun rel ->
      Dpc_util.Serialize.write_string w rel;
      Dpc_util.Serialize.write_list w (Tuple.serialize w) (scan t rel))
    (relations t);
  Dpc_util.Serialize.contents w

let snapshot t =
  let blob = canonical t in
  t.dirty <- [];
  blob

let snapshot_delta t =
  let w = Dpc_util.Serialize.writer () in
  Dpc_util.Serialize.write_list w
    (fun (add, tuple) ->
      Dpc_util.Serialize.write_bool w add;
      Tuple.serialize w tuple)
    (List.rev t.dirty);
  t.dirty <- [];
  Dpc_util.Serialize.contents w

(* Restores clear the dirty log: the loaded state IS the cut, not a
   change since it. *)
let load t blob =
  let r = Dpc_util.Serialize.reader blob in
  ignore
    (Dpc_util.Serialize.read_list r (fun () ->
       let _rel = Dpc_util.Serialize.read_string r in
       ignore
         (Dpc_util.Serialize.read_list r (fun () -> ignore (insert t (Tuple.deserialize r))))));
  t.dirty <- []

let apply_delta t blob =
  let r = Dpc_util.Serialize.reader blob in
  ignore
    (Dpc_util.Serialize.read_list r (fun () ->
       let add = Dpc_util.Serialize.read_bool r in
       let tuple = Tuple.deserialize r in
       if add then ignore (insert t tuple) else ignore (remove t tuple)));
  t.dirty <- []

let recount_bytes t =
  let w = Dpc_util.Serialize.writer () in
  List.iter
    (fun rel -> List.iter (fun tuple -> Tuple.serialize w tuple) (scan t rel))
    (relations t);
  Dpc_util.Serialize.size w

let size_bytes t =
  let n = Hashtbl.fold (fun _ rs acc -> acc + rs.bytes) t.tables 0 in
  if !debug_recount then begin
    let full = recount_bytes t in
    if n <> full then
      invalid_arg
        (Printf.sprintf "Db.size_bytes: incremental counter %d <> recount %d" n full)
  end;
  n
