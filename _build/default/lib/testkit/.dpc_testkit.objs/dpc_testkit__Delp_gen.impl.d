lib/testkit/delp_gen.ml: Array Ast Delp Dpc_analysis Dpc_core Dpc_engine Dpc_ndlog Dpc_net Dpc_util List Pretty Printf String Tuple Value
