(** The fixed transparency-oracle scenario both worlds run: a 3-node
    packet-forwarding chain, in four phases.

    {ol
    {- [pre]: five packets from node 0 toward node 2 along the loaded
       routes (0 -> 1 -> 2).}
    {- [mid]: three more packets — the real cluster injects these while
       node 1's daemon is [kill -9]ed, so they sit in node 0's durable
       outbox until the restarted daemon recovers and the retransmits
       land.}
    {- [refresh]: the §5.5 route update at node 1 (delete + reinsert of
       the same entry — two [sig] broadcasts wiping every [htequi]).}
    {- [post]: five packets that must see re-materialized chains.}}

    The simulator reference ({!simulate}) runs the same phases over
    {!Dpc_net.Transport.direct} with a quiescence run between each; the
    real cluster separates phases with the launcher's status barrier.
    Because every store serializes deterministically (sorted relations,
    canonical tuple order) and both worlds apply the same per-node
    operation sequences, the per-node digests must match byte for byte
    — crashes, retransmission, and recovery included. *)

val nodes : int
(** 3. *)

val routes : unit -> Dpc_ndlog.Tuple.t list
(** The forwarding entries: node 0 -> 1, node 1 -> 2 for destination 2. *)

val refreshed_route : unit -> Dpc_ndlog.Tuple.t
(** The entry the refresh phase deletes and reinserts (homed at node 1). *)

val pre_packets : unit -> Dpc_ndlog.Tuple.t list
val mid_packets : unit -> Dpc_ndlog.Tuple.t list
val post_packets : unit -> Dpc_ndlog.Tuple.t list

val total_outputs : int
(** Packets across all phases (13) — every one must surface as a [recv]
    output at node 2. *)

type digests = { store : string; db : string }
(** Hex SHA-1 of one node's provenance tables
    ({!Dpc_core.Backend.digest_node}) and relational database
    ({!db_digest}). *)

val db_digest : Dpc_engine.Db.t -> string
(** SHA-1 (hex) of {!Dpc_engine.Db.canonical} — non-sealing. *)

val simulate : Dpc_core.Backend.scheme -> digests array
(** Run the whole scenario in-process on a direct transport and return
    the per-node reference digests the real cluster must reproduce. *)
