(** Tokenizer for NDlog concrete syntax. *)

type token =
  | T_ident of string  (** lowercase identifier: relation or function name *)
  | T_var of string  (** Uppercase identifier: variable *)
  | T_int of int
  | T_str of string
  | T_bool of bool
  | T_at
  | T_lparen
  | T_rparen
  | T_comma
  | T_dot
  | T_derives  (** ":-" *)
  | T_assign  (** ":=" *)
  | T_eq
  | T_neq
  | T_lt
  | T_leq
  | T_gt
  | T_geq
  | T_plus
  | T_minus
  | T_star
  | T_slash
  | T_percent
  | T_eof

type located = { tok : token; line : int; col : int }

type error = { line : int; col : int; message : string }

val tokenize : string -> (located list, error) result
(** Tokenize a full program source. "//" starts a line comment. The final
    element of a successful result is always [T_eof]. *)

val describe : token -> string
(** For error messages, e.g. ["identifier \"route\""] or ["':-'"]. *)
