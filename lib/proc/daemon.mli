(** One [dpcd] process: a single scenario node hosted on a socket
    transport with its log on real disk.

    The daemon is where the pieces meet — it owns the wiring diagram of
    the real-process stack:

    {ul
    {- {!Dpc_net.Socket} carries the frames and reports persistence
       obligations; the daemon routes [Sent] records into the durable
       outbox (after flushing the WAL, so the send's cause is never less
       durable than the send), [Acked] into the ledger, and [Expected]
       watermark advances into the journal.}
    {- {!Dpc_engine.Runtime.set_remote} turns cross-process shipments
       into serialized journal entries over {!Dpc_net.Socket.send_payload};
       inbound frames apply through {!Dpc_engine.Runtime.deliver_remote}.}
    {- {!Dpc_core.Durable.attach} with [?disk] puts checkpoints, the WAL,
       and the outbox under [dir/node-<local>/]. On a restart the daemon
       finds the manifest, {!Dpc_core.Durable.recover}s (replayed remote
       sends are reconciled against the outbox by channel position), then
       re-offers the unacked outbox tail to the transport.}}

    The control plane ({!Ctrl}) makes the process drivable from a
    launcher; {!Cluster} uses it to run the transparency oracle. *)

type t

val create :
  scheme:Dpc_core.Backend.scheme ->
  nodes:int ->
  local:int ->
  addr_of:(int -> string) ->
  dir:string ->
  ?config:Dpc_core.Durable.config ->
  ?chaos:Dpc_net.Transport.fault_config * int ->
  unit ->
  t
(** Build the node and bind its listen address. If [dir/node-<local>/]
    already holds a manifest, the volatile state is rebuilt from disk
    before the function returns — a caller never sees a half-recovered
    daemon. [config] defaults to [{checkpoint_every = 4; rebase_every =
    2}], small enough that the scenario exercises delta cuts and outbox
    compaction. [chaos] is a [(rates, seed)] pair passed to
    {!Dpc_net.Socket.set_chaos} — hashed per-channel frame corruption,
    the process-level chaos sweep. *)

val serve : t -> unit
(** Pump the socket loop until a [Shutdown] control request (or
    {!Dpc_net.Socket.stop}); closes the sockets before returning. *)

val socket : t -> Dpc_net.Socket.t
val runtime : t -> Dpc_engine.Runtime.t
val durable : t -> Dpc_core.Durable.t
