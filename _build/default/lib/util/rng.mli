(** Seeded pseudo-random source.

    Every stochastic component of the reproduction (topology generation, pair
    selection, payloads, Zipf sampling) draws from an explicit [Rng.t] so
    that experiments and tests are deterministic. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t n] is uniform in [0, n). @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** A new independent generator derived from [t]'s stream. *)
