(** Equivalence-key identification (paper Fig 5, [GetEquiKeys]).

    The equivalence keys of a DELP are the input-event attributes whose
    values determine the shape of the provenance tree: attribute 0 (the
    input location, always included) plus every event attribute that reaches
    an anchor in the attribute-level dependency graph. Two input events
    equal on the keys generate equivalent provenance trees (Theorem 1). *)

type t

val compute : Dpc_ndlog.Delp.t -> t
(** Runs the static analysis once; reuse the result at runtime. *)

val delp : t -> Dpc_ndlog.Delp.t

val keys : t -> int list
(** Sorted attribute indices of the input event relation; always contains
    [0]. *)

val key_values : t -> Dpc_ndlog.Tuple.t -> Dpc_ndlog.Value.t list
(** Projection of an input event tuple onto the keys.
    @raise Invalid_argument if the tuple is not of the input event
    relation. *)

val key_hash : t -> Dpc_ndlog.Tuple.t -> Dpc_util.Sha1.t
(** SHA-1 of the canonical key projection; the runtime's [htequi]/[hmap]
    key. *)

val equivalent : t -> Dpc_ndlog.Tuple.t -> Dpc_ndlog.Tuple.t -> bool
(** Event equivalence [ev1 ~K ev2] (Definition 2). *)

val pp : Format.formatter -> t -> unit
