(** Random DELP instance generation for property-based testing.

    Generates syntactically valid, well-typed linear programs together with
    a complete-graph topology, slow-changing databases whose values come
    from a small domain (so joins succeed often), and random input events —
    everything needed to run all four maintenance schemes on programs no
    human wrote, and to check the paper's theorems on them. *)

type instance = {
  delp : Dpc_ndlog.Delp.t;
  nodes : int;
  slow_tuples : Dpc_ndlog.Tuple.t list;
  events : Dpc_ndlog.Tuple.t list;  (** may contain duplicates on purpose *)
  description : string;  (** pretty-printed program, for failure reports *)
}

val generate : rng:Dpc_util.Rng.t -> instance
(** A fresh instance: 1–4 chained rules, relation arities 2–5, 0–2
    slow-changing condition atoms per rule (possibly relocating the head),
    optional comparison and assignment conditions, a 4-node complete-graph
    topology, 1–3 matching slow tuples per (rule, node), and 6–10 events.
    The generated program always passes {!Dpc_ndlog.Delp.validate}. *)

type world = {
  runtime : Dpc_engine.Runtime.t;
  backend : Dpc_core.Backend.t;
  routing : Dpc_net.Routing.t;
}

val build_world :
  ?transport:Dpc_net.Transport.t ->
  ?reliable:Dpc_net.Reliable.config ->
  instance ->
  Dpc_core.Backend.scheme ->
  world
(** Instantiate the instance under one maintenance scheme (loads the slow
    tuples; events are not injected). [transport] (default: the
    simulator over the instance's complete-graph topology) must address
    exactly [instance.nodes] nodes — pass a {!Dpc_net.Transport.faulty}
    wrapper here to run the instance under injected faults, and
    [reliable] to layer at-least-once delivery on top (the chaos
    harness does both).
    @raise Invalid_argument on a transport of the wrong size. *)

val run_events : ?spacing:float -> world -> Dpc_ndlog.Tuple.t list -> unit
(** Inject the events in order and run the simulation to quiescence.
    [spacing] (default 0: everything at the epoch) injects event [i] at
    simulated time [i *. spacing] — the chaos harness uses it to spread
    the run across a window that crash schedules can land inside. *)

val mutate_non_keys :
  rng:Dpc_util.Rng.t -> keys:Dpc_analysis.Equi_keys.t -> Dpc_ndlog.Tuple.t ->
  Dpc_ndlog.Tuple.t
(** A copy of the event whose non-key integer attributes are replaced with
    fresh values (equal to the original on every equivalence key) — the
    Theorem 1 counterpart event. Returns the original unchanged if every
    attribute is a key. *)

val tree_shape : Dpc_core.Prov_tree.t -> string
(** A canonical signature of the tree's equivalence class under the
    paper's [~] relation: the rule chain plus the slow tuples per level.
    Two trees are [~]-equivalent iff their shapes are equal. *)
