(** The [dpcd] launcher and real-process transparency oracle.

    {!run_scheme} spawns one daemon process per scenario node (each a
    fresh [dpcd serve] of the given executable), drives the {!Scenario}
    phases over the control plane, [kill -9]s node 1's process mid-run
    and respawns it against the same data directory, and finally
    compares every daemon's store and database digests against the
    in-process simulator reference ({!Scenario.simulate}) — byte
    equality or an error naming the diverging node.

    Phase separation uses a status barrier: all daemons report zero
    unacked frames and unchanged send/receive counters across two
    consecutive polls. Counters are monotonic and every delivery
    enqueues its causal sends before the ack leaves, so the double poll
    cannot observe a quiet instant of an active cluster. *)

val addr_of : dir:string -> int -> string
(** The address convention both sides derive from the data directory:
    ["unix:<dir>/node-<i>.sock"]. *)

val scheme_arg : Dpc_core.Backend.scheme -> string
(** The [--scheme] spelling: [exspan], [basic], [advanced],
    [advanced-interclass]. *)

val scheme_of_arg : string -> Dpc_core.Backend.scheme option

val run_scheme :
  exe:string -> dir:string -> Dpc_core.Backend.scheme -> (string, string) result
(** Run the oracle for one scheme. [exe] is the [dpcd] binary (the
    launcher respawns it as [<exe> serve ...]); [dir] is a fresh
    directory for sockets, daemon logs ([node-<i>.log]), and the
    daemons' durable state. [Ok summary] on digest equality; [Error]
    describes the first failure. Spawned processes are always reaped,
    whatever the outcome. *)

val run_all :
  exe:string -> dir:string -> Dpc_core.Backend.scheme list -> bool
(** {!run_scheme} for each scheme in its own subdirectory, printing one
    PASS/FAIL line per scheme to stdout; [true] iff all passed. *)
