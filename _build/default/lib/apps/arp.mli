(** An ARP-style address-resolution application (another of the protocols
    §3.1 cites as DELP-expressible). The equivalence keys are the querying
    host and the looked-up IP: all queries for one IP from one host share a
    provenance chain. *)

val source : string
val delp : unit -> Dpc_ndlog.Delp.t
val env : Dpc_engine.Env.t

val arp_query : host:int -> ip:string -> rqid:int -> Dpc_ndlog.Tuple.t
(** The input event [arpQuery(@host, ip, rqid)]. *)

val arp_switch : host:int -> switch:int -> Dpc_ndlog.Tuple.t
val mac_table : switch:int -> ip:string -> mac:string -> Dpc_ndlog.Tuple.t
val arp_reply : host:int -> ip:string -> mac:string -> rqid:int -> Dpc_ndlog.Tuple.t
