type link = { latency : float; bandwidth : float }
type t = { n : int; adjacency : (int, link) Hashtbl.t array }

let create ~n =
  if n <= 0 then invalid_arg "Topology.create: n must be positive";
  { n; adjacency = Array.init n (fun _ -> Hashtbl.create 4) }

let size t = t.n

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Topology: node %d out of range" v)

let add_link t a b l =
  check_node t a;
  check_node t b;
  if a = b then invalid_arg "Topology.add_link: self-link";
  Hashtbl.replace t.adjacency.(a) b l;
  Hashtbl.replace t.adjacency.(b) a l

let link t a b =
  check_node t a;
  check_node t b;
  Hashtbl.find_opt t.adjacency.(a) b

let connected t a b = link t a b <> None

let neighbors t v =
  check_node t v;
  Hashtbl.fold (fun w l acc -> (w, l) :: acc) t.adjacency.(v) []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let links t =
  List.concat_map
    (fun v ->
      List.filter_map (fun (w, l) -> if v < w then Some (v, w, l) else None) (neighbors t v))
    (List.init t.n (fun i -> i))

let degree t v =
  check_node t v;
  Hashtbl.length t.adjacency.(v)

let is_connected t =
  let visited = Array.make t.n false in
  let rec go = function
    | [] -> ()
    | v :: rest ->
        if visited.(v) then go rest
        else begin
          visited.(v) <- true;
          go (List.rev_append (List.map fst (neighbors t v)) rest)
        end
  in
  go [ 0 ];
  Array.for_all (fun b -> b) visited
