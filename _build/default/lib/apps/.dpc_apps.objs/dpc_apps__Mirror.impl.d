lib/apps/mirror.ml: Delp Dpc_engine Dpc_ndlog Parser Tuple Value
