type t = { rel : string; args : Value.t array }

let make rel args =
  match args with
  | [] -> invalid_arg "Tuple.make: empty argument list"
  | Value.Addr _ :: _ -> { rel; args = Array.of_list args }
  | (Value.Int _ | Value.Str _ | Value.Bool _) :: _ ->
      invalid_arg "Tuple.make: first attribute must be a node address"

let rel t = t.rel
let args t = t.args
let arity t = Array.length t.args
let loc t = Value.addr_exn t.args.(0)

let arg t i =
  if i < 0 || i >= Array.length t.args then invalid_arg "Tuple.arg: index out of range";
  t.args.(i)

let equal a b =
  String.equal a.rel b.rel
  && Array.length a.args = Array.length b.args
  && Array.for_all2 Value.equal a.args b.args

let compare a b =
  match String.compare a.rel b.rel with
  | 0 -> Stdlib.compare a.args b.args
  | c -> c

let hash = Hashtbl.hash

let canonical t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf t.rel;
  Buffer.add_char buf '(';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Value.canonical v))
    t.args;
  Buffer.add_char buf ')';
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "%s(@@%a" t.rel Value.pp t.args.(0);
  for i = 1 to Array.length t.args - 1 do
    Format.fprintf fmt ", %a" Value.pp t.args.(i)
  done;
  Format.pp_print_char fmt ')'

let to_string t = Format.asprintf "%a" pp t

let wire_size t =
  String.length t.rel + Array.fold_left (fun acc v -> acc + Value.wire_size v) 0 t.args

let serialize w t =
  let open Dpc_util.Serialize in
  write_string w t.rel;
  write_varint w (Array.length t.args);
  Array.iter (Value.serialize w) t.args

let deserialize r =
  let open Dpc_util.Serialize in
  let rel = read_string r in
  let n = read_varint r in
  let args = List.init n (fun _ -> Value.deserialize r) in
  match args with
  | Value.Addr _ :: _ -> { rel; args = Array.of_list args }
  | [] | (Value.Int _ | Value.Str _ | Value.Bool _) :: _ ->
      raise (Corrupt "Tuple.deserialize: malformed tuple")
