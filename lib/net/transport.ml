module type S = sig
  val name : string
  val nodes : int
  val now : unit -> float
  val schedule : delay:float -> (unit -> unit) -> unit
  val send : src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
  val broadcast : src:int -> bytes:int -> (int -> unit) -> unit
  val run : ?until:float -> unit -> unit
  val total_bytes : unit -> int
  val messages : unit -> int
end

type t = (module S)

let name (module T : S) = T.name
let nodes (module T : S) = T.nodes
let now (module T : S) = T.now ()
let schedule (module T : S) ~delay k = T.schedule ~delay k
let send (module T : S) ~src ~dst ~bytes k = T.send ~src ~dst ~bytes k
let broadcast (module T : S) ~src ~bytes k = T.broadcast ~src ~bytes k
let run ?until (module T : S) = T.run ?until ()
let total_bytes (module T : S) = T.total_bytes ()
let messages (module T : S) = T.messages ()

let of_sim sim : t =
  (module struct
    let name = "sim"
    let nodes = Topology.size (Sim.topology sim)
    let now () = Sim.now sim
    let schedule ~delay k = Sim.schedule sim ~delay k
    let send ~src ~dst ~bytes k = Sim.send sim ~src ~dst ~bytes k

    (* The sig broadcast of §5.5: one message per node, the origin
       included (delivered through the queue to preserve ordering). *)
    let broadcast ~src ~bytes k =
      for dst = 0 to nodes - 1 do
        Sim.send sim ~src ~dst ~bytes (fun () -> k dst)
      done

    let run ?until () = Sim.run ?until sim
    let total_bytes () = Sim.total_bytes sim
    let messages () = Sim.messages_sent sim
  end)

type direct_event = { at : float; seq : int; action : unit -> unit }

let direct ~nodes:n () : t =
  if n <= 0 then invalid_arg "Transport.direct: nodes must be positive";
  let queue =
    Dpc_util.Heap.create ~cmp:(fun a b ->
      match compare a.at b.at with 0 -> compare a.seq b.seq | c -> c)
  in
  let clock = ref 0.0 in
  let next_seq = ref 0 in
  let bytes_total = ref 0 in
  let msgs = ref 0 in
  let schedule_at at action =
    let seq = !next_seq in
    incr next_seq;
    Dpc_util.Heap.push queue { at; seq; action }
  in
  (module struct
    let name = "direct"
    let nodes = n
    let now () = !clock

    let schedule ~delay k =
      if delay < 0.0 then invalid_arg "Transport.direct: negative delay";
      schedule_at (!clock +. delay) k

    (* Zero-latency delivery: the message arrives at the current time,
       through the queue so ordering is preserved. Bytes are still
       accounted (once per message; there are no hops). *)
    let send ~src:_ ~dst ~bytes k =
      if dst < 0 || dst >= n then
        failwith (Printf.sprintf "Transport.direct: node %d out of range" dst);
      incr msgs;
      bytes_total := !bytes_total + bytes;
      schedule_at !clock k

    let broadcast ~src ~bytes k =
      for dst = 0 to n - 1 do
        send ~src ~dst ~bytes (fun () -> k dst)
      done

    let run ?until () =
      let limit = match until with None -> infinity | Some u -> u in
      let rec go () =
        match Dpc_util.Heap.pop queue with
        | None -> ()
        | Some ev when ev.at > limit -> Dpc_util.Heap.push queue ev
        | Some ev ->
            clock := Float.max !clock ev.at;
            ev.action ();
            go ()
      in
      go ()

    let total_bytes () = !bytes_total
    let messages () = !msgs
  end)
