(** Summary statistics and empirical CDFs for the evaluation harness. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list. *)

val median : float list -> float
(** @raise Invalid_argument on an empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [0, 100], linear interpolation between
    order statistics. @raise Invalid_argument on an empty list or [p]
    outside [0, 100]. *)

val stddev : float list -> float
(** Population standard deviation; 0 for singleton lists.
    @raise Invalid_argument on an empty list. *)

val minimum : float list -> float
val maximum : float list -> float

val cdf : float list -> (float * float) list
(** [cdf xs] is the empirical CDF as [(value, fraction <= value)] pairs,
    sorted by value, one pair per sample. *)

val cdf_at : float list -> float -> float
(** Fraction of samples [<= x]. *)
