open Dpc_ndlog

(* Keyed by the raw 20-byte digest. *)
type node_state = { tuples : (string, Tuple.t) Hashtbl.t; mutable bytes : int }

type t = node_state array

let create ~nodes = Array.init nodes (fun _ -> { tuples = Hashtbl.create 32; bytes = 0 })

let put t ~node ~key tuple =
  let st = t.(node) in
  let k = Dpc_util.Sha1.to_raw key in
  if not (Hashtbl.mem st.tuples k) then begin
    Hashtbl.add st.tuples k tuple;
    st.bytes <- st.bytes + 20 + Tuple.wire_size tuple
  end

let get t ~node ~key = Hashtbl.find_opt t.(node).tuples (Dpc_util.Sha1.to_raw key)

let node_bytes t node = t.(node).bytes
let node_count t node = Hashtbl.length t.(node).tuples
let total_bytes t = Array.fold_left (fun acc st -> acc + st.bytes) 0 t

let iter t f =
  Array.iteri
    (fun node st ->
      Hashtbl.iter (fun k tuple -> f ~node ~key:(Dpc_util.Sha1.of_raw k) tuple) st.tuples)
    t
