(** Recursive DNS resolution as a DELP (paper Fig 19 and §6.2): the second
    evaluation workload. Name servers form a delegation hierarchy; a host's
    [url] event travels to the root, descends through matching delegations,
    resolves at the authoritative server, and the [reply] returns to the
    host. *)

val source : string

val delp : unit -> Dpc_ndlog.Delp.t

val env : Dpc_engine.Env.t
(** Registers [f_isSubDomain : (domain, url) -> bool]. *)

val is_sub_domain : string -> string -> bool
(** [is_sub_domain dm url]: whether [url] falls under domain [dm] at a
    label boundary ("hello.com" covers "www.hello.com" and "hello.com" but
    not "shello.com"); every URL falls under the root domain [""] . *)

val url : host:int -> url:string -> rqid:int -> Dpc_ndlog.Tuple.t
(** The input event [url(@host, url, rqid)]. *)

val root_server : host:int -> root:int -> Dpc_ndlog.Tuple.t
val name_server : at:int -> domain:string -> server:int -> Dpc_ndlog.Tuple.t
val address_record : at:int -> url:string -> ip:string -> Dpc_ndlog.Tuple.t

val reply : host:int -> url:string -> ip:string -> rqid:int -> Dpc_ndlog.Tuple.t
(** The output tuple. *)
